#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "nn/embedding.h"
#include "nn/init.h"
#include "nn/linear.h"
#include "nn/lstm_cell.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"

namespace m2g::nn {
namespace {

TEST(LinearTest, ShapesAndBias) {
  Rng rng(1);
  Linear lin(4, 3, &rng);
  Tensor x = Tensor::Constant(Matrix::Ones(2, 4));
  Tensor y = lin.Forward(x);
  EXPECT_EQ(y.rows(), 2);
  EXPECT_EQ(y.cols(), 3);
  // Both rows identical for identical inputs.
  for (int c = 0; c < 3; ++c) {
    EXPECT_FLOAT_EQ(y.value().At(0, c), y.value().At(1, c));
  }
}

TEST(LinearTest, NoBiasVariantHasFewerParams) {
  Rng rng(2);
  Linear with_bias(4, 3, &rng, true);
  Linear no_bias(4, 3, &rng, false);
  EXPECT_EQ(with_bias.ParameterCount(), 4 * 3 + 3);
  EXPECT_EQ(no_bias.ParameterCount(), 4 * 3);
}

TEST(EmbeddingTest, LookupMatchesTableRows) {
  Rng rng(3);
  Embedding emb(10, 4, &rng);
  Tensor rows = emb.Forward({7, 2, 7});
  EXPECT_EQ(rows.rows(), 3);
  EXPECT_EQ(rows.cols(), 4);
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(rows.value().At(0, c), rows.value().At(2, c));
  }
}

TEST(EmbeddingTest, OutOfRangeIdsClamp) {
  Rng rng(4);
  Embedding emb(5, 3, &rng);
  Tensor low = emb.Forward({-3});
  Tensor zero = emb.Forward({0});
  Tensor high = emb.Forward({99});
  Tensor last = emb.Forward({4});
  for (int c = 0; c < 3; ++c) {
    EXPECT_EQ(low.value().At(0, c), zero.value().At(0, c));
    EXPECT_EQ(high.value().At(0, c), last.value().At(0, c));
  }
}

TEST(LstmCellTest, StateShapesAndBoundedOutputs) {
  Rng rng(5);
  LstmCell cell(6, 8, &rng);
  LstmState state = cell.InitialState();
  Tensor x = Tensor::Constant(Matrix::Ones(1, 6));
  for (int step = 0; step < 5; ++step) {
    state = cell.Forward(x, state);
    EXPECT_EQ(state.h.cols(), 8);
    // tanh-bounded hidden state.
    for (int c = 0; c < 8; ++c) {
      EXPECT_LE(std::fabs(state.h.value().At(0, c)), 1.0f);
    }
  }
}

TEST(LstmCellTest, GradientsFlowThroughTime) {
  Rng rng(6);
  LstmCell cell(3, 4, &rng);
  LstmState state = cell.InitialState();
  Tensor x = Tensor::Constant(Matrix::Ones(1, 3));
  for (int step = 0; step < 3; ++step) state = cell.Forward(x, state);
  Sum(state.h).Backward();
  for (const Tensor& p : cell.Parameters()) {
    ASSERT_TRUE(p.grad().SameShape(p.value()));
    EXPECT_GT(p.grad().MaxAbs(), 0.0f);
  }
}

TEST(MlpTest, DepthAndShapes) {
  Rng rng(7);
  Mlp mlp({5, 16, 16, 2}, &rng);
  EXPECT_EQ(mlp.in_features(), 5);
  EXPECT_EQ(mlp.out_features(), 2);
  Tensor y = mlp.Forward(Tensor::Constant(Matrix::Ones(3, 5)));
  EXPECT_EQ(y.rows(), 3);
  EXPECT_EQ(y.cols(), 2);
}

TEST(ModuleTest, NamedParametersArePrefixed) {
  Rng rng(8);
  Mlp mlp({2, 4, 1}, &rng);
  auto named = mlp.NamedParameters();
  ASSERT_EQ(named.size(), 4u);  // 2 layers x (weight, bias)
  EXPECT_EQ(named[0].first, "layer0/weight");
  EXPECT_EQ(named[3].first, "layer1/bias");
}

TEST(OptimizerTest, SgdDescendsQuadratic) {
  Tensor w = Tensor::Parameter(Matrix(1, 1, {5.0f}));
  Sgd opt({w}, 0.1f);
  for (int i = 0; i < 100; ++i) {
    opt.ZeroGrad();
    Tensor loss = Mul(w, w);
    loss.Backward();
    opt.Step();
  }
  EXPECT_NEAR(w.value()[0], 0.0f, 1e-3f);
}

TEST(OptimizerTest, AdamDescendsQuadraticWithOffset) {
  Tensor w = Tensor::Parameter(Matrix(1, 2, {4.0f, -3.0f}));
  Tensor target = Tensor::Constant(Matrix(1, 2, {1.0f, 2.0f}));
  Adam opt({w}, 0.05f);
  for (int i = 0; i < 400; ++i) {
    opt.ZeroGrad();
    Tensor diff = Sub(w, target);
    Sum(Mul(diff, diff)).Backward();
    opt.Step();
  }
  EXPECT_NEAR(w.value()[0], 1.0f, 1e-2f);
  EXPECT_NEAR(w.value()[1], 2.0f, 1e-2f);
}

TEST(OptimizerTest, ClipGradNormScalesDown) {
  Tensor w = Tensor::Parameter(Matrix(1, 2, {0.0f, 0.0f}));
  Sgd opt({w}, 1.0f);
  opt.ZeroGrad();
  Sum(Scale(w, 100.0f)).Backward();  // grad = [100, 100], norm ~141.4
  const float before = opt.ClipGradNorm(1.0f);
  EXPECT_NEAR(before, 141.42f, 0.1f);
  const float norm_after = w.grad().Norm();
  EXPECT_NEAR(norm_after, 1.0f, 1e-3f);
}

TEST(OptimizerTest, MomentumAcceleratesOverPlainSgd) {
  auto run = [](float momentum) {
    Tensor w = Tensor::Parameter(Matrix(1, 1, {10.0f}));
    Sgd opt({w}, 0.01f, momentum);
    for (int i = 0; i < 50; ++i) {
      opt.ZeroGrad();
      Mul(w, w).Backward();
      opt.Step();
    }
    return std::fabs(w.value()[0]);
  };
  EXPECT_LT(run(0.9f), run(0.0f));
}

TEST(SerializeTest, RoundTripRestoresExactWeights) {
  Rng rng(9);
  Mlp a({3, 8, 2}, &rng);
  Mlp b({3, 8, 2}, &rng);  // different init
  const std::string path = ::testing::TempDir() + "/mlp_weights.bin";
  ASSERT_TRUE(SaveModule(a, path).ok());
  ASSERT_TRUE(LoadModule(&b, path).ok());
  auto pa = a.Parameters();
  auto pb = b.Parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    for (size_t j = 0; j < pa[i].value().size(); ++j) {
      EXPECT_EQ(pa[i].value()[j], pb[i].value()[j]);
    }
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, ShapeMismatchRejected) {
  Rng rng(10);
  Mlp a({3, 8, 2}, &rng);
  Mlp wrong({3, 9, 2}, &rng);
  const std::string path = ::testing::TempDir() + "/mlp_mismatch.bin";
  ASSERT_TRUE(SaveModule(a, path).ok());
  Status s = LoadModule(&wrong, path);
  EXPECT_FALSE(s.ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileIsIoError) {
  Rng rng(11);
  Mlp a({2, 2}, &rng);
  Status s = LoadModule(&a, "/nonexistent/path/weights.bin");
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

TEST(InitTest, XavierBoundsRespectFanInOut) {
  Rng rng(12);
  Matrix w = XavierUniform(100, 50, &rng);
  const float bound = std::sqrt(6.0f / 150.0f);
  EXPECT_LE(w.MaxAbs(), bound + 1e-6f);
  EXPECT_GT(w.MaxAbs(), bound * 0.5f);  // actually fills the range
}

}  // namespace
}  // namespace m2g::nn
