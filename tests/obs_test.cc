// Telemetry layer: counters, gauges, histogram bucket math, quantile
// interpolation, cross-thread merge exactness, the trace ring and the
// two exporters. The concurrent tests double as the TSan surface for
// the lock-free recording paths.

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace m2g::obs {
namespace {

// Counter increments and trace spans compile to nothing under
// -DM2G_OBS_DISABLED=ON; the tests that exercise those event paths
// skip themselves in that configuration (histograms, gauges, registry
// and exporters stay fully live and tested).
#ifdef M2G_OBS_DISABLED
#define M2G_SKIP_IF_OBS_DISABLED() \
  GTEST_SKIP() << "event recording compiled out (M2G_OBS_DISABLED)"
#else
#define M2G_SKIP_IF_OBS_DISABLED() (void)0
#endif

TEST(CounterTest, IncrementAndValue) {
  M2G_SKIP_IF_OBS_DISABLED();
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  M2G_SKIP_IF_OBS_DISABLED();
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0.0);
  g.Set(2.5);
  EXPECT_EQ(g.Value(), 2.5);
  g.Add(1.5);
  EXPECT_EQ(g.Value(), 4.0);
  g.Add(-4.0);
  EXPECT_EQ(g.Value(), 0.0);
}

TEST(GaugeTest, ConcurrentAddSumsExactly) {
  Gauge g;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&g] {
      // Integer-valued deltas: exact in double for any add order.
      for (int i = 0; i < kPerThread; ++i) g.Add(1.0);
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(g.Value(), static_cast<double>(kThreads) * kPerThread);
}

TEST(HistogramTest, BucketBoundariesUseLeSemantics) {
  // Bucket i counts values <= bounds[i] (Prometheus `le`), the last
  // slot is the overflow bucket.
  Histogram h({1.0, 2.0, 5.0});
  h.Record(1.0);  // exactly on a bound -> that bucket
  h.Record(1.5);
  h.Record(2.0);
  h.Record(5.0);
  h.Record(7.0);  // above every bound -> overflow
  const HistogramSnapshot s = h.Snapshot();
  ASSERT_EQ(s.counts.size(), 4u);
  EXPECT_EQ(s.counts[0], 1u);
  EXPECT_EQ(s.counts[1], 2u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.counts[3], 1u);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.sum, 16.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 7.0);
}

TEST(HistogramTest, EmptySnapshotIsAllZero) {
  Histogram h({1.0, 2.0});
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0.0);
  EXPECT_EQ(s.min, 0.0);
  EXPECT_EQ(s.max, 0.0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.Quantile(0.5), 0.0);
}

TEST(HistogramTest, QuantileInterpolatesWithinBuckets) {
  Histogram h({10.0, 20.0, 30.0});
  h.Record(5.0);
  h.Record(15.0);
  h.Record(25.0);
  h.Record(35.0);
  const HistogramSnapshot s = h.Snapshot();
  // The extreme quantiles clamp to the observed range, not the bucket
  // bounds: q=0 interpolates up from min, q=1 caps at max.
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 5.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 35.0);
  // Rank 2 of 4 lands at the top of the second bucket [10, 20].
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 20.0);
  // Monotone in q.
  double prev = 0.0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double v = s.Quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
}

TEST(HistogramTest, SingleValueQuantilesCollapse) {
  Histogram h(DefaultLatencyBucketsMs());
  h.Record(3.25);
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 3.25);
  EXPECT_DOUBLE_EQ(s.Quantile(0.99), 3.25);
  EXPECT_DOUBLE_EQ(s.min, 3.25);
  EXPECT_DOUBLE_EQ(s.max, 3.25);
}

TEST(HistogramTest, CrossThreadMergeEqualsSerialReference) {
  // Integer-valued samples so the sharded sum is exact regardless of
  // accumulation order.
  const std::vector<double> bounds = {4.0, 16.0, 64.0, 256.0};
  Histogram sharded(bounds);
  Histogram serial(bounds);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&sharded, t] {
      for (int i = 0; i < kPerThread; ++i) {
        sharded.Record(static_cast<double>((t * 37 + i * 13) % 300));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      serial.Record(static_cast<double>((t * 37 + i * 13) % 300));
    }
  }
  const HistogramSnapshot a = sharded.Snapshot();
  const HistogramSnapshot b = serial.Snapshot();
  EXPECT_EQ(a.counts, b.counts);
  EXPECT_EQ(a.count, b.count);
  EXPECT_DOUBLE_EQ(a.sum, b.sum);
  EXPECT_DOUBLE_EQ(a.min, b.min);
  EXPECT_DOUBLE_EQ(a.max, b.max);
}

TEST(HistogramTest, SnapshotWhileRecordingIsConsistent) {
  // TSan surface: snapshots race with records by design; every snapshot
  // must still be internally sane (count covers the bucket total).
  Histogram h(DefaultLatencyBucketsMs());
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&h, &stop] {
      double v = 0.001;
      while (!stop.load(std::memory_order_relaxed)) {
        h.Record(v);
        v = v < 100 ? v * 1.7 : 0.001;
      }
    });
  }
  uint64_t last_count = 0;
  for (int i = 0; i < 50; ++i) {
    const HistogramSnapshot s = h.Snapshot();
    // Mid-flight snapshots can catch a writer between its bucket and
    // count updates, so the only invariant is monotonicity (plus "no
    // data race", which TSan checks).
    EXPECT_GE(s.count, last_count);
    last_count = s.count;
    s.Quantile(0.99);  // must not crash on a racing snapshot
  }
  stop.store(true);
  for (std::thread& w : writers) w.join();
  const HistogramSnapshot s = h.Snapshot();
  uint64_t bucket_total = 0;
  for (uint64_t c : s.counts) bucket_total += c;
  EXPECT_EQ(s.count, bucket_total);
}

TEST(RegistryTest, SameNameReturnsSameObject) {
  MetricsRegistry registry;
  EXPECT_EQ(&registry.counter("a"), &registry.counter("a"));
  EXPECT_NE(&registry.counter("a"), &registry.counter("b"));
  EXPECT_EQ(&registry.gauge("g"), &registry.gauge("g"));
  EXPECT_EQ(&registry.latency_histogram("h"),
            &registry.latency_histogram("h"));
}

TEST(RegistryTest, SnapshotIsSortedAndComplete) {
  MetricsRegistry registry;
  registry.counter("z.count").Increment(2);
  registry.counter("a.count").Increment();
  registry.gauge("mid.depth").Set(7);
  registry.latency_histogram("lat.ms").Record(1.0);
  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "a.count");
  EXPECT_EQ(snap.counters[1].first, "z.count");
#ifndef M2G_OBS_DISABLED
  EXPECT_EQ(snap.counters[0].second, 1u);
  EXPECT_EQ(snap.counters[1].second, 2u);
#endif
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, 7.0);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_NE(snap.FindHistogram("lat.ms"), nullptr);
  EXPECT_EQ(snap.FindHistogram("nope"), nullptr);
}

TEST(RegistryTest, CallbackGaugeIsPulledAtSnapshotTime) {
  MetricsRegistry registry;
  double backing = 1.0;
  registry.AddCallbackGauge("pulled", [&backing] { return backing; });
  EXPECT_EQ(registry.Snapshot().gauges[0].second, 1.0);
  backing = 9.0;
  EXPECT_EQ(registry.Snapshot().gauges[0].second, 9.0);
}

/// A little fixture registry shared by the two exporter golden tests.
MetricsSnapshot GoldenSnapshot() {
  static MetricsRegistry* registry = [] {
    auto* r = new MetricsRegistry();
    r->counter("requests").Increment(3);
    r->gauge("depth").Set(2.5);
    Histogram& h = r->histogram("lat.ms", {1.0, 2.0});
    h.Record(0.5);
    h.Record(1.5);
    h.Record(10.0);
    return r;
  }();
  return registry->Snapshot();
}

TEST(ExportTest, PrometheusGoldenText) {
  M2G_SKIP_IF_OBS_DISABLED();
  const std::string expected =
      "# TYPE m2g_requests_total counter\n"
      "m2g_requests_total 3\n"
      "# TYPE m2g_depth gauge\n"
      "m2g_depth 2.5\n"
      "# TYPE m2g_lat_ms histogram\n"
      "m2g_lat_ms_bucket{le=\"1\"} 1\n"
      "m2g_lat_ms_bucket{le=\"2\"} 2\n"
      "m2g_lat_ms_bucket{le=\"+Inf\"} 3\n"
      "m2g_lat_ms_sum 12\n"
      "m2g_lat_ms_count 3\n";
  EXPECT_EQ(ExportPrometheus(GoldenSnapshot()), expected);
}

TEST(ExportTest, JsonGoldenText) {
  M2G_SKIP_IF_OBS_DISABLED();
  const std::string json = ExportJson(GoldenSnapshot());
  EXPECT_NE(json.find("\"counters\": {\n    \"requests\": 3\n  }"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"depth\": 2.5"), std::string::npos) << json;
  // p50: rank 1.5 of 3 lands half-way through the (1, 2] bucket.
  EXPECT_NE(json.find("\"lat.ms\": {\"count\": 3, \"sum\": 12, "
                      "\"min\": 0.5, \"max\": 10, \"mean\": 4, "
                      "\"p50\": 1.5"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("{\"le\": \"+Inf\", \"count\": 1}"),
            std::string::npos)
      << json;
}

TEST(ExportTest, WriteMetricsFilePicksFormatBySuffix) {
  // WriteMetricsFile snapshots the *global* registry — give it content.
  MetricsRegistry::Global().counter("obs_test.writes").Increment();
  const std::string prom_path = "obs_test_metrics.prom";
  const std::string json_path = "obs_test_metrics.json";
  ASSERT_TRUE(WriteMetricsFile(prom_path));
  ASSERT_TRUE(WriteMetricsFile(json_path));
  auto read = [](const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "r");
    EXPECT_NE(f, nullptr);
    std::string out;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      out.append(buf, n);
    }
    std::fclose(f);
    std::remove(path.c_str());
    return out;
  };
  EXPECT_EQ(read(json_path).front(), '{');
  const std::string prom = read(prom_path);
  EXPECT_NE(prom.find("# TYPE"), std::string::npos);
}

TEST(TraceTest, SpanFeedsHistogramAndRing) {
  M2G_SKIP_IF_OBS_DISABLED();
  SetTraceRingCapacity(16);
  Histogram h(DefaultLatencyBucketsMs());
  {
    TraceSpan span("obs_test.stage", &h);
  }
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_GE(s.max, 0.0);
  const std::vector<TraceEvent> traces = RecentTraces();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_STREQ(traces[0].stage, "obs_test.stage");
  EXPECT_GE(traces[0].duration_ms, 0.0);
  EXPECT_GE(traces[0].start_ms, 0.0);
  SetTraceRingCapacity(256);
}

TEST(TraceTest, RingWrapsKeepingNewestOldestFirst) {
  M2G_SKIP_IF_OBS_DISABLED();
  SetTraceRingCapacity(4);
  Histogram h(DefaultLatencyBucketsMs());
  static const char* const kStages[] = {
      "obs_test.s0", "obs_test.s1", "obs_test.s2", "obs_test.s3",
      "obs_test.s4", "obs_test.s5", "obs_test.s6"};
  for (const char* stage : kStages) {
    TraceSpan span(stage, &h);
  }
  const std::vector<TraceEvent> traces = RecentTraces();
  ASSERT_EQ(traces.size(), 4u);
  EXPECT_STREQ(traces[0].stage, "obs_test.s3");
  EXPECT_STREQ(traces[3].stage, "obs_test.s6");
  // Oldest-first: start offsets never decrease.
  for (size_t i = 1; i < traces.size(); ++i) {
    EXPECT_GE(traces[i].start_ms, traces[i - 1].start_ms);
  }
  SetTraceRingCapacity(256);
}

TEST(TraceTest, ZeroCapacityDisablesRetention) {
  M2G_SKIP_IF_OBS_DISABLED();
  SetTraceRingCapacity(0);
  {
    TraceSpan span("obs_test.dropped");
  }
  EXPECT_TRUE(RecentTraces().empty());
  SetTraceRingCapacity(256);
}

TEST(TraceTest, ConcurrentSpansAreExactlyCounted) {
  M2G_SKIP_IF_OBS_DISABLED();
  SetTraceRingCapacity(256);
  ClearTraces();
  Histogram h(DefaultLatencyBucketsMs());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) {
        TraceSpan span("obs_test.concurrent", &h);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(h.Snapshot().count,
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(RecentTraces().size(), 256u);
  ClearTraces();
}

TEST(EnabledTest, DisabledCountersAndSpansAreNoOps) {
  M2G_SKIP_IF_OBS_DISABLED();
  SetEnabled(false);
  Counter c;
  c.Increment();
  EXPECT_EQ(c.Value(), 0u);
  Histogram h(DefaultLatencyBucketsMs());
  ClearTraces();
  {
    TraceSpan span("obs_test.disabled", &h);
  }
  EXPECT_EQ(h.Snapshot().count, 0u);
  EXPECT_TRUE(RecentTraces().empty());
  // Direct Record stays live: it is a measurement helper, not an event.
  h.Record(1.0);
  EXPECT_EQ(h.Snapshot().count, 1u);
  SetEnabled(true);
  EXPECT_TRUE(Enabled());
}

TEST(ThreadSlotTest, StableWithinThreadAndBounded) {
  const int slot = internal::ThreadSlot();
  EXPECT_EQ(slot, internal::ThreadSlot());
  EXPECT_GE(slot, 0);
  EXPECT_LT(slot, internal::kMaxShards);
  int other = -1;
  std::thread t([&other] { other = internal::ThreadSlot(); });
  t.join();
  EXPECT_GE(other, 0);
  EXPECT_LT(other, internal::kMaxShards);
}

}  // namespace
}  // namespace m2g::obs
