// Telemetry layer: counters, gauges, histogram bucket math, quantile
// interpolation, cross-thread merge exactness, the trace ring, request
// trace trees + wide events, the admin endpoint and the exporters. The
// concurrent tests double as the TSan surface for the lock-free
// recording paths.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/admin_server.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "obs/wide_event.h"

namespace m2g::obs {
namespace {

// Counter increments and trace spans compile to nothing under
// -DM2G_OBS_DISABLED=ON; the tests that exercise those event paths
// skip themselves in that configuration (histograms, gauges, registry
// and exporters stay fully live and tested).
#ifdef M2G_OBS_DISABLED
#define M2G_SKIP_IF_OBS_DISABLED() \
  GTEST_SKIP() << "event recording compiled out (M2G_OBS_DISABLED)"
#else
#define M2G_SKIP_IF_OBS_DISABLED() (void)0
#endif

TEST(CounterTest, IncrementAndValue) {
  M2G_SKIP_IF_OBS_DISABLED();
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  M2G_SKIP_IF_OBS_DISABLED();
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0.0);
  g.Set(2.5);
  EXPECT_EQ(g.Value(), 2.5);
  g.Add(1.5);
  EXPECT_EQ(g.Value(), 4.0);
  g.Add(-4.0);
  EXPECT_EQ(g.Value(), 0.0);
}

TEST(GaugeTest, ConcurrentAddSumsExactly) {
  Gauge g;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&g] {
      // Integer-valued deltas: exact in double for any add order.
      for (int i = 0; i < kPerThread; ++i) g.Add(1.0);
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(g.Value(), static_cast<double>(kThreads) * kPerThread);
}

TEST(HistogramTest, BucketBoundariesUseLeSemantics) {
  // Bucket i counts values <= bounds[i] (Prometheus `le`), the last
  // slot is the overflow bucket.
  Histogram h({1.0, 2.0, 5.0});
  h.Record(1.0);  // exactly on a bound -> that bucket
  h.Record(1.5);
  h.Record(2.0);
  h.Record(5.0);
  h.Record(7.0);  // above every bound -> overflow
  const HistogramSnapshot s = h.Snapshot();
  ASSERT_EQ(s.counts.size(), 4u);
  EXPECT_EQ(s.counts[0], 1u);
  EXPECT_EQ(s.counts[1], 2u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.counts[3], 1u);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.sum, 16.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 7.0);
}

TEST(HistogramTest, EmptySnapshotIsAllZero) {
  Histogram h({1.0, 2.0});
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0.0);
  EXPECT_EQ(s.min, 0.0);
  EXPECT_EQ(s.max, 0.0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.Quantile(0.5), 0.0);
}

TEST(HistogramTest, QuantileInterpolatesWithinBuckets) {
  Histogram h({10.0, 20.0, 30.0});
  h.Record(5.0);
  h.Record(15.0);
  h.Record(25.0);
  h.Record(35.0);
  const HistogramSnapshot s = h.Snapshot();
  // The extreme quantiles clamp to the observed range, not the bucket
  // bounds: q=0 interpolates up from min, q=1 caps at max.
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 5.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 35.0);
  // Rank 2 of 4 lands at the top of the second bucket [10, 20].
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 20.0);
  // Monotone in q.
  double prev = 0.0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double v = s.Quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
}

TEST(HistogramTest, SingleValueQuantilesCollapse) {
  Histogram h(DefaultLatencyBucketsMs());
  h.Record(3.25);
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 3.25);
  EXPECT_DOUBLE_EQ(s.Quantile(0.99), 3.25);
  EXPECT_DOUBLE_EQ(s.min, 3.25);
  EXPECT_DOUBLE_EQ(s.max, 3.25);
}

TEST(HistogramTest, CrossThreadMergeEqualsSerialReference) {
  // Integer-valued samples so the sharded sum is exact regardless of
  // accumulation order.
  const std::vector<double> bounds = {4.0, 16.0, 64.0, 256.0};
  Histogram sharded(bounds);
  Histogram serial(bounds);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&sharded, t] {
      for (int i = 0; i < kPerThread; ++i) {
        sharded.Record(static_cast<double>((t * 37 + i * 13) % 300));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      serial.Record(static_cast<double>((t * 37 + i * 13) % 300));
    }
  }
  const HistogramSnapshot a = sharded.Snapshot();
  const HistogramSnapshot b = serial.Snapshot();
  EXPECT_EQ(a.counts, b.counts);
  EXPECT_EQ(a.count, b.count);
  EXPECT_DOUBLE_EQ(a.sum, b.sum);
  EXPECT_DOUBLE_EQ(a.min, b.min);
  EXPECT_DOUBLE_EQ(a.max, b.max);
}

TEST(HistogramTest, SnapshotWhileRecordingIsConsistent) {
  // TSan surface: snapshots race with records by design; every snapshot
  // must still be internally sane (count covers the bucket total).
  Histogram h(DefaultLatencyBucketsMs());
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&h, &stop] {
      double v = 0.001;
      while (!stop.load(std::memory_order_relaxed)) {
        h.Record(v);
        v = v < 100 ? v * 1.7 : 0.001;
      }
    });
  }
  uint64_t last_count = 0;
  for (int i = 0; i < 50; ++i) {
    const HistogramSnapshot s = h.Snapshot();
    // Mid-flight snapshots can catch a writer between its bucket and
    // count updates, so the only invariant is monotonicity (plus "no
    // data race", which TSan checks).
    EXPECT_GE(s.count, last_count);
    last_count = s.count;
    s.Quantile(0.99);  // must not crash on a racing snapshot
  }
  stop.store(true);
  for (std::thread& w : writers) w.join();
  const HistogramSnapshot s = h.Snapshot();
  uint64_t bucket_total = 0;
  for (uint64_t c : s.counts) bucket_total += c;
  EXPECT_EQ(s.count, bucket_total);
}

TEST(RegistryTest, SameNameReturnsSameObject) {
  MetricsRegistry registry;
  EXPECT_EQ(&registry.counter("a"), &registry.counter("a"));
  EXPECT_NE(&registry.counter("a"), &registry.counter("b"));
  EXPECT_EQ(&registry.gauge("g"), &registry.gauge("g"));
  EXPECT_EQ(&registry.latency_histogram("h"),
            &registry.latency_histogram("h"));
}

TEST(RegistryTest, SnapshotIsSortedAndComplete) {
  MetricsRegistry registry;
  registry.counter("z.count").Increment(2);
  registry.counter("a.count").Increment();
  registry.gauge("mid.depth").Set(7);
  registry.latency_histogram("lat.ms").Record(1.0);
  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "a.count");
  EXPECT_EQ(snap.counters[1].first, "z.count");
#ifndef M2G_OBS_DISABLED
  EXPECT_EQ(snap.counters[0].second, 1u);
  EXPECT_EQ(snap.counters[1].second, 2u);
#endif
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, 7.0);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_NE(snap.FindHistogram("lat.ms"), nullptr);
  EXPECT_EQ(snap.FindHistogram("nope"), nullptr);
}

TEST(RegistryTest, CallbackGaugeIsPulledAtSnapshotTime) {
  MetricsRegistry registry;
  double backing = 1.0;
  registry.AddCallbackGauge("pulled", [&backing] { return backing; });
  EXPECT_EQ(registry.Snapshot().gauges[0].second, 1.0);
  backing = 9.0;
  EXPECT_EQ(registry.Snapshot().gauges[0].second, 9.0);
}

/// A little fixture registry shared by the two exporter golden tests.
MetricsSnapshot GoldenSnapshot() {
  static MetricsRegistry* registry = [] {
    auto* r = new MetricsRegistry();
    r->counter("requests").Increment(3);
    r->gauge("depth").Set(2.5);
    Histogram& h = r->histogram("lat.ms", {1.0, 2.0});
    h.Record(0.5);
    h.Record(1.5);
    h.Record(10.0);
    return r;
  }();
  return registry->Snapshot();
}

TEST(ExportTest, PrometheusGoldenText) {
  M2G_SKIP_IF_OBS_DISABLED();
  const std::string expected =
      "# TYPE m2g_requests_total counter\n"
      "m2g_requests_total 3\n"
      "# TYPE m2g_depth gauge\n"
      "m2g_depth 2.5\n"
      "# TYPE m2g_lat_ms histogram\n"
      "m2g_lat_ms_bucket{le=\"1\"} 1\n"
      "m2g_lat_ms_bucket{le=\"2\"} 2\n"
      "m2g_lat_ms_bucket{le=\"+Inf\"} 3\n"
      "m2g_lat_ms_sum 12\n"
      "m2g_lat_ms_count 3\n";
  EXPECT_EQ(ExportPrometheus(GoldenSnapshot()), expected);
}

TEST(ExportTest, JsonGoldenText) {
  M2G_SKIP_IF_OBS_DISABLED();
  const std::string json = ExportJson(GoldenSnapshot());
  EXPECT_NE(json.find("\"counters\": {\n    \"requests\": 3\n  }"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"depth\": 2.5"), std::string::npos) << json;
  // p50: rank 1.5 of 3 lands half-way through the (1, 2] bucket.
  EXPECT_NE(json.find("\"lat.ms\": {\"count\": 3, \"sum\": 12, "
                      "\"min\": 0.5, \"max\": 10, \"mean\": 4, "
                      "\"p50\": 1.5"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("{\"le\": \"+Inf\", \"count\": 1}"),
            std::string::npos)
      << json;
}

TEST(ExportTest, WriteMetricsFilePicksFormatBySuffix) {
  // WriteMetricsFile snapshots the *global* registry — give it content.
  MetricsRegistry::Global().counter("obs_test.writes").Increment();
  const std::string prom_path = "obs_test_metrics.prom";
  const std::string json_path = "obs_test_metrics.json";
  ASSERT_TRUE(WriteMetricsFile(prom_path));
  ASSERT_TRUE(WriteMetricsFile(json_path));
  auto read = [](const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "r");
    EXPECT_NE(f, nullptr);
    std::string out;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      out.append(buf, n);
    }
    std::fclose(f);
    std::remove(path.c_str());
    return out;
  };
  EXPECT_EQ(read(json_path).front(), '{');
  const std::string prom = read(prom_path);
  EXPECT_NE(prom.find("# TYPE"), std::string::npos);
}

TEST(TraceTest, SpanFeedsHistogramAndRing) {
  M2G_SKIP_IF_OBS_DISABLED();
  SetTraceRingCapacity(16);
  Histogram h(DefaultLatencyBucketsMs());
  {
    TraceSpan span("obs_test.stage", &h);
  }
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_GE(s.max, 0.0);
  const std::vector<TraceEvent> traces = RecentTraces();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_STREQ(traces[0].stage, "obs_test.stage");
  EXPECT_GE(traces[0].duration_ms, 0.0);
  EXPECT_GE(traces[0].start_ms, 0.0);
  SetTraceRingCapacity(256);
}

TEST(TraceTest, RingWrapsKeepingNewestOldestFirst) {
  M2G_SKIP_IF_OBS_DISABLED();
  SetTraceRingCapacity(4);
  Histogram h(DefaultLatencyBucketsMs());
  static const char* const kStages[] = {
      "obs_test.s0", "obs_test.s1", "obs_test.s2", "obs_test.s3",
      "obs_test.s4", "obs_test.s5", "obs_test.s6"};
  for (const char* stage : kStages) {
    TraceSpan span(stage, &h);
  }
  const std::vector<TraceEvent> traces = RecentTraces();
  ASSERT_EQ(traces.size(), 4u);
  EXPECT_STREQ(traces[0].stage, "obs_test.s3");
  EXPECT_STREQ(traces[3].stage, "obs_test.s6");
  // Oldest-first: start offsets never decrease.
  for (size_t i = 1; i < traces.size(); ++i) {
    EXPECT_GE(traces[i].start_ms, traces[i - 1].start_ms);
  }
  SetTraceRingCapacity(256);
}

TEST(TraceTest, ZeroCapacityDisablesRetention) {
  M2G_SKIP_IF_OBS_DISABLED();
  SetTraceRingCapacity(0);
  {
    TraceSpan span("obs_test.dropped");
  }
  EXPECT_TRUE(RecentTraces().empty());
  SetTraceRingCapacity(256);
}

TEST(TraceTest, ConcurrentSpansAreExactlyCounted) {
  M2G_SKIP_IF_OBS_DISABLED();
  SetTraceRingCapacity(256);
  ClearTraces();
  Histogram h(DefaultLatencyBucketsMs());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) {
        TraceSpan span("obs_test.concurrent", &h);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(h.Snapshot().count,
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(RecentTraces().size(), 256u);
  ClearTraces();
}

TEST(EnabledTest, DisabledCountersAndSpansAreNoOps) {
  M2G_SKIP_IF_OBS_DISABLED();
  SetEnabled(false);
  Counter c;
  c.Increment();
  EXPECT_EQ(c.Value(), 0u);
  Histogram h(DefaultLatencyBucketsMs());
  ClearTraces();
  {
    TraceSpan span("obs_test.disabled", &h);
  }
  EXPECT_EQ(h.Snapshot().count, 0u);
  EXPECT_TRUE(RecentTraces().empty());
  // Direct Record stays live: it is a measurement helper, not an event.
  h.Record(1.0);
  EXPECT_EQ(h.Snapshot().count, 1u);
  SetEnabled(true);
  EXPECT_TRUE(Enabled());
}

TEST(TraceContextTest, ScopeInstallsAndRestoresNested) {
  EXPECT_FALSE(CurrentTraceContext().active());
  {
    TraceContextScope outer(TraceContext{7, 1});
    EXPECT_EQ(CurrentTraceContext().trace_id, 7u);
    EXPECT_EQ(CurrentTraceContext().span_id, 1u);
    {
      TraceContextScope inner(TraceContext{9, 4});
      EXPECT_EQ(CurrentTraceContext().trace_id, 9u);
      EXPECT_EQ(CurrentTraceContext().span_id, 4u);
    }
    EXPECT_EQ(CurrentTraceContext().trace_id, 7u);
    EXPECT_EQ(CurrentTraceContext().span_id, 1u);
  }
  EXPECT_FALSE(CurrentTraceContext().active());
}

TEST(TraceContextTest, ContextIsThreadLocal) {
  TraceContextScope scope(TraceContext{11, 2});
  TraceContext seen;
  std::thread t([&seen] { seen = CurrentTraceContext(); });
  t.join();
  EXPECT_FALSE(seen.active());
  EXPECT_EQ(CurrentTraceContext().trace_id, 11u);
}

uint64_t FixedIdSource() { return 4242; }

TEST(TraceContextTest, IdSourceIsInjectableAndResettable) {
  SetTraceIdSource(&FixedIdSource);
  EXPECT_EQ(NextTraceId(), 4242u);
  EXPECT_EQ(NextTraceId(), 4242u);
  // ResetTraceIds restores the counter and rewinds it: deterministic
  // ids for a deterministic workload.
  ResetTraceIds(100);
  EXPECT_EQ(NextTraceId(), 100u);
  EXPECT_EQ(NextTraceId(), 101u);
  ResetTraceIds();
  EXPECT_EQ(NextTraceId(), 1u);
  ResetTraceIds();
}

TEST(RequestTraceTest, BuildsTreeAccumulatesStagesAndEmitsWideEvent) {
  M2G_SKIP_IF_OBS_DISABLED();
  SetEnabled(true);
  ClearTraceTrees();
  WideEventSink::Global().Configure(WideEventOptions{});
  ResetTraceIds(1);
  {
    RequestTrace trace("obs_test");
    ASSERT_TRUE(trace.active());
    EXPECT_EQ(trace.trace_id(), 1u);
    trace.event().model_version = 7;
    trace.event().batch_size = 3;
    TraceSpan request("serve.request.ms");
    { TraceSpan encode("serve.stage.encode.ms"); }
    { TraceSpan decode("serve.stage.route_decode.ms"); }
  }
  const std::vector<TraceTree> trees = RecentTraceTrees();
  ASSERT_EQ(trees.size(), 1u);
  const TraceTree& tree = trees[0];
  EXPECT_EQ(tree.trace_id, 1u);
  EXPECT_EQ(tree.tag, "obs_test");
  // Spans land in completion order: encode, decode, then the root.
  ASSERT_EQ(tree.spans.size(), 3u);
  const TraceEvent& encode = tree.spans[0];
  const TraceEvent& decode = tree.spans[1];
  const TraceEvent& root = tree.spans[2];
  EXPECT_STREQ(root.stage, "serve.request.ms");
  EXPECT_EQ(root.parent_span_id, 0u);
  EXPECT_EQ(encode.parent_span_id, root.span_id);
  EXPECT_EQ(decode.parent_span_id, root.span_id);
  EXPECT_EQ(root.trace_id, 1u);
  // Deterministic dense ids: root allocated first, then the children.
  EXPECT_EQ(root.span_id, 2u);
  EXPECT_EQ(encode.span_id, 3u);
  EXPECT_EQ(decode.span_id, 4u);
  // Child windows nest inside the root's window.
  EXPECT_GE(encode.start_ms, root.start_ms);
  EXPECT_LE(encode.duration_ms + decode.duration_ms,
            root.duration_ms + 1e-6);

  const std::vector<WideEvent> events = WideEventSink::Global().Recent();
  ASSERT_EQ(events.size(), 1u);
  const WideEvent& event = events[0];
  EXPECT_EQ(event.trace_id, 1u);
  EXPECT_EQ(event.tag, "obs_test");
  EXPECT_EQ(event.model_version, 7);
  EXPECT_EQ(event.batch_size, 3);
  // The per-stage sums come from the tree, so tree and wide event agree
  // by construction, and they fit inside the request's wall time.
  EXPECT_DOUBLE_EQ(event.encode_ms, encode.duration_ms);
  EXPECT_DOUBLE_EQ(event.decode_ms, decode.duration_ms);
  EXPECT_LE(event.encode_ms + event.decode_ms, event.total_ms + 1e-6);
  EXPECT_GE(event.total_ms, root.duration_ms);
  ClearTraceTrees();
  WideEventSink::Global().Clear();
}

TEST(RequestTraceTest, NestedTraceIsInertAndSpansLandInOuter) {
  M2G_SKIP_IF_OBS_DISABLED();
  SetEnabled(true);
  ClearTraceTrees();
  WideEventSink::Global().Configure(WideEventOptions{});
  ResetTraceIds(1);
  {
    RequestTrace outer("outer");
    ASSERT_TRUE(outer.active());
    {
      RequestTrace inner("inner");
      EXPECT_FALSE(inner.active());
      TraceSpan span("obs_test.nested");
    }
  }
  const std::vector<TraceTree> trees = RecentTraceTrees();
  ASSERT_EQ(trees.size(), 1u);
  EXPECT_EQ(trees[0].tag, "outer");
  ASSERT_EQ(trees[0].spans.size(), 1u);
  EXPECT_STREQ(trees[0].spans[0].stage, "obs_test.nested");
  // Only the outer trace emitted a wide event.
  EXPECT_EQ(WideEventSink::Global().Recent().size(), 1u);
  ClearTraceTrees();
  WideEventSink::Global().Clear();
}

TEST(RequestTraceTest, DisabledTraceIsInert) {
  M2G_SKIP_IF_OBS_DISABLED();
  SetEnabled(false);
  ClearTraceTrees();
  {
    RequestTrace trace("off");
    EXPECT_FALSE(trace.active());
    EXPECT_EQ(trace.trace_id(), 0u);
    trace.event().model_version = 9;  // dropped, must not crash
  }
  EXPECT_TRUE(RecentTraceTrees().empty());
  SetEnabled(true);
}

TEST(RequestTraceTest, ExternalAndSharedSpansAttachCrossThread) {
  M2G_SKIP_IF_OBS_DISABLED();
  SetEnabled(true);
  ClearTraceTrees();
  WideEventSink::Global().Configure(WideEventOptions{});
  ResetTraceIds(1);
  Histogram wait_hist(DefaultLatencyBucketsMs());
  {
    RequestTrace trace("member");
    const TraceContext ctx = trace.context();
    ASSERT_TRUE(ctx.active());
    // Another thread (the batch leader) attributes queue wait and the
    // shared encode span back to this member via its captured context.
    std::thread leader([&ctx, &wait_hist] {
      RecordExternalSpan(ctx, "serve.batch.queue_wait.ms", 1.0, 2.5,
                         &wait_hist, 4);
      RecordSharedSpanRef(ctx, "serve.stage.encode.ms", 777, 3.0, 1.5, 4);
    });
    leader.join();
  }
  // The external span fed its histogram; the shared *reference* did not
  // (the shared span itself recorded the stage once for the batch).
  EXPECT_EQ(wait_hist.Snapshot().count, 1u);
  const std::vector<TraceTree> trees = RecentTraceTrees();
  ASSERT_EQ(trees.size(), 1u);
  ASSERT_EQ(trees[0].spans.size(), 2u);
  const TraceEvent& wait = trees[0].spans[0];
  const TraceEvent& shared = trees[0].spans[1];
  EXPECT_STREQ(wait.stage, "serve.batch.queue_wait.ms");
  EXPECT_EQ(wait.ref_span_id, 0u);
  EXPECT_EQ(wait.batch_size, 4);
  EXPECT_DOUBLE_EQ(wait.duration_ms, 2.5);
  EXPECT_STREQ(shared.stage, "serve.stage.encode.ms");
  EXPECT_EQ(shared.ref_span_id, 777u);
  EXPECT_DOUBLE_EQ(shared.duration_ms, 1.5);
  // Both landed in the wide event's per-stage sums.
  const std::vector<WideEvent> events = WideEventSink::Global().Recent();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_DOUBLE_EQ(events[0].queue_wait_ms, 2.5);
  EXPECT_DOUBLE_EQ(events[0].encode_ms, 1.5);
  ClearTraceTrees();
  WideEventSink::Global().Clear();
}

TEST(BatchTraceTest, OpensTaggedRootAndPushesBatchTree) {
  M2G_SKIP_IF_OBS_DISABLED();
  SetEnabled(true);
  ClearTraceTrees();
  ResetTraceIds(1);
  {
    BatchTrace batch(5);
    ASSERT_TRUE(batch.active());
    TraceSpan shared("serve.stage.graph_build.ms");
  }
  const std::vector<TraceTree> trees = RecentTraceTrees();
  ASSERT_EQ(trees.size(), 1u);
  EXPECT_EQ(trees[0].tag, "batch");
  ASSERT_EQ(trees[0].spans.size(), 2u);
  EXPECT_STREQ(trees[0].spans[0].stage, "serve.stage.graph_build.ms");
  EXPECT_STREQ(trees[0].spans[1].stage, "serve.batch.execute.ms");
  EXPECT_EQ(trees[0].spans[1].batch_size, 5);
  EXPECT_EQ(trees[0].spans[0].parent_span_id, trees[0].spans[1].span_id);
  ClearTraceTrees();
}

TEST(WideEventTest, HeadSamplingKeepsEveryNthTailKeepsSlow) {
  M2G_SKIP_IF_OBS_DISABLED();
  SetEnabled(true);
  WideEventSink sink;
  WideEventOptions options;
  options.head_sample_every = 3;
  options.tail_keep_over_ms = 100.0;
  sink.Configure(options);
  for (int i = 0; i < 9; ++i) {
    WideEvent event;
    event.trace_id = static_cast<uint64_t>(i + 1);
    event.total_ms = i == 4 ? 250.0 : 1.0;  // one slow outlier
    sink.Record(event);
  }
  // Head keeps seq 0, 3, 6; tail rescues the slow seq-4 event.
  const std::vector<WideEvent> kept = sink.Recent();
  ASSERT_EQ(kept.size(), 4u);
  EXPECT_EQ(kept[0].trace_id, 1u);
  EXPECT_EQ(kept[1].trace_id, 4u);
  EXPECT_EQ(kept[2].trace_id, 5u);
  EXPECT_EQ(kept[3].trace_id, 7u);
  EXPECT_EQ(sink.recorded(), 4u);
  EXPECT_EQ(sink.sampled_out(), 5u);
}

TEST(WideEventTest, HeadZeroKeepsOnlyTail) {
  M2G_SKIP_IF_OBS_DISABLED();
  SetEnabled(true);
  WideEventSink sink;
  WideEventOptions options;
  options.head_sample_every = 0;
  options.tail_keep_over_ms = 50.0;
  sink.Configure(options);
  WideEvent fast;
  fast.total_ms = 1.0;
  WideEvent slow;
  slow.total_ms = 60.0;
  sink.Record(fast);
  sink.Record(slow);
  const std::vector<WideEvent> kept = sink.Recent();
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_DOUBLE_EQ(kept[0].total_ms, 60.0);
}

TEST(WideEventTest, RingWrapsKeepingNewestOldestFirst) {
  M2G_SKIP_IF_OBS_DISABLED();
  SetEnabled(true);
  WideEventSink sink;
  WideEventOptions options;
  options.ring_capacity = 3;
  sink.Configure(options);
  for (int i = 1; i <= 5; ++i) {
    WideEvent event;
    event.trace_id = static_cast<uint64_t>(i);
    sink.Record(event);
  }
  const std::vector<WideEvent> kept = sink.Recent();
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_EQ(kept[0].trace_id, 3u);
  EXPECT_EQ(kept[2].trace_id, 5u);
}

TEST(WideEventTest, ToJsonLineEscapesControlBytes) {
  WideEvent event;
  event.tag = "a\"b\\c\nd\x01" "e";  // split: \x01e would parse as \x1e
  event.total_ms = 12.5;
  const std::string line = WideEventSink::ToJsonLine(event);
  EXPECT_NE(line.find("\"tag\": \"a\\\"b\\\\c\\nd\\u0001e\""),
            std::string::npos)
      << line;
  EXPECT_NE(line.find("\"total_ms\": 12.5"), std::string::npos) << line;
  // No raw control bytes survive escaping.
  for (char c : line) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u) << line;
  }
}

TEST(ExportTest, JsonEscapeCoversRfc8259) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("q\"b\\"), "q\\\"b\\\\");
  EXPECT_EQ(JsonEscape("\b\f\n\r\t"), "\\b\\f\\n\\r\\t");
  EXPECT_EQ(JsonEscape(std::string("\x1f", 1)), "\\u001f");
}

TEST(ExportTest, TracesJsonNestsChildrenUnderParents) {
  M2G_SKIP_IF_OBS_DISABLED();
  SetEnabled(true);
  ClearTraceTrees();
  ResetTraceIds(1);
  {
    RequestTrace trace("json");
    TraceSpan root("serve.request.ms");
    TraceSpan child("serve.stage.encode.ms");
  }
  const std::string json = ExportTracesJson();
  EXPECT_NE(json.find("\"tag\": \"json\""), std::string::npos) << json;
  // The encode span renders nested inside the request root's children
  // array, not as a second top-level span.
  const size_t root_at = json.find("serve.request.ms");
  const size_t child_at = json.find("serve.stage.encode.ms");
  ASSERT_NE(root_at, std::string::npos) << json;
  ASSERT_NE(child_at, std::string::npos) << json;
  EXPECT_LT(root_at, child_at);
  EXPECT_NE(json.find("\"children\": [{\"stage\": "
                      "\"serve.stage.encode.ms\""),
            std::string::npos)
      << json;
  ClearTraceTrees();
}

TEST(ExportTest, WriteFileAtomicReplacesAndLeavesNoTmp) {
  const std::string path = "obs_test_atomic.txt";
  ASSERT_TRUE(WriteFileAtomic(path, "first"));
  ASSERT_TRUE(WriteFileAtomic(path, "second"));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[32] = {0};
  const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  EXPECT_EQ(std::string(buf, n), "second");
  // The staging file never survives a successful write.
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "r");
  EXPECT_EQ(tmp, nullptr);
  if (tmp != nullptr) std::fclose(tmp);
  std::remove(path.c_str());
}

TEST(AdminServerTest, HandlePathRoutesEveryEndpoint) {
  MetricsRegistry::Global().counter("obs_test.admin").Increment();
  AdminOptions options;
  options.extra_health_json = [] {
    return std::string("\"model_version\": 3");
  };
  AdminServer server(options);
  const HttpResponse metrics = server.HandlePath("/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.content_type.find("text/plain"), std::string::npos);
  EXPECT_NE(metrics.body.find("# TYPE"), std::string::npos);
  const HttpResponse json = server.HandlePath("/metrics.json");
  EXPECT_EQ(json.status, 200);
  EXPECT_EQ(json.content_type, "application/json");
  EXPECT_EQ(json.body.front(), '{');
  EXPECT_EQ(server.HandlePath("/traces").body.front(), '[');
  EXPECT_EQ(server.HandlePath("/events").body.front(), '[');
  const HttpResponse health = server.HandlePath("/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(health.body.find("\"model_version\": 3"), std::string::npos);
  EXPECT_EQ(server.HandlePath("/").status, 200);
  EXPECT_EQ(server.HandlePath("/nope").status, 404);
}

/// Minimal blocking HTTP GET against loopback for the socket tests.
std::string HttpGet(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string req = "GET " + path +
                          " HTTP/1.1\r\nHost: localhost\r\n"
                          "Connection: close\r\n\r\n";
  size_t sent = 0;
  while (sent < req.size()) {
    const ssize_t n = ::send(fd, req.data() + sent, req.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string out;
  char buf[2048];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

TEST(AdminServerTest, ServesConcurrentScrapesOverRealSockets) {
  MetricsRegistry::Global().counter("obs_test.admin").Increment();
  AdminServer server;  // port 0: ephemeral
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  ASSERT_TRUE(server.running());
  ASSERT_GT(server.port(), 0);
  constexpr int kClients = 4;
  constexpr int kScrapes = 5;
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&server, &ok] {
      for (int i = 0; i < kScrapes; ++i) {
        const std::string resp = HttpGet(server.port(), "/metrics");
        if (resp.find("200 OK") != std::string::npos &&
            resp.find("# TYPE") != std::string::npos) {
          ok.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();
  EXPECT_EQ(ok.load(), kClients * kScrapes);
  EXPECT_GE(server.requests_served(),
            static_cast<uint64_t>(kClients * kScrapes));
  // A second Start while running fails cleanly.
  EXPECT_FALSE(server.Start(&error));
  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // idempotent
}

TEST(ThreadSlotTest, StableWithinThreadAndBounded) {
  const int slot = internal::ThreadSlot();
  EXPECT_EQ(slot, internal::ThreadSlot());
  EXPECT_GE(slot, 0);
  EXPECT_LT(slot, internal::kMaxShards);
  int other = -1;
  std::thread t([&other] { other = internal::ThreadSlot(); });
  t.join();
  EXPECT_GE(other, 0);
  EXPECT_LT(other, internal::kMaxShards);
}

}  // namespace
}  // namespace m2g::obs
