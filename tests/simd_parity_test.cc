// Bitwise-parity suite for the runtime-dispatched SIMD kernel tier
// (tensor/simd.h): every vectorized kernel, on every tier this host
// supports, must produce byte-identical output to the scalar reference
// — on ragged shapes (k, m not multiples of the vector width), rows
// with exact zeros (both inside and beyond the zero-scan cap),
// denormals, and ±inf/NaN inputs. This is the contract the whole
// fast-path stack (encode/decode/serving/training) leans on.

#include <gtest/gtest.h>

#include <cfloat>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "core/trainer.h"
#include "tensor/matrix.h"
#include "tensor/simd.h"

namespace m2g {
namespace {

/// Every tier the host can actually run (SetTier clamps, so requesting
/// an unsupported tier would silently retest a lower one — skip those).
std::vector<simd::Tier> SupportedTiers() {
  std::vector<simd::Tier> tiers = {simd::Tier::kScalar};
  if (simd::DetectedTier() >= simd::Tier::kSse2) {
    tiers.push_back(simd::Tier::kSse2);
  }
  if (simd::DetectedTier() >= simd::Tier::kAvx2) {
    tiers.push_back(simd::Tier::kAvx2);
  }
  return tiers;
}

/// Restores the dispatch tier after each test so ordering within this
/// binary (and any suite run after it) is tier-neutral.
class SimdParityTest : public ::testing::Test {
 protected:
  void SetUp() override { entry_tier_ = simd::ActiveTier(); }
  void TearDown() override { simd::SetTier(entry_tier_); }

 private:
  simd::Tier entry_tier_ = simd::Tier::kScalar;
};

/// Runs `fn` (filling `out`) under every supported tier and asserts the
/// bytes match the scalar tier's exactly.
template <typename Fn>
void ExpectTierParity(Fn&& fn, const char* what) {
  simd::SetTier(simd::Tier::kScalar);
  const std::vector<float> want = fn();
  for (simd::Tier tier : SupportedTiers()) {
    simd::SetTier(tier);
    ASSERT_EQ(simd::ActiveTier(), tier);
    const std::vector<float> got = fn();
    ASSERT_EQ(got.size(), want.size());
    EXPECT_EQ(
        std::memcmp(got.data(), want.data(), want.size() * sizeof(float)), 0)
        << what << " diverges on tier " << simd::TierName(tier);
  }
}

/// The skip-if-zero ascending-p reference AccumulateRowMatMul is
/// specified against (the pre-fast-path op composition).
void ReferenceRow(const float* x, int k, const float* b, int m,
                  float* out_row) {
  for (int p = 0; p < k; ++p) {
    if (x[p] == 0.0f) continue;
    for (int j = 0; j < m; ++j) {
      out_row[j] += x[p] * b[static_cast<size_t>(p) * m + j];
    }
  }
}

TEST_F(SimdParityTest, DenseRowMatMulRaggedShapes) {
  Rng rng(7001);
  // Straddles the 4-wide p-unroll, the 4- and 8-wide j vectors, and the
  // 16-entry zero-scan cap.
  for (int k : {1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 31, 48, 65}) {
    for (int m : {4, 5, 7, 8, 9, 12, 16, 47, 48, 49}) {
      Matrix x = Matrix::Random(1, k, 0.1f, 1.0f, &rng);  // zero-free
      const Matrix b = Matrix::Random(k, m, -1.0f, 1.0f, &rng);
      ExpectTierParity(
          [&] {
            std::vector<float> out(m, 0.0f);
            AccumulateRowMatMul(x.data(), k, b.data(), m, out.data());
            return out;
          },
          "AccumulateRowMatMul dense");
      // And against the skip reference (no zeros, so skip == include).
      std::vector<float> got(m, 0.0f), want(m, 0.0f);
      AccumulateRowMatMul(x.data(), k, b.data(), m, got.data());
      ReferenceRow(x.data(), k, b.data(), m, want.data());
      EXPECT_EQ(std::memcmp(got.data(), want.data(), m * sizeof(float)), 0)
          << "k=" << k << " m=" << m;
    }
  }
}

TEST_F(SimdParityTest, DenseRowMatMulZeroRowsTakeSparsePathOnEveryTier) {
  Rng rng(7002);
  for (int k : {4, 16, 33}) {
    const int m = 9;
    Matrix x = Matrix::Random(1, k, 0.1f, 1.0f, &rng);
    x.At(0, 0) = 0.0f;  // zero inside the scan prefix -> branchy path
    if (k > 2) x.At(0, k / 2) = 0.0f;
    const Matrix b = Matrix::Random(k, m, -1.0f, 1.0f, &rng);
    ExpectTierParity(
        [&] {
          std::vector<float> out(m, 0.25f);
          AccumulateRowMatMul(x.data(), k, b.data(), m, out.data());
          return out;
        },
        "AccumulateRowMatMul sparse");
    std::vector<float> got(m, 0.25f), want(m, 0.25f);
    AccumulateRowMatMul(x.data(), k, b.data(), m, got.data());
    ReferenceRow(x.data(), k, b.data(), m, want.data());
    EXPECT_EQ(std::memcmp(got.data(), want.data(), m * sizeof(float)), 0);
  }
}

TEST_F(SimdParityTest, DenseRowMatMulZeroBeyondScanCapStaysBitwiseNeutral) {
  // A zero past the 16-entry scan cap reaches the dense kernel, which
  // adds a +/-0.0 term instead of skipping — the capped-scan parity
  // argument says that is invisible. Pin it against the skip reference
  // on every tier, with both +0.0 and -0.0 hidden zeros.
  Rng rng(7003);
  const int k = 40, m = 17;
  for (float hidden_zero : {0.0f, -0.0f}) {
    Matrix x = Matrix::Random(1, k, 0.1f, 1.0f, &rng);
    x.At(0, 20) = hidden_zero;
    x.At(0, k - 1) = hidden_zero;
    const Matrix b = Matrix::Random(k, m, -1.0f, 1.0f, &rng);
    simd::SetTier(simd::Tier::kScalar);
    std::vector<float> want(m, 0.0f);
    ReferenceRow(x.data(), k, b.data(), m, want.data());
    for (simd::Tier tier : SupportedTiers()) {
      simd::SetTier(tier);
      std::vector<float> got(m, 0.0f);
      AccumulateRowMatMul(x.data(), k, b.data(), m, got.data());
      EXPECT_EQ(std::memcmp(got.data(), want.data(), m * sizeof(float)), 0)
          << "tier " << simd::TierName(tier) << " zero "
          << (std::signbit(hidden_zero) ? "-0" : "+0");
    }
  }
}

TEST_F(SimdParityTest, DenseRowMatMulDenormals) {
  // Denormal operands and products: no tier may flush to zero (the
  // library never touches MXCSR, so FTZ/DAZ stay off).
  const int k = 8, m = 11;
  std::vector<float> x(k), b(static_cast<size_t>(k) * m);
  Rng rng(7004);
  for (int p = 0; p < k; ++p) {
    x[p] = (p % 2 == 0) ? FLT_MIN / 4.0f
                        : static_cast<float>(rng.Uniform(0.5, 1.0));
  }
  for (size_t i = 0; i < b.size(); ++i) {
    b[i] = (i % 3 == 0) ? FLT_MIN * 2.0f
                        : static_cast<float>(rng.Uniform(-1.0, 1.0)) *
                              FLT_MIN;
  }
  ExpectTierParity(
      [&] {
        std::vector<float> out(m, 0.0f);
        AccumulateRowMatMul(x.data(), k, b.data(), m, out.data());
        return out;
      },
      "AccumulateRowMatMul denormal");
}

TEST_F(SimdParityTest, GatLogitsRowInfAndNan) {
  const float inf = std::numeric_limits<float>::infinity();
  const float nan = std::numeric_limits<float>::quiet_NaN();
  for (int n : {1, 3, 7, 8, 9, 16, 50, 51}) {
    std::vector<float> s_dst(n), s_edge(n);
    Rng rng(7005);
    for (int j = 0; j < n; ++j) {
      s_dst[j] = static_cast<float>(rng.Uniform(-2.0, 2.0));
      s_edge[j] = static_cast<float>(rng.Uniform(-2.0, 2.0));
    }
    if (n >= 4) {
      s_dst[0] = inf;
      s_dst[1] = -inf;
      s_edge[2] = nan;
      s_edge[3] = -inf;  // may meet +inf in s_dst -> NaN pre-activation
    }
    ExpectTierParity(
        [&] {
          std::vector<float> logits(n, 0.0f);
          GatLogitsRow(s_dst.data(), s_edge.data(), 0.37f, 0.2f, n,
                       logits.data());
          return logits;
        },
        "GatLogitsRow");
  }
}

TEST_F(SimdParityTest, AffineRawReluEdgeCases) {
  // AffineRaw composes the dense row kernel, the bias row add, and the
  // ReLU sweep — all dispatched. Negative zeros in the bias force
  // exact-zero pre-activations through the ReLU select.
  Rng rng(7006);
  for (int m : {5, 8, 13, 48}) {
    const int n = 7, k = 19;
    const Matrix x = Matrix::Random(n, k, 0.05f, 1.0f, &rng);
    const Matrix w = Matrix::Random(k, m, -1.0f, 1.0f, &rng);
    Matrix bias = Matrix::Random(1, m, -0.5f, 0.5f, &rng);
    bias.At(0, 0) = -0.0f;
    ExpectTierParity(
        [&] {
          const Matrix out = AffineRaw(x, w, &bias, Activation::kRelu);
          return std::vector<float>(out.data(), out.data() + out.size());
        },
        "AffineRaw+ReLU");
  }
}

TEST_F(SimdParityTest, DualAffineRawAcrossTiers) {
  Rng rng(7007);
  const int batch = 3, in = 10, hidden = 13;
  const Matrix x = Matrix::Random(batch, in, -1.0f, 1.0f, &rng);
  const Matrix wx = Matrix::Random(in, 4 * hidden, -1.0f, 1.0f, &rng);
  const Matrix h = Matrix::Random(batch, hidden, -1.0f, 1.0f, &rng);
  const Matrix wh = Matrix::Random(hidden, 4 * hidden, -1.0f, 1.0f, &rng);
  const Matrix bias = Matrix::Random(1, 4 * hidden, -1.0f, 1.0f, &rng);
  ExpectTierParity(
      [&] {
        const Matrix out = DualAffineRaw(x, wx, h, wh, bias);
        return std::vector<float>(out.data(), out.data() + out.size());
      },
      "DualAffineRaw");
}

TEST_F(SimdParityTest, MatMulIntoAndManyIntoAcrossTiers) {
  Rng rng(7008);
  const int k = 21, m = 18;
  const Matrix b = Matrix::Random(k, m, -1.0f, 1.0f, &rng);
  const Matrix a0 = Matrix::Random(5, k, 0.1f, 1.0f, &rng);
  const Matrix a1 = Matrix::Random(1, k, 0.1f, 1.0f, &rng);
  const Matrix a2 = Matrix::Random(9, k, 0.1f, 1.0f, &rng);
  ExpectTierParity(
      [&] {
        std::vector<float> o0(a0.rows() * m), o1(a1.rows() * m),
            o2(a2.rows() * m);
        MatMulManySlice slices[3] = {{a0.data(), a0.rows(), o0.data()},
                                     {a1.data(), a1.rows(), o1.data()},
                                     {a2.data(), a2.rows(), o2.data()}};
        MatMulManyInto(slices, 3, k, b.data(), m);
        std::vector<float> all;
        all.insert(all.end(), o0.begin(), o0.end());
        all.insert(all.end(), o1.begin(), o1.end());
        all.insert(all.end(), o2.begin(), o2.end());
        return all;
      },
      "MatMulManyInto");
}

TEST_F(SimdParityTest, TransposedMatMulsMatchUnfusedReferenceAcrossTiers) {
  Rng rng(7009);
  // Shapes from the autograd backward passes that call these. Zeros in
  // `a` exercise the sparse/dense selection inside the row kernel.
  Matrix a = Matrix::Random(17, 9, -1.0f, 1.0f, &rng);
  a.At(3, 0) = 0.0f;
  const Matrix b = Matrix::Random(17, 12, -1.0f, 1.0f, &rng);
  const Matrix c = Matrix::Random(12, 9, -1.0f, 1.0f, &rng);
  for (simd::Tier tier : SupportedTiers()) {
    simd::SetTier(tier);
    const Matrix atb = MatMulATB(a, b);
    const Matrix atb_ref = MatMulRaw(TransposeRaw(a), b);
    ASSERT_TRUE(atb.SameShape(atb_ref));
    EXPECT_EQ(std::memcmp(atb.data(), atb_ref.data(),
                          atb.size() * sizeof(float)),
              0)
        << "MatMulATB tier " << simd::TierName(tier);
    const Matrix abt = MatMulABT(a, c);
    const Matrix abt_ref = MatMulRaw(a, TransposeRaw(c));
    ASSERT_TRUE(abt.SameShape(abt_ref));
    EXPECT_EQ(std::memcmp(abt.data(), abt_ref.data(),
                          abt.size() * sizeof(float)),
              0)
        << "MatMulABT tier " << simd::TierName(tier);
  }
}

TEST_F(SimdParityTest, ElementwiseKernelsAcrossTiers) {
  Rng rng(7010);
  const float inf = std::numeric_limits<float>::infinity();
  const float nan = std::numeric_limits<float>::quiet_NaN();
  for (int n : {1, 3, 4, 7, 8, 9, 33, 100}) {
    Matrix a = Matrix::Random(1, n, -1.0f, 1.0f, &rng);
    Matrix b = Matrix::Random(1, n, -1.0f, 1.0f, &rng);
    if (n >= 4) {
      a.At(0, 0) = -0.0f;
      a.At(0, 1) = FLT_MIN / 8.0f;
      b.At(0, 2) = inf;
      b.At(0, 3) = nan;
    }
    ExpectTierParity(
        [&] {
          Matrix sum = a;
          sum.AddInPlace(b);
          return std::vector<float>(sum.data(), sum.data() + sum.size());
        },
        "AddInPlace");
    ExpectTierParity(
        [&] {
          std::vector<float> v(b.data(), b.data() + b.size());
          simd::ReluInPlace(v.data(), v.size());
          return v;
        },
        "ReluInPlace");
  }
}

TEST_F(SimdParityTest, TierNamesParseAndClamp) {
  simd::Tier tier = simd::Tier::kAvx2;
  EXPECT_TRUE(simd::ParseTierName("off", &tier));
  EXPECT_EQ(tier, simd::Tier::kScalar);
  EXPECT_TRUE(simd::ParseTierName("scalar", &tier));
  EXPECT_EQ(tier, simd::Tier::kScalar);
  EXPECT_TRUE(simd::ParseTierName("sse2", &tier));
  EXPECT_EQ(tier, simd::Tier::kSse2);
  EXPECT_TRUE(simd::ParseTierName("avx2", &tier));
  EXPECT_EQ(tier, simd::Tier::kAvx2);
  EXPECT_FALSE(simd::ParseTierName("auto", &tier));
  EXPECT_FALSE(simd::ParseTierName("AVX512", &tier));
  EXPECT_FALSE(simd::ParseTierName(nullptr, &tier));

  // Requesting above the detected tier clamps instead of crashing on
  // unsupported instructions.
  simd::SetTier(simd::Tier::kAvx2);
  EXPECT_LE(simd::ActiveTier(), simd::DetectedTier());
  EXPECT_STREQ(simd::TierName(simd::Tier::kScalar), "scalar");
  EXPECT_STREQ(simd::TierName(simd::Tier::kSse2), "sse2");
  EXPECT_STREQ(simd::TierName(simd::Tier::kAvx2), "avx2");
}

TEST_F(SimdParityTest, ModelConfigKillSwitchForcesScalarTier) {
  core::ModelConfig config;
  config.hidden_dim = 16;
  config.num_heads = 2;
  config.num_layers = 1;
  config.aoi_id_embed_dim = 4;
  config.aoi_type_embed_dim = 2;
  config.lstm_hidden_dim = 16;
  config.courier_dim = 8;
  config.pos_enc_dim = 4;
  config.simd_kernels = false;
  core::M2g4Rtp model(config);
  EXPECT_EQ(simd::ActiveTier(), simd::Tier::kScalar);
}

TEST_F(SimdParityTest, FixedSeedTrainingIsTierInvariant) {
  // The end-to-end guarantee the per-kernel pins add up to: a short
  // fixed-seed fit lands on byte-identical parameters whether the
  // kernels ran scalar or at the best tier this host offers.
  synth::DataConfig dc;
  dc.seed = 1212;
  dc.world.num_aois = 40;
  dc.couriers.num_couriers = 3;
  dc.num_days = 2;
  const synth::DatasetSplits splits = synth::BuildDataset(dc);

  core::ModelConfig mc;
  mc.hidden_dim = 16;
  mc.num_heads = 2;
  mc.num_layers = 1;
  mc.aoi_id_embed_dim = 4;
  mc.aoi_type_embed_dim = 2;
  mc.lstm_hidden_dim = 16;
  mc.courier_dim = 8;
  mc.pos_enc_dim = 4;

  auto fit_params = [&](simd::Tier tier) {
    simd::SetTier(tier);
    core::M2g4Rtp model(mc);
    core::TrainConfig tc;
    tc.epochs = 1;
    tc.early_stop_patience = 0;
    tc.max_samples_per_epoch = 8;
    core::Trainer trainer(&model, tc);
    trainer.Fit(splits.train, splits.val);
    std::vector<float> flat;
    for (const auto& [name, tensor] : model.NamedParameters()) {
      const Matrix& value = tensor.value();
      flat.insert(flat.end(), value.data(), value.data() + value.size());
    }
    return flat;
  };

  const std::vector<float> scalar_params = fit_params(simd::Tier::kScalar);
  const std::vector<float> best_params = fit_params(simd::DetectedTier());
  ASSERT_EQ(scalar_params.size(), best_params.size());
  EXPECT_EQ(std::memcmp(scalar_params.data(), best_params.data(),
                        scalar_params.size() * sizeof(float)),
            0);
}

}  // namespace
}  // namespace m2g
