// Numeric-vs-analytic gradient checks at module granularity: GAT-e,
// the pointer route decoder, SortLSTM and the full M2G4RTP training
// loss. These catch any backward-pass mistake the op-level checks in
// autograd_test.cc cannot see (wrong composition, double-counting,
// detached paths).

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "core/gat_e.h"
#include "core/model.h"
#include "core/route_decoder.h"
#include "core/sort_lstm.h"

namespace m2g::core {
namespace {

/// Checks d(loss)/d(param[i]) for a subsample of indices of every
/// parameter of `module` against central differences.
void CheckModuleGradients(const nn::Module& module,
                          const std::function<Tensor()>& loss_fn,
                          int max_indices_per_param = 4,
                          float eps = 2e-2f, float tol = 6e-2f) {
  auto params = module.NamedParameters();
  // Analytic gradients.
  for (const auto& [name, p] : params) p.ZeroGrad();
  loss_fn().Backward();

  for (const auto& [name, p] : params) {
    Matrix& w = p.node()->value;
    const Matrix& g = p.grad();
    if (!g.SameShape(w)) continue;  // parameter unused by this loss
    const size_t stride =
        std::max<size_t>(1, w.size() / max_indices_per_param);
    for (size_t i = 0; i < w.size(); i += stride) {
      const float orig = w[i];
      w[i] = orig + eps;
      const float up = loss_fn().item();
      w[i] = orig - eps;
      const float down = loss_fn().item();
      w[i] = orig;
      const float numeric = (up - down) / (2 * eps);
      const float scale =
          std::max({1.0f, std::fabs(numeric), std::fabs(g[i])});
      EXPECT_NEAR(g[i], numeric, tol * scale)
          << name << " flat index " << i;
    }
  }
}

/// Pushes the sample's time targets far from anything an untrained model
/// can output, so no |pred - target| kink lies within the numeric-check
/// epsilon (L1 subgradients at the kink would otherwise produce valid
/// analytic gradients that central differences cannot confirm).
void MoveTargetsAwayFromKinks(synth::Sample* sample) {
  for (double& t : sample->time_label_min) t += 240.0;
  for (double& t : sample->aoi_time_label_min) t += 240.0;
}

ModelConfig TinyConfig() {
  ModelConfig c;
  c.hidden_dim = 8;
  c.num_heads = 2;
  c.num_layers = 1;
  c.aoi_id_embed_dim = 2;
  c.aoi_type_embed_dim = 2;
  c.lstm_hidden_dim = 8;
  c.courier_dim = 4;
  c.pos_enc_dim = 4;
  return c;
}

TEST(ModuleGradcheckTest, GatELayer) {
  ModelConfig c = TinyConfig();
  Rng rng(1);
  const int n = 4;
  Tensor nodes = Tensor::Constant(
      Matrix::Random(n, c.hidden_dim, -1, 1, &rng));
  Tensor edges = Tensor::Constant(
      Matrix::Random(n * n, c.hidden_dim, -1, 1, &rng));
  std::vector<bool> adj(n * n, true);
  GatELayer layer(c, /*is_last=*/false, &rng);
  auto loss = [&] {
    GatEOutput out = layer.Forward(nodes, edges, adj);
    return Add(Mean(Mul(out.nodes, out.nodes)),
               Mean(Mul(out.edges, out.edges)));
  };
  CheckModuleGradients(layer, loss);
}

TEST(ModuleGradcheckTest, GatELastLayerAveraging) {
  ModelConfig c = TinyConfig();
  Rng rng(2);
  const int n = 3;
  Tensor nodes = Tensor::Constant(
      Matrix::Random(n, c.hidden_dim, -1, 1, &rng));
  Tensor edges = Tensor::Constant(
      Matrix::Random(n * n, c.hidden_dim, -1, 1, &rng));
  std::vector<bool> adj(n * n, true);
  GatELayer layer(c, /*is_last=*/true, &rng);
  auto loss = [&] {
    GatEOutput out = layer.Forward(nodes, edges, adj);
    return Mean(Mul(out.nodes, out.nodes));
  };
  CheckModuleGradients(layer, loss);
}

TEST(ModuleGradcheckTest, RouteDecoderTeacherForcedLoss) {
  Rng rng(3);
  const int n = 4, d = 6, du = 4;
  AttentionRouteDecoder decoder(d, du, 6, &rng);
  Tensor nodes = Tensor::Constant(Matrix::Random(n, d, -1, 1, &rng));
  Tensor courier = Tensor::Constant(Matrix::Random(1, du, -1, 1, &rng));
  std::vector<int> label = {2, 0, 3, 1};
  auto loss = [&] {
    return decoder.TeacherForcedLoss(nodes, courier, label);
  };
  CheckModuleGradients(decoder, loss);
}

TEST(ModuleGradcheckTest, SortLstmL1Objective) {
  Rng rng(4);
  const int n = 4, d = 6;
  SortLstm sort_lstm(d, 4, 100.0f, 6, &rng);
  Tensor nodes = Tensor::Constant(Matrix::Random(n, d, -1, 1, &rng));
  std::vector<int> route = {1, 3, 0, 2};
  auto loss = [&] {
    auto times = sort_lstm.Forward(nodes, route);
    Tensor total = Tensor::Scalar(0);
    for (int i = 0; i < n; ++i) {
      total = Add(total, L1Loss(times[i], 0.5f * (i + 1)));
    }
    return Scale(total, 1.0f / n);
  };
  CheckModuleGradients(sort_lstm, loss);
}

TEST(ModuleGradcheckTest, FullModelTrainingLoss) {
  synth::DataConfig dc;
  dc.seed = 55;
  dc.world.num_aois = 40;
  dc.couriers.num_couriers = 3;
  dc.num_days = 3;
  synth::DatasetSplits splits = synth::BuildDataset(dc);
  ASSERT_GT(splits.train.size(), 0);
  // Use the smallest available sample to keep the sweep fast.
  synth::Sample sample = splits.train.samples.front();
  for (const synth::Sample& s : splits.train.samples) {
    if (s.num_locations() < sample.num_locations()) sample = s;
  }
  MoveTargetsAwayFromKinks(&sample);

  M2g4Rtp model(TinyConfig());
  // Teacher-forced guidance keeps ComputeLoss deterministic for the
  // repeated evaluations of the numeric check.
  model.set_guidance_sampling_prob(0.0f);
  auto loss = [&] { return model.ComputeLoss(sample); };
  CheckModuleGradients(model, loss, /*max_indices_per_param=*/2);
}

TEST(ModuleGradcheckTest, FullModelSingleLevelVariant) {
  synth::DataConfig dc;
  dc.seed = 56;
  dc.world.num_aois = 40;
  dc.couriers.num_couriers = 3;
  dc.num_days = 3;
  synth::DatasetSplits splits = synth::BuildDataset(dc);
  synth::Sample sample = splits.train.samples.front();
  for (const synth::Sample& s : splits.train.samples) {
    if (s.num_locations() < sample.num_locations()) sample = s;
  }
  MoveTargetsAwayFromKinks(&sample);
  ModelConfig c = TinyConfig();
  c.use_aoi_level = false;
  M2g4Rtp model(c);
  auto loss = [&] { return model.ComputeLoss(sample); };
  CheckModuleGradients(model, loss, /*max_indices_per_param=*/2);
}

}  // namespace
}  // namespace m2g::core
