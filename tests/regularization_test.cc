#include <gtest/gtest.h>

#include <cmath>

#include "nn/optimizer.h"
#include "nn/regularization.h"

namespace m2g::nn {
namespace {

TEST(DropoutTest, RateZeroIsIdentity) {
  Dropout dropout(0.0f, 1);
  Tensor x = Tensor::Constant(Matrix(3, 4, std::vector<float>(12, 2.0f)));
  Tensor y = dropout.Apply(x);
  for (int i = 0; i < 12; ++i) EXPECT_FLOAT_EQ(y.value()[i], 2.0f);
}

TEST(DropoutTest, SurvivorsScaledPreservingExpectation) {
  Dropout dropout(0.5f, 2);
  Tensor x =
      Tensor::Constant(Matrix(100, 100, std::vector<float>(10000, 1.0f)));
  Tensor y = dropout.Apply(x);
  double sum = 0;
  int zeros = 0;
  for (size_t i = 0; i < y.value().size(); ++i) {
    const float v = y.value()[i];
    EXPECT_TRUE(v == 0.0f || std::fabs(v - 2.0f) < 1e-6f);
    sum += v;
    zeros += v == 0.0f ? 1 : 0;
  }
  // Inverted dropout keeps the expectation ~1 per entry.
  EXPECT_NEAR(sum / 10000.0, 1.0, 0.05);
  EXPECT_NEAR(zeros / 10000.0, 0.5, 0.03);
}

TEST(DropoutTest, GradientsFlowThroughSurvivorsOnly) {
  Dropout dropout(0.4f, 3);
  Tensor w = Tensor::Parameter(Matrix(1, 50, std::vector<float>(50, 1.0f)));
  Tensor y = dropout.Apply(w);
  Sum(y).Backward();
  for (int i = 0; i < 50; ++i) {
    if (y.value()[i] == 0.0f) {
      EXPECT_FLOAT_EQ(w.grad()[i], 0.0f);
    } else {
      EXPECT_NEAR(w.grad()[i], 1.0f / 0.6f, 1e-5f);
    }
  }
}

TEST(LayerNormTest, NormalizesRowsAtInit) {
  Rng rng(4);
  LayerNorm norm(8);
  Tensor x = Tensor::Constant(Matrix::Random(5, 8, -3, 7, &rng));
  Tensor y = norm.Forward(x);
  for (int r = 0; r < 5; ++r) {
    double mean = 0, var = 0;
    for (int c = 0; c < 8; ++c) mean += y.value().At(r, c);
    mean /= 8;
    for (int c = 0; c < 8; ++c) {
      const double d = y.value().At(r, c) - mean;
      var += d * d;
    }
    var /= 8;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(LayerNormTest, GainBiasShapeAndCount) {
  LayerNorm norm(16);
  EXPECT_EQ(norm.ParameterCount(), 32);
  EXPECT_EQ(norm.dim(), 16);
}

TEST(LayerNormTest, Gradcheck) {
  Rng rng(5);
  LayerNorm norm(6);
  Tensor x = Tensor::Parameter(Matrix::Random(3, 6, -1, 1, &rng));
  Tensor target = Tensor::Constant(Matrix::Random(3, 6, -1, 1, &rng));
  auto loss_fn = [&] {
    Tensor diff = Sub(norm.Forward(x), target);
    return Mean(Mul(diff, diff));
  };
  // Check x and the norm's own parameters numerically.
  auto check = [&](const Tensor& p) {
    p.ZeroGrad();
    for (const Tensor& q : norm.Parameters()) q.ZeroGrad();
    loss_fn().Backward();
    Matrix analytic = p.grad();
    Matrix& w = p.node()->value;
    const float eps = 1e-2f;
    for (size_t i = 0; i < w.size(); ++i) {
      const float orig = w[i];
      w[i] = orig + eps;
      const float up = loss_fn().item();
      w[i] = orig - eps;
      const float down = loss_fn().item();
      w[i] = orig;
      const float numeric = (up - down) / (2 * eps);
      EXPECT_NEAR(analytic[i], numeric,
                  2e-2f * std::max(1.0f, std::fabs(numeric)))
          << "index " << i;
    }
  };
  check(x);
  for (const Tensor& p : norm.Parameters()) check(p);
}

TEST(AdamWTest, WeightDecayShrinksUnusedWeights) {
  // With zero gradient signal, AdamW decay pulls weights toward zero;
  // plain Adam leaves them untouched.
  auto run = [](float decay) {
    Tensor w = Tensor::Parameter(Matrix(1, 1, {4.0f}));
    Adam opt({w}, 0.1f, 0.9f, 0.999f, 1e-8f, decay);
    for (int i = 0; i < 50; ++i) {
      opt.ZeroGrad();
      // A loss independent of w still allocates its grad (stays zero).
      Sum(Scale(w, 0.0f)).Backward();
      opt.Step();
    }
    return w.value()[0];
  };
  EXPECT_NEAR(run(0.0f), 4.0f, 1e-5f);
  EXPECT_LT(run(0.1f), 4.0f * std::pow(1.0f - 0.1f * 0.1f, 45));
}

TEST(AdamWTest, StillMinimizesWithDecay) {
  Tensor w = Tensor::Parameter(Matrix(1, 1, {5.0f}));
  Adam opt({w}, 0.05f, 0.9f, 0.999f, 1e-8f, 0.01f);
  for (int i = 0; i < 400; ++i) {
    opt.ZeroGrad();
    Tensor diff = AddScalar(w, -2.0f);
    Sum(Mul(diff, diff)).Backward();
    opt.Step();
  }
  // Decay biases slightly below the unregularized optimum of 2.
  EXPECT_NEAR(w.value()[0], 2.0f, 0.15f);
}

}  // namespace
}  // namespace m2g::nn
