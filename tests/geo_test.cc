#include <gtest/gtest.h>

#include <cmath>

#include "geo/latlng.h"

namespace m2g::geo {
namespace {

constexpr LatLng kHangzhou{30.25, 120.17};

TEST(GeoTest, HaversineZeroForSamePoint) {
  EXPECT_NEAR(HaversineMeters(kHangzhou, kHangzhou), 0.0, 1e-9);
}

TEST(GeoTest, HaversineKnownDistance) {
  // One degree of latitude is ~111.2 km.
  LatLng north{31.25, 120.17};
  EXPECT_NEAR(HaversineMeters(kHangzhou, north), 111195.0, 200.0);
}

TEST(GeoTest, ApproxMatchesHaversineAtCityScale) {
  LatLng b = OffsetMeters(kHangzhou, 3000.0, -2000.0);
  const double h = HaversineMeters(kHangzhou, b);
  const double a = ApproxMeters(kHangzhou, b);
  EXPECT_NEAR(a, h, h * 0.002);
}

TEST(GeoTest, OffsetMetersRoundTrip) {
  LatLng p = OffsetMeters(kHangzhou, 1234.0, -567.0);
  EXPECT_NEAR(ApproxMeters(kHangzhou, p),
              std::sqrt(1234.0 * 1234.0 + 567.0 * 567.0), 5.0);
}

TEST(GeoTest, OffsetDirectionSigns) {
  LatLng east = OffsetMeters(kHangzhou, 1000.0, 0.0);
  EXPECT_GT(east.lng, kHangzhou.lng);
  EXPECT_NEAR(east.lat, kHangzhou.lat, 1e-9);
  LatLng south = OffsetMeters(kHangzhou, 0.0, -1000.0);
  EXPECT_LT(south.lat, kHangzhou.lat);
}

TEST(GeoTest, CentroidOfSymmetricPoints) {
  std::vector<LatLng> pts = {
      OffsetMeters(kHangzhou, 100, 0), OffsetMeters(kHangzhou, -100, 0),
      OffsetMeters(kHangzhou, 0, 100), OffsetMeters(kHangzhou, 0, -100)};
  LatLng c = Centroid(pts);
  EXPECT_NEAR(ApproxMeters(c, kHangzhou), 0.0, 1.0);
}

TEST(GeoTest, SymmetryOfDistances) {
  LatLng b = OffsetMeters(kHangzhou, 2500, 900);
  EXPECT_DOUBLE_EQ(HaversineMeters(kHangzhou, b),
                   HaversineMeters(b, kHangzhou));
  EXPECT_DOUBLE_EQ(ApproxMeters(kHangzhou, b), ApproxMeters(b, kHangzhou));
}

TEST(GeoTest, TriangleInequalityApprox) {
  LatLng b = OffsetMeters(kHangzhou, 1500, 500);
  LatLng c = OffsetMeters(kHangzhou, -700, 2100);
  EXPECT_LE(ApproxMeters(kHangzhou, c),
            ApproxMeters(kHangzhou, b) + ApproxMeters(b, c) + 1e-6);
}

}  // namespace
}  // namespace m2g::geo
