#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/trainer.h"
#include "obs/export.h"
#include "serve/eta_service.h"
#include "serve/graph_builder.h"
#include "serve/order_sorting_service.h"
#include "serve/replay.h"

namespace m2g::serve {
namespace {

struct ServeFixture {
  synth::DataConfig data_config;
  synth::BuiltWorld built;
  std::unique_ptr<core::M2g4Rtp> model;

  ServeFixture()
      : data_config([] {
          synth::DataConfig dc;
          dc.seed = 707;
          dc.world.num_aois = 70;
          dc.world.num_districts = 3;
          dc.couriers.num_couriers = 6;
          dc.num_days = 6;
          return dc;
        }()),
        built(synth::BuildWorldAndDataset(data_config)) {
    core::ModelConfig mc;
    mc.hidden_dim = 16;
    mc.num_heads = 2;
    mc.num_layers = 1;
    mc.aoi_id_embed_dim = 4;
    mc.aoi_type_embed_dim = 2;
    mc.lstm_hidden_dim = 16;
    mc.courier_dim = 8;
    mc.pos_enc_dim = 4;
    model = std::make_unique<core::M2g4Rtp>(mc);
    core::TrainConfig tc;
    tc.epochs = 1;
    tc.max_samples_per_epoch = 30;
    core::Trainer trainer(model.get(), tc);
    trainer.Fit(built.splits.train, built.splits.val);
  }

  RtpRequest RequestFromSample(const synth::Sample& s) const {
    RtpRequest req;
    req.courier = s.courier;
    req.courier_pos = s.courier_pos;
    req.query_time_min = s.query_time_min;
    req.weather = s.weather;
    req.weekday = s.weekday;
    for (const synth::LocationTask& task : s.locations) {
      synth::Order o;
      o.id = task.order_id;
      o.pos = task.pos;
      o.aoi_id = task.aoi_id;
      o.accept_time_min = task.accept_time_min;
      o.deadline_min = task.deadline_min;
      req.pending.push_back(o);
    }
    return req;
  }
};

ServeFixture* Fixture() {
  static ServeFixture* fixture = new ServeFixture();
  return fixture;
}

TEST(FeatureExtractorTest, ReconstructsOfflineSampleExactly) {
  // The online feature path must produce the same sample the offline
  // snapshot pipeline produced (minus labels).
  ServeFixture* f = Fixture();
  FeatureExtractor extractor(&f->built.world);
  const synth::Sample& offline = f->built.splits.test.samples.front();
  synth::Sample online =
      extractor.BuildSample(f->RequestFromSample(offline));
  ASSERT_EQ(online.num_locations(), offline.num_locations());
  ASSERT_EQ(online.num_aois(), offline.num_aois());
  EXPECT_EQ(online.loc_to_aoi, offline.loc_to_aoi);
  EXPECT_EQ(online.aoi_node_ids, offline.aoi_node_ids);
  for (int i = 0; i < online.num_locations(); ++i) {
    EXPECT_EQ(online.locations[i].order_id, offline.locations[i].order_id);
    EXPECT_EQ(online.locations[i].aoi_type, offline.locations[i].aoi_type);
    EXPECT_NEAR(online.locations[i].dist_from_courier_m,
                offline.locations[i].dist_from_courier_m, 1e-6);
  }
  EXPECT_TRUE(online.route_label.empty());  // no labels online
}

TEST(GraphBuilderTest, OnlineGraphMatchesOffline) {
  ServeFixture* f = Fixture();
  FeatureExtractor extractor(&f->built.world);
  GraphBuilder builder;
  const synth::Sample& offline = f->built.splits.test.samples.front();
  synth::Sample online =
      extractor.BuildSample(f->RequestFromSample(offline));
  graph::MultiLevelGraph og =
      graph::BuildMultiLevelGraph(offline, builder.config());
  graph::MultiLevelGraph ng = builder.Build(online);
  EXPECT_EQ(og.location.adjacency, ng.location.adjacency);
  EXPECT_EQ(og.aoi.adjacency, ng.aoi.adjacency);
  for (size_t i = 0; i < og.location.node_continuous.size(); ++i) {
    EXPECT_FLOAT_EQ(og.location.node_continuous[i],
                    ng.location.node_continuous[i]);
  }
}

TEST(RtpServiceTest, HandleServesJointPrediction) {
  ServeFixture* f = Fixture();
  RtpService service(&f->built.world, f->model.get());
  const synth::Sample& s = f->built.splits.test.samples.front();
  RtpService::Response response = service.Handle(f->RequestFromSample(s));
  EXPECT_EQ(static_cast<int>(response.prediction.location_route.size()),
            s.num_locations());
  EXPECT_EQ(service.requests_served(), 1);
}

TEST(RtpServiceTest, OnlinePredictionMatchesOfflinePrediction) {
  // The deployed path and the offline eval path must agree bit-for-bit:
  // same features, same graph, same model.
  ServeFixture* f = Fixture();
  RtpService service(&f->built.world, f->model.get());
  const synth::Sample& s = f->built.splits.test.samples.front();
  core::RtpPrediction offline = f->model->Predict(s);
  RtpService::Response online = service.Handle(f->RequestFromSample(s));
  EXPECT_EQ(online.prediction.location_route, offline.location_route);
  EXPECT_EQ(online.prediction.aoi_route, offline.aoi_route);
}

TEST(OrderSortingServiceTest, RanksEveryPendingOrderOnce) {
  ServeFixture* f = Fixture();
  RtpService service(&f->built.world, f->model.get());
  OrderSortingService sorting(&service);
  const synth::Sample& s = f->built.splits.test.samples.front();
  auto sorted = sorting.Sort(f->RequestFromSample(s));
  ASSERT_EQ(static_cast<int>(sorted.size()), s.num_locations());
  std::vector<int> ids;
  for (size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_EQ(sorted[i].rank, static_cast<int>(i));
    ids.push_back(sorted[i].order_id);
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());
}

TEST(EtaServiceTest, EtasAlignWithRouteRanks) {
  ServeFixture* f = Fixture();
  RtpService service(&f->built.world, f->model.get());
  EtaService eta(&service);
  const synth::Sample& s = f->built.splits.test.samples.front();
  auto etas = eta.Estimate(f->RequestFromSample(s));
  ASSERT_EQ(static_cast<int>(etas.size()), s.num_locations());
  for (const auto& e : etas) {
    EXPECT_GE(e.eta_minutes, 0.0);
    EXPECT_GE(e.stops_before, 0);
    EXPECT_LT(e.stops_before, s.num_locations());
  }
}

TEST(EtaServiceTest, NotifyFiresOnlyWithinThreshold) {
  ServeFixture* f = Fixture();
  RtpService service(&f->built.world, f->model.get());
  EtaService::Config config;
  config.notify_within_minutes = 15.0;
  EtaService eta(&service, config);
  const synth::Sample& s = f->built.splits.test.samples.front();
  for (const auto& e : eta.Estimate(f->RequestFromSample(s))) {
    EXPECT_EQ(e.notify_user, e.eta_minutes <= 15.0);
  }
}

TEST(EtaServiceTest, EstimateOrderFindsAndRejects) {
  ServeFixture* f = Fixture();
  RtpService service(&f->built.world, f->model.get());
  EtaService eta(&service);
  const synth::Sample& s = f->built.splits.test.samples.front();
  RtpRequest req = f->RequestFromSample(s);
  auto found = eta.EstimateOrder(req, s.locations[0].order_id);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value().order_id, s.locations[0].order_id);
  auto missing = eta.EstimateOrder(req, -1234);
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(TelemetryTest, ServingExportsCoverEveryStageAndCounter) {
  // End-to-end telemetry: a concurrent replay (so the thread-pool
  // gauges exist) plus one ETA call must leave every promised serving
  // metric visible in both export formats.
  ServeFixture* f = Fixture();
  RtpService service(&f->built.world, f->model.get());
  EtaService eta(&service);
  std::vector<RtpRequest> requests;
  const auto& samples = f->built.splits.test.samples;
  for (size_t i = 0; i < samples.size() && i < 6; ++i) {
    requests.push_back(f->RequestFromSample(samples[i]));
  }
  ASSERT_FALSE(requests.empty());
  ConcurrentReplayResult replay =
      ReplayConcurrently(service, requests, /*threads=*/2);
  EXPECT_EQ(replay.responses.size(), requests.size());
  EXPECT_FALSE(eta.Estimate(requests.front()).empty());
  EXPECT_EQ(eta.requests_served(), 1);

  const std::string prom = obs::ExportPrometheus();
  for (const char* needle :
       {"m2g_serve_stage_feature_extract_ms_bucket",
        "m2g_serve_stage_graph_build_ms_bucket",
        "m2g_serve_stage_encode_ms_bucket",
        "m2g_serve_stage_route_decode_ms_bucket",
        "m2g_serve_stage_eta_head_ms_bucket",
        "m2g_serve_rtp_requests_total", "m2g_serve_eta_requests_total",
        "m2g_pool_arena_hits", "m2g_pool_arena_misses",
        "m2g_threadpool_queue_depth",
        "m2g_threadpool_tasks_executed_total"}) {
    EXPECT_NE(prom.find(needle), std::string::npos) << needle;
  }
  const std::string json = obs::ExportJson();
  for (const char* needle :
       {"\"serve.request.ms\"", "\"serve.eta.estimate.ms\"", "\"p50\"",
        "\"p95\"", "\"p99\""}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }

  const obs::MetricsSnapshot snap =
      obs::MetricsRegistry::Global().Snapshot();
  const obs::HistogramSnapshot* request_ms =
      snap.FindHistogram("serve.request.ms");
  ASSERT_NE(request_ms, nullptr);
#ifndef M2G_OBS_DISABLED
  // The registry is process-wide, so earlier tests may have served too.
  EXPECT_GE(request_ms->count, requests.size());
#endif
  EXPECT_LE(request_ms->Quantile(0.50), request_ms->Quantile(0.95));
  EXPECT_LE(request_ms->Quantile(0.95), request_ms->Quantile(0.99));
}

}  // namespace
}  // namespace m2g::serve
