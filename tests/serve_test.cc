#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <barrier>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/trainer.h"
#include "obs/admin_server.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "obs/wide_event.h"
#include "serve/eta_service.h"
#include "serve/graph_builder.h"
#include "serve/model_registry.h"
#include "serve/order_sorting_service.h"
#include "serve/replay.h"
#include "tensor/grad_mode.h"
#include "tensor/pool.h"

namespace m2g::serve {
namespace {

struct ServeFixture {
  synth::DataConfig data_config;
  synth::BuiltWorld built;
  std::unique_ptr<core::M2g4Rtp> model;

  ServeFixture()
      : data_config([] {
          synth::DataConfig dc;
          dc.seed = 707;
          dc.world.num_aois = 70;
          dc.world.num_districts = 3;
          dc.couriers.num_couriers = 6;
          dc.num_days = 6;
          return dc;
        }()),
        built(synth::BuildWorldAndDataset(data_config)) {
    core::ModelConfig mc;
    mc.hidden_dim = 16;
    mc.num_heads = 2;
    mc.num_layers = 1;
    mc.aoi_id_embed_dim = 4;
    mc.aoi_type_embed_dim = 2;
    mc.lstm_hidden_dim = 16;
    mc.courier_dim = 8;
    mc.pos_enc_dim = 4;
    model = std::make_unique<core::M2g4Rtp>(mc);
    core::TrainConfig tc;
    tc.epochs = 1;
    tc.max_samples_per_epoch = 30;
    core::Trainer trainer(model.get(), tc);
    trainer.Fit(built.splits.train, built.splits.val);
  }

  RtpRequest RequestFromSample(const synth::Sample& s) const {
    RtpRequest req;
    req.courier = s.courier;
    req.courier_pos = s.courier_pos;
    req.query_time_min = s.query_time_min;
    req.weather = s.weather;
    req.weekday = s.weekday;
    for (const synth::LocationTask& task : s.locations) {
      synth::Order o;
      o.id = task.order_id;
      o.pos = task.pos;
      o.aoi_id = task.aoi_id;
      o.accept_time_min = task.accept_time_min;
      o.deadline_min = task.deadline_min;
      req.pending.push_back(o);
    }
    return req;
  }
};

ServeFixture* Fixture() {
  static ServeFixture* fixture = new ServeFixture();
  return fixture;
}

TEST(FeatureExtractorTest, ReconstructsOfflineSampleExactly) {
  // The online feature path must produce the same sample the offline
  // snapshot pipeline produced (minus labels).
  ServeFixture* f = Fixture();
  FeatureExtractor extractor(&f->built.world);
  const synth::Sample& offline = f->built.splits.test.samples.front();
  synth::Sample online =
      extractor.BuildSample(f->RequestFromSample(offline));
  ASSERT_EQ(online.num_locations(), offline.num_locations());
  ASSERT_EQ(online.num_aois(), offline.num_aois());
  EXPECT_EQ(online.loc_to_aoi, offline.loc_to_aoi);
  EXPECT_EQ(online.aoi_node_ids, offline.aoi_node_ids);
  for (int i = 0; i < online.num_locations(); ++i) {
    EXPECT_EQ(online.locations[i].order_id, offline.locations[i].order_id);
    EXPECT_EQ(online.locations[i].aoi_type, offline.locations[i].aoi_type);
    EXPECT_NEAR(online.locations[i].dist_from_courier_m,
                offline.locations[i].dist_from_courier_m, 1e-6);
  }
  EXPECT_TRUE(online.route_label.empty());  // no labels online
}

TEST(GraphBuilderTest, OnlineGraphMatchesOffline) {
  ServeFixture* f = Fixture();
  FeatureExtractor extractor(&f->built.world);
  GraphBuilder builder;
  const synth::Sample& offline = f->built.splits.test.samples.front();
  synth::Sample online =
      extractor.BuildSample(f->RequestFromSample(offline));
  graph::MultiLevelGraph og =
      graph::BuildMultiLevelGraph(offline, builder.config());
  graph::MultiLevelGraph ng = builder.Build(online);
  EXPECT_EQ(og.location.adjacency, ng.location.adjacency);
  EXPECT_EQ(og.aoi.adjacency, ng.aoi.adjacency);
  for (size_t i = 0; i < og.location.node_continuous.size(); ++i) {
    EXPECT_FLOAT_EQ(og.location.node_continuous[i],
                    ng.location.node_continuous[i]);
  }
}

TEST(RtpServiceTest, HandleServesJointPrediction) {
  ServeFixture* f = Fixture();
  RtpService service(&f->built.world, f->model.get());
  const synth::Sample& s = f->built.splits.test.samples.front();
  RtpService::Response response = service.Handle(f->RequestFromSample(s));
  EXPECT_EQ(static_cast<int>(response.prediction.location_route.size()),
            s.num_locations());
  EXPECT_EQ(service.requests_served(), 1);
}

TEST(RtpServiceTest, OnlinePredictionMatchesOfflinePrediction) {
  // The deployed path and the offline eval path must agree bit-for-bit:
  // same features, same graph, same model.
  ServeFixture* f = Fixture();
  RtpService service(&f->built.world, f->model.get());
  const synth::Sample& s = f->built.splits.test.samples.front();
  core::RtpPrediction offline = f->model->Predict(s);
  RtpService::Response online = service.Handle(f->RequestFromSample(s));
  EXPECT_EQ(online.prediction.location_route, offline.location_route);
  EXPECT_EQ(online.prediction.aoi_route, offline.aoi_route);
}

TEST(OrderSortingServiceTest, RanksEveryPendingOrderOnce) {
  ServeFixture* f = Fixture();
  RtpService service(&f->built.world, f->model.get());
  OrderSortingService sorting(&service);
  const synth::Sample& s = f->built.splits.test.samples.front();
  auto sorted = sorting.Sort(f->RequestFromSample(s));
  ASSERT_EQ(static_cast<int>(sorted.size()), s.num_locations());
  std::vector<int> ids;
  for (size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_EQ(sorted[i].rank, static_cast<int>(i));
    ids.push_back(sorted[i].order_id);
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());
}

TEST(EtaServiceTest, EtasAlignWithRouteRanks) {
  ServeFixture* f = Fixture();
  RtpService service(&f->built.world, f->model.get());
  EtaService eta(&service);
  const synth::Sample& s = f->built.splits.test.samples.front();
  auto etas = eta.Estimate(f->RequestFromSample(s));
  ASSERT_EQ(static_cast<int>(etas.size()), s.num_locations());
  for (const auto& e : etas) {
    EXPECT_GE(e.eta_minutes, 0.0);
    EXPECT_GE(e.stops_before, 0);
    EXPECT_LT(e.stops_before, s.num_locations());
  }
}

TEST(EtaServiceTest, NotifyFiresOnlyWithinThreshold) {
  ServeFixture* f = Fixture();
  RtpService service(&f->built.world, f->model.get());
  EtaService::Config config;
  config.notify_within_minutes = 15.0;
  EtaService eta(&service, config);
  const synth::Sample& s = f->built.splits.test.samples.front();
  for (const auto& e : eta.Estimate(f->RequestFromSample(s))) {
    EXPECT_EQ(e.notify_user, e.eta_minutes <= 15.0);
  }
}

TEST(EtaServiceTest, EstimateOrderFindsAndRejects) {
  ServeFixture* f = Fixture();
  RtpService service(&f->built.world, f->model.get());
  EtaService eta(&service);
  const synth::Sample& s = f->built.splits.test.samples.front();
  RtpRequest req = f->RequestFromSample(s);
  auto found = eta.EstimateOrder(req, s.locations[0].order_id);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value().order_id, s.locations[0].order_id);
  auto missing = eta.EstimateOrder(req, -1234);
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

// Exact (bitwise) equality between two predictions: routes are integer
// vectors, times are doubles produced by identical float op sequences.
void ExpectPredictionBitwiseEq(const core::RtpPrediction& got,
                               const core::RtpPrediction& want) {
  EXPECT_EQ(got.location_route, want.location_route);
  EXPECT_EQ(got.aoi_route, want.aoi_route);
  ASSERT_EQ(got.location_times_min.size(), want.location_times_min.size());
  for (size_t i = 0; i < want.location_times_min.size(); ++i) {
    EXPECT_EQ(got.location_times_min[i], want.location_times_min[i]) << i;
  }
  ASSERT_EQ(got.aoi_times_min.size(), want.aoi_times_min.size());
  for (size_t i = 0; i < want.aoi_times_min.size(); ++i) {
    EXPECT_EQ(got.aoi_times_min[i], want.aoi_times_min[i]) << i;
  }
}

TEST(PredictBatchTest, BitwiseIdenticalToSequentialPooledAndPlain) {
  // The acceptance bar for the batching refactor: for every sample of a
  // mixed-size batch, PredictBatch must reproduce Predict's bits — with
  // pooled storage (the serving configuration) and with the pool kill
  // switch off (plain heap storage).
  ServeFixture* f = Fixture();
  NoGradGuard no_grad;
  const auto& samples = f->built.splits.test.samples;
  std::vector<const synth::Sample*> batch;
  for (size_t i = 0; i < samples.size() && i < 6; ++i) {
    batch.push_back(&samples[i]);
  }
  ASSERT_GE(batch.size(), 2u);

  std::vector<core::RtpPrediction> want;
  for (const synth::Sample* s : batch) want.push_back(f->model->Predict(*s));

  {
    ArenaGuard arena;
    std::vector<core::RtpPrediction> got = f->model->PredictBatch(batch, 8);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      ExpectPredictionBitwiseEq(got[i], want[i]);
    }
  }
  TensorPool::set_enabled(false);
  std::vector<core::RtpPrediction> plain = f->model->PredictBatch(batch, 8);
  TensorPool::set_enabled(true);
  ASSERT_EQ(plain.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    ExpectPredictionBitwiseEq(plain[i], want[i]);
  }
}

TEST(RtpServiceBatchingTest, BatchedHandleMatchesUnbatchedBitwise) {
  // Concurrent Handle() calls through the batching scheduler must return
  // exactly the unbatched responses, no matter how the scheduler
  // composed the micro-batches.
  ServeFixture* f = Fixture();
  const auto& samples = f->built.splits.test.samples;
  const int kDistinct = std::min<int>(6, static_cast<int>(samples.size()));
  std::vector<RtpRequest> requests;
  std::vector<core::RtpPrediction> want;
  {
    NoGradGuard no_grad;
    for (int i = 0; i < kDistinct; ++i) {
      requests.push_back(f->RequestFromSample(samples[i]));
      want.push_back(f->model->Predict(samples[i]));
    }
  }

  ServingConfig config;
  config.batching_enabled = true;
  config.batch.max_batch_size = 4;
  config.batch.max_linger_us = 1000;
  RtpService service(&f->built.world, f->model.get(), config);

  constexpr int kThreads = 4;
  constexpr int kRounds = 3;
  // responses[t][r * kDistinct + i] answers requests[i].
  std::vector<std::vector<RtpService::Response>> responses(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        for (int i = 0; i < kDistinct; ++i) {
          responses[t].push_back(service.Handle(requests[i]));
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(service.requests_served(), kThreads * kRounds * kDistinct);
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(responses[t].size(),
              static_cast<size_t>(kRounds * kDistinct));
    for (int r = 0; r < kRounds; ++r) {
      for (int i = 0; i < kDistinct; ++i) {
        const RtpService::Response& resp = responses[t][r * kDistinct + i];
        ExpectPredictionBitwiseEq(resp.prediction, want[i]);
        // Fixed-model service: every response tagged version 0.
        EXPECT_EQ(resp.model_version, 0);
        // The sample rode through the batch with the right request.
        ASSERT_EQ(resp.sample.num_locations(),
                  samples[i].num_locations());
        EXPECT_EQ(resp.sample.locations.front().order_id,
                  samples[i].locations.front().order_id);
      }
    }
  }
}

TEST(RtpServiceBatchingTest, ConcurrentStressZeroSteadyStateMisses) {
  // requests_served() must equal submissions, and once each serving
  // thread's pool is warm the batching path must allocate nothing new:
  // zero pool misses across the whole steady phase.
  ServeFixture* f = Fixture();
  const synth::Sample& sample = f->built.splits.test.samples.front();
  const RtpRequest request = f->RequestFromSample(sample);

  ServingConfig config;
  config.batching_enabled = true;
  config.batch.max_batch_size = 4;
  config.batch.max_linger_us = 1000;
  RtpService service(&f->built.world, f->model.get(), config);

  core::RtpPrediction want;
  {
    NoGradGuard no_grad;
    want = f->model->Predict(sample);
  }
  const int64_t served_before = service.requests_served();

  constexpr int kThreads = 4;
  constexpr int kRequestsPerThread = 12;
  std::barrier sync(kThreads + 1);
  TensorPool::ArenaCounters baseline;
  std::vector<std::vector<RtpService::Response>> responses(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Deterministic warm-up covering every batch composition this
      // thread can later execute as leader: the full-size batch (whose
      // plan page set and per-sample buffers are supersets of every
      // smaller composition at the same capacity hint) and the
      // single-request fallback (which builds a capacity-1 plan with
      // different, smaller size classes).
      {
        NoGradGuard no_grad;
        ArenaGuard arena;
        std::vector<const synth::Sample*> warm_batch(
            config.batch.max_batch_size, &sample);
        f->model->PredictBatch(warm_batch, config.batch.max_batch_size);
        f->model->Predict(sample);
      }
      sync.arrive_and_wait();  // all threads warm
      sync.arrive_and_wait();  // baseline counters captured
      for (int r = 0; r < kRequestsPerThread; ++r) {
        responses[t].push_back(service.Handle(request));
      }
    });
  }
  sync.arrive_and_wait();
  baseline = RtpService::pool_counters();
  sync.arrive_and_wait();
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(service.requests_served() - served_before,
            kThreads * kRequestsPerThread);
  EXPECT_EQ(service.batch_sheds(), 0u);
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(responses[t].size(),
              static_cast<size_t>(kRequestsPerThread));
    for (const RtpService::Response& resp : responses[t]) {
      ExpectPredictionBitwiseEq(resp.prediction, want);
    }
  }
  const TensorPool::ArenaCounters after = RtpService::pool_counters();
  EXPECT_EQ(after.misses - baseline.misses, 0u);
  EXPECT_GT(after.hits, baseline.hits);
}

TEST(ModelRegistryTest, PublishBumpsVersionAndTagsResponses) {
  ServeFixture* f = Fixture();
  std::shared_ptr<const core::M2g4Rtp> initial(f->model.get(),
                                               [](const core::M2g4Rtp*) {});
  ModelRegistry registry(initial, /*initial_version=*/7);
  EXPECT_EQ(registry.version(), 7);
  EXPECT_EQ(registry.swap_count(), 0u);

  RtpService service(&f->built.world, &registry, ServingConfig());
  const synth::Sample& s = f->built.splits.test.samples.front();
  RtpService::Response before = service.Handle(f->RequestFromSample(s));
  EXPECT_EQ(before.model_version, 7);

  // Publish the same weights reloaded through Save/Load: version must
  // move, predictions must not.
  const std::string path = ::testing::TempDir() + "/serve_swap_weights.bin";
  ASSERT_TRUE(f->model->Save(path).ok());
  auto reloaded = std::make_shared<core::M2g4Rtp>(f->model->config());
  ASSERT_TRUE(reloaded->Load(path).ok());
  EXPECT_EQ(registry.Publish(reloaded), 8);
  EXPECT_EQ(registry.version(), 8);
  EXPECT_EQ(registry.swap_count(), 1u);

  RtpService::Response after = service.Handle(f->RequestFromSample(s));
  EXPECT_EQ(after.model_version, 8);
  ExpectPredictionBitwiseEq(after.prediction, before.prediction);

  // A bad weights path must leave the registry untouched.
  auto bad = registry.PublishFromFile(f->model->config(),
                                      path + ".does_not_exist");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(registry.version(), 8);
}

TEST(ModelRegistryTest, SwapUnderConcurrentBatchedLoadDropsNothing) {
  // The hot-swap safety contract: a Publish racing live batched traffic
  // never drops, mixes, or double-serves a request. Every response must
  // carry correct outputs and the version of a snapshot that actually
  // existed when it was served.
  ServeFixture* f = Fixture();
  const auto& samples = f->built.splits.test.samples;
  const int kDistinct = std::min<int>(4, static_cast<int>(samples.size()));
  std::vector<RtpRequest> requests;
  std::vector<core::RtpPrediction> want;
  {
    NoGradGuard no_grad;
    for (int i = 0; i < kDistinct; ++i) {
      requests.push_back(f->RequestFromSample(samples[i]));
      want.push_back(f->model->Predict(samples[i]));
    }
  }

  std::shared_ptr<const core::M2g4Rtp> initial(f->model.get(),
                                               [](const core::M2g4Rtp*) {});
  ModelRegistry registry(initial);
  ServingConfig config;
  config.batching_enabled = true;
  config.batch.max_batch_size = 4;
  config.batch.max_linger_us = 1000;
  RtpService service(&f->built.world, &registry, config);
  const int64_t served_before = service.requests_served();

  // v2 = the same weights reloaded, so outputs stay deterministic while
  // the swap itself is observable through the version tags.
  const std::string path = ::testing::TempDir() + "/serve_swap_load.bin";
  ASSERT_TRUE(f->model->Save(path).ok());
  auto v2 = std::make_shared<core::M2g4Rtp>(f->model->config());
  ASSERT_TRUE(v2->Load(path).ok());

  constexpr int kThreads = 4;
  constexpr int kRounds = 4;
  std::barrier sync(kThreads + 1);
  std::vector<std::vector<RtpService::Response>> responses(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      sync.arrive_and_wait();
      for (int r = 0; r < kRounds; ++r) {
        for (int i = 0; i < kDistinct; ++i) {
          responses[t].push_back(service.Handle(requests[i]));
        }
      }
    });
  }
  sync.arrive_and_wait();
  // Mid-load publish from the main thread — the "load off-thread" path.
  registry.Publish(v2);
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(registry.version(), 2);
  EXPECT_EQ(registry.swap_count(), 1u);
  EXPECT_EQ(service.requests_served() - served_before,
            kThreads * kRounds * kDistinct);
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(responses[t].size(),
              static_cast<size_t>(kRounds * kDistinct));
    for (int r = 0; r < kRounds; ++r) {
      for (int i = 0; i < kDistinct; ++i) {
        const RtpService::Response& resp = responses[t][r * kDistinct + i];
        ExpectPredictionBitwiseEq(resp.prediction, want[i]);
        EXPECT_TRUE(resp.model_version == 1 || resp.model_version == 2)
            << resp.model_version;
      }
    }
  }
  // After the swap drains, new requests are served by v2.
  RtpService::Response post = service.Handle(requests[0]);
  EXPECT_EQ(post.model_version, 2);
}

TEST(TelemetryTest, ServingExportsCoverEveryStageAndCounter) {
  // End-to-end telemetry: a concurrent replay (so the thread-pool
  // gauges exist) plus one ETA call must leave every promised serving
  // metric visible in both export formats.
  ServeFixture* f = Fixture();
  RtpService service(&f->built.world, f->model.get());
  EtaService eta(&service);
  std::vector<RtpRequest> requests;
  const auto& samples = f->built.splits.test.samples;
  for (size_t i = 0; i < samples.size() && i < 6; ++i) {
    requests.push_back(f->RequestFromSample(samples[i]));
  }
  ASSERT_FALSE(requests.empty());
  ConcurrentReplayResult replay =
      ReplayConcurrently(service, requests, /*threads=*/2);
  EXPECT_EQ(replay.responses.size(), requests.size());
  EXPECT_FALSE(eta.Estimate(requests.front()).empty());
  EXPECT_EQ(eta.requests_served(), 1);

  const std::string prom = obs::ExportPrometheus();
  for (const char* needle :
       {"m2g_serve_stage_feature_extract_ms_bucket",
        "m2g_serve_stage_graph_build_ms_bucket",
        "m2g_serve_stage_encode_ms_bucket",
        "m2g_serve_stage_route_decode_ms_bucket",
        "m2g_serve_stage_eta_head_ms_bucket",
        "m2g_serve_rtp_requests_total", "m2g_serve_eta_requests_total",
        "m2g_pool_arena_hits", "m2g_pool_arena_misses",
        "m2g_threadpool_queue_depth",
        "m2g_threadpool_tasks_executed_total"}) {
    EXPECT_NE(prom.find(needle), std::string::npos) << needle;
  }
  const std::string json = obs::ExportJson();
  for (const char* needle :
       {"\"serve.request.ms\"", "\"serve.eta.estimate.ms\"", "\"p50\"",
        "\"p95\"", "\"p99\""}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }

  const obs::MetricsSnapshot snap =
      obs::MetricsRegistry::Global().Snapshot();
  const obs::HistogramSnapshot* request_ms =
      snap.FindHistogram("serve.request.ms");
  ASSERT_NE(request_ms, nullptr);
#ifndef M2G_OBS_DISABLED
  // The registry is process-wide, so earlier tests may have served too.
  EXPECT_GE(request_ms->count, requests.size());
#endif
  EXPECT_LE(request_ms->Quantile(0.50), request_ms->Quantile(0.95));
  EXPECT_LE(request_ms->Quantile(0.95), request_ms->Quantile(0.99));
}

// Request tracing compiles to nothing under -DM2G_OBS_DISABLED=ON; the
// tracing assertions skip themselves in that configuration.
#ifdef M2G_OBS_DISABLED
#define M2G_SKIP_IF_OBS_DISABLED() \
  GTEST_SKIP() << "event recording compiled out (M2G_OBS_DISABLED)"
#else
#define M2G_SKIP_IF_OBS_DISABLED() (void)0
#endif

TEST(BatchTracingTest, BatchedRequestYieldsSpanTreeWithSharedStageRefs) {
  // The PR-8 acceptance shape: a request served in a batch of size > 1
  // must finalize into a span tree that carries its queue wait, refers
  // to the batch-amortized graph/encode spans by id, and whose
  // per-stage sums fit inside the whole-request latency.
  M2G_SKIP_IF_OBS_DISABLED();
  ServeFixture* f = Fixture();
  obs::SetEnabled(true);
  obs::ClearTraceTrees();
  obs::WideEventSink::Global().Configure(obs::WideEventOptions{});

  ServingConfig config;
  config.batching_enabled = true;
  config.batch.max_batch_size = 4;
  // Generous linger: the barrier releases all four submitters together,
  // so the leader collects a full batch instead of timing out.
  config.batch.max_linger_us = 100000;
  RtpService service(&f->built.world, f->model.get(), config);

  const auto& samples = f->built.splits.test.samples;
  ASSERT_GE(samples.size(), 1u);
  constexpr int kThreads = 4;
  std::barrier sync(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const RtpRequest req =
          f->RequestFromSample(samples[t % samples.size()]);
      sync.arrive_and_wait();
      service.Handle(req);
    });
  }
  for (std::thread& th : threads) th.join();

  const std::vector<obs::TraceTree> trees = obs::RecentTraceTrees();
  // The batch leader's own tree holds the shared spans members refer to.
  std::vector<uint64_t> batch_span_ids;
  for (const obs::TraceTree& tree : trees) {
    if (tree.tag != "batch") continue;
    for (const obs::TraceEvent& span : tree.spans) {
      batch_span_ids.push_back(span.span_id);
    }
  }
  ASSERT_FALSE(batch_span_ids.empty());

  int member_trees = 0;
  int batched_member_trees = 0;
  for (const obs::TraceTree& tree : trees) {
    if (tree.tag != "rtp") continue;
    ++member_trees;
    // Parent/child invariants: exactly one root (the request span), and
    // every non-root parent id resolves within the tree.
    const obs::TraceEvent* root = nullptr;
    for (const obs::TraceEvent& span : tree.spans) {
      EXPECT_EQ(span.trace_id, tree.trace_id);
      if (span.parent_span_id == 0) {
        EXPECT_EQ(root, nullptr) << "second root in tree";
        root = &span;
        continue;
      }
      bool parent_found = false;
      for (const obs::TraceEvent& other : tree.spans) {
        if (other.span_id == span.parent_span_id) {
          parent_found = true;
          break;
        }
      }
      EXPECT_TRUE(parent_found) << span.stage;
    }
    ASSERT_NE(root, nullptr);
    EXPECT_STREQ(root->stage, "serve.request.ms");

    const obs::TraceEvent* queue_wait = nullptr;
    const obs::TraceEvent* graph_ref = nullptr;
    const obs::TraceEvent* encode_ref = nullptr;
    for (const obs::TraceEvent& span : tree.spans) {
      if (std::string(span.stage) == "serve.batch.queue_wait.ms") {
        queue_wait = &span;
      }
      if (span.ref_span_id == 0) continue;
      if (std::string(span.stage) == "serve.stage.graph_build.ms") {
        graph_ref = &span;
      } else if (std::string(span.stage) == "serve.stage.encode.ms") {
        encode_ref = &span;
      }
    }
    ASSERT_NE(queue_wait, nullptr);
    EXPECT_GE(queue_wait->duration_ms, 0.0);
    if (graph_ref == nullptr) continue;  // shed/inline member: no refs
    ASSERT_NE(encode_ref, nullptr);
    EXPECT_GE(graph_ref->batch_size, 1);
    EXPECT_EQ(graph_ref->batch_size, encode_ref->batch_size);
    // The references resolve to real spans owned by a batch tree.
    EXPECT_NE(std::find(batch_span_ids.begin(), batch_span_ids.end(),
                        graph_ref->ref_span_id),
              batch_span_ids.end());
    EXPECT_NE(std::find(batch_span_ids.begin(), batch_span_ids.end(),
                        encode_ref->ref_span_id),
              batch_span_ids.end());
    if (graph_ref->batch_size >= 2) ++batched_member_trees;
  }
  EXPECT_EQ(member_trees, kThreads);
  // The barrier + linger make a full batch overwhelmingly likely, but
  // the scheduler is free to split; require that batching was observed,
  // not a specific composition.
  EXPECT_GE(batched_member_trees, 2);

  // Wide events: batch attribution present and per-stage sums within
  // the request's own wall time.
  int batched_events = 0;
  for (const obs::WideEvent& e : obs::WideEventSink::Global().Recent()) {
    if (e.tag != "rtp") continue;
    EXPECT_TRUE(e.batched);
    EXPECT_FALSE(e.shed);
    EXPECT_GT(e.num_locations, 0);
    EXPECT_EQ(e.beam_width, f->model->config().beam_width);
    const double stage_sum = e.feature_extract_ms + e.queue_wait_ms +
                             e.graph_build_ms + e.encode_ms + e.decode_ms +
                             e.eta_head_ms;
    EXPECT_LE(stage_sum, e.total_ms + 1e-3);
    if (e.batch_size >= 2) ++batched_events;
  }
  EXPECT_GE(batched_events, 2);
  obs::ClearTraceTrees();
  obs::WideEventSink::Global().Clear();
}

/// Minimal blocking HTTP GET against loopback (mirrors obs_test's).
std::string HttpGet(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string req = "GET " + path +
                          " HTTP/1.1\r\nHost: localhost\r\n"
                          "Connection: close\r\n\r\n";
  size_t sent = 0;
  while (sent < req.size()) {
    const ssize_t n = ::send(fd, req.data() + sent, req.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string out;
  char buf[2048];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

TEST(AdminServerUnderLoadTest, ScrapesStayValidWhileBatchedServing) {
  // The admin endpoint must answer every route correctly while 8
  // threads push batched requests through the service (this test runs
  // under TSan in CI, so it is also the data-race gate for the
  // exporters racing live recording).
  ServeFixture* f = Fixture();
  obs::SetEnabled(true);

  ServingConfig config;
  config.batching_enabled = true;
  config.batch.max_batch_size = 4;
  config.batch.max_linger_us = 500;
  RtpService service(&f->built.world, f->model.get(), config);

  obs::AdminOptions options;
  options.extra_health_json = [&service] {
    return std::string("\"requests_served\": ") +
           std::to_string(service.requests_served());
  };
  obs::AdminServer server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  ASSERT_GT(server.port(), 0);

  const auto& samples = f->built.splits.test.samples;
  constexpr int kServers = 8;
  constexpr int kRounds = 3;
  std::atomic<bool> stop{false};
  std::atomic<int> scrape_failures{0};
  std::atomic<int> scrapes{0};
  std::thread scraper([&server, &stop, &scrape_failures, &scrapes] {
    const char* paths[] = {"/metrics", "/metrics.json", "/traces",
                           "/events", "/healthz"};
    size_t i = 0;
    // At least one full sweep of every route, then keep scraping until
    // the serving threads drain.
    while (i < 5 || !stop.load(std::memory_order_acquire)) {
      const std::string resp = HttpGet(server.port(), paths[i % 5]);
      if (resp.find(" 200 OK") == std::string::npos) {
        scrape_failures.fetch_add(1, std::memory_order_relaxed);
      }
      scrapes.fetch_add(1, std::memory_order_relaxed);
      ++i;
    }
  });
  std::vector<std::thread> servers;
  for (int t = 0; t < kServers; ++t) {
    servers.emplace_back([&, t] {
      const RtpRequest req =
          f->RequestFromSample(samples[t % samples.size()]);
      for (int r = 0; r < kRounds; ++r) service.Handle(req);
    });
  }
  for (std::thread& th : servers) th.join();
  stop.store(true, std::memory_order_release);
  scraper.join();

  EXPECT_EQ(scrape_failures.load(), 0);
  EXPECT_GE(scrapes.load(), 5);
  EXPECT_EQ(server.requests_served(),
            static_cast<uint64_t>(scrapes.load()));
  EXPECT_EQ(service.requests_served(), kServers * kRounds);
  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(EncodeSessionTest, SessionHandleMatchesStatelessBitwise) {
  // Session-routed responses are an optimization, never a behavior
  // change: a growing-pending stream must match the stateless service
  // bitwise, request by request.
  ServeFixture* f = Fixture();
  const synth::Sample* sample = nullptr;
  for (const synth::Sample& s : f->built.splits.test.samples) {
    if (sample == nullptr || s.num_locations() > sample->num_locations()) {
      sample = &s;
    }
  }
  ASSERT_GE(sample->num_locations(), 3);

  ServingConfig config;
  config.encode_sessions.enabled = true;
  RtpService service(&f->built.world, f->model.get(), config);
  RtpService stateless(&f->built.world, f->model.get());
  ASSERT_NE(service.session_store(), nullptr);

  const RtpRequest full = f->RequestFromSample(*sample);
  for (int count = 2; count <= static_cast<int>(full.pending.size());
       ++count) {
    RtpRequest req = full;
    req.pending.resize(count);
    RtpService::Response got = service.Handle(req);
    RtpService::Response want = stateless.Handle(req);
    ExpectPredictionBitwiseEq(got.prediction, want.prediction);
  }
  EXPECT_EQ(service.session_store()->sessions(), 1u);
  EXPECT_GT(service.session_store()->bytes(), 0u);
}

TEST(EncodeSessionTest, LruEvictionHoldsByteBudget) {
  // A byte budget that fits roughly two sessions: serving many couriers
  // must keep evicting the least recently used while the most recent
  // always survives — the store never grows without bound.
  ServeFixture* f = Fixture();
  const synth::Sample& s = f->built.splits.test.samples.front();

  // Measure one session's footprint with an unbounded store first.
  size_t one_session = 0;
  {
    ServingConfig config;
    config.encode_sessions.enabled = true;
    RtpService probe(&f->built.world, f->model.get(), config);
    probe.Handle(f->RequestFromSample(s));
    one_session = probe.session_store()->bytes();
    ASSERT_GT(one_session, 0u);
  }

  ServingConfig config;
  config.encode_sessions.enabled = true;
  config.encode_sessions.byte_budget = 2 * one_session + one_session / 2;
  RtpService service(&f->built.world, f->model.get(), config);
  constexpr int kCouriers = 8;
  for (int c = 0; c < kCouriers; ++c) {
    RtpRequest req = f->RequestFromSample(s);
    req.courier.id = 1000 + c;
    service.Handle(req);
    EXPECT_LE(service.session_store()->sessions(), 3u);
  }
  const EncodeSessionStore* store = service.session_store();
  EXPECT_LT(store->sessions(), kCouriers);
  EXPECT_GE(store->sessions(), 1u);
  EXPECT_LE(store->bytes(), config.encode_sessions.byte_budget);
  // An evicted courier simply re-warms: same bits, fresh session.
  RtpRequest req = f->RequestFromSample(s);
  req.courier.id = 1000;
  RtpService::Response again = service.Handle(req);
  RtpService stateless(&f->built.world, f->model.get());
  ExpectPredictionBitwiseEq(
      again.prediction,
      stateless.Handle(req).prediction);
}

TEST(EncodeSessionTest, ConcurrentSameCourierSerializesOnSession) {
  // Many threads hammering ONE courier: the session mutex serializes the
  // delta stream (this test runs in the TSan matrix), every response
  // bitwise-matches the stateless reference, and the store holds exactly
  // one session at the end.
  ServeFixture* f = Fixture();
  const synth::Sample& s = f->built.splits.test.samples.front();
  const RtpRequest request = f->RequestFromSample(s);
  core::RtpPrediction want;
  {
    NoGradGuard no_grad;
    want = f->model->Predict(s);
  }

  ServingConfig config;
  config.encode_sessions.enabled = true;
  RtpService service(&f->built.world, f->model.get(), config);
  constexpr int kThreads = 6;
  constexpr int kRounds = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        RtpService::Response resp = service.Handle(request);
        ExpectPredictionBitwiseEq(resp.prediction, want);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(service.requests_served(), kThreads * kRounds);
  EXPECT_EQ(service.session_store()->sessions(), 1u);
}

TEST(EncodeSessionTest, SnapshotHotSwapInvalidatesSessions) {
  // After a Publish, a warm session must never serve encodings cached
  // under the old weights: the next response must match the NEW model's
  // stateless prediction bitwise.
  ServeFixture* f = Fixture();
  const synth::Sample& s = f->built.splits.test.samples.front();
  const RtpRequest request = f->RequestFromSample(s);

  std::shared_ptr<const core::M2g4Rtp> initial(f->model.get(),
                                               [](const core::M2g4Rtp*) {});
  ModelRegistry registry(initial, /*initial_version=*/3);
  ServingConfig config;
  config.encode_sessions.enabled = true;
  RtpService service(&f->built.world, &registry, config);

  // Warm the session on the initial snapshot (second call delta-serves).
  RtpService::Response warm1 = service.Handle(request);
  RtpService::Response warm2 = service.Handle(request);
  EXPECT_EQ(warm1.model_version, 3);
  EXPECT_EQ(warm2.model_version, 3);
  ExpectPredictionBitwiseEq(warm2.prediction, warm1.prediction);

  // Publish genuinely different weights (fresh seed, same shape).
  core::ModelConfig other_config = f->model->config();
  other_config.seed = f->model->config().seed + 41;
  auto swapped = std::make_shared<core::M2g4Rtp>(other_config);
  EXPECT_EQ(registry.Publish(swapped), 4);

  core::RtpPrediction want;
  {
    NoGradGuard no_grad;
    want = swapped->Predict(s);
  }
  RtpService::Response after = service.Handle(request);
  EXPECT_EQ(after.model_version, 4);
  ExpectPredictionBitwiseEq(after.prediction, want);
  // And the session re-warms under the new version: still the new bits.
  RtpService::Response again = service.Handle(request);
  ExpectPredictionBitwiseEq(again.prediction, want);
}

}  // namespace
}  // namespace m2g::serve
