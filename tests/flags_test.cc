#include <gtest/gtest.h>

#include "common/flags.h"
#include "common/logging.h"

namespace m2g {
namespace {

FlagParser MustParse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  auto result = FlagParser::Parse(static_cast<int>(argv.size()),
                                  argv.data());
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(FlagParserTest, CommandAndPositionals) {
  FlagParser p = MustParse({"train", "extra1", "extra2"});
  EXPECT_EQ(p.command(), "train");
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "extra1");
}

TEST(FlagParserTest, EqualsAndSpaceSyntax) {
  FlagParser p = MustParse({"train", "--epochs=7", "--lr", "0.5"});
  EXPECT_EQ(p.GetInt("epochs", 0), 7);
  EXPECT_DOUBLE_EQ(p.GetDouble("lr", 0), 0.5);
}

TEST(FlagParserTest, BooleanFlagForms) {
  FlagParser p = MustParse({"x", "--verbose", "--color=false", "--on=yes"});
  EXPECT_TRUE(p.GetBool("verbose", false));
  EXPECT_FALSE(p.GetBool("color", true));
  EXPECT_TRUE(p.GetBool("on", false));
  EXPECT_TRUE(p.GetBool("missing", true));  // default honored
}

TEST(FlagParserTest, DefaultsWhenAbsent) {
  FlagParser p = MustParse({"x"});
  EXPECT_EQ(p.GetString("name", "fallback"), "fallback");
  EXPECT_EQ(p.GetInt("n", 42), 42);
  EXPECT_FALSE(p.Has("anything"));
}

TEST(FlagParserTest, NoCommandWhenFirstArgIsFlag) {
  FlagParser p = MustParse({"--direct=1"});
  EXPECT_EQ(p.command(), "");
  EXPECT_EQ(p.GetInt("direct", 0), 1);
}

TEST(FlagParserTest, UnqueriedFlagsDetected) {
  FlagParser p = MustParse({"x", "--used=1", "--typo=2"});
  (void)p.GetInt("used", 0);
  auto unused = p.UnqueriedFlags();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(FlagParserTest, BareDashesRejected) {
  std::vector<const char*> argv = {"prog", "x", "--"};
  auto result = FlagParser::Parse(3, argv.data());
  EXPECT_FALSE(result.ok());
}

TEST(FlagParserTest, ApplyLogLevelFlagSetsProcessLevel) {
  const LogLevel prior = GetLogLevel();
  FlagParser p = MustParse({"x", "--log_level=error"});
  EXPECT_TRUE(p.ApplyLogLevelFlag());
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Dashed alias, marked queried so UnqueriedFlags stays quiet.
  FlagParser dashed = MustParse({"x", "--log-level=debug"});
  EXPECT_TRUE(dashed.ApplyLogLevelFlag());
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  EXPECT_TRUE(dashed.UnqueriedFlags().empty());
  SetLogLevel(prior);
}

TEST(FlagParserTest, ApplyLogLevelFlagRejectsUnknownAndAllowsAbsent) {
  const LogLevel prior = GetLogLevel();
  FlagParser bad = MustParse({"x", "--log_level=shout"});
  EXPECT_FALSE(bad.ApplyLogLevelFlag());
  EXPECT_EQ(GetLogLevel(), prior);  // level unchanged on bad input
  FlagParser absent = MustParse({"x"});
  EXPECT_TRUE(absent.ApplyLogLevelFlag());
  EXPECT_EQ(GetLogLevel(), prior);
}

TEST(FlagParserTest, NegativeNumberTreatedAsFlagValueViaEquals) {
  // "--delta -3" would read -3 as a new flag; the documented form is
  // "--delta=-3".
  FlagParser p = MustParse({"x", "--delta=-3"});
  EXPECT_EQ(p.GetInt("delta", 0), -3);
}

}  // namespace
}  // namespace m2g
