// Parameterized property sweeps across modules: invariants that must
// hold for *every* seed/size, not just hand-picked cases.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "baselines/tsp.h"
#include "core/model.h"
#include "core/trainer.h"
#include "graph/features.h"
#include "metrics/report.h"
#include "tensor/ops.h"

namespace m2g {
namespace {

// ---------------------------------------------------------------------------
// Route metric invariants over random permutations.
// ---------------------------------------------------------------------------

class RouteMetricProperties : public ::testing::TestWithParam<int> {};

TEST_P(RouteMetricProperties, InvariantsHold) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  const int n = rng.UniformInt(2, 20);
  std::vector<int> label(n), pred(n);
  std::iota(label.begin(), label.end(), 0);
  std::iota(pred.begin(), pred.end(), 0);
  rng.Shuffle(&label);
  rng.Shuffle(&pred);

  // Self-comparison is perfect.
  EXPECT_DOUBLE_EQ(metrics::KendallRankCorrelation(label, label), 1.0);
  EXPECT_DOUBLE_EQ(metrics::LocationSquareDeviation(label, label), 0.0);
  EXPECT_DOUBLE_EQ(metrics::HitRate(label, label, 3), 1.0);

  // Bounds.
  const double krc = metrics::KendallRankCorrelation(pred, label);
  EXPECT_GE(krc, -1.0);
  EXPECT_LE(krc, 1.0);
  const double hr = metrics::HitRate(pred, label, 3);
  EXPECT_GE(hr, 0.0);
  EXPECT_LE(hr, 1.0);
  EXPECT_GE(metrics::LocationSquareDeviation(pred, label), 0.0);

  // Reversing the prediction negates KRC exactly.
  std::vector<int> reversed(pred.rbegin(), pred.rend());
  EXPECT_NEAR(metrics::KendallRankCorrelation(reversed, label), -krc,
              1e-12);

  // KRC is symmetric in its arguments.
  EXPECT_DOUBLE_EQ(metrics::KendallRankCorrelation(pred, label),
                   metrics::KendallRankCorrelation(label, pred));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouteMetricProperties,
                         ::testing::Range(0, 20));

// ---------------------------------------------------------------------------
// TSP heuristic: 2-opt output is never longer than pure NN, always a
// permutation, and is locally 2-opt-optimal.
// ---------------------------------------------------------------------------

class TspProperties : public ::testing::TestWithParam<int> {};

TEST_P(TspProperties, TwoOptLocalOptimality) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 1);
  geo::LatLng start{30.25, 120.17};
  const int n = rng.UniformInt(3, 18);
  std::vector<geo::LatLng> pts;
  for (int i = 0; i < n; ++i) {
    pts.push_back(geo::OffsetMeters(start, rng.Uniform(-5000, 5000),
                                    rng.Uniform(-5000, 5000)));
  }
  std::vector<int> order = baselines::SolveOpenTsp(start, pts);
  ASSERT_TRUE(metrics::IsPermutation(order, n));
  const double base = baselines::OpenPathMeters(start, pts, order);
  // No single segment reversal improves the path (true local optimum).
  for (int i = 0; i < n - 1; ++i) {
    for (int j = i + 1; j < n; ++j) {
      std::vector<int> alt = order;
      std::reverse(alt.begin() + i, alt.begin() + j + 1);
      EXPECT_GE(baselines::OpenPathMeters(start, pts, alt) + 1e-6, base)
          << "improving reversal (" << i << "," << j << ") missed";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TspProperties, ::testing::Range(0, 12));

// ---------------------------------------------------------------------------
// KNN connectivity invariants over random point sets and k.
// ---------------------------------------------------------------------------

class KnnProperties : public ::testing::TestWithParam<int> {};

TEST_P(KnnProperties, SymmetricSelfLoopedMinDegree) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 7);
  geo::LatLng base{30.25, 120.17};
  const int n = rng.UniformInt(2, 20);
  const int k = rng.UniformInt(1, 8);
  std::vector<geo::LatLng> pts;
  std::vector<double> deadlines;
  for (int i = 0; i < n; ++i) {
    pts.push_back(geo::OffsetMeters(base, rng.Uniform(-3000, 3000),
                                    rng.Uniform(-3000, 3000)));
    deadlines.push_back(rng.Uniform(0, 500));
  }
  auto adj = graph::KnnConnectivity(pts, deadlines, k);
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(adj[i * n + i]);
    int degree = 0;
    for (int j = 0; j < n; ++j) {
      EXPECT_EQ(adj[i * n + j], adj[j * n + i]);
      if (j != i && adj[i * n + j]) ++degree;
    }
    EXPECT_GE(degree, std::min(k, n - 1));
    EXPECT_LE(degree, n - 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KnnProperties, ::testing::Range(0, 16));

// ---------------------------------------------------------------------------
// Decoder invariants across random model seeds and sizes.
// ---------------------------------------------------------------------------

class DecoderProperties : public ::testing::TestWithParam<int> {};

TEST_P(DecoderProperties, GreedyAndBeamProduceValidPermutations) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 53 + 3);
  const int n = rng.UniformInt(1, 20);
  const int d = 8, du = 4;
  core::AttentionRouteDecoder decoder(d, du, 8, &rng);
  Tensor nodes = Tensor::Constant(Matrix::Random(n, d, -2, 2, &rng));
  Tensor courier = Tensor::Constant(Matrix::Random(1, du, -1, 1, &rng));
  EXPECT_TRUE(metrics::IsPermutation(decoder.DecodeGreedy(nodes, courier),
                                     n));
  EXPECT_TRUE(metrics::IsPermutation(
      decoder.DecodeBeam(nodes, courier, 3), n));
  // Teacher-forced loss is lower-bounded by 0 and finite for any label.
  std::vector<int> label(n);
  std::iota(label.begin(), label.end(), 0);
  rng.Shuffle(&label);
  const float loss =
      decoder.TeacherForcedLoss(nodes, courier, label).item();
  EXPECT_GE(loss, 0.0f);
  EXPECT_TRUE(std::isfinite(loss));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderProperties,
                         ::testing::Range(0, 12));

// ---------------------------------------------------------------------------
// Full-model prediction invariants across dataset seeds.
// ---------------------------------------------------------------------------

class ModelPredictionProperties : public ::testing::TestWithParam<int> {};

TEST_P(ModelPredictionProperties, ValidOutputsOnFreshWorlds) {
  synth::DataConfig dc;
  dc.seed = static_cast<uint64_t>(GetParam()) * 1009 + 21;
  dc.world.num_aois = 50;
  dc.couriers.num_couriers = 4;
  dc.num_days = 4;
  synth::DatasetSplits splits = synth::BuildDataset(dc);
  if (splits.test.samples.empty()) GTEST_SKIP();

  core::ModelConfig mc;
  mc.hidden_dim = 16;
  mc.num_heads = 2;
  mc.num_layers = 1;
  mc.aoi_id_embed_dim = 4;
  mc.aoi_type_embed_dim = 2;
  mc.lstm_hidden_dim = 16;
  mc.courier_dim = 8;
  mc.pos_enc_dim = 4;
  mc.seed = dc.seed;
  core::M2g4Rtp model(mc);
  for (int i = 0; i < std::min(5, splits.test.size()); ++i) {
    const synth::Sample& s = splits.test.samples[i];
    core::RtpPrediction pred = model.Predict(s);
    EXPECT_TRUE(
        metrics::IsPermutation(pred.location_route, s.num_locations()));
    EXPECT_TRUE(metrics::IsPermutation(pred.aoi_route, s.num_aois()));
    for (double t : pred.location_times_min) {
      EXPECT_GE(t, 0.0);
      EXPECT_TRUE(std::isfinite(t));
    }
    // AOI-level times must also be finite and non-negative.
    for (double t : pred.aoi_times_min) {
      EXPECT_GE(t, 0.0);
      EXPECT_TRUE(std::isfinite(t));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelPredictionProperties,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace m2g
