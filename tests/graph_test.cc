#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "graph/features.h"
#include "graph/multi_level_graph.h"

namespace m2g::graph {
namespace {

synth::Sample MakeSample() {
  synth::DataConfig config;
  config.seed = 31;
  config.world.num_aois = 60;
  config.world.num_districts = 3;
  config.couriers.num_couriers = 4;
  config.num_days = 4;
  synth::DatasetSplits splits = synth::BuildDataset(config);
  // Find a sample with at least 2 AOIs and 5 locations.
  for (const synth::Sample& s : splits.train.samples) {
    if (s.num_aois() >= 2 && s.num_locations() >= 5) return s;
  }
  ADD_FAILURE() << "no suitable sample generated";
  return splits.train.samples.front();
}

TEST(FeaturesTest, LocationFeatureShapesAndValues) {
  synth::Sample s = MakeSample();
  Matrix x = LocationNodeFeatures(s);
  EXPECT_EQ(x.rows(), s.num_locations());
  EXPECT_EQ(x.cols(), kLocationContinuousDim);
  for (int i = 0; i < x.rows(); ++i) {
    // Distance column equals the stored distance.
    EXPECT_NEAR(x.At(i, 2), s.locations[i].dist_from_courier_m / 1000.0,
                1e-4);
    // Offset magnitude matches distance (Pythagoras).
    const double r = std::sqrt(x.At(i, 0) * x.At(i, 0) +
                               x.At(i, 1) * x.At(i, 1));
    EXPECT_NEAR(r, x.At(i, 2), 0.02);
    // Deadline time-of-day fraction in [0,1).
    EXPECT_GE(x.At(i, 5), 0.0f);
    EXPECT_LT(x.At(i, 5), 1.0f);
  }
}

TEST(FeaturesTest, AoiFeaturesAggregateMembers) {
  synth::Sample s = MakeSample();
  Matrix x = AoiNodeFeatures(s);
  EXPECT_EQ(x.rows(), s.num_aois());
  EXPECT_EQ(x.cols(), kAoiContinuousDim);
  // Column 4 * 5 = member counts; they must sum to n.
  double total = 0;
  for (int k = 0; k < x.rows(); ++k) total += x.At(k, 4) * 5.0;
  EXPECT_NEAR(total, s.num_locations(), 1e-3);
}

TEST(FeaturesTest, GlobalFeaturesEncodeCourier) {
  synth::Sample s = MakeSample();
  Matrix g = GlobalContinuousFeatures(s);
  EXPECT_EQ(g.rows(), 1);
  EXPECT_EQ(g.cols(), kGlobalContinuousDim);
  EXPECT_NEAR(g.At(0, 2), s.courier.attendance, 1e-6);
}

TEST(KnnConnectivityTest, SelfLoopsAndSymmetry) {
  synth::Sample s = MakeSample();
  std::vector<geo::LatLng> pts;
  std::vector<double> deadlines;
  for (const auto& task : s.locations) {
    pts.push_back(task.pos);
    deadlines.push_back(task.deadline_min);
  }
  const int n = static_cast<int>(pts.size());
  auto adj = KnnConnectivity(pts, deadlines, 3);
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(adj[i * n + i]);
    for (int j = 0; j < n; ++j) {
      EXPECT_EQ(adj[i * n + j], adj[j * n + i]);
    }
  }
}

TEST(KnnConnectivityTest, DegreeAtLeastKWhenEnoughNodes) {
  std::vector<geo::LatLng> pts;
  std::vector<double> deadlines;
  Rng rng(9);
  geo::LatLng base{30.25, 120.17};
  for (int i = 0; i < 12; ++i) {
    pts.push_back(geo::OffsetMeters(base, rng.Uniform(-3000, 3000),
                                    rng.Uniform(-3000, 3000)));
    deadlines.push_back(rng.Uniform(0, 600));
  }
  const int k = 4;
  auto adj = KnnConnectivity(pts, deadlines, k);
  const int n = 12;
  for (int i = 0; i < n; ++i) {
    int degree = 0;
    for (int j = 0; j < n; ++j) {
      if (j != i && adj[i * n + j]) ++degree;
    }
    EXPECT_GE(degree, k);  // at least the spatial k
  }
}

TEST(KnnConnectivityTest, FullyConnectedWhenKLarge) {
  std::vector<geo::LatLng> pts(4, geo::LatLng{30.0, 120.0});
  std::vector<double> deadlines = {1, 2, 3, 4};
  auto adj = KnnConnectivity(pts, deadlines, 10);
  for (bool b : adj) EXPECT_TRUE(b);
}

TEST(EdgeFeaturesTest, DiagonalAndSymmetryProperties) {
  synth::Sample s = MakeSample();
  std::vector<geo::LatLng> pts;
  std::vector<double> deadlines;
  for (const auto& task : s.locations) {
    pts.push_back(task.pos);
    deadlines.push_back(task.deadline_min);
  }
  const int n = static_cast<int>(pts.size());
  auto adj = KnnConnectivity(pts, deadlines, 3);
  Matrix e = EdgeFeatures(pts, deadlines, adj);
  EXPECT_EQ(e.rows(), n * n);
  EXPECT_EQ(e.cols(), kEdgeDim);
  for (int i = 0; i < n; ++i) {
    EXPECT_FLOAT_EQ(e.At(i * n + i, 0), 0.0f);  // zero self-distance
    EXPECT_FLOAT_EQ(e.At(i * n + i, 1), 0.0f);  // zero self-gap
    EXPECT_FLOAT_EQ(e.At(i * n + i, 2), 1.0f);  // self-loop connected
    for (int j = 0; j < n; ++j) {
      EXPECT_FLOAT_EQ(e.At(i * n + j, 0), e.At(j * n + i, 0));
      EXPECT_FLOAT_EQ(e.At(i * n + j, 1), e.At(j * n + i, 1));
    }
  }
}

TEST(MultiLevelGraphTest, LevelsAreConsistentWithSample) {
  synth::Sample s = MakeSample();
  GraphConfig config;
  MultiLevelGraph g = BuildMultiLevelGraph(s, config);
  EXPECT_EQ(g.location.n, s.num_locations());
  EXPECT_EQ(g.aoi.n, s.num_aois());
  EXPECT_EQ(g.loc_to_aoi, s.loc_to_aoi);
  // Cross-level consistency: each location's global AOI id matches its
  // AOI node's id.
  for (int i = 0; i < g.location.n; ++i) {
    EXPECT_EQ(g.location.node_aoi_id[i],
              g.aoi.node_aoi_id[g.loc_to_aoi[i]]);
  }
}

/// Level graph with node/pair content a pure function of stable node ids
/// — the invariant the serving feature path provides — so membership
/// edits are the only difference between two builds.
LevelGraph DiffLevelFromIds(const std::vector<int>& ids) {
  const int n = static_cast<int>(ids.size());
  LevelGraph level;
  level.n = n;
  level.node_continuous = Matrix(n, kLocationContinuousDim);
  level.node_aoi_id.resize(n);
  level.node_aoi_type.resize(n);
  for (int i = 0; i < n; ++i) {
    Rng rng(5000 + static_cast<uint64_t>(ids[i]));
    for (int c = 0; c < kLocationContinuousDim; ++c) {
      level.node_continuous.At(i, c) = static_cast<float>(rng.NextDouble());
    }
    level.node_aoi_id[i] = ids[i] % 512;
    level.node_aoi_type[i] = ids[i] % synth::kNumAoiTypes;
  }
  level.edge_features = Matrix(n * n, kEdgeDim);
  level.adjacency.assign(static_cast<size_t>(n) * n, false);
  for (int i = 0; i < n; ++i) {
    level.adjacency[static_cast<size_t>(i) * n + i] = true;
    for (int j = 0; j < n; ++j) {
      Rng rng(9000 +
              static_cast<uint64_t>(std::min(ids[i], ids[j])) * 65537 +
              static_cast<uint64_t>(std::max(ids[i], ids[j])));
      for (int c = 0; c < kEdgeDim; ++c) {
        level.edge_features.At(i * n + j, c) =
            static_cast<float>(rng.NextDouble());
      }
      if (i != j && rng.Bernoulli(0.4)) {
        level.adjacency[static_cast<size_t>(i) * n + j] = true;
        level.adjacency[static_cast<size_t>(j) * n + i] = true;
      }
    }
  }
  return level;
}

TEST(DiffLevelGraphTest, ClassifiesRandomEditSequences) {
  // Property test: drive a random id set through inserts, removals,
  // permutations, feature drift and no-ops; every diff must classify
  // exactly, with the right position.
  Rng rng(20260807);
  std::vector<int> ids{2, 5, 9, 14};
  LevelGraph before = DiffLevelFromIds(ids);
  for (int step = 0; step < 120; ++step) {
    const int op = rng.UniformInt(0, 4);
    std::vector<int> next_ids = ids;
    if (op == 0) {
      // Insert an id not present; sorted order decides the position.
      int id;
      do {
        id = rng.UniformInt(0, 99);
      } while (std::find(next_ids.begin(), next_ids.end(), id) !=
               next_ids.end());
      auto it = std::lower_bound(next_ids.begin(), next_ids.end(), id);
      const int pos = static_cast<int>(it - next_ids.begin());
      next_ids.insert(it, id);
      LevelGraph after = DiffLevelFromIds(next_ids);
      LevelGraphDelta delta = DiffLevelGraph(before, after);
      ASSERT_EQ(delta.kind, LevelDeltaKind::kInsert) << "step " << step;
      EXPECT_EQ(delta.pos, pos);
      // Round-trip: the index mapping recovers `before` exactly.
      for (int i = 0; i < after.n; ++i) {
        const int oi = delta.OldIndex(i);
        if (oi < 0) continue;
        EXPECT_EQ(std::memcmp(
                      after.node_continuous.data() +
                          static_cast<size_t>(i) * kLocationContinuousDim,
                      before.node_continuous.data() +
                          static_cast<size_t>(oi) * kLocationContinuousDim,
                      sizeof(float) * kLocationContinuousDim),
                  0);
        EXPECT_EQ(after.node_aoi_id[i], before.node_aoi_id[oi]);
      }
      before = std::move(after);
      ids = std::move(next_ids);
    } else if (op == 1 && ids.size() > 2) {
      const int pos = rng.UniformInt(0, static_cast<int>(ids.size()) - 1);
      next_ids.erase(next_ids.begin() + pos);
      LevelGraph after = DiffLevelFromIds(next_ids);
      LevelGraphDelta delta = DiffLevelGraph(before, after);
      ASSERT_EQ(delta.kind, LevelDeltaKind::kRemove) << "step " << step;
      EXPECT_EQ(delta.pos, pos);
      for (int i = 0; i < after.n; ++i) {
        const int oi = delta.OldIndex(i);
        ASSERT_GE(oi, 0);
        EXPECT_EQ(std::memcmp(
                      after.node_continuous.data() +
                          static_cast<size_t>(i) * kLocationContinuousDim,
                      before.node_continuous.data() +
                          static_cast<size_t>(oi) * kLocationContinuousDim,
                      sizeof(float) * kLocationContinuousDim),
                  0);
      }
      before = std::move(after);
      ids = std::move(next_ids);
    } else if (op == 2 && ids.size() > 1) {
      // A genuine permutation is never single-node-explainable.
      std::vector<int> shuffled = ids;
      do {
        rng.Shuffle(&shuffled);
      } while (shuffled == ids);
      LevelGraph after = DiffLevelFromIds(shuffled);
      EXPECT_EQ(DiffLevelGraph(before, after).kind,
                LevelDeltaKind::kStructural)
          << "step " << step;
      // Not applied: keep `before` aligned with `ids`.
    } else if (op == 3) {
      // Feature drift on one aligned node.
      LevelGraph after = DiffLevelFromIds(ids);
      const int i = rng.UniformInt(0, static_cast<int>(ids.size()) - 1);
      after.node_continuous.At(i, 1) += 0.75f;
      EXPECT_EQ(DiffLevelGraph(before, after).kind,
                LevelDeltaKind::kSameNodes)
          << "step " << step;
    } else {
      LevelGraph same = DiffLevelFromIds(ids);
      EXPECT_EQ(DiffLevelGraph(before, same).kind,
                LevelDeltaKind::kIdentical)
          << "step " << step;
    }
  }
}

TEST(DiffLevelGraphTest, MultiNodeChurnAndCountJumpsAreStructural) {
  LevelGraph base = DiffLevelFromIds({1, 2, 3, 4, 5});
  // Two nodes replaced in place: still index-aligned, so it is
  // kSameNodes — the delta encoder marks both rows dirty and stays
  // exact (or bails to a full encode past the dirty-spread guard).
  EXPECT_EQ(DiffLevelGraph(base, DiffLevelFromIds({1, 2, 30, 40, 5})).kind,
            LevelDeltaKind::kSameNodes);
  // Count jumps by two.
  EXPECT_EQ(DiffLevelGraph(base, DiffLevelFromIds({1, 2, 3, 4, 5, 6, 7}))
                .kind,
            LevelDeltaKind::kStructural);
  EXPECT_EQ(DiffLevelGraph(base, DiffLevelFromIds({1, 2, 3})).kind,
            LevelDeltaKind::kStructural);
  // Same nodes, one adjacency bit flipped: kSameNodes (masks may drift —
  // the delta encoder owns that), never kIdentical.
  LevelGraph rewired = DiffLevelFromIds({1, 2, 3, 4, 5});
  rewired.adjacency[0 * 5 + 4] = !rewired.adjacency[0 * 5 + 4];
  rewired.adjacency[4 * 5 + 0] = rewired.adjacency[0 * 5 + 4];
  EXPECT_EQ(DiffLevelGraph(base, rewired).kind, LevelDeltaKind::kSameNodes);
  // Edge-feature drift alone: kSameNodes as well.
  LevelGraph edge_drift = DiffLevelFromIds({1, 2, 3, 4, 5});
  edge_drift.edge_features.At(7, 0) += 0.5f;
  EXPECT_EQ(DiffLevelGraph(base, edge_drift).kind,
            LevelDeltaKind::kSameNodes);
}

TEST(MultiLevelGraphTest, SingleAoiSampleStillBuilds) {
  synth::DataConfig config;
  config.seed = 33;
  config.world.num_aois = 40;
  config.couriers.num_couriers = 4;
  config.num_days = 4;
  synth::DatasetSplits splits = synth::BuildDataset(config);
  for (const synth::Sample& s : splits.train.samples) {
    if (s.num_aois() == 1) {
      MultiLevelGraph g = BuildMultiLevelGraph(s, GraphConfig{});
      EXPECT_EQ(g.aoi.n, 1);
      EXPECT_TRUE(g.aoi.AdjacentTo(0, 0));
      return;
    }
  }
  GTEST_SKIP() << "no single-AOI sample in this seed";
}

}  // namespace
}  // namespace m2g::graph
