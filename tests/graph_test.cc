#include <gtest/gtest.h>

#include <cmath>

#include "graph/features.h"
#include "graph/multi_level_graph.h"

namespace m2g::graph {
namespace {

synth::Sample MakeSample() {
  synth::DataConfig config;
  config.seed = 31;
  config.world.num_aois = 60;
  config.world.num_districts = 3;
  config.couriers.num_couriers = 4;
  config.num_days = 4;
  synth::DatasetSplits splits = synth::BuildDataset(config);
  // Find a sample with at least 2 AOIs and 5 locations.
  for (const synth::Sample& s : splits.train.samples) {
    if (s.num_aois() >= 2 && s.num_locations() >= 5) return s;
  }
  ADD_FAILURE() << "no suitable sample generated";
  return splits.train.samples.front();
}

TEST(FeaturesTest, LocationFeatureShapesAndValues) {
  synth::Sample s = MakeSample();
  Matrix x = LocationNodeFeatures(s);
  EXPECT_EQ(x.rows(), s.num_locations());
  EXPECT_EQ(x.cols(), kLocationContinuousDim);
  for (int i = 0; i < x.rows(); ++i) {
    // Distance column equals the stored distance.
    EXPECT_NEAR(x.At(i, 2), s.locations[i].dist_from_courier_m / 1000.0,
                1e-4);
    // Offset magnitude matches distance (Pythagoras).
    const double r = std::sqrt(x.At(i, 0) * x.At(i, 0) +
                               x.At(i, 1) * x.At(i, 1));
    EXPECT_NEAR(r, x.At(i, 2), 0.02);
    // Deadline time-of-day fraction in [0,1).
    EXPECT_GE(x.At(i, 5), 0.0f);
    EXPECT_LT(x.At(i, 5), 1.0f);
  }
}

TEST(FeaturesTest, AoiFeaturesAggregateMembers) {
  synth::Sample s = MakeSample();
  Matrix x = AoiNodeFeatures(s);
  EXPECT_EQ(x.rows(), s.num_aois());
  EXPECT_EQ(x.cols(), kAoiContinuousDim);
  // Column 4 * 5 = member counts; they must sum to n.
  double total = 0;
  for (int k = 0; k < x.rows(); ++k) total += x.At(k, 4) * 5.0;
  EXPECT_NEAR(total, s.num_locations(), 1e-3);
}

TEST(FeaturesTest, GlobalFeaturesEncodeCourier) {
  synth::Sample s = MakeSample();
  Matrix g = GlobalContinuousFeatures(s);
  EXPECT_EQ(g.rows(), 1);
  EXPECT_EQ(g.cols(), kGlobalContinuousDim);
  EXPECT_NEAR(g.At(0, 2), s.courier.attendance, 1e-6);
}

TEST(KnnConnectivityTest, SelfLoopsAndSymmetry) {
  synth::Sample s = MakeSample();
  std::vector<geo::LatLng> pts;
  std::vector<double> deadlines;
  for (const auto& task : s.locations) {
    pts.push_back(task.pos);
    deadlines.push_back(task.deadline_min);
  }
  const int n = static_cast<int>(pts.size());
  auto adj = KnnConnectivity(pts, deadlines, 3);
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(adj[i * n + i]);
    for (int j = 0; j < n; ++j) {
      EXPECT_EQ(adj[i * n + j], adj[j * n + i]);
    }
  }
}

TEST(KnnConnectivityTest, DegreeAtLeastKWhenEnoughNodes) {
  std::vector<geo::LatLng> pts;
  std::vector<double> deadlines;
  Rng rng(9);
  geo::LatLng base{30.25, 120.17};
  for (int i = 0; i < 12; ++i) {
    pts.push_back(geo::OffsetMeters(base, rng.Uniform(-3000, 3000),
                                    rng.Uniform(-3000, 3000)));
    deadlines.push_back(rng.Uniform(0, 600));
  }
  const int k = 4;
  auto adj = KnnConnectivity(pts, deadlines, k);
  const int n = 12;
  for (int i = 0; i < n; ++i) {
    int degree = 0;
    for (int j = 0; j < n; ++j) {
      if (j != i && adj[i * n + j]) ++degree;
    }
    EXPECT_GE(degree, k);  // at least the spatial k
  }
}

TEST(KnnConnectivityTest, FullyConnectedWhenKLarge) {
  std::vector<geo::LatLng> pts(4, geo::LatLng{30.0, 120.0});
  std::vector<double> deadlines = {1, 2, 3, 4};
  auto adj = KnnConnectivity(pts, deadlines, 10);
  for (bool b : adj) EXPECT_TRUE(b);
}

TEST(EdgeFeaturesTest, DiagonalAndSymmetryProperties) {
  synth::Sample s = MakeSample();
  std::vector<geo::LatLng> pts;
  std::vector<double> deadlines;
  for (const auto& task : s.locations) {
    pts.push_back(task.pos);
    deadlines.push_back(task.deadline_min);
  }
  const int n = static_cast<int>(pts.size());
  auto adj = KnnConnectivity(pts, deadlines, 3);
  Matrix e = EdgeFeatures(pts, deadlines, adj);
  EXPECT_EQ(e.rows(), n * n);
  EXPECT_EQ(e.cols(), kEdgeDim);
  for (int i = 0; i < n; ++i) {
    EXPECT_FLOAT_EQ(e.At(i * n + i, 0), 0.0f);  // zero self-distance
    EXPECT_FLOAT_EQ(e.At(i * n + i, 1), 0.0f);  // zero self-gap
    EXPECT_FLOAT_EQ(e.At(i * n + i, 2), 1.0f);  // self-loop connected
    for (int j = 0; j < n; ++j) {
      EXPECT_FLOAT_EQ(e.At(i * n + j, 0), e.At(j * n + i, 0));
      EXPECT_FLOAT_EQ(e.At(i * n + j, 1), e.At(j * n + i, 1));
    }
  }
}

TEST(MultiLevelGraphTest, LevelsAreConsistentWithSample) {
  synth::Sample s = MakeSample();
  GraphConfig config;
  MultiLevelGraph g = BuildMultiLevelGraph(s, config);
  EXPECT_EQ(g.location.n, s.num_locations());
  EXPECT_EQ(g.aoi.n, s.num_aois());
  EXPECT_EQ(g.loc_to_aoi, s.loc_to_aoi);
  // Cross-level consistency: each location's global AOI id matches its
  // AOI node's id.
  for (int i = 0; i < g.location.n; ++i) {
    EXPECT_EQ(g.location.node_aoi_id[i],
              g.aoi.node_aoi_id[g.loc_to_aoi[i]]);
  }
}

TEST(MultiLevelGraphTest, SingleAoiSampleStillBuilds) {
  synth::DataConfig config;
  config.seed = 33;
  config.world.num_aois = 40;
  config.couriers.num_couriers = 4;
  config.num_days = 4;
  synth::DatasetSplits splits = synth::BuildDataset(config);
  for (const synth::Sample& s : splits.train.samples) {
    if (s.num_aois() == 1) {
      MultiLevelGraph g = BuildMultiLevelGraph(s, GraphConfig{});
      EXPECT_EQ(g.aoi.n, 1);
      EXPECT_TRUE(g.aoi.AdjacentTo(0, 0));
      return;
    }
  }
  GTEST_SKIP() << "no single-AOI sample in this seed";
}

}  // namespace
}  // namespace m2g::graph
