#include <gtest/gtest.h>

#include <set>

#include "synth/dataset.h"

namespace m2g::synth {
namespace {

DataConfig SmallConfig() {
  DataConfig config;
  config.seed = 77;
  config.world.num_aois = 80;
  config.world.num_districts = 4;
  config.couriers.num_couriers = 8;
  config.num_days = 6;
  return config;
}

TEST(WorldTest, GeneratesRequestedAois) {
  Rng rng(1);
  WorldConfig wc;
  wc.num_aois = 50;
  World world = GenerateWorld(wc, &rng);
  EXPECT_EQ(world.num_aois(), 50);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(world.aoi(i).id, i);
    EXPECT_GE(world.aoi(i).district, 0);
    EXPECT_LT(world.aoi(i).district, wc.num_districts);
  }
}

TEST(WorldTest, AoisStayNearCity) {
  Rng rng(2);
  WorldConfig wc;
  World world = GenerateWorld(wc, &rng);
  for (const Aoi& a : world.aois()) {
    // Within ~50km of the center (3-4 sigma of spread sums).
    EXPECT_LT(geo::ApproxMeters(a.center, wc.city_center), 50000.0);
  }
}

TEST(WorldTest, SamplePointInsideRadius) {
  Rng rng(3);
  WorldConfig wc;
  World world = GenerateWorld(wc, &rng);
  for (int trial = 0; trial < 50; ++trial) {
    const int id = rng.UniformInt(0, world.num_aois() - 1);
    geo::LatLng p = world.SamplePointInAoi(id, &rng);
    EXPECT_LE(geo::ApproxMeters(p, world.aoi(id).center),
              world.aoi(id).radius_m * 1.01);
  }
}

TEST(CourierTest, ProfilesWithinDocumentedRanges) {
  Rng rng(4);
  WorldConfig wc;
  World world = GenerateWorld(wc, &rng);
  CourierConfig cc;
  cc.num_couriers = 20;
  auto couriers = GenerateCouriers(world, cc, &rng);
  ASSERT_EQ(couriers.size(), 20u);
  for (const CourierProfile& c : couriers) {
    EXPECT_GE(c.avg_speed_mps, 2.8);
    EXPECT_LE(c.avg_speed_mps, 5.2);
    EXPECT_GE(c.attendance, 0.8);
    EXPECT_LE(c.attendance, 1.0);
    EXPECT_GE(static_cast<int>(c.served_aois.size()), cc.min_aois_served);
    EXPECT_LE(static_cast<int>(c.served_aois.size()), cc.max_aois_served);
    EXPECT_EQ(c.served_aois.size(), c.aoi_preference.size());
    // served_aois sorted and unique.
    for (size_t i = 1; i < c.served_aois.size(); ++i) {
      EXPECT_LT(c.served_aois[i - 1], c.served_aois[i]);
    }
  }
}

TEST(CourierTest, AoiPreferenceNeutralForUnserved) {
  CourierProfile c;
  c.served_aois = {2, 5};
  c.aoi_preference = {0.1, 0.9};
  EXPECT_DOUBLE_EQ(AoiPreference(c, 2), 0.1);
  EXPECT_DOUBLE_EQ(AoiPreference(c, 5), 0.9);
  EXPECT_DOUBLE_EQ(AoiPreference(c, 3), 0.5);
}

TEST(TimeModelTest, WeatherSlowsTravel) {
  TimeModel tm;
  CourierProfile c;
  c.avg_speed_mps = 4.0;
  geo::LatLng a{30.25, 120.17};
  geo::LatLng b = geo::OffsetMeters(a, 2000, 0);
  const double clear = tm.ExpectedTravelMinutes(c, a, b, 0, 1);
  const double storm = tm.ExpectedTravelMinutes(c, a, b, 3, 1);
  EXPECT_GT(storm, clear * 1.5);
}

TEST(TimeModelTest, TravelScalesWithDistanceAndSpeed) {
  TimeModel tm;
  CourierProfile slow, fast;
  slow.avg_speed_mps = 3.0;
  fast.avg_speed_mps = 6.0;
  geo::LatLng a{30.25, 120.17};
  geo::LatLng near = geo::OffsetMeters(a, 500, 0);
  geo::LatLng far = geo::OffsetMeters(a, 5000, 0);
  EXPECT_GT(tm.ExpectedTravelMinutes(slow, a, far, 0, 0),
            tm.ExpectedTravelMinutes(slow, a, near, 0, 0));
  EXPECT_NEAR(tm.ExpectedTravelMinutes(slow, a, far, 0, 0),
              2 * tm.ExpectedTravelMinutes(fast, a, far, 0, 0), 1e-9);
}

TEST(RoutePolicyTest, CriticalDeadlineOverridesHabit) {
  TimeModel tm;
  RoutePolicy policy(&tm);
  CourierProfile c;
  c.avg_speed_mps = 4.0;
  geo::LatLng base{30.25, 120.17};
  std::vector<Order> pending(3);
  for (int i = 0; i < 3; ++i) {
    pending[i].id = i;
    pending[i].aoi_id = i;
    pending[i].pos = geo::OffsetMeters(base, 100.0 * (i + 1), 0);
    pending[i].deadline_min = 500.0;
  }
  pending[2].deadline_min = 103.0;  // 3 min slack at now=100 -> critical
  Rng rng(5);
  const int pick = policy.PickNext(c, base, 100.0, -1, pending, 0, 0, &rng);
  EXPECT_EQ(pick, 2);
}

TEST(RoutePolicyTest, PrefersFinishingCurrentAoi) {
  TimeModel tm;
  RoutePolicy::Params params;
  params.stay_in_aoi_prob = 1.0;  // deterministic for the test
  params.intra_choice_temp = 0.0;
  RoutePolicy policy(&tm, params);
  CourierProfile c;
  c.avg_speed_mps = 4.0;
  geo::LatLng base{30.25, 120.17};
  std::vector<Order> pending(4);
  for (int i = 0; i < 4; ++i) {
    pending[i].id = i;
    pending[i].deadline_min = 500.0;
  }
  // Orders 0,1 in AOI 7; orders 2,3 in AOI 9 but *closer* to the courier.
  pending[0].aoi_id = 7;
  pending[0].pos = geo::OffsetMeters(base, 900, 0);
  pending[1].aoi_id = 7;
  pending[1].pos = geo::OffsetMeters(base, 950, 0);
  pending[2].aoi_id = 9;
  pending[2].pos = geo::OffsetMeters(base, 50, 0);
  pending[3].aoi_id = 9;
  pending[3].pos = geo::OffsetMeters(base, 60, 0);
  Rng rng(6);
  const int pick =
      policy.PickNext(c, base, 100.0, /*current_aoi=*/7, pending, 0, 0,
                      &rng);
  EXPECT_EQ(pending[pick].aoi_id, 7);
}

TEST(DaySimulatorTest, ServesEveryOrderExactlyOnce) {
  DataConfig config = SmallConfig();
  World world(config.world, {});
  std::vector<CourierProfile> couriers;
  auto trips = SimulateAllTrips(config, &world, &couriers);
  ASSERT_FALSE(trips.empty());
  std::set<int> order_ids;
  for (const TripRecord& trip : trips) {
    EXPECT_GE(static_cast<int>(trip.served.size()),
              config.trips.min_locations_per_trip);
    EXPECT_LE(static_cast<int>(trip.served.size()),
              config.trips.max_locations_per_trip);
    double prev_arrival = trip.start_time_min;
    for (const ServedOrder& so : trip.served) {
      EXPECT_TRUE(order_ids.insert(so.order.id).second)
          << "order served twice";
      // Arrivals strictly increase along the realized route.
      EXPECT_GT(so.arrival_time_min, prev_arrival);
      EXPECT_GT(so.departure_time_min, so.arrival_time_min);
      prev_arrival = so.arrival_time_min;
    }
  }
}

TEST(DaySimulatorTest, AoiClusteringSignalExists) {
  // The paper's §V-A analysis: couriers complete most of an AOI before
  // leaving it, so realized routes have far fewer AOI transfers than a
  // random service order over the same trips would produce.
  DataConfig config = SmallConfig();
  auto trips = SimulateAllTrips(config, nullptr, nullptr);
  TransferStats actual = ComputeTransferStats(trips);
  EXPECT_GT(actual.avg_location_transfers_per_day, 0);

  Rng rng(123);
  std::vector<TripRecord> shuffled = trips;
  for (TripRecord& trip : shuffled) rng.Shuffle(&trip.served);
  TransferStats random = ComputeTransferStats(shuffled);

  EXPECT_LT(actual.avg_aoi_transfers_per_day,
            0.75 * random.avg_aoi_transfers_per_day);
  // And AOI transfers are a strict minority of location transfers.
  EXPECT_LT(actual.avg_aoi_transfers_per_day,
            actual.avg_location_transfers_per_day);
}

TEST(DatasetTest, SnapshotLabelsAreConsistent) {
  DataConfig config = SmallConfig();
  DatasetSplits splits = BuildDataset(config);
  ASSERT_GT(splits.train.size(), 0);
  for (const Dataset* ds : {&splits.train, &splits.val, &splits.test}) {
    for (const Sample& s : ds->samples) {
      const int n = s.num_locations();
      const int m = s.num_aois();
      ASSERT_GE(n, config.min_locations);
      ASSERT_LE(n, config.max_locations);
      ASSERT_LE(m, config.max_aois);
      ASSERT_EQ(static_cast<int>(s.route_label.size()), n);
      ASSERT_EQ(static_cast<int>(s.time_label_min.size()), n);
      ASSERT_EQ(static_cast<int>(s.aoi_route_label.size()), m);
      ASSERT_EQ(static_cast<int>(s.loc_to_aoi.size()), n);
      // Route labels are permutations.
      std::set<int> seen(s.route_label.begin(), s.route_label.end());
      EXPECT_EQ(static_cast<int>(seen.size()), n);
      // Arrival gaps positive and increasing along the route.
      double prev = 0;
      for (int j = 0; j < n; ++j) {
        const double gap = s.time_label_min[s.route_label[j]];
        EXPECT_GT(gap, prev);
        prev = gap;
      }
      // AOI arrival = arrival at first location of that AOI.
      std::set<int> first_seen;
      for (int j = 0; j < n; ++j) {
        const int loc = s.route_label[j];
        const int aoi = s.loc_to_aoi[loc];
        if (first_seen.insert(aoi).second) {
          EXPECT_DOUBLE_EQ(s.aoi_time_label_min[aoi],
                           s.time_label_min[loc]);
        }
      }
      // aoi_route_label = order of first AOI entry.
      std::vector<int> expected_aoi_route;
      std::set<int> entered;
      for (int j = 0; j < n; ++j) {
        const int aoi = s.loc_to_aoi[s.route_label[j]];
        if (entered.insert(aoi).second) expected_aoi_route.push_back(aoi);
      }
      EXPECT_EQ(s.aoi_route_label, expected_aoi_route);
    }
  }
}

TEST(DatasetTest, SplitIsByDayAndOrdered) {
  DataConfig config = SmallConfig();
  DatasetSplits splits = BuildDataset(config);
  int max_train_day = -1, min_val_day = 1 << 20, max_val_day = -1,
      min_test_day = 1 << 20;
  for (const Sample& s : splits.train.samples) {
    max_train_day = std::max(max_train_day, s.day);
  }
  for (const Sample& s : splits.val.samples) {
    min_val_day = std::min(min_val_day, s.day);
    max_val_day = std::max(max_val_day, s.day);
  }
  for (const Sample& s : splits.test.samples) {
    min_test_day = std::min(min_test_day, s.day);
  }
  EXPECT_LT(max_train_day, min_val_day);
  EXPECT_LT(max_val_day, min_test_day);
}

TEST(DatasetTest, DeterministicForFixedSeed) {
  DataConfig config = SmallConfig();
  DatasetSplits a = BuildDataset(config);
  DatasetSplits b = BuildDataset(config);
  ASSERT_EQ(a.train.size(), b.train.size());
  for (int i = 0; i < a.train.size(); ++i) {
    EXPECT_EQ(a.train.samples[i].route_label, b.train.samples[i].route_label);
    EXPECT_EQ(a.train.samples[i].query_time_min,
              b.train.samples[i].query_time_min);
  }
}

TEST(DatasetTest, DifferentSeedsGiveDifferentData) {
  DataConfig a = SmallConfig();
  DataConfig b = SmallConfig();
  b.seed = a.seed + 1;
  DatasetSplits sa = BuildDataset(a);
  DatasetSplits sb = BuildDataset(b);
  ASSERT_GT(sa.train.size(), 0);
  bool any_diff = sa.train.size() != sb.train.size();
  if (!any_diff) {
    for (int i = 0; i < sa.train.size() && !any_diff; ++i) {
      any_diff = sa.train.samples[i].query_time_min !=
                 sb.train.samples[i].query_time_min;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(DatasetTest, StatsMatchPaperShape) {
  // Default-scale dataset must land near the paper's Figure 4 statistics.
  DataConfig config;  // default
  DatasetSplits splits = BuildDataset(config);
  Dataset all;
  for (const Dataset* ds : {&splits.train, &splits.val, &splits.test}) {
    for (const Sample& s : ds->samples) all.samples.push_back(s);
  }
  DataStats stats = ComputeDataStats(all);
  EXPECT_GT(stats.num_samples, 500);
  // Paper: 7.64 locations, 4.08 AOIs, ~60 min mean arrival gap.
  EXPECT_NEAR(stats.mean_locations_per_sample, 7.6, 2.5);
  EXPECT_NEAR(stats.mean_aois_per_sample, 4.1, 1.5);
  EXPECT_NEAR(stats.mean_location_arrival_gap_min, 60.0, 25.0);
  EXPECT_NEAR(stats.mean_aoi_arrival_gap_min,
              stats.mean_location_arrival_gap_min, 15.0);
}

}  // namespace
}  // namespace m2g::synth
