#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "tensor/matrix.h"

namespace m2g {
namespace {

TEST(MatrixTest, ConstructionAndShape) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.size(), 6u);
  for (size_t i = 0; i < m.size(); ++i) EXPECT_EQ(m[i], 0.0f);
}

TEST(MatrixTest, AtIsRowMajor) {
  Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(m.At(0, 0), 1.0f);
  EXPECT_EQ(m.At(0, 2), 3.0f);
  EXPECT_EQ(m.At(1, 0), 4.0f);
  EXPECT_EQ(m.At(1, 2), 6.0f);
}

TEST(MatrixTest, FactoryHelpers) {
  Matrix ones = Matrix::Ones(2, 2);
  EXPECT_EQ(ones.Sum(), 4.0f);
  Matrix id = Matrix::Identity(3);
  EXPECT_EQ(id.Sum(), 3.0f);
  EXPECT_EQ(id.At(1, 1), 1.0f);
  EXPECT_EQ(id.At(0, 1), 0.0f);
  Matrix row = Matrix::RowVector({1, 2, 3});
  EXPECT_EQ(row.rows(), 1);
  EXPECT_EQ(row.cols(), 3);
}

TEST(MatrixTest, InPlaceArithmetic) {
  Matrix a(1, 3, {1, 2, 3});
  Matrix b(1, 3, {10, 20, 30});
  a.AddInPlace(b);
  EXPECT_EQ(a.At(0, 1), 22.0f);
  a.AddScaledInPlace(b, -1.0f);
  EXPECT_EQ(a.At(0, 1), 2.0f);
  a.ScaleInPlace(2.0f);
  EXPECT_EQ(a.At(0, 2), 6.0f);
}

TEST(MatrixTest, NormAndMaxAbs) {
  Matrix a(1, 2, {3, -4});
  EXPECT_FLOAT_EQ(a.Norm(), 5.0f);
  EXPECT_FLOAT_EQ(a.MaxAbs(), 4.0f);
}

TEST(MatrixTest, MatMulBasic) {
  Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix b(3, 2, {7, 8, 9, 10, 11, 12});
  Matrix c = MatMulRaw(a, b);
  // c = [[58, 64], [139, 154]]
  EXPECT_FLOAT_EQ(c.At(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.At(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.At(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.At(1, 1), 154.0f);
}

TEST(MatrixTest, MatMulIdentity) {
  Rng rng(3);
  Matrix a = Matrix::Random(4, 4, -1, 1, &rng);
  Matrix c = MatMulRaw(a, Matrix::Identity(4));
  for (size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(c[i], a[i]);
}

TEST(MatrixTest, TransposeRoundTrip) {
  Rng rng(4);
  Matrix a = Matrix::Random(3, 5, -1, 1, &rng);
  Matrix t = TransposeRaw(a);
  EXPECT_EQ(t.rows(), 5);
  EXPECT_EQ(t.cols(), 3);
  Matrix tt = TransposeRaw(t);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(tt[i], a[i]);
}

// The canonical accumulation order every matmul-shaped kernel promises:
// ascending p, skip exact zeros, ascending j into out_row. The dense
// register-blocked path AccumulateRowMatMul selects for zero-free rows
// must reproduce this bit for bit.
void ReferenceRowMatMul(const float* x, int k, const Matrix& b,
                        float* out_row) {
  for (int p = 0; p < k; ++p) {
    if (x[p] == 0.0f) continue;
    for (int j = 0; j < b.cols(); ++j) {
      out_row[j] += x[p] * b.At(p, j);
    }
  }
}

TEST(RowKernelTest, AccumulateRowMatMulMatchesReferenceBitwise) {
  Rng rng(42);
  // k values straddle the 4-wide unroll boundary; m = 3 exercises the
  // small-output branchy fallback, m = 7 the dense path.
  for (int k : {1, 3, 4, 7, 9, 16}) {
    for (int m : {3, 7}) {
      for (bool with_zeros : {false, true}) {
        Matrix x = Matrix::Random(1, k, -1, 1, &rng);
        if (with_zeros && k > 1) {
          x.At(0, 0) = 0.0f;
          x.At(0, k / 2) = 0.0f;
        }
        const Matrix b = Matrix::Random(k, m, -1, 1, &rng);
        std::vector<float> got(m, 0.5f), want(m, 0.5f);
        AccumulateRowMatMul(x.data(), k, b.data(), m, got.data());
        ReferenceRowMatMul(x.data(), k, b, want.data());
        EXPECT_EQ(std::memcmp(got.data(), want.data(), m * sizeof(float)), 0)
            << "k=" << k << " m=" << m << " zeros=" << with_zeros;
      }
    }
  }
}

TEST(RowKernelTest, ZeroScanCapKeepsSkipSemanticsBitwise) {
  // The dense/sparse selection scans only the first 16 entries of x. A
  // zero hiding past the cap reaches the dense kernel, which adds its
  // +/-0.0 terms instead of skipping them — bitwise-neutral for finite
  // b and accumulators that never hold -0.0 (see AccumulateRowMatMul).
  // Pin that against the skip reference for zeros on both sides of the
  // cap boundary.
  Rng rng(46);
  const int m = 12;
  for (int k : {17, 24, 48}) {
    for (int zero_at : {16, 17, k - 1}) {
      for (float zero : {0.0f, -0.0f}) {
        Matrix x = Matrix::Random(1, k, 0.1f, 1.0f, &rng);
        x.At(0, zero_at) = zero;
        const Matrix b = Matrix::Random(k, m, -1, 1, &rng);
        std::vector<float> got(m, 0.0f), want(m, 0.0f);
        AccumulateRowMatMul(x.data(), k, b.data(), m, got.data());
        ReferenceRowMatMul(x.data(), k, b, want.data());
        EXPECT_EQ(
            std::memcmp(got.data(), want.data(), m * sizeof(float)), 0)
            << "k=" << k << " zero_at=" << zero_at;
      }
    }
  }
}

TEST(RowKernelTest, ZeroInScanPrefixStillSelectsBranchyPath) {
  // A zero inside the scanned prefix must take the skip path verbatim.
  // Observable: pair the zero with an inf row of b — skipping leaves
  // the output finite, while the dense kernel's 0 * inf would inject
  // NaN. (Beyond the cap the contract assumes finite b, so this pin
  // only holds for prefix zeros.)
  Rng rng(47);
  const int k = 20, m = 8;
  Matrix x = Matrix::Random(1, k, 0.1f, 1.0f, &rng);
  x.At(0, 3) = 0.0f;
  Matrix b = Matrix::Random(k, m, -1, 1, &rng);
  for (int j = 0; j < m; ++j) {
    b.At(3, j) = std::numeric_limits<float>::infinity();
  }
  std::vector<float> got(m, 0.0f), want(m, 0.0f);
  AccumulateRowMatMul(x.data(), k, b.data(), m, got.data());
  ReferenceRowMatMul(x.data(), k, b, want.data());
  EXPECT_EQ(std::memcmp(got.data(), want.data(), m * sizeof(float)), 0);
  for (int j = 0; j < m; ++j) EXPECT_TRUE(std::isfinite(got[j])) << j;
}

TEST(RowKernelTest, MatMulRawAgreesWithRowPrimitive) {
  Rng rng(43);
  const Matrix a = Matrix::Random(5, 9, -1, 1, &rng);
  const Matrix b = Matrix::Random(9, 6, -1, 1, &rng);
  const Matrix full = MatMulRaw(a, b);
  for (int i = 0; i < a.rows(); ++i) {
    std::vector<float> row(b.cols(), 0.0f);
    AccumulateRowMatMul(a.data() + static_cast<size_t>(i) * a.cols(),
                        a.cols(), b.data(), b.cols(), row.data());
    EXPECT_EQ(std::memcmp(row.data(),
                          full.data() + static_cast<size_t>(i) * b.cols(),
                          b.cols() * sizeof(float)),
              0)
        << "row " << i;
  }
}

TEST(RowKernelTest, MatMulManyIntoMatchesPerSliceMatMulBitwise) {
  Rng rng(45);
  // Mixed slice heights (including a 1-row slice) against one shared
  // weight, as the batched GAT-e fast path issues them.
  const int k = 9, m = 6;
  const Matrix b = Matrix::Random(k, m, -1, 1, &rng);
  const std::vector<int> heights = {4, 1, 7, 3};
  std::vector<Matrix> inputs;
  for (int n : heights) inputs.push_back(Matrix::Random(n, k, -1, 1, &rng));

  std::vector<Matrix> got, want;
  for (int n : heights) {
    got.push_back(Matrix::Uninit(n, m));
    want.push_back(Matrix::Uninit(n, m));
  }
  std::vector<MatMulManySlice> slices;
  for (size_t s = 0; s < inputs.size(); ++s) {
    slices.push_back({inputs[s].data(), heights[s], got[s].data()});
  }
  MatMulManyInto(slices.data(), static_cast<int>(slices.size()), k,
                 b.data(), m);
  for (size_t s = 0; s < inputs.size(); ++s) {
    MatMulInto(inputs[s].data(), heights[s], k, b.data(), m,
               want[s].data());
    EXPECT_EQ(std::memcmp(got[s].data(), want[s].data(),
                          got[s].size() * sizeof(float)),
              0)
        << "slice " << s;
  }
}

TEST(RowKernelTest, PointerScoreRowMatchesComposedOps) {
  Rng rng(44);
  const int d = 48;
  const Matrix keys = Matrix::Random(4, d, -1, 1, &rng);
  const Matrix q = Matrix::Random(1, d, -1, 1, &rng);
  const Matrix v = Matrix::Random(d, 1, -1, 1, &rng);
  for (int i = 0; i < keys.rows(); ++i) {
    // Reference: materialize tanh(keys_i + q) as a row and route it
    // through MatMulRaw — the composition the fused kernel replaces.
    Matrix t(1, d);
    for (int p = 0; p < d; ++p) {
      t.At(0, p) = std::tanh(keys.At(i, p) + q.At(0, p));
    }
    const Matrix want = MatMulRaw(t, v);
    const float got =
        PointerScoreRow(keys.data() + static_cast<size_t>(i) * d, q.data(),
                        v.data(), d);
    EXPECT_EQ(std::memcmp(&got, want.data(), sizeof(float)), 0) << "row " << i;
  }
}

TEST(RowKernelTest, PointerScoresMaskedSkipsMaskedRows) {
  Rng rng(45);
  const int n = 6, d = 8;
  const Matrix keys = Matrix::Random(n, d, -1, 1, &rng);
  const Matrix q = Matrix::Random(1, d, -1, 1, &rng);
  const Matrix v = Matrix::Random(d, 1, -1, 1, &rng);
  const std::vector<bool> mask = {true, false, true, true, false, true};
  std::vector<float> scores(n, -123.0f);
  PointerScoresMasked(keys, q.data(), v.data(), mask, scores.data());
  for (int i = 0; i < n; ++i) {
    if (!mask[i]) {
      EXPECT_EQ(scores[i], -123.0f) << "masked row " << i << " was written";
      continue;
    }
    const float want = PointerScoreRow(
        keys.data() + static_cast<size_t>(i) * d, q.data(), v.data(), d);
    EXPECT_EQ(scores[i], want) << "row " << i;
  }
}

TEST(MatrixTest, RandomIsDeterministicGivenSeed) {
  Rng r1(99), r2(99);
  Matrix a = Matrix::Random(3, 3, -1, 1, &r1);
  Matrix b = Matrix::Random(3, 3, -1, 1, &r2);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

}  // namespace
}  // namespace m2g
