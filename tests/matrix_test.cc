#include <gtest/gtest.h>

#include "tensor/matrix.h"

namespace m2g {
namespace {

TEST(MatrixTest, ConstructionAndShape) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.size(), 6u);
  for (size_t i = 0; i < m.size(); ++i) EXPECT_EQ(m[i], 0.0f);
}

TEST(MatrixTest, AtIsRowMajor) {
  Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(m.At(0, 0), 1.0f);
  EXPECT_EQ(m.At(0, 2), 3.0f);
  EXPECT_EQ(m.At(1, 0), 4.0f);
  EXPECT_EQ(m.At(1, 2), 6.0f);
}

TEST(MatrixTest, FactoryHelpers) {
  Matrix ones = Matrix::Ones(2, 2);
  EXPECT_EQ(ones.Sum(), 4.0f);
  Matrix id = Matrix::Identity(3);
  EXPECT_EQ(id.Sum(), 3.0f);
  EXPECT_EQ(id.At(1, 1), 1.0f);
  EXPECT_EQ(id.At(0, 1), 0.0f);
  Matrix row = Matrix::RowVector({1, 2, 3});
  EXPECT_EQ(row.rows(), 1);
  EXPECT_EQ(row.cols(), 3);
}

TEST(MatrixTest, InPlaceArithmetic) {
  Matrix a(1, 3, {1, 2, 3});
  Matrix b(1, 3, {10, 20, 30});
  a.AddInPlace(b);
  EXPECT_EQ(a.At(0, 1), 22.0f);
  a.AddScaledInPlace(b, -1.0f);
  EXPECT_EQ(a.At(0, 1), 2.0f);
  a.ScaleInPlace(2.0f);
  EXPECT_EQ(a.At(0, 2), 6.0f);
}

TEST(MatrixTest, NormAndMaxAbs) {
  Matrix a(1, 2, {3, -4});
  EXPECT_FLOAT_EQ(a.Norm(), 5.0f);
  EXPECT_FLOAT_EQ(a.MaxAbs(), 4.0f);
}

TEST(MatrixTest, MatMulBasic) {
  Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix b(3, 2, {7, 8, 9, 10, 11, 12});
  Matrix c = MatMulRaw(a, b);
  // c = [[58, 64], [139, 154]]
  EXPECT_FLOAT_EQ(c.At(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.At(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.At(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.At(1, 1), 154.0f);
}

TEST(MatrixTest, MatMulIdentity) {
  Rng rng(3);
  Matrix a = Matrix::Random(4, 4, -1, 1, &rng);
  Matrix c = MatMulRaw(a, Matrix::Identity(4));
  for (size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(c[i], a[i]);
}

TEST(MatrixTest, TransposeRoundTrip) {
  Rng rng(4);
  Matrix a = Matrix::Random(3, 5, -1, 1, &rng);
  Matrix t = TransposeRaw(a);
  EXPECT_EQ(t.rows(), 5);
  EXPECT_EQ(t.cols(), 3);
  Matrix tt = TransposeRaw(t);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(tt[i], a[i]);
}

TEST(MatrixTest, RandomIsDeterministicGivenSeed) {
  Rng r1(99), r2(99);
  Matrix a = Matrix::Random(3, 3, -1, 1, &r1);
  Matrix b = Matrix::Random(3, 3, -1, 1, &r2);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

}  // namespace
}  // namespace m2g
