// Encode fast-path parity suite: the fused no-grad GAT-e kernels driven
// through a per-request EncodePlan must reproduce the legacy autograd
// encode bit for bit — under pooled AND plain storage, against the legacy
// path in grad mode AND under NoGradGuard, serial AND concurrent. Also
// pins full-model Predict parity across the encode_fast_path kill switch,
// the training path's indifference to the flag (loss value + every
// parameter gradient bitwise), the grad-mode dispatch back to legacy, and
// the zero steady-state pool-miss property of a planned encode.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "core/encode_plan.h"
#include "core/encoder.h"
#include "core/model.h"
#include "graph/features.h"
#include "obs/metrics.h"
#include "synth/world.h"
#include "tensor/grad_mode.h"
#include "tensor/pool.h"

namespace m2g::core {
namespace {

/// Forces the pool globally on or off for a scope, restoring the prior
/// setting on exit — the suite runs every parity check both ways.
class PoolMode {
 public:
  explicit PoolMode(bool enabled) : saved_(TensorPool::enabled()) {
    TensorPool::set_enabled(enabled);
  }
  ~PoolMode() { TensorPool::set_enabled(saved_); }

 private:
  bool saved_;
};

void ExpectBitEqual(const Matrix& a, const Matrix& b, const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
      << what;
}

/// Random but structurally valid level graph: symmetric adjacency with
/// self-loops, ids within the embedding vocabularies.
graph::LevelGraph MakeLevel(int n, uint64_t seed) {
  Rng rng(seed);
  graph::LevelGraph level;
  level.n = n;
  level.node_continuous =
      Matrix::Random(n, graph::kLocationContinuousDim, -1, 1, &rng);
  level.node_aoi_id.resize(n);
  level.node_aoi_type.resize(n);
  for (int i = 0; i < n; ++i) {
    level.node_aoi_id[i] = rng.UniformInt(0, 511);
    level.node_aoi_type[i] = rng.UniformInt(0, synth::kNumAoiTypes - 1);
  }
  level.edge_features = Matrix::Random(n * n, graph::kEdgeDim, 0, 1, &rng);
  level.adjacency.assign(static_cast<size_t>(n) * n, false);
  for (int i = 0; i < n; ++i) {
    level.adjacency[static_cast<size_t>(i) * n + i] = true;
    for (int j = i + 1; j < n; ++j) {
      if (rng.Bernoulli(0.4)) {
        level.adjacency[static_cast<size_t>(i) * n + j] = true;
        level.adjacency[static_cast<size_t>(j) * n + i] = true;
      }
    }
  }
  return level;
}

/// Paper-sized encoder (hidden 48, 4 heads, 2 layers — exercises both the
/// concat hidden layer and the averaged last layer) over a random level.
struct Fixture {
  explicit Fixture(int n, uint64_t seed = 901) : rng(seed) {
    config.seed = 11;
    encoder = std::make_unique<LevelEncoder>(
        config, graph::kLocationContinuousDim, &rng);
    level = MakeLevel(n, seed + 1);
    global =
        Tensor::Constant(Matrix::Random(1, config.courier_dim, -1, 1, &rng));
  }

  ModelConfig config;
  Rng rng;
  std::unique_ptr<LevelEncoder> encoder;
  graph::LevelGraph level;
  Tensor global;
};

TEST(EncodeParityTest, FastEncodeMatchesLegacyBitwise) {
  for (bool pooled : {true, false}) {
    PoolMode mode(pooled);
    for (int n : {1, 2, 5, 17, 30}) {
      Fixture f(n, 700 + n);
      // Legacy in grad mode builds the full autograd graph — these are
      // the canonical training-path bits.
      EncodedLevel grad_ref = f.encoder->EncodeLegacy(f.level, f.global);
      NoGradGuard no_grad;
      EncodedLevel nograd_ref = f.encoder->EncodeLegacy(f.level, f.global);
      EncodePlan plan(n, f.config.hidden_dim);
      EncodedLevel fast = f.encoder->EncodeFast(f.level, f.global, &plan);
      ExpectBitEqual(fast.nodes.value(), grad_ref.nodes.value(),
                     "nodes vs grad-mode legacy");
      ExpectBitEqual(fast.edges.value(), grad_ref.edges.value(),
                     "edges vs grad-mode legacy");
      ExpectBitEqual(fast.nodes.value(), nograd_ref.nodes.value(),
                     "nodes vs no-grad legacy");
      ExpectBitEqual(fast.edges.value(), nograd_ref.edges.value(),
                     "edges vs no-grad legacy");
      // An oversized plan (serving sizes it to the max level, then reuses
      // it for the smaller one) must not change a single bit.
      EncodePlan big(n + 13, f.config.hidden_dim);
      EncodedLevel fast_big = f.encoder->EncodeFast(f.level, f.global, &big);
      ExpectBitEqual(fast_big.nodes.value(), fast.nodes.value(),
                     "nodes with oversized plan");
      ExpectBitEqual(fast_big.edges.value(), fast.edges.value(),
                     "edges with oversized plan");
    }
  }
}

// Encode() must route by grad mode, not by plan presence: with gradients
// enabled the plan is ignored and the legacy autograd path runs (the
// encode.fast_layers counter stays put), so a misplaced plan can never
// leak a constant into a training graph.
TEST(EncodeParityTest, GradModeDispatchesToLegacyEvenWithPlan) {
  Fixture f(9);
  obs::Counter& fast_layers =
      obs::MetricsRegistry::Global().counter("encode.fast_layers");
  obs::Counter& legacy_layers =
      obs::MetricsRegistry::Global().counter("encode.legacy_layers");
  const uint64_t fast_before = fast_layers.Value();
  const uint64_t legacy_before = legacy_layers.Value();
  EncodePlan plan(9, f.config.hidden_dim);
  ASSERT_TRUE(GradMode::enabled());
  EncodedLevel enc = f.encoder->Encode(f.level, f.global, &plan);
#ifndef M2G_OBS_DISABLED
  EXPECT_EQ(fast_layers.Value(), fast_before);
  EXPECT_GT(legacy_layers.Value(), legacy_before);
#endif
  // And it is a real gradient graph: backprop reaches the encoder.
  Sum(enc.nodes).Backward();
  int touched = 0;
  for (const Tensor& p : f.encoder->Parameters()) {
    if (p.grad().SameShape(p.value()) && p.grad().MaxAbs() > 0) ++touched;
  }
  EXPECT_GT(touched, 0);

  // Under NoGradGuard the same call takes the fast path.
  NoGradGuard no_grad;
  f.encoder->Encode(f.level, f.global, &plan);
#ifndef M2G_OBS_DISABLED
  EXPECT_GT(fast_layers.Value(), fast_before);
#else
  (void)fast_before;
  (void)legacy_before;
#endif
}

synth::DataConfig TinyDataConfig() {
  synth::DataConfig dc;
  dc.seed = 404;
  dc.world.num_aois = 60;
  dc.world.num_districts = 3;
  dc.couriers.num_couriers = 6;
  dc.num_days = 2;
  return dc;
}

ModelConfig TinyModelConfig(bool fast) {
  ModelConfig c;
  c.seed = 5;
  c.hidden_dim = 16;
  c.num_heads = 2;
  c.num_layers = 2;
  c.aoi_id_embed_dim = 4;
  c.aoi_type_embed_dim = 2;
  c.lstm_hidden_dim = 16;
  c.courier_dim = 8;
  c.pos_enc_dim = 4;
  c.encode_fast_path = fast;
  return c;
}

// End-to-end kill-switch parity: two same-seed models differing only in
// encode_fast_path must emit identical routes and bit-identical arrival
// times through the multi-level Predict (both levels share one plan).
TEST(EncodeParityTest, PredictIdenticalAcrossKillSwitch) {
  const synth::DatasetSplits splits = synth::BuildDataset(TinyDataConfig());
  ASSERT_GT(splits.train.size(), 4);
  for (bool pooled : {true, false}) {
    PoolMode mode(pooled);
    M2g4Rtp fast_model(TinyModelConfig(true));
    M2g4Rtp legacy_model(TinyModelConfig(false));
    NoGradGuard no_grad;
    for (int i = 0; i < 4; ++i) {
      const synth::Sample& s = splits.train.samples[i];
      const RtpPrediction a = fast_model.Predict(s);
      const RtpPrediction b = legacy_model.Predict(s);
      EXPECT_EQ(a.location_route, b.location_route) << "sample " << i;
      EXPECT_EQ(a.aoi_route, b.aoi_route) << "sample " << i;
      EXPECT_EQ(a.location_times_min, b.location_times_min) << "sample " << i;
      EXPECT_EQ(a.aoi_times_min, b.aoi_times_min) << "sample " << i;
    }
  }
}

// The training path never sees the plan: loss value and every parameter
// gradient are bitwise-unchanged by the serving flag, so checkpoints
// trained before and after this refactor are byte-equal at a fixed seed.
TEST(EncodeParityTest, TrainingLossAndGradsUnaffectedByFlag) {
  const synth::DatasetSplits splits = synth::BuildDataset(TinyDataConfig());
  const synth::Sample& s = splits.train.samples.front();
  const auto run = [&](bool fast) {
    M2g4Rtp model(TinyModelConfig(fast));
    Tensor loss = model.ComputeLoss(s);
    loss.Backward();
    std::vector<Matrix> grads;
    for (const auto& [name, p] : model.NamedParameters()) {
      grads.push_back(p.grad());
    }
    return std::make_pair(loss.value(), std::move(grads));
  };
  auto [legacy_loss, legacy_grads] = run(false);
  auto [fast_loss, fast_grads] = run(true);
  ExpectBitEqual(fast_loss, legacy_loss, "loss value");
  ASSERT_EQ(fast_grads.size(), legacy_grads.size());
  for (size_t i = 0; i < fast_grads.size(); ++i) {
    ExpectBitEqual(fast_grads[i], legacy_grads[i], "parameter grad");
  }
}

// After one warm-up request, a planned encode must run entirely off the
// free lists: the plan's scratch, the embedding constants and the fast
// path's outputs all reuse fixed shapes, so a steady-state request makes
// zero pool misses.
TEST(EncodeParityTest, SteadyStateEncodeHasZeroPoolMisses) {
  PoolMode mode(true);
  TensorPool::ReleaseRetained();
  Fixture f(20);
  NoGradGuard no_grad;
  {
    ArenaGuard warmup;
    EncodePlan plan(20, f.config.hidden_dim);
    f.encoder->Encode(f.level, f.global, &plan);
  }
  ArenaGuard steady;
  EncodePlan plan(20, f.config.hidden_dim);
  f.encoder->Encode(f.level, f.global, &plan);
  const TensorPool::Stats stats = steady.ScopeStats();
  EXPECT_EQ(stats.pool_misses, 0u);
  EXPECT_GT(stats.pool_hits, 0u);
}

// Shared-encoder fast encodes from several threads (each with its own
// plan and arena) must be race-free and agree with the serial result —
// the TSan job runs this test.
TEST(EncodeParityTest, ConcurrentEncodeMatchesSerial) {
  Fixture f(15);
  std::vector<float> expected_nodes;
  std::vector<float> expected_edges;
  {
    NoGradGuard no_grad;
    ArenaGuard scope;
    EncodePlan plan(15, f.config.hidden_dim);
    EncodedLevel enc = f.encoder->EncodeFast(f.level, f.global, &plan);
    const Matrix& nv = enc.nodes.value();
    const Matrix& ev = enc.edges.value();
    expected_nodes.assign(nv.data(), nv.data() + nv.size());
    expected_edges.assign(ev.data(), ev.data() + ev.size());
  }
  std::vector<std::thread> threads;
  std::vector<int> mismatches(4, 0);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      NoGradGuard no_grad;  // grad mode is thread-local
      for (int iter = 0; iter < 8; ++iter) {
        ArenaGuard request;
        EncodePlan plan(15, f.config.hidden_dim);
        EncodedLevel enc = f.encoder->EncodeFast(f.level, f.global, &plan);
        const Matrix& nv = enc.nodes.value();
        const Matrix& ev = enc.edges.value();
        if (std::memcmp(nv.data(), expected_nodes.data(),
                        expected_nodes.size() * sizeof(float)) != 0 ||
            std::memcmp(ev.data(), expected_edges.data(),
                        expected_edges.size() * sizeof(float)) != 0) {
          ++mismatches[t];
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 0; t < 4; ++t) EXPECT_EQ(mismatches[t], 0) << "thread " << t;
}

}  // namespace
}  // namespace m2g::core
