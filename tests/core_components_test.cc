#include <gtest/gtest.h>

#include <cmath>

#include <cmath>
#include <set>

#include "core/encoder.h"
#include "core/gat_e.h"
#include "core/route_decoder.h"
#include "core/sort_lstm.h"
#include "core/uncertainty_loss.h"
#include "graph/features.h"
#include "nn/optimizer.h"

namespace m2g::core {
namespace {

ModelConfig TinyConfig() {
  ModelConfig c;
  c.hidden_dim = 16;
  c.num_heads = 2;
  c.num_layers = 2;
  c.aoi_id_embed_dim = 4;
  c.aoi_type_embed_dim = 2;
  c.lstm_hidden_dim = 16;
  c.courier_dim = 8;
  c.pos_enc_dim = 4;
  return c;
}

TEST(ConfigTest, ValidationCatchesBadConfigs) {
  ModelConfig c = TinyConfig();
  EXPECT_TRUE(ValidateConfig(c).ok());
  c.num_heads = 3;  // 16 % 3 != 0
  EXPECT_FALSE(ValidateConfig(c).ok());
  c = TinyConfig();
  c.aoi_id_embed_dim = 20;  // exceeds hidden_dim
  EXPECT_FALSE(ValidateConfig(c).ok());
  c = TinyConfig();
  c.pos_enc_dim = 5;
  EXPECT_FALSE(ValidateConfig(c).ok());
}

TEST(GatELayerTest, OutputShapesHiddenAndLast) {
  ModelConfig c = TinyConfig();
  Rng rng(1);
  const int n = 6;
  Tensor nodes = Tensor::Constant(
      Matrix::Random(n, c.hidden_dim, -1, 1, &rng));
  Tensor edges = Tensor::Constant(
      Matrix::Random(n * n, c.hidden_dim, -1, 1, &rng));
  std::vector<bool> adj(n * n, true);

  GatELayer hidden(c, /*is_last=*/false, &rng);
  GatEOutput out = hidden.Forward(nodes, edges, adj);
  EXPECT_EQ(out.nodes.rows(), n);
  EXPECT_EQ(out.nodes.cols(), c.hidden_dim);
  EXPECT_EQ(out.edges.rows(), n * n);
  EXPECT_EQ(out.edges.cols(), c.hidden_dim);

  GatELayer last(c, /*is_last=*/true, &rng);
  GatEOutput out2 = last.Forward(nodes, edges, adj);
  EXPECT_EQ(out2.nodes.cols(), c.hidden_dim);
}

TEST(GatELayerTest, MaskedNeighboursDoNotInfluence) {
  // With adjacency = identity, each node attends only to itself, so
  // changing another node's features must not change node 0's output.
  ModelConfig c = TinyConfig();
  Rng rng(2);
  const int n = 4;
  Matrix base = Matrix::Random(n, c.hidden_dim, -1, 1, &rng);
  Matrix edge_feats = Matrix::Random(n * n, c.hidden_dim, -1, 1, &rng);
  std::vector<bool> adj(n * n, false);
  for (int i = 0; i < n; ++i) adj[i * n + i] = true;

  GatELayer layer(c, false, &rng);
  GatEOutput out1 = layer.Forward(Tensor::Constant(base),
                                  Tensor::Constant(edge_feats), adj);
  Matrix perturbed = base;
  for (int col = 0; col < c.hidden_dim; ++col) {
    perturbed.At(2, col) += 5.0f;
  }
  GatEOutput out2 = layer.Forward(Tensor::Constant(perturbed),
                                  Tensor::Constant(edge_feats), adj);
  for (int col = 0; col < c.hidden_dim; ++col) {
    EXPECT_FLOAT_EQ(out1.nodes.value().At(0, col),
                    out2.nodes.value().At(0, col));
  }
}

TEST(GatELayerTest, EdgeFeaturesAffectAttention) {
  ModelConfig c = TinyConfig();
  Rng rng(3);
  const int n = 3;
  Tensor nodes = Tensor::Constant(
      Matrix::Random(n, c.hidden_dim, -1, 1, &rng));
  Matrix e1 = Matrix::Random(n * n, c.hidden_dim, -1, 1, &rng);
  Matrix e2 = e1;
  for (int col = 0; col < c.hidden_dim; ++col) e2.At(1, col) += 3.0f;
  std::vector<bool> adj(n * n, true);
  GatELayer layer(c, false, &rng);
  GatEOutput o1 = layer.Forward(nodes, Tensor::Constant(e1), adj);
  GatEOutput o2 = layer.Forward(nodes, Tensor::Constant(e2), adj);
  float diff = 0;
  for (int col = 0; col < c.hidden_dim; ++col) {
    diff += std::fabs(o1.nodes.value().At(0, col) -
                      o2.nodes.value().At(0, col));
  }
  EXPECT_GT(diff, 1e-6f);
}

TEST(GatELayerTest, GradientsReachAllParameters) {
  ModelConfig c = TinyConfig();
  Rng rng(4);
  const int n = 5;
  Tensor nodes = Tensor::Constant(
      Matrix::Random(n, c.hidden_dim, -1, 1, &rng));
  Tensor edges = Tensor::Constant(
      Matrix::Random(n * n, c.hidden_dim, -1, 1, &rng));
  std::vector<bool> adj(n * n, true);
  GatELayer layer(c, false, &rng);
  GatEOutput out = layer.Forward(nodes, edges, adj);
  Add(Sum(out.nodes), Sum(out.edges)).Backward();
  for (const auto& [name, p] : layer.NamedParameters()) {
    ASSERT_TRUE(p.grad().SameShape(p.value())) << name;
    EXPECT_GT(p.grad().MaxAbs(), 0.0f) << name;
  }
}

TEST(GatELayerTest, PermutationEquivariant) {
  // Relabeling the nodes (and permuting edges/adjacency consistently)
  // must permute the outputs identically — the defining property of a
  // graph encoder, and exactly what sequence encoders lack.
  ModelConfig c = TinyConfig();
  Rng rng(55);
  const int n = 5;
  Matrix nodes = Matrix::Random(n, c.hidden_dim, -1, 1, &rng);
  Matrix edges = Matrix::Random(n * n, c.hidden_dim, -1, 1, &rng);
  std::vector<bool> adj(n * n, false);
  for (int i = 0; i < n; ++i) {
    adj[i * n + i] = true;
    adj[i * n + (i + 1) % n] = true;
    adj[((i + 1) % n) * n + i] = true;
  }
  GatELayer layer(c, false, &rng);
  GatEOutput base = layer.Forward(Tensor::Constant(nodes),
                                  Tensor::Constant(edges), adj);

  // Apply permutation p (node i of the permuted graph = node p[i]).
  const std::vector<int> p = {3, 0, 4, 1, 2};
  Matrix pn(n, c.hidden_dim);
  Matrix pe(n * n, c.hidden_dim);
  std::vector<bool> padj(n * n, false);
  for (int i = 0; i < n; ++i) {
    for (int col = 0; col < c.hidden_dim; ++col) {
      pn.At(i, col) = nodes.At(p[i], col);
    }
    for (int j = 0; j < n; ++j) {
      padj[i * n + j] = adj[p[i] * n + p[j]];
      for (int col = 0; col < c.hidden_dim; ++col) {
        pe.At(i * n + j, col) = edges.At(p[i] * n + p[j], col);
      }
    }
  }
  GatEOutput permuted = layer.Forward(Tensor::Constant(pn),
                                      Tensor::Constant(pe), padj);
  for (int i = 0; i < n; ++i) {
    for (int col = 0; col < c.hidden_dim; ++col) {
      EXPECT_NEAR(permuted.nodes.value().At(i, col),
                  base.nodes.value().At(p[i], col), 1e-5f)
          << "node " << i << " col " << col;
    }
    for (int j = 0; j < n; ++j) {
      for (int col = 0; col < c.hidden_dim; ++col) {
        EXPECT_NEAR(permuted.edges.value().At(i * n + j, col),
                    base.edges.value().At(p[i] * n + p[j], col), 1e-5f);
      }
    }
  }
}

TEST(RouteDecoderTest, GreedyDecodeIsPermutation) {
  Rng rng(5);
  const int n = 9, d = 12, du = 6;
  AttentionRouteDecoder decoder(d, du, 16, &rng);
  Tensor nodes = Tensor::Constant(Matrix::Random(n, d, -1, 1, &rng));
  Tensor courier = Tensor::Constant(Matrix::Random(1, du, -1, 1, &rng));
  std::vector<int> route = decoder.DecodeGreedy(nodes, courier);
  std::set<int> seen(route.begin(), route.end());
  EXPECT_EQ(seen.size(), static_cast<size_t>(n));
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), n - 1);
}

TEST(RouteDecoderTest, TeacherForcedLossFiniteAndPositive) {
  Rng rng(6);
  const int n = 6, d = 12, du = 6;
  AttentionRouteDecoder decoder(d, du, 16, &rng);
  Tensor nodes = Tensor::Constant(Matrix::Random(n, d, -1, 1, &rng));
  Tensor courier = Tensor::Constant(Matrix::Random(1, du, -1, 1, &rng));
  std::vector<int> label = {2, 0, 4, 1, 5, 3};
  Tensor loss = decoder.TeacherForcedLoss(nodes, courier, label);
  EXPECT_GT(loss.item(), 0.0f);
  EXPECT_TRUE(std::isfinite(loss.item()));
}

TEST(RouteDecoderTest, LearnsTrivialOrderingTask) {
  // One fixed instance: the decoder should overfit the label route.
  Rng rng(7);
  const int n = 5, d = 8, du = 4;
  AttentionRouteDecoder decoder(d, du, 12, &rng);
  Tensor nodes = Tensor::Constant(Matrix::Random(n, d, -1, 1, &rng));
  Tensor courier = Tensor::Constant(Matrix::Random(1, du, -1, 1, &rng));
  std::vector<int> label = {3, 1, 4, 0, 2};
  nn::Adam opt(decoder.Parameters(), 0.02f);
  for (int it = 0; it < 150; ++it) {
    opt.ZeroGrad();
    decoder.TeacherForcedLoss(nodes, courier, label).Backward();
    opt.Step();
  }
  EXPECT_EQ(decoder.DecodeGreedy(nodes, courier), label);
}

TEST(RouteDecoderTest, BeamWidthOneEqualsGreedy) {
  Rng rng(41);
  const int n = 8, d = 12, du = 6;
  AttentionRouteDecoder decoder(d, du, 16, &rng);
  Tensor nodes = Tensor::Constant(Matrix::Random(n, d, -1, 1, &rng));
  Tensor courier = Tensor::Constant(Matrix::Random(1, du, -1, 1, &rng));
  EXPECT_EQ(decoder.DecodeBeam(nodes, courier, 1),
            decoder.DecodeGreedy(nodes, courier));
}

TEST(RouteDecoderTest, BeamReturnsValidPermutation) {
  Rng rng(42);
  const int n = 7, d = 12, du = 6;
  AttentionRouteDecoder decoder(d, du, 16, &rng);
  Tensor nodes = Tensor::Constant(Matrix::Random(n, d, -1, 1, &rng));
  Tensor courier = Tensor::Constant(Matrix::Random(1, du, -1, 1, &rng));
  for (int width : {2, 3, 8, 50}) {
    std::vector<int> route = decoder.DecodeBeam(nodes, courier, width);
    std::set<int> seen(route.begin(), route.end());
    EXPECT_EQ(seen.size(), static_cast<size_t>(n)) << "width " << width;
  }
}

TEST(RouteDecoderTest, BeamSequenceLogProbAtLeastGreedy) {
  // The beam's chosen route must have total log-probability >= the
  // greedy route's (greedy is always inside the width-k search space).
  Rng rng(43);
  const int n = 6, d = 10, du = 4;
  AttentionRouteDecoder decoder(d, du, 12, &rng);
  Tensor nodes = Tensor::Constant(Matrix::Random(n, d, -2, 2, &rng));
  Tensor courier = Tensor::Constant(Matrix::Random(1, du, -1, 1, &rng));

  // Score a complete route under the decoder by teacher-forcing it:
  // TeacherForcedLoss returns mean CE = -mean log p, so lower is better.
  auto mean_nll = [&](const std::vector<int>& route) {
    return decoder.TeacherForcedLoss(nodes, courier, route).item();
  };
  const float greedy_nll = mean_nll(decoder.DecodeGreedy(nodes, courier));
  const float beam_nll = mean_nll(decoder.DecodeBeam(nodes, courier, 4));
  EXPECT_LE(beam_nll, greedy_nll + 1e-4f);
}

TEST(SortLstmTest, PositionalEncodingProperties) {
  Matrix p1 = SortLstm::PositionalEncoding(1, 8, 10000.0f);
  Matrix p2 = SortLstm::PositionalEncoding(2, 8, 10000.0f);
  EXPECT_EQ(p1.cols(), 8);
  // Values bounded by 1.
  EXPECT_LE(p1.MaxAbs(), 1.0f);
  // Different positions produce different encodings.
  float diff = 0;
  for (int c = 0; c < 8; ++c) diff += std::fabs(p1.At(0, c) - p2.At(0, c));
  EXPECT_GT(diff, 0.1f);
  // sin^2 + cos^2 == 1 per frequency pair.
  for (int k = 0; k < 4; ++k) {
    EXPECT_NEAR(p1.At(0, 2 * k) * p1.At(0, 2 * k) +
                    p1.At(0, 2 * k + 1) * p1.At(0, 2 * k + 1),
                1.0f, 1e-5f);
  }
}

TEST(SortLstmTest, OutputsIndexedByNode) {
  Rng rng(8);
  const int n = 5, d = 10;
  SortLstm sort_lstm(d, 4, 10000.0f, 12, &rng);
  Tensor nodes = Tensor::Constant(Matrix::Random(n, d, -1, 1, &rng));
  std::vector<int> route = {4, 2, 0, 3, 1};
  auto times = sort_lstm.Forward(nodes, route);
  ASSERT_EQ(times.size(), static_cast<size_t>(n));
  for (const Tensor& t : times) {
    ASSERT_TRUE(t.defined());
    EXPECT_EQ(t.value().size(), 1u);
  }
}

TEST(SortLstmTest, RouteOrderChangesPredictions) {
  Rng rng(9);
  const int n = 4, d = 10;
  SortLstm sort_lstm(d, 4, 10000.0f, 12, &rng);
  Tensor nodes = Tensor::Constant(Matrix::Random(n, d, -1, 1, &rng));
  auto t1 = sort_lstm.Forward(nodes, {0, 1, 2, 3});
  auto t2 = sort_lstm.Forward(nodes, {3, 2, 1, 0});
  float diff = 0;
  for (int i = 0; i < n; ++i) {
    diff += std::fabs(t1[i].item() - t2[i].item());
  }
  EXPECT_GT(diff, 1e-5f);
}

TEST(SortLstmTest, LearnsPositionDependentTargets) {
  // Target: time = position in route; SortLSTM must fit it using the
  // positional encodings.
  Rng rng(10);
  const int n = 6, d = 8;
  SortLstm sort_lstm(d, 8, 10000.0f, 16, &rng);
  Tensor nodes = Tensor::Constant(Matrix::Random(n, d, -1, 1, &rng));
  std::vector<int> route = {5, 3, 0, 1, 4, 2};
  nn::Adam opt(sort_lstm.Parameters(), 0.02f);
  for (int it = 0; it < 200; ++it) {
    opt.ZeroGrad();
    auto times = sort_lstm.Forward(nodes, route);
    Tensor loss = Tensor::Scalar(0);
    for (int s = 0; s < n; ++s) {
      loss = Add(loss, L1Loss(times[route[s]],
                              static_cast<float>(s + 1) * 0.5f));
    }
    loss.Backward();
    opt.Step();
  }
  auto times = sort_lstm.Forward(nodes, route);
  for (int s = 0; s < n; ++s) {
    EXPECT_NEAR(times[route[s]].item(), (s + 1) * 0.5f, 0.15f);
  }
}

TEST(SortLstmTest, EdgeInputsChangePredictions) {
  Rng rng(77);
  const int n = 4, d = 8, de = 6;
  SortLstm sort_lstm(d, 4, 100.0f, 12, &rng, de);
  Tensor nodes = Tensor::Constant(Matrix::Random(n, d, -1, 1, &rng));
  Matrix e1 = Matrix::Random(n * n, de, -1, 1, &rng);
  Matrix e2 = e1;
  for (size_t i = 0; i < e2.size(); ++i) e2[i] += 0.5f;
  std::vector<int> route = {2, 0, 3, 1};
  auto t1 = sort_lstm.Forward(nodes, route, Tensor::Constant(e1));
  auto t2 = sort_lstm.Forward(nodes, route, Tensor::Constant(e2));
  float diff = 0;
  for (int i = 0; i < n; ++i) diff += std::fabs(t1[i].item() - t2[i].item());
  EXPECT_GT(diff, 1e-5f);
}

TEST(SortLstmTest, UndefinedEdgesFeedZeros) {
  Rng rng(78);
  const int n = 3, d = 8, de = 6;
  SortLstm sort_lstm(d, 4, 100.0f, 12, &rng, de);
  Tensor nodes = Tensor::Constant(Matrix::Random(n, d, -1, 1, &rng));
  std::vector<int> route = {1, 2, 0};
  auto from_undefined = sort_lstm.Forward(nodes, route, Tensor());
  auto from_zeros =
      sort_lstm.Forward(nodes, route, Tensor::Constant(Matrix(n * n, de)));
  for (int i = 0; i < n; ++i) {
    EXPECT_FLOAT_EQ(from_undefined[i].item(), from_zeros[i].item());
  }
}

TEST(UncertaintyLossTest, InitialSigmasAreOne) {
  UncertaintyLoss loss;
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(loss.Sigma(i), 1.0f);
}

TEST(UncertaintyLossTest, CombineMatchesFormulaAtInit) {
  UncertaintyLoss u;
  Tensor l1 = Tensor::Scalar(2.0f);
  Tensor l2 = Tensor::Scalar(4.0f);
  Tensor l3 = Tensor::Scalar(1.0f);
  Tensor l4 = Tensor::Scalar(3.0f);
  // At s=0: 0.5*2 + 0.5*4 + 1 + 3 + 0 = 7.
  EXPECT_NEAR(u.Combine(l1, l2, l3, l4).item(), 7.0f, 1e-5f);
}

TEST(UncertaintyLossTest, SkipsUndefinedTasks) {
  UncertaintyLoss u;
  Tensor undefined;
  Tensor l2 = Tensor::Scalar(4.0f);
  Tensor l4 = Tensor::Scalar(3.0f);
  EXPECT_NEAR(u.Combine(undefined, l2, undefined, l4).item(), 5.0f, 1e-5f);
}

TEST(UncertaintyLossTest, SigmaGrowsForNoisyTask) {
  // With one large constant loss and one small, gradient descent on the
  // combined objective should assign the large task a larger sigma.
  UncertaintyLoss u;
  nn::Adam opt(u.Parameters(), 0.05f);
  for (int it = 0; it < 200; ++it) {
    opt.ZeroGrad();
    Tensor big = Tensor::Scalar(10.0f);
    Tensor small = Tensor::Scalar(0.1f);
    u.Combine(big, small, big, small).Backward();
    opt.Step();
  }
  EXPECT_GT(u.Sigma(0), u.Sigma(1));
  EXPECT_GT(u.Sigma(2), u.Sigma(3));
}

TEST(FixedWeightCombineTest, UsesManualWeights) {
  Tensor route = Tensor::Scalar(1.0f);
  Tensor time = Tensor::Scalar(1.0f);
  Tensor undefined;
  EXPECT_NEAR(
      FixedWeightCombine(undefined, route, undefined, time).item(),
      101.0f, 1e-4f);
}

TEST(LevelEncoderTest, GraphAndBiLstmVariantsProduceShapes) {
  synth::DataConfig dc;
  dc.seed = 21;
  dc.world.num_aois = 50;
  dc.couriers.num_couriers = 4;
  dc.num_days = 4;
  synth::DatasetSplits splits = synth::BuildDataset(dc);
  ASSERT_GT(splits.train.size(), 0);
  const synth::Sample& s = splits.train.samples.front();
  graph::LevelGraph level = graph::BuildLocationGraph(s, {});

  for (bool use_graph : {true, false}) {
    ModelConfig c = TinyConfig();
    c.use_graph_encoder = use_graph;
    Rng rng(22);
    LevelEncoder encoder(c, graph::kLocationContinuousDim, &rng);
    Tensor global = Tensor::Constant(
        Matrix::Random(1, c.courier_dim, -1, 1, &rng));
    EncodedLevel enc = encoder.Encode(level, global);
    EXPECT_EQ(enc.nodes.rows(), s.num_locations());
    EXPECT_EQ(enc.nodes.cols(), c.hidden_dim);
    if (use_graph) {
      ASSERT_TRUE(enc.edges.defined());
      EXPECT_EQ(enc.edges.rows(),
                s.num_locations() * s.num_locations());
      EXPECT_EQ(enc.edges.cols(), c.hidden_dim);
    } else {
      EXPECT_FALSE(enc.edges.defined());
    }
  }
}

}  // namespace
}  // namespace m2g::core
