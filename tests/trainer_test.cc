#include <gtest/gtest.h>

#include "core/trainer.h"

namespace m2g::core {
namespace {

synth::DatasetSplits* Splits() {
  static auto* splits = [] {
    synth::DataConfig dc;
    dc.seed = 1212;
    dc.world.num_aois = 60;
    dc.couriers.num_couriers = 5;
    dc.num_days = 5;
    return new synth::DatasetSplits(synth::BuildDataset(dc));
  }();
  return splits;
}

ModelConfig TinyConfig() {
  ModelConfig c;
  c.hidden_dim = 16;
  c.num_heads = 2;
  c.num_layers = 1;
  c.aoi_id_embed_dim = 4;
  c.aoi_type_embed_dim = 2;
  c.lstm_hidden_dim = 16;
  c.courier_dim = 8;
  c.pos_enc_dim = 4;
  return c;
}

TEST(TrainerTest, HistoryLengthBoundedByEpochs) {
  M2g4Rtp model(TinyConfig());
  TrainConfig tc;
  tc.epochs = 3;
  tc.early_stop_patience = 0;
  tc.max_samples_per_epoch = 30;
  Trainer trainer(&model, tc);
  auto history = trainer.Fit(Splits()->train, Splits()->val);
  EXPECT_EQ(history.size(), 3u);
  for (size_t e = 0; e < history.size(); ++e) {
    EXPECT_EQ(history[e].epoch, static_cast<int>(e));
    EXPECT_GT(history[e].train_loss, 0.0f);
    EXPECT_GT(history[e].val_loss, 0.0f);
  }
}

TEST(TrainerTest, EarlyStoppingCanEndBeforeEpochLimit) {
  // A huge learning rate makes validation loss blow up immediately, so
  // patience must kick in well before the epoch limit.
  M2g4Rtp model(TinyConfig());
  TrainConfig tc;
  tc.epochs = 30;
  tc.learning_rate = 0.5f;
  tc.early_stop_patience = 2;
  tc.max_samples_per_epoch = 30;
  Trainer trainer(&model, tc);
  auto history = trainer.Fit(Splits()->train, Splits()->val);
  EXPECT_LT(history.size(), 30u);
}

TEST(TrainerTest, RestoresBestValidationParameters) {
  // With a diverging learning rate, the final weights are garbage but
  // Fit must restore the best-validation snapshot, so the model's final
  // val loss equals the minimum seen in history.
  M2g4Rtp model(TinyConfig());
  TrainConfig tc;
  tc.epochs = 5;
  tc.learning_rate = 0.3f;
  tc.early_stop_patience = 0;
  tc.max_samples_per_epoch = 40;
  Trainer trainer(&model, tc);
  auto history = trainer.Fit(Splits()->train, Splits()->val);
  float best = history.front().val_loss;
  for (const EpochStats& e : history) best = std::min(best, e.val_loss);
  // Guidance sampling probability affects ComputeLoss; pin it to the
  // final-epoch value the trainer left behind for a fair comparison.
  const float final_val = trainer.Evaluate(Splits()->val);
  EXPECT_NEAR(final_val, best, 0.35f * best + 0.05f);
}

TEST(TrainerTest, MeanBreakdownTracksAllFourTasks) {
  M2g4Rtp model(TinyConfig());
  TrainConfig tc;
  tc.epochs = 1;
  tc.max_samples_per_epoch = 20;
  Trainer trainer(&model, tc);
  auto history = trainer.Fit(Splits()->train, Splits()->val);
  ASSERT_EQ(history.size(), 1u);
  const LossBreakdown& bd = history.front().mean_breakdown;
  EXPECT_GT(bd.aoi_route, 0.0f);
  EXPECT_GT(bd.location_route, 0.0f);
  EXPECT_GT(bd.aoi_time, 0.0f);
  EXPECT_GT(bd.location_time, 0.0f);
}

TEST(TrainerTest, GuidanceSamplingAnnealedToOne) {
  M2g4Rtp model(TinyConfig());
  TrainConfig tc;
  tc.epochs = 4;
  tc.early_stop_patience = 0;
  tc.max_samples_per_epoch = 10;
  Trainer trainer(&model, tc);
  trainer.Fit(Splits()->train, Splits()->val);
  EXPECT_FLOAT_EQ(model.guidance_sampling_prob(), 1.0f);
}

TEST(TrainerTest, EvaluateEmptyDatasetIsZero) {
  M2g4Rtp model(TinyConfig());
  Trainer trainer(&model, TrainConfig{});
  synth::Dataset empty;
  EXPECT_FLOAT_EQ(trainer.Evaluate(empty), 0.0f);
}

}  // namespace
}  // namespace m2g::core
