#include <gtest/gtest.h>

#include <cmath>

#include <numeric>

#include "common/rng.h"
#include "metrics/report.h"
#include "metrics/significance.h"

namespace m2g::metrics {
namespace {

TEST(HitRateTest, PerfectAndDisjointPrefixes) {
  std::vector<int> label = {0, 1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(HitRate(label, label, 3), 1.0);
  std::vector<int> reversed = {4, 3, 2, 1, 0};
  // top-3 of reversed = {4,3,2}; top-3 of label = {0,1,2}; overlap = {2}.
  EXPECT_DOUBLE_EQ(HitRate(reversed, label, 3), 1.0 / 3.0);
}

TEST(HitRateTest, OrderWithinPrefixIrrelevant) {
  std::vector<int> label = {0, 1, 2, 3};
  std::vector<int> shuffled_prefix = {2, 0, 1, 3};
  EXPECT_DOUBLE_EQ(HitRate(shuffled_prefix, label, 3), 1.0);
}

TEST(HitRateTest, KClampedToLength) {
  std::vector<int> label = {1, 0};
  EXPECT_DOUBLE_EQ(HitRate(label, label, 5), 1.0);
}

TEST(KrcTest, PerfectReverseAndBounds) {
  std::vector<int> label = {0, 1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(KendallRankCorrelation(label, label), 1.0);
  std::vector<int> reversed(label.rbegin(), label.rend());
  EXPECT_DOUBLE_EQ(KendallRankCorrelation(reversed, label), -1.0);
}

TEST(KrcTest, SingleSwapValue) {
  std::vector<int> label = {0, 1, 2, 3};
  std::vector<int> swapped = {1, 0, 2, 3};
  // 6 pairs, 1 discordant => (5-1)/6.
  EXPECT_NEAR(KendallRankCorrelation(swapped, label), 4.0 / 6.0, 1e-12);
}

TEST(KrcTest, SymmetricInArguments) {
  Rng rng(3);
  std::vector<int> a(8), b(8);
  std::iota(a.begin(), a.end(), 0);
  std::iota(b.begin(), b.end(), 0);
  rng.Shuffle(&a);
  rng.Shuffle(&b);
  EXPECT_DOUBLE_EQ(KendallRankCorrelation(a, b),
                   KendallRankCorrelation(b, a));
}

TEST(LsdTest, ZeroForPerfectQuadraticForShift) {
  std::vector<int> label = {0, 1, 2, 3};
  EXPECT_DOUBLE_EQ(LocationSquareDeviation(label, label), 0.0);
  // Rotate by one: positions differ by 1 for all but wrap-around node.
  std::vector<int> rotated = {3, 0, 1, 2};
  // node 3: pred pos 0 vs true 3 -> 9; nodes 0,1,2 shift by 1 -> 1 each.
  EXPECT_DOUBLE_EQ(LocationSquareDeviation(rotated, label),
                   (9.0 + 1 + 1 + 1) / 4.0);
}

TEST(LsdTest, InvariantUnderRelabeling) {
  // LSD depends only on position deviations, not node ids.
  std::vector<int> label1 = {0, 1, 2};
  std::vector<int> pred1 = {1, 0, 2};
  std::vector<int> label2 = {2, 0, 1};
  std::vector<int> pred2 = {0, 2, 1};
  EXPECT_DOUBLE_EQ(LocationSquareDeviation(pred1, label1),
                   LocationSquareDeviation(pred2, label2));
}

TEST(IsPermutationTest, DetectsViolations) {
  EXPECT_TRUE(IsPermutation({2, 0, 1}, 3));
  EXPECT_FALSE(IsPermutation({0, 0, 1}, 3));
  EXPECT_FALSE(IsPermutation({0, 1}, 3));
  EXPECT_FALSE(IsPermutation({0, 1, 3}, 3));
}

TEST(TimeMetricsTest, HandComputedValues) {
  TimeMetricAccumulator acc(20.0);
  acc.Add(10, 0);    // err 10, within
  acc.Add(0, 30);    // err -30, outside
  acc.Add(5, 5);     // err 0, within
  EXPECT_EQ(acc.count(), 3);
  EXPECT_NEAR(acc.Mae(), (10 + 30 + 0) / 3.0, 1e-12);
  EXPECT_NEAR(acc.Rmse(), std::sqrt((100.0 + 900.0 + 0) / 3.0), 1e-12);
  EXPECT_NEAR(acc.AccAtTau(), 200.0 / 3.0, 1e-9);
}

TEST(TimeMetricsTest, RmseAtLeastMae) {
  Rng rng(11);
  TimeMetricAccumulator acc;
  for (int i = 0; i < 100; ++i) {
    acc.Add(rng.Uniform(0, 120), rng.Uniform(0, 120));
  }
  EXPECT_GE(acc.Rmse(), acc.Mae());
}

TEST(BucketedEvaluatorTest, RoutesBySampleSize) {
  BucketedEvaluator eval;
  std::vector<int> short_route = {0, 1, 2, 3, 4};
  std::vector<double> short_times = {1, 2, 3, 4, 5};
  eval.AddSample(short_route, short_route, short_times, short_times);
  std::vector<int> long_route(12);
  std::iota(long_route.begin(), long_route.end(), 0);
  std::vector<double> long_times(12, 7.0);
  eval.AddSample(long_route, long_route, long_times, long_times);

  EXPECT_EQ(eval.Get(Bucket::kShort).samples, 1);
  EXPECT_EQ(eval.Get(Bucket::kLong).samples, 1);
  EXPECT_EQ(eval.Get(Bucket::kAll).samples, 2);
  EXPECT_DOUBLE_EQ(eval.Get(Bucket::kAll).hr3, 100.0);
  EXPECT_DOUBLE_EQ(eval.Get(Bucket::kAll).krc, 1.0);
  EXPECT_DOUBLE_EQ(eval.Get(Bucket::kAll).lsd, 0.0);
  EXPECT_DOUBLE_EQ(eval.Get(Bucket::kAll).acc20, 100.0);
}

TEST(BucketedEvaluatorTest, TimeMetricsPooledOverLocations) {
  BucketedEvaluator eval;
  // Sample 1: 4 locations, all exact.
  std::vector<int> r1 = {0, 1, 2, 3};
  eval.AddSample(r1, r1, {0, 0, 0, 0}, {0, 0, 0, 0});
  // Sample 2: 4 locations, each off by 40.
  eval.AddSample(r1, r1, {40, 40, 40, 40}, {0, 0, 0, 0});
  // Pooled MAE = 20 (8 locations), not the per-sample mean of means
  // computed differently.
  EXPECT_NEAR(eval.Get(Bucket::kAll).mae, 20.0, 1e-12);
  EXPECT_NEAR(eval.Get(Bucket::kAll).acc20, 50.0, 1e-12);
}

TEST(PairedBootstrapTest, DetectsClearDifference) {
  Rng rng(31);
  std::vector<double> a(120), b(120);
  for (int i = 0; i < 120; ++i) {
    const double base = rng.Uniform(0, 1);
    a[i] = base + 0.3 + rng.Gaussian(0, 0.05);  // consistently better
    b[i] = base + rng.Gaussian(0, 0.05);
  }
  PairedComparison cmp = PairedBootstrap(a, b, 2000, 7);
  EXPECT_EQ(cmp.samples, 120);
  EXPECT_NEAR(cmp.mean_diff, 0.3, 0.03);
  EXPECT_LT(cmp.p_value, 0.01);
  EXPECT_GT(cmp.diff_ci_low, 0.0);  // CI excludes zero
}

TEST(PairedBootstrapTest, NoDifferenceHasHighPValue) {
  Rng rng(32);
  std::vector<double> a(120), b(120);
  for (int i = 0; i < 120; ++i) {
    const double base = rng.Uniform(0, 1);
    a[i] = base + rng.Gaussian(0, 0.2);
    b[i] = base + rng.Gaussian(0, 0.2);
  }
  PairedComparison cmp = PairedBootstrap(a, b, 2000, 8);
  EXPECT_GT(cmp.p_value, 0.05);
  EXPECT_LT(cmp.diff_ci_low, 0.0);
  EXPECT_GT(cmp.diff_ci_high, 0.0);  // CI straddles zero
}

TEST(PairedBootstrapTest, PairingRemovesSharedVariance) {
  // Same large per-sample variance, tiny consistent edge: an unpaired
  // look cannot see it, the paired bootstrap can.
  Rng rng(33);
  std::vector<double> a(200), b(200);
  for (int i = 0; i < 200; ++i) {
    const double base = rng.Uniform(-5, 5);  // huge shared variance
    a[i] = base + 0.05;
    b[i] = base;
  }
  PairedComparison cmp = PairedBootstrap(a, b, 2000, 9);
  EXPECT_LT(cmp.p_value, 0.01);
  EXPECT_NEAR(cmp.mean_diff, 0.05, 1e-9);
}

TEST(PairedBootstrapTest, DeterministicForFixedSeed) {
  std::vector<double> a = {1, 2, 3, 4, 5, 6};
  std::vector<double> b = {1.2, 1.8, 3.1, 4.2, 4.9, 5.6};
  PairedComparison c1 = PairedBootstrap(a, b, 500, 11);
  PairedComparison c2 = PairedBootstrap(a, b, 500, 11);
  EXPECT_EQ(c1.p_value, c2.p_value);
  EXPECT_EQ(c1.diff_ci_low, c2.diff_ci_low);
}

}  // namespace
}  // namespace m2g::metrics
