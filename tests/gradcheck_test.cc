// Property-based gradient checker: every differentiable op in
// tensor/ops.h is verified against central finite differences on random
// shapes and values, and the whole suite runs twice — once inside an
// ArenaGuard (pooled storage, buffers recycling between evaluations) and
// once with the pool disabled (plain heap storage). Identical results in
// both modes is the pool's correctness contract.
//
// Also pins the fused-op bitwise contracts: Affine / DualAffine and the
// transpose-free MatMulATB / MatMulABT kernels must reproduce the exact
// bits of the op compositions they replaced.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"
#include "tensor/pool.h"
#include "tensor/tensor.h"

namespace m2g {
namespace {

enum class StorageMode { kPooled, kPlain };

class GradCheckTest : public ::testing::TestWithParam<StorageMode> {
 protected:
  void SetUp() override {
    if (GetParam() == StorageMode::kPooled) {
      TensorPool::set_enabled(true);
      arena_.emplace();
    } else {
      TensorPool::set_enabled(false);
    }
  }
  void TearDown() override {
    arena_.reset();
    TensorPool::set_enabled(true);
    TensorPool::ReleaseRetained();
  }

  /// Central finite differences on every element of every input, checked
  /// against the analytic gradients from one Backward() pass.
  void Check(const std::vector<Tensor>& inputs,
             const std::function<Tensor(const std::vector<Tensor>&)>& f) {
    Tensor loss = f(inputs);
    ASSERT_EQ(loss.rows(), 1);
    ASSERT_EQ(loss.cols(), 1);
    for (const Tensor& t : inputs) t.ZeroGrad();
    loss.Backward();
    std::vector<Matrix> analytic;
    for (const Tensor& t : inputs) analytic.push_back(t.grad());

    constexpr float kEps = 1e-2f;
    constexpr float kTol = 2e-2f;
    for (size_t which = 0; which < inputs.size(); ++which) {
      Tensor handle = inputs[which];  // shares the node
      Matrix& v = handle.mutable_value();
      for (size_t i = 0; i < v.size(); ++i) {
        const float orig = v[i];
        v[i] = orig + kEps;
        const float up = f(inputs).item();
        v[i] = orig - kEps;
        const float down = f(inputs).item();
        v[i] = orig;
        const float fd = (up - down) / (2.0f * kEps);
        const float an =
            analytic[which].empty() ? 0.0f : analytic[which][i];
        const float scale =
            std::max({1.0f, std::fabs(fd), std::fabs(an)});
        EXPECT_NEAR(an, fd, kTol * scale)
            << "input " << which << " element " << i;
      }
    }
  }

  Matrix Rand(int r, int c) { return Matrix::Random(r, c, -1.0f, 1.0f, &rng_); }
  /// Random values bounded away from zero: for ops with a kink there
  /// (Relu, Abs, LeakyRelu) finite differences would straddle it.
  Matrix RandAwayFromZero(int r, int c, float margin = 0.1f) {
    Matrix m = Matrix::Uninit(r, c);
    for (size_t i = 0; i < m.size(); ++i) {
      const float mag =
          margin + static_cast<float>(rng_.Uniform(0.0, 1.0));
      m[i] = rng_.Bernoulli(0.5) ? mag : -mag;
    }
    return m;
  }
  Matrix RandPositive(int r, int c) {
    return Matrix::Random(r, c, 0.5f, 2.0f, &rng_);
  }
  Tensor P(Matrix m) { return Tensor::Parameter(std::move(m)); }
  /// Scalarizes an arbitrary output with a fixed random weighting so
  /// every output element influences the loss differently.
  std::function<Tensor(const Tensor&)> Scalarizer(int rows, int cols) {
    Matrix w = Rand(rows, cols);
    return [w](const Tensor& y) {
      return Sum(Mul(y, Tensor::Constant(w)));
    };
  }
  int Dim() { return rng_.UniformInt(1, 5); }

  Rng rng_{20260806};
  std::optional<ArenaGuard> arena_;
};

INSTANTIATE_TEST_SUITE_P(
    Storage, GradCheckTest,
    ::testing::Values(StorageMode::kPooled, StorageMode::kPlain),
    [](const ::testing::TestParamInfo<StorageMode>& info) {
      return info.param == StorageMode::kPooled ? "Pooled" : "Plain";
    });

constexpr int kTrials = 3;

TEST_P(GradCheckTest, MatMul) {
  for (int t = 0; t < kTrials; ++t) {
    const int n = Dim(), k = Dim(), m = Dim();
    auto s = Scalarizer(n, m);
    Check({P(Rand(n, k)), P(Rand(k, m))}, [s](const auto& in) {
      return s(MatMul(in[0], in[1]));
    });
  }
}

TEST_P(GradCheckTest, MatMulGradDisabledSide) {
  // Satellite: a grad-disabled parent gets no gradient work at all, and
  // the enabled side still checks out.
  const int n = Dim(), k = Dim(), m = Dim();
  Tensor frozen = Tensor::Constant(Rand(n, k));
  auto s = Scalarizer(n, m);
  Check({P(Rand(k, m))}, [s, frozen](const auto& in) {
    return s(MatMul(frozen, in[0]));
  });
}

TEST_P(GradCheckTest, AffineNoBias) {
  for (int t = 0; t < kTrials; ++t) {
    const int n = Dim(), k = Dim(), m = Dim();
    auto s = Scalarizer(n, m);
    Check({P(Rand(n, k)), P(Rand(k, m))}, [s](const auto& in) {
      return s(Affine(in[0], in[1], Tensor()));
    });
  }
}

TEST_P(GradCheckTest, AffineWithBias) {
  for (int t = 0; t < kTrials; ++t) {
    const int n = Dim(), k = Dim(), m = Dim();
    auto s = Scalarizer(n, m);
    Check({P(Rand(n, k)), P(Rand(k, m)), P(Rand(1, m))},
          [s](const auto& in) {
            return s(Affine(in[0], in[1], in[2]));
          });
  }
}

TEST_P(GradCheckTest, AffineRelu) {
  for (int t = 0; t < kTrials; ++t) {
    const int n = Dim(), k = Dim(), m = Dim();
    auto s = Scalarizer(n, m);
    // Keep every pre-activation away from the Relu kink: |x.w| is
    // bounded by 2.25*k (entries in +-[0.5,1.5]), so a bias of magnitude
    // 2.25*k + 1 pins each pre-activation's sign with margin >= 1,
    // far beyond the +-1e-2 finite-difference nudges.
    Matrix x = RandAwayFromZero(n, k, 0.5f);
    Matrix w = RandAwayFromZero(k, m, 0.5f);
    Matrix b = Matrix::Uninit(1, m);
    const float bias_mag = 2.25f * static_cast<float>(k) + 1.0f;
    for (size_t i = 0; i < b.size(); ++i) {
      b[i] = rng_.Bernoulli(0.5) ? bias_mag : -bias_mag;
    }
    Check({P(std::move(x)), P(std::move(w)), P(std::move(b))},
          [s](const auto& in) {
            return s(Affine(in[0], in[1], in[2], Activation::kRelu));
          });
  }
}

TEST_P(GradCheckTest, DualAffine) {
  for (int t = 0; t < kTrials; ++t) {
    const int n = Dim(), dx = Dim(), dh = Dim(), m = Dim();
    auto s = Scalarizer(n, m);
    Check({P(Rand(n, dx)), P(Rand(dx, m)), P(Rand(n, dh)),
           P(Rand(dh, m)), P(Rand(1, m))},
          [s](const auto& in) {
            return s(DualAffine(in[0], in[1], in[2], in[3], in[4]));
          });
  }
}

TEST_P(GradCheckTest, Add) {
  const int n = Dim(), d = Dim();
  auto s = Scalarizer(n, d);
  Check({P(Rand(n, d)), P(Rand(n, d))}, [s](const auto& in) {
    return s(Add(in[0], in[1]));
  });
}

TEST_P(GradCheckTest, AddRowBroadcast) {
  const int n = Dim(), d = Dim();
  auto s = Scalarizer(n, d);
  Check({P(Rand(n, d)), P(Rand(1, d))}, [s](const auto& in) {
    return s(AddRowBroadcast(in[0], in[1]));
  });
}

TEST_P(GradCheckTest, Sub) {
  const int n = Dim(), d = Dim();
  auto s = Scalarizer(n, d);
  Check({P(Rand(n, d)), P(Rand(n, d))}, [s](const auto& in) {
    return s(Sub(in[0], in[1]));
  });
}

TEST_P(GradCheckTest, Mul) {
  const int n = Dim(), d = Dim();
  auto s = Scalarizer(n, d);
  Check({P(Rand(n, d)), P(Rand(n, d))}, [s](const auto& in) {
    return s(Mul(in[0], in[1]));
  });
}

TEST_P(GradCheckTest, ScaleAddScalarNeg) {
  const int n = Dim(), d = Dim();
  auto s = Scalarizer(n, d);
  Check({P(Rand(n, d))}, [s](const auto& in) {
    return s(Neg(AddScalar(Scale(in[0], 1.7f), -0.3f)));
  });
}

TEST_P(GradCheckTest, AddScalarTensor) {
  const int n = Dim(), d = Dim();
  auto s = Scalarizer(n, d);
  Check({P(Rand(n, d)), P(Rand(1, 1))}, [s](const auto& in) {
    return s(AddScalarTensor(in[0], in[1]));
  });
}

TEST_P(GradCheckTest, BroadcastRows) {
  const int n = Dim() + 1, d = Dim();
  auto s = Scalarizer(n, d);
  Check({P(Rand(1, d))}, [s, n](const auto& in) {
    return s(BroadcastRows(in[0], n));
  });
}

TEST_P(GradCheckTest, Exp) {
  const int n = Dim(), d = Dim();
  auto s = Scalarizer(n, d);
  Check({P(Rand(n, d))},
        [s](const auto& in) { return s(Exp(in[0])); });
}

TEST_P(GradCheckTest, Log) {
  const int n = Dim(), d = Dim();
  auto s = Scalarizer(n, d);
  Check({P(RandPositive(n, d))},
        [s](const auto& in) { return s(Log(in[0])); });
}

TEST_P(GradCheckTest, Abs) {
  const int n = Dim(), d = Dim();
  auto s = Scalarizer(n, d);
  Check({P(RandAwayFromZero(n, d))},
        [s](const auto& in) { return s(Abs(in[0])); });
}

TEST_P(GradCheckTest, Sigmoid) {
  const int n = Dim(), d = Dim();
  auto s = Scalarizer(n, d);
  Check({P(Rand(n, d))},
        [s](const auto& in) { return s(Sigmoid(in[0])); });
}

TEST_P(GradCheckTest, Tanh) {
  const int n = Dim(), d = Dim();
  auto s = Scalarizer(n, d);
  Check({P(Rand(n, d))},
        [s](const auto& in) { return s(Tanh(in[0])); });
}

TEST_P(GradCheckTest, Relu) {
  const int n = Dim(), d = Dim();
  auto s = Scalarizer(n, d);
  Check({P(RandAwayFromZero(n, d))},
        [s](const auto& in) { return s(Relu(in[0])); });
}

TEST_P(GradCheckTest, LeakyRelu) {
  const int n = Dim(), d = Dim();
  auto s = Scalarizer(n, d);
  Check({P(RandAwayFromZero(n, d))},
        [s](const auto& in) { return s(LeakyRelu(in[0], 0.2f)); });
}

TEST_P(GradCheckTest, ConcatCols) {
  const int n = Dim(), d1 = Dim(), d2 = Dim();
  auto s = Scalarizer(n, d1 + d2);
  Check({P(Rand(n, d1)), P(Rand(n, d2))}, [s](const auto& in) {
    return s(ConcatCols(in[0], in[1]));
  });
}

TEST_P(GradCheckTest, ConcatRows) {
  const int n1 = Dim(), n2 = Dim(), d = Dim();
  auto s = Scalarizer(n1 + n2, d);
  Check({P(Rand(n1, d)), P(Rand(n2, d))}, [s](const auto& in) {
    return s(ConcatRows({in[0], in[1]}));
  });
}

TEST_P(GradCheckTest, SliceColsRows) {
  const int n = Dim() + 2, d = Dim() + 2;
  auto sc = Scalarizer(n, d - 1);
  auto sr = Scalarizer(n - 1, d);
  Check({P(Rand(n, d))}, [sc, d](const auto& in) {
    return sc(SliceCols(in[0], 1, d - 1));
  });
  Check({P(Rand(n, d))}, [sr, n](const auto& in) {
    return sr(SliceRows(in[0], 0, n - 1));
  });
}

TEST_P(GradCheckTest, RowAndGatherRows) {
  const int n = Dim() + 2, d = Dim();
  auto s1 = Scalarizer(1, d);
  Check({P(Rand(n, d))}, [s1, n](const auto& in) {
    return s1(Row(in[0], n - 1));
  });
  // Duplicate indices: the grad scatter must accumulate, not overwrite.
  std::vector<int> idx = {0, n - 1, 0, 1};
  auto s2 = Scalarizer(static_cast<int>(idx.size()), d);
  Check({P(Rand(n, d))}, [s2, idx](const auto& in) {
    return s2(GatherRows(in[0], idx));
  });
}

TEST_P(GradCheckTest, SumMeanSumRows) {
  const int n = Dim(), d = Dim();
  Check({P(Rand(n, d))},
        [](const auto& in) { return Sum(in[0]); });
  Check({P(Rand(n, d))},
        [](const auto& in) { return Mean(in[0]); });
  auto s = Scalarizer(1, d);
  Check({P(Rand(n, d))},
        [s](const auto& in) { return s(SumRows(in[0])); });
}

TEST_P(GradCheckTest, Transpose) {
  const int n = Dim(), d = Dim();
  auto s = Scalarizer(d, n);
  Check({P(Rand(n, d))},
        [s](const auto& in) { return s(Transpose(in[0])); });
}

TEST_P(GradCheckTest, MaskedSoftmaxRow) {
  const int n = Dim() + 2;
  std::vector<bool> mask(n, true);
  mask[1] = false;
  auto s = Scalarizer(1, n);
  Check({P(Rand(1, n))}, [s, mask](const auto& in) {
    return s(MaskedSoftmaxRow(in[0], mask));
  });
}

TEST_P(GradCheckTest, MaskedCrossEntropy) {
  const int n = Dim() + 2;
  std::vector<bool> mask(n, true);
  mask[n - 1] = false;
  Check({P(Rand(1, n))}, [mask](const auto& in) {
    return MaskedCrossEntropy(in[0], 0, mask);
  });
}

TEST_P(GradCheckTest, L1Loss) {
  Matrix pred(1, 1);
  pred[0] = 0.8f;  // away from the target: the kink is at equality
  Check({P(std::move(pred))},
        [](const auto& in) { return L1Loss(in[0], 0.2f); });
}

TEST_P(GradCheckTest, LayerNormRows) {
  const int n = Dim(), d = Dim() + 2;
  auto s = Scalarizer(n, d);
  Check({P(Rand(n, d)), P(RandPositive(1, d)), P(Rand(1, d))},
        [s](const auto& in) {
          return s(LayerNormRows(in[0], in[1], in[2]));
        });
}

// ---------------------------------------------------------------------------
// Bitwise contracts: the fused ops must reproduce the unfused
// compositions bit for bit, and pooled storage must not perturb a single
// bit relative to plain storage.
// ---------------------------------------------------------------------------

void ExpectBitEqual(const Matrix& a, const Matrix& b, const char* what) {
  ASSERT_TRUE(a.SameShape(b)) << what;
  ASSERT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(float)))
      << what << " differs bitwise";
}

TEST_P(GradCheckTest, AffineBitwiseMatchesUnfusedChain) {
  Rng rng(7);
  for (int t = 0; t < 5; ++t) {
    const int n = rng.UniformInt(1, 8), k = rng.UniformInt(1, 8),
              m = rng.UniformInt(1, 8);
    Matrix xv = Matrix::Random(n, k, -2.0f, 2.0f, &rng);
    Matrix wv = Matrix::Random(k, m, -2.0f, 2.0f, &rng);
    Matrix bv = Matrix::Random(1, m, -2.0f, 2.0f, &rng);

    Tensor x1 = Tensor::Parameter(xv), w1 = Tensor::Parameter(wv),
           b1 = Tensor::Parameter(bv);
    Tensor fused = Affine(x1, w1, b1, Activation::kRelu);
    Sum(fused).Backward();

    Tensor x2 = Tensor::Parameter(xv), w2 = Tensor::Parameter(wv),
           b2 = Tensor::Parameter(bv);
    Tensor unfused = Relu(AddRowBroadcast(MatMul(x2, w2), b2));
    Sum(unfused).Backward();

    ExpectBitEqual(fused.value(), unfused.value(), "Affine forward");
    ExpectBitEqual(x1.grad(), x2.grad(), "Affine dX");
    ExpectBitEqual(w1.grad(), w2.grad(), "Affine dW");
    ExpectBitEqual(b1.grad(), b2.grad(), "Affine dB");
  }
}

TEST_P(GradCheckTest, DualAffineBitwiseMatchesUnfusedChain) {
  Rng rng(13);
  for (int t = 0; t < 5; ++t) {
    const int n = rng.UniformInt(1, 6), dx = rng.UniformInt(1, 6),
              dh = rng.UniformInt(1, 6), m = rng.UniformInt(1, 6);
    Matrix xv = Matrix::Random(n, dx, -2.0f, 2.0f, &rng);
    Matrix wxv = Matrix::Random(dx, m, -2.0f, 2.0f, &rng);
    Matrix hv = Matrix::Random(n, dh, -2.0f, 2.0f, &rng);
    Matrix whv = Matrix::Random(dh, m, -2.0f, 2.0f, &rng);
    Matrix bv = Matrix::Random(1, m, -2.0f, 2.0f, &rng);

    Tensor x1 = Tensor::Parameter(xv), wx1 = Tensor::Parameter(wxv),
           h1 = Tensor::Parameter(hv), wh1 = Tensor::Parameter(whv),
           b1 = Tensor::Parameter(bv);
    Tensor fused = DualAffine(x1, wx1, h1, wh1, b1);
    Sum(fused).Backward();

    Tensor x2 = Tensor::Parameter(xv), wx2 = Tensor::Parameter(wxv),
           h2 = Tensor::Parameter(hv), wh2 = Tensor::Parameter(whv),
           b2 = Tensor::Parameter(bv);
    Tensor unfused =
        AddRowBroadcast(Add(MatMul(x2, wx2), MatMul(h2, wh2)), b2);
    Sum(unfused).Backward();

    ExpectBitEqual(fused.value(), unfused.value(), "DualAffine forward");
    ExpectBitEqual(x1.grad(), x2.grad(), "DualAffine dX");
    ExpectBitEqual(wx1.grad(), wx2.grad(), "DualAffine dWx");
    ExpectBitEqual(h1.grad(), h2.grad(), "DualAffine dH");
    ExpectBitEqual(wh1.grad(), wh2.grad(), "DualAffine dWh");
    ExpectBitEqual(b1.grad(), b2.grad(), "DualAffine dB");
  }
}

TEST_P(GradCheckTest, TransposeFreeKernelsBitwiseMatchTransposed) {
  Rng rng(29);
  for (int t = 0; t < 5; ++t) {
    const int n = rng.UniformInt(1, 9), k = rng.UniformInt(1, 9),
              m = rng.UniformInt(1, 9);
    Matrix a = Matrix::Random(k, n, -2.0f, 2.0f, &rng);
    Matrix b = Matrix::Random(k, m, -2.0f, 2.0f, &rng);
    ExpectBitEqual(MatMulATB(a, b), MatMulRaw(TransposeRaw(a), b),
                   "MatMulATB");
    Matrix c = Matrix::Random(n, k, -2.0f, 2.0f, &rng);
    Matrix d = Matrix::Random(m, k, -2.0f, 2.0f, &rng);
    ExpectBitEqual(MatMulABT(c, d), MatMulRaw(c, TransposeRaw(d)),
                   "MatMulABT");
  }
}

// The encode fast path's raw kernels (matrix.h) vs the op compositions
// GatELayer::Forward builds: bit-for-bit, including the m == 1 attention
// projections (which must take AccumulateRowMatMul's branchy path exactly
// like the op-layer MatMul does) and softmax rows addressed through a
// `base` offset into the full adjacency mask.
TEST_P(GradCheckTest, EncodeFastPathRawKernelsBitwiseMatchOps) {
  Rng rng(31);
  for (int t = 0; t < 5; ++t) {
    const int n = rng.UniformInt(1, 9), k = rng.UniformInt(1, 9),
              m = (t % 2 == 0) ? 1 : rng.UniformInt(1, 9);
    Matrix a = Matrix::Random(n, k, -2.0f, 2.0f, &rng);
    Matrix b = Matrix::Random(k, m, -2.0f, 2.0f, &rng);
    Matrix out = Matrix::Uninit(n, m);
    MatMulInto(a.data(), n, k, b.data(), m, out.data());
    ExpectBitEqual(out, MatMulRaw(a, b), "MatMulInto");

    // Eq. 20: c_ij = LeakyReLU(s_dst[j] + s_e[ij] + s_src[i]), in the
    // exact association order of Add -> AddScalarTensor -> LeakyRelu.
    Matrix s_dst = Matrix::Random(1, n, -2.0f, 2.0f, &rng);
    Matrix s_e = Matrix::Random(1, n, -2.0f, 2.0f, &rng);
    Matrix s_src = Matrix::Random(1, 1, -2.0f, 2.0f, &rng);
    const float slope = 0.2f;
    Tensor reference = LeakyRelu(
        AddScalarTensor(Add(Tensor::Constant(s_dst), Tensor::Constant(s_e)),
                        Tensor::Constant(s_src)),
        slope);
    Matrix logits = Matrix::Uninit(1, n);
    GatLogitsRow(s_dst.data(), s_e.data(), s_src[0], slope, n,
                 logits.data());
    ExpectBitEqual(logits, reference.value(), "GatLogitsRow");

    // Masked softmax over row `row` of a (rows, n) mask — the raw kernel
    // reads through `base` where the op takes a pre-sliced mask.
    const int rows = 3;
    std::vector<bool> mask(static_cast<size_t>(rows) * n, false);
    const int row = rng.UniformInt(0, rows - 1);
    const size_t base = static_cast<size_t>(row) * n;
    mask[base + rng.UniformInt(0, n - 1)] = true;  // >= 1 unmasked
    for (int j = 0; j < n; ++j) {
      if (rng.Bernoulli(0.5)) mask[base + j] = true;
    }
    std::vector<bool> row_mask(mask.begin() + base, mask.begin() + base + n);
    Tensor alpha_ref =
        MaskedSoftmaxRow(Tensor::Constant(logits), row_mask);
    Matrix alpha = Matrix::Uninit(1, n);
    MaskedSoftmaxRowRaw(logits.data(), mask, base, n, alpha.data());
    ExpectBitEqual(alpha, alpha_ref.value(), "MaskedSoftmaxRowRaw");
  }
}

// Pooled vs plain storage: same seed, same little training computation,
// byte-identical parameters afterwards. (The system-level version of
// this — full model training — lives in the integration suite; this one
// is a fast, focused canary.)
TEST(PoolBitwiseTest, PooledAndPlainStorageAreBitIdentical) {
  auto run = [](bool pooled) {
    TensorPool::set_enabled(pooled);
    Rng rng(99);
    Tensor w = Tensor::Parameter(Matrix::Random(4, 3, -1, 1, &rng));
    Tensor b = Tensor::Parameter(Matrix::Random(1, 3, -1, 1, &rng));
    for (int step = 0; step < 5; ++step) {
      ArenaGuard arena;  // inert when the pool is disabled
      Tensor x = Tensor::Constant(Matrix::Random(6, 4, -1, 1, &rng));
      Tensor loss = Mean(Abs(Affine(x, w, b, Activation::kRelu)));
      w.ZeroGrad();
      b.ZeroGrad();
      loss.Backward();
      w.mutable_value().AddScaledInPlace(w.grad(), -0.1f);
      b.mutable_value().AddScaledInPlace(b.grad(), -0.1f);
    }
    TensorPool::set_enabled(true);
    std::vector<Matrix> out = {w.value(), b.value()};
    return out;
  };
  std::vector<Matrix> pooled = run(true);
  std::vector<Matrix> plain = run(false);
  ASSERT_EQ(pooled.size(), plain.size());
  for (size_t i = 0; i < pooled.size(); ++i) {
    ExpectBitEqual(pooled[i], plain[i], "trained parameter");
  }
  TensorPool::ReleaseRetained();
}

}  // namespace
}  // namespace m2g
