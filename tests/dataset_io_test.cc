#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>

#include "synth/dataset_io.h"

namespace m2g::synth {
namespace {

DatasetSplits SmallSplits() {
  DataConfig config;
  config.seed = 808;
  config.world.num_aois = 60;
  config.couriers.num_couriers = 5;
  config.num_days = 5;
  return BuildDataset(config);
}

void ExpectSamplesEqual(const Sample& a, const Sample& b) {
  EXPECT_EQ(a.courier_id, b.courier_id);
  EXPECT_EQ(a.day, b.day);
  EXPECT_EQ(a.weekday, b.weekday);
  EXPECT_EQ(a.weather, b.weather);
  EXPECT_DOUBLE_EQ(a.query_time_min, b.query_time_min);
  EXPECT_DOUBLE_EQ(a.courier_pos.lat, b.courier_pos.lat);
  EXPECT_DOUBLE_EQ(a.courier_pos.lng, b.courier_pos.lng);
  EXPECT_DOUBLE_EQ(a.courier.avg_speed_mps, b.courier.avg_speed_mps);
  EXPECT_EQ(a.courier.served_aois, b.courier.served_aois);
  ASSERT_EQ(a.locations.size(), b.locations.size());
  for (size_t i = 0; i < a.locations.size(); ++i) {
    EXPECT_EQ(a.locations[i].order_id, b.locations[i].order_id);
    EXPECT_DOUBLE_EQ(a.locations[i].pos.lat, b.locations[i].pos.lat);
    EXPECT_DOUBLE_EQ(a.locations[i].deadline_min,
                     b.locations[i].deadline_min);
    EXPECT_DOUBLE_EQ(a.locations[i].dist_from_courier_m,
                     b.locations[i].dist_from_courier_m);
  }
  EXPECT_EQ(a.aoi_node_ids, b.aoi_node_ids);
  EXPECT_EQ(a.loc_to_aoi, b.loc_to_aoi);
  EXPECT_EQ(a.route_label, b.route_label);
  EXPECT_EQ(a.time_label_min, b.time_label_min);
  EXPECT_EQ(a.aoi_route_label, b.aoi_route_label);
  EXPECT_EQ(a.aoi_time_label_min, b.aoi_time_label_min);
}

TEST(DatasetIoTest, DatasetRoundTripExact) {
  DatasetSplits splits = SmallSplits();
  const std::string path = ::testing::TempDir() + "/ds.bin";
  ASSERT_TRUE(SaveDataset(splits.train, path).ok());
  auto loaded = LoadDataset(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().size(), splits.train.size());
  for (int i = 0; i < splits.train.size(); ++i) {
    ExpectSamplesEqual(splits.train.samples[i], loaded.value().samples[i]);
  }
  std::remove(path.c_str());
}

TEST(DatasetIoTest, SplitsRoundTripExact) {
  DatasetSplits splits = SmallSplits();
  const std::string path = ::testing::TempDir() + "/splits.bin";
  ASSERT_TRUE(SaveSplits(splits, path).ok());
  auto loaded = LoadSplits(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().train.size(), splits.train.size());
  EXPECT_EQ(loaded.value().val.size(), splits.val.size());
  EXPECT_EQ(loaded.value().test.size(), splits.test.size());
  ExpectSamplesEqual(splits.test.samples.back(),
                     loaded.value().test.samples.back());
  std::remove(path.c_str());
}

TEST(DatasetIoTest, EmptyDatasetRoundTrips) {
  Dataset empty;
  const std::string path = ::testing::TempDir() + "/empty.bin";
  ASSERT_TRUE(SaveDataset(empty, path).ok());
  auto loaded = LoadDataset(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 0);
  std::remove(path.c_str());
}

TEST(DatasetIoTest, MissingFileIsNotFound) {
  auto loaded = LoadDataset("/nonexistent/ds.bin");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(DatasetIoTest, WrongMagicRejected) {
  const std::string path = ::testing::TempDir() + "/garbage.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a dataset file at all";
  }
  auto loaded = LoadDataset(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(DatasetIoTest, TruncatedFileRejectedNotCrash) {
  DatasetSplits splits = SmallSplits();
  const std::string path = ::testing::TempDir() + "/trunc.bin";
  ASSERT_TRUE(SaveDataset(splits.train, path).ok());
  // Truncate to 60% of the original size.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size * 6 / 10), 0);
  auto loaded = LoadDataset(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(DatasetIoTest, CsvExportHasHeaderAndAllRows) {
  DatasetSplits splits = SmallSplits();
  const std::string path = ::testing::TempDir() + "/locations.csv";
  ASSERT_TRUE(ExportLocationsCsv(splits.test, path).ok());
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("order_id"), std::string::npos);
  EXPECT_NE(line.find("arrival_gap_min"), std::string::npos);
  int rows = 0;
  while (std::getline(in, line)) ++rows;
  int expected = 0;
  for (const Sample& s : splits.test.samples) {
    expected += s.num_locations();
  }
  EXPECT_EQ(rows, expected);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace m2g::synth
