// Decode fast-path parity suite: the request-scoped key cache, the
// batched beam step and the fused masked-score kernel must reproduce the
// legacy per-step-recompute decoder bit for bit — under pooled AND plain
// storage, in grad mode AND under NoGradGuard, serial AND concurrent.
// Also pins the hoisted TeacherForcedLoss (value + every parameter
// gradient bitwise vs. the legacy step-loop) plus its gradcheck, the
// deterministic (logp, hyp, node) beam tie-break, and the zero
// steady-state pool-miss property of the decode loop.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <functional>
#include <thread>
#include <vector>

#include "core/route_decoder.h"
#include "tensor/grad_mode.h"
#include "tensor/ops.h"
#include "tensor/pool.h"

namespace m2g::core {
namespace {

/// Forces the pool globally on or off for a scope, restoring the prior
/// setting on exit — the suite runs every parity check both ways.
class PoolMode {
 public:
  explicit PoolMode(bool enabled) : saved_(TensorPool::enabled()) {
    TensorPool::set_enabled(enabled);
  }
  ~PoolMode() { TensorPool::set_enabled(saved_); }

 private:
  bool saved_;
};

void ExpectBitEqual(const Matrix& a, const Matrix& b, const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
      << what;
}

constexpr int kNodeDim = 48;
constexpr int kCourierDim = 24;
constexpr int kLstmHidden = 48;

struct Fixture {
  explicit Fixture(int n, uint64_t seed = 77) : rng(seed) {
    decoder = std::make_unique<AttentionRouteDecoder>(
        kNodeDim, kCourierDim, kLstmHidden, &rng);
    nodes = Tensor::Constant(Matrix::Random(n, kNodeDim, -1, 1, &rng));
    courier = Tensor::Constant(Matrix::Random(1, kCourierDim, -1, 1, &rng));
  }

  Rng rng;
  std::unique_ptr<AttentionRouteDecoder> decoder;
  Tensor nodes;
  Tensor courier;
};

TEST(DecodeParityTest, StepScoresMatchStepLogitsBitwise) {
  for (bool pooled : {true, false}) {
    PoolMode mode(pooled);
    Fixture f(13);
    // Arbitrary (non-initial) LSTM state: scores must match at any h.
    nn::LstmState state;
    state.h = Tensor::Constant(Matrix::Random(1, kLstmHidden, -1, 1, &f.rng));
    state.c = Tensor::Constant(Matrix(1, kLstmHidden));
    const Tensor reference = f.decoder->StepLogits(f.nodes, f.courier, state);
    AttentionRouteDecoder::KeyCache cache =
        f.decoder->BuildKeyCache(f.nodes, f.courier);
    const Matrix fast = f.decoder->StepScores(cache, state.h.value());
    ExpectBitEqual(fast, reference.value(),
                   pooled ? "pooled scores" : "plain scores");
  }
}

TEST(DecodeParityTest, GreedyRouteIdenticalToLegacy) {
  for (bool pooled : {true, false}) {
    PoolMode mode(pooled);
    for (int n : {1, 5, 17, 30}) {
      Fixture f(n, 100 + n);
      const std::vector<int> fast = f.decoder->DecodeGreedy(f.nodes, f.courier);
      const std::vector<int> in_grad_mode =
          f.decoder->DecodeGreedyLegacy(f.nodes, f.courier);
      NoGradGuard no_grad;
      const std::vector<int> in_no_grad =
          f.decoder->DecodeGreedyLegacy(f.nodes, f.courier);
      EXPECT_EQ(fast, in_grad_mode) << "n=" << n << " pooled=" << pooled;
      EXPECT_EQ(fast, in_no_grad) << "n=" << n << " pooled=" << pooled;
    }
  }
}

TEST(DecodeParityTest, BeamRouteIdenticalToLegacy) {
  for (bool pooled : {true, false}) {
    PoolMode mode(pooled);
    for (int n : {5, 17, 30}) {
      for (int width : {1, 5, 10}) {
        Fixture f(n, 200 + n);
        const std::vector<int> fast =
            f.decoder->DecodeBeam(f.nodes, f.courier, width);
        const std::vector<int> legacy =
            f.decoder->DecodeBeamLegacy(f.nodes, f.courier, width);
        EXPECT_EQ(fast, legacy)
            << "n=" << n << " width=" << width << " pooled=" << pooled;
      }
    }
  }
}

TEST(DecodeParityTest, BeamWidthOneIsGreedy) {
  Fixture f(12);
  EXPECT_EQ(f.decoder->DecodeBeam(f.nodes, f.courier, 1),
            f.decoder->DecodeGreedy(f.nodes, f.courier));
}

// With every parameter zeroed, all pointer scores tie at 0 in every step;
// the (logp desc, hyp asc, node asc) order must then keep hypotheses in
// first-expansion order, making beam decode the identity permutation.
// Before the explicit tie-break this depended on std::partial_sort's
// unspecified ordering of equal keys.
TEST(DecodeParityTest, AllZeroScoresBreakTiesByHypothesisThenNode) {
  Fixture f(9);
  for (const Tensor& p : f.decoder->Parameters()) {
    p.node()->value.SetZero();
  }
  std::vector<int> identity(9);
  for (int i = 0; i < 9; ++i) identity[i] = i;
  for (int width : {1, 3, 10}) {
    EXPECT_EQ(f.decoder->DecodeBeam(f.nodes, f.courier, width), identity)
        << "fast width=" << width;
    EXPECT_EQ(f.decoder->DecodeBeamLegacy(f.nodes, f.courier, width),
              identity)
        << "legacy width=" << width;
  }
}

TEST(DecodeParityTest, TeacherForcedLossAndGradsMatchLegacyBitwise) {
  for (bool pooled : {true, false}) {
    PoolMode mode(pooled);
    const int n = 11;
    Rng rng(303);
    AttentionRouteDecoder decoder(kNodeDim, kCourierDim, kLstmHidden, &rng);
    // Parameter nodes: the hoist must also leave d(loss)/d(nodes) — the
    // gradient that flows back into the encoder — bitwise-unchanged.
    Tensor nodes = Tensor::Parameter(Matrix::Random(n, kNodeDim, -1, 1, &rng));
    Tensor courier =
        Tensor::Constant(Matrix::Random(1, kCourierDim, -1, 1, &rng));
    std::vector<int> route(n);
    for (int i = 0; i < n; ++i) route[i] = (i * 7 + 3) % n;

    const auto run = [&](bool hoisted) {
      for (const Tensor& p : decoder.Parameters()) p.ZeroGrad();
      nodes.ZeroGrad();
      Tensor loss = hoisted
                        ? decoder.TeacherForcedLoss(nodes, courier, route)
                        : decoder.TeacherForcedLossLegacy(nodes, courier,
                                                          route);
      loss.Backward();
      std::vector<Matrix> grads;
      for (const Tensor& p : decoder.Parameters()) grads.push_back(p.grad());
      grads.push_back(nodes.grad());
      return std::make_pair(loss.value(), std::move(grads));
    };
    auto [legacy_loss, legacy_grads] = run(false);
    auto [fast_loss, fast_grads] = run(true);
    ExpectBitEqual(fast_loss, legacy_loss, "loss value");
    ASSERT_EQ(fast_grads.size(), legacy_grads.size());
    for (size_t i = 0; i < fast_grads.size(); ++i) {
      ExpectBitEqual(fast_grads[i], legacy_grads[i], "parameter grad");
    }
  }
}

// Central-difference gradcheck of the hoisted loss at small dims: the
// MatMulWithValue-based graph must be a correct gradient graph in its own
// right, not merely consistent with the legacy one.
TEST(DecodeParityTest, HoistedLossGradcheck) {
  const int node_dim = 6, courier_dim = 3, hidden = 5, n = 4;
  Rng rng(404);
  AttentionRouteDecoder decoder(node_dim, courier_dim, hidden, &rng);
  Tensor nodes = Tensor::Constant(Matrix::Random(n, node_dim, -1, 1, &rng));
  Tensor courier =
      Tensor::Constant(Matrix::Random(1, courier_dim, -1, 1, &rng));
  const std::vector<int> route = {2, 0, 3, 1};
  const auto loss_fn = [&] {
    return decoder.TeacherForcedLoss(nodes, courier, route);
  };

  auto params = decoder.NamedParameters();
  for (const auto& [name, p] : params) p.ZeroGrad();
  loss_fn().Backward();
  const float eps = 2e-2f, tol = 6e-2f;
  for (const auto& [name, p] : params) {
    Matrix& w = p.node()->value;
    const Matrix& g = p.grad();
    if (!g.SameShape(w)) continue;
    const size_t stride = std::max<size_t>(1, w.size() / 4);
    for (size_t i = 0; i < w.size(); i += stride) {
      const float orig = w[i];
      w[i] = orig + eps;
      const float up = loss_fn().item();
      w[i] = orig - eps;
      const float down = loss_fn().item();
      w[i] = orig;
      const float numeric = (up - down) / (2 * eps);
      const float scale =
          std::max({1.0f, std::fabs(numeric), std::fabs(g[i])});
      EXPECT_NEAR(g[i], numeric, tol * scale) << name << " index " << i;
    }
  }
}

TEST(DecodeParityTest, MatMulWithValueMatchesMatMulBitwise) {
  Rng rng(505);
  Tensor a = Tensor::Parameter(Matrix::Random(3, 4, -1, 1, &rng));
  Tensor b = Tensor::Parameter(Matrix::Random(4, 5, -1, 1, &rng));
  const Tensor reference = MatMul(a, b);
  const Tensor supplied = MatMulWithValue(a, b, MatMulRaw(a.value(), b.value()));
  ExpectBitEqual(supplied.value(), reference.value(), "forward");

  const auto grads_of = [&](const Tensor& out) {
    a.ZeroGrad();
    b.ZeroGrad();
    Sum(out).Backward();
    return std::make_pair(a.grad(), b.grad());
  };
  auto [ga_ref, gb_ref] = grads_of(reference);
  auto [ga_sup, gb_sup] = grads_of(supplied);
  ExpectBitEqual(ga_sup, ga_ref, "grad a");
  ExpectBitEqual(gb_sup, gb_ref, "grad b");
}

// After one warm-up request, decode must run entirely off the free lists:
// the non-owning row-view inputs and the batched step reuse fixed shapes,
// so a steady-state request makes zero pool misses.
TEST(DecodeParityTest, SteadyStateDecodeHasZeroPoolMisses) {
  PoolMode mode(true);
  TensorPool::ReleaseRetained();
  Fixture f(20);
  {
    ArenaGuard warmup;
    f.decoder->DecodeGreedy(f.nodes, f.courier);
    f.decoder->DecodeBeam(f.nodes, f.courier, 5);
  }
  ArenaGuard steady;
  f.decoder->DecodeGreedy(f.nodes, f.courier);
  f.decoder->DecodeBeam(f.nodes, f.courier, 5);
  const TensorPool::Stats stats = steady.ScopeStats();
  EXPECT_EQ(stats.pool_misses, 0u);
  EXPECT_GT(stats.pool_hits, 0u);
}

// Shared-decoder decode from several threads (each with its own arena)
// must be race-free and agree with the serial result — the TSan job runs
// this test.
TEST(DecodeParityTest, ConcurrentDecodeMatchesSerial) {
  Fixture f(15);
  const std::vector<int> expected_greedy =
      f.decoder->DecodeGreedy(f.nodes, f.courier);
  const std::vector<int> expected_beam =
      f.decoder->DecodeBeam(f.nodes, f.courier, 5);
  std::vector<std::thread> threads;
  std::vector<int> mismatches(4, 0);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int iter = 0; iter < 8; ++iter) {
        ArenaGuard request;
        if (f.decoder->DecodeGreedy(f.nodes, f.courier) != expected_greedy ||
            f.decoder->DecodeBeam(f.nodes, f.courier, 5) != expected_beam) {
          ++mismatches[t];
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 0; t < 4; ++t) EXPECT_EQ(mismatches[t], 0) << "thread " << t;
}

}  // namespace
}  // namespace m2g::core
