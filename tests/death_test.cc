// Contract tests: programmer errors must fail fast and loudly via
// M2G_CHECK, never corrupt memory or return garbage.

#include <gtest/gtest.h>

#include "core/model.h"
#include "metrics/route_metrics.h"
#include "tensor/ops.h"

namespace m2g {
namespace {

using DeathTest = ::testing::Test;

TEST(DeathTest, MatrixAtOutOfRangeAborts) {
  // At() bounds checks are M2G_DCHECKs: they guard debug builds only and
  // compile out of the element-access hot path under -DNDEBUG.
#ifdef NDEBUG
  GTEST_SKIP() << "At() bounds checks compile out in release builds";
#else
  Matrix m(2, 2);
  EXPECT_DEATH(m.At(2, 0), "CHECK failed");
  EXPECT_DEATH(m.At(0, -1), "CHECK failed");
#endif
}

TEST(DeathTest, NullTensorAccessorsAbort) {
  Tensor t;  // default-constructed: no node
  EXPECT_DEATH(t.rows(), "null");
  EXPECT_DEATH(t.cols(), "null");
  EXPECT_DEATH(t.value(), "null");
  EXPECT_DEATH(t.mutable_value(), "null");
  EXPECT_DEATH(t.grad(), "null");
  EXPECT_DEATH(t.requires_grad(), "null");
  EXPECT_DEATH(t.item(), "null");
}

TEST(DeathTest, MatMulShapeMismatchAborts) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_DEATH(MatMulRaw(a, b), "CHECK failed");
}

TEST(DeathTest, ElementwiseShapeMismatchAborts) {
  Tensor a = Tensor::Constant(Matrix(2, 3));
  Tensor b = Tensor::Constant(Matrix(3, 2));
  EXPECT_DEATH(Add(a, b), "CHECK failed");
  EXPECT_DEATH(Mul(a, b), "CHECK failed");
}

TEST(DeathTest, BackwardFromNonScalarAborts) {
  Tensor a = Tensor::Parameter(Matrix(2, 2));
  Tensor y = Scale(a, 2.0f);
  EXPECT_DEATH(y.Backward(), "scalar");
}

TEST(DeathTest, MaskedSoftmaxAllMaskedAborts) {
  Tensor logits = Tensor::Constant(Matrix(1, 3));
  std::vector<bool> none(3, false);
  EXPECT_DEATH(MaskedSoftmaxRow(logits, none), "masked");
}

TEST(DeathTest, CrossEntropyMaskedTargetAborts) {
  Tensor logits = Tensor::Constant(Matrix(1, 3));
  std::vector<bool> mask = {true, false, true};
  EXPECT_DEATH(MaskedCrossEntropy(logits, 1, mask), "masked");
}

TEST(DeathTest, ArgmaxAllMaskedAborts) {
  Matrix row(1, 2);
  EXPECT_DEATH(ArgmaxMaskedRow(row, {false, false}), "masked");
}

TEST(DeathTest, SliceOutOfRangeAborts) {
  Tensor a = Tensor::Constant(Matrix(2, 4));
  EXPECT_DEATH(SliceCols(a, 2, 3), "CHECK failed");
  EXPECT_DEATH(SliceRows(a, 1, 2), "CHECK failed");
}

TEST(DeathTest, InvalidModelConfigAborts) {
  core::ModelConfig bad;
  bad.hidden_dim = 30;
  bad.num_heads = 4;  // 30 % 4 != 0
  EXPECT_DEATH(core::M2g4Rtp model(bad), "divisible");
}

TEST(DeathTest, RngInvalidRangeAborts) {
  Rng rng(1);
  EXPECT_DEATH(rng.UniformInt(5, 3), "CHECK failed");
}

TEST(DeathTest, MetricsSizeMismatchAborts) {
  std::vector<int> a = {0, 1, 2};
  std::vector<int> b = {0, 1};
  EXPECT_DEATH(metrics::HitRate(a, b, 3), "CHECK failed");
  EXPECT_DEATH(metrics::KendallRankCorrelation(a, b), "CHECK failed");
}

TEST(DeathTest, MetricsRepeatedNodeAborts) {
  std::vector<int> dup = {0, 0, 1};
  std::vector<int> ok = {2, 1, 0};
  EXPECT_DEATH(metrics::KendallRankCorrelation(dup, ok), "repeats");
}

}  // namespace
}  // namespace m2g
