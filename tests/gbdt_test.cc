#include <gtest/gtest.h>

#include <cmath>

#include "baselines/gbdt/booster.h"

namespace m2g::baselines::gbdt {
namespace {

/// y = 3*x0 - 2*x1 + noise over uniform features.
void MakeLinearData(int n, Matrix* x, std::vector<float>* y,
                    uint64_t seed, float noise = 0.0f) {
  Rng rng(seed);
  *x = Matrix(n, 3);
  y->resize(n);
  for (int i = 0; i < n; ++i) {
    const float a = static_cast<float>(rng.Uniform(-1, 1));
    const float b = static_cast<float>(rng.Uniform(-1, 1));
    const float c = static_cast<float>(rng.Uniform(-1, 1));
    x->At(i, 0) = a;
    x->At(i, 1) = b;
    x->At(i, 2) = c;  // irrelevant feature
    (*y)[i] = 3 * a - 2 * b +
              static_cast<float>(rng.Gaussian(0, noise));
  }
}

TEST(RegressionTreeTest, FitsAStepFunction) {
  const int n = 400;
  Matrix x(n, 1);
  std::vector<float> y(n);
  Rng rng(1);
  std::vector<int> rows(n);
  for (int i = 0; i < n; ++i) {
    x.At(i, 0) = static_cast<float>(rng.Uniform(0, 1));
    y[i] = x.At(i, 0) < 0.5f ? -1.0f : 1.0f;
    rows[i] = i;
  }
  RegressionTree tree;
  TreeConfig config;
  config.max_depth = 2;
  config.min_samples_leaf = 5;
  tree.Fit(x, y, rows, config);
  float probe_low[1] = {0.2f};
  float probe_high[1] = {0.8f};
  EXPECT_NEAR(tree.Predict(probe_low), -1.0f, 0.1f);
  EXPECT_NEAR(tree.Predict(probe_high), 1.0f, 0.1f);
}

TEST(RegressionTreeTest, RespectsDepthLimit) {
  Matrix x;
  std::vector<float> y;
  MakeLinearData(500, &x, &y, 2);
  std::vector<int> rows(500);
  for (int i = 0; i < 500; ++i) rows[i] = i;
  TreeConfig config;
  config.max_depth = 3;
  RegressionTree tree;
  tree.Fit(x, y, rows, config);
  EXPECT_LE(tree.depth(), 3);
  EXPECT_GT(tree.num_nodes(), 1);  // it did split
}

TEST(RegressionTreeTest, ConstantTargetGivesSingleLeaf) {
  Matrix x(50, 2);
  std::vector<float> y(50, 4.25f);
  Rng rng(3);
  std::vector<int> rows(50);
  for (int i = 0; i < 50; ++i) {
    x.At(i, 0) = static_cast<float>(rng.Uniform(0, 1));
    x.At(i, 1) = static_cast<float>(rng.Uniform(0, 1));
    rows[i] = i;
  }
  RegressionTree tree;
  tree.Fit(x, y, rows, TreeConfig{});
  float probe[2] = {0.5f, 0.5f};
  EXPECT_FLOAT_EQ(tree.Predict(probe), 4.25f);
}

TEST(GbdtRegressorTest, LearnsLinearFunction) {
  Matrix x;
  std::vector<float> y;
  MakeLinearData(1500, &x, &y, 4, 0.05f);
  BoosterConfig config;
  config.num_rounds = 80;
  GbdtRegressor model(config);
  model.Fit(x, y);

  Matrix xt;
  std::vector<float> yt;
  MakeLinearData(300, &xt, &yt, 5, 0.0f);
  double mae = 0;
  for (int i = 0; i < xt.rows(); ++i) {
    mae += std::fabs(model.Predict(xt.data() + i * 3) - yt[i]);
  }
  mae /= xt.rows();
  EXPECT_LT(mae, 0.45);  // well below the target's ~2.0 mean abs value
}

TEST(GbdtRegressorTest, MoreRoundsReduceTrainError) {
  Matrix x;
  std::vector<float> y;
  MakeLinearData(800, &x, &y, 6, 0.0f);
  auto train_mae = [&](int rounds) {
    BoosterConfig config;
    config.num_rounds = rounds;
    GbdtRegressor model(config);
    model.Fit(x, y);
    double mae = 0;
    for (int i = 0; i < x.rows(); ++i) {
      mae += std::fabs(model.Predict(x.data() + i * 3) - y[i]);
    }
    return mae / x.rows();
  };
  EXPECT_LT(train_mae(60), train_mae(5));
}

TEST(GbdtClassifierTest, SeparatesLinearBoundary) {
  Rng rng(7);
  const int n = 1500;
  Matrix x(n, 2);
  std::vector<float> y(n);
  for (int i = 0; i < n; ++i) {
    x.At(i, 0) = static_cast<float>(rng.Uniform(-1, 1));
    x.At(i, 1) = static_cast<float>(rng.Uniform(-1, 1));
    y[i] = (x.At(i, 0) + x.At(i, 1) > 0) ? 1.0f : 0.0f;
  }
  BoosterConfig config;
  config.num_rounds = 60;
  GbdtBinaryClassifier model(config);
  model.Fit(x, y);
  int correct = 0;
  for (int i = 0; i < n; ++i) {
    const float p = model.PredictProbability(x.data() + i * 2);
    if ((p > 0.5f) == (y[i] > 0.5f)) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / n, 0.93);
}

TEST(GbdtClassifierTest, ProbabilitiesAreCalibratedInSign) {
  Rng rng(8);
  const int n = 800;
  Matrix x(n, 1);
  std::vector<float> y(n);
  for (int i = 0; i < n; ++i) {
    x.At(i, 0) = static_cast<float>(rng.Uniform(-1, 1));
    y[i] = x.At(i, 0) > 0 ? 1.0f : 0.0f;
  }
  BoosterConfig config;
  GbdtBinaryClassifier model(config);
  model.Fit(x, y);
  float deep_pos[1] = {0.9f};
  float deep_neg[1] = {-0.9f};
  EXPECT_GT(model.PredictProbability(deep_pos), 0.8f);
  EXPECT_LT(model.PredictProbability(deep_neg), 0.2f);
  // Score is the raw margin: monotone with probability.
  EXPECT_GT(model.PredictScore(deep_pos), model.PredictScore(deep_neg));
}

TEST(FeatureImportanceTest, IdentifiesInformativeFeatures) {
  // y depends on features 0 and 1; feature 2 is noise. The gain-based
  // importance must concentrate on 0 and 1.
  Matrix x;
  std::vector<float> y;
  MakeLinearData(1200, &x, &y, 21, 0.02f);
  BoosterConfig config;
  config.num_rounds = 40;
  GbdtRegressor model(config);
  model.Fit(x, y);
  auto importance = model.FeatureImportance(3);
  ASSERT_EQ(importance.size(), 3u);
  double total = 0;
  for (double v : importance) {
    EXPECT_GE(v, 0.0);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  // 3*x0 has steeper slope than -2*x1; both dwarf the noise feature.
  EXPECT_GT(importance[0], importance[1]);
  EXPECT_GT(importance[1], importance[2]);
  EXPECT_LT(importance[2], 0.05);
}

TEST(FeatureImportanceTest, ClassifierImportanceFindsBoundaryFeature) {
  Rng rng(22);
  const int n = 1000;
  Matrix x(n, 2);
  std::vector<float> y(n);
  for (int i = 0; i < n; ++i) {
    x.At(i, 0) = static_cast<float>(rng.Uniform(-1, 1));
    x.At(i, 1) = static_cast<float>(rng.Uniform(-1, 1));
    y[i] = x.At(i, 0) > 0 ? 1.0f : 0.0f;  // only feature 0 matters
  }
  BoosterConfig config;
  GbdtBinaryClassifier model(config);
  model.Fit(x, y);
  auto importance = model.FeatureImportance(2);
  EXPECT_GT(importance[0], 0.9);
}

TEST(GbdtTest, DeterministicForFixedSeed) {
  Matrix x;
  std::vector<float> y;
  MakeLinearData(400, &x, &y, 9, 0.1f);
  BoosterConfig config;
  GbdtRegressor a(config), b(config);
  a.Fit(x, y);
  b.Fit(x, y);
  float probe[3] = {0.3f, -0.4f, 0.1f};
  EXPECT_FLOAT_EQ(a.Predict(probe), b.Predict(probe));
}

}  // namespace
}  // namespace m2g::baselines::gbdt
