#include <gtest/gtest.h>

#include "serve/replay.h"
#include "synth/analysis.h"

namespace m2g {
namespace {

synth::DataConfig SmallConfig() {
  synth::DataConfig config;
  config.seed = 1717;
  config.world.num_aois = 60;
  config.couriers.num_couriers = 6;
  config.num_days = 6;
  return config;
}

synth::TripRecord MakeTrip(const std::vector<int>& aoi_sequence,
                           int courier_id = 0) {
  synth::TripRecord trip;
  trip.courier_id = courier_id;
  trip.start_time_min = 100;
  double t = 100;
  int id = 0;
  for (int aoi : aoi_sequence) {
    synth::ServedOrder so;
    so.order.id = id++;
    so.order.aoi_id = aoi;
    so.order.deadline_min = 500;
    t += 10;
    so.arrival_time_min = t;
    so.departure_time_min = t + 3;
    trip.served.push_back(so);
  }
  return trip;
}

TEST(HabitConsistencyTest, PerfectlyHabitualCourier) {
  // Same AOI order every trip -> consistency 1.
  std::vector<synth::TripRecord> trips = {
      MakeTrip({1, 2, 3}), MakeTrip({1, 2, 3}), MakeTrip({1, 3, 2})};
  // Pairs: (1,2): always 1 first (3/3); (1,3): 3/3; (2,3): 2/3 majority.
  synth::HabitConsistency h = synth::ComputeHabitConsistency(trips);
  EXPECT_EQ(h.couriers_measured, 1);
  EXPECT_EQ(h.pairs_measured, 3);
  EXPECT_NEAR(h.mean_pair_consistency, (1.0 + 1.0 + 2.0 / 3.0) / 3.0,
              1e-12);
}

TEST(HabitConsistencyTest, CoinFlipCourierScoresHalf) {
  std::vector<synth::TripRecord> trips = {MakeTrip({1, 2}),
                                          MakeTrip({2, 1})};
  synth::HabitConsistency h = synth::ComputeHabitConsistency(trips);
  EXPECT_EQ(h.pairs_measured, 1);
  EXPECT_NEAR(h.mean_pair_consistency, 0.5, 1e-12);
}

TEST(HabitConsistencyTest, SingleObservationPairsIgnored) {
  std::vector<synth::TripRecord> trips = {MakeTrip({1, 2})};
  synth::HabitConsistency h = synth::ComputeHabitConsistency(trips);
  EXPECT_EQ(h.pairs_measured, 0);
}

TEST(HabitConsistencyTest, SimulatedCouriersAreHabitual) {
  auto trips = synth::SimulateAllTrips(SmallConfig(), nullptr, nullptr);
  synth::HabitConsistency h = synth::ComputeHabitConsistency(trips);
  EXPECT_GT(h.pairs_measured, 50);
  // The behavioural policy plants strong habits; well above coin-flip.
  EXPECT_GT(h.mean_pair_consistency, 0.8);
}

TEST(DeadlineStatsTest, CountsOnTimeFractionExactly) {
  synth::TripRecord trip = MakeTrip({1, 2});
  trip.served[0].order.deadline_min = trip.served[0].arrival_time_min + 5;
  trip.served[1].order.deadline_min = trip.served[1].arrival_time_min - 5;
  synth::DeadlineStats d = synth::ComputeDeadlineStats({trip});
  EXPECT_EQ(d.orders, 2);
  EXPECT_NEAR(d.on_time_fraction, 0.5, 1e-12);
  EXPECT_NEAR(d.mean_slack_min, 0.0, 1e-9);
}

TEST(DeadlineStatsTest, SimulatedWorldIsMostlyOnTime) {
  auto trips = synth::SimulateAllTrips(SmallConfig(), nullptr, nullptr);
  synth::DeadlineStats d = synth::ComputeDeadlineStats(trips);
  EXPECT_GT(d.orders, 100);
  EXPECT_GT(d.on_time_fraction, 0.8);  // promises are mostly kept
}

TEST(SweepStatsTest, PerfectAndBrokenSweeps) {
  // 1,1,2,2 -> two blocks, both complete.
  synth::SweepStats complete = synth::ComputeSweepStats(
      {MakeTrip({1, 1, 2, 2})});
  EXPECT_EQ(complete.blocks, 2);
  EXPECT_NEAR(complete.mean_block_completeness, 1.0, 1e-12);
  EXPECT_NEAR(complete.complete_block_fraction, 1.0, 1e-12);
  // 1,2,1 -> first block of AOI 1 serves 1 of 2 pending.
  synth::SweepStats broken = synth::ComputeSweepStats(
      {MakeTrip({1, 2, 1})});
  EXPECT_EQ(broken.blocks, 3);
  EXPECT_NEAR(broken.mean_block_completeness, (0.5 + 1.0 + 1.0) / 3.0,
              1e-12);
  EXPECT_NEAR(broken.complete_block_fraction, 2.0 / 3.0, 1e-12);
}

TEST(SweepStatsTest, SimulatedSweepsAreNearComplete) {
  auto trips = synth::SimulateAllTrips(SmallConfig(), nullptr, nullptr);
  synth::SweepStats s = synth::ComputeSweepStats(trips);
  EXPECT_GT(s.blocks, 100);
  EXPECT_GT(s.complete_block_fraction, 0.85);
}

TEST(ReplayTest, RequestFromSampleRoundTripsThroughExtractor) {
  synth::BuiltWorld built = synth::BuildWorldAndDataset(SmallConfig());
  ASSERT_GT(built.splits.test.size(), 0);
  const synth::Sample& offline = built.splits.test.samples.front();
  serve::FeatureExtractor extractor(&built.world);
  synth::Sample online =
      extractor.BuildSample(serve::RequestFromSample(offline));
  ASSERT_EQ(online.num_locations(), offline.num_locations());
  for (int i = 0; i < online.num_locations(); ++i) {
    EXPECT_EQ(online.locations[i].order_id,
              offline.locations[i].order_id);
  }
  EXPECT_EQ(online.loc_to_aoi, offline.loc_to_aoi);
}

TEST(ReplayTest, ReplayTripProducesShrinkingRequests) {
  synth::World world(synth::WorldConfig{}, {});
  std::vector<synth::CourierProfile> couriers;
  auto trips =
      synth::SimulateAllTrips(SmallConfig(), &world, &couriers);
  ASSERT_FALSE(trips.empty());
  const synth::TripRecord& trip = trips.front();
  auto requests =
      serve::ReplayTrip(trip, couriers[trip.courier_id]);
  ASSERT_EQ(requests.size(), trip.served.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(requests[i].pending.size(), trip.served.size() - i);
    // Clock advances monotonically.
    if (i > 0) {
      EXPECT_GE(requests[i].query_time_min,
                requests[i - 1].query_time_min);
    }
    // Pending orders are exactly the not-yet-served suffix.
    EXPECT_EQ(requests[i].pending.front().id, trip.served[i].order.id);
  }
  // First request starts at the trip start.
  EXPECT_DOUBLE_EQ(requests[0].query_time_min, trip.start_time_min);
}

TEST(ReplayTest, NodeIndexOfOrderFindsAndRejects) {
  synth::BuiltWorld built = synth::BuildWorldAndDataset(SmallConfig());
  const synth::Sample& s = built.splits.test.samples.front();
  for (int i = 0; i < s.num_locations(); ++i) {
    EXPECT_EQ(serve::NodeIndexOfOrder(s, s.locations[i].order_id), i);
  }
  EXPECT_EQ(serve::NodeIndexOfOrder(s, -999), -1);
}

}  // namespace
}  // namespace m2g
