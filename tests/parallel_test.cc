// Execution-layer tests: thread pool, grad mode, data-parallel training
// equivalence and concurrent serving. The concurrency tests here are the
// ones CI runs under TSan.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "core/trainer.h"
#include "serve/replay.h"
#include "serve/rtp_service.h"
#include "tensor/grad_mode.h"
#include "tensor/ops.h"

namespace m2g {
namespace {

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr int kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](int64_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ShardRangesPartitionAndAreDeterministic) {
  ThreadPool pool(3);
  for (int64_t n : {1, 2, 7, 100}) {
    std::vector<std::pair<int64_t, int64_t>> ranges(
        std::min<int64_t>(3, n));
    pool.ParallelForShards(n, 3, [&](int shard, int64_t begin, int64_t end) {
      ranges[shard] = {begin, end};
    });
    // Shard ranges depend only on (n, shards): contiguous, increasing,
    // covering [0, n).
    int64_t expect_begin = 0;
    for (size_t s = 0; s < ranges.size(); ++s) {
      EXPECT_EQ(ranges[s].first, expect_begin);
      EXPECT_GT(ranges[s].second, ranges[s].first);
      expect_begin = ranges[s].second;
    }
    EXPECT_EQ(expect_begin, n);
  }
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  pool.ParallelFor(8, [&](int64_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool outer(4);
  std::atomic<int> total{0};
  outer.ParallelFor(8, [&](int64_t) {
    ThreadPool inner(4);
    inner.ParallelFor(8,
                      [&](int64_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolTest, ResolveThreadsSemantics) {
  EXPECT_EQ(ResolveThreads(3), 3);
  EXPECT_EQ(ResolveThreads(1), 1);
  SetDefaultThreads(5);
  EXPECT_EQ(ResolveThreads(0), 5);
  EXPECT_EQ(DefaultThreads(), 5);
  SetDefaultThreads(0);
  EXPECT_GE(DefaultThreads(), 1);
}

TEST(GradModeTest, NoGradSkipsGraphConstruction) {
  Tensor a = Tensor::Parameter(Matrix::Full(2, 2, 3.0f));
  {
    NoGradGuard guard;
    EXPECT_FALSE(GradMode::enabled());
    Tensor y = Scale(a, 2.0f);
    EXPECT_FALSE(y.requires_grad());
    EXPECT_TRUE(y.node()->parents.empty());
    EXPECT_EQ(y.node()->backward_fn, nullptr);
    // Forward value is still computed exactly.
    EXPECT_FLOAT_EQ(y.value().At(0, 0), 6.0f);
  }
  EXPECT_TRUE(GradMode::enabled());
  Tensor y = Scale(a, 2.0f);
  EXPECT_TRUE(y.requires_grad());
  EXPECT_EQ(y.node()->parents.size(), 1u);
}

TEST(GradModeTest, GuardsNest) {
  NoGradGuard outer;
  {
    NoGradGuard inner;
    EXPECT_FALSE(GradMode::enabled());
  }
  EXPECT_FALSE(GradMode::enabled());
}

TEST(GradModeTest, ModeIsThreadLocal) {
  NoGradGuard guard;
  bool other_thread_enabled = false;
  std::thread t([&] { other_thread_enabled = GradMode::enabled(); });
  t.join();
  // A serving thread under NoGradGuard must not disable autograd on a
  // concurrent training thread.
  EXPECT_TRUE(other_thread_enabled);
  EXPECT_FALSE(GradMode::enabled());
}

/// Small trained world + model shared by the heavier tests.
struct ParallelFixture {
  synth::BuiltWorld built;
  core::ModelConfig mc;

  ParallelFixture()
      : built(synth::BuildWorldAndDataset([] {
          synth::DataConfig dc;
          dc.seed = 911;
          dc.world.num_aois = 60;
          dc.world.num_districts = 3;
          dc.couriers.num_couriers = 5;
          dc.num_days = 5;
          return dc;
        }())) {
    mc.hidden_dim = 16;
    mc.num_heads = 2;
    mc.num_layers = 1;
    mc.aoi_id_embed_dim = 4;
    mc.aoi_type_embed_dim = 2;
    mc.lstm_hidden_dim = 16;
    mc.courier_dim = 8;
    mc.pos_enc_dim = 4;
  }

  std::unique_ptr<core::M2g4Rtp> TrainedModel(int threads) const {
    auto model = std::make_unique<core::M2g4Rtp>(mc);
    core::TrainConfig tc;
    tc.epochs = 2;
    tc.max_samples_per_epoch = 24;
    tc.threads = threads;
    core::Trainer trainer(model.get(), tc);
    trainer.Fit(built.splits.train, built.splits.val);
    return model;
  }
};

const ParallelFixture& Fixture() {
  static const ParallelFixture* fixture = new ParallelFixture();
  return *fixture;
}

bool BitwiseEqual(const Matrix& a, const Matrix& b) {
  if (!a.SameShape(b)) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

TEST(NoGradForwardTest, PredictionIsBitwiseIdentical) {
  const ParallelFixture& f = Fixture();
  core::M2g4Rtp model(f.mc);
  const synth::Sample& s = f.built.splits.test.samples.front();
  core::RtpPrediction with_grad = model.Predict(s);
  core::RtpPrediction no_grad;
  {
    NoGradGuard guard;
    no_grad = model.Predict(s);
  }
  EXPECT_EQ(no_grad.location_route, with_grad.location_route);
  EXPECT_EQ(no_grad.aoi_route, with_grad.aoi_route);
  EXPECT_EQ(no_grad.location_times_min, with_grad.location_times_min);
  EXPECT_EQ(no_grad.aoi_times_min, with_grad.aoi_times_min);
}

TEST(NoGradForwardTest, LossValueIsBitwiseIdentical) {
  const ParallelFixture& f = Fixture();
  core::M2g4Rtp model(f.mc);
  const synth::Sample& s = f.built.splits.test.samples.front();
  // Paired equal-seed rngs so the scheduled-sampling draw matches.
  Rng rng_a(123), rng_b(123);
  const float with_grad = model.ComputeLoss(s, nullptr, &rng_a).item();
  float no_grad = 0;
  {
    NoGradGuard guard;
    no_grad = model.ComputeLoss(s, nullptr, &rng_b).item();
  }
  EXPECT_EQ(no_grad, with_grad);
}

TEST(ParallelTrainerTest, SerialTrainingIsReproducible) {
  const ParallelFixture& f = Fixture();
  auto a = f.TrainedModel(1);
  auto b = f.TrainedModel(1);
  auto pa = a->Parameters();
  auto pb = b->Parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(BitwiseEqual(pa[i].value(), pb[i].value())) << "param " << i;
  }
}

TEST(ParallelTrainerTest, FourThreadTrainingIsReproducible) {
  const ParallelFixture& f = Fixture();
  auto a = f.TrainedModel(4);
  auto b = f.TrainedModel(4);
  auto pa = a->Parameters();
  auto pb = b->Parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(BitwiseEqual(pa[i].value(), pb[i].value())) << "param " << i;
  }
}

TEST(ParallelTrainerTest, FourThreadsMatchSerialWithinTolerance) {
  // With 2 epochs the guidance anneal is 0 then 1, so the scheduled
  // sampling draws cannot diverge between the serial and per-sample rng
  // streams; the only difference is float summation order.
  const ParallelFixture& f = Fixture();
  auto serial = f.TrainedModel(1);
  auto parallel = f.TrainedModel(4);
  core::TrainConfig tc;
  core::Trainer eval_serial(serial.get(), tc);
  core::Trainer eval_parallel(parallel.get(), tc);
  const float val_serial = eval_serial.Evaluate(f.built.splits.val);
  const float val_parallel = eval_parallel.Evaluate(f.built.splits.val);
  EXPECT_NEAR(val_parallel, val_serial,
              0.02f * std::abs(val_serial) + 1e-3f);
}

TEST(ParallelEvaluateTest, ParallelEvaluateMatchesSerialClosely) {
  const ParallelFixture& f = Fixture();
  core::M2g4Rtp model(f.mc);
  core::TrainConfig tc_serial;
  core::TrainConfig tc_parallel;
  tc_parallel.threads = 4;
  core::Trainer serial(&model, tc_serial);
  core::Trainer parallel(&model, tc_parallel);
  const float a = serial.Evaluate(f.built.splits.val);
  const float b = parallel.Evaluate(f.built.splits.val);
  // Same per-sample forward values; only the scheduled-sampling draw
  // source differs, and guidance_sampling_prob defaults to 1 so the draw
  // never changes the branch. Sums agree to float tolerance.
  EXPECT_NEAR(a, b, 1e-4f * std::abs(a) + 1e-5f);
}

TEST(ConcurrentServeTest, HammeredServiceMatchesSerialReference) {
  const ParallelFixture& f = Fixture();
  auto model = f.TrainedModel(1);
  serve::RtpService service(&f.built.world, model.get());

  const auto& samples = f.built.splits.test.samples;
  const int num_requests = std::min<int>(8, samples.size());
  std::vector<serve::RtpRequest> requests;
  std::vector<core::RtpPrediction> reference;
  for (int i = 0; i < num_requests; ++i) {
    requests.push_back(serve::RequestFromSample(samples[i]));
    reference.push_back(model->Predict(samples[i]));
  }

  constexpr int kThreads = 4;
  std::vector<std::vector<serve::RtpService::Response>> responses(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (const serve::RtpRequest& req : requests) {
        responses[t].push_back(service.Handle(req));
      }
    });
  }
  for (std::thread& w : workers) w.join();

  EXPECT_EQ(service.requests_served(),
            static_cast<int64_t>(kThreads) * num_requests);
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(static_cast<int>(responses[t].size()), num_requests);
    for (int i = 0; i < num_requests; ++i) {
      EXPECT_EQ(responses[t][i].prediction.location_route,
                reference[i].location_route)
          << "thread " << t << " request " << i;
      EXPECT_EQ(responses[t][i].prediction.location_times_min,
                reference[i].location_times_min);
    }
  }
}

TEST(ConcurrentServeTest, ReplayConcurrentlyMatchesSerialReplay) {
  const ParallelFixture& f = Fixture();
  auto model = f.TrainedModel(1);
  serve::RtpService service(&f.built.world, model.get());

  const auto& samples = f.built.splits.test.samples;
  const int num_requests = std::min<int>(12, samples.size());
  std::vector<serve::RtpRequest> requests;
  for (int i = 0; i < num_requests; ++i) {
    requests.push_back(serve::RequestFromSample(samples[i]));
  }
  serve::ConcurrentReplayResult concurrent =
      serve::ReplayConcurrently(service, requests, 4);
  ASSERT_EQ(static_cast<int>(concurrent.responses.size()), num_requests);
  EXPECT_GT(concurrent.requests_per_second, 0);
  for (int i = 0; i < num_requests; ++i) {
    serve::RtpService::Response serial = service.Handle(requests[i]);
    EXPECT_EQ(concurrent.responses[i].prediction.location_route,
              serial.prediction.location_route)
        << "request " << i;
  }
}

}  // namespace
}  // namespace m2g
