#include <gtest/gtest.h>

#include <cstdio>

#include "core/trainer.h"
#include "eval/comparison.h"
#include "serve/eta_service.h"
#include "serve/order_sorting_service.h"

namespace m2g {
namespace {

/// End-to-end: simulate a city, train the model, evaluate against a
/// heuristic, save weights, reload into the serving stack and answer a
/// live request. One flow through every subsystem.
TEST(IntegrationTest, FullPipelineFromSimulationToServing) {
  // 1. Simulate the world.
  synth::DataConfig dc;
  dc.seed = 909;
  dc.world.num_aois = 80;
  dc.world.num_districts = 4;
  dc.couriers.num_couriers = 8;
  dc.num_days = 8;
  synth::BuiltWorld built = synth::BuildWorldAndDataset(dc);
  ASSERT_GT(built.splits.train.size(), 50);
  ASSERT_GT(built.splits.test.size(), 10);

  // 2. Train a small-but-real model.
  core::ModelConfig mc;
  mc.hidden_dim = 16;
  mc.num_heads = 2;
  mc.num_layers = 1;
  mc.aoi_id_embed_dim = 4;
  mc.aoi_type_embed_dim = 2;
  mc.lstm_hidden_dim = 16;
  mc.courier_dim = 8;
  mc.pos_enc_dim = 4;
  core::M2g4Rtp model(mc);
  core::TrainConfig tc;
  tc.epochs = 4;
  tc.max_samples_per_epoch = 150;
  core::Trainer trainer(&model, tc);
  auto history = trainer.Fit(built.splits.train, built.splits.val);
  ASSERT_FALSE(history.empty());

  // 3. Trained model beats the naive heuristics' route quality.
  metrics::BucketedEvaluator model_eval, greedy_eval;
  auto greedy = eval::CreateModel("Distance-Greedy", {});
  for (const synth::Sample& s : built.splits.test.samples) {
    core::RtpPrediction pred = model.Predict(s);
    model_eval.AddSample(pred.location_route, s.route_label,
                         pred.location_times_min, s.time_label_min);
    core::RtpPrediction g = greedy->Predict(s);
    greedy_eval.AddSample(g.location_route, s.route_label,
                          g.location_times_min, s.time_label_min);
  }
  const auto model_all = model_eval.Get(metrics::Bucket::kAll);
  const auto greedy_all = greedy_eval.Get(metrics::Bucket::kAll);
  EXPECT_GT(model_all.krc, 0.05);  // clearly above random
  EXPECT_LT(model_all.mae, greedy_all.mae);

  // 4. Save, reload into a fresh model, serve a live request.
  const std::string path = ::testing::TempDir() + "/integration_model.bin";
  ASSERT_TRUE(model.Save(path).ok());
  core::M2g4Rtp served_model(mc);
  ASSERT_TRUE(served_model.Load(path).ok());

  serve::RtpService service(&built.world, &served_model);
  serve::OrderSortingService sorting(&service);
  serve::EtaService eta(&service);

  const synth::Sample& s = built.splits.test.samples.front();
  serve::RtpRequest request;
  request.courier = s.courier;
  request.courier_pos = s.courier_pos;
  request.query_time_min = s.query_time_min;
  request.weather = s.weather;
  request.weekday = s.weekday;
  for (const synth::LocationTask& task : s.locations) {
    synth::Order o;
    o.id = task.order_id;
    o.pos = task.pos;
    o.aoi_id = task.aoi_id;
    o.accept_time_min = task.accept_time_min;
    o.deadline_min = task.deadline_min;
    request.pending.push_back(o);
  }

  auto sorted = sorting.Sort(request);
  ASSERT_EQ(static_cast<int>(sorted.size()), s.num_locations());
  auto etas = eta.Estimate(request);
  ASSERT_EQ(etas.size(), sorted.size());

  // The serving path must agree with direct offline inference of the
  // same weights.
  core::RtpPrediction direct = served_model.Predict(s);
  EXPECT_EQ(sorted.front().order_id,
            s.locations[direct.location_route.front()].order_id);
  std::remove(path.c_str());
}

/// The headline claim at miniature scale: the multi-level model's route
/// quality exceeds a single-level variant trained identically.
TEST(IntegrationTest, MultiLevelBeatsSingleLevelOnRoute) {
  synth::DataConfig dc;
  dc.seed = 910;
  dc.world.num_aois = 80;
  dc.couriers.num_couriers = 8;
  dc.num_days = 8;
  synth::DatasetSplits splits = synth::BuildDataset(dc);

  auto run = [&](bool use_aoi) {
    core::ModelConfig mc;
    mc.hidden_dim = 16;
    mc.num_heads = 2;
    mc.num_layers = 1;
    mc.aoi_id_embed_dim = 4;
    mc.aoi_type_embed_dim = 2;
    mc.lstm_hidden_dim = 16;
    mc.courier_dim = 8;
    mc.pos_enc_dim = 4;
    mc.use_aoi_level = use_aoi;
    core::M2g4Rtp model(mc);
    core::TrainConfig tc;
    tc.epochs = 4;
    tc.max_samples_per_epoch = 150;
    core::Trainer trainer(&model, tc);
    trainer.Fit(splits.train, splits.val);
    metrics::BucketedEvaluator evaluator;
    for (const synth::Sample& s : splits.test.samples) {
      core::RtpPrediction pred = model.Predict(s);
      evaluator.AddSample(pred.location_route, s.route_label,
                          pred.location_times_min, s.time_label_min);
    }
    return evaluator.Get(metrics::Bucket::kAll);
  };

  const auto multi = run(true);
  const auto single = run(false);
  // At this miniature scale we assert a soft ordering: multi-level is at
  // least competitive (within noise) and usually better; the full-scale
  // comparison is bench_fig5_ablation.
  EXPECT_GT(multi.krc, single.krc - 0.10);
}

}  // namespace
}  // namespace m2g
