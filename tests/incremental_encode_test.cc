// Incremental re-encode parity suite: a delta step over a warm
// LevelEncodeCache must reproduce a from-scratch EncodeFast bit for bit —
// for appends, middle inserts, removals and pure feature drift, under
// pooled AND plain tensor storage — and PredictIncremental must match
// Predict exactly on order-arrival request streams while reporting the
// documented fallback reasons (structural diffs, capacity growth,
// scheduled refresh, global-embedding drift, kill switch).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "core/encode_plan.h"
#include "core/encoder.h"
#include "core/incremental_encode.h"
#include "core/model.h"
#include "graph/features.h"
#include "graph/multi_level_graph.h"
#include "obs/metrics.h"
#include "serve/feature_extractor.h"
#include "synth/world.h"
#include "tensor/grad_mode.h"
#include "tensor/pool.h"

namespace m2g::core {
namespace {

/// Forces the pool globally on or off for a scope, restoring the prior
/// setting on exit.
class PoolMode {
 public:
  explicit PoolMode(bool enabled) : saved_(TensorPool::enabled()) {
    TensorPool::set_enabled(enabled);
  }
  ~PoolMode() { TensorPool::set_enabled(saved_); }

 private:
  bool saved_;
};

void ExpectBitEqual(const Matrix& a, const Matrix& b, const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
      << what;
}

void ExpectLevelBitEqual(const EncodedLevel& got, const EncodedLevel& want,
                         const char* what) {
  ExpectBitEqual(got.nodes.value(), want.nodes.value(), what);
  ExpectBitEqual(got.edges.value(), want.edges.value(), what);
}

/// Node/pair content derived deterministically from stable node ids, so a
/// graph built from any id subset agrees bitwise with any other subset on
/// shared nodes and shared pairs — exactly the single-node-delta contract
/// the serving feature path provides (node features are per-task, edge
/// features are pair-local).
Matrix NodeRow(int id) {
  Rng rng(1000 + static_cast<uint64_t>(id));
  return Matrix::Random(1, graph::kLocationContinuousDim, -1, 1, &rng);
}

uint64_t PairSeed(int a, int b) {
  return 7777 + static_cast<uint64_t>(std::min(a, b)) * 131071 +
         static_cast<uint64_t>(std::max(a, b));
}

graph::LevelGraph LevelFromIds(const std::vector<int>& ids) {
  const int n = static_cast<int>(ids.size());
  graph::LevelGraph level;
  level.n = n;
  level.node_continuous = Matrix(n, graph::kLocationContinuousDim);
  level.node_aoi_id.resize(n);
  level.node_aoi_type.resize(n);
  for (int i = 0; i < n; ++i) {
    const Matrix row = NodeRow(ids[i]);
    std::memcpy(level.node_continuous.data() +
                    static_cast<size_t>(i) * graph::kLocationContinuousDim,
                row.data(),
                sizeof(float) * graph::kLocationContinuousDim);
    level.node_aoi_id[i] = ids[i] % 512;
    level.node_aoi_type[i] = ids[i] % synth::kNumAoiTypes;
  }
  level.edge_features = Matrix(n * n, graph::kEdgeDim);
  level.adjacency.assign(static_cast<size_t>(n) * n, false);
  for (int i = 0; i < n; ++i) {
    level.adjacency[static_cast<size_t>(i) * n + i] = true;
    for (int j = 0; j < n; ++j) {
      Rng rng(PairSeed(ids[i], ids[j]));
      Matrix e = Matrix::Random(1, graph::kEdgeDim, 0, 1, &rng);
      std::memcpy(level.edge_features.data() +
                      (static_cast<size_t>(i) * n + j) * graph::kEdgeDim,
                  e.data(), sizeof(float) * graph::kEdgeDim);
      if (i != j && rng.Bernoulli(0.45)) {
        level.adjacency[static_cast<size_t>(i) * n + j] = true;
        level.adjacency[static_cast<size_t>(j) * n + i] = true;
      }
    }
  }
  return level;
}

/// Paper-sized encoder (hidden 48, 4 heads, 2 layers — exercises both the
/// concat hidden layer and the averaged last layer).
struct EncoderFixture {
  explicit EncoderFixture(uint64_t seed = 901) : rng(seed) {
    config.seed = 11;
    encoder = std::make_unique<LevelEncoder>(
        config, graph::kLocationContinuousDim, &rng);
    global =
        Tensor::Constant(Matrix::Random(1, config.courier_dim, -1, 1, &rng));
  }

  EncodedLevel Full(const graph::LevelGraph& level) {
    EncodePlan plan(level.n, config.hidden_dim);
    return encoder->EncodeFast(level, global, &plan);
  }

  ModelConfig config;
  Rng rng;
  std::unique_ptr<LevelEncoder> encoder;
  Tensor global;
};

/// Warms a cache on `start` then drives it through `steps`, asserting
/// every delta-encoded step bitwise against a fresh full encode. Returns
/// how many steps actually took the delta path.
int DriveStream(EncoderFixture* f, const std::vector<int>& start,
                const std::vector<std::vector<int>>& steps,
                const char* what) {
  NoGradGuard no_grad;
  LevelEncodeCache cache;
  graph::LevelGraph prev = LevelFromIds(start);
  {
    EncodePlan plan(prev.n, f->config.hidden_dim);
    EncodedLevel warm =
        f->encoder->EncodeFastCached(prev, f->global, &plan, &cache);
    ExpectLevelBitEqual(warm, f->Full(prev), what);
  }
  int delta_steps = 0;
  for (const std::vector<int>& ids : steps) {
    graph::LevelGraph next = LevelFromIds(ids);
    const graph::LevelGraphDelta delta = graph::DiffLevelGraph(prev, next);
    EncodePlan plan(std::max(prev.n, next.n), f->config.hidden_dim);
    std::optional<EncodedLevel> got = f->encoder->EncodeDelta(
        next, prev, delta, f->global, &plan, &cache);
    if (got.has_value()) {
      ++delta_steps;
      ExpectLevelBitEqual(*got, f->Full(next), what);
    } else {
      // Fallback: re-warm, as PredictIncremental would.
      EncodedLevel full =
          f->encoder->EncodeFastCached(next, f->global, &plan, &cache);
      ExpectLevelBitEqual(full, f->Full(next), what);
    }
    prev = std::move(next);
  }
  return delta_steps;
}

TEST(IncrementalEncodeTest, CachedWarmEncodeMatchesEncodeFastBitwise) {
  for (bool pooled : {true, false}) {
    PoolMode mode(pooled);
    NoGradGuard no_grad;
    for (int n : {1, 2, 5, 17}) {
      EncoderFixture f(700 + n);
      std::vector<int> ids;
      for (int i = 0; i < n; ++i) ids.push_back(3 * i);
      graph::LevelGraph level = LevelFromIds(ids);
      LevelEncodeCache cache;
      EncodePlan plan(n, f.config.hidden_dim);
      EncodedLevel cached =
          f.encoder->EncodeFastCached(level, f.global, &plan, &cache);
      ExpectLevelBitEqual(cached, f.Full(level), "warm vs EncodeFast");
      EXPECT_EQ(cache.n, n);
      EXPECT_GT(cache.bytes(), 0u);
    }
  }
}

TEST(IncrementalEncodeTest, AppendArrivalStreamBitwise) {
  // The common serving case: orders arrive with ascending ids, so every
  // new node appends at the end of the ordering (index-stable, no remap).
  for (bool pooled : {true, false}) {
    PoolMode mode(pooled);
    EncoderFixture f(811);
    std::vector<int> ids{0, 2, 4, 6, 8};
    std::vector<std::vector<int>> steps;
    for (int id = 10; id <= 20; id += 2) {
      ids.push_back(id);
      steps.push_back(ids);
    }
    const int deltas = DriveStream(&f, {0, 2, 4, 6, 8}, steps, "append");
    // With pair-local features every append is single-node-explainable;
    // expect the delta path to carry (nearly) the whole stream.
    EXPECT_GE(deltas, 5) << "append stream barely used the delta path";
  }
}

TEST(IncrementalEncodeTest, MiddleInsertAndRemoveBitwise) {
  for (bool pooled : {true, false}) {
    PoolMode mode(pooled);
    EncoderFixture f(823);
    // Insert into the middle (remap), remove from the middle, remove the
    // last node, then append again over the shifted cache.
    const std::vector<std::vector<int>> steps = {
        {10, 20, 25, 30, 40, 50},  // middle insert (pos 2)
        {10, 20, 25, 40, 50},      // middle remove (pos 3)
        {10, 20, 25, 40},          // end remove
        {10, 20, 25, 40, 60},      // append after remaps
    };
    const int deltas =
        DriveStream(&f, {10, 20, 30, 40, 50}, steps, "insert/remove");
    EXPECT_EQ(deltas, 4);
  }
}

TEST(IncrementalEncodeTest, FeatureDriftOnAlignedNodesBitwise) {
  // Same node set, one node's features drift (e.g. an AOI centroid moved
  // when an order joined it): classified kSameNodes, delta-encoded.
  EncoderFixture f(829);
  NoGradGuard no_grad;
  const std::vector<int> ids{1, 3, 5, 7, 9, 11};
  graph::LevelGraph before = LevelFromIds(ids);
  LevelEncodeCache cache;
  EncodePlan plan(before.n, f.config.hidden_dim);
  f.encoder->EncodeFastCached(before, f.global, &plan, &cache);

  graph::LevelGraph after = LevelFromIds(ids);
  after.node_continuous.At(2, 0) += 0.25f;
  after.node_continuous.At(2, 3) -= 0.5f;
  const graph::LevelGraphDelta delta = graph::DiffLevelGraph(before, after);
  EXPECT_EQ(delta.kind, graph::LevelDeltaKind::kSameNodes);
  std::optional<EncodedLevel> got =
      f.encoder->EncodeDelta(after, before, delta, f.global, &plan, &cache);
  ASSERT_TRUE(got.has_value());
  ExpectLevelBitEqual(*got, f.Full(after), "feature drift");
}

TEST(IncrementalEncodeTest, IdenticalGraphServesCacheBitwise) {
  EncoderFixture f(831);
  NoGradGuard no_grad;
  const std::vector<int> ids{2, 4, 6, 8};
  graph::LevelGraph level = LevelFromIds(ids);
  LevelEncodeCache cache;
  EncodePlan plan(level.n, f.config.hidden_dim);
  f.encoder->EncodeFastCached(level, f.global, &plan, &cache);
  graph::LevelGraph same = LevelFromIds(ids);
  const graph::LevelGraphDelta delta = graph::DiffLevelGraph(level, same);
  EXPECT_EQ(delta.kind, graph::LevelDeltaKind::kIdentical);
  std::optional<EncodedLevel> got =
      f.encoder->EncodeDelta(same, level, delta, f.global, &plan, &cache);
  ASSERT_TRUE(got.has_value());
  ExpectLevelBitEqual(*got, f.Full(same), "identical");
}

TEST(IncrementalEncodeTest, StructuralAndOversizeDeltasRefuse) {
  EncoderFixture f(837);
  NoGradGuard no_grad;
  const std::vector<int> ids{5, 10, 15, 20};
  graph::LevelGraph level = LevelFromIds(ids);
  LevelEncodeCache cache;
  EncodePlan plan(32, f.config.hidden_dim);
  f.encoder->EncodeFastCached(level, f.global, &plan, &cache);

  // Permutation: values survive but the numbering moved — structural.
  graph::LevelGraph permuted = LevelFromIds({10, 5, 15, 20});
  graph::LevelGraphDelta delta = graph::DiffLevelGraph(level, permuted);
  EXPECT_EQ(delta.kind, graph::LevelDeltaKind::kStructural);
  EXPECT_FALSE(
      f.encoder->EncodeDelta(permuted, level, delta, f.global, &plan, &cache)
          .has_value());

  // A graph past the cache capacity refuses regardless of the diff.
  std::vector<int> big_ids;
  for (int i = 0; i <= cache.cap; ++i) big_ids.push_back(i);
  graph::LevelGraph big = LevelFromIds(big_ids);
  delta = graph::DiffLevelGraph(level, big);
  EXPECT_FALSE(
      f.encoder->EncodeDelta(big, level, delta, f.global, &plan, &cache)
          .has_value());

  // A cold cache refuses everything.
  LevelEncodeCache cold;
  delta = graph::DiffLevelGraph(level, level);
  EXPECT_FALSE(
      f.encoder->EncodeDelta(level, level, delta, f.global, &plan, &cold)
          .has_value());
}

TEST(IncrementalEncodeTest, DirtySpreadBailsOutToFullEncode) {
  // Every node's features move (the courier walked): the delta would
  // recompute more than half the rows, so it declines and the caller
  // re-warms.
  EncoderFixture f(839);
  NoGradGuard no_grad;
  const std::vector<int> ids{1, 2, 3, 4, 5, 6};
  graph::LevelGraph before = LevelFromIds(ids);
  LevelEncodeCache cache;
  EncodePlan plan(before.n, f.config.hidden_dim);
  f.encoder->EncodeFastCached(before, f.global, &plan, &cache);
  graph::LevelGraph after = LevelFromIds(ids);
  for (int i = 0; i < after.n; ++i) after.node_continuous.At(i, 0) += 1.0f;
  const graph::LevelGraphDelta delta = graph::DiffLevelGraph(before, after);
  EXPECT_EQ(delta.kind, graph::LevelDeltaKind::kSameNodes);
  EXPECT_FALSE(
      f.encoder->EncodeDelta(after, before, delta, f.global, &plan, &cache)
          .has_value());
  // The cache survives a refusal well enough to re-warm correctly.
  EncodedLevel full =
      f.encoder->EncodeFastCached(after, f.global, &plan, &cache);
  ExpectLevelBitEqual(full, f.Full(after), "re-warm after refusal");
}

/// World + untrained (seed-initialized) model for end-to-end
/// PredictIncremental parity. Training is irrelevant to parity and slow.
struct ModelFixture {
  synth::DataConfig data_config;
  synth::BuiltWorld built;
  std::unique_ptr<M2g4Rtp> model;
  std::unique_ptr<serve::FeatureExtractor> extractor;
  const synth::Sample* sample = nullptr;  // richest test sample

  explicit ModelFixture(ModelConfig mc = SmallConfig())
      : data_config([] {
          synth::DataConfig dc;
          dc.seed = 424;
          dc.world.num_aois = 60;
          dc.world.num_districts = 3;
          dc.couriers.num_couriers = 5;
          dc.num_days = 6;
          return dc;
        }()),
        built(synth::BuildWorldAndDataset(data_config)) {
    model = std::make_unique<M2g4Rtp>(mc);
    extractor = std::make_unique<serve::FeatureExtractor>(&built.world);
    for (const synth::Sample& s : built.splits.test.samples) {
      if (sample == nullptr ||
          s.num_locations() > sample->num_locations()) {
        sample = &s;
      }
    }
    M2G_CHECK(sample != nullptr);
    M2G_CHECK_GE(sample->num_locations(), 4);
  }

  static ModelConfig SmallConfig() {
    ModelConfig mc;
    mc.hidden_dim = 16;
    mc.num_heads = 2;
    mc.num_layers = 2;
    mc.aoi_id_embed_dim = 4;
    mc.aoi_type_embed_dim = 2;
    mc.lstm_hidden_dim = 16;
    mc.courier_dim = 8;
    mc.pos_enc_dim = 4;
    mc.seed = 97;
    return mc;
  }

  serve::RtpRequest RequestWithOrders(int count) const {
    serve::RtpRequest req;
    req.courier = sample->courier;
    req.courier_pos = sample->courier_pos;
    req.query_time_min = sample->query_time_min;
    req.weather = sample->weather;
    req.weekday = sample->weekday;
    for (int i = 0; i < count && i < sample->num_locations(); ++i) {
      const synth::LocationTask& task = sample->locations[i];
      synth::Order o;
      o.id = task.order_id;
      o.pos = task.pos;
      o.aoi_id = task.aoi_id;
      o.accept_time_min = task.accept_time_min;
      o.deadline_min = task.deadline_min;
      req.pending.push_back(o);
    }
    return req;
  }
};

void ExpectPredictionBitEqual(const RtpPrediction& got,
                              const RtpPrediction& want) {
  EXPECT_EQ(got.location_route, want.location_route);
  EXPECT_EQ(got.aoi_route, want.aoi_route);
  ASSERT_EQ(got.location_times_min.size(), want.location_times_min.size());
  for (size_t i = 0; i < want.location_times_min.size(); ++i) {
    EXPECT_EQ(got.location_times_min[i], want.location_times_min[i]) << i;
  }
  ASSERT_EQ(got.aoi_times_min.size(), want.aoi_times_min.size());
  for (size_t i = 0; i < want.aoi_times_min.size(); ++i) {
    EXPECT_EQ(got.aoi_times_min[i], want.aoi_times_min[i]) << i;
  }
}

TEST(PredictIncrementalTest, ArrivalStreamMatchesPredictBitwise) {
  // Orders arrive one at a time, then complete one at a time: every
  // response must match the stateless Predict bitwise, pooled and plain.
  ModelFixture f;
  const int total = f.sample->num_locations();
  for (bool pooled : {true, false}) {
    PoolMode mode(pooled);
    NoGradGuard no_grad;
    IncrementalState state;
    int delta_steps = 0;
    auto serve_one = [&](int count) {
      synth::Sample s = f.extractor->BuildSample(f.RequestWithOrders(count));
      IncrementalResult res;
      RtpPrediction got = f.model->PredictIncremental(s, &state, &res);
      RtpPrediction want = f.model->Predict(s);
      ExpectPredictionBitEqual(got, want);
      delta_steps += res.delta ? 1 : 0;
    };
    for (int count = 2; count <= total; ++count) serve_one(count);
    for (int count = total - 1; count >= 2; --count) serve_one(count);
    // The stream must actually exercise the delta path, not live on
    // fallbacks.
    EXPECT_GT(delta_steps, 0) << "pooled=" << pooled;
  }
}

TEST(PredictIncrementalTest, KillSwitchFallsBackAndTouchesNoState) {
  ModelConfig mc = ModelFixture::SmallConfig();
  mc.incremental_encode = false;
  ModelFixture f(mc);
  NoGradGuard no_grad;
  IncrementalState state;
  synth::Sample s = f.extractor->BuildSample(f.RequestWithOrders(4));
  IncrementalResult res;
  RtpPrediction got = f.model->PredictIncremental(s, &state, &res);
  EXPECT_FALSE(res.delta);
  EXPECT_EQ(res.fallback, IncrementalFallback::kDisabled);
  EXPECT_FALSE(state.warm);
  EXPECT_EQ(state.bytes(), 0u);
  ExpectPredictionBitEqual(got, f.model->Predict(s));
}

TEST(PredictIncrementalTest, RefreshPeriodForcesScheduledFullEncode) {
  ModelConfig mc = ModelFixture::SmallConfig();
  mc.incremental_refresh_period = 2;
  ModelFixture f(mc);
  NoGradGuard no_grad;
  IncrementalState state;
  synth::Sample s = f.extractor->BuildSample(f.RequestWithOrders(5));
  IncrementalResult res;
  f.model->PredictIncremental(s, &state, &res);
  EXPECT_EQ(res.fallback, IncrementalFallback::kCold);
  f.model->PredictIncremental(s, &state, &res);
  EXPECT_TRUE(res.delta);
  // deltas_since_full + 1 reaches the period: scheduled refresh.
  f.model->PredictIncremental(s, &state, &res);
  EXPECT_FALSE(res.delta);
  EXPECT_EQ(res.fallback, IncrementalFallback::kRefresh);
  // And the cycle restarts.
  f.model->PredictIncremental(s, &state, &res);
  EXPECT_TRUE(res.delta);
}

TEST(PredictIncrementalTest, GlobalEmbeddingDriftFallsBack) {
  ModelFixture f;
  NoGradGuard no_grad;
  IncrementalState state;
  synth::Sample s = f.extractor->BuildSample(f.RequestWithOrders(5));
  f.model->PredictIncremental(s, &state, nullptr);
  // A different weather bucket changes the global embedding bitwise.
  serve::RtpRequest req = f.RequestWithOrders(5);
  req.weather = (req.weather + 1) % synth::kNumWeatherCodes;
  synth::Sample drifted = f.extractor->BuildSample(req);
  IncrementalResult res;
  RtpPrediction got = f.model->PredictIncremental(drifted, &state, &res);
  EXPECT_FALSE(res.delta);
  EXPECT_EQ(res.fallback, IncrementalFallback::kGlobalChanged);
  ExpectPredictionBitEqual(got, f.model->Predict(drifted));
  // The re-warm adopted the new embedding: the next identical request
  // delta-encodes again.
  f.model->PredictIncremental(drifted, &state, &res);
  EXPECT_TRUE(res.delta);
}

TEST(PredictIncrementalTest, CapacityGrowthFallsBackOnce) {
  ModelFixture f;
  NoGradGuard no_grad;
  IncrementalState state;
  const int total = f.sample->num_locations();
  // Warm small, then grow the pending set one by one; when a level
  // outgrows its padded capacity the step full-encodes (kCapacity) and
  // regrows, and the stream resumes delta-encoding.
  bool saw_capacity = false;
  for (int count = 2; count <= total; ++count) {
    synth::Sample s = f.extractor->BuildSample(f.RequestWithOrders(count));
    IncrementalResult res;
    RtpPrediction got = f.model->PredictIncremental(s, &state, &res);
    ExpectPredictionBitEqual(got, f.model->Predict(s));
    saw_capacity |= res.fallback == IncrementalFallback::kCapacity;
  }
  if (total > 16) {
    // kMinCapacity is 16: a stream past it must have hit the growth path.
    EXPECT_TRUE(saw_capacity);
  }
}

TEST(PredictIncrementalTest, GradModeDisablesSessionsAndMatchesPredict) {
  ModelFixture f;
  IncrementalState state;
  synth::Sample s = f.extractor->BuildSample(f.RequestWithOrders(4));
  IncrementalResult res;
  RtpPrediction got = f.model->PredictIncremental(s, &state, &res);
  EXPECT_EQ(res.fallback, IncrementalFallback::kDisabled);
  EXPECT_FALSE(state.warm);
  ExpectPredictionBitEqual(got, f.model->Predict(s));
}

TEST(PredictIncrementalTest, ConcurrentStatesAreIndependent) {
  // One shared const model, one IncrementalState per thread (the session
  // store's locking discipline): streams must stay bitwise-correct and
  // data-race-free (TSan job).
  ModelFixture f;
  const int total = std::min(f.sample->num_locations(), 8);
  std::vector<RtpPrediction> want(total + 1);
  {
    NoGradGuard no_grad;
    for (int count = 2; count <= total; ++count) {
      want[count] = f.model->Predict(
          f.extractor->BuildSample(f.RequestWithOrders(count)));
    }
  }
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      NoGradGuard no_grad;
      IncrementalState state;
      for (int round = 0; round < 2; ++round) {
        for (int count = 2; count <= total; ++count) {
          synth::Sample s =
              f.extractor->BuildSample(f.RequestWithOrders(count));
          RtpPrediction got =
              f.model->PredictIncremental(s, &state, nullptr);
          ExpectPredictionBitEqual(got, want[count]);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
}

TEST(PredictIncrementalTest, DeltaStepsMoveTheCounters) {
#ifdef M2G_OBS_DISABLED
  GTEST_SKIP() << "metrics compiled out (M2G_OBS_DISABLED)";
#else
  ModelFixture f;
  NoGradGuard no_grad;
  obs::SetEnabled(true);
  obs::Counter& deltas =
      obs::MetricsRegistry::Global().counter("encode.delta_steps");
  const uint64_t before = deltas.Value();
  IncrementalState state;
  synth::Sample s = f.extractor->BuildSample(f.RequestWithOrders(5));
  f.model->PredictIncremental(s, &state, nullptr);
  f.model->PredictIncremental(s, &state, nullptr);
  obs::SetEnabled(false);
  EXPECT_GT(deltas.Value(), before);
#endif
}

}  // namespace
}  // namespace m2g::core
