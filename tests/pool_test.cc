// Tests for the thread-local tensor pool (tensor/pool.h): arena-scoped
// recycling, hit/miss accounting, retention across scopes, the global
// kill switch, and the deep-ownership guarantees that let Matrices
// escape their arena (including across threads).

#include <gtest/gtest.h>

#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "tensor/matrix.h"
#include "tensor/pool.h"

namespace m2g {
namespace {

// Flat-index arithmetic must never run through int (satellite: size()
// overflows int at ~46k x 46k otherwise).
static_assert(
    std::is_same_v<decltype(std::declval<const Matrix&>().size()), size_t>,
    "Matrix::size() must be size_t");
static_assert(std::is_same_v<decltype(std::declval<const Storage&>().size()),
                             size_t>,
              "Storage::size() must be size_t");

class PoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TensorPool::set_enabled(true);
    TensorPool::ReleaseRetained();
    TensorPool::ResetThreadStats();
  }
  void TearDown() override {
    TensorPool::set_enabled(true);
    TensorPool::ReleaseRetained();
  }
};

TEST_F(PoolTest, MissThenHitWithinArena) {
  ArenaGuard arena;
  {
    Matrix m(4, 4);
    m.Fill(3.0f);
  }
  TensorPool::Stats after_first = arena.ScopeStats();
  EXPECT_EQ(after_first.pool_hits, 0u);
  EXPECT_GE(after_first.pool_misses, 1u);
  EXPECT_GE(TensorPool::ThreadStats().buffers_retained, 1u);
  {
    Matrix m(4, 4);  // same size class: served from the free list
  }
  TensorPool::Stats after_second = arena.ScopeStats();
  EXPECT_GE(after_second.pool_hits, 1u);
  EXPECT_EQ(after_second.pool_misses, after_first.pool_misses);
}

TEST_F(PoolTest, ReusedBufferIsZeroed) {
  ArenaGuard arena;
  {
    Matrix m(3, 5);
    m.Fill(42.0f);
  }
  Matrix fresh(3, 5);
  for (size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_EQ(fresh[i], 0.0f) << "recycled buffer not zeroed at " << i;
  }
}

TEST_F(PoolTest, SameSizeClassIsShared) {
  // 3x3 = 9 floats and 4x4 = 16 floats both land in the 16-float class.
  ArenaGuard arena;
  { Matrix m(4, 4); }
  TensorPool::Stats before = arena.ScopeStats();
  { Matrix m(3, 3); }
  EXPECT_EQ(arena.ScopeStats().pool_hits, before.pool_hits + 1);
}

TEST_F(PoolTest, RetentionPersistsAcrossGuards) {
  {
    ArenaGuard arena;
    Matrix m(8, 8);
  }
  // The buffer outlives the scope on the thread's free list...
  EXPECT_GE(TensorPool::ThreadStats().buffers_retained, 1u);
  EXPECT_GT(TensorPool::ThreadStats().bytes_retained, 0u);
  // ...so a later arena with the same shape profile starts warm.
  ArenaGuard arena;
  { Matrix m(8, 8); }
  EXPECT_GE(arena.ScopeStats().pool_hits, 1u);
  EXPECT_EQ(arena.ScopeStats().pool_misses, 0u);
}

TEST_F(PoolTest, NoPoolingOutsideArena) {
  ASSERT_FALSE(TensorPool::ArenaActive());
  { Matrix m(4, 4); }
  TensorPool::Stats stats = TensorPool::ThreadStats();
  EXPECT_EQ(stats.pool_hits, 0u);
  EXPECT_EQ(stats.pool_misses, 0u);
  EXPECT_GE(stats.unpooled_allocs, 1u);
  EXPECT_EQ(stats.buffers_retained, 0u);
}

TEST_F(PoolTest, ArenaActiveTracksNesting) {
  EXPECT_FALSE(TensorPool::ArenaActive());
  {
    ArenaGuard outer;
    EXPECT_TRUE(TensorPool::ArenaActive());
    {
      ArenaGuard inner;
      EXPECT_TRUE(TensorPool::ArenaActive());
    }
    EXPECT_TRUE(TensorPool::ArenaActive());
  }
  EXPECT_FALSE(TensorPool::ArenaActive());
}

TEST_F(PoolTest, ReleaseRetainedEmptiesFreeLists) {
  {
    ArenaGuard arena;
    Matrix a(4, 4);
    Matrix b(16, 16);
  }
  ASSERT_GE(TensorPool::ThreadStats().buffers_retained, 2u);
  TensorPool::ReleaseRetained();
  EXPECT_EQ(TensorPool::ThreadStats().buffers_retained, 0u);
  EXPECT_EQ(TensorPool::ThreadStats().bytes_retained, 0u);
}

TEST_F(PoolTest, DisabledPoolBypassesRecycling) {
  TensorPool::set_enabled(false);
  EXPECT_FALSE(TensorPool::enabled());
  ArenaGuard arena;
  { Matrix m(4, 4); }
  { Matrix m(4, 4); }
  TensorPool::Stats stats = arena.ScopeStats();
  EXPECT_EQ(stats.pool_hits, 0u);
  EXPECT_EQ(stats.pool_misses, 0u);
  EXPECT_GE(stats.unpooled_allocs, 2u);
  EXPECT_EQ(TensorPool::ThreadStats().buffers_retained, 0u);
}

TEST_F(PoolTest, MatrixEscapingArenaStaysValid) {
  Matrix escaped;
  {
    ArenaGuard arena;
    Matrix inside(6, 6);
    inside.Fill(7.0f);
    escaped = std::move(inside);
  }
  ASSERT_EQ(escaped.rows(), 6);
  for (size_t i = 0; i < escaped.size(); ++i) EXPECT_EQ(escaped[i], 7.0f);
  // Destroying it outside any arena goes to the heap, not a free list.
  const uint64_t retained = TensorPool::ThreadStats().buffers_retained;
  escaped = Matrix();
  EXPECT_EQ(TensorPool::ThreadStats().buffers_retained, retained);
}

TEST_F(PoolTest, CrossThreadFreeIsSafe) {
  // A Matrix pooled-allocated on one thread may be destroyed on another
  // (e.g. a parallel-eval result reduced on the main thread).
  Matrix made_on_worker;
  std::thread producer([&] {
    ArenaGuard arena;
    Matrix m(5, 7);
    m.Fill(1.5f);
    made_on_worker = std::move(m);
  });
  producer.join();
  EXPECT_EQ(made_on_worker.At(4, 6), 1.5f);
  made_on_worker = Matrix();  // freed on the main thread

  Matrix made_on_main;
  {
    ArenaGuard arena;
    Matrix m(5, 7);
    m.Fill(2.5f);
    made_on_main = std::move(m);
  }
  std::thread consumer([m = std::move(made_on_main)]() mutable {
    EXPECT_EQ(m.At(0, 0), 2.5f);
    m = Matrix();  // freed on the consumer thread, no arena there
  });
  consumer.join();
}

TEST_F(PoolTest, ThreadLocalStatsAreIsolated) {
  ArenaGuard arena;
  { Matrix m(4, 4); }
  const uint64_t main_misses = TensorPool::ThreadStats().pool_misses;
  std::thread worker([] {
    TensorPool::ResetThreadStats();
    ArenaGuard worker_arena;
    { Matrix m(4, 4); }
    EXPECT_GE(TensorPool::ThreadStats().pool_misses, 1u);
    TensorPool::ReleaseRetained();
  });
  worker.join();
  EXPECT_EQ(TensorPool::ThreadStats().pool_misses, main_misses);
}

TEST_F(PoolTest, AggregatedCountersFlushOnOutermostExit) {
  const TensorPool::ArenaCounters before =
      TensorPool::AggregatedArenaCounters();
  {
    ArenaGuard arena;
    { Matrix m(4, 4); }  // miss
    { Matrix m(4, 4); }  // hit
  }
  const TensorPool::ArenaCounters after =
      TensorPool::AggregatedArenaCounters();
  EXPECT_GE(after.hits, before.hits + 1);
  EXPECT_GE(after.misses, before.misses + 1);
}

TEST_F(PoolTest, MatrixCopyIsDeep) {
  ArenaGuard arena;
  Matrix a(2, 3);
  a.Fill(1.0f);
  Matrix b = a;
  b.At(0, 0) = 9.0f;
  EXPECT_EQ(a.At(0, 0), 1.0f);
  a = b;
  a.At(1, 2) = 5.0f;
  EXPECT_EQ(b.At(1, 2), 1.0f);
}

TEST_F(PoolTest, UninitHasShapeAndIsWritable) {
  ArenaGuard arena;
  Matrix m = Matrix::Uninit(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  m.Fill(2.0f);
  EXPECT_EQ(m.Sum(), 24.0f);
}

TEST_F(PoolTest, StorageHandlesEmpty) {
  Matrix empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.size(), 0u);
  Matrix copy = empty;           // deep copy of nothing
  Matrix moved = std::move(copy);
  EXPECT_TRUE(moved.empty());
  ArenaGuard arena;
  Matrix zero_rows(0, 5);
  EXPECT_EQ(zero_rows.size(), 0u);
}

}  // namespace
}  // namespace m2g
