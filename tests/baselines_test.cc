#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "baselines/deep_route.h"
#include "baselines/fdnet.h"
#include "baselines/graph2route.h"
#include "baselines/greedy.h"
#include "baselines/osquare.h"
#include "baselines/tsp.h"
#include "metrics/route_metrics.h"

namespace m2g::baselines {
namespace {

synth::DatasetSplits* SharedSplits() {
  static synth::DatasetSplits* splits = [] {
    synth::DataConfig dc;
    dc.seed = 505;
    dc.world.num_aois = 70;
    dc.world.num_districts = 3;
    dc.couriers.num_couriers = 6;
    dc.num_days = 6;
    return new synth::DatasetSplits(synth::BuildDataset(dc));
  }();
  return splits;
}

DeepBaselineConfig TinyDeepConfig(uint64_t seed) {
  DeepBaselineConfig c;
  c.hidden_dim = 16;
  c.lstm_hidden_dim = 16;
  c.courier_dim = 8;
  c.num_layers = 1;
  c.num_heads = 2;
  c.epochs = 2;
  c.max_samples_per_epoch = 40;
  c.seed = seed;
  c.time_head.hidden_dim = 16;
  c.time_head.epochs = 2;
  return c;
}

TEST(GreedyTest, TimeGreedySortsByDeadline) {
  const synth::Sample& s = SharedSplits()->train.samples.front();
  core::RtpPrediction pred = TimeGreedyPredict(s, HeuristicConfig{});
  ASSERT_TRUE(metrics::IsPermutation(pred.location_route,
                                     s.num_locations()));
  for (size_t j = 1; j < pred.location_route.size(); ++j) {
    EXPECT_LE(s.locations[pred.location_route[j - 1]].deadline_min,
              s.locations[pred.location_route[j]].deadline_min);
  }
}

TEST(GreedyTest, DistanceGreedyFirstPickIsNearest) {
  const synth::Sample& s = SharedSplits()->train.samples.front();
  core::RtpPrediction pred = DistanceGreedyPredict(s, HeuristicConfig{});
  ASSERT_TRUE(metrics::IsPermutation(pred.location_route,
                                     s.num_locations()));
  int nearest = 0;
  for (int i = 1; i < s.num_locations(); ++i) {
    if (s.locations[i].dist_from_courier_m <
        s.locations[nearest].dist_from_courier_m) {
      nearest = i;
    }
  }
  EXPECT_EQ(pred.location_route.front(), nearest);
}

TEST(GreedyTest, FixedSpeedTimesIncreaseAlongRoute) {
  const synth::Sample& s = SharedSplits()->train.samples.front();
  core::RtpPrediction pred = DistanceGreedyPredict(s, HeuristicConfig{});
  double prev = -1;
  for (int node : pred.location_route) {
    EXPECT_GE(pred.location_times_min[node], prev);
    prev = pred.location_times_min[node];
  }
}

TEST(TspTest, TwoOptNeverWorseThanNearestNeighbourChain) {
  // SolveOpenTsp starts from the NN tour and only applies improving
  // moves, so its path must never exceed a freshly built NN path.
  Rng rng(10);
  geo::LatLng start{30.25, 120.17};
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<geo::LatLng> pts;
    const int n = rng.UniformInt(4, 15);
    for (int i = 0; i < n; ++i) {
      pts.push_back(geo::OffsetMeters(start, rng.Uniform(-4000, 4000),
                                      rng.Uniform(-4000, 4000)));
    }
    std::vector<int> tsp = SolveOpenTsp(start, pts);
    // NN-only path for comparison.
    std::vector<bool> used(n, false);
    std::vector<int> nn;
    geo::LatLng pos = start;
    for (int step = 0; step < n; ++step) {
      int best = -1;
      double bd = 0;
      for (int i = 0; i < n; ++i) {
        if (used[i]) continue;
        const double d = geo::ApproxMeters(pos, pts[i]);
        if (best < 0 || d < bd) {
          best = i;
          bd = d;
        }
      }
      used[best] = true;
      nn.push_back(best);
      pos = pts[best];
    }
    EXPECT_LE(OpenPathMeters(start, pts, tsp) - 1e-6,
              OpenPathMeters(start, pts, nn));
    EXPECT_TRUE(metrics::IsPermutation(tsp, n));
  }
}

TEST(TspTest, SolvesCollinearInstanceOptimally) {
  geo::LatLng start{30.25, 120.17};
  std::vector<geo::LatLng> pts;
  // Points east of the start at 1km..5km, shuffled.
  std::vector<double> offsets = {3000, 1000, 5000, 2000, 4000};
  for (double e : offsets) pts.push_back(geo::OffsetMeters(start, e, 0));
  std::vector<int> order = SolveOpenTsp(start, pts);
  // Optimal open path visits in increasing distance: 1,3,0,4,2.
  std::vector<int> expected = {1, 3, 0, 4, 2};
  EXPECT_EQ(order, expected);
}

TEST(SeqFeaturesTest, CandidateFeatureDimsAndSameAoiFlag) {
  const synth::Sample& s = SharedSplits()->train.samples.front();
  auto f = CandidateFeatures(s, s.courier_pos, s.locations[0].aoi_id, 1,
                             s.num_locations(), 0);
  ASSERT_EQ(f.size(), static_cast<size_t>(kCandidateFeatureDim));
  EXPECT_FLOAT_EQ(f[3], 1.0f);  // candidate 0 is in the "current" AOI
  auto f2 = CandidateFeatures(s, s.courier_pos, -1, 0, s.num_locations(), 0);
  EXPECT_FLOAT_EQ(f2[3], 0.0f);
}

TEST(SeqFeaturesTest, TimeFeaturesFollowRouteOrder) {
  const synth::Sample& s = SharedSplits()->train.samples.front();
  Matrix f = TimeFeatures(s, s.route_label);
  // Position feature of the j-th visited node is (j+1)/20.
  for (int j = 0; j < s.num_locations(); ++j) {
    EXPECT_NEAR(f.At(s.route_label[j], 0), (j + 1) / 20.0f, 1e-6f);
  }
  // Cumulative distance is non-decreasing along the route.
  double prev = 0;
  for (int j = 0; j < s.num_locations(); ++j) {
    EXPECT_GE(f.At(s.route_label[j], 1), prev - 1e-6);
    prev = f.At(s.route_label[j], 1);
  }
}

TEST(OSquareTest, TrainsAndPredictsValidRoutes) {
  synth::Dataset small;
  for (int i = 0; i < std::min(60, SharedSplits()->train.size()); ++i) {
    small.samples.push_back(SharedSplits()->train.samples[i]);
  }
  OSquare::Config config;
  config.route_booster.num_rounds = 20;
  config.time_booster.num_rounds = 20;
  OSquare model(config);
  model.Fit(small);
  for (int i = 0; i < 5; ++i) {
    const synth::Sample& s = SharedSplits()->test.samples[i];
    core::RtpPrediction pred = model.Predict(s);
    EXPECT_TRUE(metrics::IsPermutation(pred.location_route,
                                       s.num_locations()));
    for (double t : pred.location_times_min) EXPECT_GE(t, 0.0);
  }
}

TEST(OSquareTest, BeatsRandomOrderOnRoute) {
  synth::Dataset small;
  for (int i = 0; i < std::min(120, SharedSplits()->train.size()); ++i) {
    small.samples.push_back(SharedSplits()->train.samples[i]);
  }
  OSquare model;
  model.Fit(small);
  double krc = 0;
  int count = 0;
  for (const synth::Sample& s : SharedSplits()->test.samples) {
    krc += metrics::KendallRankCorrelation(model.PredictRoute(s),
                                           s.route_label);
    ++count;
  }
  EXPECT_GT(krc / count, 0.15);  // clearly above random (0.0)
}

TEST(NormalizedAdjacencyTest, RowSumsBoundedAndSymmetric) {
  std::vector<bool> adj = {
      true, true, false,
      true, true, true,
      false, true, true};
  Matrix a = NormalizedAdjacency(adj, 3);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_FLOAT_EQ(a.At(i, j), a.At(j, i));
    }
  }
  // D^-1/2 A D^-1/2 of a symmetric adjacency has spectral radius <= 1;
  // cheap proxy: diagonal entries are 1/deg.
  EXPECT_NEAR(a.At(0, 0), 0.5f, 1e-6f);
  EXPECT_NEAR(a.At(1, 1), 1.0f / 3.0f, 1e-6f);
}

template <typename Net>
void SmokeTestDeepBaseline(uint64_t seed) {
  Net net(TinyDeepConfig(seed));
  synth::Dataset train, val;
  for (int i = 0; i < 40; ++i) {
    train.samples.push_back(SharedSplits()->train.samples[i]);
  }
  for (int i = 0; i < 10; ++i) {
    val.samples.push_back(SharedSplits()->val.samples[i]);
  }
  net.Fit(train, val);
  for (int i = 0; i < 5; ++i) {
    const synth::Sample& s = SharedSplits()->test.samples[i];
    core::RtpPrediction pred = net.Predict(s);
    EXPECT_TRUE(metrics::IsPermutation(pred.location_route,
                                       s.num_locations()));
    ASSERT_EQ(pred.location_times_min.size(),
              static_cast<size_t>(s.num_locations()));
    for (double t : pred.location_times_min) {
      EXPECT_TRUE(std::isfinite(t));
      EXPECT_GE(t, 0.0);
    }
  }
}

TEST(DeepRouteTest, SmokeTrainPredict) {
  SmokeTestDeepBaseline<DeepRoute>(1);
}

TEST(FdnetTest, SmokeTrainPredict) { SmokeTestDeepBaseline<Fdnet>(2); }

TEST(Graph2RouteTest, SmokeTrainPredict) {
  SmokeTestDeepBaseline<Graph2Route>(3);
}

TEST(DeepRouteTest, EncoderIsShapeCorrect) {
  DeepRoute net(TinyDeepConfig(4));
  const synth::Sample& s = SharedSplits()->train.samples.front();
  Tensor h = net.EncodeSample(s);
  EXPECT_EQ(h.rows(), s.num_locations());
  EXPECT_EQ(h.cols(), 16);
}

TEST(Graph2RouteTest, EncoderUsesAdjacency) {
  // Same sample, but the GCN must produce different encodings for
  // different graphs: compare output against a perturbed-position clone.
  Graph2Route net(TinyDeepConfig(5));
  synth::Sample s = SharedSplits()->train.samples.front();
  Tensor h1 = net.EncodeSample(s);
  synth::Sample s2 = s;
  for (auto& task : s2.locations) {
    task.pos = geo::OffsetMeters(task.pos, 2500.0, -1500.0);
    task.dist_from_courier_m =
        geo::ApproxMeters(s2.courier_pos, task.pos);
  }
  Tensor h2 = net.EncodeSample(s2);
  float diff = 0;
  for (size_t i = 0; i < h1.value().size(); ++i) {
    diff += std::fabs(h1.value()[i] - h2.value()[i]);
  }
  EXPECT_GT(diff, 1e-4f);
}

}  // namespace
}  // namespace m2g::baselines
