#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace m2g {
namespace {

TEST(LoggingTest, ParseLogLevelAcceptsKnownNames) {
  LogLevel level = LogLevel::kInfo;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("warning", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("warn", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_EQ(level, LogLevel::kError);  // untouched on failure
}

/// Captures every routed line for assertions.
class CaptureSink : public LogSink {
 public:
  void Write(LogLevel level, std::string_view line) override {
    levels.push_back(level);
    lines.emplace_back(line);
  }

  std::vector<LogLevel> levels;
  std::vector<std::string> lines;
};

TEST(LoggingTest, SinkReceivesFormattedLinesAndHonorsLevel) {
  CaptureSink sink;
  SetLogSink(&sink);
  const LogLevel prior = GetLogLevel();
  SetLogLevel(LogLevel::kWarning);
  M2G_LOG(Info) << "dropped below the level";
  M2G_LOG(Warning) << "kept " << 42;
  SetLogLevel(prior);
  SetLogSink(nullptr);
  EXPECT_EQ(GetLogSink(), nullptr);
  ASSERT_EQ(sink.lines.size(), 1u);
  EXPECT_EQ(sink.levels[0], LogLevel::kWarning);
  // "[WARN common_test.cc:NN] kept 42" — no trailing newline.
  EXPECT_NE(sink.lines[0].find("[WARN common_test.cc:"),
            std::string::npos);
  EXPECT_NE(sink.lines[0].find("kept 42"), std::string::npos);
  EXPECT_EQ(sink.lines[0].back(), '2');
}

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad k");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = [] { return Status::NotFound("x"); };
  auto wrapper = [&]() -> Status {
    M2G_RETURN_IF_ERROR(fails());
    return Status::Ok();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kNotFound);
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> good(42);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  Result<int> bad(Status::IoError("disk"));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kIoError);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.UniformInt(3, 7));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 3);
  EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(RngTest, GaussianMomentsRoughlyCorrect) {
  Rng rng(5);
  double sum = 0, sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(9);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, SampleIndexRespectsWeights) {
  Rng rng(13);
  std::vector<double> w = {0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 20000;
  for (int i = 0; i < n; ++i) counts[rng.SampleIndex(w)]++;
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.25);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v = {0, 1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.Shuffle(&v);
  std::set<int> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), orig.size());
}

TEST(RngTest, ForkGivesIndependentStream) {
  Rng a(21);
  Rng child = a.Fork();
  // The fork must not replay the parent stream.
  EXPECT_NE(child.NextUint64(), a.NextUint64());
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
}

TEST(StringUtilTest, StrSplitKeepsEmptyFields) {
  auto parts = StrSplit("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(StringUtilTest, StrJoinRoundTrip) {
  std::vector<std::string> parts = {"a", "b", "c"};
  EXPECT_EQ(StrJoin(parts, "/"), "a/b/c");
}

TEST(StringUtilTest, FixedCellPadsWidth) {
  EXPECT_EQ(FixedCell(3.14159, 8, 2), "    3.14");
}

TEST(BenchJsonTest, StringEscapesQuotesBackslashesAndControlChars) {
  using bench::JsonValue;
  EXPECT_EQ(JsonValue::String("plain").Dump(), "\"plain\"");
  EXPECT_EQ(JsonValue::String("a\"b").Dump(), "\"a\\\"b\"");
  EXPECT_EQ(JsonValue::String("a\\b").Dump(), "\"a\\\\b\"");
  EXPECT_EQ(JsonValue::String("a\nb\tc\rd").Dump(), "\"a\\nb\\tc\\rd\"");
  EXPECT_EQ(JsonValue::String("\b\f").Dump(), "\"\\b\\f\"");
  // Remaining control characters take the \u00XX form (RFC 8259), and
  // bytes >= 0x20 — including non-ASCII — pass through untouched.
  EXPECT_EQ(JsonValue::String(std::string("\x01\x1f")).Dump(),
            "\"\\u0001\\u001f\"");
  EXPECT_EQ(JsonValue::String("caf\xc3\xa9").Dump(), "\"caf\xc3\xa9\"");
}

TEST(BenchJsonTest, ObjectAndArrayComposeWithEscapedKeys) {
  using bench::JsonValue;
  JsonValue doc = JsonValue::Object()
                      .Set("k\n1", JsonValue::Int(2))
                      .Set("arr", JsonValue::Array()
                                      .Push(JsonValue::Bool(true))
                                      .Push(JsonValue::Number(0.5)));
  EXPECT_EQ(doc.Dump(), "{\"k\\n1\":2,\"arr\":[true,0.5]}");
}

TEST(BenchJsonTest, NonFiniteNumbersSerializeAsNull) {
  using bench::JsonValue;
  // RFC 8259 has no NaN/Infinity literals; a bare `nan` would corrupt
  // the BENCH_*.json artifacts downstream tooling parses.
  EXPECT_EQ(JsonValue::Number(std::nan("")).Dump(), "null");
  EXPECT_EQ(JsonValue::Number(HUGE_VAL).Dump(), "null");
  EXPECT_EQ(JsonValue::Number(-HUGE_VAL).Dump(), "null");
  EXPECT_EQ(JsonValue::Number(1.5).Dump(), "1.5");
  JsonValue doc =
      JsonValue::Object().Set("arr", JsonValue::Array()
                                         .Push(JsonValue::Number(0.25))
                                         .Push(JsonValue::Number(
                                             std::nan(""))));
  EXPECT_EQ(doc.Dump(), "{\"arr\":[0.25,null]}");
}

}  // namespace
}  // namespace m2g
