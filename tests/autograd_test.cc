#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "tensor/ops.h"

namespace m2g {
namespace {

/// Numeric-vs-analytic gradient check. `fn` must rebuild the scalar loss
/// from scratch on every call (define-by-run).
void CheckGradients(const Tensor& param,
                    const std::function<Tensor()>& fn,
                    float eps = 1e-2f, float tol = 2e-2f) {
  Tensor loss = fn();
  param.ZeroGrad();
  loss.Backward();
  Matrix analytic = param.grad();
  ASSERT_TRUE(analytic.SameShape(param.value()));

  Matrix& w = param.node()->value;
  for (size_t i = 0; i < w.size(); ++i) {
    const float orig = w[i];
    w[i] = orig + eps;
    const float up = fn().item();
    w[i] = orig - eps;
    const float down = fn().item();
    w[i] = orig;
    const float numeric = (up - down) / (2 * eps);
    const float scale =
        std::max({1.0f, std::fabs(numeric), std::fabs(analytic[i])});
    EXPECT_NEAR(analytic[i], numeric, tol * scale)
        << "at flat index " << i;
  }
}

Tensor RandomParam(int rows, int cols, uint64_t seed) {
  Rng rng(seed);
  return Tensor::Parameter(Matrix::Random(rows, cols, -1.0f, 1.0f, &rng));
}

TEST(AutogradTest, AddAndSum) {
  Tensor a = RandomParam(2, 3, 1);
  Tensor b = RandomParam(2, 3, 2);
  CheckGradients(a, [&] { return Sum(Add(a, b)); });
  CheckGradients(b, [&] { return Sum(Add(a, b)); });
}

TEST(AutogradTest, SubMulChain) {
  Tensor a = RandomParam(2, 2, 3);
  Tensor b = RandomParam(2, 2, 4);
  auto fn = [&] { return Sum(Mul(Sub(a, b), Add(a, b))); };
  CheckGradients(a, fn);
  CheckGradients(b, fn);
}

TEST(AutogradTest, MatMulBothSides) {
  Tensor a = RandomParam(3, 4, 5);
  Tensor b = RandomParam(4, 2, 6);
  auto fn = [&] { return Sum(MatMul(a, b)); };
  CheckGradients(a, fn);
  CheckGradients(b, fn);
}

TEST(AutogradTest, MatMulChainWithActivation) {
  Tensor a = RandomParam(2, 3, 7);
  Tensor b = RandomParam(3, 3, 8);
  auto fn = [&] { return Sum(Tanh(MatMul(a, b))); };
  CheckGradients(a, fn);
  CheckGradients(b, fn);
}

TEST(AutogradTest, AddRowBroadcast) {
  Tensor a = RandomParam(4, 3, 9);
  Tensor bias = RandomParam(1, 3, 10);
  auto fn = [&] { return Sum(Sigmoid(AddRowBroadcast(a, bias))); };
  CheckGradients(a, fn);
  CheckGradients(bias, fn);
}

TEST(AutogradTest, ScaleNegAddScalar) {
  Tensor a = RandomParam(2, 2, 11);
  CheckGradients(a, [&] { return Sum(AddScalar(Neg(Scale(a, 2.5f)), 1)); });
}

TEST(AutogradTest, ExpLog) {
  Rng rng(12);
  // Keep values positive for Log.
  Tensor a =
      Tensor::Parameter(Matrix::Random(2, 3, 0.5f, 2.0f, &rng));
  CheckGradients(a, [&] { return Sum(Log(Exp(a))); });
  CheckGradients(a, [&] { return Sum(Log(a)); });
}

TEST(AutogradTest, AbsAwayFromKink) {
  Rng rng(13);
  Matrix init = Matrix::Random(2, 3, 0.5f, 2.0f, &rng);
  init.At(1, 1) = -1.5f;
  Tensor a = Tensor::Parameter(init);
  CheckGradients(a, [&] { return Sum(Abs(a)); });
}

TEST(AutogradTest, ActivationsGradcheck) {
  Tensor a = RandomParam(3, 3, 14);
  CheckGradients(a, [&] { return Sum(Sigmoid(a)); });
  CheckGradients(a, [&] { return Sum(Tanh(a)); });
  CheckGradients(a, [&] { return Sum(LeakyRelu(a, 0.2f)); });
}

TEST(AutogradTest, ConcatColsSplitsGradient) {
  Tensor a = RandomParam(2, 2, 15);
  Tensor b = RandomParam(2, 3, 16);
  auto fn = [&] { return Sum(Tanh(ConcatCols(a, b))); };
  CheckGradients(a, fn);
  CheckGradients(b, fn);
}

TEST(AutogradTest, ConcatRowsSplitsGradient) {
  Tensor a = RandomParam(1, 3, 17);
  Tensor b = RandomParam(2, 3, 18);
  auto fn = [&] { return Sum(Sigmoid(ConcatRows({a, b}))); };
  CheckGradients(a, fn);
  CheckGradients(b, fn);
}

TEST(AutogradTest, SliceColsAndRows) {
  Tensor a = RandomParam(3, 4, 19);
  CheckGradients(a, [&] { return Sum(Tanh(SliceCols(a, 1, 2))); });
  CheckGradients(a, [&] { return Sum(Tanh(SliceRows(a, 0, 2))); });
  CheckGradients(a, [&] { return Sum(Row(a, 2)); });
}

TEST(AutogradTest, GatherRowsWithDuplicates) {
  Tensor a = RandomParam(3, 2, 20);
  std::vector<int> idx = {0, 2, 0, 1};
  CheckGradients(a, [&] { return Sum(Tanh(GatherRows(a, idx))); });
}

TEST(AutogradTest, BroadcastRows) {
  Tensor a = RandomParam(1, 3, 21);
  CheckGradients(a, [&] { return Sum(Tanh(BroadcastRows(a, 4))); });
}

TEST(AutogradTest, SumRowsMeanTranspose) {
  Tensor a = RandomParam(3, 4, 22);
  CheckGradients(a, [&] { return Sum(Tanh(SumRows(a))); });
  CheckGradients(a, [&] { return Mean(Mul(a, a)); });
  CheckGradients(a, [&] { return Sum(Tanh(Transpose(a))); });
}

TEST(AutogradTest, AddScalarTensor) {
  Tensor a = RandomParam(2, 3, 23);
  Tensor s = RandomParam(1, 1, 24);
  auto fn = [&] { return Sum(Tanh(AddScalarTensor(a, s))); };
  CheckGradients(a, fn);
  CheckGradients(s, fn);
}

TEST(AutogradTest, MaskedSoftmaxRowSumsToOne) {
  Tensor logits = RandomParam(1, 5, 25);
  std::vector<bool> mask = {true, false, true, true, false};
  Tensor p = MaskedSoftmaxRow(logits, mask);
  float total = 0;
  for (int i = 0; i < 5; ++i) {
    if (!mask[i]) {
      EXPECT_EQ(p.value()[i], 0.0f);
    }
    total += p.value()[i];
  }
  EXPECT_NEAR(total, 1.0f, 1e-5f);
}

TEST(AutogradTest, MaskedSoftmaxGradcheck) {
  Tensor logits = RandomParam(1, 4, 26);
  std::vector<bool> mask = {true, true, false, true};
  Tensor weights = Tensor::Constant(Matrix(1, 4, {0.3f, -1.2f, 9.f, 0.7f}));
  CheckGradients(logits, [&] {
    return Sum(Mul(MaskedSoftmaxRow(logits, mask), weights));
  });
}

TEST(AutogradTest, MaskedCrossEntropyMatchesManual) {
  Tensor logits = Tensor::Parameter(Matrix(1, 3, {1.0f, 2.0f, 3.0f}));
  std::vector<bool> mask = {true, true, true};
  Tensor loss = MaskedCrossEntropy(logits, 1, mask);
  // -log softmax(2 | {1,2,3}).
  const double z = std::exp(1.0) + std::exp(2.0) + std::exp(3.0);
  EXPECT_NEAR(loss.item(), -std::log(std::exp(2.0) / z), 1e-5);
}

TEST(AutogradTest, MaskedCrossEntropyGradcheck) {
  Tensor logits = RandomParam(1, 5, 27);
  std::vector<bool> mask = {true, false, true, true, true};
  CheckGradients(logits,
                 [&] { return MaskedCrossEntropy(logits, 3, mask); });
}

TEST(AutogradTest, MaskedCrossEntropyIgnoresMaskedLogits) {
  Matrix init(1, 3, {1.0f, 50.0f, 2.0f});
  Tensor logits = Tensor::Parameter(init);
  std::vector<bool> mask = {true, false, true};
  Tensor loss = MaskedCrossEntropy(logits, 2, mask);
  const double z = std::exp(1.0) + std::exp(2.0);
  EXPECT_NEAR(loss.item(), -std::log(std::exp(2.0) / z), 1e-4);
}

TEST(AutogradTest, L1LossValueAndGrad) {
  Tensor pred = Tensor::Parameter(Matrix(1, 1, {2.5f}));
  Tensor loss = L1Loss(pred, 1.0f);
  EXPECT_FLOAT_EQ(loss.item(), 1.5f);
  loss.Backward();
  EXPECT_FLOAT_EQ(pred.grad()[0], 1.0f);
}

TEST(AutogradTest, GradAccumulatesAcrossBackwardCalls) {
  Tensor a = Tensor::Parameter(Matrix(1, 1, {3.0f}));
  Sum(Scale(a, 2.0f)).Backward();
  Sum(Scale(a, 2.0f)).Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 4.0f);
  a.ZeroGrad();
  EXPECT_FLOAT_EQ(a.grad()[0], 0.0f);
}

TEST(AutogradTest, DiamondDependencyCountedOnce) {
  // loss = sum((a + a) * a) = 2 * sum(a^2); d/da = 4a.
  Tensor a = Tensor::Parameter(Matrix(1, 1, {3.0f}));
  Sum(Mul(Add(a, a), a)).Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 12.0f);
}

TEST(AutogradTest, NoGradIntoConstants) {
  Tensor c = Tensor::Constant(Matrix(1, 2, {1.0f, 2.0f}));
  Tensor a = RandomParam(1, 2, 28);
  Sum(Mul(a, c)).Backward();
  // Constant's grad buffer is never allocated.
  EXPECT_FALSE(c.grad().SameShape(c.value()));
}

TEST(AutogradTest, ArgmaxMaskedRow) {
  Matrix row(1, 4, {0.5f, 9.0f, 3.0f, 8.0f});
  EXPECT_EQ(ArgmaxMaskedRow(row, {true, true, true, true}), 1);
  EXPECT_EQ(ArgmaxMaskedRow(row, {true, false, true, true}), 3);
  EXPECT_EQ(ArgmaxMaskedRow(row, {true, false, true, false}), 2);
}

// Property-style sweep: random composite expressions must gradcheck.
class CompositeGradcheck : public ::testing::TestWithParam<int> {};

TEST_P(CompositeGradcheck, RandomExpression) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  Tensor w1 = RandomParam(3, 3, seed * 31 + 1);
  Tensor w2 = RandomParam(3, 2, seed * 31 + 2);
  Tensor x = Tensor::Constant(
      [&] {
        Rng r(seed * 31 + 3);
        return Matrix::Random(2, 3, -1, 1, &r);
      }());
  auto fn = [&] {
    Tensor h = Tanh(MatMul(x, w1));
    Tensor y = Sigmoid(MatMul(h, w2));
    return Mean(Mul(y, y));
  };
  CheckGradients(w1, fn);
  CheckGradients(w2, fn);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompositeGradcheck,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace m2g
