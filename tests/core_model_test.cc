#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "core/trainer.h"
#include "metrics/report.h"

namespace m2g::core {
namespace {

synth::DataConfig TinyDataConfig() {
  synth::DataConfig dc;
  dc.seed = 404;
  dc.world.num_aois = 60;
  dc.world.num_districts = 3;
  dc.couriers.num_couriers = 6;
  dc.num_days = 6;
  return dc;
}

ModelConfig TinyModelConfig() {
  ModelConfig c;
  c.seed = 1;
  c.hidden_dim = 16;
  c.num_heads = 2;
  c.num_layers = 1;
  c.aoi_id_embed_dim = 4;
  c.aoi_type_embed_dim = 2;
  c.lstm_hidden_dim = 16;
  c.courier_dim = 8;
  c.pos_enc_dim = 4;
  return c;
}

class ModelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    splits_ = new synth::DatasetSplits(synth::BuildDataset(TinyDataConfig()));
    ASSERT_GT(splits_->train.size(), 20);
  }
  static void TearDownTestSuite() {
    delete splits_;
    splits_ = nullptr;
  }
  static synth::DatasetSplits* splits_;
};

synth::DatasetSplits* ModelTest::splits_ = nullptr;

TEST_F(ModelTest, LossIsFiniteAndBreakdownConsistentAtInit) {
  M2g4Rtp model(TinyModelConfig());
  LossBreakdown bd;
  Tensor loss = model.ComputeLoss(splits_->train.samples.front(), &bd);
  EXPECT_TRUE(std::isfinite(loss.item()));
  EXPECT_GT(bd.location_route, 0.0f);
  EXPECT_GT(bd.aoi_route, 0.0f);
  EXPECT_GT(bd.location_time, 0.0f);
  // At init sigmas are 1, so Eq. 41 reduces to the weighted sum.
  EXPECT_NEAR(bd.total,
              0.5f * bd.aoi_route + 0.5f * bd.location_route +
                  bd.aoi_time + bd.location_time,
              1e-3f);
}

TEST_F(ModelTest, PredictionsAreValidPermutationsWithTimes) {
  M2g4Rtp model(TinyModelConfig());
  for (int i = 0; i < 10 && i < splits_->train.size(); ++i) {
    const synth::Sample& s = splits_->train.samples[i];
    RtpPrediction pred = model.Predict(s);
    EXPECT_TRUE(
        metrics::IsPermutation(pred.location_route, s.num_locations()));
    EXPECT_TRUE(metrics::IsPermutation(pred.aoi_route, s.num_aois()));
    ASSERT_EQ(static_cast<int>(pred.location_times_min.size()),
              s.num_locations());
    for (double t : pred.location_times_min) {
      EXPECT_GE(t, 0.0);
      EXPECT_TRUE(std::isfinite(t));
    }
  }
}

TEST_F(ModelTest, GradientsReachEveryParameter) {
  M2g4Rtp model(TinyModelConfig());
  model.ComputeLoss(splits_->train.samples.front()).Backward();
  int touched = 0, total = 0;
  for (const auto& [name, p] : model.NamedParameters()) {
    ++total;
    if (p.grad().SameShape(p.value()) && p.grad().MaxAbs() > 0) ++touched;
  }
  // A handful of parameters can be legitimately untouched by one sample
  // (unused embedding rows), but the vast majority must receive gradient.
  EXPECT_GT(touched, total * 3 / 4);
}

TEST_F(ModelTest, ShortTrainingReducesLoss) {
  M2g4Rtp model(TinyModelConfig());
  TrainConfig tc;
  tc.epochs = 3;
  tc.early_stop_patience = 0;
  tc.max_samples_per_epoch = 60;
  Trainer trainer(&model, tc);
  auto history = trainer.Fit(splits_->train, splits_->val);
  ASSERT_GE(history.size(), 2u);
  EXPECT_LT(history.back().train_loss, history.front().train_loss);
}

TEST_F(ModelTest, TrainingBeatsUntrainedOnRouteAndTime) {
  ModelConfig mc = TinyModelConfig();
  M2g4Rtp untrained(mc);
  M2g4Rtp trained(mc);
  TrainConfig tc;
  tc.epochs = 4;
  tc.max_samples_per_epoch = 120;
  Trainer trainer(&trained, tc);
  trainer.Fit(splits_->train, splits_->val);

  auto eval = [&](const M2g4Rtp& model) {
    metrics::BucketedEvaluator evaluator;
    for (const synth::Sample& s : splits_->test.samples) {
      RtpPrediction pred = model.Predict(s);
      evaluator.AddSample(pred.location_route, s.route_label,
                          pred.location_times_min, s.time_label_min);
    }
    return evaluator.Get(metrics::Bucket::kAll);
  };
  auto before = eval(untrained);
  auto after = eval(trained);
  EXPECT_GT(after.krc, before.krc);
  EXPECT_LT(after.mae, before.mae);
}

TEST_F(ModelTest, SaveLoadRoundTripPreservesPredictions) {
  ModelConfig mc = TinyModelConfig();
  M2g4Rtp a(mc);
  const std::string path = ::testing::TempDir() + "/m2g_model.bin";
  ASSERT_TRUE(a.Save(path).ok());
  ModelConfig mc2 = mc;
  mc2.seed = 999;  // different init, then overwritten by Load
  M2g4Rtp b(mc2);
  ASSERT_TRUE(b.Load(path).ok());
  const synth::Sample& s = splits_->test.samples.front();
  RtpPrediction pa = a.Predict(s);
  RtpPrediction pb = b.Predict(s);
  EXPECT_EQ(pa.location_route, pb.location_route);
  for (size_t i = 0; i < pa.location_times_min.size(); ++i) {
    EXPECT_FLOAT_EQ(static_cast<float>(pa.location_times_min[i]),
                    static_cast<float>(pb.location_times_min[i]));
  }
  std::remove(path.c_str());
}

TEST_F(ModelTest, AblationVariantsRunEndToEnd) {
  for (int variant = 0; variant < 4; ++variant) {
    ModelConfig mc = TinyModelConfig();
    switch (variant) {
      case 0:
        mc.two_step = true;
        break;
      case 1:
        mc.use_aoi_level = false;
        break;
      case 2:
        mc.use_graph_encoder = false;
        break;
      case 3:
        mc.use_uncertainty_weighting = false;
        break;
    }
    M2g4Rtp model(mc);
    const synth::Sample& s = splits_->train.samples.front();
    Tensor loss = model.ComputeLoss(s);
    EXPECT_TRUE(std::isfinite(loss.item())) << "variant " << variant;
    loss.Backward();
    RtpPrediction pred = model.Predict(s);
    EXPECT_TRUE(
        metrics::IsPermutation(pred.location_route, s.num_locations()))
        << "variant " << variant;
    if (!mc.use_aoi_level) {
      EXPECT_TRUE(pred.aoi_route.empty());
    }
  }
}

TEST_F(ModelTest, TwoStepBlocksTimeGradientIntoEncoder) {
  ModelConfig mc = TinyModelConfig();
  mc.two_step = true;
  // Zero out the route losses' influence by checking a model where only
  // time losses backpropagate: encoder params must stay untouched.
  M2g4Rtp model(mc);
  const synth::Sample& s = splits_->train.samples.front();
  // Recompute loss and check that SortLSTM params get grad while the
  // route losses also flow; instead directly verify: time-only backward.
  // We approximate by checking full loss works and two_step model still
  // trains the time heads (grad exists on SortLSTM parameters).
  model.ComputeLoss(s).Backward();
  bool sort_lstm_touched = false;
  for (const auto& [name, p] : model.NamedParameters()) {
    if (name.find("sort_lstm") != std::string::npos &&
        p.grad().SameShape(p.value()) && p.grad().MaxAbs() > 0) {
      sort_lstm_touched = true;
    }
  }
  EXPECT_TRUE(sort_lstm_touched);
}

TEST_F(ModelTest, DeterministicTrainingForFixedSeeds) {
  auto run = [&] {
    M2g4Rtp model(TinyModelConfig());
    TrainConfig tc;
    tc.epochs = 1;
    tc.max_samples_per_epoch = 30;
    Trainer trainer(&model, tc);
    auto history = trainer.Fit(splits_->train, splits_->val);
    return history.front().train_loss;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace m2g::core
