#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

#include "eval/ablation.h"
#include "eval/case_study.h"
#include "eval/latency.h"

namespace m2g::eval {
namespace {

synth::DatasetSplits* SharedSplits() {
  static synth::DatasetSplits* splits = [] {
    synth::DataConfig dc;
    dc.seed = 606;
    dc.world.num_aois = 70;
    dc.world.num_districts = 3;
    dc.couriers.num_couriers = 6;
    dc.num_days = 6;
    return new synth::DatasetSplits(synth::BuildDataset(dc));
  }();
  return splits;
}

EvalScale QuickScale() {
  EvalScale scale;
  scale.epochs = 1;
  scale.max_samples_per_epoch = 20;
  scale.num_seeds = 1;
  return scale;
}

TEST(RtpModelTest, FactoryCoversAllMethodNames) {
  for (const std::string& name : AllMethodNames()) {
    auto model = CreateModel(name, QuickScale());
    ASSERT_NE(model, nullptr) << name;
    EXPECT_EQ(model->name(), name);
  }
}

TEST(RtpModelTest, FactoryCoversAblationVariants) {
  for (const std::string& name : AblationVariantNames()) {
    auto model = CreateModel(name, QuickScale());
    ASSERT_NE(model, nullptr) << name;
  }
}

TEST(RtpModelTest, HeuristicsPredictWithoutFit) {
  for (const std::string& name :
       {std::string("Distance-Greedy"), std::string("Time-Greedy"),
        std::string("OR-Tools")}) {
    auto model = CreateModel(name, QuickScale());
    const synth::Sample& s = SharedSplits()->test.samples.front();
    core::RtpPrediction pred = model->Predict(s);
    EXPECT_EQ(static_cast<int>(pred.location_route.size()),
              s.num_locations());
  }
}

TEST(ComparisonTest, RunsHeuristicSubsetAndBucketsFill) {
  ComparisonResult result = RunComparison(
      *SharedSplits(), {"Distance-Greedy", "Time-Greedy", "OR-Tools"},
      QuickScale());
  ASSERT_EQ(result.methods.size(), 3u);
  for (const MethodResult& m : result.methods) {
    EXPECT_GT(m.buckets[2].samples, 0);
    EXPECT_EQ(m.buckets[0].samples + m.buckets[1].samples,
              m.buckets[2].samples);
    EXPECT_GE(m.buckets[2].hr3, 0.0);
    EXPECT_LE(m.buckets[2].hr3, 100.0);
  }
  EXPECT_NE(result.Find("OR-Tools"), nullptr);
  EXPECT_EQ(result.Find("nope"), nullptr);
}

TEST(ComparisonTest, SaveLoadRoundTrip) {
  ComparisonResult result =
      RunComparison(*SharedSplits(), {"Distance-Greedy"}, QuickScale());
  const std::string path = ::testing::TempDir() + "/cmp_cache.txt";
  ASSERT_TRUE(SaveComparison(result, path).ok());
  auto loaded = LoadComparison(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().methods.size(), 1u);
  const MethodResult& a = result.methods[0];
  const MethodResult& b = loaded.value().methods[0];
  EXPECT_EQ(a.method, b.method);
  for (int i = 0; i < metrics::kNumBuckets; ++i) {
    EXPECT_EQ(a.buckets[i].samples, b.buckets[i].samples);
    EXPECT_NEAR(a.buckets[i].krc, b.buckets[i].krc, 1e-5);
    EXPECT_NEAR(a.buckets[i].rmse, b.buckets[i].rmse, 1e-4);
  }
  std::remove(path.c_str());
}

TEST(ComparisonTest, RunOrLoadUsesCache) {
  const std::string path = ::testing::TempDir() + "/cmp_cache2.txt";
  std::remove(path.c_str());
  ComparisonResult first = RunOrLoadComparison(
      *SharedSplits(), {"Time-Greedy"}, QuickScale(), path);
  // Second call must load (same values even if it were stochastic).
  ComparisonResult second = RunOrLoadComparison(
      *SharedSplits(), {"Time-Greedy"}, QuickScale(), path);
  EXPECT_NEAR(first.methods[0].buckets[2].mae,
              second.methods[0].buckets[2].mae, 1e-6);
  // Cache without the requested method forces a re-run.
  ComparisonResult third = RunOrLoadComparison(
      *SharedSplits(), {"Distance-Greedy"}, QuickScale(), path);
  EXPECT_NE(third.Find("Distance-Greedy"), nullptr);
  std::remove(path.c_str());
}

TEST(LoadComparisonTest, MissingFileIsNotFound) {
  auto result = LoadComparison("/nonexistent/cache.txt");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(LatencyTest, MeasuresHeuristics) {
  auto model = CreateModel("Distance-Greedy", QuickScale());
  const int count = std::min<int>(20, SharedSplits()->test.size());
  std::vector<synth::Sample> samples(
      SharedSplits()->test.samples.begin(),
      SharedSplits()->test.samples.begin() + count);
  LatencyResult r = MeasureLatency(*model, samples);
  EXPECT_EQ(r.method, "Distance-Greedy");
  EXPECT_GT(r.mean_ms, 0.0);
  EXPECT_LE(r.p50_ms, r.p99_ms);
  EXPECT_EQ(r.complexity, "O(N log N)");
}

TEST(LatencyTest, ComplexityTableReflectsDecodeKeyCache) {
  // Decode contributes N^2 F (cached keys, O(N F) scoring per step)
  // instead of the naive N^2 F^2 recompute.
  EXPECT_EQ(ComplexityFormula("M2G4RTP"),
            "O(N F^2 + E F^2 + N^2 F + A^2 F)");
  EXPECT_EQ(ComplexityFormula("Graph2Route"),
            "O(N F^2 + E F^2 + N^2 F)");
  EXPECT_EQ(ComplexityFormula("OSquare"), "O(t d F N)");
  EXPECT_EQ(ComplexityFormula("unknown-method"), "?");
}

TEST(CaseStudyTest, PicksMultiAoiSamples) {
  std::vector<int> picks =
      PickCaseStudySamples(SharedSplits()->test, 2, 2, 5);
  for (int idx : picks) {
    const synth::Sample& s = SharedSplits()->test.samples[idx];
    EXPECT_GE(s.num_aois(), 2);
    EXPECT_GE(s.num_locations(), 5);
  }
}

TEST(CaseStudyTest, RenderComputesPerSampleErrors) {
  auto model = CreateModel("Time-Greedy", QuickScale());
  const synth::Sample& s = SharedSplits()->test.samples.front();
  CaseRendering r = RenderCase(*model, s);
  EXPECT_EQ(r.method, "Time-Greedy");
  EXPECT_GE(r.rmse, r.mae * 0.999);  // RMSE >= MAE
  EXPECT_GE(r.aoi_bounces, 0);
}

TEST(AblationTest, VariantListMatchesFigure5) {
  auto names = AblationVariantNames();
  ASSERT_EQ(names.size(), 5u);
  EXPECT_EQ(names.back(), "M2G4RTP");
}

}  // namespace
}  // namespace m2g::eval
