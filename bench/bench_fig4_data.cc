// Reproduces Figure 4 (data distribution) and the §V-A transfer-mode
// analysis on the synthetic dataset.

#include <cstdio>

#include "bench/bench_util.h"
#include "synth/analysis.h"

namespace {

void PrintHistogram(const char* title, const std::vector<int>& hist,
                    int bucket_width, const char* unit) {
  std::printf("\n%s\n", title);
  int max_count = 1;
  for (int c : hist) max_count = std::max(max_count, c);
  for (size_t b = 0; b < hist.size(); ++b) {
    const int lo = static_cast<int>(b) * bucket_width;
    if (bucket_width > 1) {
      std::printf("  %3d-%3d %-3s |", lo, lo + bucket_width, unit);
    } else {
      std::printf("  %7zu %-3s |", b, unit);
    }
    const int width = 50 * hist[b] / max_count;
    for (int i = 0; i < width; ++i) std::printf("#");
    std::printf(" %d\n", hist[b]);
  }
}

}  // namespace

int main() {
  using namespace m2g;
  const synth::DataConfig config = bench::StandardDataConfig();

  std::printf("=== Figure 4: Data Distribution (synthetic Hangzhou) ===\n");
  synth::World world(config.world, {});
  std::vector<synth::CourierProfile> couriers;
  std::vector<synth::TripRecord> trips =
      synth::SimulateAllTrips(config, &world, &couriers);
  synth::DatasetSplits splits = synth::BuildDataset(config);
  synth::Dataset all;
  for (const synth::Dataset* ds :
       {&splits.train, &splits.val, &splits.test}) {
    for (const synth::Sample& s : ds->samples) all.samples.push_back(s);
  }
  synth::DataStats stats = synth::ComputeDataStats(all);

  std::printf(
      "samples: %d (train %d / val %d / test %d), couriers: %zu, AOIs: %d\n",
      stats.num_samples, splits.train.size(), splits.val.size(),
      splits.test.size(), couriers.size(), world.num_aois());
  std::printf("paper reference: 7.64 locations & 4.08 AOIs per sample, "
              "59.64 / 61.68 min mean arrival gaps\n");
  std::printf("measured:        %.2f locations & %.2f AOIs per sample, "
              "%.2f / %.2f min mean arrival gaps\n",
              stats.mean_locations_per_sample, stats.mean_aois_per_sample,
              stats.mean_location_arrival_gap_min,
              stats.mean_aoi_arrival_gap_min);

  PrintHistogram("(a) location arrival time (10-min buckets)",
                 stats.location_gap_hist, 10, "min");
  PrintHistogram("(b) AOI arrival time (10-min buckets)",
                 stats.aoi_gap_hist, 10, "min");
  PrintHistogram("(c) locations per sample",
                 stats.locations_per_sample_hist, 1, "loc");
  PrintHistogram("(d) AOIs per sample", stats.aois_per_sample_hist, 1,
                 "AOI");

  synth::TransferStats transfers = synth::ComputeTransferStats(trips);
  std::printf(
      "\n=== Transfer-mode analysis (paper: 50.97 location vs 6.20 AOI "
      "transfers per courier-day) ===\n");
  std::printf("measured: %.2f location transfers vs %.2f AOI transfers "
              "per courier-day (ratio %.2f)\n",
              transfers.avg_location_transfers_per_day,
              transfers.avg_aoi_transfers_per_day,
              transfers.avg_aoi_transfers_per_day /
                  std::max(1.0, transfers.avg_location_transfers_per_day));
  std::printf("couriers complete most of an AOI before moving on — the "
              "high-level transfer mode exists in the data.\n");

  synth::HabitConsistency habits = synth::ComputeHabitConsistency(trips);
  synth::SweepStats sweeps = synth::ComputeSweepStats(trips);
  synth::DeadlineStats deadlines = synth::ComputeDeadlineStats(trips);
  std::printf("\n=== Behavioural-signal checks (extension) ===\n");
  std::printf("habit consistency: %.3f over %lld repeated AOI pairs of %d "
              "couriers (0.5 = no habit, 1.0 = perfectly habitual)\n",
              habits.mean_pair_consistency,
              static_cast<long long>(habits.pairs_measured),
              habits.couriers_measured);
  std::printf("AOI sweeps: %.1f%% of AOI visits finish the AOI before "
              "leaving (mean block completeness %.3f)\n",
              100.0 * sweeps.complete_block_fraction,
              sweeps.mean_block_completeness);
  std::printf("deadline compliance: %.1f%% of orders served on time, mean "
              "slack %.1f min\n",
              100.0 * deadlines.on_time_fraction,
              deadlines.mean_slack_min);
  return 0;
}
