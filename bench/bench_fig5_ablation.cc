// Reproduces Figure 5 (component analysis): the full model vs the
// two-step, w/o AOI, w/o graph and w/o uncertainty variants.

#include <cstdio>

#include "bench/bench_util.h"
#include "eval/ablation.h"

int main() {
  using namespace m2g;
  synth::DatasetSplits splits =
      synth::BuildDataset(bench::StandardDataConfig());
  std::printf("dataset: train %d / val %d / test %d samples\n",
              splits.train.size(), splits.val.size(), splits.test.size());

  eval::ComparisonResult result = eval::RunAblation(
      splits, bench::StandardScale(), bench::AblationCachePath());
  eval::PrintAblationFigure(result);

  const eval::MethodResult* full = result.Find("M2G4RTP");
  std::printf("\nExpected shape (paper): every ablated variant is worse "
              "than the full model;\n'w/o AOI' hurts route most, "
              "'two-step' hurts time most.\n");
  if (full != nullptr) {
    for (const eval::MethodResult& m : result.methods) {
      if (m.method == "M2G4RTP") continue;
      std::printf("  %-26s dKRC %+.3f  dMAE %+.2f\n", m.method.c_str(),
                  m.buckets[2].krc - full->buckets[2].krc,
                  m.buckets[2].mae - full->buckets[2].mae);
    }
  }
  return 0;
}
