// Reproduces the §VI deployment numbers: streams the held-out test days
// through the Figure 7 serving pipeline and reports the Intelligent
// Order Sorting quality (HR@3 / KRC — paper: 66.89% / 0.61) and the
// Minute-level ETA quality (RMSE / MAE — paper: 31.11 / 22.40).

#include <cstdio>

#include "bench/bench_util.h"
#include "core/trainer.h"
#include "metrics/report.h"
#include "obs/export.h"
#include "serve/eta_service.h"
#include "serve/order_sorting_service.h"
#include "serve/replay.h"

int main() {
  using namespace m2g;
  synth::BuiltWorld built =
      synth::BuildWorldAndDataset(bench::StandardDataConfig());
  eval::EvalScale scale = bench::StandardScale();

  std::printf("=== Deployment simulation (Fig. 7 pipeline) ===\n");
  std::printf("offline training of the M2G4RTP Service model ...\n");
  core::ModelConfig mc;
  mc.seed = scale.seed;
  core::M2g4Rtp model(mc);
  core::TrainConfig tc;
  tc.epochs = scale.epochs;
  tc.max_samples_per_epoch = scale.max_samples_per_epoch;
  core::Trainer trainer(&model, tc);
  trainer.Fit(built.splits.train, built.splits.val);

  serve::RtpService service(&built.world, &model);
  serve::OrderSortingService sorting(&service);
  serve::EtaService eta(&service);

  metrics::BucketedEvaluator evaluator;
  int notifications = 0;
  int64_t orders = 0;
  for (const synth::Sample& s : built.splits.test.samples) {
    // Rebuild the live request exactly as the app would send it.
    serve::RtpRequest request = serve::RequestFromSample(s);

    auto sorted = sorting.Sort(request);
    // Map sorted order ids back to node indices (node order: by id).
    std::vector<int> predicted_route;
    for (const auto& so : sorted) {
      predicted_route.push_back(serve::NodeIndexOfOrder(s, so.order_id));
    }
    auto etas = eta.Estimate(request);
    std::vector<double> predicted_times(s.num_locations(), 0.0);
    for (const auto& e : etas) {
      predicted_times[serve::NodeIndexOfOrder(s, e.order_id)] =
          e.eta_minutes;
      if (e.notify_user) ++notifications;
    }
    orders += s.num_locations();
    evaluator.AddSample(predicted_route, s.route_label, predicted_times,
                        s.time_label_min);
  }

  const auto all = evaluator.Get(metrics::Bucket::kAll);
  std::printf("\nrequests served: %lld, orders ranked: %lld, pre-arrival "
              "pushes: %d\n",
              static_cast<long long>(service.requests_served()),
              static_cast<long long>(orders), notifications);
  std::printf("\nIntelligent Order Sorting  (paper: HR@3 66.89, KRC 0.61)\n");
  std::printf("  measured: HR@3 %.2f, KRC %.3f\n", all.hr3, all.krc);
  std::printf("\nMinute-level ETA           (paper: RMSE 31.11, MAE 22.40)\n");
  std::printf("  measured: RMSE %.2f, MAE %.2f, acc@20 %.2f%%\n", all.rmse,
              all.mae, all.acc20);

  // Telemetry from the whole run (training epochs + every served
  // request), in both scrape formats.
  for (const char* path :
       {"bench_deployment_metrics.prom", "bench_deployment_metrics.json"}) {
    if (obs::WriteMetricsFile(path)) {
      std::printf("metrics snapshot written to %s\n", path);
    }
  }
  return 0;
}
