// Extension bench (beyond the paper): sensitivity of M2G4RTP to the
// design choices DESIGN.md calls out — k-nearest connectivity, attention
// heads, encoder depth, and the beam-search decoding extension. Runs at
// reduced scale so the whole sweep finishes in a few minutes.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "core/trainer.h"
#include "metrics/report.h"

namespace {

using namespace m2g;
using m2g::Stopwatch;

struct SweepRow {
  std::string label;
  metrics::RouteTimeMetrics all;
  double train_seconds = 0;
};

SweepRow RunConfig(const std::string& label, const core::ModelConfig& mc,
              const synth::DatasetSplits& splits, int epochs) {
  core::M2g4Rtp model(mc);
  core::TrainConfig tc;
  tc.epochs = epochs;
  Stopwatch watch;
  core::Trainer trainer(&model, tc);
  trainer.Fit(splits.train, splits.val);
  SweepRow row;
  row.label = label;
  row.train_seconds = watch.ElapsedSeconds();
  metrics::BucketedEvaluator evaluator;
  for (const synth::Sample& s : splits.test.samples) {
    core::RtpPrediction pred = model.Predict(s);
    evaluator.AddSample(pred.location_route, s.route_label,
                        pred.location_times_min, s.time_label_min);
  }
  row.all = evaluator.Get(metrics::Bucket::kAll);
  return row;
}

void PrintRows(const char* title, const std::vector<SweepRow>& rows) {
  std::printf("\n%s\n", title);
  std::printf("  %-26s %8s %8s %8s %8s %10s\n", "config", "HR@3", "KRC",
              "MAE", "acc@20", "train (s)");
  for (const SweepRow& r : rows) {
    std::printf("  %-26s %8.2f %8.3f %8.2f %8.2f %10.1f\n",
                r.label.c_str(), r.all.hr3, r.all.krc, r.all.mae,
                r.all.acc20, r.train_seconds);
  }
}

}  // namespace

int main() {
  // Reduced-scale world so the sweep stays fast.
  synth::DataConfig dc = bench::StandardDataConfig();
  dc.couriers.num_couriers = 14;
  dc.num_days = 12;
  synth::DatasetSplits splits = synth::BuildDataset(dc);
  const int epochs =
      bench::StandardScale().epochs >= 8 ? 8 : bench::StandardScale().epochs;
  std::printf("=== Design-choice sensitivity (extension) ===\n");
  std::printf("dataset: train %d / val %d / test %d, %d epochs each\n",
              splits.train.size(), splits.val.size(), splits.test.size(),
              epochs);

  {
    std::vector<SweepRow> rows;
    for (int k : {2, 5, 9}) {
      core::ModelConfig mc;
      mc.graph.k_neighbors = k;
      rows.push_back(RunConfig("k_neighbors=" + std::to_string(k), mc,
                               splits, epochs));
    }
    PrintRows("(a) Eq. 15 connectivity: k-nearest neighbours", rows);
  }
  {
    std::vector<SweepRow> rows;
    for (int heads : {1, 2, 4, 8}) {
      core::ModelConfig mc;
      mc.num_heads = heads;
      rows.push_back(RunConfig("heads=" + std::to_string(heads), mc,
                               splits, epochs));
    }
    PrintRows("(b) GAT-e attention heads (P)", rows);
  }
  {
    std::vector<SweepRow> rows;
    for (int layers : {1, 2, 3}) {
      core::ModelConfig mc;
      mc.num_layers = layers;
      rows.push_back(RunConfig("layers=" + std::to_string(layers), mc,
                               splits, epochs));
    }
    PrintRows("(c) encoder depth (K)", rows);
  }
  {
    // Beam width is inference-only: train once, decode three ways.
    core::ModelConfig mc;
    core::M2g4Rtp model(mc);
    core::TrainConfig tc;
    tc.epochs = epochs;
    core::Trainer trainer(&model, tc);
    trainer.Fit(splits.train, splits.val);
    std::vector<SweepRow> rows;
    for (int width : {1, 2, 4}) {
      // Rebuild a same-weights view with a different decode width.
      SweepRow row;
      row.label = "beam_width=" + std::to_string(width);
      core::ModelConfig mcw = mc;
      mcw.beam_width = width;
      core::M2g4Rtp decode_model(mcw);
      // Copy trained weights.
      auto src = model.Parameters();
      auto dst = decode_model.Parameters();
      for (size_t i = 0; i < src.size(); ++i) {
        dst[i].node()->value = src[i].value();
      }
      metrics::BucketedEvaluator evaluator;
      Stopwatch watch;
      for (const synth::Sample& s : splits.test.samples) {
        core::RtpPrediction pred = decode_model.Predict(s);
        evaluator.AddSample(pred.location_route, s.route_label,
                            pred.location_times_min, s.time_label_min);
      }
      row.train_seconds = watch.ElapsedSeconds();  // decode time here
      row.all = evaluator.Get(metrics::Bucket::kAll);
      rows.push_back(row);
    }
    PrintRows("(d) beam-search decoding (extension; last column = decode s)",
              rows);
  }
  return 0;
}
