// Execution-layer scaling bench: training throughput and serving QPS at
// 1/2/4/8 threads, plus grad-mode vs no-grad single-request latency.
// Speedups are only visible on multi-core machines (the thread pool runs
// shards inline when it has a single worker); correctness is identical at
// every thread count.
//
// Scale knobs: M2G_BENCH_MAX_SAMPLES (default 120 train samples) and
// M2G_BENCH_REQUESTS (default 64 replayed requests).

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/trainer.h"
#include "serve/replay.h"
#include "serve/rtp_service.h"
#include "tensor/grad_mode.h"

namespace {

using namespace m2g;

int EnvInt(const char* name, int fallback) {
  if (const char* v = std::getenv(name)) {
    const int n = std::atoi(v);
    if (n > 0) return n;
  }
  return fallback;
}

core::ModelConfig BenchModelConfig() {
  core::ModelConfig mc;  // paper-scale defaults
  return mc;
}

}  // namespace

int main() {
  const int max_samples = EnvInt("M2G_BENCH_MAX_SAMPLES", 120);
  const int num_requests = EnvInt("M2G_BENCH_REQUESTS", 64);
  const std::vector<int> thread_counts = {1, 2, 4, 8};

  synth::BuiltWorld built =
      synth::BuildWorldAndDataset(bench::StandardDataConfig());
  std::printf("hardware threads: %d\n\n", HardwareThreads());

  // --- Training throughput: one epoch over the same samples per t. ---
  std::printf("Training throughput (1 epoch, %d samples)\n", max_samples);
  std::printf("%8s %12s %14s %9s\n", "threads", "seconds", "samples/sec",
              "speedup");
  bench::JsonValue training_rows = bench::JsonValue::Array();
  double serial_seconds = 0;
  for (int t : thread_counts) {
    core::M2g4Rtp model(BenchModelConfig());
    core::TrainConfig tc;
    tc.epochs = 1;
    tc.max_samples_per_epoch = max_samples;
    tc.threads = t;
    core::Trainer trainer(&model, tc);
    Stopwatch watch;
    trainer.Fit(built.splits.train, built.splits.val);
    const double seconds = watch.ElapsedSeconds();
    if (t == 1) serial_seconds = seconds;
    const double speedup = serial_seconds > 0 ? serial_seconds / seconds : 0.0;
    std::printf("%8d %12.3f %14.1f %8.2fx\n", t, seconds,
                max_samples / seconds, speedup);
    training_rows.Push(
        bench::JsonValue::Object()
            .Set("threads", bench::JsonValue::Int(t))
            .Set("seconds", bench::JsonValue::Number(seconds))
            .Set("samples_per_sec",
                 bench::JsonValue::Number(max_samples / seconds))
            .Set("speedup", bench::JsonValue::Number(speedup)));
  }

  // --- Serving QPS: concurrent replay of the same request set per t. ---
  core::M2g4Rtp model(BenchModelConfig());
  {
    core::TrainConfig tc;
    tc.epochs = 1;
    tc.max_samples_per_epoch = 60;
    core::Trainer trainer(&model, tc);
    trainer.Fit(built.splits.train, built.splits.val);
  }
  serve::RtpService service(&built.world, &model);
  std::vector<serve::RtpRequest> requests;
  const auto& test = built.splits.test.samples;
  for (int i = 0; i < num_requests && !test.empty(); ++i) {
    requests.push_back(
        serve::RequestFromSample(test[i % test.size()]));
  }
  std::printf("\nServing throughput (%zu requests, concurrent replay)\n",
              requests.size());
  std::printf("%8s %12s %14s %9s\n", "threads", "seconds", "requests/sec",
              "speedup");
  bench::JsonValue serving_rows = bench::JsonValue::Array();
  double serial_qps = 0;
  for (int t : thread_counts) {
    serve::ConcurrentReplayResult r =
        serve::ReplayConcurrently(service, requests, t);
    if (t == 1) serial_qps = r.requests_per_second;
    const double speedup =
        serial_qps > 0 ? r.requests_per_second / serial_qps : 0.0;
    std::printf("%8d %12.3f %14.1f %8.2fx\n", t, r.wall_seconds,
                r.requests_per_second, speedup);
    serving_rows.Push(
        bench::JsonValue::Object()
            .Set("threads", bench::JsonValue::Int(t))
            .Set("wall_seconds", bench::JsonValue::Number(r.wall_seconds))
            .Set("requests_per_sec",
                 bench::JsonValue::Number(r.requests_per_second))
            .Set("speedup", bench::JsonValue::Number(speedup)));
  }

  // --- Grad-mode vs no-grad single-request latency. ---
  const int probes =
      static_cast<int>(std::min<size_t>(32, test.size()));
  double grad_ms = 0, no_grad_ms = 0;
  for (int i = 0; i < probes; ++i) {
    Stopwatch watch;
    core::RtpPrediction pred = model.Predict(test[i]);
    grad_ms += watch.ElapsedMillis();
    if (pred.location_route.empty()) std::fprintf(stderr, "!");
  }
  {
    NoGradGuard no_grad;
    for (int i = 0; i < probes; ++i) {
      Stopwatch watch;
      core::RtpPrediction pred = model.Predict(test[i]);
      no_grad_ms += watch.ElapsedMillis();
      if (pred.location_route.empty()) std::fprintf(stderr, "!");
    }
  }
  std::printf("\nSingle-request inference over %d samples\n", probes);
  std::printf("  grad-mode mean: %8.3f ms\n", grad_ms / probes);
  std::printf("  no-grad mean:   %8.3f ms (%.2fx)\n", no_grad_ms / probes,
              no_grad_ms > 0 ? grad_ms / no_grad_ms : 0.0);

  bench::JsonValue doc =
      bench::JsonValue::Object()
          .Set("bench", bench::JsonValue::String("parallel_scaling"))
          .Set("hardware_threads", bench::JsonValue::Int(HardwareThreads()))
          .Set("training", std::move(training_rows))
          .Set("serving", std::move(serving_rows))
          .Set("single_request",
               bench::JsonValue::Object()
                   .Set("grad_ms", bench::JsonValue::Number(grad_ms / probes))
                   .Set("no_grad_ms",
                        bench::JsonValue::Number(no_grad_ms / probes)));
  if (!bench::WriteBenchJson("BENCH_parallel_scaling.json", doc)) return 1;
  return 0;
}
