// Reproduces Table III (route prediction: HR@3 / KRC / LSD for all eight
// methods over the short/long/all buckets). Trains every method once and
// caches the results so bench_table4_time reuses the same run.

#include <cstdio>

#include "bench/bench_util.h"
#include "eval/comparison.h"

int main() {
  using namespace m2g;
  synth::DatasetSplits splits =
      synth::BuildDataset(bench::StandardDataConfig());
  std::printf("dataset: train %d / val %d / test %d samples\n",
              splits.train.size(), splits.val.size(), splits.test.size());

  eval::ComparisonResult result = eval::RunOrLoadComparison(
      splits, eval::AllMethodNames(), bench::StandardScale(),
      bench::ComparisonCachePath());
  eval::PrintRouteTable(result);

  const eval::MethodResult* ours = result.Find("M2G4RTP");
  const eval::MethodResult* g2r = result.Find("Graph2Route");
  if (ours != nullptr && g2r != nullptr) {
    std::printf(
        "\nM2G4RTP vs best graph baseline (all): KRC %+.3f, LSD %+.2f\n",
        ours->buckets[2].krc - g2r->buckets[2].krc,
        ours->buckets[2].lsd - g2r->buckets[2].lsd);
  }
  return 0;
}
