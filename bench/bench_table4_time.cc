// Reproduces Table IV (time prediction: RMSE / MAE / acc@20). Shares the
// training run with bench_table3_route through the comparison cache.

#include <cstdio>

#include "bench/bench_util.h"
#include "eval/comparison.h"

int main() {
  using namespace m2g;
  synth::DatasetSplits splits =
      synth::BuildDataset(bench::StandardDataConfig());
  eval::ComparisonResult result = eval::RunOrLoadComparison(
      splits, eval::AllMethodNames(), bench::StandardScale(),
      bench::ComparisonCachePath());
  eval::PrintTimeTable(result);

  const eval::MethodResult* ours = result.Find("M2G4RTP");
  const eval::MethodResult* fdnet = result.Find("FDNET");
  if (ours != nullptr && fdnet != nullptr) {
    std::printf(
        "\nJoint vs two-step route&time (all bucket): M2G4RTP MAE %.2f "
        "vs FDNET MAE %.2f\n",
        ours->buckets[2].mae, fdnet->buckets[2].mae);
  }
  return 0;
}
