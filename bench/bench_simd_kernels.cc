// SIMD kernel tier bench: every dispatched row kernel timed at paper
// dims (F = 48 hidden units, n = 50 graph nodes) on every tier this
// host supports, with byte-identity checks between tiers on every
// kernel. The dense MatMulInto row is the headline — it is the inner
// loop of the O(n^2 F^2) GAT-e edge term that dominates encode cost.
//
// `--smoke` (Release CI) exits nonzero if
//   * any kernel's output differs by one byte between any two tiers,
//   * the best-tier dense MatMulInto speedup over the scalar tier is
//     below the floor (default 2.0 when AVX2 is detected, 1.0
//     otherwise; M2G_BENCH_SIMD_MIN_SPEEDUP overrides for scalar-only
//     or noisy runners),
//   * a short fixed-seed training run does not produce byte-identical
//     parameters between the scalar tier and the best tier (the
//     end-to-end restatement of the per-kernel parity contract), or
//   * BENCH_simd.json cannot be written.
// The JSON dump records the detected tier, per-kernel per-tier ns, and
// the speedups, next to the other BENCH_*.json CI artifacts.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/model.h"
#include "core/trainer.h"
#include "tensor/matrix.h"
#include "tensor/pool.h"
#include "tensor/simd.h"

namespace {

using m2g::Matrix;
using m2g::Rng;

volatile float g_sink = 0.0f;

void Sink(float v) { g_sink = g_sink + v; }

std::vector<m2g::simd::Tier> SupportedTiers() {
  std::vector<m2g::simd::Tier> tiers = {m2g::simd::Tier::kScalar};
  if (m2g::simd::DetectedTier() >= m2g::simd::Tier::kSse2) {
    tiers.push_back(m2g::simd::Tier::kSse2);
  }
  if (m2g::simd::DetectedTier() >= m2g::simd::Tier::kAvx2) {
    tiers.push_back(m2g::simd::Tier::kAvx2);
  }
  return tiers;
}

struct KernelCase {
  std::string name;
  // Runs the kernel once and appends its full output to *out (the
  // cross-tier identity check compares these bytes).
  std::function<void(std::vector<float>*)> run;
};

struct TierTiming {
  m2g::simd::Tier tier;
  double ns_per_op = 0;
};

struct KernelReport {
  std::string name;
  std::vector<TierTiming> timings;
  bool identical = true;

  double NsFor(m2g::simd::Tier tier) const {
    for (const TierTiming& t : timings) {
      if (t.tier == tier) return t.ns_per_op;
    }
    return 0;
  }
};

/// Min-of-rounds timing, like the other fast-path benches: the min
/// discards scheduling spikes on shared CI boxes.
template <typename Fn>
double TimeNs(int iters, Fn&& fn) {
  double best = 0;
  for (int round = 0; round < 3; ++round) {
    m2g::Stopwatch watch;
    for (int i = 0; i < iters; ++i) fn();
    const double ns = watch.ElapsedSeconds() * 1e9 / iters;
    if (round == 0 || ns < best) best = ns;
  }
  return best;
}

KernelReport BenchKernel(const KernelCase& kernel, int iters) {
  KernelReport report;
  report.name = kernel.name;
  std::vector<float> reference;
  for (m2g::simd::Tier tier : SupportedTiers()) {
    m2g::simd::SetTier(tier);
    std::vector<float> out;
    kernel.run(&out);  // warm + identity capture
    if (tier == m2g::simd::Tier::kScalar) {
      reference = out;
    } else if (out.size() != reference.size() ||
               std::memcmp(out.data(), reference.data(),
                           out.size() * sizeof(float)) != 0) {
      report.identical = false;
    }
    TierTiming timing;
    timing.tier = tier;
    // `out` keeps its capacity across iterations, so the timed loop
    // re-runs the kernel without reallocating — allocation noise would
    // attenuate every tier's ratio toward 1.0 and soften the gate.
    timing.ns_per_op = TimeNs(iters, [&] {
      kernel.run(&out);
      Sink(out.empty() ? 0.0f : out[0]);
    });
    report.timings.push_back(timing);
  }
  m2g::simd::SetTier(m2g::simd::DetectedTier());
  return report;
}

/// Short fixed-seed fit; returns the flattened parameter bytes.
std::vector<float> FitParams(m2g::simd::Tier tier) {
  m2g::simd::SetTier(tier);
  m2g::synth::DataConfig dc;
  dc.seed = 1212;
  dc.world.num_aois = 40;
  dc.couriers.num_couriers = 3;
  dc.num_days = 2;
  const m2g::synth::DatasetSplits splits = m2g::synth::BuildDataset(dc);
  m2g::core::ModelConfig mc;
  mc.hidden_dim = 16;
  mc.num_heads = 2;
  mc.num_layers = 1;
  mc.aoi_id_embed_dim = 4;
  mc.aoi_type_embed_dim = 2;
  mc.lstm_hidden_dim = 16;
  mc.courier_dim = 8;
  mc.pos_enc_dim = 4;
  m2g::core::M2g4Rtp model(mc);
  m2g::core::TrainConfig tc;
  tc.epochs = 1;
  tc.early_stop_patience = 0;
  tc.max_samples_per_epoch = 8;
  m2g::core::Trainer trainer(&model, tc);
  trainer.Fit(splits.train, splits.val);
  std::vector<float> flat;
  for (const auto& [name, tensor] : model.NamedParameters()) {
    const Matrix& value = tensor.value();
    flat.insert(flat.end(), value.data(), value.data() + value.size());
  }
  return flat;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const int iters = smoke ? 2000 : 20000;

  const m2g::simd::Tier detected = m2g::simd::DetectedTier();
  const bool has_avx2 = detected >= m2g::simd::Tier::kAvx2;
  double min_speedup = has_avx2 ? 2.0 : 1.0;
  if (const char* v = std::getenv("M2G_BENCH_SIMD_MIN_SPEEDUP")) {
    const double s = std::atof(v);
    if (s > 0) min_speedup = s;
  }

  std::printf("=== SIMD kernel tier (detected: %s) ===\n",
              m2g::simd::TierName(detected));

  // Paper dims: F = 48 hidden units, n = 50 nodes, 4H = 192 LSTM gate
  // columns. Inputs drawn from (0.1, 1) stay zero-free, so the dense
  // path is exercised (the sparse path is tier-independent by design).
  Rng rng(0x51d);
  const int n = 50, f = 48;
  const Matrix a = Matrix::Random(n, f, 0.1f, 1.0f, &rng);
  const Matrix w = Matrix::Random(f, f, -1.0f, 1.0f, &rng);
  const Matrix bias = Matrix::Random(1, f, -0.5f, 0.5f, &rng);
  const Matrix s_dst = Matrix::Random(1, n, -2.0f, 2.0f, &rng);
  const Matrix s_edge = Matrix::Random(1, n, -2.0f, 2.0f, &rng);
  const Matrix h = Matrix::Random(10, f, -1.0f, 1.0f, &rng);
  const Matrix wx4 = Matrix::Random(f, 4 * f, -1.0f, 1.0f, &rng);
  const Matrix wh4 = Matrix::Random(f, 4 * f, -1.0f, 1.0f, &rng);
  const Matrix x10 = Matrix::Random(10, f, 0.1f, 1.0f, &rng);
  const Matrix bias4 = Matrix::Random(1, 4 * f, -0.5f, 0.5f, &rng);

  std::vector<KernelCase> kernels;
  kernels.push_back(
      {"MatMulInto(50x48 * 48x48)", [&](std::vector<float>* out) {
         out->assign(static_cast<size_t>(n) * f, 0.0f);
         m2g::MatMulInto(a.data(), n, f, w.data(), f, out->data());
       }});
  kernels.push_back(
      {"AccumulateRow(k=48,m=192)", [&](std::vector<float>* out) {
         out->assign(4 * f, 0.0f);
         m2g::AccumulateRowMatMul(a.data(), f, wx4.data(), 4 * f,
                                  out->data());
       }});
  kernels.push_back({"GatLogitsRow(n=50)", [&](std::vector<float>* out) {
                       out->assign(n, 0.0f);
                       m2g::GatLogitsRow(s_dst.data(), s_edge.data(), 0.37f,
                                         0.2f, n, out->data());
                     }});
  kernels.push_back(
      {"AffineRaw(50x48, relu)", [&](std::vector<float>* out) {
         const Matrix y =
             m2g::AffineRaw(a, w, &bias, m2g::Activation::kRelu);
         out->assign(y.data(), y.data() + y.size());
       }});
  kernels.push_back(
      {"DualAffineRaw(10x48, 4H)", [&](std::vector<float>* out) {
         const Matrix y = m2g::DualAffineRaw(x10, wx4, h, wh4, bias4);
         out->assign(y.data(), y.data() + y.size());
       }});
  kernels.push_back(
      {"MatMulManyInto(4 slices)", [&](std::vector<float>* out) {
         out->assign(static_cast<size_t>(4) * 10 * f, 0.0f);
         m2g::MatMulManySlice slices[4];
         for (int s = 0; s < 4; ++s) {
           slices[s] = {x10.data(), 10,
                        out->data() + static_cast<size_t>(s) * 10 * f};
         }
         m2g::MatMulManyInto(slices, 4, f, w.data(), f);
       }});
  kernels.push_back({"AddInPlace(2400)", [&](std::vector<float>* out) {
                       out->assign(a.data(), a.data() + a.size());
                       m2g::simd::AddInPlace(out->data(), w.data(),
                                             out->size());
                     }});
  kernels.push_back({"ReluInPlace(2400)", [&](std::vector<float>* out) {
                       out->assign(w.data(), w.data() + w.size());
                       m2g::simd::ReluInPlace(out->data(), out->size());
                     }});

  std::printf("  %-26s", "");
  for (m2g::simd::Tier tier : SupportedTiers()) {
    std::printf(" %10s", m2g::simd::TierName(tier));
  }
  std::printf(" %9s %9s\n", "speedup", "identical");

  std::vector<KernelReport> reports;
  bool all_identical = true;
  double matmul_speedup = 0;
  {
    m2g::ArenaGuard arena;
    for (const KernelCase& kernel : kernels) {
      KernelReport report = BenchKernel(kernel, iters);
      const double scalar_ns = report.NsFor(m2g::simd::Tier::kScalar);
      const double best_ns = report.NsFor(detected);
      const double speedup = best_ns > 0 ? scalar_ns / best_ns : 0;
      std::printf("  %-26s", report.name.c_str());
      for (const TierTiming& t : report.timings) {
        std::printf(" %8.0fns", t.ns_per_op);
      }
      std::printf(" %8.2fx %9s\n", speedup,
                  report.identical ? "yes" : "NO");
      all_identical = all_identical && report.identical;
      if (report.name.rfind("MatMulInto", 0) == 0) {
        matmul_speedup = speedup;
      }
      reports.push_back(std::move(report));
    }
  }

  // End-to-end restatement of the parity contract: fixed-seed training
  // must land on byte-identical parameters scalar vs best tier.
  bool training_identical = true;
  {
    const std::vector<float> scalar_params =
        FitParams(m2g::simd::Tier::kScalar);
    const std::vector<float> best_params = FitParams(detected);
    training_identical =
        scalar_params.size() == best_params.size() &&
        std::memcmp(scalar_params.data(), best_params.data(),
                    scalar_params.size() * sizeof(float)) == 0;
    m2g::simd::SetTier(detected);
    std::printf("  fixed-seed training params scalar vs %s: %s\n",
                m2g::simd::TierName(detected),
                training_identical ? "byte-identical" : "DIFFER");
  }

  namespace bench = m2g::bench;
  bench::JsonValue kernels_json = bench::JsonValue::Array();
  for (const KernelReport& report : reports) {
    bench::JsonValue tiers_json = bench::JsonValue::Object();
    for (const TierTiming& t : report.timings) {
      tiers_json.Set(m2g::simd::TierName(t.tier),
                     bench::JsonValue::Number(t.ns_per_op));
    }
    const double scalar_ns = report.NsFor(m2g::simd::Tier::kScalar);
    const double best_ns = report.NsFor(detected);
    kernels_json.Push(
        bench::JsonValue::Object()
            .Set("kernel", bench::JsonValue::String(report.name))
            .Set("ns_per_op", std::move(tiers_json))
            .Set("speedup", bench::JsonValue::Number(
                                best_ns > 0 ? scalar_ns / best_ns : 0))
            .Set("identical", bench::JsonValue::Bool(report.identical)));
  }
  bench::JsonValue doc =
      bench::JsonValue::Object()
          .Set("bench", bench::JsonValue::String("simd_kernels"))
          .Set("mode", bench::JsonValue::String(smoke ? "smoke" : "full"))
          .Set("detected_tier",
               bench::JsonValue::String(m2g::simd::TierName(detected)))
          .Set("iters", bench::JsonValue::Int(iters))
          .Set("min_speedup", bench::JsonValue::Number(min_speedup))
          .Set("matmul_into_speedup",
               bench::JsonValue::Number(matmul_speedup))
          .Set("outputs_identical", bench::JsonValue::Bool(all_identical))
          .Set("training_identical",
               bench::JsonValue::Bool(training_identical))
          .Set("kernels", std::move(kernels_json));
  const bool json_ok = bench::WriteBenchJson("BENCH_simd.json", doc);

  if (smoke) {
    int failures = json_ok ? 0 : 1;
    if (!all_identical) {
      std::fprintf(stderr,
                   "FAIL: kernel outputs differ between tiers\n");
      ++failures;
    }
    if (!training_identical) {
      std::fprintf(stderr,
                   "FAIL: fixed-seed training params differ between "
                   "tiers\n");
      ++failures;
    }
    if (matmul_speedup < min_speedup) {
      std::fprintf(stderr,
                   "FAIL: dense MatMulInto best-tier speedup %.2fx < "
                   "required %.2fx\n",
                   matmul_speedup, min_speedup);
      ++failures;
    }
    if (failures == 0) {
      std::printf("smoke OK: %s tier, %.2fx dense MatMulInto, all "
                  "outputs byte-identical\n",
                  m2g::simd::TierName(detected), matmul_speedup);
    }
    return failures == 0 ? 0 : 1;
  }
  return json_ok ? 0 : 1;
}
