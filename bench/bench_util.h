#ifndef M2G_BENCH_BENCH_UTIL_H_
#define M2G_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "eval/rtp_model.h"
#include "synth/dataset.h"

namespace m2g::bench {

/// The standard evaluation world every bench shares: a scaled-down
/// Hangzhou (identical seed across benches so the comparison cache is
/// coherent). Size is chosen so the full 8-method comparison trains in
/// minutes on one CPU core while keeping the Figure 4 statistics.
inline synth::DataConfig StandardDataConfig() {
  synth::DataConfig config;
  config.seed = 20230707;
  return config;
}

/// Training scale, overridable for quick runs:
///   M2G_BENCH_EPOCHS       (default 15, early-stopped)
///   M2G_BENCH_MAX_SAMPLES  (default 0 = all train samples per epoch)
///   M2G_BENCH_SEEDS        (default 3: tables report mean±std)
///   M2G_BENCH_THREADS      (default 1; 0 = all cores — parallelizes the
///                           comparison grid and each trainer)
///   M2G_BENCH_FAST=1       (shorthand for 2 epochs / 150 samples / 1 seed)
inline eval::EvalScale StandardScale() {
  eval::EvalScale scale;
  if (const char* fast = std::getenv("M2G_BENCH_FAST");
      fast != nullptr && fast[0] == '1') {
    scale.epochs = 2;
    scale.max_samples_per_epoch = 150;
    scale.num_seeds = 1;
  }
  if (const char* e = std::getenv("M2G_BENCH_EPOCHS")) {
    scale.epochs = std::atoi(e);
  }
  if (const char* m = std::getenv("M2G_BENCH_MAX_SAMPLES")) {
    scale.max_samples_per_epoch = std::atoi(m);
  }
  if (const char* s = std::getenv("M2G_BENCH_SEEDS")) {
    scale.num_seeds = std::atoi(s);
  }
  if (const char* t = std::getenv("M2G_BENCH_THREADS")) {
    scale.threads = std::atoi(t);
  }
  return scale;
}

/// Cache files shared between bench binaries (Table III + IV share one
/// training run; Figure 5 has its own).
inline std::string ComparisonCachePath() { return "m2g_comparison.cache"; }
inline std::string AblationCachePath() { return "m2g_ablation.cache"; }

/// Minimal JSON value builder for the machine-readable `BENCH_*.json`
/// dumps CI archives as artifacts (the perf trajectory across PRs).
/// Scalars serialize eagerly; objects keep insertion order so dumps diff
/// cleanly run-to-run. Only what the benches need — no parsing, no
/// nesting limits, compact output.
class JsonValue {
 public:
  static JsonValue Object() { return JsonValue(Kind::kObject); }
  static JsonValue Array() { return JsonValue(Kind::kArray); }
  static JsonValue Number(double v) {
    // RFC 8259 has no NaN/Infinity literals; "%.10g" would emit bare
    // nan/inf and corrupt the BENCH_*.json artifact. null is the closest
    // representable value.
    if (!std::isfinite(v)) return JsonValue(Kind::kScalar, "null");
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    return JsonValue(Kind::kScalar, buf);
  }
  static JsonValue Int(int64_t v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return JsonValue(Kind::kScalar, buf);
  }
  static JsonValue Bool(bool v) {
    return JsonValue(Kind::kScalar, v ? "true" : "false");
  }
  static JsonValue String(const std::string& s) {
    std::string out = "\"";
    for (char ch : s) {
      switch (ch) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        default:
          // Remaining control characters (RFC 8259 requires escaping all
          // of U+0000..U+001F) as \u00XX; everything else verbatim.
          if (static_cast<unsigned char>(ch) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(ch)));
            out += buf;
          } else {
            out += ch;
          }
      }
    }
    out += '"';
    return JsonValue(Kind::kScalar, std::move(out));
  }

  /// Object member (insertion order preserved). Returns *this to chain.
  JsonValue& Set(const std::string& key, JsonValue v) {
    members_.emplace_back(key, std::move(v));
    return *this;
  }
  /// Array element.
  JsonValue& Push(JsonValue v) {
    members_.emplace_back(std::string(), std::move(v));
    return *this;
  }

  std::string Dump() const {
    if (kind_ == Kind::kScalar) return scalar_;
    std::string out(1, kind_ == Kind::kObject ? '{' : '[');
    for (size_t i = 0; i < members_.size(); ++i) {
      if (i > 0) out += ',';
      if (kind_ == Kind::kObject) {
        out += String(members_[i].first).Dump();
        out += ':';
      }
      out += members_[i].second.Dump();
    }
    out += kind_ == Kind::kObject ? '}' : ']';
    return out;
  }

 private:
  enum class Kind { kScalar, kObject, kArray };
  explicit JsonValue(Kind kind, std::string scalar = {})
      : kind_(kind), scalar_(std::move(scalar)) {}

  Kind kind_;
  std::string scalar_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Writes `v` to `path` (newline-terminated). Returns false on IO error.
inline bool WriteBenchJson(const std::string& path, const JsonValue& v) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  const std::string text = v.Dump();
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace m2g::bench

#endif  // M2G_BENCH_BENCH_UTIL_H_
