#ifndef M2G_BENCH_BENCH_UTIL_H_
#define M2G_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <string>

#include "eval/rtp_model.h"
#include "synth/dataset.h"

namespace m2g::bench {

/// The standard evaluation world every bench shares: a scaled-down
/// Hangzhou (identical seed across benches so the comparison cache is
/// coherent). Size is chosen so the full 8-method comparison trains in
/// minutes on one CPU core while keeping the Figure 4 statistics.
inline synth::DataConfig StandardDataConfig() {
  synth::DataConfig config;
  config.seed = 20230707;
  return config;
}

/// Training scale, overridable for quick runs:
///   M2G_BENCH_EPOCHS       (default 15, early-stopped)
///   M2G_BENCH_MAX_SAMPLES  (default 0 = all train samples per epoch)
///   M2G_BENCH_SEEDS        (default 3: tables report mean±std)
///   M2G_BENCH_THREADS      (default 1; 0 = all cores — parallelizes the
///                           comparison grid and each trainer)
///   M2G_BENCH_FAST=1       (shorthand for 2 epochs / 150 samples / 1 seed)
inline eval::EvalScale StandardScale() {
  eval::EvalScale scale;
  if (const char* fast = std::getenv("M2G_BENCH_FAST");
      fast != nullptr && fast[0] == '1') {
    scale.epochs = 2;
    scale.max_samples_per_epoch = 150;
    scale.num_seeds = 1;
  }
  if (const char* e = std::getenv("M2G_BENCH_EPOCHS")) {
    scale.epochs = std::atoi(e);
  }
  if (const char* m = std::getenv("M2G_BENCH_MAX_SAMPLES")) {
    scale.max_samples_per_epoch = std::atoi(m);
  }
  if (const char* s = std::getenv("M2G_BENCH_SEEDS")) {
    scale.num_seeds = std::atoi(s);
  }
  if (const char* t = std::getenv("M2G_BENCH_THREADS")) {
    scale.threads = std::atoi(t);
  }
  return scale;
}

/// Cache files shared between bench binaries (Table III + IV share one
/// training run; Figure 5 has its own).
inline std::string ComparisonCachePath() { return "m2g_comparison.cache"; }
inline std::string AblationCachePath() { return "m2g_ablation.cache"; }

}  // namespace m2g::bench

#endif  // M2G_BENCH_BENCH_UTIL_H_
