// Observability overhead bench: serves the same request mix with event
// recording enabled vs disabled (obs::SetEnabled A/B in one binary; the
// disabled path is a strict upper bound on a compiled-out M2G_OBS_DISABLED
// build, which removes even the relaxed-load gate) and reports the
// telemetry tax on end-to-end serving latency. The enabled side runs the
// full PR-8 pipeline — request-scoped trace trees, per-stage spans, and
// wide events at default (keep-everything) sampling — so the budget gates
// tracing and structured logging, not just histogram records.
//
// `--smoke` runs a reduced configuration for CI and exits nonzero when
//   * instrumented serving is more than 3% slower than uninstrumented
//     (best-of-N interleaved passes, retried to ride out scheduler noise),
//   * or the exported snapshot is missing any of the per-stage serving
//     histograms, the batching/queue-wait histograms, the wide-event
//     counters, the service request counters, the tensor-pool counters
//     or the thread-pool queue-depth gauge,
//   * or no trace trees / wide events were retained.
// It also dumps the final snapshot to m2g_metrics.prom / m2g_metrics.json
// plus sample traces.json / events.jsonl (uploaded as CI artifacts).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "core/model.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/wide_event.h"
#include "serve/eta_service.h"
#include "serve/replay.h"
#include "serve/rtp_service.h"
#include "synth/dataset.h"

namespace {

volatile float g_sink = 0.0f;  // defeats dead-code elimination

void Sink(float v) { g_sink = g_sink + v; }

/// One timed pass: every request through the full serving path.
double TimePass(const m2g::serve::RtpService& service,
                const std::vector<m2g::serve::RtpRequest>& requests) {
  m2g::Stopwatch watch;
  for (const auto& req : requests) {
    Sink(static_cast<float>(
        service.Handle(req).prediction.location_times_min[0]));
  }
  return watch.ElapsedSeconds();
}

/// Best-of-`reps` interleaved A/B: alternating enabled/disabled passes
/// so slow drift (turbo, thermal) hits both sides equally.
struct AbResult {
  double on_seconds = 0;
  double off_seconds = 0;
  double overhead() const {
    return off_seconds > 0 ? on_seconds / off_seconds - 1.0 : 0.0;
  }
};

AbResult MeasureOverhead(const m2g::serve::RtpService& service,
                         const std::vector<m2g::serve::RtpRequest>& requests,
                         int reps) {
  AbResult r;
  r.on_seconds = 1e30;
  r.off_seconds = 1e30;
  for (int i = 0; i < reps; ++i) {
    m2g::obs::SetEnabled(true);
    r.on_seconds = std::min(r.on_seconds, TimePass(service, requests));
    m2g::obs::SetEnabled(false);
    r.off_seconds = std::min(r.off_seconds, TimePass(service, requests));
  }
  m2g::obs::SetEnabled(true);
  return r;
}

int CheckExports(const std::string& prom, const std::string& json) {
  // Every serving-path metric the telemetry layer promises. Prometheus
  // names are the mangled forms, JSON keeps the dotted registry names.
  const char* prom_needles[] = {
      "m2g_serve_stage_feature_extract_ms_bucket",
      "m2g_serve_stage_graph_build_ms_bucket",
      "m2g_serve_stage_encode_ms_bucket",
      "m2g_serve_stage_route_decode_ms_bucket",
      "m2g_serve_stage_eta_head_ms_bucket",
      "m2g_serve_request_ms_bucket",
      "m2g_serve_rtp_requests_total",
      "m2g_serve_eta_requests_total",
      "m2g_pool_arena_hits",
      "m2g_pool_arena_misses",
      "m2g_threadpool_queue_depth",
      "m2g_threadpool_tasks_executed_total",
      "m2g_serve_batch_queue_wait_ms_bucket",
      "m2g_serve_batch_execute_ms_bucket",
      "m2g_obs_wide_events_recorded_total",
  };
  const char* json_needles[] = {
      "\"serve.stage.encode.ms\"", "\"serve.rtp.requests\"",
      "\"serve.eta.requests\"",    "\"pool.arena_hits\"",
      "\"threadpool.queue_depth\"", "\"p99\"",
      "\"serve.batch.queue_wait.ms\"", "\"obs.wide_events.recorded\"",
  };
  int failures = 0;
  for (const char* needle : prom_needles) {
    if (prom.find(needle) == std::string::npos) {
      std::fprintf(stderr, "FAIL: Prometheus export is missing %s\n",
                   needle);
      ++failures;
    }
  }
  for (const char* needle : json_needles) {
    if (json.find(needle) == std::string::npos) {
      std::fprintf(stderr, "FAIL: JSON export is missing %s\n", needle);
      ++failures;
    }
  }
  return failures;
}

bool WriteText(const char* path, const std::string& text) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  std::printf("=== Observability overhead (telemetry on vs off) ===\n");
  m2g::synth::DataConfig dc;
  dc.num_days = smoke ? 4 : 8;
  m2g::synth::BuiltWorld built = m2g::synth::BuildWorldAndDataset(dc);
  // Untrained weights: the instrumentation cost per request does not
  // depend on the parameter values, only on the op mix.
  m2g::core::M2g4Rtp model{m2g::core::ModelConfig{}};
  m2g::serve::RtpService service(&built.world, &model);
  m2g::serve::EtaService eta(&service);

  std::vector<m2g::serve::RtpRequest> requests;
  const auto& samples = built.splits.test.samples;
  const size_t max_requests = smoke ? 16 : 64;
  for (size_t i = 0; i < samples.size() && i < max_requests; ++i) {
    requests.push_back(m2g::serve::RequestFromSample(samples[i]));
  }
  if (requests.empty()) {
    std::fprintf(stderr, "no test requests generated\n");
    return 1;
  }

  // Populate every exported surface once: a concurrent replay (creates a
  // ThreadPool, so the queue-depth gauge and tasks counter exist), plus
  // the ETA service path.
  m2g::serve::ConcurrentReplayResult replay =
      m2g::serve::ReplayConcurrently(service, requests, /*threads=*/2);
  for (size_t i = 0; i < requests.size() && i < 4; ++i) {
    Sink(static_cast<float>(eta.Estimate(requests[i]).size()));
  }
  std::printf("warmup replay: %zu requests at %.0f req/s\n",
              replay.responses.size(), replay.requests_per_second);

  // Interleaved A/B with retries: a single noisy scheduling quantum can
  // fake a >3% delta on a short smoke pass, so widen the best-of window
  // before concluding the telemetry itself is slow.
  const int reps = smoke ? 5 : 10;
  AbResult ab = MeasureOverhead(service, requests, reps);
  const double budget = 0.03;
  int attempts = 1;
  while (smoke && ab.overhead() > budget && attempts < 4) {
    std::printf("overhead %.2f%% over budget, retrying (%d) ...\n",
                100.0 * ab.overhead(), attempts);
    AbResult again = MeasureOverhead(service, requests, reps);
    ab.on_seconds = std::min(ab.on_seconds, again.on_seconds);
    ab.off_seconds = std::min(ab.off_seconds, again.off_seconds);
    ++attempts;
  }

  const double per_req_us =
      1e6 * (ab.on_seconds - ab.off_seconds) / requests.size();
  std::printf("\nserving %zu requests, best of %d interleaved passes\n",
              requests.size(), reps * attempts);
  std::printf("  %-14s %12s\n", "telemetry", "seconds");
  std::printf("  %-14s %12.4f\n", "enabled", ab.on_seconds);
  std::printf("  %-14s %12.4f\n", "disabled", ab.off_seconds);
  std::printf("  overhead: %.2f%% (%.1f us/request)\n",
              100.0 * ab.overhead(), per_req_us);

  // Batched serving phase: populates the PR-8 surfaces the unbatched A/B
  // cannot reach — the queue-wait and batch-execute histograms, trace
  // trees whose members reference shared graph/encode spans, and wide
  // events carrying batch attribution. Untimed: the A/B above already
  // gates the instrumentation tax; this phase only feeds the exports.
  size_t batched_requests = 0;
  {
    m2g::serve::ServingConfig sc;
    sc.batching_enabled = true;
    sc.batch.max_batch_size = 4;
    sc.batch.max_linger_us = 2000;
    m2g::serve::RtpService batched(&built.world, &model, sc);
    m2g::serve::ConcurrentReplayResult br =
        m2g::serve::ReplayConcurrently(batched, requests, /*threads=*/4);
    batched_requests = br.responses.size();
    std::printf("batched replay: %zu requests at %.0f req/s\n",
                batched_requests, br.requests_per_second);
  }
  const size_t trace_trees = m2g::obs::RecentTraceTrees().size();
  const uint64_t wide_events = m2g::obs::WideEventSink::Global().recorded();

  // Final snapshot out to disk (CI uploads these as artifacts) and the
  // export completeness check.
  const std::string prom = m2g::obs::ExportPrometheus();
  const std::string json = m2g::obs::ExportJson();
  int failures = CheckExports(prom, json);
  if (!WriteText("m2g_metrics.prom", prom) ||
      !WriteText("m2g_metrics.json", json)) {
    std::fprintf(stderr, "FAIL: could not write metrics snapshots\n");
    ++failures;
  } else {
    std::printf("snapshots written to m2g_metrics.prom / m2g_metrics.json\n");
  }
  if (trace_trees == 0) {
    std::fprintf(stderr, "FAIL: no trace trees retained after serving\n");
    ++failures;
  }
  if (wide_events == 0) {
    std::fprintf(stderr, "FAIL: no wide events recorded after serving\n");
    ++failures;
  }
  // Sample trace-tree / wide-event artifacts, written atomically like
  // the live WriteMetricsFile path.
  if (!m2g::obs::WriteFileAtomic("traces.json",
                                 m2g::obs::ExportTracesJson()) ||
      !m2g::obs::WideEventSink::Global().WriteJsonl("events.jsonl")) {
    std::fprintf(stderr, "FAIL: could not write traces.json/events.jsonl\n");
    ++failures;
  } else {
    std::printf("%zu trace trees -> traces.json, %llu wide events -> "
                "events.jsonl\n",
                trace_trees,
                static_cast<unsigned long long>(wide_events));
  }

  namespace bench = m2g::bench;
  bench::JsonValue doc =
      bench::JsonValue::Object()
          .Set("bench", bench::JsonValue::String("obs_overhead"))
          .Set("mode", bench::JsonValue::String(smoke ? "smoke" : "full"))
          .Set("requests",
               bench::JsonValue::Int(static_cast<int64_t>(requests.size())))
          .Set("passes", bench::JsonValue::Int(reps * attempts))
          .Set("on_seconds", bench::JsonValue::Number(ab.on_seconds))
          .Set("off_seconds", bench::JsonValue::Number(ab.off_seconds))
          .Set("overhead", bench::JsonValue::Number(ab.overhead()))
          .Set("per_request_us", bench::JsonValue::Number(per_req_us))
          .Set("batched_requests",
               bench::JsonValue::Int(static_cast<int64_t>(batched_requests)))
          .Set("trace_trees",
               bench::JsonValue::Int(static_cast<int64_t>(trace_trees)))
          .Set("wide_events",
               bench::JsonValue::Int(static_cast<int64_t>(wide_events)))
          .Set("export_check_failures", bench::JsonValue::Int(failures));
  if (!bench::WriteBenchJson("BENCH_obs_overhead.json", doc)) ++failures;

  if (smoke) {
    if (ab.overhead() > budget) {
      std::fprintf(stderr,
                   "FAIL: telemetry overhead %.2f%% exceeds %.0f%% budget\n",
                   100.0 * ab.overhead(), 100.0 * budget);
      ++failures;
    }
    if (failures == 0) {
      std::printf("smoke OK: %.2f%% overhead, all exports present\n",
                  100.0 * ab.overhead());
    }
    return failures == 0 ? 0 : 1;
  }
  return 0;
}
