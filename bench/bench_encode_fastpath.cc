// Encode fast-path bench: A/B of the fused no-grad GAT-e kernels driven
// through a per-request EncodePlan (LevelEncoder::EncodeFast) against the
// legacy op-graph encode (EncodeLegacy), across n in {10, 25, 50, 100}
// nodes at paper dims (hidden 48, 4 heads, 2 layers). Three modes per n:
// encode only, and end-to-end encode -> route decode -> SortLSTM ETA at
// greedy and beam-10 (the decode itself runs the PR-4 fast path in both
// arms — only the encode differs). Every cell also checks byte-identical
// outputs: node/edge representations for encode cells, routes plus
// per-node ETA float bits for end-to-end cells. The fast path is a pure
// restructuring, so any divergence is a bug, not noise.
//
// --smoke runs few iterations and gates on
//   * outputs identical in every cell,
//   * >= 2.0x encode-only speedup at n = 50,
//   * >= 1.5x end-to-end speedup at n = 50, greedy and beam-10 (the
//     shared decode + ETA stages dilute the encode win, so the
//     end-to-end floor is lower — same split as the decode bench),
//   * zero steady-state pool misses for a warm planned encode,
//   * BENCH_encode.json written.
// Both modes dump BENCH_encode.json at the CWD (repo root in CI) for the
// perf-trajectory artifact trail.
//
// Scale knob: M2G_BENCH_ENCODE_ITERS (default 30 full / 6 smoke).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/encode_plan.h"
#include "core/encoder.h"
#include "core/route_decoder.h"
#include "core/sort_lstm.h"
#include "graph/features.h"
#include "synth/world.h"
#include "tensor/grad_mode.h"
#include "tensor/pool.h"

namespace {

using namespace m2g;

volatile float g_sink = 0;

/// Per-call milliseconds: one untimed warm-up call inside a fresh arena
/// (fills the free lists and the branch predictors), then three timed
/// rounds on the warm pool, reporting the fastest round's mean. The min
/// over rounds discards transient load spikes from the shared CI box, so
/// the A/B ratio is stable at smoke iteration counts.
template <typename F>
double MeasureMs(F&& fn, int iters) {
  ArenaGuard arena;
  fn();
  const int rounds = 3;
  const int per_round = iters / rounds > 0 ? iters / rounds : 1;
  double best = 0;
  for (int r = 0; r < rounds; ++r) {
    Stopwatch watch;
    for (int i = 0; i < per_round; ++i) fn();
    const double ms = watch.ElapsedMillis() / per_round;
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

/// Random but structurally valid level graph: symmetric adjacency with
/// self-loops, ids within the embedding vocabularies.
graph::LevelGraph MakeLevel(int n, Rng* rng) {
  graph::LevelGraph level;
  level.n = n;
  level.node_continuous =
      Matrix::Random(n, graph::kLocationContinuousDim, -1, 1, rng);
  level.node_aoi_id.resize(n);
  level.node_aoi_type.resize(n);
  for (int i = 0; i < n; ++i) {
    level.node_aoi_id[i] = rng->UniformInt(0, 511);
    level.node_aoi_type[i] = rng->UniformInt(0, synth::kNumAoiTypes - 1);
  }
  level.edge_features = Matrix::Random(n * n, graph::kEdgeDim, 0, 1, rng);
  level.adjacency.assign(static_cast<size_t>(n) * n, false);
  for (int i = 0; i < n; ++i) {
    level.adjacency[static_cast<size_t>(i) * n + i] = true;
    for (int j = i + 1; j < n; ++j) {
      if (rng->Bernoulli(0.4)) {
        level.adjacency[static_cast<size_t>(i) * n + j] = true;
        level.adjacency[static_cast<size_t>(j) * n + i] = true;
      }
    }
  }
  return level;
}

/// One request's outputs, flattened for byte comparison.
struct RequestOut {
  std::vector<int> route;
  std::vector<float> times;
  std::vector<float> nodes;
  std::vector<float> edges;

  bool operator==(const RequestOut& o) const {
    return route == o.route &&
           times.size() == o.times.size() &&
           std::memcmp(times.data(), o.times.data(),
                       times.size() * sizeof(float)) == 0 &&
           nodes.size() == o.nodes.size() &&
           std::memcmp(nodes.data(), o.nodes.data(),
                       nodes.size() * sizeof(float)) == 0 &&
           edges.size() == o.edges.size() &&
           std::memcmp(edges.data(), o.edges.data(),
                       edges.size() * sizeof(float)) == 0;
  }
};

struct CellResult {
  int n = 0;
  std::string mode;  // "encode", "e2e_greedy", "e2e_beam10"
  double legacy_ms = 0;
  double fast_ms = 0;
  bool identical = false;

  double speedup() const {
    return fast_ms > 0 ? legacy_ms / fast_ms : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  int iters = smoke ? 6 : 30;
  if (const char* v = std::getenv("M2G_BENCH_ENCODE_ITERS")) {
    const int n = std::atoi(v);
    if (n > 0) iters = n;
  }
  // Paper dims (core::ModelConfig defaults: hidden 48, 4 heads, 2
  // layers, courier 24, LSTM 48) — the location-level serving hot path.
  core::ModelConfig config;
  config.seed = 20230707;
  Rng rng(config.seed);
  core::LevelEncoder encoder(config, graph::kLocationContinuousDim, &rng);
  core::AttentionRouteDecoder decoder(config.hidden_dim, config.courier_dim,
                                      config.lstm_hidden_dim, &rng);
  core::SortLstm sort_lstm(config.hidden_dim, config.pos_enc_dim,
                           config.pos_enc_base, config.lstm_hidden_dim, &rng,
                           config.hidden_dim);
  Tensor global =
      Tensor::Constant(Matrix::Random(1, config.courier_dim, -1, 1, &rng));

  std::printf("encode fast path vs legacy (%d iters/cell, hidden %d, %d "
              "heads, %d layers)\n",
              iters, config.hidden_dim, config.num_heads, config.num_layers);
  std::printf("%6s %12s %12s %12s %9s %10s\n", "n", "mode", "legacy(ms)",
              "fast(ms)", "speedup", "identical");

  NoGradGuard no_grad;  // serving runs under no-grad in both arms
  std::vector<CellResult> cells;
  uint64_t steady_misses = 0;
  for (int n : {10, 25, 50, 100}) {
    const graph::LevelGraph level = MakeLevel(n, &rng);

    // `beam` 0 = encode only, 1 = greedy end-to-end, >1 = beam.
    const auto request = [&](bool fast, int beam) {
      RequestOut out;
      core::EncodedLevel enc;
      if (fast) {
        core::EncodePlan plan(n, config.hidden_dim);
        enc = encoder.EncodeFast(level, global, &plan);
      } else {
        enc = encoder.EncodeLegacy(level, global);
      }
      if (beam == 0) {
        const Matrix& nv = enc.nodes.value();
        const Matrix& ev = enc.edges.value();
        out.nodes.assign(nv.data(), nv.data() + nv.size());
        out.edges.assign(ev.data(), ev.data() + ev.size());
        g_sink = g_sink + out.nodes.front();
        return out;
      }
      out.route = beam == 1
                      ? decoder.DecodeGreedy(enc.nodes, global)
                      : decoder.DecodeBeam(enc.nodes, global, beam);
      for (const Tensor& t :
           sort_lstm.Forward(enc.nodes, out.route, enc.edges)) {
        out.times.push_back(t.item());
      }
      g_sink = g_sink + out.times.front();
      return out;
    };

    for (const auto& [mode, beam] :
         std::vector<std::pair<std::string, int>>{
             {"encode", 0}, {"e2e_greedy", 1}, {"e2e_beam10", 10}}) {
      CellResult cell;
      cell.n = n;
      cell.mode = mode;
      {
        ArenaGuard check;
        cell.identical = request(true, beam) == request(false, beam);
      }
      cell.legacy_ms = MeasureMs([&] { request(false, beam); }, iters);
      cell.fast_ms = MeasureMs([&] { request(true, beam); }, iters);
      std::printf("%6d %12s %12.4f %12.4f %8.2fx %10s\n", n, mode.c_str(),
                  cell.legacy_ms, cell.fast_ms, cell.speedup(),
                  cell.identical ? "yes" : "NO");
      cells.push_back(cell);
    }

    if (n == 50) {
      // Warm planned encode must run entirely off the free lists.
      {
        ArenaGuard warmup;
        request(true, 0);
      }
      ArenaGuard steady;
      request(true, 0);
      steady_misses = steady.ScopeStats().pool_misses;
    }
  }

  bench::JsonValue results = bench::JsonValue::Array();
  for (const CellResult& c : cells) {
    results.Push(bench::JsonValue::Object()
                     .Set("n", bench::JsonValue::Int(c.n))
                     .Set("mode", bench::JsonValue::String(c.mode))
                     .Set("legacy_ms", bench::JsonValue::Number(c.legacy_ms))
                     .Set("fast_ms", bench::JsonValue::Number(c.fast_ms))
                     .Set("speedup", bench::JsonValue::Number(c.speedup()))
                     .Set("outputs_identical",
                          bench::JsonValue::Bool(c.identical)));
  }
  bench::JsonValue doc =
      bench::JsonValue::Object()
          .Set("bench", bench::JsonValue::String("encode_fastpath"))
          .Set("mode", bench::JsonValue::String(smoke ? "smoke" : "full"))
          .Set("iters", bench::JsonValue::Int(iters))
          .Set("hidden_dim", bench::JsonValue::Int(config.hidden_dim))
          .Set("num_heads", bench::JsonValue::Int(config.num_heads))
          .Set("num_layers", bench::JsonValue::Int(config.num_layers))
          .Set("steady_pool_misses",
               bench::JsonValue::Int(static_cast<int64_t>(steady_misses)))
          .Set("results", std::move(results));
  const bool json_ok = bench::WriteBenchJson("BENCH_encode.json", doc);

  bool ok = json_ok;
  for (const CellResult& c : cells) {
    if (!c.identical) {
      std::fprintf(stderr, "FAIL: fast/legacy outputs differ at n=%d %s\n",
                   c.n, c.mode.c_str());
      ok = false;
    }
  }
  if (steady_misses != 0) {
    std::fprintf(stderr, "FAIL: %llu steady-state pool misses\n",
                 static_cast<unsigned long long>(steady_misses));
    ok = false;
  }
  if (smoke) {
    for (const CellResult& c : cells) {
      if (c.n != 50) continue;
      const double need = c.mode == "encode" ? 2.0 : 1.5;
      if (c.speedup() < need) {
        std::fprintf(stderr,
                     "FAIL: n=50 %s speedup %.2fx < required %.2fx\n",
                     c.mode.c_str(), c.speedup(), need);
        ok = false;
      }
    }
  }
  if (!ok) return 1;
  std::printf(smoke ? "encode fast-path smoke OK\n" : "done\n");
  return 0;
}
