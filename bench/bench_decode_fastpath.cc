// Decode fast-path bench: A/B of the request-scoped key cache + batched
// beam decode (AttentionRouteDecoder::DecodeGreedy/DecodeBeam) against
// the legacy per-step recompute (Decode*Legacy), across n in {10, 25,
// 50, 100} nodes and beam widths {1, 5, 10} at paper dims (node 48,
// courier 24, LSTM 48). Every cell also checks the two paths emit
// byte-identical routes — the fast path is a pure restructuring, so any
// divergence is a bug, not noise.
//
// --smoke runs few iterations and gates on
//   * routes identical in every cell,
//   * >= 2.0x greedy speedup at n = 50,
//   * >= 1.5x beam-10 speedup at n = 50,
//   * BENCH_decode.json written.
// Both modes dump BENCH_decode.json at the CWD (repo root in CI) for the
// perf-trajectory artifact trail.
//
// Scale knob: M2G_BENCH_DECODE_ITERS (default 40 full / 5 smoke).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/route_decoder.h"
#include "tensor/grad_mode.h"
#include "tensor/pool.h"

namespace {

using namespace m2g;

volatile float g_sink = 0;

/// Mean per-call milliseconds: one untimed warm-up call inside a fresh
/// arena (fills the free lists and the branch predictors), then `iters`
/// timed calls on the warm pool.
template <typename F>
double MeasureMs(F&& fn, int iters) {
  ArenaGuard arena;
  fn();
  Stopwatch watch;
  for (int i = 0; i < iters; ++i) fn();
  return watch.ElapsedMillis() / iters;
}

struct CellResult {
  int n = 0;
  int beam = 0;
  double legacy_ms = 0;
  double fast_ms = 0;
  bool identical = false;

  double speedup() const {
    return fast_ms > 0 ? legacy_ms / fast_ms : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  int iters = smoke ? 5 : 40;
  if (const char* v = std::getenv("M2G_BENCH_DECODE_ITERS")) {
    const int n = std::atoi(v);
    if (n > 0) iters = n;
  }
  // Paper dims (core::ModelConfig defaults): the location-level decoder
  // is the serving hot path.
  const int node_dim = 48, courier_dim = 24, lstm_hidden = 48;
  Rng rng(20230707);
  core::AttentionRouteDecoder decoder(node_dim, courier_dim, lstm_hidden,
                                      &rng);

  std::printf("decode fast path vs legacy (%d iters/cell, dims %d/%d/%d)\n",
              iters, node_dim, courier_dim, lstm_hidden);
  std::printf("%6s %6s %12s %12s %9s %10s\n", "n", "beam", "legacy(ms)",
              "fast(ms)", "speedup", "identical");

  std::vector<CellResult> cells;
  for (int n : {10, 25, 50, 100}) {
    Tensor nodes =
        Tensor::Constant(Matrix::Random(n, node_dim, -1.0f, 1.0f, &rng));
    Tensor courier =
        Tensor::Constant(Matrix::Random(1, courier_dim, -1.0f, 1.0f, &rng));
    for (int beam : {1, 5, 10}) {
      const auto fast = [&] {
        std::vector<int> r = beam == 1
                                 ? decoder.DecodeGreedy(nodes, courier)
                                 : decoder.DecodeBeam(nodes, courier, beam);
        g_sink = g_sink + static_cast<float>(r.front());
        return r;
      };
      const auto legacy = [&] {
        // No-grad for fairness: this is what the legacy path cost in
        // serving, without per-step autograd bookkeeping on top.
        NoGradGuard no_grad;
        std::vector<int> r =
            beam == 1 ? decoder.DecodeGreedyLegacy(nodes, courier)
                      : decoder.DecodeBeamLegacy(nodes, courier, beam);
        g_sink = g_sink + static_cast<float>(r.front());
        return r;
      };
      CellResult cell;
      cell.n = n;
      cell.beam = beam;
      cell.identical = fast() == legacy();
      cell.legacy_ms = MeasureMs(legacy, iters);
      cell.fast_ms = MeasureMs(fast, iters);
      std::printf("%6d %6d %12.4f %12.4f %8.2fx %10s\n", n, beam,
                  cell.legacy_ms, cell.fast_ms, cell.speedup(),
                  cell.identical ? "yes" : "NO");
      cells.push_back(cell);
    }
  }

  bench::JsonValue results = bench::JsonValue::Array();
  for (const CellResult& c : cells) {
    results.Push(bench::JsonValue::Object()
                     .Set("n", bench::JsonValue::Int(c.n))
                     .Set("beam", bench::JsonValue::Int(c.beam))
                     .Set("legacy_ms", bench::JsonValue::Number(c.legacy_ms))
                     .Set("fast_ms", bench::JsonValue::Number(c.fast_ms))
                     .Set("speedup", bench::JsonValue::Number(c.speedup()))
                     .Set("routes_identical",
                          bench::JsonValue::Bool(c.identical)));
  }
  bench::JsonValue doc =
      bench::JsonValue::Object()
          .Set("bench", bench::JsonValue::String("decode_fastpath"))
          .Set("mode", bench::JsonValue::String(smoke ? "smoke" : "full"))
          .Set("iters", bench::JsonValue::Int(iters))
          .Set("node_dim", bench::JsonValue::Int(node_dim))
          .Set("results", std::move(results));
  const bool json_ok = bench::WriteBenchJson("BENCH_decode.json", doc);

  bool ok = json_ok;
  for (const CellResult& c : cells) {
    if (!c.identical) {
      std::fprintf(stderr,
                   "FAIL: fast/legacy routes differ at n=%d beam=%d\n", c.n,
                   c.beam);
      ok = false;
    }
  }
  if (smoke) {
    for (const CellResult& c : cells) {
      if (c.n != 50) continue;
      const double need = c.beam == 1 ? 2.0 : (c.beam == 10 ? 1.5 : 0.0);
      if (need > 0 && c.speedup() < need) {
        std::fprintf(stderr,
                     "FAIL: n=50 beam=%d speedup %.2fx < required %.2fx\n",
                     c.beam, c.speedup(), need);
        ok = false;
      }
    }
  }
  if (!ok) return 1;
  std::printf(smoke ? "decode fast-path smoke OK\n" : "done\n");
  return 0;
}
