// Reproduces Table V (scalability analysis): single-request inference
// latency per method, measured with google-benchmark, plus the paper's
// complexity column. Models are trained briefly first — inference cost
// does not depend on weight quality.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <memory>

#include "bench/bench_util.h"
#include "eval/latency.h"

namespace {

using namespace m2g;

struct Context {
  synth::DatasetSplits splits;
  std::map<std::string, std::unique_ptr<eval::RtpModel>> models;
};

Context* GlobalContext() {
  static Context* ctx = [] {
    auto* c = new Context();
    c->splits = synth::BuildDataset(bench::StandardDataConfig());
    eval::EvalScale scale;
    scale.epochs = 1;  // latency is independent of training quality
    scale.max_samples_per_epoch = 60;
    for (const std::string& name : eval::AllMethodNames()) {
      auto model = eval::CreateModel(name, scale);
      model->Fit(c->splits.train, c->splits.val);
      c->models.emplace(name, std::move(model));
    }
    return c;
  }();
  return ctx;
}

void BM_Inference(benchmark::State& state, const std::string& method) {
  Context* ctx = GlobalContext();
  const eval::RtpModel& model = *ctx->models.at(method);
  const auto& samples = ctx->splits.test.samples;
  size_t i = 0;
  for (auto _ : state) {
    core::RtpPrediction pred = model.Predict(samples[i++ % samples.size()]);
    benchmark::DoNotOptimize(pred.location_route.data());
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (const std::string& name : eval::AllMethodNames()) {
    benchmark::RegisterBenchmark(("inference/" + name).c_str(),
                                 BM_Inference, name)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // The paper-style Table V with complexity formulas and percentiles.
  Context* ctx = GlobalContext();
  std::vector<eval::LatencyResult> rows;
  for (const std::string& name : eval::AllMethodNames()) {
    rows.push_back(
        eval::MeasureLatency(*ctx->models.at(name),
                             ctx->splits.test.samples));
  }
  // Extra row: M2G4RTP under NoGradGuard (the serving path) — same
  // forward values, no autograd graph built.
  rows.push_back(eval::MeasureLatency(*ctx->models.at("M2G4RTP"),
                                      ctx->splits.test.samples,
                                      /*no_grad=*/true));
  std::printf("\n");
  eval::PrintScalabilityTable(rows);
  std::printf(
      "\nShape check (paper): M2G4RTP is the slowest deep model (extra "
      "A^2 F^2 term)\nbut stays sub-millisecond-scale per request; "
      "heuristics are fastest.\n");
  return 0;
}
