// Incremental re-encode bench: an order-arrival stream (n = 10 -> 50,
// one node at a time, kNN-rewired like the serving graph builder) encoded
// two ways — a full EncodeFast per arrival (the stateless serving cost)
// versus one warm EncodeFastCached followed by EncodeDelta per arrival
// (the encode-session path, including any capacity-growth re-warms the
// stream hits). Every arrival's node and edge representations are also
// checked byte-identical between the arms: the delta path is a pure
// reuse, so any divergence is a bug, not noise.
//
// --smoke runs fewer rounds and gates on
//   * encodings byte-identical at every stream step,
//   * amortized stream speedup >= M2G_BENCH_INCR_MIN_SPEEDUP (default
//     2.0) — full-arm total ms / incremental-arm total ms. The floor
//     was 3.0 (measured ~3.4x) against the scalar kernels; the SIMD
//     tier made the full-encode baseline itself ~4x faster, which
//     compresses the *ratio* while improving both arms' absolute
//     times (measured ~2.4x amortized on the AVX2 dev container),
//   * most steps actually took the delta path (the stream must not live
//     on fallbacks),
//   * BENCH_incremental.json written.
// Both modes dump BENCH_incremental.json at the CWD (repo root in CI)
// for the perf-trajectory artifact trail.
//
// CI floor caveat: like bench_serving_throughput, the floor assumes the
// runner gives the process a mostly idle core; a preempted box can dip
// below it, which is why the floor is env-tunable rather than hard-coded.
//
// Scale knobs: M2G_BENCH_INCR_ROUNDS (default 10 full / 3 smoke),
// M2G_BENCH_INCR_MIN_SPEEDUP.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/encode_plan.h"
#include "core/encoder.h"
#include "core/incremental_encode.h"
#include "graph/features.h"
#include "graph/multi_level_graph.h"
#include "synth/world.h"
#include "tensor/grad_mode.h"
#include "tensor/pool.h"

namespace {

using namespace m2g;

constexpr int kStartNodes = 10;
constexpr int kEndNodes = 50;

volatile float g_sink = 0;

/// The arrival stream's node pool: fixed points/deadlines drawn once, so
/// the graph at m nodes is a pure function of m — node features are
/// per-node, edge features pair-local, and adjacency is kNN over the
/// prefix (arrivals rewire a spatial/temporal neighborhood, exactly like
/// the serving graph builder).
struct NodePool {
  std::vector<geo::LatLng> points;
  std::vector<double> deadlines;
  Matrix features;  // (kEndNodes, kLocationContinuousDim)
  std::vector<int> aoi_ids;
  std::vector<int> aoi_types;

  explicit NodePool(Rng* rng)
      : features(Matrix::Random(kEndNodes, graph::kLocationContinuousDim,
                                -1, 1, rng)) {
    const geo::LatLng base{30.25, 120.17};
    for (int i = 0; i < kEndNodes; ++i) {
      points.push_back(geo::OffsetMeters(base, rng->Uniform(-2500, 2500),
                                         rng->Uniform(-2500, 2500)));
      deadlines.push_back(rng->Uniform(0, 600));
      aoi_ids.push_back(rng->UniformInt(0, 511));
      aoi_types.push_back(rng->UniformInt(0, synth::kNumAoiTypes - 1));
    }
  }

  graph::LevelGraph Level(int m, int k_neighbors) const {
    graph::LevelGraph level;
    level.n = m;
    level.node_continuous = Matrix::Uninit(m, graph::kLocationContinuousDim);
    std::memcpy(level.node_continuous.data(), features.data(),
                sizeof(float) * static_cast<size_t>(m) *
                    graph::kLocationContinuousDim);
    level.node_aoi_id.assign(aoi_ids.begin(), aoi_ids.begin() + m);
    level.node_aoi_type.assign(aoi_types.begin(), aoi_types.begin() + m);
    const std::vector<geo::LatLng> pts(points.begin(), points.begin() + m);
    const std::vector<double> dls(deadlines.begin(), deadlines.begin() + m);
    level.adjacency = graph::KnnConnectivity(pts, dls, k_neighbors);
    level.edge_features = graph::EdgeFeatures(pts, dls, level.adjacency);
    return level;
  }
};

bool LevelsBitEqual(const core::EncodedLevel& a, const core::EncodedLevel& b) {
  const Matrix& an = a.nodes.value();
  const Matrix& bn = b.nodes.value();
  const Matrix& ae = a.edges.value();
  const Matrix& be = b.edges.value();
  return an.size() == bn.size() && ae.size() == be.size() &&
         std::memcmp(an.data(), bn.data(), an.size() * sizeof(float)) == 0 &&
         std::memcmp(ae.data(), be.data(), ae.size() * sizeof(float)) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  int rounds = smoke ? 3 : 10;
  if (const char* v = std::getenv("M2G_BENCH_INCR_ROUNDS")) {
    const int n = std::atoi(v);
    if (n > 0) rounds = n;
  }
  double min_speedup = 2.0;
  if (const char* v = std::getenv("M2G_BENCH_INCR_MIN_SPEEDUP")) {
    const double s = std::atof(v);
    if (s > 0) min_speedup = s;
  }

  // Paper dims (hidden 48, 4 heads, 2 layers) — the location-level
  // serving hot path, kNN degree from the config default.
  core::ModelConfig config;
  config.seed = 20260807;
  Rng rng(config.seed);
  core::LevelEncoder encoder(config, graph::kLocationContinuousDim, &rng);
  Tensor global =
      Tensor::Constant(Matrix::Random(1, config.courier_dim, -1, 1, &rng));
  NodePool pool(&rng);

  NoGradGuard no_grad;  // serving runs under no-grad in both arms

  // Pre-build the stream's graphs; graph construction is outside both
  // timed arms (the serving layer pays it on either path).
  std::vector<graph::LevelGraph> stream;
  for (int m = kStartNodes; m <= kEndNodes; ++m) {
    stream.push_back(pool.Level(m, config.graph.k_neighbors));
  }
  const int steps = static_cast<int>(stream.size());

  // Parity + path census (untimed): every arrival byte-identical, and
  // count how the incremental arm actually served each step.
  int delta_steps = 0;
  int fallback_steps = 0;
  bool identical = true;
  {
    ArenaGuard arena;
    core::LevelEncodeCache cache;
    core::EncodePlan plan(kEndNodes, config.hidden_dim);
    for (int i = 0; i < steps; ++i) {
      core::EncodedLevel incr;
      if (i == 0) {
        incr = encoder.EncodeFastCached(stream[i], global, &plan, &cache);
      } else {
        const graph::LevelGraphDelta delta =
            graph::DiffLevelGraph(stream[i - 1], stream[i]);
        std::optional<core::EncodedLevel> d = encoder.EncodeDelta(
            stream[i], stream[i - 1], delta, global, &plan, &cache);
        if (d.has_value()) {
          ++delta_steps;
          incr = std::move(*d);
        } else {
          ++fallback_steps;
          incr = encoder.EncodeFastCached(stream[i], global, &plan, &cache);
        }
      }
      core::EncodePlan fresh_plan(stream[i].n, config.hidden_dim);
      core::EncodedLevel full =
          encoder.EncodeFast(stream[i], global, &fresh_plan);
      identical = identical && LevelsBitEqual(incr, full);
    }
  }

  // Timed arms: whole-stream totals, fastest of `rounds` (discards
  // transient load spikes on a shared CI box). The incremental arm
  // restarts cold each round — its warm-up full encode and any capacity
  // re-warms are inside the measured total, so the speedup is amortized,
  // not cherry-picked.
  const auto full_stream_ms = [&] {
    ArenaGuard arena;
    Stopwatch watch;
    for (int i = 0; i < steps; ++i) {
      core::EncodePlan plan(stream[i].n, config.hidden_dim);
      core::EncodedLevel enc = encoder.EncodeFast(stream[i], global, &plan);
      g_sink = g_sink + enc.nodes.value().data()[0];
    }
    return watch.ElapsedMillis();
  };
  const auto incremental_stream_ms = [&] {
    ArenaGuard arena;
    core::LevelEncodeCache cache;
    core::EncodePlan plan(kEndNodes, config.hidden_dim);
    Stopwatch watch;
    for (int i = 0; i < steps; ++i) {
      core::EncodedLevel enc;
      bool served = false;
      if (i > 0) {
        const graph::LevelGraphDelta delta =
            graph::DiffLevelGraph(stream[i - 1], stream[i]);
        std::optional<core::EncodedLevel> d = encoder.EncodeDelta(
            stream[i], stream[i - 1], delta, global, &plan, &cache);
        if (d.has_value()) {
          enc = std::move(*d);
          served = true;
        }
      }
      if (!served) {
        enc = encoder.EncodeFastCached(stream[i], global, &plan, &cache);
      }
      g_sink = g_sink + enc.nodes.value().data()[0];
    }
    return watch.ElapsedMillis();
  };

  full_stream_ms();         // warm-up (pool free lists, branch predictors)
  incremental_stream_ms();  // warm-up
  double full_ms = 0;
  double incr_ms = 0;
  for (int r = 0; r < rounds; ++r) {
    const double f = full_stream_ms();
    const double d = incremental_stream_ms();
    if (r == 0 || f < full_ms) full_ms = f;
    if (r == 0 || d < incr_ms) incr_ms = d;
  }
  const double speedup = incr_ms > 0 ? full_ms / incr_ms : 0.0;

  std::printf("incremental encode, arrival stream n=%d..%d (%d steps, %d "
              "rounds, hidden %d, %d heads, %d layers)\n",
              kStartNodes, kEndNodes, steps, rounds, config.hidden_dim,
              config.num_heads, config.num_layers);
  std::printf("  full re-encode: %9.3f ms/stream (%.4f ms/arrival)\n",
              full_ms, full_ms / steps);
  std::printf("  incremental:    %9.3f ms/stream (%.4f ms/arrival)\n",
              incr_ms, incr_ms / steps);
  std::printf("  speedup: %.2fx (floor %.2fx)  delta steps: %d/%d  "
              "fallbacks: %d  identical: %s\n",
              speedup, min_speedup, delta_steps, steps - 1, fallback_steps,
              identical ? "yes" : "NO");

  bench::JsonValue doc =
      bench::JsonValue::Object()
          .Set("bench", bench::JsonValue::String("incremental_encode"))
          .Set("mode", bench::JsonValue::String(smoke ? "smoke" : "full"))
          .Set("rounds", bench::JsonValue::Int(rounds))
          .Set("start_nodes", bench::JsonValue::Int(kStartNodes))
          .Set("end_nodes", bench::JsonValue::Int(kEndNodes))
          .Set("hidden_dim", bench::JsonValue::Int(config.hidden_dim))
          .Set("num_heads", bench::JsonValue::Int(config.num_heads))
          .Set("num_layers", bench::JsonValue::Int(config.num_layers))
          .Set("full_stream_ms", bench::JsonValue::Number(full_ms))
          .Set("incremental_stream_ms", bench::JsonValue::Number(incr_ms))
          .Set("speedup", bench::JsonValue::Number(speedup))
          .Set("min_speedup", bench::JsonValue::Number(min_speedup))
          .Set("delta_steps", bench::JsonValue::Int(delta_steps))
          .Set("fallback_steps", bench::JsonValue::Int(fallback_steps))
          .Set("outputs_identical", bench::JsonValue::Bool(identical));
  const bool json_ok = bench::WriteBenchJson("BENCH_incremental.json", doc);

  bool ok = json_ok;
  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: incremental/full encodings differ on the stream\n");
    ok = false;
  }
  if (delta_steps < (steps - 1) / 2) {
    std::fprintf(stderr,
                 "FAIL: only %d/%d arrivals took the delta path\n",
                 delta_steps, steps - 1);
    ok = false;
  }
  if (smoke && speedup < min_speedup) {
    std::fprintf(stderr, "FAIL: amortized speedup %.2fx < required %.2fx\n",
                 speedup, min_speedup);
    ok = false;
  }
  if (!ok) return 1;
  std::printf(smoke ? "incremental encode smoke OK\n" : "done\n");
  return 0;
}
