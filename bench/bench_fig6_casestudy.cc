// Reproduces Figure 6 (case study): prints real vs predicted routes for
// hard multi-AOI test samples, comparing Graph2Route (route bouncing
// between AOIs), FDNET and M2G4RTP, with per-sample time RMSE/MAE.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "eval/case_study.h"

int main() {
  using namespace m2g;
  synth::DatasetSplits splits =
      synth::BuildDataset(bench::StandardDataConfig());
  eval::EvalScale scale = bench::StandardScale();

  std::printf("=== Figure 6: Case Study ===\n");
  std::printf("training Graph2Route, FDNET, M2G4RTP ...\n");
  std::vector<std::unique_ptr<eval::RtpModel>> models;
  for (const std::string& name :
       {std::string("Graph2Route"), std::string("FDNET"),
        std::string("M2G4RTP")}) {
    models.push_back(eval::CreateModel(name, scale));
    models.back()->Fit(splits.train, splits.val);
  }

  std::vector<int> picks = eval::PickCaseStudySamples(splits.test, 2);
  if (picks.empty()) {
    picks = eval::PickCaseStudySamples(splits.test, 2, 2, 5);
  }
  int case_no = 1;
  for (int idx : picks) {
    const synth::Sample& s = splits.test.samples[idx];
    std::printf("\n--- Case %d ---\n", case_no++);
    std::vector<eval::CaseRendering> renderings;
    for (const auto& model : models) {
      renderings.push_back(eval::RenderCase(*model, s));
    }
    eval::PrintCase(s, renderings);
  }
  std::printf(
      "Shape check (paper): Graph2Route bounces between AOIs where "
      "M2G4RTP sweeps each AOI once;\nM2G4RTP's per-sample time RMSE/MAE "
      "beat FDNET's (paper: 11.56/10.43 vs 15.28/12.94).\n");

  // Statistical footing for the full-test-set comparison (these three
  // models are already trained): paired bootstrap over per-sample KRC /
  // MAE, which removes the shared per-sample difficulty variance.
  std::printf("\n=== Paired bootstrap over the full test set ===\n");
  const auto& m2g = *models[2];
  for (size_t j = 0; j < 2; ++j) {
    const auto& other = *models[j];
    auto route = eval::PairedRouteComparison(m2g, other, splits.test);
    auto time = eval::PairedTimeComparison(m2g, other, splits.test);
    std::printf("M2G4RTP vs %-12s  dKRC %+0.3f [%+0.3f,%+0.3f] p=%.3f | "
                "dMAE %+0.2f [%+0.2f,%+0.2f] p=%.3f\n",
                other.name().c_str(), route.mean_diff, route.diff_ci_low,
                route.diff_ci_high, route.p_value, time.mean_diff,
                time.diff_ci_low, time.diff_ci_high, time.p_value);
  }
  return 0;
}
