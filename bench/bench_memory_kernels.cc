// Memory & kernel layer bench (Table V companion row): heap allocations
// and nanoseconds per op for the transpose-free fused kernels vs the
// unfused compositions they replaced, plus the end-to-end serving
// numbers — allocations per request and QPS with the tensor pool on vs
// off.
//
// `--smoke` runs a reduced configuration suitable for CI and exits
// nonzero if the steady-state hot path is not actually malloc-free
// (any pool miss after warmup), if pooling saves fewer than 5x the
// per-request tensor heap allocations, or if any fused kernel runs
// slower than the unfused composition it replaced (floor 0.9x for
// timer noise at smoke iteration counts; M2G_BENCH_KERNEL_MIN_SPEEDUP
// overrides). The speedup gate exists because a fused kernel that
// loses to its reference is a regression this bench previously only
// *reported* — MatMulATB/ABT sat at ~0.5x for two PRs before anything
// failed.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "core/model.h"
#include "serve/replay.h"
#include "serve/rtp_service.h"
#include "synth/dataset.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"
#include "tensor/pool.h"
#include "tensor/tensor.h"

namespace {

using m2g::ArenaGuard;
using m2g::Matrix;
using m2g::Tensor;
using m2g::TensorPool;

volatile float g_sink = 0.0f;  // defeats dead-code elimination

void Sink(float v) { g_sink = g_sink + v; }

struct OpResult {
  double ns_per_op = 0;
  double bufs_per_op = 0;
};

/// Tensor buffers acquired so far on this thread, warm or cold (inside
/// an arena every Matrix takes exactly one of these; a warm pool turns
/// them into free-list pops instead of mallocs but each is still a
/// zero-fill plus bookkeeping).
uint64_t BufferAcquisitions() {
  const TensorPool::Stats s = TensorPool::ThreadStats();
  return s.pool_hits + s.pool_misses + s.unpooled_allocs;
}

/// Times `fn` over `iters` runs inside a warm arena and reports tensor
/// buffers per run. Three timed rounds keeping the fastest, as in the
/// other benches: a single pass at smoke iteration counts spans ~1 ms,
/// so one scheduler preemption on a shared CI core can inflate a row
/// by 2-3x and trip the speedup gate on a kernel that is actually fine.
template <typename Fn>
OpResult MeasureOp(int iters, Fn&& fn) {
  ArenaGuard arena;
  for (int i = 0; i < 8; ++i) fn();  // warm the free lists
  const uint64_t bufs0 = BufferAcquisitions();
  OpResult r;
  for (int round = 0; round < 3; ++round) {
    m2g::Stopwatch watch;
    for (int i = 0; i < iters; ++i) fn();
    const double ns = watch.ElapsedSeconds() * 1e9 / iters;
    if (round == 0 || ns < r.ns_per_op) r.ns_per_op = ns;
  }
  r.bufs_per_op = static_cast<double>(BufferAcquisitions() - bufs0) /
                  (3.0 * iters);
  return r;
}

struct KernelRow {
  std::string name;
  OpResult fused;
  OpResult unfused;
};

void PrintRow(std::vector<KernelRow>* rows, const char* name,
              const OpResult& fused, const OpResult& unfused) {
  std::printf("  %-22s %9.0f %11.0f %8.2fx %10.1f %12.1f\n", name,
              fused.ns_per_op, unfused.ns_per_op,
              unfused.ns_per_op / fused.ns_per_op, fused.bufs_per_op,
              unfused.bufs_per_op);
  rows->push_back({name, fused, unfused});
}

/// Typical decoder-step shapes: n graph nodes, d hidden units.
std::vector<KernelRow> BenchKernels(int iters) {
  const int n = 20, k = 64, m = 64;
  m2g::Rng rng(1);
  const Matrix a = Matrix::Random(k, n, -1, 1, &rng);
  const Matrix b = Matrix::Random(k, m, -1, 1, &rng);
  const Matrix x = Matrix::Random(n, k, -1, 1, &rng);
  const Matrix w = Matrix::Random(k, m, -1, 1, &rng);
  const Matrix bt = Matrix::Random(m, k, -1, 1, &rng);
  const Matrix bias = Matrix::Random(1, m, -1, 1, &rng);

  std::printf("\nkernels (n=%d, k=%d, m=%d)\n", n, k, m);
  std::printf("  %-22s %9s %11s %8s %10s %12s\n", "", "fused ns",
              "unfused ns", "speedup", "fused b/op", "unfused b/op");

  std::vector<KernelRow> rows;
  PrintRow(&rows, "MatMulATB",
           MeasureOp(iters, [&] { Sink(MatMulATB(a, b).At(0, 0)); }),
           MeasureOp(iters, [&] {
             Sink(MatMulRaw(TransposeRaw(a), b).At(0, 0));
           }));
  PrintRow(&rows, "MatMulABT",
           MeasureOp(iters, [&] { Sink(MatMulABT(x, bt).At(0, 0)); }),
           MeasureOp(iters, [&] {
             Sink(MatMulRaw(x, TransposeRaw(bt)).At(0, 0));
           }));
  PrintRow(&rows, "AffineRaw",
           MeasureOp(iters,
                     [&] {
                       Sink(AffineRaw(x, w, &bias, m2g::Activation::kRelu)
                                .At(0, 0));
                     }),
           MeasureOp(iters, [&] {
             Matrix out = MatMulRaw(x, w);
             for (int r = 0; r < out.rows(); ++r) {
               for (int c = 0; c < out.cols(); ++c) {
                 float v = out.At(r, c) + bias.At(0, c);
                 out.At(r, c) = v > 0 ? v : 0.0f;
               }
             }
             Sink(out.At(0, 0));
           }));

  // Autograd level: one fused node vs the three-node chain, forward +
  // backward (this is the per-layer cost inside training).
  Tensor xp = Tensor::Parameter(x);
  Tensor wp = Tensor::Parameter(w);
  Tensor bp = Tensor::Parameter(bias);
  PrintRow(&rows, "Affine fwd+bwd",
           MeasureOp(iters,
                     [&] {
                       Tensor y =
                           Affine(xp, wp, bp, m2g::Activation::kRelu);
                       Sum(y).Backward();
                       Sink(y.value().At(0, 0));
                     }),
           MeasureOp(iters, [&] {
             Tensor y = Relu(AddRowBroadcast(MatMul(xp, wp), bp));
             Sum(y).Backward();
             Sink(y.value().At(0, 0));
           }));
  return rows;
}

struct ServeResult {
  double allocs_per_req = 0;
  double qps = 0;
  uint64_t misses = 0;
};

ServeResult ServeLoop(const m2g::serve::RtpService& service,
                      const std::vector<m2g::serve::RtpRequest>& requests,
                      int passes) {
  // Warmup: one full pass over the request mix populates every size
  // class the measured pass will touch.
  for (const auto& req : requests) {
    Sink(static_cast<float>(
        service.Handle(req).prediction.location_times_min[0]));
  }
  TensorPool::ResetThreadStats();
  m2g::Stopwatch watch;
  int served = 0;
  for (int p = 0; p < passes; ++p) {
    for (const auto& req : requests) {
      Sink(static_cast<float>(
          service.Handle(req).prediction.location_route[0]));
      ++served;
    }
  }
  const double seconds = watch.ElapsedSeconds();
  const TensorPool::Stats stats = TensorPool::ThreadStats();
  ServeResult r;
  r.allocs_per_req = static_cast<double>(stats.heap_allocs) / served;
  r.qps = served / seconds;
  r.misses = stats.pool_misses;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const int kernel_iters = smoke ? 200 : 5000;
  const int serve_passes = smoke ? 2 : 10;

  std::printf("=== Memory & kernel layer (pool + fused ops) ===\n");
  const std::vector<KernelRow> kernel_rows = BenchKernels(kernel_iters);

  // End-to-end serving: the Figure 7 pipeline on an untrained model
  // (weights do not change the allocation profile).
  m2g::synth::DataConfig dc;
  dc.num_days = smoke ? 4 : 8;
  m2g::synth::BuiltWorld built = m2g::synth::BuildWorldAndDataset(dc);
  m2g::core::ModelConfig mc;
  m2g::core::M2g4Rtp model(mc);
  m2g::serve::RtpService service(&built.world, &model);

  std::vector<m2g::serve::RtpRequest> requests;
  const auto& samples = built.splits.test.samples;
  const size_t max_requests = smoke ? 16 : 64;
  for (size_t i = 0; i < samples.size() && i < max_requests; ++i) {
    requests.push_back(m2g::serve::RequestFromSample(samples[i]));
  }
  if (requests.empty()) {
    std::fprintf(stderr, "no test requests generated\n");
    return 1;
  }

  TensorPool::set_enabled(true);
  ServeResult pooled = ServeLoop(service, requests, serve_passes);
  TensorPool::set_enabled(false);
  ServeResult plain = ServeLoop(service, requests, serve_passes);
  TensorPool::set_enabled(true);
  const auto counters = m2g::serve::RtpService::pool_counters();

  const double ratio =
      plain.allocs_per_req / (pooled.allocs_per_req > 0
                                  ? pooled.allocs_per_req
                                  : 1.0 / requests.size());
  std::printf("\nserving (%zu distinct requests, %d passes)\n",
              requests.size(), serve_passes);
  std::printf("  %-10s %14s %10s %14s\n", "storage", "allocs/req", "QPS",
              "steady misses");
  std::printf("  %-10s %14.1f %10.0f %14llu\n", "pooled",
              pooled.allocs_per_req, pooled.qps,
              static_cast<unsigned long long>(pooled.misses));
  std::printf("  %-10s %14.1f %10.0f %14s\n", "plain",
              plain.allocs_per_req, plain.qps, "-");
  std::printf("\nTable V row: | pool+fused | %.1f allocs/req (%.0fx fewer) "
              "| %.0f QPS (%+.1f%%) | %llu lifetime pool misses |\n",
              pooled.allocs_per_req, ratio, pooled.qps,
              100.0 * (pooled.qps - plain.qps) / plain.qps,
              static_cast<unsigned long long>(counters.misses));

  namespace bench = m2g::bench;
  bench::JsonValue kernels_json = bench::JsonValue::Array();
  for (const KernelRow& row : kernel_rows) {
    kernels_json.Push(
        bench::JsonValue::Object()
            .Set("kernel", bench::JsonValue::String(row.name))
            .Set("fused_ns", bench::JsonValue::Number(row.fused.ns_per_op))
            .Set("unfused_ns",
                 bench::JsonValue::Number(row.unfused.ns_per_op))
            .Set("speedup", bench::JsonValue::Number(
                                row.unfused.ns_per_op / row.fused.ns_per_op))
            .Set("fused_bufs_per_op",
                 bench::JsonValue::Number(row.fused.bufs_per_op))
            .Set("unfused_bufs_per_op",
                 bench::JsonValue::Number(row.unfused.bufs_per_op)));
  }
  const auto serve_json = [](const ServeResult& r) {
    return bench::JsonValue::Object()
        .Set("allocs_per_req", bench::JsonValue::Number(r.allocs_per_req))
        .Set("qps", bench::JsonValue::Number(r.qps))
        .Set("steady_misses",
             bench::JsonValue::Int(static_cast<int64_t>(r.misses)));
  };
  bench::JsonValue doc =
      bench::JsonValue::Object()
          .Set("bench", bench::JsonValue::String("memory_kernels"))
          .Set("mode", bench::JsonValue::String(smoke ? "smoke" : "full"))
          .Set("kernel_iters", bench::JsonValue::Int(kernel_iters))
          .Set("kernels", std::move(kernels_json))
          .Set("serve_pooled", serve_json(pooled))
          .Set("serve_plain", serve_json(plain))
          .Set("alloc_ratio", bench::JsonValue::Number(ratio));
  const bool json_ok =
      bench::WriteBenchJson("BENCH_memory_kernels.json", doc);

  if (smoke) {
    int failures = json_ok ? 0 : 1;
    if (pooled.misses != 0) {
      std::fprintf(stderr,
                   "FAIL: %llu steady-state pool misses (want 0)\n",
                   static_cast<unsigned long long>(pooled.misses));
      ++failures;
    }
    if (ratio < 5.0) {
      std::fprintf(stderr,
                   "FAIL: pooling saves only %.1fx tensor heap "
                   "allocations per request (want >= 5x)\n",
                   ratio);
      ++failures;
    }
    double min_kernel_speedup = 0.9;
    if (const char* v = std::getenv("M2G_BENCH_KERNEL_MIN_SPEEDUP")) {
      const double s = std::atof(v);
      if (s > 0) min_kernel_speedup = s;
    }
    for (const KernelRow& row : kernel_rows) {
      const double speedup = row.unfused.ns_per_op / row.fused.ns_per_op;
      if (speedup < min_kernel_speedup) {
        std::fprintf(stderr,
                     "FAIL: fused %s is %.2fx vs its unfused reference "
                     "(want >= %.2fx) — a fused kernel slower than the "
                     "composition it replaces is a regression\n",
                     row.name.c_str(), speedup, min_kernel_speedup);
        ++failures;
      }
    }
    if (failures == 0) {
      std::printf("smoke OK: zero steady-state misses, %.0fx fewer "
                  "allocs/req\n",
                  ratio);
    }
    return failures == 0 ? 0 : 1;
  }
  return json_ok ? 0 : 1;
}
