// Serving throughput bench: A/B of the batching scheduler against the
// legacy one-thread-one-request path, 8 concurrent submitters hammering
// RtpService::Handle() with n = 50 location requests at paper dims
// (hidden 48, 4 heads, 2 layers, beam 10). Three phases:
//   * unbatched arm — batching_enabled off (the legacy path),
//   * batched arm — max batch 8, responses checked byte-identical to
//     sequential Predict() for every request,
//   * swap-under-load — registry-backed batched serving with a
//     mid-load Publish of identical weights: every request must return
//     the correct outputs tagged with a version that actually served
//     (1 or 2), zero failures.
// The batching win comes from running one request stream hot (a single
// ~MB working set, weight streams shared per batch) instead of 8
// preempting each other; how much of that shows up as wall-clock
// depends on the core count, so the smoke floor is picked from the
// detected hardware concurrency rather than hand-set per runner:
// >= 1.5x when the box has 4+ cores (the batching claim proper),
// >= 0.8x below that (a 1-core box can only show "not slower" — the
// arms time-slice the same core and the scheduler adds linger).
// BENCH_serving.json records the detected core count next to the
// speedup so the artifact trail says which regime each number is from.
//
// --smoke runs few rounds and gates on
//   * batched responses byte-identical to sequential Predict(),
//   * batched throughput >= the core-derived floor above
//     (M2G_BENCH_SERVING_MIN_SPEEDUP overrides it),
//   * swap under load: all requests correct, versions in {1, 2},
//   * BENCH_serving.json written (with per-request queue-wait
//     percentiles from the serve.batch.queue_wait.ms histogram).
//
// Scale knobs: M2G_BENCH_SERVING_REQUESTS (per thread per arm, default
// 20 full / 6 smoke), M2G_BENCH_SERVING_NODES (default 50),
// M2G_BENCH_SERVING_MIN_SPEEDUP (default from core count, see above).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "core/model.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/model_registry.h"
#include "serve/rtp_service.h"
#include "synth/world.h"
#include "tensor/grad_mode.h"

namespace {

using namespace m2g;

constexpr int kThreads = 8;

/// One n-location request per distinct submitter, crafted from the
/// world's AOIs (the dataset filter caps offline samples at 20
/// locations; serving-scale requests are built directly).
serve::RtpRequest MakeRequest(const synth::World& world, int nodes,
                              int seed) {
  Rng rng(0x5e51135 + seed);
  serve::RtpRequest req;
  req.courier.id = seed;
  req.courier.avg_speed_mps = 3.5 + 0.1 * seed;
  req.courier_pos = world.aoi(0).center;
  req.query_time_min = 9 * 60;
  req.weather = seed % 4;
  req.weekday = seed % 7;
  for (int i = 0; i < nodes; ++i) {
    synth::Order o;
    o.id = 1000 * seed + i;
    const int aoi = rng.UniformInt(0, world.num_aois() - 1);
    o.aoi_id = aoi;
    o.pos = world.aoi(aoi).center;
    o.pos.lat += rng.NextDouble() * 1e-3;
    o.pos.lng += rng.NextDouble() * 1e-3;
    o.accept_time_min = req.query_time_min - rng.UniformInt(5, 60);
    o.deadline_min = req.query_time_min + rng.UniformInt(30, 120);
    req.pending.push_back(o);
  }
  return req;
}

bool PredictionEq(const core::RtpPrediction& a,
                  const core::RtpPrediction& b) {
  return a.location_route == b.location_route &&
         a.aoi_route == b.aoi_route &&
         a.location_times_min.size() == b.location_times_min.size() &&
         std::memcmp(a.location_times_min.data(),
                     b.location_times_min.data(),
                     a.location_times_min.size() * sizeof(double)) == 0 &&
         a.aoi_times_min.size() == b.aoi_times_min.size() &&
         std::memcmp(a.aoi_times_min.data(), b.aoi_times_min.data(),
                     a.aoi_times_min.size() * sizeof(double)) == 0;
}

struct ArmResult {
  double wall_ms = 0;
  int requests = 0;
  bool identical = true;

  double rps() const { return requests / (wall_ms / 1000.0); }
};

/// Drives one arm: kThreads submitters, each serving its own request
/// `rounds` times, checking every response against the sequential
/// reference. One untimed warm round (pools, scheduler steady state),
/// then three timed repetitions keeping the fastest — the min discards
/// scheduling spikes from the shared CI box, as in the other benches.
ArmResult RunArm(const serve::RtpService& service,
                 const std::vector<serve::RtpRequest>& requests,
                 const std::vector<core::RtpPrediction>& want, int rounds) {
  ArmResult result;
  result.requests = kThreads * rounds;
  std::vector<char> thread_ok(kThreads, 1);
  {
    std::vector<std::thread> warm;
    for (int t = 0; t < kThreads; ++t) {
      warm.emplace_back([&, t] { service.Handle(requests[t]); });
    }
    for (std::thread& th : warm) th.join();
  }
  for (int rep = 0; rep < 3; ++rep) {
    Stopwatch watch;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int r = 0; r < rounds; ++r) {
          const serve::RtpService::Response resp =
              service.Handle(requests[t]);
          if (!PredictionEq(resp.prediction, want[t])) thread_ok[t] = 0;
        }
      });
    }
    for (std::thread& th : threads) th.join();
    const double ms = watch.ElapsedMillis();
    if (rep == 0 || ms < result.wall_ms) result.wall_ms = ms;
  }
  for (int t = 0; t < kThreads; ++t) {
    result.identical = result.identical && thread_ok[t] != 0;
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  int rounds = smoke ? 6 : 20;
  if (const char* v = std::getenv("M2G_BENCH_SERVING_REQUESTS")) {
    const int n = std::atoi(v);
    if (n > 0) rounds = n;
  }
  int nodes = 50;
  if (const char* v = std::getenv("M2G_BENCH_SERVING_NODES")) {
    const int n = std::atoi(v);
    if (n > 0) nodes = n;
  }
  // Floor from detected hardware concurrency (see header comment):
  // the 1.5x batching claim needs real parallelism to show as
  // wall-clock; a <4-core box only gets the "not slower" floor.
  // hardware_concurrency() may return 0 ("unknown"); treat that as 1.
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  double min_speedup = cores >= 4 ? 1.5 : 0.8;
  if (const char* v = std::getenv("M2G_BENCH_SERVING_MIN_SPEEDUP")) {
    const double s = std::atof(v);
    if (s > 0) min_speedup = s;
  }
  int max_batch = kThreads;
  if (const char* v = std::getenv("M2G_BENCH_SERVING_BATCH")) {
    const int b = std::atoi(v);
    if (b > 0) max_batch = b;
  }

  synth::DataConfig data_config = bench::StandardDataConfig();
  Rng world_rng(data_config.seed);
  const synth::World world =
      synth::GenerateWorld(data_config.world, &world_rng);
  // Paper dims, untrained weights: throughput does not depend on what
  // the weights converged to.
  core::ModelConfig mc;
  mc.seed = 20230707;
  auto model = std::make_shared<core::M2g4Rtp>(mc);

  std::vector<serve::RtpRequest> requests;
  for (int t = 0; t < kThreads; ++t) {
    requests.push_back(MakeRequest(world, nodes, t));
  }
  // Sequential references (and the response size sanity check).
  std::vector<core::RtpPrediction> want;
  {
    NoGradGuard no_grad;
    serve::FeatureExtractor extractor(&world);
    for (const serve::RtpRequest& req : requests) {
      want.push_back(model->Predict(extractor.BuildSample(req)));
    }
  }

  std::printf("serving throughput, %d submitters x %d requests, n=%d "
              "(hidden %d, beam %d)\n",
              kThreads, rounds, nodes, mc.hidden_dim, mc.beam_width);

  serve::RtpService unbatched(&world, model.get());
  const ArmResult base = RunArm(unbatched, requests, want, rounds);
  std::printf("%12s %10.1f ms %8.1f req/s identical=%s\n", "unbatched",
              base.wall_ms, base.rps(), base.identical ? "yes" : "NO");

  serve::ServingConfig config;
  config.batching_enabled = true;
  config.batch.max_batch_size = max_batch;
  config.batch.max_linger_us = 500;
  serve::RtpService batched(&world, model.get(), config);
  const ArmResult fast = RunArm(batched, requests, want, rounds);
  const double speedup =
      fast.wall_ms > 0 ? base.wall_ms / fast.wall_ms : 0.0;
  std::printf("%12s %10.1f ms %8.1f req/s identical=%s  (%.2fx)\n",
              "batched", fast.wall_ms, fast.rps(),
              fast.identical ? "yes" : "NO", speedup);

  // Swap under load: registry-backed batched serving; publish identical
  // weights mid-flight. Every response must be correct and tagged 1 or 2.
  bool swap_ok = true;
  int64_t swap_versions_seen = 0;
  {
    serve::ModelRegistry registry(model);
    serve::RtpService service(&world, &registry, config);
    const std::string weights = "BENCH_serving_weights.tmp";
    swap_ok = model->Save(weights).ok();
    auto v2 = std::make_shared<core::M2g4Rtp>(mc);
    swap_ok = swap_ok && v2->Load(weights).ok();
    std::remove(weights.c_str());

    std::vector<char> thread_ok(kThreads, 1);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int r = 0; r < rounds; ++r) {
          const serve::RtpService::Response resp =
              service.Handle(requests[t]);
          const bool ok =
              PredictionEq(resp.prediction, want[t]) &&
              (resp.model_version == 1 || resp.model_version == 2);
          if (!ok) thread_ok[t] = 0;
        }
      });
    }
    // Publish from this thread while the submitters are mid-load.
    registry.Publish(v2);
    for (std::thread& th : threads) th.join();
    for (int t = 0; t < kThreads; ++t) {
      swap_ok = swap_ok && thread_ok[t] != 0;
    }
    swap_ok = swap_ok && service.requests_served() == kThreads * rounds &&
              registry.version() == 2 && registry.swap_count() == 1;
    swap_versions_seen = service.Handle(requests[0]).model_version;
    swap_ok = swap_ok && swap_versions_seen == 2;
    std::printf("%12s served=%lld version=%lld swaps=%llu ok=%s\n", "swap",
                static_cast<long long>(service.requests_served()),
                static_cast<long long>(registry.version()),
                static_cast<unsigned long long>(registry.swap_count()),
                swap_ok ? "yes" : "NO");
  }

  // Per-request queue wait (submit -> batch dispatch) over everything
  // the batched arms served, from the same histogram a live scrape
  // exports as serve.batch.queue_wait.ms.
  const obs::HistogramSnapshot queue_wait =
      obs::StageHistogram("serve.batch.queue_wait.ms").Snapshot();
  std::printf("%12s n=%llu p50=%.3f ms p95=%.3f ms p99=%.3f ms\n",
              "queue wait",
              static_cast<unsigned long long>(queue_wait.count),
              queue_wait.Quantile(0.50), queue_wait.Quantile(0.95),
              queue_wait.Quantile(0.99));

  bench::JsonValue doc =
      bench::JsonValue::Object()
          .Set("bench", bench::JsonValue::String("serving_throughput"))
          .Set("mode", bench::JsonValue::String(smoke ? "smoke" : "full"))
          .Set("threads", bench::JsonValue::Int(kThreads))
          .Set("cores", bench::JsonValue::Int(static_cast<int64_t>(cores)))
          .Set("min_speedup", bench::JsonValue::Number(min_speedup))
          .Set("rounds", bench::JsonValue::Int(rounds))
          .Set("nodes", bench::JsonValue::Int(nodes))
          .Set("unbatched_ms", bench::JsonValue::Number(base.wall_ms))
          .Set("unbatched_rps", bench::JsonValue::Number(base.rps()))
          .Set("batched_ms", bench::JsonValue::Number(fast.wall_ms))
          .Set("batched_rps", bench::JsonValue::Number(fast.rps()))
          .Set("speedup", bench::JsonValue::Number(speedup))
          .Set("responses_identical",
               bench::JsonValue::Bool(base.identical && fast.identical))
          .Set("swap_under_load_ok", bench::JsonValue::Bool(swap_ok))
          .Set("queue_wait_count",
               bench::JsonValue::Int(static_cast<int64_t>(queue_wait.count)))
          .Set("queue_wait_p50_ms",
               bench::JsonValue::Number(queue_wait.Quantile(0.50)))
          .Set("queue_wait_p95_ms",
               bench::JsonValue::Number(queue_wait.Quantile(0.95)))
          .Set("queue_wait_p99_ms",
               bench::JsonValue::Number(queue_wait.Quantile(0.99)));
  const bool json_ok = bench::WriteBenchJson("BENCH_serving.json", doc);

  bool ok = json_ok && base.identical && swap_ok;
  if (!fast.identical) {
    std::fprintf(stderr,
                 "FAIL: batched responses differ from sequential\n");
    ok = false;
  }
  if (smoke && speedup < min_speedup) {
    std::fprintf(stderr, "FAIL: batched speedup %.2fx < required %.2fx\n",
                 speedup, min_speedup);
    ok = false;
  }
  if (!ok) return 1;
  std::printf(smoke ? "serving throughput smoke OK\n" : "done\n");
  return 0;
}
