// Offline-training workflow: configure hyper-parameters, train with
// early stopping, save the weights, reload them into a fresh model (as
// the online service would), and verify the evaluation metrics match.
//
//   ./build/examples/train_and_serialize [weights.bin]

#include <cstdio>

#include "core/trainer.h"
#include "metrics/report.h"

namespace {

m2g::metrics::RouteTimeMetrics Evaluate(const m2g::core::M2g4Rtp& model,
                                        const m2g::synth::Dataset& test) {
  m2g::metrics::BucketedEvaluator evaluator;
  for (const m2g::synth::Sample& s : test.samples) {
    m2g::core::RtpPrediction pred = model.Predict(s);
    evaluator.AddSample(pred.location_route, s.route_label,
                        pred.location_times_min, s.time_label_min);
  }
  return evaluator.Get(m2g::metrics::Bucket::kAll);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace m2g;
  const std::string path = argc > 1 ? argv[1] : "m2g_weights.bin";

  synth::DataConfig dc;
  dc.seed = 31;
  dc.world.num_aois = 120;
  dc.couriers.num_couriers = 12;
  dc.num_days = 10;
  synth::DatasetSplits splits = synth::BuildDataset(dc);

  // Custom hyper-parameters: wider model, more heads.
  core::ModelConfig mc;
  mc.hidden_dim = 48;
  mc.num_heads = 4;
  mc.num_layers = 2;
  mc.aoi_id_embed_dim = 8;
  mc.aoi_type_embed_dim = 4;
  mc.lstm_hidden_dim = 48;
  core::M2g4Rtp model(mc);
  std::printf("custom model: %lld parameters\n",
              static_cast<long long>(model.ParameterCount()));

  core::TrainConfig tc;
  tc.epochs = 4;
  tc.max_samples_per_epoch = 300;
  tc.learning_rate = 1.5e-3f;
  tc.early_stop_patience = 2;
  tc.verbose = true;
  core::Trainer trainer(&model, tc);
  auto history = trainer.Fit(splits.train, splits.val);
  std::printf("trained %zu epochs (early stopping restores the best "
              "validation weights)\n",
              history.size());

  auto before = Evaluate(model, splits.test);
  std::printf("test metrics: HR@3 %.2f | KRC %.3f | MAE %.2f min\n",
              before.hr3, before.krc, before.mae);

  Status s = model.Save(path);
  if (!s.ok()) {
    std::printf("save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("weights saved to %s\n", path.c_str());

  core::M2g4Rtp reloaded(mc);
  s = reloaded.Load(path);
  if (!s.ok()) {
    std::printf("load failed: %s\n", s.ToString().c_str());
    return 1;
  }
  auto after = Evaluate(reloaded, splits.test);
  std::printf("reloaded model: HR@3 %.2f | KRC %.3f | MAE %.2f min "
              "(bit-identical to the saved run: %s)\n",
              after.hr3, after.krc, after.mae,
              after.krc == before.krc ? "yes" : "NO");
  return after.krc == before.krc ? 0 : 1;
}
