// Quickstart: simulate a small city, train M2G4RTP, and jointly predict
// the route and arrival times for one request.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "core/trainer.h"

int main() {
  using namespace m2g;

  // 1. Simulate a small instant-logistics world (see synth/ for knobs).
  synth::DataConfig data_config;
  data_config.seed = 1;
  data_config.world.num_aois = 120;
  data_config.couriers.num_couriers = 12;
  data_config.num_days = 10;
  synth::DatasetSplits splits = synth::BuildDataset(data_config);
  std::printf("dataset: %d train / %d val / %d test samples\n",
              splits.train.size(), splits.val.size(), splits.test.size());

  // 2. Build and train the model (small config for a fast demo).
  core::ModelConfig model_config;
  model_config.hidden_dim = 32;
  model_config.num_heads = 4;
  model_config.num_layers = 2;
  core::M2g4Rtp model(model_config);
  std::printf("model: %lld parameters\n",
              static_cast<long long>(model.ParameterCount()));

  core::TrainConfig train_config;
  train_config.epochs = 3;
  train_config.max_samples_per_epoch = 300;
  train_config.verbose = true;
  core::Trainer trainer(&model, train_config);
  trainer.Fit(splits.train, splits.val);

  // 3. Joint route & time prediction for one unseen request.
  const synth::Sample& sample = splits.test.samples.front();
  core::RtpPrediction pred = model.Predict(sample);

  std::printf("\nrequest: courier %d with %d locations in %d AOIs\n",
              sample.courier_id, sample.num_locations(),
              sample.num_aois());
  std::printf("%-6s %-10s %-8s %-12s %-12s\n", "step", "order", "AOI",
              "ETA (min)", "actual (min)");
  for (size_t step = 0; step < pred.location_route.size(); ++step) {
    const int node = pred.location_route[step];
    std::printf("%-6zu #%-9d A%-7d %-12.1f %-12.1f\n", step + 1,
                sample.locations[node].order_id,
                sample.locations[node].aoi_id,
                pred.location_times_min[node],
                sample.time_label_min[node]);
  }
  std::printf("\nAOI-level route: ");
  for (int aoi_node : pred.aoi_route) {
    std::printf("A%d ", sample.aoi_node_ids[aoi_node]);
  }
  std::printf("\n");
  return 0;
}
