// Minute-level ETA demo (§VI-C): a customer watches their order's ETA
// update as the courier works through the route; a push notification
// fires shortly before arrival.
//
//   ./build/examples/eta_service

#include <algorithm>
#include <cstdio>

#include "core/trainer.h"
#include "serve/eta_service.h"

int main() {
  using namespace m2g;

  synth::DataConfig dc;
  dc.seed = 21;
  dc.world.num_aois = 120;
  dc.couriers.num_couriers = 12;
  dc.num_days = 10;
  synth::BuiltWorld built = synth::BuildWorldAndDataset(dc);

  core::ModelConfig mc;
  core::M2g4Rtp model(mc);
  core::TrainConfig tc;
  tc.epochs = 3;
  tc.max_samples_per_epoch = 300;
  core::Trainer trainer(&model, tc);
  std::printf("training the ETA model ...\n");
  trainer.Fit(built.splits.train, built.splits.val);

  serve::RtpService service(&built.world, &model);
  serve::EtaService::Config eta_config;
  eta_config.notify_within_minutes = 12.0;
  serve::EtaService eta(&service, eta_config);

  // A sample where "our" order is served late in the route, so the ETA
  // visibly counts down.
  const synth::Sample* sample = nullptr;
  for (const synth::Sample& s : built.splits.test.samples) {
    if (s.num_locations() >= 8) {
      sample = &s;
      break;
    }
  }
  if (sample == nullptr) sample = &built.splits.test.samples.front();
  const int watched_order =
      sample->locations[sample->route_label.back()].order_id;
  std::printf("\ncustomer is waiting for order #%d (actually arrives "
              "after %.0f min)\n",
              watched_order,
              sample->time_label_min[sample->route_label.back()]);

  // Replay the realized trip; after each pick-up, re-query the ETA.
  std::vector<synth::Order> pending;
  for (const synth::LocationTask& task : sample->locations) {
    synth::Order o;
    o.id = task.order_id;
    o.pos = task.pos;
    o.aoi_id = task.aoi_id;
    o.accept_time_min = task.accept_time_min;
    o.deadline_min = task.deadline_min;
    pending.push_back(o);
  }
  geo::LatLng pos = sample->courier_pos;
  double now = sample->query_time_min;
  bool notified = false;

  for (size_t step = 0; step <= sample->route_label.size(); ++step) {
    if (pending.empty()) break;
    serve::RtpRequest req;
    req.courier = sample->courier;
    req.courier_pos = pos;
    req.query_time_min = now;
    req.weather = sample->weather;
    req.weekday = sample->weekday;
    req.pending = pending;
    auto estimate = eta.EstimateOrder(req, watched_order);
    if (estimate.ok()) {
      std::printf("[t=%+6.0f min] app: courier arrives in ~%.0f min, %d "
                  "stops before yours%s\n",
                  now - sample->query_time_min,
                  estimate.value().eta_minutes,
                  estimate.value().stops_before,
                  estimate.value().notify_user && !notified
                      ? "   >>> push: \"courier almost there!\""
                      : "");
      notified = notified || estimate.value().notify_user;
    } else {
      std::printf("[t=%+6.0f min] order picked up.\n",
                  now - sample->query_time_min);
      break;
    }
    // Courier serves the next true-route stop.
    if (step == sample->route_label.size()) break;
    const int node = sample->route_label[step];
    const int order_id = sample->locations[node].order_id;
    now = sample->query_time_min + sample->time_label_min[node] +
          sample->courier.service_time_mean_min;
    pos = sample->locations[node].pos;
    pending.erase(std::remove_if(pending.begin(), pending.end(),
                                 [&](const synth::Order& o) {
                                   return o.id == order_id;
                                 }),
                  pending.end());
  }
  return 0;
}
