// Intelligent Order Sorting demo (§VI-B): follows one courier through a
// simulated trip. After every pick-up the app re-requests the sorted
// order list, exactly like the Cainiao courier app.
//
//   ./build/examples/courier_day

#include <algorithm>
#include <cstdio>

#include "core/trainer.h"
#include "serve/order_sorting_service.h"

namespace {

using namespace m2g;

serve::RtpRequest MakeRequest(const synth::Sample& base,
                              const std::vector<synth::Order>& pending,
                              const geo::LatLng& pos, double now) {
  serve::RtpRequest req;
  req.courier = base.courier;
  req.courier_pos = pos;
  req.query_time_min = now;
  req.weather = base.weather;
  req.weekday = base.weekday;
  req.pending = pending;
  return req;
}

}  // namespace

int main() {
  using namespace m2g;

  synth::DataConfig dc;
  dc.seed = 11;
  dc.world.num_aois = 120;
  dc.couriers.num_couriers = 12;
  dc.num_days = 10;
  synth::BuiltWorld built = synth::BuildWorldAndDataset(dc);

  core::ModelConfig mc;
  core::M2g4Rtp model(mc);
  core::TrainConfig tc;
  tc.epochs = 3;
  tc.max_samples_per_epoch = 300;
  core::Trainer trainer(&model, tc);
  std::printf("training the order-sorting model ...\n");
  trainer.Fit(built.splits.train, built.splits.val);

  serve::RtpService service(&built.world, &model);
  serve::OrderSortingService sorting(&service);

  // Pick a rich test sample and replay its trip interactively.
  const synth::Sample* sample = &built.splits.test.samples.front();
  for (const synth::Sample& s : built.splits.test.samples) {
    if (s.num_locations() >= 8 && s.num_aois() >= 3) {
      sample = &s;
      break;
    }
  }
  std::printf("\ncourier %d starts a trip with %d pick-ups in %d AOIs\n",
              sample->courier_id, sample->num_locations(),
              sample->num_aois());

  // Pending orders, courier position and clock evolve as the courier
  // follows the app's top suggestion.
  std::vector<synth::Order> pending;
  for (const synth::LocationTask& task : sample->locations) {
    synth::Order o;
    o.id = task.order_id;
    o.pos = task.pos;
    o.aoi_id = task.aoi_id;
    o.accept_time_min = task.accept_time_min;
    o.deadline_min = task.deadline_min;
    pending.push_back(o);
  }
  geo::LatLng pos = sample->courier_pos;
  double now = sample->query_time_min;
  synth::TimeModel time_model;

  int stop = 1;
  while (!pending.empty()) {
    auto sorted =
        sorting.Sort(MakeRequest(*sample, pending, pos, now));
    std::printf("\n[t=%.0f min] app shows %zu orders; top of list:\n", now,
                sorted.size());
    for (size_t i = 0; i < std::min<size_t>(3, sorted.size()); ++i) {
      std::printf("   %zu. order #%d  (ETA %.0f min)\n", i + 1,
                  sorted[i].order_id, sorted[i].eta_minutes);
    }
    // The courier follows the top suggestion.
    const int next_id = sorted.front().order_id;
    auto it = std::find_if(pending.begin(), pending.end(),
                           [&](const synth::Order& o) {
                             return o.id == next_id;
                           });
    now += time_model.ExpectedTravelMinutes(sample->courier, pos, it->pos,
                                            sample->weather,
                                            sample->weekday);
    std::printf("-> stop %d: picked up order #%d at t=%.0f "
                "(deadline %.0f, %s)\n",
                stop++, next_id, now, it->deadline_min,
                now <= it->deadline_min ? "on time" : "LATE");
    now += sample->courier.service_time_mean_min;
    pos = it->pos;
    pending.erase(it);
  }
  std::printf("\ntrip complete after %d requests to the sorting service\n",
              static_cast<int>(service.requests_served()));
  return 0;
}
