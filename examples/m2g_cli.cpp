// End-to-end command-line interface over the library's public API:
//
//   m2g_cli generate --days 18 --couriers 30 --out splits.bin [--csv t.csv]
//   m2g_cli train    --data splits.bin --out weights.bin [--epochs 15]
//                    [--hidden 48] [--weight-decay 0.0] [--beam 1]
//                    [--threads 1]
//   m2g_cli eval     --data splits.bin --weights weights.bin
//   m2g_cli predict  --data splits.bin --weights weights.bin --sample 0
//   m2g_cli serve    --data splits.bin --weights weights.bin
//                    [--admin_port 0] [--batch] [--threads 4]
//                    [--requests 64] [--traces_out t.json]
//                    [--events_out e.jsonl]
//
// `generate` without --out prints dataset statistics only. Every command
// also accepts --log_level=debug|info|warning|error,
// --metrics_out=FILE (telemetry snapshot; ".json" suffix selects the
// JSON exporter, anything else the Prometheus text format), and the
// observability knobs --obs_enabled / --trace_ring / --trace_tree_ring /
// --obs_head_sample / --obs_tail_ms.

#include <algorithm>
#include <cstdio>

#include "common/flags.h"
#include "core/trainer.h"
#include "metrics/report.h"
#include "obs/admin_server.h"
#include "obs/export.h"
#include "obs/wide_event.h"
#include "serve/model_registry.h"
#include "serve/replay.h"
#include "synth/dataset_io.h"
#include "tensor/simd.h"

namespace {

using namespace m2g;

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

int Usage() {
  std::printf(
      "usage: m2g_cli <generate|train|eval|predict> [--flags]\n"
      "  generate --days N --couriers N --seed S [--out FILE] [--csv FILE]\n"
      "  train    --data FILE --out FILE [--epochs N] [--hidden N]\n"
      "           [--weight-decay X] [--lr X] [--threads N]\n"
      "  eval     --data FILE --weights FILE [--hidden N] [--beam N]\n"
      "  predict  --data FILE --weights FILE --sample I [--hidden N]\n"
      "  serve    --data FILE --weights FILE [--admin_port P] [--batch]\n"
      "           [--threads N] [--requests N] [--traces_out FILE]\n"
      "           [--events_out FILE]\n"
      "common:    [--log_level debug|info|warning|error]\n"
      "           [--metrics_out FILE[.json]] [--obs_enabled BOOL]\n"
      "           [--trace_ring N] [--trace_tree_ring N]\n"
      "           [--obs_head_sample N] [--obs_tail_ms X]\n");
  return 2;
}

core::ModelConfig ConfigFromFlags(const FlagParser& flags) {
  core::ModelConfig mc;
  mc.hidden_dim = flags.GetInt("hidden", mc.hidden_dim);
  mc.lstm_hidden_dim = mc.hidden_dim;
  // Scale the discrete embedding widths down with the hidden size so
  // small --hidden values stay valid.
  mc.aoi_id_embed_dim = std::min(12, mc.hidden_dim / 4);
  mc.aoi_type_embed_dim = std::min(4, mc.hidden_dim / 8);
  mc.beam_width = flags.GetInt("beam", 1);
  mc.seed = static_cast<uint64_t>(flags.GetInt("model-seed", 42));
  return mc;
}

Result<synth::DatasetSplits> LoadData(const FlagParser& flags) {
  const std::string path = flags.GetString("data", "");
  if (path.empty()) return Status::InvalidArgument("--data is required");
  return synth::LoadSplits(path);
}

int Generate(const FlagParser& flags) {
  synth::DataConfig config;
  config.num_days = flags.GetInt("days", config.num_days);
  config.couriers.num_couriers =
      flags.GetInt("couriers", config.couriers.num_couriers);
  config.world.num_aois = flags.GetInt("aois", config.world.num_aois);
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 20230707));
  std::printf("simulating %d couriers x %d days over %d AOIs ...\n",
              config.couriers.num_couriers, config.num_days,
              config.world.num_aois);
  synth::DatasetSplits splits = synth::BuildDataset(config);
  synth::Dataset all;
  for (const synth::Dataset* ds :
       {&splits.train, &splits.val, &splits.test}) {
    for (const synth::Sample& s : ds->samples) all.samples.push_back(s);
  }
  synth::DataStats stats = synth::ComputeDataStats(all);
  std::printf("%d samples (train %d / val %d / test %d); %.2f locations "
              "and %.2f AOIs per sample; mean arrival gap %.1f min\n",
              stats.num_samples, splits.train.size(), splits.val.size(),
              splits.test.size(), stats.mean_locations_per_sample,
              stats.mean_aois_per_sample,
              stats.mean_location_arrival_gap_min);
  if (flags.Has("out")) {
    const std::string out = flags.GetString("out", "");
    Status s = synth::SaveSplits(splits, out);
    if (!s.ok()) return Fail(s.ToString());
    std::printf("splits written to %s\n", out.c_str());
  }
  if (flags.Has("csv")) {
    const std::string csv = flags.GetString("csv", "");
    Status s = synth::ExportLocationsCsv(splits.test, csv);
    if (!s.ok()) return Fail(s.ToString());
    std::printf("test locations exported to %s\n", csv.c_str());
  }
  return 0;
}

int Train(const FlagParser& flags) {
  auto data = LoadData(flags);
  if (!data.ok()) return Fail(data.status().ToString());
  const std::string out = flags.GetString("out", "");
  if (out.empty()) return Fail("--out is required");

  core::M2g4Rtp model(ConfigFromFlags(flags));
  std::printf("training %lld parameters on %d samples ...\n",
              static_cast<long long>(model.ParameterCount()),
              data.value().train.size());
  core::TrainConfig tc;
  tc.epochs = flags.GetInt("epochs", 15);
  tc.learning_rate = static_cast<float>(flags.GetDouble("lr", 2e-3));
  tc.weight_decay =
      static_cast<float>(flags.GetDouble("weight-decay", 0.0));
  tc.verbose = flags.GetBool("verbose", true);
  // --threads 1 is the bitwise-reproducible serial trainer; N > 1 runs
  // data-parallel batches; 0 uses every core (M2G_THREADS overridable).
  tc.threads = flags.GetInt("threads", 1);
  core::Trainer trainer(&model, tc);
  trainer.Fit(data.value().train, data.value().val);
  Status s = model.Save(out);
  if (!s.ok()) return Fail(s.ToString());
  std::printf("weights written to %s\n", out.c_str());
  return 0;
}

int Eval(const FlagParser& flags) {
  auto data = LoadData(flags);
  if (!data.ok()) return Fail(data.status().ToString());
  core::M2g4Rtp model(ConfigFromFlags(flags));
  Status s = model.Load(flags.GetString("weights", "weights.bin"));
  if (!s.ok()) return Fail(s.ToString());

  metrics::BucketedEvaluator evaluator;
  for (const synth::Sample& sample : data.value().test.samples) {
    core::RtpPrediction pred = model.Predict(sample);
    evaluator.AddSample(pred.location_route, sample.route_label,
                        pred.location_times_min, sample.time_label_min);
  }
  for (int b = 0; b < metrics::kNumBuckets; ++b) {
    const auto m = evaluator.Get(static_cast<metrics::Bucket>(b));
    std::printf("%-14s (%3d samples): HR@3 %6.2f | KRC %6.3f | LSD %6.2f "
                "| RMSE %6.2f | MAE %6.2f | acc@20 %6.2f\n",
                metrics::BucketName(static_cast<metrics::Bucket>(b)),
                m.samples, m.hr3, m.krc, m.lsd, m.rmse, m.mae, m.acc20);
  }
  return 0;
}

int Predict(const FlagParser& flags) {
  auto data = LoadData(flags);
  if (!data.ok()) return Fail(data.status().ToString());
  core::M2g4Rtp model(ConfigFromFlags(flags));
  Status s = model.Load(flags.GetString("weights", "weights.bin"));
  if (!s.ok()) return Fail(s.ToString());
  const int index = flags.GetInt("sample", 0);
  if (index < 0 || index >= data.value().test.size()) {
    return Fail("--sample out of range");
  }
  const synth::Sample& sample = data.value().test.samples[index];
  core::RtpPrediction pred = model.Predict(sample);
  std::printf("sample %d: courier %d, %d locations in %d AOIs\n", index,
              sample.courier_id, sample.num_locations(),
              sample.num_aois());
  for (size_t step = 0; step < pred.location_route.size(); ++step) {
    const int node = pred.location_route[step];
    std::printf("  %2zu. order #%d (AOI %d)  ETA %6.1f min  actual %6.1f\n",
                step + 1, sample.locations[node].order_id,
                sample.locations[node].aoi_id,
                pred.location_times_min[node],
                sample.time_label_min[node]);
  }
  return 0;
}

int Serve(const FlagParser& flags) {
  auto data = LoadData(flags);
  if (!data.ok()) return Fail(data.status().ToString());
  auto model = std::make_shared<core::M2g4Rtp>(ConfigFromFlags(flags));
  Status s = model->Load(flags.GetString("weights", "weights.bin"));
  if (!s.ok()) return Fail(s.ToString());
  if (data.value().test.size() == 0) return Fail("test split is empty");

  serve::ModelRegistry registry(model, /*initial_version=*/1);
  serve::ServingConfig config;
  config.batching_enabled = flags.GetBool("batch", false);
  config.batch.max_batch_size =
      flags.GetInt("max_batch", config.batch.max_batch_size);
  config.batch.max_linger_us =
      flags.GetInt("linger_us", config.batch.max_linger_us);
  // Rebuild the world the dataset was generated from (splits files carry
  // samples, not the city): --seed / --aois must match the generate run.
  synth::DataConfig dconfig;
  dconfig.world.num_aois = flags.GetInt("aois", dconfig.world.num_aois);
  dconfig.seed = static_cast<uint64_t>(flags.GetInt("seed", 20230707));
  Rng seed_rng(dconfig.seed);
  Rng world_rng = seed_rng.Fork();
  const synth::World world = synth::GenerateWorld(dconfig.world, &world_rng);
  serve::RtpService service(&world, &registry, config);

  // The admin endpoint stays live for the whole replay: scrape
  // /metrics, /traces, /events, /healthz from another terminal while
  // requests flow. --admin_port=0 picks an ephemeral port (printed).
  const bool admin_requested = flags.Has("admin_port");
  obs::AdminOptions admin_options;
  admin_options.port = flags.GetInt("admin_port", 0);
  admin_options.extra_health_json = [&registry] {
    const auto snapshot = registry.Current();
    return "\"model_version\": " +
           std::to_string(snapshot != nullptr ? snapshot->version : 0) +
           ", \"swaps\": " + std::to_string(registry.swap_count()) +
           ", \"simd_tier\": \"" +
           simd::TierName(simd::ActiveTier()) + "\"";
  };
  obs::AdminServer admin(admin_options);
  if (admin_requested) {
    std::string error;
    if (!admin.Start(&error)) {
      return Fail("admin server failed to start: " + error);
    }
    std::printf("admin endpoint on http://127.0.0.1:%d "
                "(/metrics /traces /events /healthz)\n",
                admin.port());
  }

  std::vector<serve::RtpRequest> requests;
  const int total = std::max(1, flags.GetInt("requests", 64));
  requests.reserve(total);
  for (int i = 0; i < total; ++i) {
    requests.push_back(serve::RequestFromSample(
        data.value().test.samples[i % data.value().test.size()]));
  }
  const int threads = std::max(1, flags.GetInt("threads", 4));
  std::printf("serving %d requests from %d threads (batching %s) ...\n",
              total, threads, config.batching_enabled ? "on" : "off");
  serve::ConcurrentReplayResult replay =
      serve::ReplayConcurrently(service, requests, threads);
  std::printf("%zu responses in %.2fs (%.1f req/s), %llu sheds\n",
              replay.responses.size(), replay.wall_seconds,
              replay.requests_per_second,
              static_cast<unsigned long long>(service.batch_sheds()));

  if (flags.Has("traces_out")) {
    const std::string path = flags.GetString("traces_out", "traces.json");
    if (obs::WriteFileAtomic(path, obs::ExportTracesJson())) {
      std::printf("traces written to %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
    }
  }
  if (flags.Has("events_out")) {
    const std::string path = flags.GetString("events_out", "events.jsonl");
    if (obs::WideEventSink::Global().WriteJsonl(path)) {
      std::printf("events written to %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = FlagParser::Parse(argc, argv);
  if (!parsed.ok()) return Fail(parsed.status().ToString());
  const FlagParser& flags = parsed.value();
  if (!flags.ApplyLogLevelFlag()) {
    return Fail("unrecognized --log_level value");
  }
  flags.ApplyObsFlags();
  // Queried up front so a typo'd command still reports the flag as used.
  const std::string metrics_out = flags.GetString("metrics_out", "");
  int rc;
  if (flags.command() == "generate") {
    rc = Generate(flags);
  } else if (flags.command() == "train") {
    rc = Train(flags);
  } else if (flags.command() == "eval") {
    rc = Eval(flags);
  } else if (flags.command() == "predict") {
    rc = Predict(flags);
  } else if (flags.command() == "serve") {
    rc = Serve(flags);
  } else {
    return Usage();
  }
  if (!metrics_out.empty()) {
    if (m2g::obs::WriteMetricsFile(metrics_out)) {
      std::printf("metrics written to %s\n", metrics_out.c_str());
    } else {
      std::fprintf(stderr, "warning: could not write metrics to %s\n",
                   metrics_out.c_str());
    }
  }
  for (const std::string& unused : flags.UnqueriedFlags()) {
    std::fprintf(stderr, "warning: unknown flag --%s ignored\n",
                 unused.c_str());
  }
  return rc;
}
