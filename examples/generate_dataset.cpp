// Dataset tooling: simulate a city, persist the splits to a binary file,
// export a CSV for external analysis, and reload everything.
//
//   ./build/examples/generate_dataset [out_dir]

#include <cstdio>
#include <string>

#include "synth/dataset_io.h"

int main(int argc, char** argv) {
  using namespace m2g;
  const std::string dir = argc > 1 ? argv[1] : ".";

  synth::DataConfig config;
  config.seed = 20230707;
  std::printf("simulating %d couriers x %d days ...\n",
              config.couriers.num_couriers, config.num_days);
  synth::DatasetSplits splits = synth::BuildDataset(config);
  std::printf("samples: train %d / val %d / test %d\n", splits.train.size(),
              splits.val.size(), splits.test.size());

  const std::string splits_path = dir + "/m2g_splits.bin";
  Status s = synth::SaveSplits(splits, splits_path);
  if (!s.ok()) {
    std::printf("save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("splits written to %s\n", splits_path.c_str());

  const std::string csv_path = dir + "/m2g_test_locations.csv";
  s = synth::ExportLocationsCsv(splits.test, csv_path);
  if (!s.ok()) {
    std::printf("csv export failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("test-split locations exported to %s\n", csv_path.c_str());

  auto reloaded = synth::LoadSplits(splits_path);
  if (!reloaded.ok()) {
    std::printf("reload failed: %s\n", reloaded.status().ToString().c_str());
    return 1;
  }
  std::printf("reload OK: %d train samples round-tripped, first route "
              "label intact: %s\n",
              reloaded.value().train.size(),
              reloaded.value().train.samples.front().route_label ==
                      splits.train.samples.front().route_label
                  ? "yes"
                  : "NO");
  return 0;
}
