#ifndef M2G_GRAPH_FEATURES_H_
#define M2G_GRAPH_FEATURES_H_

#include <vector>

#include "synth/dataset.h"
#include "tensor/matrix.h"

namespace m2g::graph {

// ---------------------------------------------------------------------------
// Feature layouts. All continuous features are normalized to roughly [-3, 3]
// so the linear projections of Eq. 18-19 start well-conditioned.
// ---------------------------------------------------------------------------

/// Continuous location-node features (Eq. 12), in column order:
///   0 east offset from courier, km      (x^{l,geo})
///   1 north offset from courier, km     (x^{l,geo})
///   2 distance from courier, km         (x^{l,dis})
///   3 deadline slack (dead - t), hours  (x^{l,dead} - t)
///   4 order age (t - accept), hours     (x^{l,acc})
///   5 deadline time-of-day, fraction    (x^{l,dead})
inline constexpr int kLocationContinuousDim = 6;

/// Continuous AOI-node features (Eq. 13):
///   0 east offset of AOI centroid, km
///   1 north offset, km
///   2 distance from courier, km
///   3 earliest deadline slack, hours
///   4 number of unvisited locations in the AOI (scaled by 1/5)
///   5 earliest deadline time-of-day, fraction
inline constexpr int kAoiContinuousDim = 6;

/// Edge features (Eq. 14 / 16), per (i, j):
///   0 pairwise distance, km            (e^{dis})
///   1 deadline gap |dead_i - dead_j|, hours  (e^{gap})
///   2 connectivity 0/1                 (e^{con})
inline constexpr int kEdgeDim = 3;

/// Continuous global features (Eq. 17 continuous part):
///   0 avg working hours / 10
///   1 avg speed (m/s) / 10
///   2 attendance
///   3 mean service minutes / 10
inline constexpr int kGlobalContinuousDim = 4;

/// (n, kLocationContinuousDim) for the sample's locations.
Matrix LocationNodeFeatures(const synth::Sample& sample);

/// Per-AOI-node centroids of the sample's unvisited locations.
std::vector<geo::LatLng> AoiCentroids(const synth::Sample& sample);

/// (m, kAoiContinuousDim) for the sample's AOI nodes.
Matrix AoiNodeFeatures(const synth::Sample& sample);

/// (1, kGlobalContinuousDim) courier/global continuous features.
Matrix GlobalContinuousFeatures(const synth::Sample& sample);

/// Eq. 15 connectivity over arbitrary points: j is connected to i iff j is
/// among i's k nearest spatial neighbours, or k nearest temporal
/// neighbours (by |deadline gap|), or i == j; symmetrized.
std::vector<bool> KnnConnectivity(const std::vector<geo::LatLng>& points,
                                  const std::vector<double>& deadlines,
                                  int k);

/// (n*n, kEdgeDim) edge features for the given points/deadlines, using
/// `adjacency` for column 2.
Matrix EdgeFeatures(const std::vector<geo::LatLng>& points,
                    const std::vector<double>& deadlines,
                    const std::vector<bool>& adjacency);

}  // namespace m2g::graph

#endif  // M2G_GRAPH_FEATURES_H_
