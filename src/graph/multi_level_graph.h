#ifndef M2G_GRAPH_MULTI_LEVEL_GRAPH_H_
#define M2G_GRAPH_MULTI_LEVEL_GRAPH_H_

#include <vector>

#include "synth/dataset.h"
#include "tensor/matrix.h"

namespace m2g::graph {

struct GraphConfig {
  /// k for the k-nearest spatial and temporal neighbourhoods (Eq. 15).
  int k_neighbors = 5;
};

/// One level (locations or AOIs) of the multi-level graph. Continuous node
/// features are already normalized; discrete features stay as ids for the
/// embedding layers (Eq. 18).
struct LevelGraph {
  int n = 0;
  /// (n, d) continuous node features; see features.h for the layout.
  Matrix node_continuous;
  /// Discrete node features, parallel arrays of length n.
  std::vector<int> node_aoi_id;
  std::vector<int> node_aoi_type;
  /// (n*n, d_e) edge features, row-major by (i, j); layout in features.h.
  Matrix edge_features;
  /// e^{con}_{ij} == 1 (Eq. 15), row-major n*n. Symmetric, self-loops set.
  std::vector<bool> adjacency;

  bool AdjacentTo(int i, int j) const { return adjacency[i * n + j]; }
};

/// Definition 3: G = (G^l, G^a, E^la). The cross-level edge set is the
/// location -> AOI-node assignment.
struct MultiLevelGraph {
  LevelGraph location;
  LevelGraph aoi;
  std::vector<int> loc_to_aoi;  // E^la: location idx -> AOI node idx
};

/// Classification of how one level graph evolved into another, from the
/// incremental re-encode path's point of view: a single order arriving
/// (kInsert) or completing (kRemove) is delta-encodable, as is a pure
/// feature drift on an aligned node set (kSameNodes); anything the
/// per-node alignment cannot explain — permutations, multi-node churn,
/// count jumps — is kStructural and falls back to a full encode.
enum class LevelDeltaKind {
  /// Same nodes, adjacency and edge features, bit for bit.
  kIdentical,
  /// Same node count with index-aligned nodes (not a permutation);
  /// features/edges may differ row-by-row — the delta encoder dirties
  /// exactly the changed rows.
  kSameNodes,
  /// `after` is `before` with one node inserted at index `pos`.
  kInsert,
  /// `after` is `before` with the node at before-index `pos` removed.
  kRemove,
  /// Not explainable as a single-node delta (includes permutations).
  kStructural,
};

struct LevelGraphDelta {
  LevelDeltaKind kind = LevelDeltaKind::kStructural;
  /// kInsert: after-index of the new node. kRemove: before-index of the
  /// removed node. -1 otherwise.
  int pos = -1;

  /// Before-index of after-node `i` (-1 for an inserted node). Only
  /// meaningful for the delta-encodable kinds.
  int OldIndex(int i) const {
    switch (kind) {
      case LevelDeltaKind::kIdentical:
      case LevelDeltaKind::kSameNodes:
        return i;
      case LevelDeltaKind::kInsert:
        if (i == pos) return -1;
        return i < pos ? i : i - 1;
      case LevelDeltaKind::kRemove:
        return i < pos ? i : i + 1;
      case LevelDeltaKind::kStructural:
        return -1;
    }
    return -1;
  }
};

/// Cheap structural diff between two level graphs. Node identity is the
/// bitwise continuous-feature row plus the discrete ids, so it is exact:
/// a kInsert/kRemove/kSameNodes verdict guarantees every aligned node is
/// byte-identical between the graphs (adjacency and edge features may
/// still differ — kNN rewiring around an arrival is expected and handled
/// by the delta encoder). A same-count multiset permutation classifies as
/// kStructural, never kSameNodes. O(n (n + d)) worst case.
LevelGraphDelta DiffLevelGraph(const LevelGraph& before,
                               const LevelGraph& after);

/// Builds the full multi-level graph for one RTP request.
MultiLevelGraph BuildMultiLevelGraph(const synth::Sample& sample,
                                     const GraphConfig& config);

/// Builds only the location level (used by the "w/o AOI" ablation and the
/// Graph2Route baseline, which are single-level).
LevelGraph BuildLocationGraph(const synth::Sample& sample,
                              const GraphConfig& config);

}  // namespace m2g::graph

#endif  // M2G_GRAPH_MULTI_LEVEL_GRAPH_H_
