#ifndef M2G_GRAPH_MULTI_LEVEL_GRAPH_H_
#define M2G_GRAPH_MULTI_LEVEL_GRAPH_H_

#include <vector>

#include "synth/dataset.h"
#include "tensor/matrix.h"

namespace m2g::graph {

struct GraphConfig {
  /// k for the k-nearest spatial and temporal neighbourhoods (Eq. 15).
  int k_neighbors = 5;
};

/// One level (locations or AOIs) of the multi-level graph. Continuous node
/// features are already normalized; discrete features stay as ids for the
/// embedding layers (Eq. 18).
struct LevelGraph {
  int n = 0;
  /// (n, d) continuous node features; see features.h for the layout.
  Matrix node_continuous;
  /// Discrete node features, parallel arrays of length n.
  std::vector<int> node_aoi_id;
  std::vector<int> node_aoi_type;
  /// (n*n, d_e) edge features, row-major by (i, j); layout in features.h.
  Matrix edge_features;
  /// e^{con}_{ij} == 1 (Eq. 15), row-major n*n. Symmetric, self-loops set.
  std::vector<bool> adjacency;

  bool AdjacentTo(int i, int j) const { return adjacency[i * n + j]; }
};

/// Definition 3: G = (G^l, G^a, E^la). The cross-level edge set is the
/// location -> AOI-node assignment.
struct MultiLevelGraph {
  LevelGraph location;
  LevelGraph aoi;
  std::vector<int> loc_to_aoi;  // E^la: location idx -> AOI node idx
};

/// Builds the full multi-level graph for one RTP request.
MultiLevelGraph BuildMultiLevelGraph(const synth::Sample& sample,
                                     const GraphConfig& config);

/// Builds only the location level (used by the "w/o AOI" ablation and the
/// Graph2Route baseline, which are single-level).
LevelGraph BuildLocationGraph(const synth::Sample& sample,
                              const GraphConfig& config);

}  // namespace m2g::graph

#endif  // M2G_GRAPH_MULTI_LEVEL_GRAPH_H_
