#include "graph/features.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace m2g::graph {
namespace {

constexpr double kMinutesPerDay = 24.0 * 60.0;

/// East/north offset of `p` from `origin` in km.
void RelKm(const geo::LatLng& origin, const geo::LatLng& p, float* east,
           float* north) {
  const geo::LatLng east_probe{origin.lat, p.lng};
  const geo::LatLng north_probe{p.lat, origin.lng};
  double e = geo::ApproxMeters(origin, east_probe) / 1000.0;
  double n = geo::ApproxMeters(origin, north_probe) / 1000.0;
  if (p.lng < origin.lng) e = -e;
  if (p.lat < origin.lat) n = -n;
  *east = static_cast<float>(e);
  *north = static_cast<float>(n);
}

}  // namespace

Matrix LocationNodeFeatures(const synth::Sample& sample) {
  const int n = sample.num_locations();
  Matrix x(n, kLocationContinuousDim);
  for (int i = 0; i < n; ++i) {
    const synth::LocationTask& task = sample.locations[i];
    float east = 0, north = 0;
    RelKm(sample.courier_pos, task.pos, &east, &north);
    x.At(i, 0) = east;
    x.At(i, 1) = north;
    x.At(i, 2) = static_cast<float>(task.dist_from_courier_m / 1000.0);
    x.At(i, 3) = static_cast<float>(
        (task.deadline_min - sample.query_time_min) / 60.0);
    x.At(i, 4) = static_cast<float>(
        (sample.query_time_min - task.accept_time_min) / 60.0);
    x.At(i, 5) = static_cast<float>(
        std::fmod(task.deadline_min, kMinutesPerDay) / kMinutesPerDay);
  }
  return x;
}

std::vector<geo::LatLng> AoiCentroids(const synth::Sample& sample) {
  const int m = sample.num_aois();
  std::vector<std::vector<geo::LatLng>> members(m);
  for (int i = 0; i < sample.num_locations(); ++i) {
    members[sample.loc_to_aoi[i]].push_back(sample.locations[i].pos);
  }
  std::vector<geo::LatLng> centroids(m);
  for (int k = 0; k < m; ++k) {
    M2G_CHECK(!members[k].empty());
    centroids[k] = geo::Centroid(members[k]);
  }
  return centroids;
}

Matrix AoiNodeFeatures(const synth::Sample& sample) {
  const int m = sample.num_aois();
  Matrix x(m, kAoiContinuousDim);
  std::vector<geo::LatLng> centroids = AoiCentroids(sample);
  std::vector<double> earliest_deadline(m, 1e18);
  std::vector<int> counts(m, 0);
  for (int i = 0; i < sample.num_locations(); ++i) {
    const int k = sample.loc_to_aoi[i];
    earliest_deadline[k] =
        std::min(earliest_deadline[k], sample.locations[i].deadline_min);
    counts[k]++;
  }
  for (int k = 0; k < m; ++k) {
    float east = 0, north = 0;
    RelKm(sample.courier_pos, centroids[k], &east, &north);
    x.At(k, 0) = east;
    x.At(k, 1) = north;
    x.At(k, 2) = static_cast<float>(
        geo::ApproxMeters(sample.courier_pos, centroids[k]) / 1000.0);
    x.At(k, 3) = static_cast<float>(
        (earliest_deadline[k] - sample.query_time_min) / 60.0);
    x.At(k, 4) = static_cast<float>(counts[k] / 5.0);
    x.At(k, 5) = static_cast<float>(
        std::fmod(earliest_deadline[k], kMinutesPerDay) / kMinutesPerDay);
  }
  return x;
}

Matrix GlobalContinuousFeatures(const synth::Sample& sample) {
  Matrix g(1, kGlobalContinuousDim);
  g.At(0, 0) = static_cast<float>(sample.courier.avg_working_hours / 10.0);
  g.At(0, 1) = static_cast<float>(sample.courier.avg_speed_mps / 10.0);
  g.At(0, 2) = static_cast<float>(sample.courier.attendance);
  g.At(0, 3) =
      static_cast<float>(sample.courier.service_time_mean_min / 10.0);
  return g;
}

std::vector<bool> KnnConnectivity(const std::vector<geo::LatLng>& points,
                                  const std::vector<double>& deadlines,
                                  int k) {
  const int n = static_cast<int>(points.size());
  M2G_CHECK_EQ(points.size(), deadlines.size());
  std::vector<bool> adj(static_cast<size_t>(n) * n, false);
  auto connect = [&](int i, int j) {
    adj[i * n + j] = true;
    adj[j * n + i] = true;
  };
  for (int i = 0; i < n; ++i) {
    adj[i * n + i] = true;  // self-loop (Eq. 15, i == j)
    // Rank the other nodes by spatial and by temporal proximity.
    std::vector<int> others;
    for (int j = 0; j < n; ++j) {
      if (j != i) others.push_back(j);
    }
    std::vector<int> by_dist = others;
    std::sort(by_dist.begin(), by_dist.end(), [&](int a, int b) {
      const double da = geo::ApproxMeters(points[i], points[a]);
      const double db = geo::ApproxMeters(points[i], points[b]);
      if (da != db) return da < db;
      return a < b;  // deterministic tie-break
    });
    std::vector<int> by_gap = others;
    std::sort(by_gap.begin(), by_gap.end(), [&](int a, int b) {
      const double ga = std::fabs(deadlines[a] - deadlines[i]);
      const double gb = std::fabs(deadlines[b] - deadlines[i]);
      if (ga != gb) return ga < gb;
      return a < b;
    });
    for (int r = 0; r < std::min<int>(k, static_cast<int>(others.size()));
         ++r) {
      connect(i, by_dist[r]);
      connect(i, by_gap[r]);
    }
  }
  return adj;
}

Matrix EdgeFeatures(const std::vector<geo::LatLng>& points,
                    const std::vector<double>& deadlines,
                    const std::vector<bool>& adjacency) {
  const int n = static_cast<int>(points.size());
  M2G_CHECK_EQ(adjacency.size(), static_cast<size_t>(n) * n);
  Matrix e(n * n, kEdgeDim);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const int row = i * n + j;
      e.At(row, 0) = static_cast<float>(
          geo::ApproxMeters(points[i], points[j]) / 1000.0);
      e.At(row, 1) =
          static_cast<float>(std::fabs(deadlines[i] - deadlines[j]) / 60.0);
      e.At(row, 2) = adjacency[row] ? 1.0f : 0.0f;
    }
  }
  return e;
}

}  // namespace m2g::graph
