#include "graph/multi_level_graph.h"

#include <algorithm>

#include "graph/features.h"

namespace m2g::graph {

LevelGraph BuildLocationGraph(const synth::Sample& sample,
                              const GraphConfig& config) {
  LevelGraph g;
  g.n = sample.num_locations();
  g.node_continuous = LocationNodeFeatures(sample);
  g.node_aoi_id.reserve(g.n);
  g.node_aoi_type.reserve(g.n);
  std::vector<geo::LatLng> points;
  std::vector<double> deadlines;
  for (const synth::LocationTask& task : sample.locations) {
    g.node_aoi_id.push_back(task.aoi_id);
    g.node_aoi_type.push_back(task.aoi_type);
    points.push_back(task.pos);
    deadlines.push_back(task.deadline_min);
  }
  g.adjacency = KnnConnectivity(points, deadlines, config.k_neighbors);
  g.edge_features = EdgeFeatures(points, deadlines, g.adjacency);
  return g;
}

MultiLevelGraph BuildMultiLevelGraph(const synth::Sample& sample,
                                     const GraphConfig& config) {
  MultiLevelGraph mlg;
  mlg.location = BuildLocationGraph(sample, config);
  mlg.loc_to_aoi = sample.loc_to_aoi;

  LevelGraph& a = mlg.aoi;
  a.n = sample.num_aois();
  a.node_continuous = AoiNodeFeatures(sample);
  std::vector<geo::LatLng> centroids = AoiCentroids(sample);
  std::vector<double> earliest_deadline(a.n, 1e18);
  for (int i = 0; i < sample.num_locations(); ++i) {
    earliest_deadline[sample.loc_to_aoi[i]] =
        std::min(earliest_deadline[sample.loc_to_aoi[i]],
                 sample.locations[i].deadline_min);
  }
  a.node_aoi_id = sample.aoi_node_ids;
  a.node_aoi_type.resize(a.n, 0);
  // Recover each AOI node's type from any member location.
  for (int i = 0; i < sample.num_locations(); ++i) {
    a.node_aoi_type[sample.loc_to_aoi[i]] = sample.locations[i].aoi_type;
  }
  a.adjacency =
      KnnConnectivity(centroids, earliest_deadline, config.k_neighbors);
  a.edge_features = EdgeFeatures(centroids, earliest_deadline, a.adjacency);
  return mlg;
}

}  // namespace m2g::graph
