#include "graph/multi_level_graph.h"

#include <algorithm>
#include <cstring>

#include "graph/features.h"

namespace m2g::graph {

namespace {

/// Exact node identity: bitwise continuous row + discrete ids. memcmp is
/// deliberately stricter than float equality (NaN-safe, -0 != +0), so a
/// "same node" verdict licenses bitwise reuse of cached encodings.
bool SameNode(const LevelGraph& a, int i, const LevelGraph& b, int j) {
  if (a.node_aoi_id[i] != b.node_aoi_id[j]) return false;
  if (a.node_aoi_type[i] != b.node_aoi_type[j]) return false;
  const int d = a.node_continuous.cols();
  if (d != b.node_continuous.cols()) return false;
  return std::memcmp(a.node_continuous.data() + static_cast<size_t>(i) * d,
                     b.node_continuous.data() + static_cast<size_t>(j) * d,
                     sizeof(float) * d) == 0;
}

/// True when the two equal-length graphs hold the same node multiset in a
/// different order (a permutation): those must classify structural, not
/// as per-index feature drift.
bool IsPermutation(const LevelGraph& before, const LevelGraph& after) {
  const int n = before.n;
  std::vector<bool> used(n, false);
  for (int i = 0; i < n; ++i) {
    bool matched = false;
    for (int j = 0; j < n; ++j) {
      if (!used[j] && SameNode(after, i, before, j)) {
        used[j] = true;
        matched = true;
        break;
      }
    }
    if (!matched) return false;
  }
  return true;
}

}  // namespace

LevelGraphDelta DiffLevelGraph(const LevelGraph& before,
                               const LevelGraph& after) {
  LevelGraphDelta delta;
  if (before.n <= 0 || after.n <= 0 ||
      before.node_continuous.cols() != after.node_continuous.cols()) {
    return delta;  // kStructural
  }
  if (after.n == before.n) {
    const int n = before.n;
    int first_mismatch = -1;
    for (int i = 0; i < n; ++i) {
      if (!SameNode(before, i, after, i)) {
        first_mismatch = i;
        break;
      }
    }
    if (first_mismatch < 0) {
      const size_t nn = static_cast<size_t>(n) * n;
      const bool same_adj = before.adjacency == after.adjacency;
      const bool same_edges =
          std::memcmp(before.edge_features.data(), after.edge_features.data(),
                      sizeof(float) * nn * before.edge_features.cols()) == 0;
      delta.kind = (same_adj && same_edges) ? LevelDeltaKind::kIdentical
                                            : LevelDeltaKind::kSameNodes;
      return delta;
    }
    // Mismatched rows: per-index feature drift is delta-encodable, but a
    // reordering of the same nodes is not.
    if (IsPermutation(before, after)) return delta;  // kStructural
    delta.kind = LevelDeltaKind::kSameNodes;
    return delta;
  }
  if (after.n == before.n + 1) {
    int p = before.n;  // default: appended at the end
    for (int i = 0; i < before.n; ++i) {
      if (!SameNode(before, i, after, i)) {
        p = i;
        break;
      }
    }
    for (int i = p; i < before.n; ++i) {
      if (!SameNode(before, i, after, i + 1)) return delta;  // kStructural
    }
    delta.kind = LevelDeltaKind::kInsert;
    delta.pos = p;
    return delta;
  }
  if (after.n == before.n - 1) {
    int p = after.n;  // default: last node removed
    for (int i = 0; i < after.n; ++i) {
      if (!SameNode(before, i, after, i)) {
        p = i;
        break;
      }
    }
    for (int i = p; i < after.n; ++i) {
      if (!SameNode(before, i + 1, after, i)) return delta;  // kStructural
    }
    delta.kind = LevelDeltaKind::kRemove;
    delta.pos = p;
    return delta;
  }
  return delta;  // kStructural
}

LevelGraph BuildLocationGraph(const synth::Sample& sample,
                              const GraphConfig& config) {
  LevelGraph g;
  g.n = sample.num_locations();
  g.node_continuous = LocationNodeFeatures(sample);
  g.node_aoi_id.reserve(g.n);
  g.node_aoi_type.reserve(g.n);
  std::vector<geo::LatLng> points;
  std::vector<double> deadlines;
  for (const synth::LocationTask& task : sample.locations) {
    g.node_aoi_id.push_back(task.aoi_id);
    g.node_aoi_type.push_back(task.aoi_type);
    points.push_back(task.pos);
    deadlines.push_back(task.deadline_min);
  }
  g.adjacency = KnnConnectivity(points, deadlines, config.k_neighbors);
  g.edge_features = EdgeFeatures(points, deadlines, g.adjacency);
  return g;
}

MultiLevelGraph BuildMultiLevelGraph(const synth::Sample& sample,
                                     const GraphConfig& config) {
  MultiLevelGraph mlg;
  mlg.location = BuildLocationGraph(sample, config);
  mlg.loc_to_aoi = sample.loc_to_aoi;

  LevelGraph& a = mlg.aoi;
  a.n = sample.num_aois();
  a.node_continuous = AoiNodeFeatures(sample);
  std::vector<geo::LatLng> centroids = AoiCentroids(sample);
  std::vector<double> earliest_deadline(a.n, 1e18);
  for (int i = 0; i < sample.num_locations(); ++i) {
    earliest_deadline[sample.loc_to_aoi[i]] =
        std::min(earliest_deadline[sample.loc_to_aoi[i]],
                 sample.locations[i].deadline_min);
  }
  a.node_aoi_id = sample.aoi_node_ids;
  a.node_aoi_type.resize(a.n, 0);
  // Recover each AOI node's type from any member location.
  for (int i = 0; i < sample.num_locations(); ++i) {
    a.node_aoi_type[sample.loc_to_aoi[i]] = sample.locations[i].aoi_type;
  }
  a.adjacency =
      KnnConnectivity(centroids, earliest_deadline, config.k_neighbors);
  a.edge_features = EdgeFeatures(centroids, earliest_deadline, a.adjacency);
  return mlg;
}

}  // namespace m2g::graph
