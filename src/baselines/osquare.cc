#include "baselines/osquare.h"

#include <algorithm>

#include "common/check.h"

namespace m2g::baselines {

void OSquare::Fit(const synth::Dataset& train) {
  M2G_CHECK(!train.samples.empty());

  // --- Route model: pointwise next-location classification. For every
  // teacher-forced decode step, the true next location is a positive
  // example and every other unvisited location a negative one.
  std::vector<std::vector<float>> rows;
  std::vector<float> labels;
  for (const synth::Sample& s : train.samples) {
    geo::LatLng pos = s.courier_pos;
    int current_aoi = -1;
    std::vector<bool> visited(s.num_locations(), false);
    for (int step = 0; step < s.num_locations(); ++step) {
      const int truth = s.route_label[step];
      const int unvisited = s.num_locations() - step;
      for (int cand = 0; cand < s.num_locations(); ++cand) {
        if (visited[cand]) continue;
        rows.push_back(CandidateFeatures(s, pos, current_aoi, step,
                                         unvisited, cand));
        labels.push_back(cand == truth ? 1.0f : 0.0f);
      }
      visited[truth] = true;
      pos = s.locations[truth].pos;
      current_aoi = s.locations[truth].aoi_id;
    }
  }
  Matrix x(static_cast<int>(rows.size()), kCandidateFeatureDim);
  for (size_t r = 0; r < rows.size(); ++r) {
    for (int c = 0; c < kCandidateFeatureDim; ++c) {
      x.At(static_cast<int>(r), c) = rows[r][c];
    }
  }
  route_model_ =
      std::make_unique<gbdt::GbdtBinaryClassifier>(config_.route_booster);
  route_model_->Fit(x, labels);

  // --- Time model: regress arrival gaps on features of the *predicted*
  // route (two-step, like the paper's plugged heads).
  std::vector<Matrix> feature_rows;
  std::vector<float> time_targets;
  for (const synth::Sample& s : train.samples) {
    Matrix f = TimeFeatures(s, PredictRoute(s));
    for (int i = 0; i < s.num_locations(); ++i) {
      Matrix row(1, kTimeFeatureDim);
      for (int c = 0; c < kTimeFeatureDim; ++c) row.At(0, c) = f.At(i, c);
      feature_rows.push_back(std::move(row));
      time_targets.push_back(static_cast<float>(s.time_label_min[i]) /
                             config_.time_scale_minutes);
    }
  }
  Matrix tx(static_cast<int>(feature_rows.size()), kTimeFeatureDim);
  for (size_t r = 0; r < feature_rows.size(); ++r) {
    for (int c = 0; c < kTimeFeatureDim; ++c) {
      tx.At(static_cast<int>(r), c) = feature_rows[r].At(0, c);
    }
  }
  time_model_ = std::make_unique<gbdt::GbdtRegressor>(config_.time_booster);
  time_model_->Fit(tx, time_targets);
}

std::vector<int> OSquare::PredictRoute(const synth::Sample& sample) const {
  M2G_CHECK(route_model_ != nullptr);
  const int n = sample.num_locations();
  std::vector<bool> visited(n, false);
  std::vector<int> route;
  route.reserve(n);
  geo::LatLng pos = sample.courier_pos;
  int current_aoi = -1;
  for (int step = 0; step < n; ++step) {
    int best = -1;
    float best_score = 0;
    for (int cand = 0; cand < n; ++cand) {
      if (visited[cand]) continue;
      auto f = CandidateFeatures(sample, pos, current_aoi, step, n - step,
                                 cand);
      const float score = route_model_->PredictScore(f.data());
      if (best < 0 || score > best_score) {
        best = cand;
        best_score = score;
      }
    }
    visited[best] = true;
    route.push_back(best);
    pos = sample.locations[best].pos;
    current_aoi = sample.locations[best].aoi_id;
  }
  return route;
}

core::RtpPrediction OSquare::Predict(const synth::Sample& sample) const {
  M2G_CHECK(time_model_ != nullptr);
  core::RtpPrediction pred;
  pred.location_route = PredictRoute(sample);
  Matrix f = TimeFeatures(sample, pred.location_route);
  pred.location_times_min.resize(sample.num_locations());
  for (int i = 0; i < sample.num_locations(); ++i) {
    pred.location_times_min[i] = std::max(
        0.0, static_cast<double>(time_model_->Predict(
                 f.data() + static_cast<size_t>(i) * kTimeFeatureDim)) *
                 config_.time_scale_minutes);
  }
  return pred;
}

}  // namespace m2g::baselines
