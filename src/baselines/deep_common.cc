#include "baselines/deep_common.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace m2g::baselines {

core::ModelConfig DeepBaselineConfig::ToModelConfig() const {
  core::ModelConfig mc;
  mc.seed = seed;
  mc.hidden_dim = hidden_dim;
  mc.num_heads = num_heads;
  mc.num_layers = num_layers;
  mc.lstm_hidden_dim = lstm_hidden_dim;
  mc.courier_dim = courier_dim;
  // Scale the discrete embedding widths with the hidden size so the
  // continuous features always keep at least half the embedding.
  mc.aoi_id_embed_dim = std::min(12, hidden_dim / 4);
  mc.aoi_type_embed_dim = std::min(4, hidden_dim / 8);
  mc.courier_id_embed_dim = std::min(12, std::max(2, courier_dim / 2));
  M2G_CHECK_MSG(core::ValidateConfig(mc).ok(),
                "DeepBaselineConfig maps to an invalid ModelConfig");
  return mc;
}

void TrainRouteLoop(
    nn::Module* module,
    const std::function<Tensor(const synth::Sample&)>& loss_fn,
    const synth::Dataset& train, const synth::Dataset& val,
    const DeepBaselineConfig& config) {
  M2G_CHECK(!train.samples.empty());
  nn::Adam opt(module->Parameters(), config.learning_rate);
  Rng rng(config.seed ^ 0x55aa);

  auto evaluate = [&](const synth::Dataset& ds) {
    if (ds.samples.empty()) return 0.0f;
    double total = 0;
    for (const synth::Sample& s : ds.samples) total += loss_fn(s).item();
    return static_cast<float>(total / ds.samples.size());
  };

  std::vector<int> order(train.samples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);

  float best_val = std::numeric_limits<float>::infinity();
  std::vector<Matrix> best_params;
  int stale = 0;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(&order);
    int limit = static_cast<int>(order.size());
    if (config.max_samples_per_epoch > 0) {
      limit = std::min(limit, config.max_samples_per_epoch);
    }
    opt.ZeroGrad();
    int in_batch = 0;
    double train_total = 0;
    for (int idx = 0; idx < limit; ++idx) {
      Tensor loss = loss_fn(train.samples[order[idx]]);
      train_total += loss.item();
      Scale(loss, 1.0f / config.batch_size).Backward();
      if (++in_batch == config.batch_size || idx + 1 == limit) {
        opt.ClipGradNorm(config.grad_clip_norm);
        opt.Step();
        opt.ZeroGrad();
        in_batch = 0;
      }
    }
    const float val_loss = val.samples.empty()
                               ? static_cast<float>(train_total / limit)
                               : evaluate(val);
    if (val_loss < best_val) {
      best_val = val_loss;
      stale = 0;
      best_params.clear();
      for (const Tensor& p : module->Parameters()) {
        best_params.push_back(p.value());
      }
    } else if (config.early_stop_patience > 0 &&
               ++stale >= config.early_stop_patience) {
      break;
    }
  }
  if (!best_params.empty()) {
    auto params = module->Parameters();
    for (size_t i = 0; i < params.size(); ++i) {
      params[i].node()->value = best_params[i];
    }
  }
}

}  // namespace m2g::baselines
