#ifndef M2G_BASELINES_TIME_MLP_H_
#define M2G_BASELINES_TIME_MLP_H_

#include <functional>
#include <memory>

#include "baselines/seq_features.h"
#include "nn/mlp.h"

namespace m2g::baselines {

/// The paper's "plugged" time-prediction module (§V-B): a three-layer
/// fully connected network trained *separately* from the route model. For
/// each route-only baseline, the time head consumes per-location features
/// derived from that baseline's predicted route.
class PluggedTimeMlp {
 public:
  struct Config {
    int hidden_dim = 32;
    int epochs = 6;
    float learning_rate = 2e-3f;
    float time_scale_minutes = 60.0f;
    uint64_t seed = 99;
  };

  explicit PluggedTimeMlp(const Config& config);

  /// `route_fn` maps a sample to the route the (already trained) route
  /// model predicts for it; the time head learns arrival gaps on top of
  /// those routes.
  void Fit(const synth::Dataset& train,
           const std::function<std::vector<int>(const synth::Sample&)>&
               route_fn);

  /// Per-location arrival gaps (minutes, indexed by location node).
  std::vector<double> PredictTimes(const synth::Sample& sample,
                                   const std::vector<int>& route) const;

 private:
  Config config_;
  std::unique_ptr<nn::Mlp> mlp_;
};

}  // namespace m2g::baselines

#endif  // M2G_BASELINES_TIME_MLP_H_
