#include "baselines/seq_features.h"

#include <algorithm>

#include "common/check.h"

namespace m2g::baselines {

std::vector<float> CandidateFeatures(const synth::Sample& sample,
                                     const geo::LatLng& current_pos,
                                     int current_aoi, int step,
                                     int num_unvisited, int candidate) {
  const synth::LocationTask& task = sample.locations[candidate];
  const int n = sample.num_locations();
  std::vector<float> f(kCandidateFeatureDim);
  f[0] = static_cast<float>(
      geo::ApproxMeters(current_pos, task.pos) / 1000.0);
  f[1] = static_cast<float>(
      (task.deadline_min - sample.query_time_min) / 60.0);
  f[2] = static_cast<float>(
      (sample.query_time_min - task.accept_time_min) / 60.0);
  f[3] = (current_aoi >= 0 && task.aoi_id == current_aoi) ? 1.0f : 0.0f;
  f[4] = static_cast<float>(step) / 20.0f;
  f[5] = static_cast<float>(num_unvisited) / 20.0f;
  f[6] = static_cast<float>(n) / 20.0f;
  f[7] = static_cast<float>(sample.courier.avg_speed_mps / 10.0);
  f[8] = static_cast<float>(task.dist_from_courier_m / 1000.0);
  return f;
}

Matrix TimeFeatures(const synth::Sample& sample,
                    const std::vector<int>& route) {
  const int n = sample.num_locations();
  M2G_CHECK_EQ(static_cast<int>(route.size()), n);
  Matrix out(n, kTimeFeatureDim);
  geo::LatLng pos = sample.courier_pos;
  double cumulative_km = 0;
  for (int s = 0; s < n; ++s) {
    const int node = route[s];
    const synth::LocationTask& task = sample.locations[node];
    cumulative_km += geo::ApproxMeters(pos, task.pos) / 1000.0;
    pos = task.pos;
    out.At(node, 0) = static_cast<float>(s + 1) / 20.0f;
    out.At(node, 1) = static_cast<float>(cumulative_km);
    out.At(node, 2) = static_cast<float>(task.dist_from_courier_m / 1000.0);
    out.At(node, 3) = static_cast<float>(
        (task.deadline_min - sample.query_time_min) / 60.0);
    out.At(node, 4) = static_cast<float>(n) / 20.0f;
    out.At(node, 5) =
        static_cast<float>(sample.courier.avg_speed_mps / 10.0);
    out.At(node, 6) =
        static_cast<float>(sample.courier.service_time_mean_min / 10.0);
    out.At(node, 7) = static_cast<float>(sample.weather) / 3.0f;
    out.At(node, 8) = static_cast<float>(sample.weekday) / 6.0f;
    out.At(node, 9) =
        static_cast<float>(cumulative_km /
                           std::max(0.5, sample.courier.avg_speed_mps));
    out.At(node, 10) = static_cast<float>(task.aoi_type) / 5.0f;
    // Hashed AOI identity: gives tree learners a feature they can split
    // on (like feeding the raw id to XGBoost); nearly useless for the
    // MLP heads, which reflects reality.
    out.At(node, 11) =
        static_cast<float>((task.aoi_id * 2654435761u) % 4096) / 4096.0f;
  }
  return out;
}

}  // namespace m2g::baselines
