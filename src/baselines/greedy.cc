#include "baselines/greedy.h"

#include <algorithm>
#include <numeric>

namespace m2g::baselines {

std::vector<double> FixedSpeedTimes(const synth::Sample& sample,
                                    const std::vector<int>& route,
                                    const HeuristicConfig& config) {
  std::vector<double> times(route.size(), 0.0);
  geo::LatLng pos = sample.courier_pos;
  double now = 0.0;
  for (int node : route) {
    const double meters =
        geo::ApproxMeters(pos, sample.locations[node].pos) *
        config.detour_factor;
    now += meters / config.fixed_speed_mps / 60.0;
    times[node] = now;
    now += config.service_minutes_per_stop;
    pos = sample.locations[node].pos;
  }
  return times;
}

core::RtpPrediction TimeGreedyPredict(const synth::Sample& sample,
                                      const HeuristicConfig& config) {
  const int n = sample.num_locations();
  std::vector<int> route(n);
  std::iota(route.begin(), route.end(), 0);
  std::stable_sort(route.begin(), route.end(), [&](int a, int b) {
    return sample.locations[a].deadline_min <
           sample.locations[b].deadline_min;
  });
  core::RtpPrediction pred;
  pred.location_route = route;
  pred.location_times_min = FixedSpeedTimes(sample, route, config);
  return pred;
}

core::RtpPrediction DistanceGreedyPredict(const synth::Sample& sample,
                                          const HeuristicConfig& config) {
  const int n = sample.num_locations();
  std::vector<bool> visited(n, false);
  std::vector<int> route;
  route.reserve(n);
  geo::LatLng pos = sample.courier_pos;
  for (int step = 0; step < n; ++step) {
    int best = -1;
    double best_dist = 0;
    for (int i = 0; i < n; ++i) {
      if (visited[i]) continue;
      const double d = geo::ApproxMeters(pos, sample.locations[i].pos);
      if (best < 0 || d < best_dist) {
        best = i;
        best_dist = d;
      }
    }
    visited[best] = true;
    route.push_back(best);
    pos = sample.locations[best].pos;
  }
  core::RtpPrediction pred;
  pred.location_route = route;
  pred.location_times_min = FixedSpeedTimes(sample, route, config);
  return pred;
}

}  // namespace m2g::baselines
