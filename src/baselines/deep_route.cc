#include "baselines/deep_route.h"

#include <cmath>

#include "common/string_util.h"
#include "graph/features.h"
#include "nn/init.h"

namespace m2g::baselines {

DeepRoute::DeepRoute(const DeepBaselineConfig& config) : config_(config) {
  core::ModelConfig mc = config.ToModelConfig();
  Rng rng(config.seed);
  feature_embed_ = std::make_unique<core::LevelFeatureEmbed>(
      mc, graph::kLocationContinuousDim, &rng);
  AddChild("feature_embed", feature_embed_.get());
  global_embed_ = std::make_unique<core::GlobalFeatureEmbed>(mc, &rng);
  AddChild("global_embed", global_embed_.get());
  input_proj_ = std::make_unique<nn::Linear>(
      config.hidden_dim + config.courier_dim, config.hidden_dim, &rng);
  AddChild("input_proj", input_proj_.get());

  const int d = config.hidden_dim;
  layers_.resize(config.num_layers);
  for (int l = 0; l < config.num_layers; ++l) {
    SelfAttentionLayer& layer = layers_[l];
    const std::string p = StrFormat("layer%d_", l);
    layer.wq = AddParameter(p + "wq", nn::XavierUniform(d, d, &rng));
    layer.wk = AddParameter(p + "wk", nn::XavierUniform(d, d, &rng));
    layer.wv = AddParameter(p + "wv", nn::XavierUniform(d, d, &rng));
    layer.wo = AddParameter(p + "wo", nn::XavierUniform(d, d, &rng));
    layer.ff1 = AddParameter(p + "ff1", nn::XavierUniform(d, 2 * d, &rng));
    layer.ff1_b = AddParameter(p + "ff1_b", Matrix(1, 2 * d));
    layer.ff2 = AddParameter(p + "ff2", nn::XavierUniform(2 * d, d, &rng));
    layer.ff2_b = AddParameter(p + "ff2_b", Matrix(1, d));
  }
  decoder_ = std::make_unique<core::AttentionRouteDecoder>(
      d, config.courier_dim, config.lstm_hidden_dim, &rng);
  AddChild("decoder", decoder_.get());
  time_head_ = std::make_unique<PluggedTimeMlp>(config.time_head);
}

Tensor DeepRoute::RunLayer(const SelfAttentionLayer& layer,
                           const Tensor& h) const {
  const int n = h.rows();
  const int d = config_.hidden_dim;
  // Single-head scaled dot-product attention with residuals. (The paper's
  // DeepRoute uses a standard Transformer encoder; at d=32 and n<=20 one
  // head per layer is capacity-equivalent and cheaper.)
  Tensor q = MatMul(h, layer.wq);
  Tensor k = MatMul(h, layer.wk);
  Tensor v = MatMul(h, layer.wv);
  Tensor scores =
      Scale(MatMul(q, Transpose(k)), 1.0f / std::sqrt(static_cast<float>(d)));
  std::vector<bool> all(n, true);
  std::vector<Tensor> rows;
  rows.reserve(n);
  for (int i = 0; i < n; ++i) {
    rows.push_back(MaskedSoftmaxRow(Row(scores, i), all));
  }
  Tensor attn = MatMul(ConcatRows(rows), v);
  Tensor mixed = Add(h, MatMul(attn, layer.wo));  // residual 1
  Tensor ff = AddRowBroadcast(
      MatMul(Relu(AddRowBroadcast(MatMul(mixed, layer.ff1), layer.ff1_b)),
             layer.ff2),
      layer.ff2_b);
  return Add(mixed, ff);  // residual 2
}

Tensor DeepRoute::EncodeSample(const synth::Sample& sample) const {
  graph::LevelGraph level = graph::BuildLocationGraph(sample, {});
  Tensor nodes = feature_embed_->EmbedNodes(level);
  Tensor u = global_embed_->Embed(sample);
  Tensor h = input_proj_->Forward(
      ConcatCols(nodes, BroadcastRows(u, level.n)));
  for (const SelfAttentionLayer& layer : layers_) {
    h = RunLayer(layer, h);
  }
  return h;
}

void DeepRoute::Fit(const synth::Dataset& train, const synth::Dataset& val) {
  auto loss_fn = [this](const synth::Sample& s) {
    Tensor h = EncodeSample(s);
    Tensor u = global_embed_->Embed(s);
    return decoder_->TeacherForcedLoss(h, u, s.route_label);
  };
  TrainRouteLoop(this, loss_fn, train, val, config_);
  // Two-step: freeze the route model, fit the plugged time head on its
  // predicted routes.
  time_head_->Fit(train, [this](const synth::Sample& s) {
    return PredictRoute(s);
  });
}

std::vector<int> DeepRoute::PredictRoute(const synth::Sample& sample) const {
  Tensor h = EncodeSample(sample);
  Tensor u = global_embed_->Embed(sample);
  return decoder_->DecodeGreedy(h, u);
}

core::RtpPrediction DeepRoute::Predict(const synth::Sample& sample) const {
  core::RtpPrediction pred;
  pred.location_route = PredictRoute(sample);
  pred.location_times_min =
      time_head_->PredictTimes(sample, pred.location_route);
  return pred;
}

}  // namespace m2g::baselines
