#ifndef M2G_BASELINES_GRAPH2ROUTE_H_
#define M2G_BASELINES_GRAPH2ROUTE_H_

#include <memory>
#include <vector>

#include "baselines/deep_common.h"
#include "core/feature_embed.h"
#include "core/model.h"
#include "core/route_decoder.h"

namespace m2g::baselines {

/// Graph2Route (§V-B / [10]): the strongest prior route model — a GCN
/// encoder over the single-level location graph plus an attention pointer
/// decoder. It has the graph inductive bias but no AOI level and no joint
/// time task; Table IV uses the plugged time head like the other
/// route-only baselines.
class Graph2Route : public nn::Module {
 public:
  explicit Graph2Route(const DeepBaselineConfig& config);

  void Fit(const synth::Dataset& train, const synth::Dataset& val);

  core::RtpPrediction Predict(const synth::Sample& sample) const;

  std::vector<int> PredictRoute(const synth::Sample& sample) const;

  Tensor EncodeSample(const synth::Sample& sample) const;

 private:
  DeepBaselineConfig config_;
  std::unique_ptr<core::LevelFeatureEmbed> feature_embed_;
  std::unique_ptr<core::GlobalFeatureEmbed> global_embed_;
  std::unique_ptr<nn::Linear> input_proj_;
  std::vector<Tensor> gcn_weights_;       // per layer (d, d), neighbours
  std::vector<Tensor> gcn_self_weights_;  // per layer (d, d), self path
  std::vector<Tensor> gcn_biases_;        // per layer (1, d)
  std::unique_ptr<core::AttentionRouteDecoder> decoder_;
  std::unique_ptr<PluggedTimeMlp> time_head_;
};

/// Symmetrically normalized dense adjacency D^{-1/2} (A) D^{-1/2} built
/// from the Eq. 15 connectivity (self-loops included). Exposed for tests.
Matrix NormalizedAdjacency(const std::vector<bool>& adjacency, int n);

}  // namespace m2g::baselines

#endif  // M2G_BASELINES_GRAPH2ROUTE_H_
