#ifndef M2G_BASELINES_FDNET_H_
#define M2G_BASELINES_FDNET_H_

#include <memory>

#include "baselines/deep_common.h"
#include "core/feature_embed.h"
#include "core/model.h"
#include "core/route_decoder.h"
#include "nn/lstm_cell.h"

namespace m2g::baselines {

/// FDNET (§V-B / [1]): the only prior route&time model. An LSTM-based RNN
/// encoder over the unvisited locations feeds an attention route decoder;
/// a Wide&Deep network, trained in a *second stage* on the frozen route
/// model's outputs, predicts arrival times. The sequential encoder (which
/// must impose an arbitrary order on an unordered set) and the two-stage
/// training are exactly the weaknesses the paper's Table III/IV expose.
class Fdnet : public nn::Module {
 public:
  explicit Fdnet(const DeepBaselineConfig& config);

  void Fit(const synth::Dataset& train, const synth::Dataset& val);

  core::RtpPrediction Predict(const synth::Sample& sample) const;

  std::vector<int> PredictRoute(const synth::Sample& sample) const;

  Tensor EncodeSample(const synth::Sample& sample) const;

 private:
  /// Wide&Deep time head: wide linear part + deep MLP part over the
  /// route-derived features, summed.
  class WideDeepTimeHead : public nn::Module {
   public:
    WideDeepTimeHead(const PluggedTimeMlp::Config& config, Rng* rng);
    void Fit(const synth::Dataset& train,
             const std::function<std::vector<int>(const synth::Sample&)>&
                 route_fn);
    std::vector<double> PredictTimes(const synth::Sample& sample,
                                     const std::vector<int>& route) const;

   private:
    PluggedTimeMlp::Config config_;
    std::unique_ptr<nn::Linear> wide_;
    std::unique_ptr<nn::Mlp> deep_;
  };

  DeepBaselineConfig config_;
  std::unique_ptr<core::LevelFeatureEmbed> feature_embed_;
  std::unique_ptr<core::GlobalFeatureEmbed> global_embed_;
  std::unique_ptr<nn::LstmCell> encoder_lstm_;
  std::unique_ptr<nn::Linear> encoder_proj_;
  std::unique_ptr<core::AttentionRouteDecoder> decoder_;
  std::unique_ptr<WideDeepTimeHead> time_head_;
};

}  // namespace m2g::baselines

#endif  // M2G_BASELINES_FDNET_H_
