#ifndef M2G_BASELINES_SEQ_FEATURES_H_
#define M2G_BASELINES_SEQ_FEATURES_H_

#include <vector>

#include "synth/dataset.h"
#include "tensor/matrix.h"

namespace m2g::baselines {

/// Hand-crafted features shared by the tree-based baseline (OSquare) and
/// the separately-trained "plugged" time modules of the route-only deep
/// baselines (§V-B). These deliberately exclude any graph structure — that
/// is exactly the representational gap the paper's comparison probes.

/// Candidate features for one unvisited location at one decode step.
inline constexpr int kCandidateFeatureDim = 9;
std::vector<float> CandidateFeatures(const synth::Sample& sample,
                                     const geo::LatLng& current_pos,
                                     int current_aoi, int step,
                                     int num_unvisited, int candidate);

/// Per-location features given a (predicted or label) route.
inline constexpr int kTimeFeatureDim = 12;
/// Returns an (n x kTimeFeatureDim) matrix, row i = features of location i
/// under `route`.
Matrix TimeFeatures(const synth::Sample& sample,
                    const std::vector<int>& route);

}  // namespace m2g::baselines

#endif  // M2G_BASELINES_SEQ_FEATURES_H_
