#ifndef M2G_BASELINES_OSQUARE_H_
#define M2G_BASELINES_OSQUARE_H_

#include <memory>

#include "baselines/gbdt/booster.h"
#include "baselines/seq_features.h"
#include "core/model.h"

namespace m2g::baselines {

/// OSquare (§V-B / [4]): an XGBoost-style model that outputs the next
/// location one step at a time; the whole route is generated recurrently.
/// A second booster, trained separately, predicts the arrival time of
/// each location from route-derived features.
class OSquare {
 public:
  struct Config {
    gbdt::BoosterConfig route_booster;
    gbdt::BoosterConfig time_booster;
    float time_scale_minutes = 60.0f;
    uint64_t seed = 2024;
  };

  explicit OSquare(const Config& config) : config_(config) {}
  OSquare() : OSquare(Config{}) {}

  /// Trains the next-location classifier on teacher-forced decode steps,
  /// then the time regressor on the (frozen) route model's predictions.
  void Fit(const synth::Dataset& train);

  core::RtpPrediction Predict(const synth::Sample& sample) const;

  /// Route-only prediction (used while training the time head).
  std::vector<int> PredictRoute(const synth::Sample& sample) const;

 private:
  Config config_;
  std::unique_ptr<gbdt::GbdtBinaryClassifier> route_model_;
  std::unique_ptr<gbdt::GbdtRegressor> time_model_;
};

}  // namespace m2g::baselines

#endif  // M2G_BASELINES_OSQUARE_H_
