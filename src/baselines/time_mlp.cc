#include "baselines/time_mlp.h"

#include <algorithm>

#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace m2g::baselines {

PluggedTimeMlp::PluggedTimeMlp(const Config& config) : config_(config) {
  Rng rng(config.seed);
  mlp_ = std::make_unique<nn::Mlp>(
      std::vector<int>{kTimeFeatureDim, config.hidden_dim,
                       config.hidden_dim, 1},
      &rng);
}

void PluggedTimeMlp::Fit(
    const synth::Dataset& train,
    const std::function<std::vector<int>(const synth::Sample&)>& route_fn) {
  // Precompute features once: routes are fixed (the route model is
  // already trained and frozen — the two-step paradigm of §V-B).
  std::vector<Matrix> features;
  features.reserve(train.samples.size());
  for (const synth::Sample& s : train.samples) {
    features.push_back(TimeFeatures(s, route_fn(s)));
  }

  nn::Adam opt(mlp_->Parameters(), config_.learning_rate);
  Rng rng(config_.seed ^ 0xabcdef);
  std::vector<int> order(train.samples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (int idx : order) {
      const synth::Sample& s = train.samples[idx];
      opt.ZeroGrad();
      Tensor pred = mlp_->Forward(Tensor::Constant(features[idx]));
      Tensor loss = Tensor::Scalar(0);
      for (int i = 0; i < s.num_locations(); ++i) {
        loss = Add(loss,
                   L1Loss(Row(pred, i),
                          static_cast<float>(s.time_label_min[i]) /
                              config_.time_scale_minutes));
      }
      Scale(loss, 1.0f / s.num_locations()).Backward();
      opt.ClipGradNorm(5.0f);
      opt.Step();
    }
  }
}

std::vector<double> PluggedTimeMlp::PredictTimes(
    const synth::Sample& sample, const std::vector<int>& route) const {
  Tensor pred =
      mlp_->Forward(Tensor::Constant(TimeFeatures(sample, route)));
  std::vector<double> out(route.size());
  for (size_t i = 0; i < route.size(); ++i) {
    out[i] = std::max(
        0.0, static_cast<double>(pred.value().At(static_cast<int>(i), 0)) *
                 config_.time_scale_minutes);
  }
  return out;
}

}  // namespace m2g::baselines
