#include "baselines/fdnet.h"

#include <algorithm>

#include "graph/features.h"
#include "nn/optimizer.h"

namespace m2g::baselines {

Fdnet::WideDeepTimeHead::WideDeepTimeHead(
    const PluggedTimeMlp::Config& config, Rng* rng)
    : config_(config) {
  wide_ = std::make_unique<nn::Linear>(kTimeFeatureDim, 1, rng);
  deep_ = std::make_unique<nn::Mlp>(
      std::vector<int>{kTimeFeatureDim, config.hidden_dim,
                       config.hidden_dim, 1},
      rng);
  AddChild("wide", wide_.get());
  AddChild("deep", deep_.get());
}

void Fdnet::WideDeepTimeHead::Fit(
    const synth::Dataset& train,
    const std::function<std::vector<int>(const synth::Sample&)>& route_fn) {
  std::vector<Matrix> features;
  features.reserve(train.samples.size());
  for (const synth::Sample& s : train.samples) {
    features.push_back(TimeFeatures(s, route_fn(s)));
  }
  nn::Adam opt(Parameters(), config_.learning_rate);
  Rng rng(config_.seed ^ 0x77);
  std::vector<int> order(train.samples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (int idx : order) {
      const synth::Sample& s = train.samples[idx];
      opt.ZeroGrad();
      Tensor x = Tensor::Constant(features[idx]);
      Tensor pred = Add(wide_->Forward(x), deep_->Forward(x));
      Tensor loss = Tensor::Scalar(0);
      for (int i = 0; i < s.num_locations(); ++i) {
        loss = Add(loss,
                   L1Loss(Row(pred, i),
                          static_cast<float>(s.time_label_min[i]) /
                              config_.time_scale_minutes));
      }
      Scale(loss, 1.0f / s.num_locations()).Backward();
      opt.ClipGradNorm(5.0f);
      opt.Step();
    }
  }
}

std::vector<double> Fdnet::WideDeepTimeHead::PredictTimes(
    const synth::Sample& sample, const std::vector<int>& route) const {
  Tensor x = Tensor::Constant(TimeFeatures(sample, route));
  Tensor pred = Add(wide_->Forward(x), deep_->Forward(x));
  std::vector<double> out(route.size());
  for (size_t i = 0; i < route.size(); ++i) {
    out[i] = std::max(
        0.0, static_cast<double>(pred.value().At(static_cast<int>(i), 0)) *
                 config_.time_scale_minutes);
  }
  return out;
}

Fdnet::Fdnet(const DeepBaselineConfig& config) : config_(config) {
  core::ModelConfig mc = config.ToModelConfig();
  Rng rng(config.seed);
  feature_embed_ = std::make_unique<core::LevelFeatureEmbed>(
      mc, graph::kLocationContinuousDim, &rng);
  AddChild("feature_embed", feature_embed_.get());
  global_embed_ = std::make_unique<core::GlobalFeatureEmbed>(mc, &rng);
  AddChild("global_embed", global_embed_.get());
  encoder_lstm_ = std::make_unique<nn::LstmCell>(
      config.hidden_dim + config.courier_dim, config.hidden_dim, &rng);
  AddChild("encoder_lstm", encoder_lstm_.get());
  encoder_proj_ = std::make_unique<nn::Linear>(config.hidden_dim,
                                               config.hidden_dim, &rng);
  AddChild("encoder_proj", encoder_proj_.get());
  decoder_ = std::make_unique<core::AttentionRouteDecoder>(
      config.hidden_dim, config.courier_dim, config.lstm_hidden_dim, &rng);
  AddChild("decoder", decoder_.get());
  time_head_ =
      std::make_unique<WideDeepTimeHead>(config.time_head, &rng);
}

Tensor Fdnet::EncodeSample(const synth::Sample& sample) const {
  graph::LevelGraph level = graph::BuildLocationGraph(sample, {});
  Tensor nodes = feature_embed_->EmbedNodes(level);
  Tensor u = global_embed_->Embed(sample);
  Tensor x = ConcatCols(nodes, BroadcastRows(u, level.n));
  // Unidirectional RNN over the (arbitrary) input order — FDNET's
  // sequence-encoder limitation, kept faithfully.
  nn::LstmState state = encoder_lstm_->InitialState();
  std::vector<Tensor> rows;
  rows.reserve(level.n);
  for (int i = 0; i < level.n; ++i) {
    state = encoder_lstm_->Forward(Row(x, i), state);
    rows.push_back(state.h);
  }
  return encoder_proj_->Forward(ConcatRows(rows));
}

void Fdnet::Fit(const synth::Dataset& train, const synth::Dataset& val) {
  auto loss_fn = [this](const synth::Sample& s) {
    Tensor h = EncodeSample(s);
    Tensor u = global_embed_->Embed(s);
    return decoder_->TeacherForcedLoss(h, u, s.route_label);
  };
  TrainRouteLoop(this, loss_fn, train, val, config_);
  time_head_->Fit(train, [this](const synth::Sample& s) {
    return PredictRoute(s);
  });
}

std::vector<int> Fdnet::PredictRoute(const synth::Sample& sample) const {
  Tensor h = EncodeSample(sample);
  Tensor u = global_embed_->Embed(sample);
  return decoder_->DecodeGreedy(h, u);
}

core::RtpPrediction Fdnet::Predict(const synth::Sample& sample) const {
  core::RtpPrediction pred;
  pred.location_route = PredictRoute(sample);
  pred.location_times_min =
      time_head_->PredictTimes(sample, pred.location_route);
  return pred;
}

}  // namespace m2g::baselines
