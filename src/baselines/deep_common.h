#ifndef M2G_BASELINES_DEEP_COMMON_H_
#define M2G_BASELINES_DEEP_COMMON_H_

#include <functional>

#include "baselines/time_mlp.h"
#include "core/config.h"
#include "nn/module.h"

namespace m2g::baselines {

/// Hyper-parameters shared by the deep route-only baselines (DeepRoute,
/// FDNET, Graph2Route). Sized to match the M2G4RTP defaults so the
/// comparison isolates architecture, not capacity.
struct DeepBaselineConfig {
  int hidden_dim = 48;
  int lstm_hidden_dim = 48;
  int courier_dim = 24;
  int num_layers = 2;
  int num_heads = 4;
  int epochs = 8;
  float learning_rate = 2e-3f;
  int batch_size = 8;
  float grad_clip_norm = 5.0f;
  int early_stop_patience = 3;
  int max_samples_per_epoch = 0;
  uint64_t seed = 7;
  PluggedTimeMlp::Config time_head;

  /// Projection to the core ModelConfig consumed by the reused embedding
  /// layers.
  core::ModelConfig ToModelConfig() const;
};

/// Generic per-sample training loop with gradient accumulation, clipping
/// and best-on-validation parameter snapshotting. `loss_fn` rebuilds the
/// scalar loss for one sample (define-by-run).
void TrainRouteLoop(
    nn::Module* module,
    const std::function<Tensor(const synth::Sample&)>& loss_fn,
    const synth::Dataset& train, const synth::Dataset& val,
    const DeepBaselineConfig& config);

}  // namespace m2g::baselines

#endif  // M2G_BASELINES_DEEP_COMMON_H_
