#include "baselines/graph2route.h"

#include <cmath>

#include "common/string_util.h"
#include "graph/features.h"
#include "nn/init.h"

namespace m2g::baselines {

Matrix NormalizedAdjacency(const std::vector<bool>& adjacency, int n) {
  Matrix a(n, n);
  std::vector<float> degree(n, 0.0f);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (adjacency[i * n + j]) {
        a.At(i, j) = 1.0f;
        degree[i] += 1.0f;
      }
    }
  }
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (a.At(i, j) != 0.0f) {
        a.At(i, j) /= std::sqrt(degree[i] * degree[j]);
      }
    }
  }
  return a;
}

Graph2Route::Graph2Route(const DeepBaselineConfig& config)
    : config_(config) {
  core::ModelConfig mc = config.ToModelConfig();
  Rng rng(config.seed);
  feature_embed_ = std::make_unique<core::LevelFeatureEmbed>(
      mc, graph::kLocationContinuousDim, &rng);
  AddChild("feature_embed", feature_embed_.get());
  global_embed_ = std::make_unique<core::GlobalFeatureEmbed>(mc, &rng);
  AddChild("global_embed", global_embed_.get());
  input_proj_ = std::make_unique<nn::Linear>(
      config.hidden_dim + config.courier_dim, config.hidden_dim, &rng);
  AddChild("input_proj", input_proj_.get());
  const int d = config.hidden_dim;
  for (int l = 0; l < config.num_layers; ++l) {
    gcn_weights_.push_back(AddParameter(StrFormat("gcn%d_w", l),
                                        nn::XavierUniform(d, d, &rng)));
    gcn_self_weights_.push_back(AddParameter(
        StrFormat("gcn%d_w_self", l), nn::XavierUniform(d, d, &rng)));
    gcn_biases_.push_back(
        AddParameter(StrFormat("gcn%d_b", l), Matrix(1, d)));
  }
  decoder_ = std::make_unique<core::AttentionRouteDecoder>(
      d, config.courier_dim, config.lstm_hidden_dim, &rng);
  AddChild("decoder", decoder_.get());
  time_head_ = std::make_unique<PluggedTimeMlp>(config.time_head);
}

Tensor Graph2Route::EncodeSample(const synth::Sample& sample) const {
  graph::LevelGraph level = graph::BuildLocationGraph(sample, {});
  Tensor nodes = feature_embed_->EmbedNodes(level);
  Tensor u = global_embed_->Embed(sample);
  Tensor h = input_proj_->Forward(
      ConcatCols(nodes, BroadcastRows(u, level.n)));
  Tensor a_norm =
      Tensor::Constant(NormalizedAdjacency(level.adjacency, level.n));
  for (size_t l = 0; l < gcn_weights_.size(); ++l) {
    // GraphSAGE-style propagation H' = ReLU(Â H W + H W_self + b): the
    // separate self transform preserves node identity, which the pointer
    // decoder needs (a plain GCN over-smooths these tiny dense graphs
    // and every node becomes un-pointable).
    Tensor propagated = AddRowBroadcast(
        Add(MatMul(MatMul(a_norm, h), gcn_weights_[l]),
            MatMul(h, gcn_self_weights_[l])),
        gcn_biases_[l]);
    Tensor activated = Relu(propagated);
    h = l == 0 ? activated : Add(h, activated);
  }
  return h;
}

void Graph2Route::Fit(const synth::Dataset& train,
                      const synth::Dataset& val) {
  auto loss_fn = [this](const synth::Sample& s) {
    Tensor h = EncodeSample(s);
    Tensor u = global_embed_->Embed(s);
    return decoder_->TeacherForcedLoss(h, u, s.route_label);
  };
  TrainRouteLoop(this, loss_fn, train, val, config_);
  time_head_->Fit(train, [this](const synth::Sample& s) {
    return PredictRoute(s);
  });
}

std::vector<int> Graph2Route::PredictRoute(
    const synth::Sample& sample) const {
  Tensor h = EncodeSample(sample);
  Tensor u = global_embed_->Embed(sample);
  return decoder_->DecodeGreedy(h, u);
}

core::RtpPrediction Graph2Route::Predict(const synth::Sample& sample) const {
  core::RtpPrediction pred;
  pred.location_route = PredictRoute(sample);
  pred.location_times_min =
      time_head_->PredictTimes(sample, pred.location_route);
  return pred;
}

}  // namespace m2g::baselines
