#ifndef M2G_BASELINES_DEEP_ROUTE_H_
#define M2G_BASELINES_DEEP_ROUTE_H_

#include <memory>
#include <vector>

#include "baselines/deep_common.h"
#include "core/feature_embed.h"
#include "core/model.h"
#include "core/route_decoder.h"

namespace m2g::baselines {

/// DeepRoute (§V-B / [3]): a Transformer-style self-attention encoder over
/// the unvisited locations plus an attention-based pointer decoder. Route
/// only; the paper (and we) bolt a separately-trained PluggedTimeMlp on
/// top for Table IV.
class DeepRoute : public nn::Module {
 public:
  explicit DeepRoute(const DeepBaselineConfig& config);

  void Fit(const synth::Dataset& train, const synth::Dataset& val);

  core::RtpPrediction Predict(const synth::Sample& sample) const;

  std::vector<int> PredictRoute(const synth::Sample& sample) const;

  /// Exposed for the scalability bench (route-only inference).
  Tensor EncodeSample(const synth::Sample& sample) const;

 private:
  struct SelfAttentionLayer {
    Tensor wq, wk, wv;   // per layer, multi-head packed (d, d)
    Tensor wo;           // output projection (d, d)
    Tensor ff1, ff1_b;   // feed-forward (d, 2d)
    Tensor ff2, ff2_b;   // (2d, d)
  };

  Tensor RunLayer(const SelfAttentionLayer& layer, const Tensor& h) const;

  DeepBaselineConfig config_;
  std::unique_ptr<core::LevelFeatureEmbed> feature_embed_;
  std::unique_ptr<core::GlobalFeatureEmbed> global_embed_;
  std::unique_ptr<nn::Linear> input_proj_;
  std::vector<SelfAttentionLayer> layers_;
  std::unique_ptr<core::AttentionRouteDecoder> decoder_;
  std::unique_ptr<PluggedTimeMlp> time_head_;
};

}  // namespace m2g::baselines

#endif  // M2G_BASELINES_DEEP_ROUTE_H_
