#include "baselines/tsp.h"

#include <algorithm>

#include "common/check.h"

namespace m2g::baselines {

double OpenPathMeters(const geo::LatLng& start,
                      const std::vector<geo::LatLng>& points,
                      const std::vector<int>& order) {
  double total = 0;
  geo::LatLng pos = start;
  for (int idx : order) {
    total += geo::ApproxMeters(pos, points[idx]);
    pos = points[idx];
  }
  return total;
}

std::vector<int> SolveOpenTsp(const geo::LatLng& start,
                              const std::vector<geo::LatLng>& points) {
  const int n = static_cast<int>(points.size());
  M2G_CHECK_GT(n, 0);

  // Nearest-neighbour construction.
  std::vector<bool> visited(n, false);
  std::vector<int> order;
  order.reserve(n);
  geo::LatLng pos = start;
  for (int step = 0; step < n; ++step) {
    int best = -1;
    double best_d = 0;
    for (int i = 0; i < n; ++i) {
      if (visited[i]) continue;
      const double d = geo::ApproxMeters(pos, points[i]);
      if (best < 0 || d < best_d) {
        best = i;
        best_d = d;
      }
    }
    visited[best] = true;
    order.push_back(best);
    pos = points[best];
  }

  // 2-opt on the open path: reverse segments while it shortens the path.
  auto dist = [&](int a, int b) {
    return geo::ApproxMeters(points[a], points[b]);
  };
  auto dist_from_start = [&](int a) {
    return geo::ApproxMeters(start, points[a]);
  };
  bool improved = true;
  int guard = 0;
  while (improved && guard++ < 200) {
    improved = false;
    for (int i = 0; i < n - 1; ++i) {
      for (int j = i + 1; j < n; ++j) {
        // Reversing order[i..j]: edges (i-1,i) and (j,j+1) change.
        const double before =
            (i == 0 ? dist_from_start(order[i])
                    : dist(order[i - 1], order[i])) +
            (j == n - 1 ? 0.0 : dist(order[j], order[j + 1]));
        const double after =
            (i == 0 ? dist_from_start(order[j])
                    : dist(order[i - 1], order[j])) +
            (j == n - 1 ? 0.0 : dist(order[i], order[j + 1]));
        if (after + 1e-9 < before) {
          std::reverse(order.begin() + i, order.begin() + j + 1);
          improved = true;
        }
      }
    }
  }
  return order;
}

core::RtpPrediction OrToolsLikePredict(const synth::Sample& sample,
                                       const HeuristicConfig& config) {
  std::vector<geo::LatLng> points;
  points.reserve(sample.locations.size());
  for (const synth::LocationTask& task : sample.locations) {
    points.push_back(task.pos);
  }
  core::RtpPrediction pred;
  pred.location_route = SolveOpenTsp(sample.courier_pos, points);
  pred.location_times_min =
      FixedSpeedTimes(sample, pred.location_route, config);
  return pred;
}

}  // namespace m2g::baselines
