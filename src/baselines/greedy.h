#ifndef M2G_BASELINES_GREEDY_H_
#define M2G_BASELINES_GREEDY_H_

#include "core/model.h"
#include "synth/dataset.h"

namespace m2g::baselines {

/// Shared physical assumptions of the non-learned baselines (§V-B: "we
/// then set a fixed speed for the courier; the time prediction is
/// calculated by dividing the distance between locations by the fixed
/// speed").
struct HeuristicConfig {
  double fixed_speed_mps = 4.0;
  /// Straight-line to street-network detour factor.
  double detour_factor = 1.3;
  /// Minutes spent at each stop (0 reproduces the paper's pure
  /// distance/speed rule; a small constant is strictly better for every
  /// heuristic, so we keep it configurable and default to the pure rule).
  double service_minutes_per_stop = 0.0;
};

/// Time-Greedy: visits locations by ascending remaining time until the
/// deadline; arrival times from the fixed-speed model along that route.
core::RtpPrediction TimeGreedyPredict(const synth::Sample& sample,
                                      const HeuristicConfig& config);

/// Distance-Greedy: repeatedly visits the nearest unvisited location.
core::RtpPrediction DistanceGreedyPredict(const synth::Sample& sample,
                                          const HeuristicConfig& config);

/// Fixed-speed arrival gaps (minutes) along `route`, shared by all
/// heuristic baselines.
std::vector<double> FixedSpeedTimes(const synth::Sample& sample,
                                    const std::vector<int>& route,
                                    const HeuristicConfig& config);

}  // namespace m2g::baselines

#endif  // M2G_BASELINES_GREEDY_H_
