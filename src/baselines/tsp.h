#ifndef M2G_BASELINES_TSP_H_
#define M2G_BASELINES_TSP_H_

#include <vector>

#include "baselines/greedy.h"

namespace m2g::baselines {

/// OR-Tools substitute (§V-B): a shortest-route heuristic. OR-Tools'
/// default routing search at this problem size is path-cheapest-arc
/// construction plus local search; we implement the equivalent
/// nearest-neighbour construction with 2-opt improvement on the open path
/// anchored at the courier's position.
core::RtpPrediction OrToolsLikePredict(const synth::Sample& sample,
                                       const HeuristicConfig& config);

/// Open-path TSP over `points` starting from `start` (the path visits
/// every point once, no return). Exposed for tests/benches.
std::vector<int> SolveOpenTsp(const geo::LatLng& start,
                              const std::vector<geo::LatLng>& points);

/// Total metres of the open path start -> points[order[0]] -> ...
double OpenPathMeters(const geo::LatLng& start,
                      const std::vector<geo::LatLng>& points,
                      const std::vector<int>& order);

}  // namespace m2g::baselines

#endif  // M2G_BASELINES_TSP_H_
