#include "baselines/gbdt/booster.h"

#include <cmath>

#include "common/check.h"

namespace m2g::baselines::gbdt {
namespace {

std::vector<int> SampleRows(int n, float fraction, Rng* rng) {
  if (fraction >= 1.0f) {
    std::vector<int> all(n);
    for (int i = 0; i < n; ++i) all[i] = i;
    return all;
  }
  std::vector<int> rows;
  rows.reserve(static_cast<size_t>(n * fraction) + 1);
  for (int i = 0; i < n; ++i) {
    if (rng->Bernoulli(fraction)) rows.push_back(i);
  }
  if (rows.empty()) rows.push_back(rng->UniformInt(0, n - 1));
  return rows;
}

float Sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace

void GbdtRegressor::Fit(const Matrix& x, const std::vector<float>& y) {
  M2G_CHECK_EQ(static_cast<size_t>(x.rows()), y.size());
  M2G_CHECK_GT(x.rows(), 0);
  trees_.clear();
  double mean = 0;
  for (float v : y) mean += v;
  base_score_ = static_cast<float>(mean / y.size());

  Rng rng(config_.seed);
  std::vector<float> pred(y.size(), base_score_);
  std::vector<float> residual(y.size());
  for (int round = 0; round < config_.num_rounds; ++round) {
    for (size_t i = 0; i < y.size(); ++i) residual[i] = y[i] - pred[i];
    std::vector<int> rows = SampleRows(x.rows(), config_.subsample, &rng);
    RegressionTree tree;
    tree.Fit(x, residual, rows, config_.tree);
    for (int i = 0; i < x.rows(); ++i) {
      pred[i] += config_.learning_rate *
                 tree.Predict(x.data() + static_cast<size_t>(i) * x.cols());
    }
    trees_.push_back(std::move(tree));
  }
}

namespace {

std::vector<double> NormalizedGains(
    const std::vector<RegressionTree>& trees, int num_features) {
  std::vector<double> gains(num_features, 0.0);
  for (const RegressionTree& tree : trees) {
    tree.AccumulateFeatureGains(&gains);
  }
  double total = 0;
  for (double g : gains) total += g;
  if (total > 0) {
    for (double& g : gains) g /= total;
  }
  return gains;
}

}  // namespace

std::vector<double> GbdtRegressor::FeatureImportance(
    int num_features) const {
  return NormalizedGains(trees_, num_features);
}

std::vector<double> GbdtBinaryClassifier::FeatureImportance(
    int num_features) const {
  return NormalizedGains(trees_, num_features);
}

float GbdtRegressor::Predict(const float* features) const {
  float out = base_score_;
  for (const RegressionTree& tree : trees_) {
    out += config_.learning_rate * tree.Predict(features);
  }
  return out;
}

void GbdtBinaryClassifier::Fit(const Matrix& x,
                               const std::vector<float>& y) {
  M2G_CHECK_EQ(static_cast<size_t>(x.rows()), y.size());
  M2G_CHECK_GT(x.rows(), 0);
  trees_.clear();
  double mean = 0;
  for (float v : y) mean += v;
  const double p = std::min(0.99, std::max(0.01, mean / y.size()));
  base_score_ = static_cast<float>(std::log(p / (1.0 - p)));

  Rng rng(config_.seed);
  std::vector<float> margin(y.size(), base_score_);
  std::vector<float> residual(y.size());
  for (int round = 0; round < config_.num_rounds; ++round) {
    // Negative gradient of logistic loss: y - sigmoid(margin).
    for (size_t i = 0; i < y.size(); ++i) {
      residual[i] = y[i] - Sigmoid(margin[i]);
    }
    std::vector<int> rows = SampleRows(x.rows(), config_.subsample, &rng);
    RegressionTree tree;
    tree.Fit(x, residual, rows, config_.tree);
    for (int i = 0; i < x.rows(); ++i) {
      margin[i] +=
          config_.learning_rate *
          tree.Predict(x.data() + static_cast<size_t>(i) * x.cols());
    }
    trees_.push_back(std::move(tree));
  }
}

float GbdtBinaryClassifier::PredictScore(const float* features) const {
  float out = base_score_;
  for (const RegressionTree& tree : trees_) {
    out += config_.learning_rate * tree.Predict(features);
  }
  return out;
}

float GbdtBinaryClassifier::PredictProbability(
    const float* features) const {
  return Sigmoid(PredictScore(features));
}

}  // namespace m2g::baselines::gbdt
