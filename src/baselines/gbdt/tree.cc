#include "baselines/gbdt/tree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace m2g::baselines::gbdt {
namespace {

struct SplitResult {
  bool found = false;
  int feature = -1;
  float threshold = 0;
  double gain = 0;
};

/// Best variance-reduction split over [begin, end) of `rows`.
SplitResult FindBestSplit(const Matrix& x, const std::vector<float>& y,
                          const std::vector<int>& rows, int begin, int end,
                          const TreeConfig& config) {
  const int count = end - begin;
  SplitResult best;
  double total_sum = 0;
  for (int r = begin; r < end; ++r) total_sum += y[rows[r]];

  const int bins = config.num_bins;
  std::vector<double> bin_sum(bins);
  std::vector<int> bin_count(bins);
  for (int f = 0; f < x.cols(); ++f) {
    float lo = std::numeric_limits<float>::infinity();
    float hi = -std::numeric_limits<float>::infinity();
    for (int r = begin; r < end; ++r) {
      const float v = x.At(rows[r], f);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (!(hi > lo)) continue;  // constant feature in this node
    std::fill(bin_sum.begin(), bin_sum.end(), 0.0);
    std::fill(bin_count.begin(), bin_count.end(), 0);
    const float scale = bins / (hi - lo);
    for (int r = begin; r < end; ++r) {
      const float v = x.At(rows[r], f);
      int b = static_cast<int>((v - lo) * scale);
      b = std::clamp(b, 0, bins - 1);
      bin_sum[b] += y[rows[r]];
      bin_count[b] += 1;
    }
    double left_sum = 0;
    int left_count = 0;
    for (int b = 0; b + 1 < bins; ++b) {
      left_sum += bin_sum[b];
      left_count += bin_count[b];
      const int right_count = count - left_count;
      if (left_count < config.min_samples_leaf ||
          right_count < config.min_samples_leaf) {
        continue;
      }
      const double right_sum = total_sum - left_sum;
      // Variance reduction up to constants: sum_L^2/n_L + sum_R^2/n_R.
      const double gain = left_sum * left_sum / left_count +
                          right_sum * right_sum / right_count -
                          total_sum * total_sum / count;
      if (gain > best.gain + config.min_gain) {
        best.found = true;
        best.feature = f;
        best.threshold = lo + (b + 1) / scale;  // right edge of bin b
        best.gain = gain;
      }
    }
  }
  return best;
}

}  // namespace

void RegressionTree::Fit(const Matrix& x, const std::vector<float>& y,
                         const std::vector<int>& rows,
                         const TreeConfig& config) {
  M2G_CHECK(!rows.empty());
  M2G_CHECK_EQ(static_cast<size_t>(x.rows()), y.size());
  nodes_.clear();
  std::vector<int> work = rows;
  Build(x, y, &work, 0, static_cast<int>(work.size()), 0, config);
}

int RegressionTree::Build(const Matrix& x, const std::vector<float>& y,
                          std::vector<int>* rows, int begin, int end,
                          int depth, const TreeConfig& config) {
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  double sum = 0;
  for (int r = begin; r < end; ++r) sum += y[(*rows)[r]];
  nodes_[node_id].value = static_cast<float>(sum / (end - begin));

  if (depth >= config.max_depth ||
      end - begin < 2 * config.min_samples_leaf) {
    return node_id;
  }
  SplitResult split = FindBestSplit(x, y, *rows, begin, end, config);
  if (!split.found) return node_id;

  // Partition rows in place.
  auto mid_it = std::partition(
      rows->begin() + begin, rows->begin() + end, [&](int r) {
        return x.At(r, split.feature) < split.threshold;
      });
  const int mid = static_cast<int>(mid_it - rows->begin());
  if (mid == begin || mid == end) return node_id;  // degenerate split

  nodes_[node_id].leaf = false;
  nodes_[node_id].feature = split.feature;
  nodes_[node_id].threshold = split.threshold;
  nodes_[node_id].gain = split.gain;
  const int left = Build(x, y, rows, begin, mid, depth + 1, config);
  nodes_[node_id].left = left;
  const int right = Build(x, y, rows, mid, end, depth + 1, config);
  nodes_[node_id].right = right;
  return node_id;
}

float RegressionTree::Predict(const float* features) const {
  M2G_CHECK(!nodes_.empty());
  int node = 0;
  while (!nodes_[node].leaf) {
    node = features[nodes_[node].feature] < nodes_[node].threshold
               ? nodes_[node].left
               : nodes_[node].right;
  }
  return nodes_[node].value;
}

void RegressionTree::AccumulateFeatureGains(
    std::vector<double>* gains) const {
  for (const Node& node : nodes_) {
    if (node.leaf) continue;
    M2G_CHECK_LT(static_cast<size_t>(node.feature), gains->size());
    (*gains)[node.feature] += node.gain;
  }
}

int RegressionTree::depth() const {
  // Iterative depth computation over the implicit tree.
  int max_depth = 0;
  std::vector<std::pair<int, int>> stack = {{0, 0}};
  while (!stack.empty()) {
    auto [node, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    if (!nodes_[node].leaf) {
      stack.push_back({nodes_[node].left, d + 1});
      stack.push_back({nodes_[node].right, d + 1});
    }
  }
  return max_depth;
}

}  // namespace m2g::baselines::gbdt
