#ifndef M2G_BASELINES_GBDT_BOOSTER_H_
#define M2G_BASELINES_GBDT_BOOSTER_H_

#include <vector>

#include "baselines/gbdt/tree.h"
#include "common/rng.h"

namespace m2g::baselines::gbdt {

struct BoosterConfig {
  int num_rounds = 60;
  float learning_rate = 0.1f;
  /// Fraction of rows sampled per round (stochastic gradient boosting).
  float subsample = 0.8f;
  TreeConfig tree;
  uint64_t seed = 1234;
};

/// Gradient-boosted regression trees with squared loss — the XGBoost
/// substitute used by OSquare's time head.
class GbdtRegressor {
 public:
  explicit GbdtRegressor(const BoosterConfig& config) : config_(config) {}

  void Fit(const Matrix& x, const std::vector<float>& y);
  float Predict(const float* features) const;
  float Predict(const std::vector<float>& features) const {
    return Predict(features.data());
  }
  int num_trees() const { return static_cast<int>(trees_.size()); }

  /// Gain-based feature importance, normalized to sum to 1 (empty before
  /// Fit). `num_features` must match the training matrix width.
  std::vector<double> FeatureImportance(int num_features) const;

 private:
  BoosterConfig config_;
  float base_score_ = 0;
  std::vector<RegressionTree> trees_;
};

/// Gradient boosting with logistic loss for binary targets in {0,1} —
/// the XGBoost substitute used by OSquare's next-location ranker.
/// PredictScore returns the raw margin (monotone in probability).
class GbdtBinaryClassifier {
 public:
  explicit GbdtBinaryClassifier(const BoosterConfig& config)
      : config_(config) {}

  void Fit(const Matrix& x, const std::vector<float>& y);
  float PredictScore(const float* features) const;
  float PredictProbability(const float* features) const;
  int num_trees() const { return static_cast<int>(trees_.size()); }

  /// Gain-based feature importance, normalized to sum to 1.
  std::vector<double> FeatureImportance(int num_features) const;

 private:
  BoosterConfig config_;
  float base_score_ = 0;
  std::vector<RegressionTree> trees_;
};

}  // namespace m2g::baselines::gbdt

#endif  // M2G_BASELINES_GBDT_BOOSTER_H_
