#ifndef M2G_BASELINES_GBDT_TREE_H_
#define M2G_BASELINES_GBDT_TREE_H_

#include <vector>

#include "tensor/matrix.h"

namespace m2g::baselines::gbdt {

struct TreeConfig {
  int max_depth = 4;
  int min_samples_leaf = 20;
  /// Histogram bins per feature (uniform over the feature's range).
  int num_bins = 32;
  /// Minimum variance-reduction gain to accept a split.
  double min_gain = 1e-7;
};

/// CART-style regression tree fit by histogram-based greedy variance
/// reduction. This is the weak learner inside the gradient booster that
/// substitutes for XGBoost in the OSquare baseline.
class RegressionTree {
 public:
  /// Fits to target `y` restricted to `rows` of the (num_rows x
  /// num_features) design matrix `x`.
  void Fit(const Matrix& x, const std::vector<float>& y,
           const std::vector<int>& rows, const TreeConfig& config);

  /// Prediction for one feature row (pointer to num_features floats).
  float Predict(const float* features) const;

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int depth() const;

  /// Adds each internal node's variance-reduction gain to
  /// gains[node.feature] (XGBoost-style "gain" importance).
  void AccumulateFeatureGains(std::vector<double>* gains) const;

 private:
  struct Node {
    bool leaf = true;
    int feature = -1;
    float threshold = 0;
    float value = 0;
    double gain = 0;  // variance reduction of this split
    int left = -1;
    int right = -1;
  };

  int Build(const Matrix& x, const std::vector<float>& y,
            std::vector<int>* rows, int begin, int end, int depth,
            const TreeConfig& config);

  std::vector<Node> nodes_;
};

}  // namespace m2g::baselines::gbdt

#endif  // M2G_BASELINES_GBDT_TREE_H_
