#include "nn/embedding.h"

#include <algorithm>

#include "nn/init.h"

namespace m2g::nn {

Embedding::Embedding(int vocab_size, int dim, Rng* rng)
    : vocab_size_(vocab_size), dim_(dim) {
  M2G_CHECK_GT(vocab_size, 0);
  M2G_CHECK_GT(dim, 0);
  table_ = AddParameter("table",
                        Matrix::Random(vocab_size, dim, -0.1f, 0.1f, rng));
}

Tensor Embedding::Forward(const std::vector<int>& ids) const {
  std::vector<int> clamped(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    clamped[i] = std::clamp(ids[i], 0, vocab_size_ - 1);
  }
  return GatherRows(table_, clamped);
}

Tensor Embedding::ForwardOne(int id) const {
  return Forward(std::vector<int>{id});
}

}  // namespace m2g::nn
