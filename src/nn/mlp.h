#ifndef M2G_NN_MLP_H_
#define M2G_NN_MLP_H_

#include <memory>
#include <vector>

#include "nn/linear.h"

namespace m2g::nn {

/// Fully connected feed-forward network with ReLU between layers and a
/// linear output layer. `dims` = {in, hidden..., out}.
class Mlp : public Module {
 public:
  Mlp(const std::vector<int>& dims, Rng* rng);

  Tensor Forward(const Tensor& x) const;

  int in_features() const { return layers_.front()->in_features(); }
  int out_features() const { return layers_.back()->out_features(); }

 private:
  std::vector<std::unique_ptr<Linear>> layers_;
};

}  // namespace m2g::nn

#endif  // M2G_NN_MLP_H_
