#include "nn/serialize.h"

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>

#include "common/string_util.h"

namespace m2g::nn {
namespace {

constexpr uint32_t kMagic = 0x4D324757;  // "M2GW"

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool WriteBytes(std::FILE* f, const void* data, size_t n) {
  return std::fwrite(data, 1, n, f) == n;
}

bool ReadBytes(std::FILE* f, void* data, size_t n) {
  return std::fread(data, 1, n, f) == n;
}

}  // namespace

Status SaveModule(const Module& module, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IoError("cannot open for write: " + path);
  auto named = module.NamedParameters();
  uint32_t count = static_cast<uint32_t>(named.size());
  if (!WriteBytes(f.get(), &kMagic, sizeof(kMagic)) ||
      !WriteBytes(f.get(), &count, sizeof(count))) {
    return Status::IoError("short write: " + path);
  }
  for (const auto& [name, p] : named) {
    uint32_t name_len = static_cast<uint32_t>(name.size());
    int32_t rows = p.value().rows();
    int32_t cols = p.value().cols();
    if (!WriteBytes(f.get(), &name_len, sizeof(name_len)) ||
        !WriteBytes(f.get(), name.data(), name.size()) ||
        !WriteBytes(f.get(), &rows, sizeof(rows)) ||
        !WriteBytes(f.get(), &cols, sizeof(cols)) ||
        !WriteBytes(f.get(), p.value().data(),
                    sizeof(float) * static_cast<size_t>(p.value().size()))) {
      return Status::IoError("short write: " + path);
    }
  }
  return Status::Ok();
}

Status LoadModule(Module* module, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IoError("cannot open for read: " + path);
  uint32_t magic = 0, count = 0;
  if (!ReadBytes(f.get(), &magic, sizeof(magic)) || magic != kMagic) {
    return Status::InvalidArgument("not an m2g weights file: " + path);
  }
  if (!ReadBytes(f.get(), &count, sizeof(count))) {
    return Status::IoError("truncated file: " + path);
  }
  std::map<std::string, Matrix> loaded;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t name_len = 0;
    if (!ReadBytes(f.get(), &name_len, sizeof(name_len)) ||
        name_len > 4096) {
      return Status::IoError("corrupt record in: " + path);
    }
    std::string name(name_len, '\0');
    int32_t rows = 0, cols = 0;
    if (!ReadBytes(f.get(), name.data(), name_len) ||
        !ReadBytes(f.get(), &rows, sizeof(rows)) ||
        !ReadBytes(f.get(), &cols, sizeof(cols)) || rows < 0 || cols < 0) {
      return Status::IoError("corrupt record in: " + path);
    }
    Matrix m(rows, cols);
    if (!ReadBytes(f.get(), m.data(),
                   sizeof(float) * static_cast<size_t>(m.size()))) {
      return Status::IoError("truncated tensor data in: " + path);
    }
    loaded.emplace(std::move(name), std::move(m));
  }

  auto named = module->NamedParameters();
  if (named.size() != loaded.size()) {
    return Status::InvalidArgument(StrFormat(
        "parameter count mismatch: module has %zu, file has %zu",
        named.size(), loaded.size()));
  }
  for (auto& [name, p] : named) {
    auto it = loaded.find(name);
    if (it == loaded.end()) {
      return Status::InvalidArgument("missing parameter in file: " + name);
    }
    if (!it->second.SameShape(p.value())) {
      return Status::InvalidArgument(StrFormat(
          "shape mismatch for %s: module (%d,%d), file (%d,%d)",
          name.c_str(), p.value().rows(), p.value().cols(),
          it->second.rows(), it->second.cols()));
    }
    p.node()->value = it->second;
  }
  return Status::Ok();
}

}  // namespace m2g::nn
