#include "nn/linear.h"

#include "nn/init.h"

namespace m2g::nn {

Linear::Linear(int in_features, int out_features, Rng* rng, bool bias)
    : in_features_(in_features), out_features_(out_features) {
  weight_ = AddParameter(
      "weight", KaimingUniform(in_features, out_features, in_features, rng));
  if (bias) {
    bias_ = AddParameter(
        "bias", KaimingUniform(1, out_features, in_features, rng));
  }
}

Tensor Linear::Forward(const Tensor& x) const {
  Tensor y = MatMul(x, weight_);
  if (bias_.defined()) y = AddRowBroadcast(y, bias_);
  return y;
}

}  // namespace m2g::nn
