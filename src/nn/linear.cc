#include "nn/linear.h"

#include "nn/init.h"

namespace m2g::nn {

Linear::Linear(int in_features, int out_features, Rng* rng, bool bias)
    : in_features_(in_features), out_features_(out_features) {
  weight_ = AddParameter(
      "weight", KaimingUniform(in_features, out_features, in_features, rng));
  if (bias) {
    bias_ = AddParameter(
        "bias", KaimingUniform(1, out_features, in_features, rng));
  }
}

Tensor Linear::Forward(const Tensor& x) const {
  return Affine(x, weight_, bias_);
}

Tensor Linear::Forward(const Tensor& x, Activation act) const {
  return Affine(x, weight_, bias_, act);
}

}  // namespace m2g::nn
