#ifndef M2G_NN_MODULE_H_
#define M2G_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace m2g::nn {

/// Base class for trainable components. A module owns named parameter
/// leaves and (non-owning) links to child modules; `NamedParameters`
/// flattens the tree with "/"-joined prefixes, giving stable names for the
/// optimizer and the serializer.
class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All parameters of this module and its children, depth-first.
  std::vector<Tensor> Parameters() const;

  /// Parameters with hierarchical names ("encoder/layer0/W1", ...).
  std::vector<std::pair<std::string, Tensor>> NamedParameters() const;

  /// Total number of scalar parameters.
  int64_t ParameterCount() const;

 protected:
  /// Registers a trainable leaf initialized to `init`.
  Tensor AddParameter(const std::string& name, Matrix init);

  /// Registers a child module. The child must outlive this module
  /// (typically it is a data member).
  void AddChild(const std::string& name, Module* child);

 private:
  std::vector<std::pair<std::string, Tensor>> params_;
  std::vector<std::pair<std::string, Module*>> children_;
};

}  // namespace m2g::nn

#endif  // M2G_NN_MODULE_H_
