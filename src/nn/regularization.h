#ifndef M2G_NN_REGULARIZATION_H_
#define M2G_NN_REGULARIZATION_H_

#include "common/rng.h"
#include "nn/module.h"
#include "tensor/ops.h"

namespace m2g::nn {

/// Inverted dropout. Stateless apart from its RNG: call Apply during
/// training only (inference code simply skips it — standard inverted
/// scaling keeps expectations equal).
class Dropout {
 public:
  Dropout(float rate, uint64_t seed) : rate_(rate), rng_(seed) {
    M2G_CHECK(rate >= 0.0f && rate < 1.0f);
  }

  /// Zeroes each entry with probability `rate` and scales survivors by
  /// 1/(1-rate). Rate 0 returns the input unchanged.
  Tensor Apply(const Tensor& x);

  float rate() const { return rate_; }

 private:
  float rate_;
  Rng rng_;
};

/// Layer normalization over each row (the feature axis), with learnable
/// gain and bias.
class LayerNorm : public Module {
 public:
  LayerNorm(int dim, float eps = 1e-5f);

  Tensor Forward(const Tensor& x) const;

  int dim() const { return dim_; }

 private:
  int dim_;
  float eps_;
  Tensor gain_;  // (1, dim), init 1
  Tensor bias_;  // (1, dim), init 0
};

}  // namespace m2g::nn

#endif  // M2G_NN_REGULARIZATION_H_
