#include "nn/lstm_cell.h"

#include <cmath>

#include "nn/init.h"
#include "tensor/simd.h"

namespace m2g::nn {

LstmCell::LstmCell(int input_size, int hidden_size, Rng* rng)
    : input_size_(input_size), hidden_size_(hidden_size) {
  w_ih_ = AddParameter(
      "w_ih", KaimingUniform(input_size, 4 * hidden_size, hidden_size, rng));
  w_hh_ = AddParameter(
      "w_hh",
      KaimingUniform(hidden_size, 4 * hidden_size, hidden_size, rng));
  Matrix b = KaimingUniform(1, 4 * hidden_size, hidden_size, rng);
  // Forget-gate slice is [hidden, 2*hidden); bias it toward remembering.
  for (int c = hidden_size; c < 2 * hidden_size; ++c) b.At(0, c) += 1.0f;
  bias_ = AddParameter("bias", std::move(b));
}

LstmState LstmCell::Forward(const Tensor& x, const LstmState& state) const {
  M2G_CHECK_EQ(x.cols(), input_size_);
  // Fused gate pre-activation: one node instead of the
  // MatMul/MatMul/Add/AddRowBroadcast chain, bitwise-identical.
  Tensor gates = DualAffine(x, w_ih_, state.h, w_hh_, bias_);
  const int h = hidden_size_;
  Tensor i = Sigmoid(SliceCols(gates, 0, h));
  Tensor f = Sigmoid(SliceCols(gates, h, h));
  Tensor g = Tanh(SliceCols(gates, 2 * h, h));
  Tensor o = Sigmoid(SliceCols(gates, 3 * h, h));
  Tensor c_next = Add(Mul(f, state.c), Mul(i, g));
  Tensor h_next = Mul(o, Tanh(c_next));
  return {h_next, c_next};
}

LstmState LstmCell::InitialState() const {
  return {Tensor::Constant(Matrix(1, hidden_size_)),
          Tensor::Constant(Matrix(1, hidden_size_))};
}

void LstmCell::StepRawBatch(const float* const* x_rows, int batch,
                            const Matrix& h, const Matrix& c, Matrix* h_out,
                            Matrix* c_out) const {
  const int H = hidden_size_;
  const size_t G = static_cast<size_t>(4) * H;
  M2G_CHECK_EQ(h.rows(), batch);
  M2G_CHECK_EQ(h.cols(), H);
  M2G_CHECK(c.SameShape(h));
  M2G_CHECK(h_out->SameShape(h) && c_out->SameShape(c));
  const Matrix& wih = w_ih_.value();
  const Matrix& whh = w_hh_.value();
  const float* bias = bias_.value().data();
  // Gate pre-activation in DualAffineRaw's exact sequence: the x side
  // accumulated into zeroed gates, the h side materialized separately,
  // one elementwise add, then the bias row. Each row is an independent
  // accumulator chain, so batching the hypotheses changes nothing.
  Matrix gates(batch, 4 * H);
  for (int b = 0; b < batch; ++b) {
    AccumulateRowMatMul(x_rows[b], input_size_, wih.data(), 4 * H,
                        gates.data() + b * G);
  }
  Matrix scratch(batch, 4 * H);
  for (int b = 0; b < batch; ++b) {
    AccumulateRowMatMul(h.data() + static_cast<size_t>(b) * H, H,
                        whh.data(), 4 * H, scratch.data() + b * G);
  }
  gates.AddInPlace(scratch);
  // The gate elementwise block (h-side add above plus this bias row) is
  // pure independent-element addition, so it runs through the SIMD tier;
  // the sigmoid/tanh loop below stays scalar — libm is the bitwise
  // reference for the transcendentals and has no vector counterpart
  // with identical rounding.
  for (int b = 0; b < batch; ++b) {
    simd::AddInPlace(gates.data() + b * G, bias, G);
  }
  // c' = sigmoid(f) * c + sigmoid(i) * tanh(g); h' = sigmoid(o) * tanh(c'),
  // the exact per-element expressions of the op chain in Forward().
  for (int b = 0; b < batch; ++b) {
    const float* g = gates.data() + b * G;
    const float* cp = c.data() + static_cast<size_t>(b) * H;
    float* ho = h_out->data() + static_cast<size_t>(b) * H;
    float* co = c_out->data() + static_cast<size_t>(b) * H;
    for (int j = 0; j < H; ++j) {
      const float iv = 1.0f / (1.0f + std::exp(-g[j]));
      const float fv = 1.0f / (1.0f + std::exp(-g[H + j]));
      const float gv = std::tanh(g[2 * H + j]);
      const float ov = 1.0f / (1.0f + std::exp(-g[3 * H + j]));
      const float cn = (fv * cp[j]) + (iv * gv);
      co[j] = cn;
      ho[j] = ov * std::tanh(cn);
    }
  }
}

}  // namespace m2g::nn
