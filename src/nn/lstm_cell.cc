#include "nn/lstm_cell.h"

#include "nn/init.h"

namespace m2g::nn {

LstmCell::LstmCell(int input_size, int hidden_size, Rng* rng)
    : input_size_(input_size), hidden_size_(hidden_size) {
  w_ih_ = AddParameter(
      "w_ih", KaimingUniform(input_size, 4 * hidden_size, hidden_size, rng));
  w_hh_ = AddParameter(
      "w_hh",
      KaimingUniform(hidden_size, 4 * hidden_size, hidden_size, rng));
  Matrix b = KaimingUniform(1, 4 * hidden_size, hidden_size, rng);
  // Forget-gate slice is [hidden, 2*hidden); bias it toward remembering.
  for (int c = hidden_size; c < 2 * hidden_size; ++c) b.At(0, c) += 1.0f;
  bias_ = AddParameter("bias", std::move(b));
}

LstmState LstmCell::Forward(const Tensor& x, const LstmState& state) const {
  M2G_CHECK_EQ(x.cols(), input_size_);
  // Fused gate pre-activation: one node instead of the
  // MatMul/MatMul/Add/AddRowBroadcast chain, bitwise-identical.
  Tensor gates = DualAffine(x, w_ih_, state.h, w_hh_, bias_);
  const int h = hidden_size_;
  Tensor i = Sigmoid(SliceCols(gates, 0, h));
  Tensor f = Sigmoid(SliceCols(gates, h, h));
  Tensor g = Tanh(SliceCols(gates, 2 * h, h));
  Tensor o = Sigmoid(SliceCols(gates, 3 * h, h));
  Tensor c_next = Add(Mul(f, state.c), Mul(i, g));
  Tensor h_next = Mul(o, Tanh(c_next));
  return {h_next, c_next};
}

LstmState LstmCell::InitialState() const {
  return {Tensor::Constant(Matrix(1, hidden_size_)),
          Tensor::Constant(Matrix(1, hidden_size_))};
}

}  // namespace m2g::nn
