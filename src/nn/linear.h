#ifndef M2G_NN_LINEAR_H_
#define M2G_NN_LINEAR_H_

#include "nn/module.h"
#include "tensor/ops.h"

namespace m2g::nn {

/// Affine map y = x W + b with x of shape (n, in), y of shape (n, out).
/// Forward runs through the fused Affine op: one graph node, no
/// transpose copies in the backward.
class Linear : public Module {
 public:
  /// `bias` can be disabled for pure projections (e.g. attention scores).
  Linear(int in_features, int out_features, Rng* rng, bool bias = true);

  Tensor Forward(const Tensor& x) const;
  /// Fused activation variant (y = act(x W + b)) — saves the standalone
  /// activation node; bitwise-identical to applying it separately.
  Tensor Forward(const Tensor& x, Activation act) const;

  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }

 private:
  int in_features_;
  int out_features_;
  Tensor weight_;  // (in, out)
  Tensor bias_;    // (1, out), undefined when bias == false
};

}  // namespace m2g::nn

#endif  // M2G_NN_LINEAR_H_
