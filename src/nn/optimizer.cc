#include "nn/optimizer.h"

#include <cmath>

namespace m2g::nn {

void Optimizer::ZeroGrad() {
  for (const Tensor& p : params_) p.ZeroGrad();
}

float Optimizer::ClipGradNorm(float max_norm) {
  double sq = 0.0;
  for (const Tensor& p : params_) {
    const Matrix& g = p.grad();
    if (!g.SameShape(p.value())) continue;  // never touched
    for (size_t i = 0; i < g.size(); ++i) {
      sq += static_cast<double>(g[i]) * g[i];
    }
  }
  const float norm = static_cast<float>(std::sqrt(sq));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (const Tensor& p : params_) {
      Matrix& g = const_cast<Matrix&>(p.grad());
      if (!g.SameShape(p.value())) continue;
      g.ScaleInPlace(scale);
    }
  }
  return norm;
}

Sgd::Sgd(std::vector<Tensor> params, float lr, float momentum)
    : Optimizer(std::move(params)), momentum_(momentum) {
  lr_ = lr;
  if (momentum_ != 0.0f) {
    velocity_.reserve(params_.size());
    for (const Tensor& p : params_) {
      velocity_.emplace_back(p.value().rows(), p.value().cols());
    }
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    const Tensor& p = params_[i];
    const Matrix& g = p.grad();
    if (!g.SameShape(p.value())) continue;
    Matrix& w = p.node()->value;
    if (momentum_ != 0.0f) {
      Matrix& v = velocity_[i];
      v.ScaleInPlace(momentum_);
      v.AddInPlace(g);
      w.AddScaledInPlace(v, -lr_);
    } else {
      w.AddScaledInPlace(g, -lr_);
    }
  }
}

Adam::Adam(std::vector<Tensor> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  lr_ = lr;
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Tensor& p : params_) {
    m_.emplace_back(p.value().rows(), p.value().cols());
    v_.emplace_back(p.value().rows(), p.value().cols());
  }
}

void Adam::Step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    const Tensor& p = params_[i];
    const Matrix& g = p.grad();
    if (!g.SameShape(p.value())) continue;
    Matrix& w = p.node()->value;
    Matrix& m = m_[i];
    Matrix& v = v_[i];
    for (size_t j = 0; j < w.size(); ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g[j] * g[j];
      const float m_hat = m[j] / bc1;
      const float v_hat = v[j] / bc2;
      // Decoupled weight decay (AdamW): applied directly to the weight,
      // not through the adaptive moments.
      w[j] -= lr_ * (m_hat / (std::sqrt(v_hat) + eps_) +
                     weight_decay_ * w[j]);
    }
  }
}

}  // namespace m2g::nn
