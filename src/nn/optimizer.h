#ifndef M2G_NN_OPTIMIZER_H_
#define M2G_NN_OPTIMIZER_H_

#include <vector>

#include "tensor/tensor.h"

namespace m2g::nn {

/// Optimizer interface over a fixed parameter list. Gradients accumulate
/// in the parameter leaves across Backward() calls (mini-batch via
/// accumulation); Step() consumes and ZeroGrad() clears them.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  virtual void Step() = 0;

  void ZeroGrad();

  /// Scales gradients so that their global L2 norm is at most `max_norm`.
  /// Returns the pre-clip norm.
  float ClipGradNorm(float max_norm);

  void set_learning_rate(float lr) { lr_ = lr; }
  float learning_rate() const { return lr_; }

 protected:
  std::vector<Tensor> params_;
  float lr_ = 1e-3f;
};

/// Plain SGD, optionally with momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, float lr, float momentum = 0.0f);
  void Step() override;

 private:
  float momentum_;
  std::vector<Matrix> velocity_;
};

/// Adam (Kingma & Ba) with bias correction; `weight_decay > 0` gives
/// decoupled AdamW regularization.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);
  void Step() override;

 private:
  float beta1_, beta2_, eps_, weight_decay_;
  int64_t t_ = 0;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

}  // namespace m2g::nn

#endif  // M2G_NN_OPTIMIZER_H_
