#ifndef M2G_NN_LSTM_CELL_H_
#define M2G_NN_LSTM_CELL_H_

#include <utility>

#include "nn/module.h"
#include "tensor/ops.h"

namespace m2g::nn {

/// Hidden/cell state pair of an LSTM step.
struct LstmState {
  Tensor h;  // (1, hidden)
  Tensor c;  // (1, hidden)
};

/// Standard LSTM cell:
///   [i f g o] = x W_ih + h W_hh + b
///   c' = sigmoid(f) * c + sigmoid(i) * tanh(g)
///   h' = sigmoid(o) * tanh(c')
/// Forget-gate bias is initialized to +1 (the usual trick for gradient flow
/// on short sequences).
class LstmCell : public Module {
 public:
  LstmCell(int input_size, int hidden_size, Rng* rng);

  /// One step. `x` is (1, input). Returns the next state.
  LstmState Forward(const Tensor& x, const LstmState& state) const;

  /// All-zeros initial state (constant, no grad).
  LstmState InitialState() const;

  /// Decode fast path: advances `batch` independent states in one fused
  /// gate computation, no autograd. `x_rows[b]` points at row b's input
  /// (`input_size` floats — typically rows of a cached node matrix, so
  /// steps copy nothing); `h`/`c` are (batch, hidden) with row b holding
  /// state b; outputs must be distinct (batch, hidden) matrices. Row b
  /// equals Forward() on that row alone, bit for bit: the gate kernel is
  /// DualAffineRaw's exact sequence (row-independent) and the elementwise
  /// update matches the Sigmoid/Tanh/Mul/Add op chain term for term.
  void StepRawBatch(const float* const* x_rows, int batch, const Matrix& h,
                    const Matrix& c, Matrix* h_out, Matrix* c_out) const;

  int input_size() const { return input_size_; }
  int hidden_size() const { return hidden_size_; }

 private:
  int input_size_;
  int hidden_size_;
  Tensor w_ih_;  // (input, 4*hidden)
  Tensor w_hh_;  // (hidden, 4*hidden)
  Tensor bias_;  // (1, 4*hidden)
};

}  // namespace m2g::nn

#endif  // M2G_NN_LSTM_CELL_H_
