#include "nn/module.h"

namespace m2g::nn {

std::vector<Tensor> Module::Parameters() const {
  std::vector<Tensor> out;
  for (const auto& [name, p] : NamedParameters()) {
    (void)name;
    out.push_back(p);
  }
  return out;
}

std::vector<std::pair<std::string, Tensor>> Module::NamedParameters() const {
  std::vector<std::pair<std::string, Tensor>> out;
  for (const auto& [name, p] : params_) out.emplace_back(name, p);
  for (const auto& [name, child] : children_) {
    for (const auto& [cname, p] : child->NamedParameters()) {
      out.emplace_back(name + "/" + cname, p);
    }
  }
  return out;
}

int64_t Module::ParameterCount() const {
  int64_t total = 0;
  for (const auto& [name, p] : NamedParameters()) {
    (void)name;
    total += p.value().size();
  }
  return total;
}

Tensor Module::AddParameter(const std::string& name, Matrix init) {
  Tensor t = Tensor::Parameter(std::move(init));
  params_.emplace_back(name, t);
  return t;
}

void Module::AddChild(const std::string& name, Module* child) {
  children_.emplace_back(name, child);
}

}  // namespace m2g::nn
