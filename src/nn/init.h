#ifndef M2G_NN_INIT_H_
#define M2G_NN_INIT_H_

#include "common/rng.h"
#include "tensor/matrix.h"

namespace m2g::nn {

/// Xavier/Glorot uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
Matrix XavierUniform(int rows, int cols, Rng* rng);

/// Uniform in [-1/sqrt(fan_in), 1/sqrt(fan_in)] — PyTorch's default for
/// Linear/LSTM weights.
Matrix KaimingUniform(int rows, int cols, int fan_in, Rng* rng);

}  // namespace m2g::nn

#endif  // M2G_NN_INIT_H_
