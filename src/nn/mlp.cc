#include "nn/mlp.h"

#include "common/string_util.h"

namespace m2g::nn {

Mlp::Mlp(const std::vector<int>& dims, Rng* rng) {
  M2G_CHECK_GE(dims.size(), 2u);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(
        std::make_unique<Linear>(dims[i], dims[i + 1], rng));
    AddChild(StrFormat("layer%zu", i), layers_.back().get());
  }
}

Tensor Mlp::Forward(const Tensor& x) const {
  Tensor h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    // Hidden layers fuse the ReLU into the affine node.
    h = layers_[i]->Forward(h, i + 1 < layers_.size() ? Activation::kRelu
                                                      : Activation::kNone);
  }
  return h;
}

}  // namespace m2g::nn
