#ifndef M2G_NN_SERIALIZE_H_
#define M2G_NN_SERIALIZE_H_

#include <string>

#include "common/status.h"
#include "nn/module.h"

namespace m2g::nn {

/// Writes every named parameter of `module` to `path` in a simple binary
/// format (magic + per-tensor name/shape/data records).
Status SaveModule(const Module& module, const std::string& path);

/// Loads parameters into `module` by name. Every parameter in the module
/// must be present in the file with a matching shape; extra records in the
/// file are an error too, so a round-trip is exact.
Status LoadModule(Module* module, const std::string& path);

}  // namespace m2g::nn

#endif  // M2G_NN_SERIALIZE_H_
