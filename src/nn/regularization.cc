#include "nn/regularization.h"

namespace m2g::nn {

Tensor Dropout::Apply(const Tensor& x) {
  if (rate_ == 0.0f) return x;
  Matrix mask(x.rows(), x.cols());
  const float keep_scale = 1.0f / (1.0f - rate_);
  for (size_t i = 0; i < mask.size(); ++i) {
    mask[i] = rng_.Bernoulli(rate_) ? 0.0f : keep_scale;
  }
  return Mul(x, Tensor::Constant(std::move(mask)));
}

LayerNorm::LayerNorm(int dim, float eps) : dim_(dim), eps_(eps) {
  M2G_CHECK_GT(dim, 0);
  gain_ = AddParameter("gain", Matrix::Ones(1, dim));
  bias_ = AddParameter("bias", Matrix(1, dim));
}

Tensor LayerNorm::Forward(const Tensor& x) const {
  M2G_CHECK_EQ(x.cols(), dim_);
  return LayerNormRows(x, gain_, bias_, eps_);
}

}  // namespace m2g::nn
