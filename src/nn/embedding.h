#ifndef M2G_NN_EMBEDDING_H_
#define M2G_NN_EMBEDDING_H_

#include <vector>

#include "nn/module.h"
#include "tensor/ops.h"

namespace m2g::nn {

/// Lookup table mapping integer ids in [0, vocab) to d-dimensional rows.
/// Out-of-range ids are clamped into range (ids beyond the training vocab
/// map to the last bucket — the "unknown" row).
class Embedding : public Module {
 public:
  Embedding(int vocab_size, int dim, Rng* rng);

  /// (ids.size(), dim) stack of embedding rows.
  Tensor Forward(const std::vector<int>& ids) const;

  /// Single id -> (1, dim).
  Tensor ForwardOne(int id) const;

  int vocab_size() const { return vocab_size_; }
  int dim() const { return dim_; }

 private:
  int vocab_size_;
  int dim_;
  Tensor table_;  // (vocab, dim)
};

}  // namespace m2g::nn

#endif  // M2G_NN_EMBEDDING_H_
