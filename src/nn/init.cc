#include "nn/init.h"

#include <cmath>

namespace m2g::nn {

Matrix XavierUniform(int rows, int cols, Rng* rng) {
  const float a = std::sqrt(6.0f / static_cast<float>(rows + cols));
  return Matrix::Random(rows, cols, -a, a, rng);
}

Matrix KaimingUniform(int rows, int cols, int fan_in, Rng* rng) {
  const float a = 1.0f / std::sqrt(static_cast<float>(fan_in));
  return Matrix::Random(rows, cols, -a, a, rng);
}

}  // namespace m2g::nn
