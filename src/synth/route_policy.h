#ifndef M2G_SYNTH_ROUTE_POLICY_H_
#define M2G_SYNTH_ROUTE_POLICY_H_

#include <vector>

#include "synth/order.h"
#include "synth/time_model.h"

namespace m2g::synth {

/// Behavioural model of how a real courier picks the next order. It plants
/// the three signals the paper's evaluation depends on:
///   1. AOI clustering — with probability `stay_in_aoi_prob` the courier
///      finishes the current AOI before leaving it (high-level transfer
///      mode, §I limitation 1 and the Figure 4 transfer-count analysis);
///   2. habitual AOI orderings — the next AOI is chosen by a mix of the
///      courier's personal preference score, proximity and deadline
///      pressure;
///   3. spatial-temporal trade-offs inside an AOI — nearest-first with
///      deadline override, plus decision noise.
class RoutePolicy {
 public:
  struct Params {
    double stay_in_aoi_prob = 0.98;
    /// Next-AOI score = pref_w * habit + dist_w * km + slack_w * urgency.
    double pref_weight = 4.5;
    double dist_weight = 0.35;   // per km
    double slack_weight = 0.5;   // urgency = max(0, 1 - slack/120min)
    /// Softmax temperature of the next-AOI choice (0 => argmin).
    double aoi_choice_temp = 0.05;
    /// Within an AOI: score = dist_km + intra_slack_weight * urgency.
    double intra_slack_weight = 0.8;
    double intra_choice_temp = 0.08;
    /// If an order anywhere is overdue-critical (slack below this), the
    /// courier breaks habit and rushes to its AOI.
    double critical_slack_min = 5.0;
  };

  RoutePolicy(const TimeModel* time_model, const Params& params)
      : time_model_(time_model), params_(params) {}
  explicit RoutePolicy(const TimeModel* time_model)
      : RoutePolicy(time_model, Params{}) {}

  /// Picks the index (into `pending`) of the next order to serve.
  /// `current_aoi` is the AOI of the last served order, -1 at trip start.
  int PickNext(const CourierProfile& courier, const geo::LatLng& courier_pos,
               double now_min, int current_aoi,
               const std::vector<Order>& pending, int weather, int weekday,
               Rng* rng) const;

  const Params& params() const { return params_; }

 private:
  const TimeModel* time_model_;
  Params params_;
};

}  // namespace m2g::synth

#endif  // M2G_SYNTH_ROUTE_POLICY_H_
