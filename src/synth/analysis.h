#ifndef M2G_SYNTH_ANALYSIS_H_
#define M2G_SYNTH_ANALYSIS_H_

#include <cstdint>
#include <vector>

#include "synth/order.h"

namespace m2g::synth {

/// Dataset analyses that verify the behavioural signals the paper's
/// model depends on actually exist in the (synthetic) data. Printed by
/// bench_fig4_data next to the §V-A transfer statistics.

/// How habitual couriers' AOI orderings are: for every courier and every
/// AOI pair (a, b) they visited together in at least two trips, the
/// fraction of trips agreeing with that courier's majority direction.
/// 1.0 = the courier always visits the pair in the same order; 0.5 =
/// coin-flip (no habit).
struct HabitConsistency {
  double mean_pair_consistency = 0;
  int couriers_measured = 0;
  int64_t pairs_measured = 0;
};
HabitConsistency ComputeHabitConsistency(
    const std::vector<TripRecord>& trips);

/// Deadline compliance of the realized service (how often couriers
/// arrive before the promised deadline) plus slack statistics.
struct DeadlineStats {
  int64_t orders = 0;
  double on_time_fraction = 0;
  double mean_slack_min = 0;  // deadline - arrival (can be negative)
};
DeadlineStats ComputeDeadlineStats(const std::vector<TripRecord>& trips);

/// Distribution of AOI "sweep completeness": for each AOI visit block,
/// the fraction of that AOI's pending orders served before leaving it.
/// 1.0 everywhere = perfect high-level transfer mode.
struct SweepStats {
  int64_t blocks = 0;
  double mean_block_completeness = 0;
  double complete_block_fraction = 0;  // blocks finishing their AOI
};
SweepStats ComputeSweepStats(const std::vector<TripRecord>& trips);

}  // namespace m2g::synth

#endif  // M2G_SYNTH_ANALYSIS_H_
