#ifndef M2G_SYNTH_WORLD_H_
#define M2G_SYNTH_WORLD_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "geo/latlng.h"

namespace m2g::synth {

/// AOI categories (Definition 2: community, office building, hospital, ...).
enum class AoiType {
  kResidential = 0,
  kOffice = 1,
  kMall = 2,
  kSchool = 3,
  kHospital = 4,
  kIndustrial = 5,
};
inline constexpr int kNumAoiTypes = 6;

const char* AoiTypeName(AoiType type);

/// Area Of Interest (Definition 2): a typed regional entity abstracted to
/// its central coordinate plus a radius within which its locations scatter.
struct Aoi {
  int id = 0;
  AoiType type = AoiType::kResidential;
  geo::LatLng center;
  double radius_m = 150.0;
  int district = 0;  // which city district the AOI belongs to
  /// Latent access overhead (gates, parking, lobbies) added to every
  /// service at this AOI, in minutes. Stable across days, *not* exposed
  /// as a raw feature anywhere: models can only capture it through the
  /// AOI-identity embedding — the location-specific time pattern the
  /// paper's representation-sharing argument rests on.
  double access_overhead_min = 0.0;
};

struct WorldConfig {
  /// City anchor; defaults to Hangzhou like the paper's dataset.
  geo::LatLng city_center{30.25, 120.17};
  int num_districts = 8;
  double district_spread_m = 6000.0;  // districts scatter around the center
  double aoi_spread_m = 1200.0;       // AOIs scatter around their district
  int num_aois = 300;
  double min_aoi_radius_m = 60.0;
  double max_aoi_radius_m = 260.0;
};

/// The static map: districts of AOIs around a city center.
class World {
 public:
  World(WorldConfig config, std::vector<Aoi> aois)
      : config_(config), aois_(std::move(aois)) {}

  const WorldConfig& config() const { return config_; }
  const std::vector<Aoi>& aois() const { return aois_; }
  const Aoi& aoi(int id) const;
  int num_aois() const { return static_cast<int>(aois_.size()); }

  /// AOI ids belonging to the given district.
  std::vector<int> AoisInDistrict(int district) const;

  /// Uniform random point inside the AOI's disc.
  geo::LatLng SamplePointInAoi(int aoi_id, Rng* rng) const;

 private:
  WorldConfig config_;
  std::vector<Aoi> aois_;
};

/// Lays out districts and AOIs deterministically from `rng`.
World GenerateWorld(const WorldConfig& config, Rng* rng);

}  // namespace m2g::synth

#endif  // M2G_SYNTH_WORLD_H_
