#include "synth/dataset.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/check.h"

namespace m2g::synth {

bool SnapshotFromTrip(const TripRecord& trip, const CourierProfile& courier,
                      int served_prefix, const DataConfig& config,
                      Sample* out) {
  const int total = static_cast<int>(trip.served.size());
  M2G_CHECK(served_prefix >= 0 && served_prefix < total);
  const int n = total - served_prefix;
  if (n < config.min_locations || n > config.max_locations) return false;

  Sample s;
  s.courier_id = trip.courier_id;
  s.day = trip.day;
  s.weekday = trip.weekday;
  s.weather = trip.weather;
  s.courier = courier;
  if (served_prefix == 0) {
    s.query_time_min = trip.start_time_min;
    s.courier_pos = trip.start_pos;
  } else {
    s.query_time_min = trip.served[served_prefix - 1].departure_time_min;
    s.courier_pos = trip.served[served_prefix - 1].order.pos;
  }

  // Unvisited locations, indexed by order id for a model-agnostic node
  // ordering (so no model can cheat by reading the label order off the
  // input ordering).
  std::vector<const ServedOrder*> future;
  for (int j = served_prefix; j < total; ++j) {
    future.push_back(&trip.served[j]);
  }
  std::vector<const ServedOrder*> by_id = future;
  std::sort(by_id.begin(), by_id.end(),
            [](const ServedOrder* a, const ServedOrder* b) {
              return a->order.id < b->order.id;
            });

  std::map<int, int> order_to_node;
  std::set<int> distinct_aois;
  for (const ServedOrder* so : by_id) {
    distinct_aois.insert(so->order.aoi_id);
  }
  if (static_cast<int>(distinct_aois.size()) > config.max_aois) {
    return false;
  }
  s.aoi_node_ids.assign(distinct_aois.begin(), distinct_aois.end());
  std::map<int, int> aoi_to_node;
  for (size_t k = 0; k < s.aoi_node_ids.size(); ++k) {
    aoi_to_node[s.aoi_node_ids[k]] = static_cast<int>(k);
  }

  for (const ServedOrder* so : by_id) {
    LocationTask task;
    task.order_id = so->order.id;
    task.pos = so->order.pos;
    task.aoi_id = so->order.aoi_id;
    task.aoi_type = 0;  // filled by caller if a world is available
    task.accept_time_min = so->order.accept_time_min;
    task.deadline_min = so->order.deadline_min;
    task.dist_from_courier_m = geo::ApproxMeters(s.courier_pos, so->order.pos);
    order_to_node[so->order.id] = static_cast<int>(s.locations.size());
    s.locations.push_back(task);
    s.loc_to_aoi.push_back(aoi_to_node[so->order.aoi_id]);
  }

  // Route and time labels from the realized service order.
  s.time_label_min.assign(s.locations.size(), 0.0);
  s.aoi_time_label_min.assign(s.aoi_node_ids.size(), 0.0);
  std::vector<bool> aoi_seen(s.aoi_node_ids.size(), false);
  for (const ServedOrder* so : future) {
    const int node = order_to_node[so->order.id];
    s.route_label.push_back(node);
    s.time_label_min[node] = so->arrival_time_min - s.query_time_min;
    const int aoi_node = aoi_to_node[so->order.aoi_id];
    if (!aoi_seen[aoi_node]) {
      aoi_seen[aoi_node] = true;
      s.aoi_route_label.push_back(aoi_node);
      // Paper: AOI arrival time = arrival at the first location in it.
      s.aoi_time_label_min[aoi_node] =
          so->arrival_time_min - s.query_time_min;
    }
  }
  *out = std::move(s);
  return true;
}

std::vector<TripRecord> SimulateAllTrips(
    const DataConfig& config, World* world_out,
    std::vector<CourierProfile>* couriers_out) {
  Rng rng(config.seed);
  Rng world_rng = rng.Fork();
  Rng courier_rng = rng.Fork();
  Rng sim_rng = rng.Fork();

  World world = GenerateWorld(config.world, &world_rng);
  std::vector<CourierProfile> couriers =
      GenerateCouriers(world, config.couriers, &courier_rng);

  TimeModel time_model(config.time_params);
  RoutePolicy policy(&time_model, config.policy_params);
  DaySimulator simulator(&world, &time_model, &policy, config.trips);

  std::vector<TripRecord> trips;
  int next_order_id = 0;
  for (int day = 0; day < config.num_days; ++day) {
    // One weather draw per day, shared by all couriers (it is a city).
    const std::vector<double> weather_weights = {0.55, 0.25, 0.15, 0.05};
    Rng day_rng = sim_rng.Fork();
    const int weather = day_rng.SampleIndex(weather_weights);
    for (const CourierProfile& courier : couriers) {
      Rng courier_day_rng = day_rng.Fork();
      auto day_trips = simulator.SimulateDay(courier, day, weather,
                                             &courier_day_rng,
                                             &next_order_id);
      for (auto& t : day_trips) trips.push_back(std::move(t));
    }
  }
  if (world_out != nullptr) *world_out = world;
  if (couriers_out != nullptr) *couriers_out = couriers;
  return trips;
}

namespace {

DatasetSplits SplitAndSnapshot(const DataConfig& config,
                               const std::vector<TripRecord>& trips,
                               const World& world,
                               const std::vector<CourierProfile>& couriers) {
  // Day-based split with the paper's 65:17:10 proportions.
  const int total_days = config.num_days;
  int train_days = std::max(1, static_cast<int>(total_days * 65.0 / 92.0));
  int val_days = std::max(1, static_cast<int>(total_days * 17.0 / 92.0));
  if (train_days + val_days >= total_days) {
    train_days = std::max(1, total_days - 2);
    val_days = 1;
  }

  Rng snap_rng(config.seed ^ 0x5a5a5a5a5a5a5a5aULL);
  DatasetSplits splits;
  for (const TripRecord& trip : trips) {
    Dataset* target = &splits.train;
    if (trip.day >= train_days + val_days) {
      target = &splits.test;
    } else if (trip.day >= train_days) {
      target = &splits.val;
    }
    const CourierProfile& courier = couriers[trip.courier_id];

    auto add_snapshot = [&](int prefix) {
      Sample s;
      if (SnapshotFromTrip(trip, courier, prefix, config, &s)) {
        for (LocationTask& task : s.locations) {
          task.aoi_type = static_cast<int>(world.aoi(task.aoi_id).type);
        }
        target->samples.push_back(std::move(s));
      }
    };
    add_snapshot(0);
    const int total = static_cast<int>(trip.served.size());
    if (total >= config.min_locations + 2 &&
        snap_rng.Bernoulli(config.mid_trip_snapshot_prob)) {
      const int prefix =
          snap_rng.UniformInt(1, total - config.min_locations);
      add_snapshot(prefix);
    }
  }
  return splits;
}

}  // namespace

DatasetSplits BuildDataset(const DataConfig& config) {
  return BuildWorldAndDataset(config).splits;
}

BuiltWorld BuildWorldAndDataset(const DataConfig& config) {
  World world(config.world, {});
  std::vector<CourierProfile> couriers;
  std::vector<TripRecord> trips =
      SimulateAllTrips(config, &world, &couriers);
  DatasetSplits splits = SplitAndSnapshot(config, trips, world, couriers);
  return BuiltWorld{std::move(world), std::move(couriers),
                    std::move(splits)};
}

DataStats ComputeDataStats(const Dataset& dataset) {
  DataStats stats;
  stats.num_samples = dataset.size();
  constexpr int kBucketMin = 10;
  constexpr int kMaxGapMin = 180;
  stats.location_gap_hist.assign(kMaxGapMin / kBucketMin + 1, 0);
  stats.aoi_gap_hist.assign(kMaxGapMin / kBucketMin + 1, 0);
  stats.locations_per_sample_hist.assign(21, 0);
  stats.aois_per_sample_hist.assign(11, 0);

  double loc_gap_sum = 0, aoi_gap_sum = 0;
  int64_t loc_count = 0, aoi_count = 0;
  for (const Sample& s : dataset.samples) {
    stats.locations_per_sample_hist[std::min(
        s.num_locations(), 20)]++;
    stats.aois_per_sample_hist[std::min(s.num_aois(), 10)]++;
    for (double gap : s.time_label_min) {
      loc_gap_sum += gap;
      ++loc_count;
      const int b = std::min<int>(static_cast<int>(gap / kBucketMin),
                                  kMaxGapMin / kBucketMin);
      stats.location_gap_hist[std::max(0, b)]++;
    }
    for (double gap : s.aoi_time_label_min) {
      aoi_gap_sum += gap;
      ++aoi_count;
      const int b = std::min<int>(static_cast<int>(gap / kBucketMin),
                                  kMaxGapMin / kBucketMin);
      stats.aoi_gap_hist[std::max(0, b)]++;
    }
  }
  if (loc_count > 0) {
    stats.mean_location_arrival_gap_min = loc_gap_sum / loc_count;
    stats.mean_locations_per_sample =
        static_cast<double>(loc_count) / stats.num_samples;
  }
  if (aoi_count > 0) {
    stats.mean_aoi_arrival_gap_min = aoi_gap_sum / aoi_count;
    stats.mean_aois_per_sample =
        static_cast<double>(aoi_count) / stats.num_samples;
  }
  return stats;
}

TransferStats ComputeTransferStats(const std::vector<TripRecord>& trips) {
  // Group by (courier, day) and count consecutive-pair transfers.
  std::map<std::pair<int, int>, std::pair<int64_t, int64_t>> per_day;
  for (const TripRecord& trip : trips) {
    auto& [loc_transfers, aoi_transfers] =
        per_day[{trip.courier_id, trip.day}];
    for (size_t j = 1; j < trip.served.size(); ++j) {
      ++loc_transfers;
      if (trip.served[j].order.aoi_id != trip.served[j - 1].order.aoi_id) {
        ++aoi_transfers;
      }
    }
  }
  TransferStats stats;
  if (per_day.empty()) return stats;
  for (const auto& [key, counts] : per_day) {
    (void)key;
    stats.avg_location_transfers_per_day += counts.first;
    stats.avg_aoi_transfers_per_day += counts.second;
  }
  stats.avg_location_transfers_per_day /= per_day.size();
  stats.avg_aoi_transfers_per_day /= per_day.size();
  return stats;
}

}  // namespace m2g::synth
