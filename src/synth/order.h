#ifndef M2G_SYNTH_ORDER_H_
#define M2G_SYNTH_ORDER_H_

#include <vector>

#include "geo/latlng.h"

namespace m2g::synth {

/// One pick-up order = one location to visit (Definition 1). Times are in
/// minutes since the start of the working day.
struct Order {
  int id = 0;
  geo::LatLng pos;
  int aoi_id = 0;
  double accept_time_min = 0.0;  // when the platform dispatched it
  double deadline_min = 0.0;     // promised arrival deadline
};

/// An order together with its simulated ground-truth service record.
struct ServedOrder {
  Order order;
  double arrival_time_min = 0.0;    // courier arrives at the location
  double departure_time_min = 0.0;  // arrival + service time
};

/// The ground truth of one courier trip: orders in actual service sequence.
struct TripRecord {
  int courier_id = 0;
  int day = 0;
  int weekday = 0;  // 0..6
  int weather = 0;  // 0..3 (clear, cloudy, rain, storm)
  double start_time_min = 0.0;
  geo::LatLng start_pos;
  std::vector<ServedOrder> served;  // in visit order
};

}  // namespace m2g::synth

#endif  // M2G_SYNTH_ORDER_H_
