#ifndef M2G_SYNTH_TIME_MODEL_H_
#define M2G_SYNTH_TIME_MODEL_H_

#include "common/rng.h"
#include "geo/latlng.h"
#include "synth/courier.h"

namespace m2g::synth {

/// Weather codes used by the simulator and as a global model feature.
inline constexpr int kNumWeatherCodes = 4;  // clear, cloudy, rain, storm

/// Physical time model: how long travelling and serving actually take.
/// This is what plants the route-time correlation the paper exploits —
/// arrival times are a deterministic-plus-noise function of the route.
class TimeModel {
 public:
  struct Params {
    /// Multiplier on travel time per weather code.
    double weather_travel_mult[kNumWeatherCodes] = {1.0, 1.05, 1.35, 1.7};
    /// Weekend traffic is lighter; indexed by weekday (0 = Monday).
    double weekday_travel_mult[7] = {1.1, 1.05, 1.05, 1.05, 1.15,
                                     0.9,  0.85};
    /// Lognormal-ish noise scale on each travel leg.
    double travel_noise_frac = 0.12;
    /// Gamma-ish noise on service time.
    double service_noise_frac = 0.35;
    /// Fixed overhead per stop (parking, finding the door), minutes.
    double per_stop_overhead_min = 1.5;
    /// Service-time multiplier per AOI type (offices/hospitals have gate
    /// procedures; residential is fastest).
    double type_service_mult[kNumAoiTypes] = {1.0, 1.35, 1.5,
                                              1.15, 1.55, 1.1};
  };

  TimeModel() : params_(Params{}) {}
  explicit TimeModel(const Params& params) : params_(params) {}

  /// Expected travel minutes between two points for this courier/context
  /// (no noise) — also used by heuristic baselines as their speed model.
  double ExpectedTravelMinutes(const CourierProfile& courier,
                               const geo::LatLng& from,
                               const geo::LatLng& to, int weather,
                               int weekday) const;

  /// Noisy realized travel minutes.
  double SampleTravelMinutes(const CourierProfile& courier,
                             const geo::LatLng& from, const geo::LatLng& to,
                             int weather, int weekday, Rng* rng) const;

  /// Noisy realized service minutes at one location of `aoi`: courier
  /// base rate x AOI-type multiplier + the AOI's latent access overhead.
  double SampleServiceMinutes(const CourierProfile& courier,
                              const Aoi& aoi, Rng* rng) const;

  const Params& params() const { return params_; }

 private:
  Params params_;
};

}  // namespace m2g::synth

#endif  // M2G_SYNTH_TIME_MODEL_H_
