#include "synth/dataset_io.h"

#include <cstdint>
#include <cstdio>
#include <memory>

namespace m2g::synth {
namespace {

constexpr uint32_t kDatasetMagic = 0x4D324744;  // "M2GD"
constexpr uint32_t kSplitsMagic = 0x4D324753;   // "M2GS"
constexpr uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

class Writer {
 public:
  explicit Writer(std::FILE* f) : f_(f) {}
  bool ok() const { return ok_; }

  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void I32(int32_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void IntVec(const std::vector<int>& v) {
    U32(static_cast<uint32_t>(v.size()));
    for (int x : v) I32(x);
  }
  void DoubleVec(const std::vector<double>& v) {
    U32(static_cast<uint32_t>(v.size()));
    for (double x : v) F64(x);
  }

 private:
  void Raw(const void* data, size_t n) {
    ok_ = ok_ && std::fwrite(data, 1, n, f_) == n;
  }
  std::FILE* f_;
  bool ok_ = true;
};

class Reader {
 public:
  explicit Reader(std::FILE* f) : f_(f) {}
  bool ok() const { return ok_; }

  uint32_t U32() {
    uint32_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  int32_t I32() {
    int32_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  double F64() {
    double v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  std::vector<int> IntVec() {
    const uint32_t n = U32();
    if (!ok_ || n > (1u << 24)) {
      ok_ = false;
      return {};
    }
    std::vector<int> v(n);
    for (uint32_t i = 0; i < n; ++i) v[i] = I32();
    return v;
  }
  std::vector<double> DoubleVec() {
    const uint32_t n = U32();
    if (!ok_ || n > (1u << 24)) {
      ok_ = false;
      return {};
    }
    std::vector<double> v(n);
    for (uint32_t i = 0; i < n; ++i) v[i] = F64();
    return v;
  }

 private:
  void Raw(void* data, size_t n) {
    ok_ = ok_ && std::fread(data, 1, n, f_) == n;
  }
  std::FILE* f_;
  bool ok_ = true;
};

void WriteCourier(Writer* w, const CourierProfile& c) {
  w->I32(c.id);
  w->F64(c.avg_working_hours);
  w->F64(c.avg_speed_mps);
  w->F64(c.attendance);
  w->F64(c.service_time_mean_min);
  w->I32(c.home_district);
  w->IntVec(c.served_aois);
  std::vector<double> prefs(c.aoi_preference.begin(),
                            c.aoi_preference.end());
  w->DoubleVec(prefs);
}

CourierProfile ReadCourier(Reader* r) {
  CourierProfile c;
  c.id = r->I32();
  c.avg_working_hours = r->F64();
  c.avg_speed_mps = r->F64();
  c.attendance = r->F64();
  c.service_time_mean_min = r->F64();
  c.home_district = r->I32();
  c.served_aois = r->IntVec();
  c.aoi_preference = r->DoubleVec();
  return c;
}

void WriteSample(Writer* w, const Sample& s) {
  w->I32(s.courier_id);
  w->I32(s.day);
  w->I32(s.weekday);
  w->I32(s.weather);
  w->F64(s.query_time_min);
  w->F64(s.courier_pos.lat);
  w->F64(s.courier_pos.lng);
  WriteCourier(w, s.courier);
  w->U32(static_cast<uint32_t>(s.locations.size()));
  for (const LocationTask& t : s.locations) {
    w->I32(t.order_id);
    w->F64(t.pos.lat);
    w->F64(t.pos.lng);
    w->I32(t.aoi_id);
    w->I32(t.aoi_type);
    w->F64(t.accept_time_min);
    w->F64(t.deadline_min);
    w->F64(t.dist_from_courier_m);
  }
  w->IntVec(s.aoi_node_ids);
  w->IntVec(s.loc_to_aoi);
  w->IntVec(s.route_label);
  w->DoubleVec(s.time_label_min);
  w->IntVec(s.aoi_route_label);
  w->DoubleVec(s.aoi_time_label_min);
}

Sample ReadSample(Reader* r) {
  Sample s;
  s.courier_id = r->I32();
  s.day = r->I32();
  s.weekday = r->I32();
  s.weather = r->I32();
  s.query_time_min = r->F64();
  s.courier_pos.lat = r->F64();
  s.courier_pos.lng = r->F64();
  s.courier = ReadCourier(r);
  const uint32_t n = r->U32();
  if (!r->ok() || n > (1u << 20)) return s;
  s.locations.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    LocationTask t;
    t.order_id = r->I32();
    t.pos.lat = r->F64();
    t.pos.lng = r->F64();
    t.aoi_id = r->I32();
    t.aoi_type = r->I32();
    t.accept_time_min = r->F64();
    t.deadline_min = r->F64();
    t.dist_from_courier_m = r->F64();
    s.locations.push_back(t);
  }
  s.aoi_node_ids = r->IntVec();
  s.loc_to_aoi = r->IntVec();
  s.route_label = r->IntVec();
  s.time_label_min = r->DoubleVec();
  s.aoi_route_label = r->IntVec();
  s.aoi_time_label_min = r->DoubleVec();
  return s;
}

Status WriteDatasetBody(Writer* w, const Dataset& dataset,
                        const std::string& path) {
  w->U32(static_cast<uint32_t>(dataset.samples.size()));
  for (const Sample& s : dataset.samples) WriteSample(w, s);
  if (!w->ok()) return Status::IoError("short write: " + path);
  return Status::Ok();
}

Result<Dataset> ReadDatasetBody(Reader* r, const std::string& path) {
  Dataset out;
  const uint32_t count = r->U32();
  if (!r->ok() || count > (1u << 24)) {
    return Status::InvalidArgument("corrupt dataset header in " + path);
  }
  out.samples.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    out.samples.push_back(ReadSample(r));
    if (!r->ok()) {
      return Status::IoError("truncated sample record in " + path);
    }
  }
  return out;
}

}  // namespace

Status SaveDataset(const Dataset& dataset, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IoError("cannot open for write: " + path);
  Writer w(f.get());
  w.U32(kDatasetMagic);
  w.U32(kVersion);
  return WriteDatasetBody(&w, dataset, path);
}

Result<Dataset> LoadDataset(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::NotFound("no dataset at " + path);
  Reader r(f.get());
  if (r.U32() != kDatasetMagic || r.U32() != kVersion || !r.ok()) {
    return Status::InvalidArgument("not an m2g dataset file: " + path);
  }
  return ReadDatasetBody(&r, path);
}

Status SaveSplits(const DatasetSplits& splits, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IoError("cannot open for write: " + path);
  Writer w(f.get());
  w.U32(kSplitsMagic);
  w.U32(kVersion);
  for (const Dataset* ds : {&splits.train, &splits.val, &splits.test}) {
    M2G_RETURN_IF_ERROR(WriteDatasetBody(&w, *ds, path));
  }
  return Status::Ok();
}

Result<DatasetSplits> LoadSplits(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::NotFound("no splits at " + path);
  Reader r(f.get());
  if (r.U32() != kSplitsMagic || r.U32() != kVersion || !r.ok()) {
    return Status::InvalidArgument("not an m2g splits file: " + path);
  }
  DatasetSplits out;
  for (Dataset* ds : {&out.train, &out.val, &out.test}) {
    Result<Dataset> part = ReadDatasetBody(&r, path);
    if (!part.ok()) return part.status();
    *ds = std::move(part).value();
  }
  return out;
}

Status ExportLocationsCsv(const Dataset& dataset, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (!f) return Status::IoError("cannot open for write: " + path);
  std::fprintf(f.get(),
               "sample,courier_id,day,weekday,weather,query_time_min,"
               "order_id,lat,lng,aoi_id,aoi_type,accept_time_min,"
               "deadline_min,dist_from_courier_m,route_rank,"
               "arrival_gap_min\n");
  for (size_t si = 0; si < dataset.samples.size(); ++si) {
    const Sample& s = dataset.samples[si];
    std::vector<int> rank(s.num_locations(), -1);
    for (size_t j = 0; j < s.route_label.size(); ++j) {
      rank[s.route_label[j]] = static_cast<int>(j);
    }
    for (int i = 0; i < s.num_locations(); ++i) {
      const LocationTask& t = s.locations[i];
      std::fprintf(f.get(),
                   "%zu,%d,%d,%d,%d,%.3f,%d,%.6f,%.6f,%d,%d,%.3f,%.3f,"
                   "%.1f,%d,%.3f\n",
                   si, s.courier_id, s.day, s.weekday, s.weather,
                   s.query_time_min, t.order_id, t.pos.lat, t.pos.lng,
                   t.aoi_id, t.aoi_type, t.accept_time_min,
                   t.deadline_min, t.dist_from_courier_m, rank[i],
                   s.time_label_min.empty() ? 0.0 : s.time_label_min[i]);
    }
  }
  return Status::Ok();
}

}  // namespace m2g::synth
