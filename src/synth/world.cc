#include "synth/world.h"

#include <cmath>

#include "common/check.h"

namespace m2g::synth {

const char* AoiTypeName(AoiType type) {
  switch (type) {
    case AoiType::kResidential:
      return "residential";
    case AoiType::kOffice:
      return "office";
    case AoiType::kMall:
      return "mall";
    case AoiType::kSchool:
      return "school";
    case AoiType::kHospital:
      return "hospital";
    case AoiType::kIndustrial:
      return "industrial";
  }
  return "?";
}

const Aoi& World::aoi(int id) const {
  M2G_CHECK(id >= 0 && id < num_aois());
  return aois_[id];
}

std::vector<int> World::AoisInDistrict(int district) const {
  std::vector<int> out;
  for (const Aoi& a : aois_) {
    if (a.district == district) out.push_back(a.id);
  }
  return out;
}

geo::LatLng World::SamplePointInAoi(int aoi_id, Rng* rng) const {
  const Aoi& a = aoi(aoi_id);
  // Uniform over the disc: r = R * sqrt(u).
  const double r = a.radius_m * std::sqrt(rng->NextDouble());
  const double theta = rng->Uniform(0.0, 2.0 * M_PI);
  return geo::OffsetMeters(a.center, r * std::cos(theta),
                           r * std::sin(theta));
}

World GenerateWorld(const WorldConfig& config, Rng* rng) {
  M2G_CHECK_GT(config.num_districts, 0);
  M2G_CHECK_GT(config.num_aois, 0);
  // District centers around the city center.
  std::vector<geo::LatLng> districts;
  districts.reserve(config.num_districts);
  for (int d = 0; d < config.num_districts; ++d) {
    districts.push_back(geo::OffsetMeters(
        config.city_center,
        rng->Gaussian(0.0, config.district_spread_m),
        rng->Gaussian(0.0, config.district_spread_m)));
  }
  // Residential areas dominate in a pick-up scenario; weight the types.
  const std::vector<double> type_weights = {0.45, 0.22, 0.10,
                                            0.08, 0.05, 0.10};
  std::vector<Aoi> aois;
  aois.reserve(config.num_aois);
  for (int i = 0; i < config.num_aois; ++i) {
    Aoi a;
    a.id = i;
    a.district = rng->UniformInt(0, config.num_districts - 1);
    a.type = static_cast<AoiType>(rng->SampleIndex(type_weights));
    a.center = geo::OffsetMeters(
        districts[a.district], rng->Gaussian(0.0, config.aoi_spread_m),
        rng->Gaussian(0.0, config.aoi_spread_m));
    a.radius_m =
        rng->Uniform(config.min_aoi_radius_m, config.max_aoi_radius_m);
    a.access_overhead_min = rng->Uniform(0.0, 3.0);
    aois.push_back(a);
  }
  return World(config, std::move(aois));
}

}  // namespace m2g::synth
