#ifndef M2G_SYNTH_DATASET_H_
#define M2G_SYNTH_DATASET_H_

#include <vector>

#include "synth/day_simulator.h"

namespace m2g::synth {

/// One unvisited location as seen at query time (the model-facing view of
/// Definition 1 plus the derived features of Eq. 12).
struct LocationTask {
  int order_id = 0;
  geo::LatLng pos;
  int aoi_id = 0;                  // global AOI id
  int aoi_type = 0;                // AoiType as int
  double accept_time_min = 0.0;    // x^{l,acc}
  double deadline_min = 0.0;       // x^{l,dead} (absolute)
  double dist_from_courier_m = 0;  // x^{l,dis}
};

/// An RTP request with its ground truth (Definition 4/5 labels). This is
/// the unit every model trains on and predicts for.
struct Sample {
  int courier_id = 0;
  int day = 0;
  int weekday = 0;
  int weather = 0;
  double query_time_min = 0.0;  // t
  geo::LatLng courier_pos;
  CourierProfile courier;  // profile copy (global features, Eq. 17)

  std::vector<LocationTask> locations;  // V^l; node index = position here

  // --- AOI level (V^a), derived from `locations` ---
  std::vector<int> aoi_node_ids;  // distinct global AOI ids, ascending
  std::vector<int> loc_to_aoi;    // location idx -> AOI node idx

  // --- Ground truth ---
  /// route_label[j] = location index visited j-th (Definition 4).
  std::vector<int> route_label;
  /// time_label_min[i] = arrival gap (minutes) of location i (Definition 5).
  std::vector<double> time_label_min;
  /// aoi_route_label[j] = AOI node index first entered j-th.
  std::vector<int> aoi_route_label;
  /// aoi_time_label_min[k] = arrival gap at the first location of AOI k.
  std::vector<double> aoi_time_label_min;

  int num_locations() const { return static_cast<int>(locations.size()); }
  int num_aois() const { return static_cast<int>(aoi_node_ids.size()); }
};

struct Dataset {
  std::vector<Sample> samples;
  int size() const { return static_cast<int>(samples.size()); }
};

struct DatasetSplits {
  Dataset train;
  Dataset val;
  Dataset test;
};

struct DataConfig {
  uint64_t seed = 20230707;
  WorldConfig world;
  CourierConfig couriers;
  TripConfig trips;
  TimeModel::Params time_params;
  RoutePolicy::Params policy_params;
  /// Days simulated; split 65:17:10 like the paper (by day, so the test
  /// set is strictly in the future).
  int num_days = 22;
  /// Take a mid-trip snapshot (varying n and courier position) with this
  /// probability in addition to the trip-start snapshot.
  double mid_trip_snapshot_prob = 0.45;
  /// Paper filter: keep samples with <= 20 locations and <= 10 AOIs and
  /// >= `min_locations` locations.
  int min_locations = 3;
  int max_locations = 20;
  int max_aois = 10;
};

/// Extracts a Sample from a trip at the moment the first `served_prefix`
/// orders are done (0 = trip start). Returns false (and leaves `out`
/// untouched) if the snapshot violates the size filters.
bool SnapshotFromTrip(const TripRecord& trip, const CourierProfile& courier,
                      int served_prefix, const DataConfig& config,
                      Sample* out);

/// Simulates the whole city for `config.num_days` and splits by day.
DatasetSplits BuildDataset(const DataConfig& config);

/// Like BuildDataset but also returns the world/couriers (for serving
/// demos and case studies).
struct BuiltWorld {
  World world;
  std::vector<CourierProfile> couriers;
  DatasetSplits splits;
};
BuiltWorld BuildWorldAndDataset(const DataConfig& config);

// ---------------------------------------------------------------------------
// Figure 4 statistics.
// ---------------------------------------------------------------------------

struct DataStats {
  int num_samples = 0;
  double mean_location_arrival_gap_min = 0;  // Fig 4(a): avg 59.64 in paper
  double mean_aoi_arrival_gap_min = 0;       // Fig 4(b): avg 61.68
  double mean_locations_per_sample = 0;      // Fig 4(c): avg 7.64
  double mean_aois_per_sample = 0;           // Fig 4(d): avg 4.08
  /// Histogram of location arrival gaps, 10-minute buckets up to 180.
  std::vector<int> location_gap_hist;
  std::vector<int> aoi_gap_hist;
  /// Histograms of per-sample counts (index = count).
  std::vector<int> locations_per_sample_hist;
  std::vector<int> aois_per_sample_hist;
};

DataStats ComputeDataStats(const Dataset& dataset);

/// The paper's §V-A transfer analysis: average number of location-to-
/// location transfers vs AOI-to-AOI transfers per courier-day (50.97 vs
/// 6.20 in the paper).
struct TransferStats {
  double avg_location_transfers_per_day = 0;
  double avg_aoi_transfers_per_day = 0;
};
TransferStats ComputeTransferStats(const std::vector<TripRecord>& trips);

/// Runs the simulation and returns all raw trips (used by the transfer
/// analysis and tests).
std::vector<TripRecord> SimulateAllTrips(const DataConfig& config,
                                         World* world_out,
                                         std::vector<CourierProfile>* couriers_out);

}  // namespace m2g::synth

#endif  // M2G_SYNTH_DATASET_H_
