#include "synth/day_simulator.h"

#include <algorithm>

#include "common/check.h"

namespace m2g::synth {

std::vector<TripRecord> DaySimulator::SimulateDay(
    const CourierProfile& courier, int day, int weather, Rng* rng,
    int* next_order_id) const {
  std::vector<TripRecord> trips;
  if (!rng->Bernoulli(courier.attendance)) return trips;  // absent today

  const int num_trips =
      rng->UniformInt(config_.min_trips_per_day, config_.max_trips_per_day);
  // Spread trip starts across the working day.
  std::vector<double> starts;
  for (int t = 0; t < num_trips; ++t) {
    starts.push_back(rng->Uniform(config_.earliest_trip_start_min,
                                  config_.latest_trip_start_min));
  }
  std::sort(starts.begin(), starts.end());
  for (double s : starts) {
    trips.push_back(
        SimulateTrip(courier, day, weather, s, rng, next_order_id));
  }
  return trips;
}

TripRecord DaySimulator::SimulateTrip(const CourierProfile& courier, int day,
                                      int weather, double start_min,
                                      Rng* rng, int* next_order_id) const {
  TripRecord trip;
  trip.courier_id = courier.id;
  trip.day = day;
  trip.weekday = day % 7;
  trip.weather = weather;
  trip.start_time_min = start_min;

  // Which AOIs this trip touches: a habit-weighted draw from the courier's
  // coverage (habitually-early AOIs show up a bit more often, mimicking
  // morning batches).
  M2G_CHECK(!courier.served_aois.empty());
  std::vector<int> pool = courier.served_aois;
  rng->Shuffle(&pool);
  const int want_aois = std::min<int>(
      static_cast<int>(pool.size()),
      rng->UniformInt(config_.min_aois_per_trip, config_.max_aois_per_trip));
  pool.resize(want_aois);

  // The courier starts from near the first habitually-preferred AOI
  // (e.g., the depot / last drop-off). Computed before the orders so the
  // platform's promised deadlines can depend on travel from here.
  int start_aoi = pool[0];
  double best_pref = 1e18;
  for (int aoi_id : pool) {
    const double pref = AoiPreference(courier, aoi_id);
    if (pref < best_pref) {
      best_pref = pref;
      start_aoi = aoi_id;
    }
  }
  trip.start_pos = geo::OffsetMeters(world_->aoi(start_aoi).center,
                                     rng->Gaussian(0, 400.0),
                                     rng->Gaussian(0, 400.0));

  // The promised deadline = accept + base window + an ETA-style term
  // proportional to the expected travel from the trip start.
  auto make_order = [&](int aoi_id) {
    Order o;
    o.id = (*next_order_id)++;
    o.aoi_id = aoi_id;
    o.pos = world_->SamplePointInAoi(aoi_id, rng);
    // Orders trickled in during the previous ~45 minutes.
    o.accept_time_min = start_min - rng->Uniform(0.0, 45.0);
    const double promise_travel =
        config_.deadline_travel_factor *
        time_model_->ExpectedTravelMinutes(courier, trip.start_pos, o.pos,
                                           weather, trip.weekday);
    o.deadline_min =
        o.accept_time_min +
        rng->Uniform(config_.min_deadline_window_min,
                     config_.max_deadline_window_min) +
        promise_travel;
    return o;
  };

  // Orders per AOI: 1 + Geometric(extra_location_p), capped.
  std::vector<Order> orders;
  for (int aoi_id : pool) {
    int count = 1;
    while (count < config_.max_locations_per_aoi &&
           rng->Bernoulli(config_.extra_location_p)) {
      ++count;
    }
    for (int k = 0; k < count; ++k) {
      if (static_cast<int>(orders.size()) >=
          config_.max_locations_per_trip) {
        break;
      }
      orders.push_back(make_order(aoi_id));
    }
  }
  // Ensure a minimum batch size by topping up the first AOI.
  while (static_cast<int>(orders.size()) < config_.min_locations_per_trip) {
    orders.push_back(make_order(pool[0]));
  }

  // Serve everything with the behavioural policy + physical time model.
  std::vector<Order> pending = orders;
  geo::LatLng pos = trip.start_pos;
  double now = start_min;
  int current_aoi = -1;
  while (!pending.empty()) {
    const int pick =
        policy_->PickNext(courier, pos, now, current_aoi, pending,
                          weather, trip.weekday, rng);
    const Order chosen = pending[pick];
    pending.erase(pending.begin() + pick);
    now += time_model_->SampleTravelMinutes(courier, pos, chosen.pos,
                                            weather, trip.weekday, rng);
    ServedOrder served;
    served.order = chosen;
    served.arrival_time_min = now;
    now += time_model_->SampleServiceMinutes(
        courier, world_->aoi(chosen.aoi_id), rng);
    served.departure_time_min = now;
    trip.served.push_back(served);
    pos = chosen.pos;
    current_aoi = chosen.aoi_id;
  }
  return trip;
}

}  // namespace m2g::synth
