#include "synth/time_model.h"

#include <algorithm>
#include <cmath>

namespace m2g::synth {

double TimeModel::ExpectedTravelMinutes(const CourierProfile& courier,
                                        const geo::LatLng& from,
                                        const geo::LatLng& to, int weather,
                                        int weekday) const {
  const double dist_m = geo::ApproxMeters(from, to);
  // Street-network detour factor: straight-line x ~1.3.
  const double road_m = dist_m * 1.3;
  double minutes = road_m / courier.avg_speed_mps / 60.0;
  minutes *= params_.weather_travel_mult[std::clamp(weather, 0,
                                                    kNumWeatherCodes - 1)];
  minutes *= params_.weekday_travel_mult[std::clamp(weekday, 0, 6)];
  return minutes;
}

double TimeModel::SampleTravelMinutes(const CourierProfile& courier,
                                      const geo::LatLng& from,
                                      const geo::LatLng& to, int weather,
                                      int weekday, Rng* rng) const {
  const double expected =
      ExpectedTravelMinutes(courier, from, to, weather, weekday);
  const double noise =
      std::max(0.4, rng->Gaussian(1.0, params_.travel_noise_frac));
  return expected * noise;
}

double TimeModel::SampleServiceMinutes(const CourierProfile& courier,
                                       const Aoi& aoi, Rng* rng) const {
  const double type_mult =
      params_.type_service_mult[static_cast<int>(aoi.type)];
  const double base = courier.service_time_mean_min * type_mult;
  const double noise =
      std::max(0.25, rng->Gaussian(1.0, params_.service_noise_frac));
  return params_.per_stop_overhead_min + aoi.access_overhead_min +
         base * noise;
}

}  // namespace m2g::synth
