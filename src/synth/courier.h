#ifndef M2G_SYNTH_COURIER_H_
#define M2G_SYNTH_COURIER_H_

#include <vector>

#include "synth/world.h"

namespace m2g::synth {

/// A courier's static profile. The first three fields are the paper's
/// global features (Eq. 17): average working hours, average driving speed,
/// attendance over the last two months. `aoi_preference` encodes the
/// habitual high-level transfer mode: a per-courier priority score over the
/// AOIs the courier serves — couriers tend to visit low-priority-score AOIs
/// earlier, which is exactly the "he always visits AOI A first, then AOI B"
/// pattern of Figure 1.
struct CourierProfile {
  int id = 0;
  double avg_working_hours = 8.0;
  double avg_speed_mps = 3.8;    // e-bike city speed
  double attendance = 0.95;      // [0, 1]
  double service_time_mean_min = 3.0;  // time spent at one location
  int home_district = 0;
  std::vector<int> served_aois;         // AOIs this courier covers
  std::vector<double> aoi_preference;   // parallel to served_aois, in [0,1)
};

struct CourierConfig {
  int num_couriers = 30;
  int min_aois_served = 10;
  int max_aois_served = 24;
};

/// Generates courier profiles over the world's AOIs. Each courier serves a
/// contiguous set of AOIs (its home district plus spill-over) and carries a
/// deterministic habitual ordering over them.
std::vector<CourierProfile> GenerateCouriers(const World& world,
                                             const CourierConfig& config,
                                             Rng* rng);

/// Preference score of `aoi_id` for this courier; lower means "visited
/// earlier by habit". Unserved AOIs get a neutral 0.5.
double AoiPreference(const CourierProfile& courier, int aoi_id);

}  // namespace m2g::synth

#endif  // M2G_SYNTH_COURIER_H_
