#ifndef M2G_SYNTH_DAY_SIMULATOR_H_
#define M2G_SYNTH_DAY_SIMULATOR_H_

#include <vector>

#include "synth/route_policy.h"

namespace m2g::synth {

struct TripConfig {
  /// Trips per courier-day (subject to attendance).
  int min_trips_per_day = 1;
  int max_trips_per_day = 3;
  /// AOIs per trip; tuned so that per-sample counts match Figure 4
  /// (mean ~4 AOIs, ~7.6 locations).
  int min_aois_per_trip = 2;
  int max_aois_per_trip = 7;
  /// Locations per AOI ~ 1 + Geometric; capped.
  double extra_location_p = 0.45;
  int max_locations_per_aoi = 6;
  int max_locations_per_trip = 20;
  int min_locations_per_trip = 3;
  /// Promised deadline window after accept, minutes. The platform's
  /// promise also scales with how far the order is from the courier's
  /// trip start (an ETA-based promise), so deadlines carry genuine
  /// ordering signal — this is what makes Time-Greedy a reasonable
  /// baseline, as in the paper.
  double min_deadline_window_min = 100.0;
  double max_deadline_window_min = 140.0;
  double deadline_travel_factor = 3.0;
  /// Working day span (minutes from day start) in which trips begin.
  double earliest_trip_start_min = 8.5 * 60;
  double latest_trip_start_min = 17.0 * 60;
};

/// Simulates a full day of one courier: order arrival, trip formation, and
/// the realized service sequence with arrival times.
class DaySimulator {
 public:
  DaySimulator(const World* world, const TimeModel* time_model,
               const RoutePolicy* policy, const TripConfig& config)
      : world_(world),
        time_model_(time_model),
        policy_(policy),
        config_(config) {}

  /// Runs one courier-day; returns zero or more trips (zero if the courier
  /// is absent that day). `next_order_id` is advanced for globally unique
  /// order ids.
  std::vector<TripRecord> SimulateDay(const CourierProfile& courier, int day,
                                      int weather, Rng* rng,
                                      int* next_order_id) const;

 private:
  TripRecord SimulateTrip(const CourierProfile& courier, int day,
                          int weather, double start_min, Rng* rng,
                          int* next_order_id) const;

  const World* world_;
  const TimeModel* time_model_;
  const RoutePolicy* policy_;
  TripConfig config_;
};

}  // namespace m2g::synth

#endif  // M2G_SYNTH_DAY_SIMULATOR_H_
