#include "synth/courier.h"

#include <algorithm>

#include "common/check.h"

namespace m2g::synth {

std::vector<CourierProfile> GenerateCouriers(const World& world,
                                             const CourierConfig& config,
                                             Rng* rng) {
  std::vector<CourierProfile> couriers;
  couriers.reserve(config.num_couriers);
  for (int i = 0; i < config.num_couriers; ++i) {
    CourierProfile c;
    c.id = i;
    c.avg_working_hours = rng->Uniform(6.0, 10.0);
    c.avg_speed_mps = rng->Uniform(2.8, 5.2);
    c.attendance = rng->Uniform(0.80, 1.0);
    c.service_time_mean_min = rng->Uniform(2.2, 5.0);
    c.home_district =
        rng->UniformInt(0, world.config().num_districts - 1);

    // Serve AOIs from the home district first, then neighbours if needed.
    std::vector<int> pool = world.AoisInDistrict(c.home_district);
    int want = rng->UniformInt(config.min_aois_served,
                               config.max_aois_served);
    rng->Shuffle(&pool);
    if (static_cast<int>(pool.size()) < want) {
      // Spill into other districts deterministically.
      for (int a = 0; a < world.num_aois() &&
                      static_cast<int>(pool.size()) < want;
           ++a) {
        if (world.aoi(a).district != c.home_district) pool.push_back(a);
      }
    }
    pool.resize(std::min<size_t>(pool.size(), static_cast<size_t>(want)));
    std::sort(pool.begin(), pool.end());
    c.served_aois = pool;
    c.aoi_preference.reserve(pool.size());
    for (size_t k = 0; k < pool.size(); ++k) {
      c.aoi_preference.push_back(rng->NextDouble());
    }
    couriers.push_back(std::move(c));
  }
  return couriers;
}

double AoiPreference(const CourierProfile& courier, int aoi_id) {
  auto it = std::lower_bound(courier.served_aois.begin(),
                             courier.served_aois.end(), aoi_id);
  if (it == courier.served_aois.end() || *it != aoi_id) return 0.5;
  const size_t idx =
      static_cast<size_t>(it - courier.served_aois.begin());
  return courier.aoi_preference[idx];
}

}  // namespace m2g::synth
