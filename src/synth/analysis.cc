#include "synth/analysis.h"

#include <algorithm>
#include <map>
#include <set>

namespace m2g::synth {

HabitConsistency ComputeHabitConsistency(
    const std::vector<TripRecord>& trips) {
  // courier -> (aoi_a, aoi_b) with a < b -> (a-before-b count, total).
  std::map<int, std::map<std::pair<int, int>, std::pair<int, int>>>
      per_courier;
  for (const TripRecord& trip : trips) {
    // First-visit order of AOIs within this trip.
    std::vector<int> aoi_order;
    std::set<int> seen;
    for (const ServedOrder& so : trip.served) {
      if (seen.insert(so.order.aoi_id).second) {
        aoi_order.push_back(so.order.aoi_id);
      }
    }
    auto& pairs = per_courier[trip.courier_id];
    for (size_t i = 0; i < aoi_order.size(); ++i) {
      for (size_t j = i + 1; j < aoi_order.size(); ++j) {
        const int a = std::min(aoi_order[i], aoi_order[j]);
        const int b = std::max(aoi_order[i], aoi_order[j]);
        auto& [a_first, total] = pairs[{a, b}];
        if (aoi_order[i] == a) ++a_first;
        ++total;
      }
    }
  }

  HabitConsistency out;
  double consistency_sum = 0;
  std::set<int> couriers;
  for (const auto& [courier, pairs] : per_courier) {
    for (const auto& [pair, counts] : pairs) {
      (void)pair;
      const auto& [a_first, total] = counts;
      if (total < 2) continue;  // need repetition to measure a habit
      const int majority = std::max(a_first, total - a_first);
      consistency_sum += static_cast<double>(majority) / total;
      ++out.pairs_measured;
      couriers.insert(courier);
    }
  }
  out.couriers_measured = static_cast<int>(couriers.size());
  if (out.pairs_measured > 0) {
    out.mean_pair_consistency = consistency_sum / out.pairs_measured;
  }
  return out;
}

DeadlineStats ComputeDeadlineStats(const std::vector<TripRecord>& trips) {
  DeadlineStats out;
  double slack_sum = 0;
  int64_t on_time = 0;
  for (const TripRecord& trip : trips) {
    for (const ServedOrder& so : trip.served) {
      const double slack = so.order.deadline_min - so.arrival_time_min;
      slack_sum += slack;
      if (slack >= 0) ++on_time;
      ++out.orders;
    }
  }
  if (out.orders > 0) {
    out.on_time_fraction = static_cast<double>(on_time) / out.orders;
    out.mean_slack_min = slack_sum / out.orders;
  }
  return out;
}

SweepStats ComputeSweepStats(const std::vector<TripRecord>& trips) {
  SweepStats out;
  double completeness_sum = 0;
  int64_t complete_blocks = 0;
  for (const TripRecord& trip : trips) {
    // Pending count per AOI as the trip progresses.
    std::map<int, int> remaining;
    for (const ServedOrder& so : trip.served) {
      remaining[so.order.aoi_id]++;
    }
    size_t i = 0;
    while (i < trip.served.size()) {
      const int aoi = trip.served[i].order.aoi_id;
      const int pending_at_entry = remaining[aoi];
      int served_in_block = 0;
      while (i < trip.served.size() &&
             trip.served[i].order.aoi_id == aoi) {
        ++served_in_block;
        --remaining[aoi];
        ++i;
      }
      completeness_sum +=
          static_cast<double>(served_in_block) / pending_at_entry;
      if (served_in_block == pending_at_entry) ++complete_blocks;
      ++out.blocks;
    }
  }
  if (out.blocks > 0) {
    out.mean_block_completeness = completeness_sum / out.blocks;
    out.complete_block_fraction =
        static_cast<double>(complete_blocks) / out.blocks;
  }
  return out;
}

}  // namespace m2g::synth
