#include "synth/route_policy.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/check.h"

namespace m2g::synth {
namespace {

/// Samples an index with probability softmax(-score / temp); temp <= 0
/// degenerates to argmin.
int SampleByNegScore(const std::vector<double>& scores, double temp,
                     Rng* rng) {
  M2G_CHECK(!scores.empty());
  if (temp <= 0.0) {
    return static_cast<int>(
        std::min_element(scores.begin(), scores.end()) - scores.begin());
  }
  const double min_s = *std::min_element(scores.begin(), scores.end());
  std::vector<double> weights(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    weights[i] = std::exp(-(scores[i] - min_s) / temp);
  }
  return rng->SampleIndex(weights);
}

}  // namespace

int RoutePolicy::PickNext(const CourierProfile& courier,
                          const geo::LatLng& courier_pos, double now_min,
                          int current_aoi, const std::vector<Order>& pending,
                          int weather, int weekday, Rng* rng) const {
  M2G_CHECK(!pending.empty());

  // Helper: pick an order among `candidates` (indices into pending) by
  // distance + urgency.
  // The courier reasons in travel *minutes*, not raw distance, so weather
  // and weekday shape the realized route too.
  auto travel_min = [&](const geo::LatLng& to) {
    return time_model_->ExpectedTravelMinutes(courier, courier_pos, to,
                                              weather, weekday);
  };
  auto pick_within = [&](const std::vector<int>& candidates) {
    std::vector<double> scores(candidates.size());
    for (size_t i = 0; i < candidates.size(); ++i) {
      const Order& o = pending[candidates[i]];
      const double slack = o.deadline_min - now_min;
      const double urgency = std::max(0.0, 1.0 - slack / 120.0);
      scores[i] =
          0.2 * travel_min(o.pos) + params_.intra_slack_weight * urgency;
    }
    return candidates[SampleByNegScore(scores, params_.intra_choice_temp,
                                       rng)];
  };

  // 1. Critical-deadline override: rush to the most overdue order's AOI.
  int critical = -1;
  double worst_slack = params_.critical_slack_min;
  for (size_t i = 0; i < pending.size(); ++i) {
    const double slack = pending[i].deadline_min - now_min;
    if (slack < worst_slack) {
      worst_slack = slack;
      critical = static_cast<int>(i);
    }
  }
  if (critical >= 0) return critical;

  // 2. Stay in the current AOI until it is finished (the high-level
  //    transfer mode).
  if (current_aoi >= 0 && rng->Bernoulli(params_.stay_in_aoi_prob)) {
    std::vector<int> same_aoi;
    for (size_t i = 0; i < pending.size(); ++i) {
      if (pending[i].aoi_id == current_aoi) {
        same_aoi.push_back(static_cast<int>(i));
      }
    }
    if (!same_aoi.empty()) return pick_within(same_aoi);
  }

  // 3. Choose the next AOI by habit + proximity + deadline pressure.
  std::map<int, std::vector<int>> by_aoi;  // ordered => deterministic
  for (size_t i = 0; i < pending.size(); ++i) {
    by_aoi[pending[i].aoi_id].push_back(static_cast<int>(i));
  }
  std::vector<int> aoi_ids;
  std::vector<double> aoi_scores;
  for (const auto& [aoi_id, members] : by_aoi) {
    double min_travel = 1e18, min_slack = 1e18;
    for (int idx : members) {
      min_travel = std::min(min_travel, travel_min(pending[idx].pos));
      min_slack =
          std::min(min_slack, pending[idx].deadline_min - now_min);
    }
    const double urgency = std::max(0.0, 1.0 - min_slack / 120.0);
    const double habit = AoiPreference(courier, aoi_id);
    aoi_ids.push_back(aoi_id);
    aoi_scores.push_back(params_.pref_weight * habit +
                         params_.dist_weight * 0.2 * min_travel +
                         params_.slack_weight * urgency);
  }
  const int chosen_aoi =
      aoi_ids[SampleByNegScore(aoi_scores, params_.aoi_choice_temp, rng)];

  // 4. Nearest-ish order inside the chosen AOI.
  return pick_within(by_aoi[chosen_aoi]);
}

}  // namespace m2g::synth
