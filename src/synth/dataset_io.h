#ifndef M2G_SYNTH_DATASET_IO_H_
#define M2G_SYNTH_DATASET_IO_H_

#include <string>

#include "common/status.h"
#include "synth/dataset.h"

namespace m2g::synth {

/// Binary (de)serialization of datasets so expensive simulations can be
/// generated once and shared across benches / external tooling, and so
/// users can swap in their own data by writing this format.

Status SaveDataset(const Dataset& dataset, const std::string& path);
Result<Dataset> LoadDataset(const std::string& path);

Status SaveSplits(const DatasetSplits& splits, const std::string& path);
Result<DatasetSplits> LoadSplits(const std::string& path);

/// CSV export of the per-location rows (one row per (sample, location))
/// for offline analysis in any external tool.
Status ExportLocationsCsv(const Dataset& dataset, const std::string& path);

}  // namespace m2g::synth

#endif  // M2G_SYNTH_DATASET_IO_H_
