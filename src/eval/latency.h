#ifndef M2G_EVAL_LATENCY_H_
#define M2G_EVAL_LATENCY_H_

#include "eval/rtp_model.h"

namespace m2g::eval {

/// Table V row: measured single-request inference latency plus the
/// analytical complexity from the paper. Quantiles are read from the
/// shared obs::Histogram latency buckets (interpolated, not exact order
/// statistics), so offline rows and the live serving exports agree.
struct LatencyResult {
  std::string method;
  std::string complexity;  // e.g. "O(NF^2 + EF^2 + N^2F^2 + A^2F^2)"
  double mean_ms = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
};

/// The paper's Table V complexity column for a method name ("?" if the
/// method is not in the table).
std::string ComplexityFormula(const std::string& method);

/// Measures per-sample Predict latency of an already-fitted model over
/// `samples` (each sample timed individually). When `no_grad` is true the
/// passes run under NoGradGuard (no autograd graph is built) and the
/// method name gets a " (no-grad)" suffix.
LatencyResult MeasureLatency(const RtpModel& model,
                             const std::vector<synth::Sample>& samples,
                             bool no_grad = false);

/// Two Table V rows for the same model: grad-mode inference (graph built
/// and discarded, the pre-refactor behavior) vs no-grad inference.
std::vector<LatencyResult> MeasureGradModeComparison(
    const RtpModel& model, const std::vector<synth::Sample>& samples);

void PrintScalabilityTable(const std::vector<LatencyResult>& rows);

}  // namespace m2g::eval

#endif  // M2G_EVAL_LATENCY_H_
