#ifndef M2G_EVAL_CASE_STUDY_H_
#define M2G_EVAL_CASE_STUDY_H_

#include "eval/rtp_model.h"
#include "metrics/route_metrics.h"
#include "metrics/significance.h"

namespace m2g::eval {

/// Figure 6 reproduction: pick interesting test samples (multi-AOI,
/// reasonably long routes) and render real vs predicted routes as text,
/// with per-sample RMSE/MAE of the time predictions.

/// Returns indices into `test.samples` of up to `count` samples with at
/// least `min_aois` AOIs and `min_locations` locations, preferring longer
/// multi-AOI routes.
std::vector<int> PickCaseStudySamples(const synth::Dataset& test, int count,
                                      int min_aois = 3,
                                      int min_locations = 8);

/// One method's rendering for one sample.
struct CaseRendering {
  std::string method;
  std::vector<int> route;          // location visit order
  std::vector<double> times_min;   // indexed by location
  double rmse = 0;
  double mae = 0;
  /// Number of AOI "bounces": transitions that leave an AOI while it
  /// still has unvisited locations (the unreasonable behaviour the paper
  /// calls out in Graph2Route's first case).
  int aoi_bounces = 0;
};

CaseRendering RenderCase(const RtpModel& model, const synth::Sample& sample);

/// Prints a sample's ground truth and each method's rendering.
void PrintCase(const synth::Sample& sample,
               const std::vector<CaseRendering>& renderings);

/// Paired bootstrap over the whole test set: per-sample KRC of `a` minus
/// `b` (route quality). Both models must already be fitted.
metrics::PairedComparison PairedRouteComparison(const RtpModel& a,
                                                const RtpModel& b,
                                                const synth::Dataset& test);

/// Same, over per-sample time MAE (lower is better, so a negative mean
/// difference favours `a`).
metrics::PairedComparison PairedTimeComparison(const RtpModel& a,
                                               const RtpModel& b,
                                               const synth::Dataset& test);

}  // namespace m2g::eval

#endif  // M2G_EVAL_CASE_STUDY_H_
