#include "eval/rtp_model.h"

#include "baselines/deep_route.h"
#include "baselines/fdnet.h"
#include "baselines/graph2route.h"
#include "baselines/greedy.h"
#include "baselines/osquare.h"
#include "baselines/tsp.h"
#include "common/check.h"
#include "core/trainer.h"

namespace m2g::eval {
namespace {

class DistanceGreedyModel : public RtpModel {
 public:
  std::string name() const override { return "Distance-Greedy"; }
  void Fit(const synth::Dataset&, const synth::Dataset&) override {}
  core::RtpPrediction Predict(const synth::Sample& s) const override {
    return baselines::DistanceGreedyPredict(s, config_);
  }

 private:
  baselines::HeuristicConfig config_;
};

class TimeGreedyModel : public RtpModel {
 public:
  std::string name() const override { return "Time-Greedy"; }
  void Fit(const synth::Dataset&, const synth::Dataset&) override {}
  core::RtpPrediction Predict(const synth::Sample& s) const override {
    return baselines::TimeGreedyPredict(s, config_);
  }

 private:
  baselines::HeuristicConfig config_;
};

class OrToolsModel : public RtpModel {
 public:
  std::string name() const override { return "OR-Tools"; }
  void Fit(const synth::Dataset&, const synth::Dataset&) override {}
  core::RtpPrediction Predict(const synth::Sample& s) const override {
    return baselines::OrToolsLikePredict(s, config_);
  }

 private:
  baselines::HeuristicConfig config_;
};

class OSquareModel : public RtpModel {
 public:
  explicit OSquareModel(const EvalScale& scale) {
    baselines::OSquare::Config config;
    config.seed = scale.seed;
    model_ = std::make_unique<baselines::OSquare>(config);
  }
  std::string name() const override { return "OSquare"; }
  void Fit(const synth::Dataset& train, const synth::Dataset&) override {
    model_->Fit(train);
  }
  core::RtpPrediction Predict(const synth::Sample& s) const override {
    return model_->Predict(s);
  }

 private:
  std::unique_ptr<baselines::OSquare> model_;
};

baselines::DeepBaselineConfig MakeDeepConfig(const EvalScale& scale,
                                             uint64_t salt) {
  baselines::DeepBaselineConfig config;
  config.seed = scale.seed ^ salt;
  config.epochs = scale.epochs;
  config.max_samples_per_epoch = scale.max_samples_per_epoch;
  config.time_head.seed = scale.seed ^ (salt * 31);
  return config;
}

template <typename Net>
class DeepBaselineModel : public RtpModel {
 public:
  DeepBaselineModel(std::string name, const EvalScale& scale, uint64_t salt)
      : name_(std::move(name)),
        net_(std::make_unique<Net>(MakeDeepConfig(scale, salt))) {}
  std::string name() const override { return name_; }
  void Fit(const synth::Dataset& train, const synth::Dataset& val) override {
    net_->Fit(train, val);
  }
  core::RtpPrediction Predict(const synth::Sample& s) const override {
    return net_->Predict(s);
  }

 private:
  std::string name_;
  std::unique_ptr<Net> net_;
};

class M2g4RtpModel : public RtpModel {
 public:
  M2g4RtpModel(std::string name, const core::ModelConfig& mc,
               const EvalScale& scale)
      : name_(std::move(name)),
        scale_(scale),
        model_(std::make_unique<core::M2g4Rtp>(mc)) {}
  std::string name() const override { return name_; }
  void Fit(const synth::Dataset& train, const synth::Dataset& val) override {
    core::TrainConfig tc;
    tc.epochs = scale_.epochs;
    tc.max_samples_per_epoch = scale_.max_samples_per_epoch;
    tc.threads = scale_.threads;
    core::Trainer trainer(model_.get(), tc);
    trainer.Fit(train, val);
  }
  core::RtpPrediction Predict(const synth::Sample& s) const override {
    return model_->Predict(s);
  }

 private:
  std::string name_;
  EvalScale scale_;
  std::unique_ptr<core::M2g4Rtp> model_;
};

}  // namespace

std::vector<std::string> AllMethodNames() {
  return {"Distance-Greedy", "Time-Greedy", "OR-Tools",  "OSquare",
          "DeepRoute",       "FDNET",       "Graph2Route", "M2G4RTP"};
}

std::unique_ptr<RtpModel> CreateModel(const std::string& name,
                                      const EvalScale& scale) {
  if (name == "Distance-Greedy") {
    return std::make_unique<DistanceGreedyModel>();
  }
  if (name == "Time-Greedy") return std::make_unique<TimeGreedyModel>();
  if (name == "OR-Tools") return std::make_unique<OrToolsModel>();
  if (name == "OSquare") return std::make_unique<OSquareModel>(scale);
  if (name == "DeepRoute") {
    return std::make_unique<DeepBaselineModel<baselines::DeepRoute>>(
        "DeepRoute", scale, 0x11);
  }
  if (name == "FDNET") {
    return std::make_unique<DeepBaselineModel<baselines::Fdnet>>(
        "FDNET", scale, 0x22);
  }
  if (name == "Graph2Route") {
    return std::make_unique<DeepBaselineModel<baselines::Graph2Route>>(
        "Graph2Route", scale, 0x33);
  }

  core::ModelConfig mc;
  mc.seed = scale.seed;
  if (name == "M2G4RTP") {
    return std::make_unique<M2g4RtpModel>(name, mc, scale);
  }
  if (name == "M2G4RTP-two-step") {
    mc.two_step = true;
    return std::make_unique<M2g4RtpModel>(name, mc, scale);
  }
  if (name == "M2G4RTP-wo-aoi") {
    mc.use_aoi_level = false;
    return std::make_unique<M2g4RtpModel>(name, mc, scale);
  }
  if (name == "M2G4RTP-wo-graph") {
    mc.use_graph_encoder = false;
    return std::make_unique<M2g4RtpModel>(name, mc, scale);
  }
  if (name == "M2G4RTP-wo-uncertainty") {
    mc.use_uncertainty_weighting = false;
    return std::make_unique<M2g4RtpModel>(name, mc, scale);
  }
  M2G_CHECK_MSG(false, ("unknown method: " + name).c_str());
  return nullptr;
}

}  // namespace m2g::eval
