#ifndef M2G_EVAL_COMPARISON_H_
#define M2G_EVAL_COMPARISON_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "eval/rtp_model.h"
#include "metrics/report.h"

namespace m2g::eval {

/// One method's full evaluation record (all cells of its Table III and
/// Table IV rows, plus timing).
struct MethodResult {
  std::string method;
  /// Mean over the trained seeds (a single run's values when only one
  /// seed ran).
  metrics::RouteTimeMetrics buckets[metrics::kNumBuckets];
  /// Per-metric standard deviation over seeds (all zeros for one seed /
  /// deterministic heuristics).
  metrics::RouteTimeMetrics buckets_std[metrics::kNumBuckets];
  int seeds = 1;
  double fit_seconds = 0;     // summed over seeds
  double predict_ms_mean = 0;
};

struct ComparisonResult {
  std::vector<MethodResult> methods;

  const MethodResult* Find(const std::string& method) const;
};

/// Trains and evaluates each named method on the given splits.
ComparisonResult RunComparison(const synth::DatasetSplits& splits,
                               const std::vector<std::string>& methods,
                               const EvalScale& scale);

/// Text (de)serialization so Table III and Table IV benches share one
/// training run via a cache file.
Status SaveComparison(const ComparisonResult& result,
                      const std::string& path);
Result<ComparisonResult> LoadComparison(const std::string& path);

/// Loads `cache_path` if it exists and covers all `methods`; otherwise
/// runs the comparison and writes the cache.
ComparisonResult RunOrLoadComparison(const synth::DatasetSplits& splits,
                                     const std::vector<std::string>& methods,
                                     const EvalScale& scale,
                                     const std::string& cache_path);

/// Prints one metric block ("route" or "time") in the paper's layout.
void PrintRouteTable(const ComparisonResult& result);
void PrintTimeTable(const ComparisonResult& result);

}  // namespace m2g::eval

#endif  // M2G_EVAL_COMPARISON_H_
