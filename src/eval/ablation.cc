#include "eval/ablation.h"

#include <algorithm>
#include <cstdio>

namespace m2g::eval {

std::vector<std::string> AblationVariantNames() {
  return {"M2G4RTP-two-step", "M2G4RTP-wo-aoi", "M2G4RTP-wo-graph",
          "M2G4RTP-wo-uncertainty", "M2G4RTP"};
}

ComparisonResult RunAblation(const synth::DatasetSplits& splits,
                             const EvalScale& scale,
                             const std::string& cache_path) {
  return RunOrLoadComparison(splits, AblationVariantNames(), scale,
                             cache_path);
}

namespace {

void PrintPanel(const ComparisonResult& result, const char* title,
                double (*get)(const metrics::RouteTimeMetrics&),
                bool higher_is_better) {
  std::printf("\n%s (all samples)%s\n", title,
              higher_is_better ? "  [higher is better]"
                               : "  [lower is better]");
  double max_v = 1e-12;
  for (const MethodResult& m : result.methods) {
    max_v = std::max(max_v, get(m.buckets[2]));
  }
  for (const MethodResult& m : result.methods) {
    const double v = get(m.buckets[2]);
    const int width = static_cast<int>(46.0 * v / max_v + 0.5);
    std::printf("  %-24s %8.3f  ", m.method.c_str(), v);
    for (int i = 0; i < width; ++i) std::printf("#");
    std::printf("\n");
  }
}

}  // namespace

void PrintAblationFigure(const ComparisonResult& result) {
  std::printf("Figure 5: Component Analysis\n");
  PrintPanel(
      result, "(a) HR@3",
      [](const metrics::RouteTimeMetrics& b) { return b.hr3; }, true);
  PrintPanel(
      result, "(b) KRC",
      [](const metrics::RouteTimeMetrics& b) { return b.krc; }, true);
  PrintPanel(
      result, "(c) RMSE",
      [](const metrics::RouteTimeMetrics& b) { return b.rmse; }, false);
  PrintPanel(
      result, "(d) MAE",
      [](const metrics::RouteTimeMetrics& b) { return b.mae; }, false);
}

}  // namespace m2g::eval
