#ifndef M2G_EVAL_ABLATION_H_
#define M2G_EVAL_ABLATION_H_

#include "eval/comparison.h"

namespace m2g::eval {

/// Names of the §V-E ablation variants plus the full model, in the
/// paper's Figure 5 order.
std::vector<std::string> AblationVariantNames();

/// Runs (or loads from cache) the Figure 5 component analysis.
ComparisonResult RunAblation(const synth::DatasetSplits& splits,
                             const EvalScale& scale,
                             const std::string& cache_path);

/// Prints the Figure 5 panels (HR@3, KRC, RMSE, MAE on the "all" bucket)
/// as ASCII bar charts.
void PrintAblationFigure(const ComparisonResult& result);

}  // namespace m2g::eval

#endif  // M2G_EVAL_ABLATION_H_
