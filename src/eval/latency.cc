#include "eval/latency.h"

#include <cstdio>
#include <optional>

#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/grad_mode.h"

namespace m2g::eval {

std::string ComplexityFormula(const std::string& method) {
  // The neural methods share AttentionRouteDecoder, whose request-scoped
  // key cache computes the O(N F^2) pointer projection once instead of
  // per step, so every decode term is N^2 F (N steps of O(N F) scoring)
  // rather than the naive N^2 F^2. M2G4RTP's encode term E F^2 (E = N^2
  // dense edges per level) keeps its complexity class on the fused
  // no-grad fast path, but the gather-free edge update drops the
  // constant from ~3 E F^2 (three gathered endpoint matmuls) to E F^2
  // plus an O(N F^2) hoist, with no (E, F) temporaries.
  if (method == "Distance-Greedy" || method == "Time-Greedy") {
    return "O(N log N)";
  }
  if (method == "OR-Tools") return "O(N^2) per 2-opt pass";
  if (method == "OSquare") return "O(t d F N)";
  if (method == "DeepRoute") return "O(N^2 F + N F^2)";
  if (method == "Graph2Route") return "O(N F^2 + E F^2 + N^2 F)";
  if (method == "FDNET") return "O(N F^2 + N^2 F)";
  if (method == "M2G4RTP") {
    return "O(N F^2 + E F^2 + N^2 F + A^2 F)";
  }
  return "?";
}

LatencyResult MeasureLatency(const RtpModel& model,
                             const std::vector<synth::Sample>& samples,
                             bool no_grad) {
  LatencyResult result;
  result.method = no_grad ? model.name() + " (no-grad)" : model.name();
  result.complexity = ComplexityFormula(model.name());
  if (samples.empty()) return result;

  std::optional<NoGradGuard> guard;
  if (no_grad) guard.emplace();
  // Per-sample timings go through the same fixed-bucket histogram the
  // serving layer exports, so offline Table V and a live scrape agree
  // on bucketing and quantile interpolation.
  obs::Histogram hist(obs::DefaultLatencyBucketsMs());
  for (const synth::Sample& s : samples) {
    // Each measured predict is a request-scoped trace ("eval" tag): the
    // offline latency study produces the same span trees / wide events a
    // live scrape would, sized by the sample's levels.
    obs::RequestTrace trace("eval");
    trace.event().num_locations = s.num_locations();
    trace.event().num_aois = s.num_aois();
    Stopwatch watch;
    core::RtpPrediction pred = model.Predict(s);
    const double ms = watch.ElapsedMillis();
    // Defeat dead-code elimination.
    if (pred.location_route.empty()) std::fprintf(stderr, "!");
    trace.event().route_length = static_cast<int>(pred.location_route.size());
    hist.Record(ms);
  }
  const obs::HistogramSnapshot snap = hist.Snapshot();
  result.mean_ms = snap.mean();
  result.p50_ms = snap.Quantile(0.50);
  result.p95_ms = snap.Quantile(0.95);
  result.p99_ms = snap.Quantile(0.99);
  return result;
}

std::vector<LatencyResult> MeasureGradModeComparison(
    const RtpModel& model, const std::vector<synth::Sample>& samples) {
  return {MeasureLatency(model, samples, /*no_grad=*/false),
          MeasureLatency(model, samples, /*no_grad=*/true)};
}

void PrintScalabilityTable(const std::vector<LatencyResult>& rows) {
  std::printf("Table V: Scalability Analysis\n");
  std::printf("%-18s %-38s %10s %10s %10s %10s\n", "Method",
              "Inference Time Complexity", "mean (ms)", "p50 (ms)",
              "p95 (ms)", "p99 (ms)");
  for (int i = 0; i < 101; ++i) std::printf("-");
  std::printf("\n");
  for (const LatencyResult& r : rows) {
    std::printf("%-18s %-38s %10.3f %10.3f %10.3f %10.3f\n",
                r.method.c_str(), r.complexity.c_str(), r.mean_ms,
                r.p50_ms, r.p95_ms, r.p99_ms);
  }
}

}  // namespace m2g::eval
