#ifndef M2G_EVAL_RTP_MODEL_H_
#define M2G_EVAL_RTP_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "core/model.h"
#include "synth/dataset.h"

namespace m2g::eval {

/// Uniform interface every compared method implements (the 8 rows of
/// Tables III/IV plus the ablation variants).
class RtpModel {
 public:
  virtual ~RtpModel() = default;
  virtual std::string name() const = 0;
  /// Trains the method; heuristics are no-ops.
  virtual void Fit(const synth::Dataset& train,
                   const synth::Dataset& val) = 0;
  virtual core::RtpPrediction Predict(const synth::Sample& sample) const = 0;
};

/// Knobs that scale the whole comparison up or down (bench runtime vs
/// fidelity). Defaults train every deep model for a few epochs on the
/// full training split.
struct EvalScale {
  int epochs = 15;
  int max_samples_per_epoch = 0;  // 0 = all
  uint64_t seed = 42;
  /// Learned methods are trained this many times with different seeds and
  /// reported as mean +/- std, like the paper's tables. Deterministic
  /// heuristics run once.
  int num_seeds = 3;
  /// Worker threads: parallelizes the (method x seed) comparison grid and
  /// is forwarded to each learned model's trainer. 1 (default) is the
  /// serial legacy path; 0 resolves to DefaultThreads(). Results are
  /// identical for any value — every run is independently seeded and lands
  /// at a fixed grid position.
  int threads = 1;
};

/// Method names in the paper's table order.
std::vector<std::string> AllMethodNames();

/// Factory for any method name returned by AllMethodNames(), plus the
/// ablation variants "M2G4RTP-two-step", "M2G4RTP-wo-aoi",
/// "M2G4RTP-wo-graph", "M2G4RTP-wo-uncertainty".
std::unique_ptr<RtpModel> CreateModel(const std::string& name,
                                      const EvalScale& scale);

}  // namespace m2g::eval

#endif  // M2G_EVAL_RTP_MODEL_H_
