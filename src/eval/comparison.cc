#include "eval/comparison.h"

#include <cmath>
#include <cstdio>
#include <memory>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "tensor/grad_mode.h"
#include "tensor/pool.h"

namespace m2g::eval {
namespace {

bool IsDeterministicHeuristic(const std::string& method) {
  return method == "Distance-Greedy" || method == "Time-Greedy" ||
         method == "OR-Tools";
}

/// One train+eval run of one method with one seed.
MethodResult RunOnce(const synth::DatasetSplits& splits,
                     const std::string& name, const EvalScale& scale) {
  std::unique_ptr<RtpModel> model = CreateModel(name, scale);
  Stopwatch fit_watch;
  model->Fit(splits.train, splits.val);
  MethodResult mr;
  mr.method = name;
  mr.fit_seconds = fit_watch.ElapsedSeconds();

  metrics::BucketedEvaluator evaluator;
  // Per-sample Predict timing through the shared latency histogram (the
  // same helper eval/latency.cc reads), replacing the old whole-loop
  // stopwatch — metric bookkeeping no longer pollutes the mean.
  obs::Histogram predict_hist(obs::DefaultLatencyBucketsMs());
  for (const synth::Sample& s : splits.test.samples) {
    // Inference-only loop: no-grad + per-sample arena, the serving
    // layer's request pattern (RtpService::Handle). Predictions are
    // bitwise-identical; the graph bookkeeping just disappears, which
    // matters now that Table III/V run this decode thousands of times.
    NoGradGuard no_grad;
    ArenaGuard request_arena;
    Stopwatch watch;
    core::RtpPrediction pred = model->Predict(s);
    predict_hist.Record(watch.ElapsedMillis());
    evaluator.AddSample(pred.location_route, s.route_label,
                        pred.location_times_min, s.time_label_min);
  }
  mr.predict_ms_mean = predict_hist.Snapshot().mean();
  for (int b = 0; b < metrics::kNumBuckets; ++b) {
    mr.buckets[b] = evaluator.Get(static_cast<metrics::Bucket>(b));
  }
  return mr;
}

/// Elementwise mean/std over per-seed bucket metrics.
void Aggregate(const std::vector<MethodResult>& runs, MethodResult* out) {
  const int s = static_cast<int>(runs.size());
  out->seeds = s;
  for (int b = 0; b < metrics::kNumBuckets; ++b) {
    out->buckets[b] = runs[0].buckets[b];  // copies the sample counts
    metrics::RouteTimeMetrics sum{}, sum_sq{};
    for (const MethodResult& run : runs) {
      const metrics::RouteTimeMetrics& rb = run.buckets[b];
      sum.hr3 += rb.hr3;
      sum.krc += rb.krc;
      sum.lsd += rb.lsd;
      sum.rmse += rb.rmse;
      sum.mae += rb.mae;
      sum.acc20 += rb.acc20;
      sum_sq.hr3 += rb.hr3 * rb.hr3;
      sum_sq.krc += rb.krc * rb.krc;
      sum_sq.lsd += rb.lsd * rb.lsd;
      sum_sq.rmse += rb.rmse * rb.rmse;
      sum_sq.mae += rb.mae * rb.mae;
      sum_sq.acc20 += rb.acc20 * rb.acc20;
    }
    metrics::RouteTimeMetrics* mean = &out->buckets[b];
    metrics::RouteTimeMetrics* std = &out->buckets_std[b];
    double* sums[6] = {&sum.hr3, &sum.krc, &sum.lsd,
                       &sum.rmse, &sum.mae, &sum.acc20};
    double* sqs[6] = {&sum_sq.hr3, &sum_sq.krc, &sum_sq.lsd,
                      &sum_sq.rmse, &sum_sq.mae, &sum_sq.acc20};
    double* means[6] = {&mean->hr3, &mean->krc, &mean->lsd,
                        &mean->rmse, &mean->mae, &mean->acc20};
    double* stds[6] = {&std->hr3, &std->krc, &std->lsd,
                       &std->rmse, &std->mae, &std->acc20};
    for (int k = 0; k < 6; ++k) {
      const double mu = *sums[k] / s;
      *means[k] = mu;
      const double var = std::max(0.0, *sqs[k] / s - mu * mu);
      *stds[k] = std::sqrt(var);
    }
  }
}

}  // namespace

const MethodResult* ComparisonResult::Find(const std::string& method) const {
  for (const MethodResult& m : methods) {
    if (m.method == method) return &m;
  }
  return nullptr;
}

ComparisonResult RunComparison(const synth::DatasetSplits& splits,
                               const std::vector<std::string>& methods,
                               const EvalScale& scale) {
  // Flatten the (method x seed) grid into independent cells so the whole
  // comparison can run data-parallel. Every cell is fully determined by
  // its (method, seed) pair and lands at a fixed position, so the result
  // is identical for any thread count.
  struct Cell {
    int method = 0;
    int seed = 0;
  };
  std::vector<std::vector<MethodResult>> runs(methods.size());
  std::vector<Cell> cells;
  for (size_t m = 0; m < methods.size(); ++m) {
    const int seeds = IsDeterministicHeuristic(methods[m])
                          ? 1
                          : std::max(1, scale.num_seeds);
    runs[m].resize(seeds);
    for (int s = 0; s < seeds; ++s) {
      cells.push_back({static_cast<int>(m), s});
    }
  }
  const auto run_cell = [&](const Cell& cell) {
    const std::string& name = methods[cell.method];
    EvalScale run_scale = scale;
    run_scale.seed = scale.seed + 1000 * static_cast<uint64_t>(cell.seed);
    M2G_LOG(Info) << "training + evaluating " << name << " (seed "
                  << cell.seed + 1 << "/" << runs[cell.method].size()
                  << ") ...";
    runs[cell.method][cell.seed] = RunOnce(splits, name, run_scale);
  };
  const int threads = ResolveThreads(scale.threads);
  if (threads == 1) {
    for (const Cell& cell : cells) run_cell(cell);
  } else {
    ThreadPool pool(threads);
    pool.ParallelFor(static_cast<int64_t>(cells.size()),
                     [&](int64_t i) { run_cell(cells[i]); });
  }
  ComparisonResult result;
  for (size_t m = 0; m < methods.size(); ++m) {
    double total_fit = 0;
    for (const MethodResult& run : runs[m]) total_fit += run.fit_seconds;
    MethodResult mr = runs[m].front();
    Aggregate(runs[m], &mr);
    mr.fit_seconds = total_fit;
    result.methods.push_back(std::move(mr));
  }
  return result;
}

Status SaveComparison(const ComparisonResult& result,
                      const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IoError("cannot write " + path);
  std::fprintf(f, "m2g-comparison-v2 %zu\n", result.methods.size());
  for (const MethodResult& m : result.methods) {
    std::fprintf(f, "%s\t%d\t%.6f\t%.6f\n", m.method.c_str(), m.seeds,
                 m.fit_seconds, m.predict_ms_mean);
    for (int b = 0; b < metrics::kNumBuckets; ++b) {
      const auto& mb = m.buckets[b];
      const auto& sb = m.buckets_std[b];
      std::fprintf(f,
                   "%d %.6f %.6f %.6f %.6f %.6f %.6f "
                   "%.6f %.6f %.6f %.6f %.6f %.6f\n",
                   mb.samples, mb.hr3, mb.krc, mb.lsd, mb.rmse, mb.mae,
                   mb.acc20, sb.hr3, sb.krc, sb.lsd, sb.rmse, sb.mae,
                   sb.acc20);
    }
  }
  std::fclose(f);
  return Status::Ok();
}

Result<ComparisonResult> LoadComparison(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::NotFound("no cache at " + path);
  char header[64];
  size_t count = 0;
  if (std::fscanf(f, "%63s %zu\n", header, &count) != 2 ||
      std::string(header) != "m2g-comparison-v2") {
    std::fclose(f);
    return Status::InvalidArgument("bad cache header in " + path);
  }
  ComparisonResult result;
  for (size_t i = 0; i < count; ++i) {
    MethodResult m;
    char name[128];
    if (std::fscanf(f, "%127[^\t]\t%d\t%lf\t%lf\n", name, &m.seeds,
                    &m.fit_seconds, &m.predict_ms_mean) != 4) {
      std::fclose(f);
      return Status::InvalidArgument("bad method record in " + path);
    }
    m.method = name;
    for (int b = 0; b < metrics::kNumBuckets; ++b) {
      auto& mb = m.buckets[b];
      auto& sb = m.buckets_std[b];
      if (std::fscanf(f,
                      "%d %lf %lf %lf %lf %lf %lf "
                      "%lf %lf %lf %lf %lf %lf\n",
                      &mb.samples, &mb.hr3, &mb.krc, &mb.lsd, &mb.rmse,
                      &mb.mae, &mb.acc20, &sb.hr3, &sb.krc, &sb.lsd,
                      &sb.rmse, &sb.mae, &sb.acc20) != 13) {
        std::fclose(f);
        return Status::InvalidArgument("bad bucket record in " + path);
      }
    }
    result.methods.push_back(std::move(m));
  }
  std::fclose(f);
  return result;
}

ComparisonResult RunOrLoadComparison(
    const synth::DatasetSplits& splits,
    const std::vector<std::string>& methods, const EvalScale& scale,
    const std::string& cache_path) {
  Result<ComparisonResult> cached = LoadComparison(cache_path);
  if (cached.ok()) {
    bool complete = true;
    for (const std::string& m : methods) {
      complete = complete && cached.value().Find(m) != nullptr;
    }
    if (complete) {
      M2G_LOG(Info) << "loaded comparison cache from " << cache_path;
      return std::move(cached).value();
    }
  }
  ComparisonResult result = RunComparison(splits, methods, scale);
  Status s = SaveComparison(result, cache_path);
  if (!s.ok()) {
    M2G_LOG(Warning) << "could not write cache: " << s.ToString();
  }
  return result;
}

namespace {

void PrintBucketHeader(const char* a, const char* b, const char* c) {
  std::printf("%-18s |%-42s|%-42s|%-42s\n", "",
              "              n in (3,10]", "              n in (10,20]",
              "                 all");
  std::printf("%-18s", "Method");
  for (int rep = 0; rep < 3; ++rep) {
    std::printf(" |%13s %13s %13s", a, b, c);
  }
  std::printf("\n");
  for (int i = 0; i < 18 + 3 * 43; ++i) std::printf("-");
  std::printf("\n");
}

std::string Cell(double mean, double std, int precision) {
  if (std > 0) {
    return StrFormat("%.*f±%.*f", precision, mean,
                     precision, std);
  }
  return StrFormat("%.*f", precision, mean);
}

}  // namespace

void PrintRouteTable(const ComparisonResult& result) {
  std::printf("Table III: Route Prediction Results (mean±std over seeds)\n");
  PrintBucketHeader("HR@3", "KRC", "LSD");
  for (const MethodResult& m : result.methods) {
    std::printf("%-18s", m.method.c_str());
    for (int b = 0; b < metrics::kNumBuckets; ++b) {
      std::printf(" |%13s %13s %13s",
                  Cell(m.buckets[b].hr3, m.buckets_std[b].hr3, 2).c_str(),
                  Cell(m.buckets[b].krc, m.buckets_std[b].krc, 3).c_str(),
                  Cell(m.buckets[b].lsd, m.buckets_std[b].lsd, 2).c_str());
    }
    std::printf("\n");
  }
}

void PrintTimeTable(const ComparisonResult& result) {
  std::printf("Table IV: Time Prediction Results (mean±std over seeds)\n");
  PrintBucketHeader("RMSE", "MAE", "acc@20");
  for (const MethodResult& m : result.methods) {
    std::printf("%-18s", m.method.c_str());
    for (int b = 0; b < metrics::kNumBuckets; ++b) {
      std::printf(
          " |%13s %13s %13s",
          Cell(m.buckets[b].rmse, m.buckets_std[b].rmse, 2).c_str(),
          Cell(m.buckets[b].mae, m.buckets_std[b].mae, 2).c_str(),
          Cell(m.buckets[b].acc20, m.buckets_std[b].acc20, 2).c_str());
    }
    std::printf("\n");
  }
}

}  // namespace m2g::eval
