#include "eval/case_study.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>

namespace m2g::eval {

std::vector<int> PickCaseStudySamples(const synth::Dataset& test, int count,
                                      int min_aois, int min_locations) {
  std::vector<int> candidates;
  for (int i = 0; i < test.size(); ++i) {
    const synth::Sample& s = test.samples[i];
    if (s.num_aois() >= min_aois && s.num_locations() >= min_locations) {
      candidates.push_back(i);
    }
  }
  // Prefer the longest multi-AOI routes (the hard cases of Figure 6).
  std::sort(candidates.begin(), candidates.end(), [&](int a, int b) {
    const synth::Sample& sa = test.samples[a];
    const synth::Sample& sb = test.samples[b];
    if (sa.num_aois() != sb.num_aois()) return sa.num_aois() > sb.num_aois();
    return sa.num_locations() > sb.num_locations();
  });
  if (static_cast<int>(candidates.size()) > count) {
    candidates.resize(count);
  }
  return candidates;
}

namespace {

int CountAoiBounces(const synth::Sample& sample,
                    const std::vector<int>& route) {
  // A "bounce" leaves an AOI that still has unvisited locations.
  std::vector<int> remaining(sample.num_aois(), 0);
  for (int aoi : sample.loc_to_aoi) remaining[aoi]++;
  int bounces = 0;
  for (size_t s = 0; s < route.size(); ++s) {
    const int aoi = sample.loc_to_aoi[route[s]];
    remaining[aoi]--;
    if (s + 1 < route.size()) {
      const int next_aoi = sample.loc_to_aoi[route[s + 1]];
      if (next_aoi != aoi && remaining[aoi] > 0) ++bounces;
    }
  }
  return bounces;
}

}  // namespace

CaseRendering RenderCase(const RtpModel& model,
                         const synth::Sample& sample) {
  CaseRendering r;
  r.method = model.name();
  core::RtpPrediction pred = model.Predict(sample);
  r.route = pred.location_route;
  r.times_min = pred.location_times_min;
  double sq = 0, abs_sum = 0;
  for (int i = 0; i < sample.num_locations(); ++i) {
    const double err = pred.location_times_min[i] - sample.time_label_min[i];
    sq += err * err;
    abs_sum += std::fabs(err);
  }
  r.rmse = std::sqrt(sq / sample.num_locations());
  r.mae = abs_sum / sample.num_locations();
  r.aoi_bounces = CountAoiBounces(sample, r.route);
  return r;
}

namespace {

void PrintRouteLine(const synth::Sample& sample, const char* label,
                    const std::vector<int>& route,
                    const std::vector<double>* times) {
  std::printf("  %-22s", label);
  for (int node : route) {
    std::printf(" %2d(A%d)", node, sample.loc_to_aoi[node]);
  }
  std::printf("\n");
  if (times != nullptr) {
    std::printf("  %-22s", "  arrival gaps (min)");
    for (int node : route) {
      std::printf(" %6.1f", (*times)[node]);
    }
    std::printf("\n");
  }
}

}  // namespace

void PrintCase(const synth::Sample& sample,
               const std::vector<CaseRendering>& renderings) {
  std::printf("Case: courier %d, %d locations in %d AOIs, weather=%d\n",
              sample.courier_id, sample.num_locations(), sample.num_aois(),
              sample.weather);
  PrintRouteLine(sample, "real route", sample.route_label,
                 &sample.time_label_min);
  std::printf("  real AOI bounces: %d\n",
              [&] {
                std::vector<int> remaining(sample.num_aois(), 0);
                for (int aoi : sample.loc_to_aoi) remaining[aoi]++;
                int bounces = 0;
                const auto& route = sample.route_label;
                for (size_t s = 0; s < route.size(); ++s) {
                  const int aoi = sample.loc_to_aoi[route[s]];
                  remaining[aoi]--;
                  if (s + 1 < route.size() &&
                      sample.loc_to_aoi[route[s + 1]] != aoi &&
                      remaining[aoi] > 0) {
                    ++bounces;
                  }
                }
                return bounces;
              }());
  for (const CaseRendering& r : renderings) {
    std::printf("-- %s (sample RMSE %.2f, MAE %.2f, AOI bounces %d)\n",
                r.method.c_str(), r.rmse, r.mae, r.aoi_bounces);
    PrintRouteLine(sample, "predicted route", r.route, &r.times_min);
  }
  std::printf("\n");
}

namespace {

std::vector<double> PerSampleKrc(const RtpModel& model,
                                 const synth::Dataset& test) {
  std::vector<double> out;
  out.reserve(test.samples.size());
  for (const synth::Sample& s : test.samples) {
    out.push_back(metrics::KendallRankCorrelation(
        model.Predict(s).location_route, s.route_label));
  }
  return out;
}

std::vector<double> PerSampleMae(const RtpModel& model,
                                 const synth::Dataset& test) {
  std::vector<double> out;
  out.reserve(test.samples.size());
  for (const synth::Sample& s : test.samples) {
    core::RtpPrediction pred = model.Predict(s);
    double abs_sum = 0;
    for (int i = 0; i < s.num_locations(); ++i) {
      abs_sum += std::fabs(pred.location_times_min[i] -
                           s.time_label_min[i]);
    }
    out.push_back(abs_sum / s.num_locations());
  }
  return out;
}

}  // namespace

metrics::PairedComparison PairedRouteComparison(
    const RtpModel& a, const RtpModel& b, const synth::Dataset& test) {
  return metrics::PairedBootstrap(PerSampleKrc(a, test),
                                  PerSampleKrc(b, test));
}

metrics::PairedComparison PairedTimeComparison(
    const RtpModel& a, const RtpModel& b, const synth::Dataset& test) {
  return metrics::PairedBootstrap(PerSampleMae(a, test),
                                  PerSampleMae(b, test));
}

}  // namespace m2g::eval
