#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace m2g {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> StrSplit(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string FixedCell(double value, int width, int precision) {
  return StrFormat("%*.*f", width, precision, value);
}

}  // namespace m2g
