#ifndef M2G_COMMON_LOGGING_H_
#define M2G_COMMON_LOGGING_H_

#include <sstream>
#include <string>
#include <string_view>

namespace m2g {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses "debug" / "info" / "warning" (or "warn") / "error"
/// (case-sensitive). Returns false and leaves *level untouched on an
/// unrecognized name.
bool ParseLogLevel(const std::string& name, LogLevel* level);

/// Destination for formatted log lines. `line` carries the full
/// "[LEVEL file:line] message" text without a trailing newline and is
/// only valid for the duration of the call. Write may be called from
/// any thread; implementations must be thread-safe.
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void Write(LogLevel level, std::string_view line) = 0;
};

/// Redirects log output to `sink` (nullptr restores the default stderr
/// behaviour). The sink must outlive all logging while installed —
/// install/uninstall around test bodies, not mid-flight.
void SetLogSink(LogSink* sink);
LogSink* GetLogSink();

namespace internal {

/// Stream-style log line, emitted to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace m2g

#define M2G_LOG(level)                                                     \
  ::m2g::internal::LogMessage(::m2g::LogLevel::k##level, __FILE__,         \
                              __LINE__)                                    \
      .stream()

#endif  // M2G_COMMON_LOGGING_H_
