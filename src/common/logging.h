#ifndef M2G_COMMON_LOGGING_H_
#define M2G_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace m2g {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log line, emitted to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace m2g

#define M2G_LOG(level)                                                     \
  ::m2g::internal::LogMessage(::m2g::LogLevel::k##level, __FILE__,         \
                              __LINE__)                                    \
      .stream()

#endif  // M2G_COMMON_LOGGING_H_
