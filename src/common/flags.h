#ifndef M2G_COMMON_FLAGS_H_
#define M2G_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace m2g {

/// Minimal command-line parser for the CLI tools:
///   prog <command> [--flag=value] [--flag value] [--bool-flag] [args...]
/// No registration step — callers query parsed flags with typed getters
/// and defaults.
class FlagParser {
 public:
  /// Parses argv[1..); argv[1] is the command when it does not start
  /// with "--".
  static Result<FlagParser> Parse(int argc, const char* const* argv);

  const std::string& command() const { return command_; }
  const std::vector<std::string>& positional() const { return positional_; }

  bool Has(const std::string& name) const;
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  int GetInt(const std::string& name, int default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  /// Names that were passed but never queried — typo detection.
  std::vector<std::string> UnqueriedFlags() const;

  /// Applies --log_level=debug|info|warning|error (--log-level also
  /// accepted) via SetLogLevel. Returns false when the flag is present
  /// but carries an unrecognized value; absent means true (no change).
  bool ApplyLogLevelFlag() const;

  /// Applies the observability knobs when present, leaving absent ones
  /// untouched: --obs_enabled=false (runtime kill switch),
  /// --trace_ring=N (flat span ring), --trace_tree_ring=N (trace-tree
  /// ring), --obs_head_sample=N (keep every Nth wide event),
  /// --obs_tail_ms=X (always keep wide events at/over X ms total).
  void ApplyObsFlags() const;

 private:
  std::string command_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
  mutable std::map<std::string, bool> queried_;
};

}  // namespace m2g

#endif  // M2G_COMMON_FLAGS_H_
