#ifndef M2G_COMMON_CHECK_H_
#define M2G_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// CHECK macros for programmer errors (violated invariants, misuse of an
/// internal API). They abort; recoverable conditions use Status instead.

#define M2G_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,         \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define M2G_CHECK_MSG(cond, msg)                                            \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,    \
                   __LINE__, #cond, msg);                                   \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define M2G_CHECK_EQ(a, b) M2G_CHECK((a) == (b))
#define M2G_CHECK_NE(a, b) M2G_CHECK((a) != (b))
#define M2G_CHECK_LT(a, b) M2G_CHECK((a) < (b))
#define M2G_CHECK_LE(a, b) M2G_CHECK((a) <= (b))
#define M2G_CHECK_GT(a, b) M2G_CHECK((a) > (b))
#define M2G_CHECK_GE(a, b) M2G_CHECK((a) >= (b))

/// Debug-only CHECKs for per-element hot paths (e.g. Matrix::At bounds).
/// They abort like M2G_CHECK in debug builds and compile to nothing under
/// -DNDEBUG, so Release kernels pay zero cost per access. The condition
/// is never evaluated in Release (it must be side-effect free).
#ifdef NDEBUG
#define M2G_DCHECK(cond) \
  do {                   \
  } while (false && (cond))
#else
#define M2G_DCHECK(cond) M2G_CHECK(cond)
#endif

#define M2G_DCHECK_EQ(a, b) M2G_DCHECK((a) == (b))
#define M2G_DCHECK_LT(a, b) M2G_DCHECK((a) < (b))
#define M2G_DCHECK_LE(a, b) M2G_DCHECK((a) <= (b))
#define M2G_DCHECK_GE(a, b) M2G_DCHECK((a) >= (b))

#endif  // M2G_COMMON_CHECK_H_
