#ifndef M2G_COMMON_CHECK_H_
#define M2G_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// CHECK macros for programmer errors (violated invariants, misuse of an
/// internal API). They abort; recoverable conditions use Status instead.

#define M2G_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,         \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define M2G_CHECK_MSG(cond, msg)                                            \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,    \
                   __LINE__, #cond, msg);                                   \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define M2G_CHECK_EQ(a, b) M2G_CHECK((a) == (b))
#define M2G_CHECK_NE(a, b) M2G_CHECK((a) != (b))
#define M2G_CHECK_LT(a, b) M2G_CHECK((a) < (b))
#define M2G_CHECK_LE(a, b) M2G_CHECK((a) <= (b))
#define M2G_CHECK_GT(a, b) M2G_CHECK((a) > (b))
#define M2G_CHECK_GE(a, b) M2G_CHECK((a) >= (b))

#endif  // M2G_COMMON_CHECK_H_
