#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace m2g {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  // Expand the seed through SplitMix64 as recommended by the xoshiro authors.
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

int Rng::UniformInt(int lo, int hi) {
  M2G_CHECK_LE(lo, hi);
  uint64_t range = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  return lo + static_cast<int>(NextUint64() % range);
}

double Rng::NextGaussian() {
  // Box-Muller; guard against log(0).
  double u1 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

double Rng::Exponential(double lambda) {
  M2G_CHECK_GT(lambda, 0.0);
  double u = NextDouble();
  if (u < 1e-300) u = 1e-300;
  return -std::log(u) / lambda;
}

int Rng::SampleIndex(const std::vector<double>& weights) {
  M2G_CHECK(!weights.empty());
  double total = 0;
  for (double w : weights) {
    M2G_CHECK_GE(w, 0.0);
    total += w;
  }
  M2G_CHECK_GT(total, 0.0);
  double r = NextDouble() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace m2g
