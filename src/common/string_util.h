#ifndef M2G_COMMON_STRING_UTIL_H_
#define M2G_COMMON_STRING_UTIL_H_

#include <string>
#include <vector>

namespace m2g {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Split `s` on `sep`, keeping empty fields.
std::vector<std::string> StrSplit(const std::string& s, char sep);

/// Join `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep);

/// Fixed-width numeric cell for table printing, e.g. "  3.14".
std::string FixedCell(double value, int width, int precision);

}  // namespace m2g

#endif  // M2G_COMMON_STRING_UTIL_H_
