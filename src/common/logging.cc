#include "common/logging.h"

#include <atomic>
#include <cstdio>

#include "obs/trace_context.h"

namespace m2g {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<LogSink*> g_sink{nullptr};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

bool ParseLogLevel(const std::string& name, LogLevel* level) {
  if (name == "debug") {
    *level = LogLevel::kDebug;
  } else if (name == "info") {
    *level = LogLevel::kInfo;
  } else if (name == "warning" || name == "warn") {
    *level = LogLevel::kWarning;
  } else if (name == "error") {
    *level = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

void SetLogSink(LogSink* sink) {
  g_sink.store(sink, std::memory_order_release);
}

LogSink* GetLogSink() { return g_sink.load(std::memory_order_acquire); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Strip the directory prefix for terser lines.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line;
  // Correlate log lines with the request trace working on this thread,
  // so a wide event / span tree and its logs join on one id.
  const obs::TraceContext ctx = obs::CurrentTraceContext();
  if (ctx.active()) stream_ << " trace=" << ctx.trace_id;
  stream_ << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::string line = stream_.str();
  if (LogSink* sink = g_sink.load(std::memory_order_acquire)) {
    sink->Write(level_, line);
    return;
  }
  line.push_back('\n');
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace internal
}  // namespace m2g
