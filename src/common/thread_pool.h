#ifndef M2G_COMMON_THREAD_POOL_H_
#define M2G_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace m2g {

/// Fixed-size pool of worker threads behind the execution layer (parallel
/// training batches, the eval comparison grid, concurrent request replay).
///
/// Dispatch model: the calling thread always participates, so a pool built
/// with `num_threads == 1` spawns no workers at all and runs everything
/// inline — exactly the serial code path. Work is split into contiguous
/// *shards* whose ranges depend only on (n, shards), never on scheduling,
/// so per-shard accumulators are deterministic for a fixed shard count no
/// matter which thread runs which shard. Nested parallel sections issued
/// from inside a pool task run inline on that worker instead of
/// re-entering the queue (no deadlock, no thread explosion).
class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers (the caller is the n-th thread).
  /// `num_threads <= 0` is clamped to 1.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Splits [0, n) into `shards` contiguous ranges (shard s covers
  /// [n*s/shards, n*(s+1)/shards)) and runs fn(shard, begin, end) for each,
  /// blocking until all complete. `shards <= 0` uses num_threads(); shards
  /// is clamped to n so no empty shard is dispatched.
  void ParallelForShards(
      int64_t n, int shards,
      const std::function<void(int shard, int64_t begin, int64_t end)>& fn);

  /// Element-wise convenience over ParallelForShards with num_threads()
  /// shards.
  void ParallelFor(int64_t n, const std::function<void(int64_t i)>& fn);

  /// True on any pool's worker thread (used to detect nesting).
  static bool InPoolWorker();

 private:
  struct Job;
  void WorkerLoop();

  int num_threads_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  /// One claim token per outstanding shard; workers pop a token and then
  /// claim shards from the job until it is drained.
  std::deque<std::shared_ptr<Job>> queue_;
};

/// Hardware concurrency, at least 1.
int HardwareThreads();

/// Process-wide default thread count used wherever a `threads` knob is
/// left at 0: an explicit SetDefaultThreads() value if set, else the
/// M2G_THREADS environment variable, else HardwareThreads().
int DefaultThreads();

/// Overrides DefaultThreads() (0 restores the env/hardware default).
void SetDefaultThreads(int threads);

/// Resolves a config knob: values >= 1 pass through, <= 0 means
/// DefaultThreads().
int ResolveThreads(int threads);

}  // namespace m2g

#endif  // M2G_COMMON_THREAD_POOL_H_
