#ifndef M2G_COMMON_STOPWATCH_H_
#define M2G_COMMON_STOPWATCH_H_

#include <chrono>

namespace m2g {

/// Monotonic wall-clock stopwatch used by the latency probes and trainers.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart();

  /// Elapsed time since construction / last Restart, in milliseconds.
  double ElapsedMillis() const;

  /// Elapsed time in seconds.
  double ElapsedSeconds() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace m2g

#endif  // M2G_COMMON_STOPWATCH_H_
