#ifndef M2G_COMMON_RNG_H_
#define M2G_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace m2g {

/// Deterministic, seedable PRNG (xoshiro256**). Every source of randomness
/// in the library flows through an explicitly constructed Rng so that a
/// fixed seed reproduces datasets, training runs and printed tables exactly.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit integer.
  uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int UniformInt(int lo, int hi);

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double NextGaussian();

  /// Gaussian with the given mean / stddev.
  double Gaussian(double mean, double stddev);

  /// Bernoulli draw.
  bool Bernoulli(double p);

  /// Exponential with the given rate lambda (> 0).
  double Exponential(double lambda);

  /// Index sampled proportionally to `weights` (non-negative, not all zero).
  int SampleIndex(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (int i = static_cast<int>(v->size()) - 1; i > 0; --i) {
      int j = UniformInt(0, i);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Derive an independent child stream (e.g., per-courier, per-day).
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace m2g

#endif  // M2G_COMMON_RNG_H_
