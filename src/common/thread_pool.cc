#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "common/check.h"
#include "obs/metrics.h"

namespace m2g {
namespace {

thread_local bool t_in_pool_worker = false;

std::atomic<int> g_default_threads{0};

/// Shared across every pool instance: outstanding shard tokens queued
/// behind any pool, and shards executed process-wide. The gauge is
/// updated under the pool mutex that already serializes queue changes.
obs::Gauge& QueueDepthGauge() {
  static obs::Gauge& gauge =
      obs::MetricsRegistry::Global().gauge("threadpool.queue_depth");
  return gauge;
}

obs::Counter& TasksExecutedCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().counter("threadpool.tasks_executed");
  return counter;
}

}  // namespace

/// One ParallelForShards call. Shards are claimed with an atomic counter,
/// so any mix of workers and the calling thread can drain the job; `done`
/// (mutex-guarded) signals completion back to the caller.
struct ThreadPool::Job {
  std::function<void(int, int64_t, int64_t)> fn;
  int shards = 0;
  int64_t n = 0;
  std::atomic<int> next{0};
  int done = 0;
  std::mutex m;
  std::condition_variable done_cv;

  /// Claims and runs one shard; false when the job is drained.
  bool RunOne() {
    const int s = next.fetch_add(1, std::memory_order_relaxed);
    if (s >= shards) return false;
    TasksExecutedCounter().Increment();
    fn(s, n * s / shards, n * (s + 1) / shards);
    {
      std::lock_guard<std::mutex> lock(m);
      ++done;
    }
    done_cv.notify_all();
    return true;
  }
};

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  // Touch the shared metrics up front so they exist in exports even for
  // pools that never enqueue (serial pools, inline nested sections).
  QueueDepthGauge();
  TasksExecutedCounter();
  workers_.reserve(num_threads_ - 1);
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  t_in_pool_worker = true;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      job = std::move(queue_.front());
      queue_.pop_front();
      // Delta updates so concurrent pools aggregate into one depth.
      QueueDepthGauge().Add(-1.0);
    }
    while (job->RunOne()) {
    }
  }
}

void ThreadPool::ParallelForShards(
    int64_t n, int shards,
    const std::function<void(int shard, int64_t begin, int64_t end)>& fn) {
  if (n <= 0) return;
  if (shards <= 0) shards = num_threads_;
  shards = static_cast<int>(std::min<int64_t>(shards, n));
  // Serial pool, single shard, or nested call from a worker: run inline.
  if (shards == 1 || workers_.empty() || InPoolWorker()) {
    for (int s = 0; s < shards; ++s) {
      fn(s, n * s / shards, n * (s + 1) / shards);
    }
    return;
  }
  auto job = std::make_shared<Job>();
  job->fn = fn;
  job->shards = shards;
  job->n = n;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // The caller claims shards too, so shards - 1 tokens suffice.
    for (int s = 1; s < shards; ++s) queue_.push_back(job);
    QueueDepthGauge().Add(static_cast<double>(shards - 1));
  }
  cv_.notify_all();
  while (job->RunOne()) {
  }
  std::unique_lock<std::mutex> lock(job->m);
  job->done_cv.wait(lock, [&job] { return job->done == job->shards; });
}

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t i)>& fn) {
  ParallelForShards(n, 0, [&fn](int, int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) fn(i);
  });
}

bool ThreadPool::InPoolWorker() { return t_in_pool_worker; }

int HardwareThreads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

int DefaultThreads() {
  const int set = g_default_threads.load(std::memory_order_relaxed);
  if (set > 0) return set;
  if (const char* env = std::getenv("M2G_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return HardwareThreads();
}

void SetDefaultThreads(int threads) {
  g_default_threads.store(threads > 0 ? threads : 0,
                          std::memory_order_relaxed);
}

int ResolveThreads(int threads) {
  return threads >= 1 ? threads : DefaultThreads();
}

}  // namespace m2g
