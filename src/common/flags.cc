#include "common/flags.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/wide_event.h"

namespace m2g {

Result<FlagParser> FlagParser::Parse(int argc, const char* const* argv) {
  FlagParser parser;
  int i = 1;
  if (i < argc && argv[i][0] != '-') {
    parser.command_ = argv[i];
    ++i;
  }
  for (; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      parser.positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    if (arg.empty()) {
      return Status::InvalidArgument("bare '--' is not a valid flag");
    }
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      parser.flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && argv[i + 1][0] != '-') {
      parser.flags_[arg] = argv[i + 1];
      ++i;
    } else {
      parser.flags_[arg] = "true";  // boolean flag
    }
  }
  return parser;
}

bool FlagParser::Has(const std::string& name) const {
  queried_[name] = true;
  return flags_.count(name) > 0;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& default_value) const {
  queried_[name] = true;
  auto it = flags_.find(name);
  return it == flags_.end() ? default_value : it->second;
}

int FlagParser::GetInt(const std::string& name, int default_value) const {
  queried_[name] = true;
  auto it = flags_.find(name);
  return it == flags_.end() ? default_value : std::atoi(it->second.c_str());
}

double FlagParser::GetDouble(const std::string& name,
                             double default_value) const {
  queried_[name] = true;
  auto it = flags_.find(name);
  return it == flags_.end() ? default_value : std::atof(it->second.c_str());
}

bool FlagParser::GetBool(const std::string& name, bool default_value) const {
  queried_[name] = true;
  auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

bool FlagParser::ApplyLogLevelFlag() const {
  std::string name = GetString("log_level", "");
  if (name.empty()) name = GetString("log-level", "");
  if (name.empty()) return true;
  LogLevel level;
  if (!ParseLogLevel(name, &level)) return false;
  SetLogLevel(level);
  return true;
}

void FlagParser::ApplyObsFlags() const {
  if (Has("obs_enabled")) obs::SetEnabled(GetBool("obs_enabled", true));
  if (Has("trace_ring")) {
    obs::SetTraceRingCapacity(
        static_cast<size_t>(std::max(0, GetInt("trace_ring", 256))));
  }
  if (Has("trace_tree_ring")) {
    obs::SetTraceTreeRingCapacity(
        static_cast<size_t>(std::max(0, GetInt("trace_tree_ring", 64))));
  }
  if (Has("obs_head_sample") || Has("obs_tail_ms")) {
    obs::WideEventOptions options = obs::WideEventSink::Global().options();
    options.head_sample_every =
        GetInt("obs_head_sample", options.head_sample_every);
    options.tail_keep_over_ms =
        GetDouble("obs_tail_ms", options.tail_keep_over_ms);
    obs::WideEventSink::Global().Configure(options);
  }
}

std::vector<std::string> FlagParser::UnqueriedFlags() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : flags_) {
    (void)value;
    if (queried_.find(name) == queried_.end()) out.push_back(name);
  }
  return out;
}

}  // namespace m2g
