#ifndef M2G_COMMON_STATUS_H_
#define M2G_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace m2g {

/// Error categories used across the library. The set is deliberately small:
/// a reproduction library does not need RocksDB's full taxonomy, only enough
/// to route "caller bug" vs "bad input" vs "I/O problem".
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kFailedPrecondition,
  kInternal,
};

/// Arrow/RocksDB-style status object. Library code never throws; fallible
/// public entry points return `Status` or `Result<T>`.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" string, "OK" for success.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Value-or-Status. `ok()` must be checked before `value()`.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): deliberate, mirrors absl.
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : value_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(value_); }
  const T& value() const& { return std::get<T>(value_); }
  T& value() & { return std::get<T>(value_); }
  T&& value() && { return std::get<T>(std::move(value_)); }
  Status status() const {
    return ok() ? Status::Ok() : std::get<Status>(value_);
  }

 private:
  std::variant<T, Status> value_;
};

}  // namespace m2g

/// Propagate a non-OK Status out of the current function.
#define M2G_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::m2g::Status _s = (expr);               \
    if (!_s.ok()) return _s;                 \
  } while (0)

#endif  // M2G_COMMON_STATUS_H_
