#include "common/stopwatch.h"

namespace m2g {

void Stopwatch::Restart() { start_ = std::chrono::steady_clock::now(); }

double Stopwatch::ElapsedMillis() const {
  auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(now - start_).count();
}

double Stopwatch::ElapsedSeconds() const { return ElapsedMillis() / 1000.0; }

}  // namespace m2g
