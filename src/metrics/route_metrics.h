#ifndef M2G_METRICS_ROUTE_METRICS_H_
#define M2G_METRICS_ROUTE_METRICS_H_

#include <vector>

namespace m2g::metrics {

/// HR@k (Eq. 42): fraction of the first k predicted items that appear in
/// the first k items of the label. Both sequences are permutations of the
/// same node set; k is clamped to the sequence length.
double HitRate(const std::vector<int>& predicted,
               const std::vector<int>& label, int k);

/// Kendall Rank Correlation (Eq. 43) between the predicted and true visit
/// orders. Both are permutations of {0..n-1} expressed as visit sequences.
/// Returns a value in [-1, 1]; 1 for identical order.
double KendallRankCorrelation(const std::vector<int>& predicted,
                              const std::vector<int>& label);

/// Location Square Deviation (Eq. 44): mean squared difference between
/// each node's predicted and true positions in the route.
double LocationSquareDeviation(const std::vector<int>& predicted,
                               const std::vector<int>& label);

/// True if `perm` is a permutation of {0..n-1}.
bool IsPermutation(const std::vector<int>& perm, int n);

}  // namespace m2g::metrics

#endif  // M2G_METRICS_ROUTE_METRICS_H_
