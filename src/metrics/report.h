#ifndef M2G_METRICS_REPORT_H_
#define M2G_METRICS_REPORT_H_

#include <string>
#include <vector>

#include "metrics/route_metrics.h"
#include "metrics/time_metrics.h"

namespace m2g::metrics {

/// The paper's evaluation buckets: n in (3,10], n in (10,20], and all.
/// (Samples with n == 3 land in the short bucket; the generator enforces
/// n >= 3 so the open lower bound is moot.)
enum class Bucket { kShort = 0, kLong = 1, kAll = 2 };
inline constexpr int kNumBuckets = 3;

const char* BucketName(Bucket bucket);

/// One row of Table III + Table IV for one method and bucket.
struct RouteTimeMetrics {
  int samples = 0;
  double hr3 = 0;    // percent
  double krc = 0;
  double lsd = 0;
  double rmse = 0;   // minutes
  double mae = 0;    // minutes
  double acc20 = 0;  // percent
};

/// Accumulates per-sample predictions into the three buckets. Route metrics
/// are macro-averaged over samples; time metrics are pooled over locations
/// (Eq. 45 sums over all predictions).
class BucketedEvaluator {
 public:
  BucketedEvaluator();

  void AddSample(const std::vector<int>& predicted_route,
                 const std::vector<int>& label_route,
                 const std::vector<double>& predicted_minutes,
                 const std::vector<double>& label_minutes);

  RouteTimeMetrics Get(Bucket bucket) const;

 private:
  struct Accum {
    int samples = 0;
    double hr3_sum = 0;
    double krc_sum = 0;
    double lsd_sum = 0;
    TimeMetricAccumulator time{20.0};
  };
  Accum accums_[kNumBuckets];
};

}  // namespace m2g::metrics

#endif  // M2G_METRICS_REPORT_H_
