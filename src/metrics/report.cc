#include "metrics/report.h"

#include "common/check.h"

namespace m2g::metrics {

const char* BucketName(Bucket bucket) {
  switch (bucket) {
    case Bucket::kShort:
      return "n in (3,10]";
    case Bucket::kLong:
      return "n in (10,20]";
    case Bucket::kAll:
      return "all";
  }
  return "?";
}

BucketedEvaluator::BucketedEvaluator() = default;

void BucketedEvaluator::AddSample(
    const std::vector<int>& predicted_route,
    const std::vector<int>& label_route,
    const std::vector<double>& predicted_minutes,
    const std::vector<double>& label_minutes) {
  const int n = static_cast<int>(label_route.size());
  M2G_CHECK_EQ(predicted_route.size(), label_route.size());
  M2G_CHECK_EQ(predicted_minutes.size(), label_minutes.size());
  M2G_CHECK_MSG(IsPermutation(predicted_route, n),
                "predicted route is not a permutation");
  M2G_CHECK_MSG(IsPermutation(label_route, n),
                "label route is not a permutation");

  const double hr3 = 100.0 * HitRate(predicted_route, label_route, 3);
  const double krc = KendallRankCorrelation(predicted_route, label_route);
  const double lsd = LocationSquareDeviation(predicted_route, label_route);

  const Bucket size_bucket = n <= 10 ? Bucket::kShort : Bucket::kLong;
  for (Bucket b : {size_bucket, Bucket::kAll}) {
    Accum& a = accums_[static_cast<int>(b)];
    a.samples++;
    a.hr3_sum += hr3;
    a.krc_sum += krc;
    a.lsd_sum += lsd;
    a.time.AddAll(predicted_minutes, label_minutes);
  }
}

RouteTimeMetrics BucketedEvaluator::Get(Bucket bucket) const {
  const Accum& a = accums_[static_cast<int>(bucket)];
  RouteTimeMetrics m;
  m.samples = a.samples;
  if (a.samples > 0) {
    m.hr3 = a.hr3_sum / a.samples;
    m.krc = a.krc_sum / a.samples;
    m.lsd = a.lsd_sum / a.samples;
  }
  m.rmse = a.time.Rmse();
  m.mae = a.time.Mae();
  m.acc20 = a.time.AccAtTau();
  return m;
}

}  // namespace m2g::metrics
