#include "metrics/route_metrics.h"

#include <algorithm>

#include "common/check.h"

namespace m2g::metrics {
namespace {

/// positions[node] = rank of `node` in the sequence.
std::vector<int> Positions(const std::vector<int>& seq) {
  std::vector<int> pos(seq.size(), -1);
  for (size_t r = 0; r < seq.size(); ++r) {
    M2G_CHECK(seq[r] >= 0 && seq[r] < static_cast<int>(seq.size()));
    M2G_CHECK_MSG(pos[seq[r]] == -1, "sequence repeats a node");
    pos[seq[r]] = static_cast<int>(r);
  }
  return pos;
}

}  // namespace

bool IsPermutation(const std::vector<int>& perm, int n) {
  if (static_cast<int>(perm.size()) != n) return false;
  std::vector<bool> seen(n, false);
  for (int v : perm) {
    if (v < 0 || v >= n || seen[v]) return false;
    seen[v] = true;
  }
  return true;
}

double HitRate(const std::vector<int>& predicted,
               const std::vector<int>& label, int k) {
  M2G_CHECK_EQ(predicted.size(), label.size());
  M2G_CHECK(!label.empty());
  const int kk = std::min<int>(k, static_cast<int>(label.size()));
  int hits = 0;
  for (int i = 0; i < kk; ++i) {
    for (int j = 0; j < kk; ++j) {
      if (predicted[i] == label[j]) {
        ++hits;
        break;
      }
    }
  }
  return static_cast<double>(hits) / kk;
}

double KendallRankCorrelation(const std::vector<int>& predicted,
                              const std::vector<int>& label) {
  M2G_CHECK_EQ(predicted.size(), label.size());
  const int n = static_cast<int>(label.size());
  if (n < 2) return 1.0;
  std::vector<int> pred_pos = Positions(predicted);
  std::vector<int> true_pos = Positions(label);
  int64_t concordant = 0, discordant = 0;
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      const int dp = pred_pos[a] - pred_pos[b];
      const int dt = true_pos[a] - true_pos[b];
      if ((dp > 0) == (dt > 0)) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  return static_cast<double>(concordant - discordant) /
         static_cast<double>(concordant + discordant);
}

double LocationSquareDeviation(const std::vector<int>& predicted,
                               const std::vector<int>& label) {
  M2G_CHECK_EQ(predicted.size(), label.size());
  M2G_CHECK(!label.empty());
  std::vector<int> pred_pos = Positions(predicted);
  std::vector<int> true_pos = Positions(label);
  double sum = 0;
  for (size_t i = 0; i < label.size(); ++i) {
    const double d = pred_pos[i] - true_pos[i];
    sum += d * d;
  }
  return sum / static_cast<double>(label.size());
}

}  // namespace m2g::metrics
