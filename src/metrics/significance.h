#ifndef M2G_METRICS_SIGNIFICANCE_H_
#define M2G_METRICS_SIGNIFICANCE_H_

#include <cstdint>
#include <vector>

namespace m2g::metrics {

/// Paired bootstrap comparison of two methods evaluated on the same
/// samples (e.g. per-sample KRC of M2G4RTP vs Graph2Route). Use this to
/// decide whether a table margin is real at a given test-set size.
struct PairedComparison {
  int samples = 0;
  double mean_a = 0;
  double mean_b = 0;
  double mean_diff = 0;      // mean(a - b)
  double diff_ci_low = 0;    // 95% bootstrap CI of the difference
  double diff_ci_high = 0;
  /// Two-sided bootstrap p-value for H0: mean difference == 0.
  double p_value = 1.0;
};

/// `a[i]` and `b[i]` must be the two methods' metric on the *same* i-th
/// sample. `resamples` bootstrap draws (>= 100).
PairedComparison PairedBootstrap(const std::vector<double>& a,
                                 const std::vector<double>& b,
                                 int resamples = 10000,
                                 uint64_t seed = 1234);

}  // namespace m2g::metrics

#endif  // M2G_METRICS_SIGNIFICANCE_H_
