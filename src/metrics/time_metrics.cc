#include "metrics/time_metrics.h"

#include <cmath>

#include "common/check.h"

namespace m2g::metrics {

void TimeMetricAccumulator::Add(double predicted_min, double actual_min) {
  const double err = predicted_min - actual_min;
  ++count_;
  sum_sq_ += err * err;
  sum_abs_ += std::fabs(err);
  if (std::fabs(err) < tau_) ++within_tau_;
}

void TimeMetricAccumulator::AddAll(const std::vector<double>& predicted,
                                   const std::vector<double>& actual) {
  M2G_CHECK_EQ(predicted.size(), actual.size());
  for (size_t i = 0; i < predicted.size(); ++i) {
    Add(predicted[i], actual[i]);
  }
}

double TimeMetricAccumulator::Rmse() const {
  if (count_ == 0) return 0;
  return std::sqrt(sum_sq_ / static_cast<double>(count_));
}

double TimeMetricAccumulator::Mae() const {
  if (count_ == 0) return 0;
  return sum_abs_ / static_cast<double>(count_);
}

double TimeMetricAccumulator::AccAtTau() const {
  if (count_ == 0) return 0;
  return 100.0 * static_cast<double>(within_tau_) /
         static_cast<double>(count_);
}

}  // namespace m2g::metrics
