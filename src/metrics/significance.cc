#include "metrics/significance.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"

namespace m2g::metrics {

PairedComparison PairedBootstrap(const std::vector<double>& a,
                                 const std::vector<double>& b,
                                 int resamples, uint64_t seed) {
  M2G_CHECK_EQ(a.size(), b.size());
  M2G_CHECK(!a.empty());
  M2G_CHECK_GE(resamples, 100);
  const int n = static_cast<int>(a.size());

  PairedComparison out;
  out.samples = n;
  std::vector<double> diff(n);
  for (int i = 0; i < n; ++i) {
    out.mean_a += a[i];
    out.mean_b += b[i];
    diff[i] = a[i] - b[i];
    out.mean_diff += diff[i];
  }
  out.mean_a /= n;
  out.mean_b /= n;
  out.mean_diff /= n;

  Rng rng(seed);
  std::vector<double> boot_means(resamples);
  int sign_flips = 0;
  for (int r = 0; r < resamples; ++r) {
    double sum = 0;
    for (int i = 0; i < n; ++i) sum += diff[rng.UniformInt(0, n - 1)];
    boot_means[r] = sum / n;
    // Count resamples whose mean lies on the other side of zero from the
    // observed mean (or exactly zero): basis of the two-sided p-value.
    if (out.mean_diff >= 0 ? boot_means[r] <= 0 : boot_means[r] >= 0) {
      ++sign_flips;
    }
  }
  std::sort(boot_means.begin(), boot_means.end());
  const int lo = static_cast<int>(0.025 * resamples);
  const int hi = std::min(resamples - 1,
                          static_cast<int>(0.975 * resamples));
  out.diff_ci_low = boot_means[lo];
  out.diff_ci_high = boot_means[hi];
  out.p_value = std::min(
      1.0, 2.0 * (static_cast<double>(sign_flips) + 1.0) / (resamples + 1));
  return out;
}

}  // namespace m2g::metrics
