#ifndef M2G_METRICS_TIME_METRICS_H_
#define M2G_METRICS_TIME_METRICS_H_

#include <cstdint>
#include <vector>

namespace m2g::metrics {

/// Streaming accumulator for the Eq. 45 time metrics: RMSE, MAE and
/// acc@τ (fraction of predictions within τ minutes of the truth).
class TimeMetricAccumulator {
 public:
  explicit TimeMetricAccumulator(double tau_minutes = 20.0)
      : tau_(tau_minutes) {}

  void Add(double predicted_min, double actual_min);
  void AddAll(const std::vector<double>& predicted,
              const std::vector<double>& actual);

  int64_t count() const { return count_; }
  double Rmse() const;
  double Mae() const;
  /// In percent, like the paper's acc@20 column.
  double AccAtTau() const;

 private:
  double tau_;
  int64_t count_ = 0;
  double sum_sq_ = 0;
  double sum_abs_ = 0;
  int64_t within_tau_ = 0;
};

}  // namespace m2g::metrics

#endif  // M2G_METRICS_TIME_METRICS_H_
