#ifndef M2G_TENSOR_GRAD_MODE_H_
#define M2G_TENSOR_GRAD_MODE_H_

namespace m2g {

/// Thread-local autograd switch. While disabled, every op in tensor/ops.h
/// computes its forward value exactly as before (bitwise-identical output)
/// but skips parent wiring, requires_grad propagation and the backward
/// closure — pure inference pays no autograd cost. The flag is
/// thread-local so a serving thread running under NoGradGuard never
/// affects a training thread building a graph concurrently.
class GradMode {
 public:
  static bool enabled();
  static void set_enabled(bool enabled);
};

/// RAII guard disabling gradient construction on the current thread for
/// its scope (restores the previous mode on destruction; guards nest).
class NoGradGuard {
 public:
  NoGradGuard() : prev_(GradMode::enabled()) { GradMode::set_enabled(false); }
  ~NoGradGuard() { GradMode::set_enabled(prev_); }

  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool prev_;
};

}  // namespace m2g

#endif  // M2G_TENSOR_GRAD_MODE_H_
