#ifndef M2G_TENSOR_TENSOR_H_
#define M2G_TENSOR_TENSOR_H_

#include <functional>
#include <memory>
#include <vector>

#include "tensor/matrix.h"

namespace m2g {

namespace internal {

/// One node in a dynamically built reverse-mode autograd graph. Nodes own
/// shared pointers to their parents (a DAG, children -> parents), so when
/// the loss tensor goes out of scope the per-sample graph is freed while
/// long-lived parameter leaves survive inside their modules.
struct TensorNode {
  Matrix value;
  Matrix grad;  // lazily allocated, same shape as `value`
  bool requires_grad = false;
  std::vector<std::shared_ptr<TensorNode>> parents;
  /// Accumulates this node's grad into its parents' grads.
  std::function<void(TensorNode*)> backward_fn;
  /// Monotonic creation id, used for a deterministic topological order.
  uint64_t id = 0;

  /// A trainable leaf shared across concurrently built graphs (as opposed
  /// to a thread-private op output).
  bool IsParameterLeaf() const { return requires_grad && parents.empty(); }

  /// Gradient accumulation target for this node. Normally the lazily
  /// allocated `grad` field; for parameter leaves on a thread with an
  /// active GradBufferScope (data-parallel training), a per-thread buffer
  /// instead, so concurrent Backward() calls never race on shared leaves.
  Matrix& EnsureGrad();
};

}  // namespace internal

/// Value handle for the autograd engine. Copying a Tensor copies the handle,
/// not the data. A default-constructed Tensor is null (`defined() == false`).
class Tensor {
 public:
  Tensor() = default;

  /// Wraps a constant (no gradient flows into it).
  static Tensor Constant(Matrix value);
  /// Wraps a trainable leaf; its grad accumulates across Backward calls
  /// until the optimizer zeroes it.
  static Tensor Parameter(Matrix value);
  /// Scalar constant shorthand.
  static Tensor Scalar(float value);

  bool defined() const { return node_ != nullptr; }
  int rows() const {
    CheckDefined();
    return node_->value.rows();
  }
  int cols() const {
    CheckDefined();
    return node_->value.cols();
  }
  const Matrix& value() const {
    CheckDefined();
    return node_->value;
  }
  Matrix& mutable_value() {
    CheckDefined();
    return node_->value;
  }
  const Matrix& grad() const {
    CheckDefined();
    return node_->grad;
  }
  bool requires_grad() const {
    CheckDefined();
    return node_->requires_grad;
  }
  /// Scalar read; requires shape (1,1).
  float item() const;

  /// Runs reverse-mode autodiff from this scalar (1x1) tensor. Gradients
  /// accumulate (+=) into every reachable leaf with requires_grad.
  void Backward() const;

  /// Drops / (re)zeroes the gradient buffer of this leaf.
  void ZeroGrad() const;

  /// Internal: used by op implementations.
  const std::shared_ptr<internal::TensorNode>& node() const { return node_; }
  static Tensor FromNode(std::shared_ptr<internal::TensorNode> node);

 private:
  void CheckDefined() const {
    M2G_CHECK_MSG(node_ != nullptr,
                  "accessor called on a null (default-constructed) Tensor");
  }

  std::shared_ptr<internal::TensorNode> node_;
};

namespace internal {
/// Allocates a node with a fresh id. Op implementations use this.
std::shared_ptr<TensorNode> NewNode(Matrix value);
}  // namespace internal

}  // namespace m2g

#endif  // M2G_TENSOR_TENSOR_H_
