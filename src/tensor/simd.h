#ifndef M2G_TENSOR_SIMD_H_
#define M2G_TENSOR_SIMD_H_

#include <cstddef>

namespace m2g::simd {

// ---------------------------------------------------------------------------
// Runtime-dispatched SIMD kernel tier.
//
// Every hot path in the library (encode/decode fast paths, training
// matmuls, the LSTM gate block) bottoms out in the handful of row kernels
// below. They are implemented three times in tensor/simd.cc — scalar,
// SSE2, AVX2 — with per-function target attributes (no global -march
// change), and the best tier the CPU supports is selected once at
// startup via CPUID.
//
// The parity contract every implementation obeys:
//   * vectorize only across *independent* output elements (columns of
//     one output row, elements of one elementwise array) — never across
//     the reduction dimension;
//   * keep each output element's terms in the canonical ascending-p
//     accumulation order, one add at a time;
//   * use separate multiply and add instructions (the SIMD translation
//     unit is compiled with -ffp-contract=off and the target attributes
//     deliberately exclude "fma", so no fused-multiply-add can be
//     emitted).
// Under round-to-nearest, lane l of a mulps/addps pair computes exactly
// what the scalar mulss/addss pair computes on element l, so every tier
// is bit-for-bit identical to the scalar reference (simd_parity_test
// pins this on ragged shapes, denormals, and ±inf/NaN inputs).
//
// Overrides, in precedence order:
//   * M2G_SIMD environment variable, read once at first kernel use:
//     "off"/"scalar", "sse2", "avx2", or "auto" (the default). Requests
//     above the detected tier clamp down with a warning.
//   * SetTier() — used by core::ModelConfig::simd_kernels (the config
//     kill switch) and by tests/benches to force a tier at runtime.
// The active tier is exported as the tensor.simd_tier gauge (detected
// tier as tensor.simd_tier_detected, SetTier calls as the
// tensor.simd.tier_sets counter) and surfaces in /healthz and wide
// events via the serving layer.
// ---------------------------------------------------------------------------

/// Dispatch tiers, ordered: a higher tier strictly extends the ISA of
/// the lower ones. The numeric values are what the tensor.simd_tier
/// gauge exports.
enum class Tier : int { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// Best tier this CPU supports (CPUID, cached). Always kScalar on
/// non-x86 builds.
Tier DetectedTier();

/// The tier kernels currently dispatch to (after env/config overrides).
Tier ActiveTier();

/// Forces the dispatch tier, clamped to DetectedTier() (requesting AVX2
/// on an SSE2-only host selects SSE2). Thread-safe; outputs are
/// bitwise-identical across tiers, so switching mid-run is harmless.
void SetTier(Tier tier);

/// Maps "off"/"scalar" -> kScalar, "sse2" -> kSse2, "avx2" -> kAvx2
/// (case-sensitive, as the M2G_SIMD values documented above). Returns
/// false — leaving *out untouched — for anything else, including "auto".
bool ParseTierName(const char* name, Tier* out);

/// "scalar", "sse2", or "avx2".
const char* TierName(Tier tier);

// --- Dispatched kernels -----------------------------------------------------
// These are the vector-width-sensitive inner loops; the callable
// entry points the rest of the library uses (AccumulateRowMatMul,
// GatLogitsRow, AffineRaw, ...) live in tensor/matrix.h and forward
// here. Callers, not these kernels, own path selection: DenseRowMatMul
// is only reached after the zero-scan chose the dense path.

/// out_row[j] += sum_p x[p] * b[p*m + j], terms in ascending-p order per
/// output element, no zero-skip (the caller's zero-scan guaranteed the
/// scanned prefix is zero-free; any unscanned zero contributes a ±0.0
/// term, which is bitwise-neutral — see AccumulateRowMatMul).
void DenseRowMatMul(const float* x, int k, const float* b, int m,
                    float* out_row);

/// logits[j] = LeakyRelu((s_dst[j] + s_edge_row[j]) + s_src_i), the
/// GAT-e attention-logit row (tensor/matrix.h GatLogitsRow forwards
/// here). The vector form selects pre > 0 ? pre : slope * pre per lane
/// with a compare + blend, matching the scalar ternary bit for bit
/// (NaN compares false and propagates through slope * pre, exactly as
/// the scalar branch does).
void GatLogitsRow(const float* s_dst, const float* s_edge_row, float s_src_i,
                  float slope, int n, float* logits);

/// a[i] += b[i] for n independent elements (Matrix::AddInPlace, the
/// row-broadcast bias adds, and the LSTM gate pre-activation block).
void AddInPlace(float* a, const float* b, size_t n);

/// a[i] = a[i] > 0 ? a[i] : 0.0f for n independent elements (the fused
/// activation tail of AffineRaw). The vector form ands the input with
/// its a > 0 compare mask: false lanes (including NaN and -0.0) become
/// +0.0, exactly the scalar ternary's 0.0f.
void ReluInPlace(float* a, size_t n);

}  // namespace m2g::simd

#endif  // M2G_TENSOR_SIMD_H_
