#include "tensor/pool.h"

#include <atomic>
#include <cstring>
#include <new>
#include <vector>

#include "common/check.h"
#include "obs/metrics.h"

namespace m2g {
namespace {

/// Size classes are powers of two, smallest 8 floats (32 B): shapes here
/// are tiny (n <= ~80 nodes, d <= ~128 hidden), so a request touches a
/// handful of classes and the rounding waste is bounded at 2x.
constexpr int kMinClassLog2 = 3;
constexpr int kNumClasses = 40;

size_t ClassCapacity(int c) { return size_t{1} << (kMinClassLog2 + c); }

int ClassFor(size_t n) {
  int c = 0;
  while (ClassCapacity(c) < n) ++c;
  M2G_CHECK_LT(c, kNumClasses);
  return c;
}

int ClassFromCapacity(size_t capacity) {
  int c = 0;
  while (ClassCapacity(c) != capacity) {
    ++c;
    M2G_CHECK_LT(c, kNumClasses);
  }
  return c;
}

struct PoolTls {
  std::vector<float*> free_lists[kNumClasses];
  TensorPool::Stats stats;
  int arena_depth = 0;

  ~PoolTls() {
    for (auto& list : free_lists) {
      for (float* p : list) ::operator delete(p);
      list.clear();
    }
  }
};

PoolTls& Tls() {
  thread_local PoolTls tls;
  return tls;
}

std::atomic<bool> g_pool_enabled{true};
std::atomic<uint64_t> g_arena_hits{0};
std::atomic<uint64_t> g_arena_misses{0};

/// Folds the arena hit/miss totals into the telemetry registry as
/// pull-time gauges: the values live in the atomics above (written on
/// outermost arena exit), so exports see them with zero extra cost on
/// the allocation hot path.
struct PoolMetricsRegistrar {
  PoolMetricsRegistrar() {
    obs::MetricsRegistry::Global().AddCallbackGauge(
        "pool.arena_hits", [] {
          return static_cast<double>(
              g_arena_hits.load(std::memory_order_relaxed));
        });
    obs::MetricsRegistry::Global().AddCallbackGauge(
        "pool.arena_misses", [] {
          return static_cast<double>(
              g_arena_misses.load(std::memory_order_relaxed));
        });
  }
};
const PoolMetricsRegistrar g_pool_metrics_registrar;

bool RecyclingActive(const PoolTls& tls) {
  return tls.arena_depth > 0 &&
         g_pool_enabled.load(std::memory_order_relaxed);
}

}  // namespace

namespace internal {

float* PoolAlloc(size_t n, size_t* capacity) {
  if (n == 0) {
    *capacity = 0;
    return nullptr;
  }
  PoolTls& tls = Tls();
  const int c = ClassFor(n);
  const size_t cap = ClassCapacity(c);
  *capacity = cap;
  if (RecyclingActive(tls)) {
    std::vector<float*>& list = tls.free_lists[c];
    if (!list.empty()) {
      float* p = list.back();
      list.pop_back();
      ++tls.stats.pool_hits;
      tls.stats.bytes_retained -= cap * sizeof(float);
      --tls.stats.buffers_retained;
      return p;
    }
    ++tls.stats.pool_misses;
  } else {
    ++tls.stats.unpooled_allocs;
  }
  ++tls.stats.heap_allocs;
  return static_cast<float*>(::operator new(cap * sizeof(float)));
}

void PoolFree(float* ptr, size_t capacity) {
  if (ptr == nullptr) return;
  PoolTls& tls = Tls();
  if (RecyclingActive(tls)) {
    const int c = ClassFromCapacity(capacity);
    tls.free_lists[c].push_back(ptr);
    tls.stats.bytes_retained += capacity * sizeof(float);
    ++tls.stats.buffers_retained;
    return;
  }
  ::operator delete(ptr);
}

}  // namespace internal

TensorPool::Stats TensorPool::ThreadStats() { return Tls().stats; }

void TensorPool::ResetThreadStats() {
  PoolTls& tls = Tls();
  const uint64_t bytes = tls.stats.bytes_retained;
  const uint64_t buffers = tls.stats.buffers_retained;
  tls.stats = Stats{};
  tls.stats.bytes_retained = bytes;
  tls.stats.buffers_retained = buffers;
}

void TensorPool::ReleaseRetained() {
  PoolTls& tls = Tls();
  for (auto& list : tls.free_lists) {
    for (float* p : list) ::operator delete(p);
    list.clear();
  }
  tls.stats.bytes_retained = 0;
  tls.stats.buffers_retained = 0;
}

bool TensorPool::ArenaActive() { return Tls().arena_depth > 0; }

void TensorPool::set_enabled(bool enabled) {
  g_pool_enabled.store(enabled, std::memory_order_relaxed);
}

bool TensorPool::enabled() {
  return g_pool_enabled.load(std::memory_order_relaxed);
}

TensorPool::ArenaCounters TensorPool::AggregatedArenaCounters() {
  ArenaCounters counters;
  counters.hits = g_arena_hits.load(std::memory_order_relaxed);
  counters.misses = g_arena_misses.load(std::memory_order_relaxed);
  return counters;
}

ArenaGuard::ArenaGuard() : entry_(Tls().stats) { ++Tls().arena_depth; }

ArenaGuard::~ArenaGuard() {
  PoolTls& tls = Tls();
  if (--tls.arena_depth == 0) {
    // Outermost exit: publish this scope's pool behaviour to the global
    // monitoring counters (two relaxed adds per request, no contention
    // on the hot path itself).
    g_arena_hits.fetch_add(tls.stats.pool_hits - entry_.pool_hits,
                           std::memory_order_relaxed);
    g_arena_misses.fetch_add(tls.stats.pool_misses - entry_.pool_misses,
                             std::memory_order_relaxed);
  }
}

TensorPool::Stats ArenaGuard::ScopeStats() const {
  const TensorPool::Stats now = Tls().stats;
  TensorPool::Stats delta;
  delta.pool_hits = now.pool_hits - entry_.pool_hits;
  delta.pool_misses = now.pool_misses - entry_.pool_misses;
  delta.unpooled_allocs = now.unpooled_allocs - entry_.unpooled_allocs;
  delta.heap_allocs = now.heap_allocs - entry_.heap_allocs;
  delta.bytes_retained = now.bytes_retained;
  delta.buffers_retained = now.buffers_retained;
  return delta;
}

Storage::Storage(size_t n, Init init) : size_(n) {
  data_ = internal::PoolAlloc(n, &capacity_);
  if (init == Init::kZeroed && n > 0) {
    std::memset(data_, 0, n * sizeof(float));
  }
}

Storage::~Storage() { internal::PoolFree(data_, capacity_); }

Storage::Storage(const Storage& other)
    : Storage(other.size_, Init::kUninitialized) {
  if (size_ > 0) std::memcpy(data_, other.data_, size_ * sizeof(float));
}

Storage& Storage::operator=(const Storage& other) {
  if (this == &other) return *this;
  // Reallocate through the pool even when shrinking would fit: keeping
  // buffers at their class size makes reuse exact and accounting simple.
  Storage copy(other);
  *this = std::move(copy);
  return *this;
}

Storage::Storage(Storage&& other) noexcept
    : data_(other.data_), size_(other.size_), capacity_(other.capacity_) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.capacity_ = 0;
}

Storage& Storage::operator=(Storage&& other) noexcept {
  if (this == &other) return *this;
  internal::PoolFree(data_, capacity_);
  data_ = other.data_;
  size_ = other.size_;
  capacity_ = other.capacity_;
  other.data_ = nullptr;
  other.size_ = 0;
  other.capacity_ = 0;
  return *this;
}

}  // namespace m2g
