#include "tensor/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/string_util.h"
#include "tensor/simd.h"

namespace m2g {
namespace {

/// out += a * b accumulated in the canonical i-k-j order (streams through
/// b and out row-wise, skips zero entries of a). Every matmul-shaped
/// kernel below goes through AccumulateRowMatMul row by row so their
/// accumulation orders are identical by construction.
void MatMulAccumulate(const Matrix& a, const Matrix& b, Matrix* out) {
  const int n = a.rows(), k = a.cols(), m = b.cols();
  for (int i = 0; i < n; ++i) {
    AccumulateRowMatMul(a.data() + static_cast<size_t>(i) * k, k, b.data(),
                        m, out->data() + static_cast<size_t>(i) * m);
  }
}

void AddRowBias(const Matrix& bias, Matrix* out) {
  const float* brow = bias.data();
  const size_t cols = static_cast<size_t>(out->cols());
  for (int r = 0; r < out->rows(); ++r) {
    simd::AddInPlace(out->data() + static_cast<size_t>(r) * cols, brow,
                     cols);
  }
}

}  // namespace

Matrix::Matrix(int rows, int cols, const std::vector<float>& data)
    : Matrix(rows, cols, Storage::Init::kUninitialized) {
  M2G_CHECK_EQ(size(), data.size());
  if (!data.empty()) {
    std::memcpy(data_.data(), data.data(), data.size() * sizeof(float));
  }
}

Matrix Matrix::Uninit(int rows, int cols) {
  return Matrix(rows, cols, Storage::Init::kUninitialized);
}

Matrix Matrix::Ones(int rows, int cols) { return Full(rows, cols, 1.0f); }

Matrix Matrix::Full(int rows, int cols, float value) {
  Matrix m = Uninit(rows, cols);
  m.Fill(value);
  return m;
}

Matrix Matrix::Identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m.At(i, i) = 1.0f;
  return m;
}

Matrix Matrix::RowVector(const std::vector<float>& values) {
  return Matrix(1, static_cast<int>(values.size()), values);
}

Matrix Matrix::Random(int rows, int cols, float lo, float hi, Rng* rng) {
  Matrix m = Uninit(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m[i] = static_cast<float>(rng->Uniform(lo, hi));
  }
  return m;
}

void Matrix::Fill(float value) {
  std::fill(data_.data(), data_.data() + size(), value);
}

void Matrix::AddInPlace(const Matrix& other) {
  M2G_CHECK(SameShape(other));
  simd::AddInPlace(data_.data(), other.data_.data(), size());
}

void Matrix::AddScaledInPlace(const Matrix& other, float scale) {
  M2G_CHECK(SameShape(other));
  float* a = data_.data();
  const float* b = other.data_.data();
  for (size_t i = 0, n = size(); i < n; ++i) a[i] += scale * b[i];
}

void Matrix::ScaleInPlace(float scale) {
  float* a = data_.data();
  for (size_t i = 0, n = size(); i < n; ++i) a[i] *= scale;
}

float Matrix::Sum() const {
  float s = 0.0f;
  const float* a = data_.data();
  for (size_t i = 0, n = size(); i < n; ++i) s += a[i];
  return s;
}

float Matrix::Norm() const {
  double s = 0.0;
  const float* a = data_.data();
  for (size_t i = 0, n = size(); i < n; ++i) {
    s += static_cast<double>(a[i]) * a[i];
  }
  return static_cast<float>(std::sqrt(s));
}

float Matrix::MaxAbs() const {
  float m = 0.0f;
  const float* a = data_.data();
  for (size_t i = 0, n = size(); i < n; ++i) {
    m = std::max(m, std::fabs(a[i]));
  }
  return m;
}

std::string Matrix::ToString() const {
  std::string out = StrFormat("Matrix(%d x %d)\n", rows_, cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      out += StrFormat("%10.4f ", At(r, c));
    }
    out += "\n";
  }
  return out;
}

Matrix MatMulRaw(const Matrix& a, const Matrix& b) {
  M2G_CHECK_EQ(a.cols(), b.rows());
  Matrix out(a.rows(), b.cols());
  MatMulAccumulate(a, b, &out);
  return out;
}

Matrix TransposeRaw(const Matrix& a) {
  Matrix out = Matrix::Uninit(a.cols(), a.rows());
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < a.cols(); ++c) out.At(c, r) = a.At(r, c);
  }
  return out;
}

Matrix MatMulATB(const Matrix& a, const Matrix& b) {
  M2G_CHECK_EQ(a.rows(), b.rows());
  const int n = a.cols(), k = a.rows(), m = b.cols();
  Matrix out(n, m);
  // Gather column i of `a` into a contiguous pooled row, then run the
  // canonical row kernel — exactly MatMulRaw(TransposeRaw(a), b) row by
  // row, so the accumulation order (and the dense/sparse path choice)
  // is the reference composition's, bit for bit. The old fused variant
  // read a(p, i) strided inside the O(k*m) inner loop, which measured
  // ~2x slower than transpose-then-multiply once the dense row kernel
  // got register blocking; the O(k) gather per row is noise against the
  // O(k*m) product and keeps the traffic sequential.
  Matrix acol = Matrix::Uninit(1, k);
  float* xrow = acol.data();
  for (int i = 0; i < n; ++i) {
    for (int p = 0; p < k; ++p) {
      xrow[p] = a.data()[static_cast<size_t>(p) * n + i];
    }
    AccumulateRowMatMul(xrow, k, b.data(), m,
                        out.data() + static_cast<size_t>(i) * m);
  }
  return out;
}

Matrix MatMulABT(const Matrix& a, const Matrix& b) {
  M2G_CHECK_EQ(a.cols(), b.cols());
  // Materialize b^T (one sequential O(k*m) copy from the pool) and run
  // the canonical kernel: this IS the reference composition, so parity
  // is structural. The old fused variant saved the transpose but read
  // b(j, p) with stride k inside the innermost loop — a measured ~2x
  // regression against transpose-then-multiply with the register-blocked
  // dense row kernel; bench_memory_kernels now gates fused >= unfused.
  Matrix bt = TransposeRaw(b);
  Matrix out(a.rows(), bt.cols());
  MatMulAccumulate(a, bt, &out);
  return out;
}

Matrix AffineRaw(const Matrix& x, const Matrix& w, const Matrix* bias,
                 Activation act) {
  M2G_CHECK_EQ(x.cols(), w.rows());
  if (bias != nullptr) {
    M2G_CHECK_EQ(bias->rows(), 1);
    M2G_CHECK_EQ(bias->cols(), w.cols());
  }
  Matrix out(x.rows(), w.cols());
  MatMulAccumulate(x, w, &out);
  if (bias != nullptr) AddRowBias(*bias, &out);
  if (act == Activation::kRelu) {
    simd::ReluInPlace(out.data(), out.size());
  }
  return out;
}

void AccumulateRowMatMul(const float* x, int k, const float* b, int m,
                         float* out_row) {
  // Zero-scan picks the path: the branchy loop wins when rows carry exact
  // zeros (one-hot features, ReLU outputs, the all-zero initial LSTM
  // state), the vectorized dense kernel wins on dense activations. The
  // scan is capped at the first kZeroScanCap entries: real rows are
  // either dense everywhere (hidden activations) or zero-sparse from the
  // start (one-hot blocks), so the prefix decides, and the scan cost
  // stays O(1) instead of O(k) in front of every O(k*m) row product.
  //
  // Parity argument for the cap: a zero hiding at p >= kZeroScanCap
  // reaches the dense kernel, which adds x[p] * b[p*m + j] = +/-0.0
  // instead of skipping the term. Under round-to-nearest, adding +/-0.0
  // leaves every accumulator bit-unchanged unless the accumulator holds
  // -0.0 (only (-0) + (-0) produces -0, so an accumulator that starts at
  // +0.0 — as every caller's does — or at any nonzero value can never
  // reach -0.0), and 0 * b is +/-0.0 for every finite b (weights are
  // finite; a nonfinite b poisons the product on either path).
  // matrix_test pins dense-with-late-zero against the skip reference
  // byte for byte.
  bool dense = m >= 4;
  if (dense) {
    constexpr int kZeroScanCap = 16;
    const int scan = k < kZeroScanCap ? k : kZeroScanCap;
    for (int p = 0; p < scan; ++p) {
      if (x[p] == 0.0f) {
        dense = false;
        break;
      }
    }
  }
  if (!dense) {
    for (int p = 0; p < k; ++p) {
      const float av = x[p];
      if (av == 0.0f) continue;
      const float* brow = b + static_cast<size_t>(p) * m;
      for (int j = 0; j < m; ++j) out_row[j] += av * brow[j];
    }
    return;
  }
  // Dense path: the runtime-dispatched SIMD tier (AVX2 -> SSE2 ->
  // scalar register-blocked). Every tier adds the same terms to the
  // same accumulators in the same ascending-p order with separate
  // mul + add instructions, so this is the branchy loop minus its
  // branches, bit for bit — see tensor/simd.h for the full contract.
  simd::DenseRowMatMul(x, k, b, m, out_row);
}

float PointerScoreRow(const float* keys_row, const float* q, const float* v,
                      int d) {
  // Mirrors MatMulRaw(tanh(keys + q), v) for one row: the (d, 1) product
  // accumulates in ascending-p order and skips terms whose tanh is
  // exactly zero, matching the matrix kernel's zero-skip.
  float acc = 0.0f;
  for (int p = 0; p < d; ++p) {
    const float t = std::tanh(keys_row[p] + q[p]);
    if (t == 0.0f) continue;
    acc += t * v[p];
  }
  return acc;
}

void PointerScoresMasked(const Matrix& keys, const float* q, const float* v,
                         const std::vector<bool>& mask, float* scores) {
  const int n = keys.rows(), d = keys.cols();
  M2G_CHECK_EQ(static_cast<size_t>(n), mask.size());
  for (int i = 0; i < n; ++i) {
    if (!mask[i]) continue;
    scores[i] =
        PointerScoreRow(keys.data() + static_cast<size_t>(i) * d, q, v, d);
  }
}

void MatMulInto(const float* a, int n, int k, const float* b, int m,
                float* out) {
  std::fill(out, out + static_cast<size_t>(n) * m, 0.0f);
  for (int i = 0; i < n; ++i) {
    AccumulateRowMatMul(a + static_cast<size_t>(i) * k, k, b, m,
                        out + static_cast<size_t>(i) * m);
  }
}

void MatMulManyInto(const MatMulManySlice* slices, int count, int k,
                    const float* b, int m) {
  for (int s = 0; s < count; ++s) {
    MatMulInto(slices[s].a, slices[s].n, k, b, m, slices[s].out);
  }
}

void GatLogitsRow(const float* s_dst, const float* s_edge_row, float s_src_i,
                  float slope, int n, float* logits) {
  // (s_dst[j] + s_e[ij]) first, then + s_src[i]: the Add node ran
  // before the AddScalarTensor node on the legacy path. Each output
  // element is independent, so the SIMD tier vectorizes across j with
  // the same add/add/mul/select sequence per lane.
  simd::GatLogitsRow(s_dst, s_edge_row, s_src_i, slope, n, logits);
}

void MaskedSoftmaxRowRaw(const float* logits, const std::vector<bool>& mask,
                         size_t base, int n, float* alpha) {
  float max_v = -std::numeric_limits<float>::infinity();
  bool any = false;
  for (int j = 0; j < n; ++j) {
    if (mask[base + j]) {
      any = true;
      max_v = std::max(max_v, logits[j]);
    }
  }
  M2G_CHECK_MSG(any, "MaskedSoftmaxRowRaw: all positions masked");
  double denom = 0;
  for (int j = 0; j < n; ++j) {
    if (mask[base + j]) {
      alpha[j] = std::exp(logits[j] - max_v);
      denom += alpha[j];
    }
  }
  for (int j = 0; j < n; ++j) {
    alpha[j] = mask[base + j] ? static_cast<float>(alpha[j] / denom) : 0.0f;
  }
}

Matrix DualAffineRaw(const Matrix& x, const Matrix& wx, const Matrix& h,
                     const Matrix& wh, const Matrix& bias) {
  M2G_CHECK_EQ(x.cols(), wx.rows());
  M2G_CHECK_EQ(h.cols(), wh.rows());
  M2G_CHECK_EQ(wx.cols(), wh.cols());
  M2G_CHECK_EQ(bias.rows(), 1);
  M2G_CHECK_EQ(bias.cols(), wx.cols());
  Matrix out(x.rows(), wx.cols());
  MatMulAccumulate(x, wx, &out);
  // The second product must be materialized before the elementwise add:
  // folding it into `out` directly would interleave the two summations
  // and change float rounding. The scratch comes from the pool, so on a
  // warm arena this costs no malloc.
  Matrix scratch(h.rows(), wh.cols());
  MatMulAccumulate(h, wh, &scratch);
  out.AddInPlace(scratch);
  AddRowBias(bias, &out);
  return out;
}

}  // namespace m2g
