#include "tensor/matrix.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace m2g {

Matrix Matrix::Ones(int rows, int cols) { return Full(rows, cols, 1.0f); }

Matrix Matrix::Full(int rows, int cols, float value) {
  Matrix m(rows, cols);
  m.Fill(value);
  return m;
}

Matrix Matrix::Identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m.At(i, i) = 1.0f;
  return m;
}

Matrix Matrix::RowVector(const std::vector<float>& values) {
  return Matrix(1, static_cast<int>(values.size()), values);
}

Matrix Matrix::Random(int rows, int cols, float lo, float hi, Rng* rng) {
  Matrix m(rows, cols);
  for (int i = 0; i < m.size(); ++i) {
    m[i] = static_cast<float>(rng->Uniform(lo, hi));
  }
  return m;
}

void Matrix::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::AddInPlace(const Matrix& other) {
  M2G_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::AddScaledInPlace(const Matrix& other, float scale) {
  M2G_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += scale * other.data_[i];
  }
}

void Matrix::ScaleInPlace(float scale) {
  for (float& v : data_) v *= scale;
}

float Matrix::Sum() const {
  float s = 0.0f;
  for (float v : data_) s += v;
  return s;
}

float Matrix::Norm() const {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(s));
}

float Matrix::MaxAbs() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

std::string Matrix::ToString() const {
  std::string out = StrFormat("Matrix(%d x %d)\n", rows_, cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      out += StrFormat("%10.4f ", At(r, c));
    }
    out += "\n";
  }
  return out;
}

Matrix MatMulRaw(const Matrix& a, const Matrix& b) {
  M2G_CHECK_EQ(a.cols(), b.rows());
  Matrix out(a.rows(), b.cols());
  const int n = a.rows(), k = a.cols(), m = b.cols();
  // i-k-j loop order: streams through b and out row-wise.
  for (int i = 0; i < n; ++i) {
    const float* arow = a.data() + static_cast<size_t>(i) * k;
    float* orow = out.data() + static_cast<size_t>(i) * m;
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b.data() + static_cast<size_t>(p) * m;
      for (int j = 0; j < m; ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

Matrix TransposeRaw(const Matrix& a) {
  Matrix out(a.cols(), a.rows());
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < a.cols(); ++c) out.At(c, r) = a.At(r, c);
  }
  return out;
}

}  // namespace m2g
