#include "tensor/grad_buffer.h"

namespace m2g::internal {
namespace {

thread_local GradBuffer* t_active_buffer = nullptr;

}  // namespace

Matrix& GradBuffer::GradFor(TensorNode* leaf) {
  auto it = grads_.find(leaf);
  if (it == grads_.end()) {
    it = grads_
             .emplace(leaf,
                      Matrix(leaf->value.rows(), leaf->value.cols()))
             .first;
  }
  return it->second;
}

const Matrix* GradBuffer::Find(const TensorNode* leaf) const {
  auto it = grads_.find(leaf);
  return it == grads_.end() ? nullptr : &it->second;
}

GradBufferScope::GradBufferScope(GradBuffer* buffer)
    : prev_(t_active_buffer) {
  t_active_buffer = buffer;
}

GradBufferScope::~GradBufferScope() { t_active_buffer = prev_; }

GradBuffer* ActiveGradBuffer() { return t_active_buffer; }

}  // namespace m2g::internal
