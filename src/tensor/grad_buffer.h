#ifndef M2G_TENSOR_GRAD_BUFFER_H_
#define M2G_TENSOR_GRAD_BUFFER_H_

#include <unordered_map>

#include "tensor/tensor.h"

namespace m2g::internal {

/// Per-thread gradient accumulation buffer for *parameter leaves*.
///
/// In data-parallel training each worker builds its own per-sample graph;
/// intermediate nodes are thread-private, but the parameter leaves are
/// shared across every worker's graph. While a GradBufferScope is active
/// on a thread, TensorNode::EnsureGrad() redirects leaf-gradient
/// accumulation into this buffer instead of the shared `grad` field, so
/// concurrent Backward() calls never write to the same matrix. The
/// trainer reduces the buffers into the shared parameter grads on the
/// main thread in deterministic (parameter-order, then shard-index)
/// order before each optimizer step.
class GradBuffer {
 public:
  /// Accumulation target for `leaf`, zero-allocated to `leaf`'s value
  /// shape on first use.
  Matrix& GradFor(TensorNode* leaf);

  /// The accumulated gradient for `leaf`, or nullptr if no gradient ever
  /// reached it on this buffer's thread.
  const Matrix* Find(const TensorNode* leaf) const;

  void Clear() { grads_.clear(); }
  bool empty() const { return grads_.empty(); }

 private:
  std::unordered_map<const TensorNode*, Matrix> grads_;
};

/// Installs `buffer` as the current thread's leaf-gradient redirect for
/// the guard's scope (restores the previous redirect on destruction).
class GradBufferScope {
 public:
  explicit GradBufferScope(GradBuffer* buffer);
  ~GradBufferScope();

  GradBufferScope(const GradBufferScope&) = delete;
  GradBufferScope& operator=(const GradBufferScope&) = delete;

 private:
  GradBuffer* prev_;
};

/// The current thread's redirect target (nullptr outside any scope).
GradBuffer* ActiveGradBuffer();

}  // namespace m2g::internal

#endif  // M2G_TENSOR_GRAD_BUFFER_H_
