#ifndef M2G_TENSOR_OPS_H_
#define M2G_TENSOR_OPS_H_

#include <vector>

#include "tensor/tensor.h"

namespace m2g {

// ---------------------------------------------------------------------------
// Differentiable operations. Every function builds one autograd node whose
// backward closure accumulates into parents that require gradients. All
// tensors are 2-D; scalars are (1,1).
// ---------------------------------------------------------------------------

/// (n,k) x (k,m) -> (n,m).
Tensor MatMul(const Tensor& a, const Tensor& b);

/// MatMul(a, b) with the forward value supplied by the caller instead of
/// recomputed. The decode/training fast path hoists the step-invariant
/// `MatMul(nodes, W6)` out of the decode loop by running the kernel once
/// (MatMulRaw) and rebuilding the per-step graph node around the shared
/// value. The node, parents and backward closure are exactly MatMul's, so
/// gradient accumulation slots — and therefore float summation order —
/// are unchanged. `value` must equal MatMulRaw(a.value(), b.value());
/// shapes are checked, contents are the caller's contract.
Tensor MatMulWithValue(const Tensor& a, const Tensor& b,
                       const Matrix& value);

/// Fused act(x * w + b): one node replacing the MatMul + AddRowBroadcast
/// (+ Relu) chain — bitwise-identical values and gradients, no transpose
/// copies in the backward (MatMulATB / MatMulABT kernels) and no
/// intermediate graph nodes. `b` may be undefined (pure projection).
Tensor Affine(const Tensor& x, const Tensor& w, const Tensor& b,
              Activation act = Activation::kNone);

/// Fused x*wx + h*wh + b: the LSTM gate pre-activation as one node,
/// replacing AddRowBroadcast(Add(MatMul(x,wx), MatMul(h,wh)), b) with
/// bitwise-identical values and gradients.
Tensor DualAffine(const Tensor& x, const Tensor& wx, const Tensor& h,
                  const Tensor& wh, const Tensor& b);

/// Elementwise a + b, same shape.
Tensor Add(const Tensor& a, const Tensor& b);

/// (n,d) + (1,d) broadcast over rows (bias add).
Tensor AddRowBroadcast(const Tensor& a, const Tensor& row);

/// Elementwise a - b, same shape.
Tensor Sub(const Tensor& a, const Tensor& b);

/// Elementwise a * b (Hadamard), same shape.
Tensor Mul(const Tensor& a, const Tensor& b);

/// a * s for a compile-time-known scalar s.
Tensor Scale(const Tensor& a, float s);

/// a + s elementwise.
Tensor AddScalar(const Tensor& a, float s);

/// -a.
Tensor Neg(const Tensor& a);

/// a + s where s is a (1,1) tensor broadcast to every entry of a
/// (differentiable in both arguments).
Tensor AddScalarTensor(const Tensor& a, const Tensor& s);

/// Replicates a (1,d) row n times -> (n,d).
Tensor BroadcastRows(const Tensor& row, int n);

/// Elementwise exp / log / abs.
Tensor Exp(const Tensor& a);
Tensor Log(const Tensor& a);
Tensor Abs(const Tensor& a);

/// Activations.
Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Relu(const Tensor& a);
Tensor LeakyRelu(const Tensor& a, float negative_slope = 0.2f);

/// Horizontal concat: (n,d1) || (n,d2) -> (n, d1+d2).
Tensor ConcatCols(const Tensor& a, const Tensor& b);

/// Vertical stack of same-width tensors -> (sum rows, d).
Tensor ConcatRows(const std::vector<Tensor>& parts);

/// Column slice [start, start+len).
Tensor SliceCols(const Tensor& a, int start, int len);

/// Row slice [start, start+len).
Tensor SliceRows(const Tensor& a, int start, int len);

/// Single row i as (1,d).
Tensor Row(const Tensor& a, int i);

/// Rows picked by index (duplicates allowed); grad scatter-adds.
Tensor GatherRows(const Tensor& a, const std::vector<int>& indices);

/// Sum of all entries -> (1,1).
Tensor Sum(const Tensor& a);

/// Mean of all entries -> (1,1).
Tensor Mean(const Tensor& a);

/// Column-wise sum: (n,d) -> (1,d).
Tensor SumRows(const Tensor& a);

/// a^T.
Tensor Transpose(const Tensor& a);

/// Softmax over a row vector (1,n) restricted to positions where
/// mask[i] == true; masked-out positions get probability 0. At least one
/// position must be unmasked.
Tensor MaskedSoftmaxRow(const Tensor& logits, const std::vector<bool>& mask);

/// Numerically stable -log softmax(logits)[target] with the softmax taken
/// over unmasked positions only. `mask[target]` must be true. Returns (1,1).
Tensor MaskedCrossEntropy(const Tensor& logits, int target,
                          const std::vector<bool>& mask);

/// |pred - target| for scalar pred -> (1,1). Subgradient 0 at equality.
Tensor L1Loss(const Tensor& pred, float target);

/// Row-wise layer normalization with learnable gain/bias (both (1, d)):
///   y_{r,*} = gain * (x_{r,*} - mean_r) / sqrt(var_r + eps) + bias.
Tensor LayerNormRows(const Tensor& x, const Tensor& gain,
                     const Tensor& bias, float eps = 1e-5f);

// ---------------------------------------------------------------------------
// Non-differentiable helpers.
// ---------------------------------------------------------------------------

/// Argmax over a row vector restricted to unmasked positions.
int ArgmaxMaskedRow(const Matrix& row, const std::vector<bool>& mask);

}  // namespace m2g

#endif  // M2G_TENSOR_OPS_H_
