#ifndef M2G_TENSOR_MATRIX_H_
#define M2G_TENSOR_MATRIX_H_

#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace m2g {

/// Dense row-major float matrix. This is the only numeric container in the
/// library: vectors are (1 x d) or (n x 1) matrices, scalars are (1 x 1).
/// All shapes in this codebase are tiny (n <= ~80 graph nodes, d <= ~128
/// hidden units), so a simple contiguous buffer with exact O(n^3) kernels
/// outperforms anything fancier and keeps results bit-reproducible.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(int rows, int cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * cols, 0.0f) {
    M2G_CHECK_GE(rows, 0);
    M2G_CHECK_GE(cols, 0);
  }
  Matrix(int rows, int cols, std::vector<float> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    M2G_CHECK_EQ(static_cast<size_t>(rows) * cols, data_.size());
  }

  static Matrix Zeros(int rows, int cols) { return Matrix(rows, cols); }
  static Matrix Ones(int rows, int cols);
  static Matrix Full(int rows, int cols, float value);
  static Matrix Identity(int n);
  /// Row vector (1 x values.size()).
  static Matrix RowVector(const std::vector<float>& values);
  /// Uniform random entries in [lo, hi).
  static Matrix Random(int rows, int cols, float lo, float hi, Rng* rng);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int size() const { return rows_ * cols_; }
  bool empty() const { return data_.empty(); }

  float& At(int r, int c) {
    M2G_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  float At(int r, int c) const {
    M2G_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  /// Unchecked flat access for kernels.
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float& operator[](size_t i) { return data_[i]; }
  float operator[](size_t i) const { return data_[i]; }

  void Fill(float value);
  void SetZero() { Fill(0.0f); }

  /// this += other (same shape).
  void AddInPlace(const Matrix& other);
  /// this += scale * other (same shape).
  void AddScaledInPlace(const Matrix& other, float scale);
  /// this *= scale.
  void ScaleInPlace(float scale);

  /// Sum of all entries.
  float Sum() const;
  /// Frobenius norm.
  float Norm() const;
  /// Max-abs entry.
  float MaxAbs() const;

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// Multi-line debug rendering, e.g. for test failures.
  std::string ToString() const;

 private:
  int rows_;
  int cols_;
  std::vector<float> data_;
};

/// out = a * b. Shapes (n,k) x (k,m) -> (n,m).
Matrix MatMulRaw(const Matrix& a, const Matrix& b);

/// out = a^T.
Matrix TransposeRaw(const Matrix& a);

}  // namespace m2g

#endif  // M2G_TENSOR_MATRIX_H_
