#ifndef M2G_TENSOR_MATRIX_H_
#define M2G_TENSOR_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "tensor/pool.h"

namespace m2g {

/// Dense row-major float matrix. This is the only numeric container in the
/// library: vectors are (1 x d) or (n x 1) matrices, scalars are (1 x 1).
/// All shapes in this codebase are tiny (n <= ~80 graph nodes, d <= ~128
/// hidden units), so a simple contiguous buffer with exact O(n^3) kernels
/// outperforms anything fancier and keeps results bit-reproducible.
///
/// The buffer lives in a `Storage` drawn from the thread-local tensor
/// pool (tensor/pool.h): inside an ArenaGuard scope, temporaries recycle
/// without touching malloc. Matrices keep deep-copy value semantics and
/// may outlive any arena scope.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(int rows, int cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * static_cast<size_t>(cols),
              Storage::Init::kZeroed) {
    M2G_CHECK_GE(rows, 0);
    M2G_CHECK_GE(cols, 0);
  }
  Matrix(int rows, int cols, const std::vector<float>& data);

  static Matrix Zeros(int rows, int cols) { return Matrix(rows, cols); }
  /// Uninitialized allocation for kernels that fully overwrite their
  /// output: skips the zero-fill (and, on a warm pool, any malloc).
  static Matrix Uninit(int rows, int cols);
  static Matrix Ones(int rows, int cols);
  static Matrix Full(int rows, int cols, float value);
  static Matrix Identity(int n);
  /// Row vector (1 x values.size()).
  static Matrix RowVector(const std::vector<float>& values);
  /// Uniform random entries in [lo, hi).
  static Matrix Random(int rows, int cols, float lo, float hi, Rng* rng);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  /// Element count as size_t: flat-index arithmetic never runs through
  /// int (rows * cols overflows int silently at ~46k x 46k).
  size_t size() const {
    return static_cast<size_t>(rows_) * static_cast<size_t>(cols_);
  }
  bool empty() const { return data_.empty(); }

  /// Bounds-checked in debug builds only (M2G_DCHECK): At() is the
  /// per-element hot path and the checks compile out under -DNDEBUG.
  float& At(int r, int c) {
    M2G_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_.data()[static_cast<size_t>(r) * cols_ + c];
  }
  float At(int r, int c) const {
    M2G_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_.data()[static_cast<size_t>(r) * cols_ + c];
  }
  /// Unchecked flat access for kernels.
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float& operator[](size_t i) {
    M2G_DCHECK_LT(i, size());
    return data_.data()[i];
  }
  float operator[](size_t i) const {
    M2G_DCHECK_LT(i, size());
    return data_.data()[i];
  }

  void Fill(float value);
  void SetZero() { Fill(0.0f); }

  /// this += other (same shape).
  void AddInPlace(const Matrix& other);
  /// this += scale * other (same shape).
  void AddScaledInPlace(const Matrix& other, float scale);
  /// this *= scale.
  void ScaleInPlace(float scale);

  /// Sum of all entries.
  float Sum() const;
  /// Frobenius norm.
  float Norm() const;
  /// Max-abs entry.
  float MaxAbs() const;

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// Multi-line debug rendering, e.g. for test failures.
  std::string ToString() const;

 private:
  Matrix(int rows, int cols, Storage::Init init)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * static_cast<size_t>(cols), init) {
    M2G_CHECK_GE(rows, 0);
    M2G_CHECK_GE(cols, 0);
  }

  int rows_;
  int cols_;
  Storage data_;
};

/// Activation fused into affine kernels (only what the models use; the
/// other activations stay standalone ops).
enum class Activation { kNone, kRelu };

/// out = a * b. Shapes (n,k) x (k,m) -> (n,m).
Matrix MatMulRaw(const Matrix& a, const Matrix& b);

/// out = a^T.
Matrix TransposeRaw(const Matrix& a);

// ---------------------------------------------------------------------------
// Transpose-free fused kernels. Each reproduces the exact accumulation
// order of the op composition it replaces (same i-k-j loops, same
// skip-if-zero), so results are bitwise-identical to the unfused path —
// only the transpose copies and intermediate buffers disappear.
// ---------------------------------------------------------------------------

/// out = a^T * b without materializing a^T. Shapes (k,n) x (k,m) -> (n,m).
/// Bitwise-identical to MatMulRaw(TransposeRaw(a), b): each row of a^T
/// is gathered into a (1, k) pooled scratch and fed through the
/// canonical row kernel, so the accumulation order is the reference
/// composition's by construction.
Matrix MatMulATB(const Matrix& a, const Matrix& b);

/// out = a * b^T. Shapes (n,k) x (m,k) -> (n,m). Bitwise-identical to
/// MatMulRaw(a, TransposeRaw(b)) — it literally materializes b^T into
/// pooled scratch first: one sequential transpose copy beats the
/// column-strided inner loop of the old "transpose-free" variant by ~2x
/// now that the dense row kernel is register-blocked and vectorized.
Matrix MatMulABT(const Matrix& a, const Matrix& b);

/// out = act(x * w + bias) with bias a (1, m) row broadcast over rows
/// (`bias` may be null for pure projections). Bitwise-identical to the
/// MatMulRaw + row-broadcast-add (+ activation) composition.
Matrix AffineRaw(const Matrix& x, const Matrix& w, const Matrix* bias,
                 Activation act = Activation::kNone);

/// out = x * wx + h * wh + bias: the LSTM gate pre-activation, fused.
/// Bitwise-identical to AddInPlace(MatMulRaw(x,wx), MatMulRaw(h,wh)) plus
/// the row-broadcast bias add.
Matrix DualAffineRaw(const Matrix& x, const Matrix& wx, const Matrix& h,
                     const Matrix& wh, const Matrix& bias);

// ---------------------------------------------------------------------------
// Row-level kernels for the decode fast path. These are the primitives
// behind the matrix-level kernels above (MatMulRaw et al. route every row
// through AccumulateRowMatMul), so callers can mix row- and matrix-level
// calls without changing a single output bit.
// ---------------------------------------------------------------------------

/// out_row += x * b for one row: x is k floats, b is (k, m) row-major,
/// out_row is m floats, accumulated in the canonical ascending-p order
/// with the `x[p] == 0` skip. When the first 16 entries of the row carry
/// no exact zeros — typical for dense hidden activations — the branchy
/// loop is replaced by the runtime-dispatched SIMD dense kernel
/// (tensor/simd.h: AVX2 -> SSE2 -> scalar register-blocked); it adds the
/// same terms to the same accumulators in the same order with separate
/// mul + add instructions, so the result is bitwise-identical either way
/// (a zero past the scan cap contributes a bitwise-neutral +/-0.0 term;
/// see the parity argument at the definition).
void AccumulateRowMatMul(const float* x, int k, const float* b, int m,
                         float* out_row);

/// Attention-pointer score for one cached key row:
///   sum_p tanh(keys_row[p] + q[p]) * v[p]
/// with the exact ascending-p order and skip-if-zero of the
/// AddRowBroadcast -> Tanh -> MatMulRaw composition it replaces, but
/// without materializing any (n, d) temporaries.
float PointerScoreRow(const float* keys_row, const float* q, const float* v,
                      int d);

/// PointerScoreRow over every unmasked row of `keys` (n, d); scores[i] is
/// written only where mask[i] is true. The legacy path never reads masked
/// rows' scores either, so skipping them entirely is exact.
void PointerScoresMasked(const Matrix& keys, const float* q, const float* v,
                         const std::vector<bool>& mask, float* scores);

// ---------------------------------------------------------------------------
// Raw kernels for the encode fast path (GAT-e, Eq. 20-26). Like the decode
// kernels above, each replicates the exact float semantics of the op
// composition it replaces, so the fused encoder is bitwise-identical to
// the autograd path (encode_parity_test pins this).
// ---------------------------------------------------------------------------

/// out = a * b written into caller scratch: a is (n, k) row-major, b is
/// (k, m) row-major, out is (n, m) row-major and fully overwritten.
/// Bitwise-identical to MatMulRaw (zeroed accumulators, the same per-row
/// AccumulateRowMatMul order) — only the output allocation moves to the
/// caller, which lets a request-scoped plan pack per-head results at
/// arbitrary strides without per-call Matrix temporaries.
void MatMulInto(const float* a, int n, int k, const float* b, int m,
                float* out);

/// One (a, out) pair of a batched MatMulInto: `a` is (n, k) row-major,
/// `out` is (n, m) row-major and fully overwritten. `k` and `m` are
/// shared by every slice of one MatMulManyInto call (they describe the
/// common rhs), so only the per-request operands live here.
struct MatMulManySlice {
  const float* a = nullptr;
  int n = 0;
  float* out = nullptr;
};

/// Batched MatMulInto against one shared rhs `b` (k, m): every slice is
/// computed exactly as MatMulInto(slice.a, slice.n, k, b, m, slice.out)
/// — bitwise-identical, same per-row accumulation order — but the slices
/// run back-to-back, so `b` is streamed once per batch instead of once
/// per request. This is the weight-stream amortization primitive behind
/// GatELayer::ForwardFastBatch (serving request batching).
void MatMulManyInto(const MatMulManySlice* slices, int count, int k,
                    const float* b, int m);

/// Fused GAT-e attention logits for one node row (Eq. 20 decomposed):
///   logits[j] = LeakyRelu((s_dst[j] + s_edge_row[j]) + s_src_i)
/// with the association order of the Add -> AddScalarTensor -> LeakyRelu
/// chain it replaces (pure float additions, so no contraction hazard).
void GatLogitsRow(const float* s_dst, const float* s_edge_row, float s_src_i,
                  float slope, int n, float* logits);

/// MaskedSoftmaxRow's forward on raw buffers (Eq. 21): float max over the
/// unmasked logits, float-stored exponentials, a double denominator
/// accumulated in ascending order over the unmasked entries, then
/// float(exp / denom); masked entries get exact zeros. The mask is row i
/// of a row-major (n, n) adjacency, read at offset `base`.
void MaskedSoftmaxRowRaw(const float* logits, const std::vector<bool>& mask,
                         size_t base, int n, float* alpha);

}  // namespace m2g

#endif  // M2G_TENSOR_MATRIX_H_
