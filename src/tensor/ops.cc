#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tensor/grad_mode.h"

namespace m2g {
namespace {

using internal::NewNode;
using internal::TensorNode;
using NodePtr = std::shared_ptr<TensorNode>;

/// Finalizes an op node: wires parents, requires_grad, backward closure.
/// Under NoGradGuard (GradMode disabled on this thread) the wiring is
/// skipped entirely — the op returns a plain constant holding the already
/// computed forward value, so inference is pure matrix math.
Tensor MakeOp(NodePtr out, std::vector<NodePtr> parents,
              std::function<void(TensorNode*)> backward) {
  if (!GradMode::enabled()) return Tensor::FromNode(std::move(out));
  bool any = false;
  for (const auto& p : parents) any = any || p->requires_grad;
  out->parents = std::move(parents);
  out->requires_grad = any;
  if (any) out->backward_fn = std::move(backward);
  return Tensor::FromNode(std::move(out));
}

/// Elementwise unary op helper: forward maps x->f(x); dfn(x, y) is f'(x)
/// possibly expressed via the output y.
template <typename F, typename DF>
Tensor UnaryOp(const Tensor& a, F&& f, DF&& dfn) {
  const Matrix& av = a.value();
  Matrix out = Matrix::Uninit(av.rows(), av.cols());
  for (size_t i = 0; i < av.size(); ++i) out[i] = f(av[i]);
  NodePtr node = NewNode(std::move(out));
  NodePtr an = a.node();
  return MakeOp(node, {an}, [an, dfn](TensorNode* self) {
    if (!an->requires_grad) return;
    Matrix& g = an->EnsureGrad();
    for (size_t i = 0; i < g.size(); ++i) {
      g[i] += self->grad[i] * dfn(an->value[i], self->value[i]);
    }
  });
}

/// Shared backward for Affine (and MatMul, with bias == nullptr and no
/// activation): db first, then dx, then dw — the execution order of the
/// unfused AddRowBroadcast -> MatMul chain it replaces. A grad-disabled
/// parent costs nothing: neither product nor transpose is computed for
/// it (the old backward materialized transposes unconditionally).
void AffineBackward(const NodePtr& xn, const NodePtr& wn, TensorNode* bias,
                    Activation act, TensorNode* self) {
  const Matrix* g = &self->grad;
  Matrix masked;
  if (act == Activation::kRelu) {
    // d/dpre relu = 1[pre > 0]; pre > 0 iff out > 0, so the fused node
    // needs no stored pre-activation. The product form (g * 0/1) keeps
    // the exact float semantics of the standalone Relu backward.
    const Matrix& y = self->value;
    masked = Matrix::Uninit(y.rows(), y.cols());
    for (size_t i = 0; i < y.size(); ++i) {
      masked[i] = self->grad[i] * (y[i] > 0.0f ? 1.0f : 0.0f);
    }
    g = &masked;
  }
  if (bias != nullptr && bias->requires_grad) {
    Matrix& bg = bias->EnsureGrad();
    for (int r = 0; r < g->rows(); ++r) {
      for (int c = 0; c < g->cols(); ++c) bg.At(0, c) += g->At(r, c);
    }
  }
  if (xn->requires_grad) {
    xn->EnsureGrad().AddInPlace(MatMulABT(*g, wn->value));
  }
  if (wn->requires_grad) {
    wn->EnsureGrad().AddInPlace(MatMulATB(xn->value, *g));
  }
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  NodePtr node = NewNode(MatMulRaw(a.value(), b.value()));
  NodePtr an = a.node(), bn = b.node();
  return MakeOp(node, {an, bn}, [an, bn](TensorNode* self) {
    // Transpose-free: each side is one fused kernel, and a grad-disabled
    // side computes nothing at all.
    if (an->requires_grad) {
      an->EnsureGrad().AddInPlace(MatMulABT(self->grad, bn->value));
    }
    if (bn->requires_grad) {
      bn->EnsureGrad().AddInPlace(MatMulATB(an->value, self->grad));
    }
  });
}

Tensor MatMulWithValue(const Tensor& a, const Tensor& b,
                       const Matrix& value) {
  M2G_CHECK_EQ(a.value().cols(), b.value().rows());
  M2G_CHECK_EQ(value.rows(), a.value().rows());
  M2G_CHECK_EQ(value.cols(), b.value().cols());
  NodePtr node = NewNode(value);
  NodePtr an = a.node(), bn = b.node();
  return MakeOp(node, {an, bn}, [an, bn](TensorNode* self) {
    // Same backward as MatMul: the hoisting only skips forward kernels.
    if (an->requires_grad) {
      an->EnsureGrad().AddInPlace(MatMulABT(self->grad, bn->value));
    }
    if (bn->requires_grad) {
      bn->EnsureGrad().AddInPlace(MatMulATB(an->value, self->grad));
    }
  });
}

Tensor Affine(const Tensor& x, const Tensor& w, const Tensor& b,
              Activation act) {
  const Matrix* bias = b.defined() ? &b.value() : nullptr;
  NodePtr node = NewNode(AffineRaw(x.value(), w.value(), bias, act));
  NodePtr xn = x.node(), wn = w.node();
  if (!b.defined()) {
    return MakeOp(node, {xn, wn}, [xn, wn, act](TensorNode* self) {
      AffineBackward(xn, wn, nullptr, act, self);
    });
  }
  NodePtr bn = b.node();
  return MakeOp(node, {xn, wn, bn}, [xn, wn, bn, act](TensorNode* self) {
    AffineBackward(xn, wn, bn.get(), act, self);
  });
}

Tensor DualAffine(const Tensor& x, const Tensor& wx, const Tensor& h,
                  const Tensor& wh, const Tensor& b) {
  if (!GradMode::enabled()) {
    // Inference: one fully fused kernel, no graph nodes at all.
    return Tensor::Constant(DualAffineRaw(x.value(), wx.value(), h.value(),
                                          wh.value(), b.value()));
  }
  // Training builds TWO nodes, not one. In a recurrent chain the h input
  // carries the recursion to earlier timesteps while the x-side product
  // hangs off to the side; in the unfused chain that product was its own
  // node, popped by the backward DFS *before* the recursion, so its
  // dx/dwx accumulations ran in ascending timestep order. Fusing all
  // five inputs into one node would move those accumulations to the
  // gates node's slot (descending order) and change float summation
  // order for any weight shared across >= 3 steps. Keeping the x-side
  // matmul as its own node pins every accumulation to its old slot.
  Tensor xw = MatMul(x, wx);
  const Matrix& bv = b.value();
  M2G_CHECK_EQ(h.value().cols(), wh.value().rows());
  M2G_CHECK_EQ(bv.rows(), 1);
  M2G_CHECK_EQ(bv.cols(), xw.value().cols());
  Matrix out = xw.value();
  out.AddInPlace(MatMulRaw(h.value(), wh.value()));
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < out.cols(); ++c) out.At(r, c) += bv.At(0, c);
  }
  NodePtr node = NewNode(std::move(out));
  NodePtr xwn = xw.node(), hn = h.node(), whn = wh.node(), bn = b.node();
  return MakeOp(node, {xwn, hn, whn, bn},
                [xwn, hn, whn, bn](TensorNode* self) {
                  const Matrix& g = self->grad;
                  // Same per-leaf products and accumulation slots as the
                  // unfused chain (bias add ran first, then the h-side
                  // matmul; the x-side runs later, at the xw node).
                  if (bn->requires_grad) {
                    Matrix& bg = bn->EnsureGrad();
                    for (int r = 0; r < g.rows(); ++r) {
                      for (int c = 0; c < g.cols(); ++c) {
                        bg.At(0, c) += g.At(r, c);
                      }
                    }
                  }
                  if (xwn->requires_grad) {
                    xwn->EnsureGrad().AddInPlace(g);
                  }
                  if (hn->requires_grad) {
                    hn->EnsureGrad().AddInPlace(MatMulABT(g, whn->value));
                  }
                  if (whn->requires_grad) {
                    whn->EnsureGrad().AddInPlace(MatMulATB(hn->value, g));
                  }
                });
}

Tensor Add(const Tensor& a, const Tensor& b) {
  M2G_CHECK(a.value().SameShape(b.value()));
  Matrix out = a.value();
  out.AddInPlace(b.value());
  NodePtr node = NewNode(std::move(out));
  NodePtr an = a.node(), bn = b.node();
  return MakeOp(node, {an, bn}, [an, bn](TensorNode* self) {
    if (an->requires_grad) an->EnsureGrad().AddInPlace(self->grad);
    if (bn->requires_grad) bn->EnsureGrad().AddInPlace(self->grad);
  });
}

Tensor AddRowBroadcast(const Tensor& a, const Tensor& row) {
  const Matrix& av = a.value();
  const Matrix& rv = row.value();
  M2G_CHECK_EQ(rv.rows(), 1);
  M2G_CHECK_EQ(av.cols(), rv.cols());
  Matrix out = av;
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < out.cols(); ++c) out.At(r, c) += rv.At(0, c);
  }
  NodePtr node = NewNode(std::move(out));
  NodePtr an = a.node(), rn = row.node();
  return MakeOp(node, {an, rn}, [an, rn](TensorNode* self) {
    if (an->requires_grad) an->EnsureGrad().AddInPlace(self->grad);
    if (rn->requires_grad) {
      Matrix& g = rn->EnsureGrad();
      for (int r = 0; r < self->grad.rows(); ++r) {
        for (int c = 0; c < self->grad.cols(); ++c) {
          g.At(0, c) += self->grad.At(r, c);
        }
      }
    }
  });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  M2G_CHECK(a.value().SameShape(b.value()));
  Matrix out = a.value();
  out.AddScaledInPlace(b.value(), -1.0f);
  NodePtr node = NewNode(std::move(out));
  NodePtr an = a.node(), bn = b.node();
  return MakeOp(node, {an, bn}, [an, bn](TensorNode* self) {
    if (an->requires_grad) an->EnsureGrad().AddInPlace(self->grad);
    if (bn->requires_grad) {
      bn->EnsureGrad().AddScaledInPlace(self->grad, -1.0f);
    }
  });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  M2G_CHECK(a.value().SameShape(b.value()));
  Matrix out = a.value();
  for (size_t i = 0; i < out.size(); ++i) out[i] *= b.value()[i];
  NodePtr node = NewNode(std::move(out));
  NodePtr an = a.node(), bn = b.node();
  return MakeOp(node, {an, bn}, [an, bn](TensorNode* self) {
    if (an->requires_grad) {
      Matrix& g = an->EnsureGrad();
      for (size_t i = 0; i < g.size(); ++i) {
        g[i] += self->grad[i] * bn->value[i];
      }
    }
    if (bn->requires_grad) {
      Matrix& g = bn->EnsureGrad();
      for (size_t i = 0; i < g.size(); ++i) {
        g[i] += self->grad[i] * an->value[i];
      }
    }
  });
}

Tensor Scale(const Tensor& a, float s) {
  Matrix out = a.value();
  out.ScaleInPlace(s);
  NodePtr node = NewNode(std::move(out));
  NodePtr an = a.node();
  return MakeOp(node, {an}, [an, s](TensorNode* self) {
    if (an->requires_grad) an->EnsureGrad().AddScaledInPlace(self->grad, s);
  });
}

Tensor AddScalar(const Tensor& a, float s) {
  return UnaryOp(
      a, [s](float x) { return x + s; },
      [](float, float) { return 1.0f; });
}

Tensor Neg(const Tensor& a) { return Scale(a, -1.0f); }

Tensor AddScalarTensor(const Tensor& a, const Tensor& s) {
  M2G_CHECK_EQ(s.value().size(), 1u);
  Matrix out = a.value();
  const float sv = s.value()[0];
  for (size_t i = 0; i < out.size(); ++i) out[i] += sv;
  NodePtr node = NewNode(std::move(out));
  NodePtr an = a.node(), sn = s.node();
  return MakeOp(node, {an, sn}, [an, sn](TensorNode* self) {
    if (an->requires_grad) an->EnsureGrad().AddInPlace(self->grad);
    if (sn->requires_grad) sn->EnsureGrad()[0] += self->grad.Sum();
  });
}

Tensor BroadcastRows(const Tensor& row, int n) {
  M2G_CHECK_EQ(row.rows(), 1);
  return GatherRows(row, std::vector<int>(static_cast<size_t>(n), 0));
}

Tensor Exp(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::exp(x); },
      [](float, float y) { return y; });
}

Tensor Log(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::log(x); },
      [](float x, float) { return 1.0f / x; });
}

Tensor Abs(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::fabs(x); },
      [](float x, float) { return x > 0 ? 1.0f : (x < 0 ? -1.0f : 0.0f); });
}

Tensor Sigmoid(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); });
}

Tensor Tanh(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

Tensor Relu(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return x > 0 ? x : 0.0f; },
      [](float x, float) { return x > 0 ? 1.0f : 0.0f; });
}

Tensor LeakyRelu(const Tensor& a, float negative_slope) {
  return UnaryOp(
      a,
      [negative_slope](float x) {
        return x > 0 ? x : negative_slope * x;
      },
      [negative_slope](float x, float) {
        return x > 0 ? 1.0f : negative_slope;
      });
}

Tensor ConcatCols(const Tensor& a, const Tensor& b) {
  const Matrix& av = a.value();
  const Matrix& bv = b.value();
  M2G_CHECK_EQ(av.rows(), bv.rows());
  Matrix out = Matrix::Uninit(av.rows(), av.cols() + bv.cols());
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < av.cols(); ++c) out.At(r, c) = av.At(r, c);
    for (int c = 0; c < bv.cols(); ++c) {
      out.At(r, av.cols() + c) = bv.At(r, c);
    }
  }
  NodePtr node = NewNode(std::move(out));
  NodePtr an = a.node(), bn = b.node();
  const int ac = av.cols(), bc = bv.cols();
  return MakeOp(node, {an, bn}, [an, bn, ac, bc](TensorNode* self) {
    if (an->requires_grad) {
      Matrix& g = an->EnsureGrad();
      for (int r = 0; r < g.rows(); ++r) {
        for (int c = 0; c < ac; ++c) g.At(r, c) += self->grad.At(r, c);
      }
    }
    if (bn->requires_grad) {
      Matrix& g = bn->EnsureGrad();
      for (int r = 0; r < g.rows(); ++r) {
        for (int c = 0; c < bc; ++c) {
          g.At(r, c) += self->grad.At(r, ac + c);
        }
      }
    }
  });
}

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  M2G_CHECK(!parts.empty());
  const int cols = parts[0].cols();
  int rows = 0;
  for (const Tensor& p : parts) {
    M2G_CHECK_EQ(p.cols(), cols);
    rows += p.rows();
  }
  Matrix out = Matrix::Uninit(rows, cols);
  int at = 0;
  for (const Tensor& p : parts) {
    const Matrix& pv = p.value();
    for (int r = 0; r < pv.rows(); ++r) {
      for (int c = 0; c < cols; ++c) out.At(at + r, c) = pv.At(r, c);
    }
    at += pv.rows();
  }
  NodePtr node = NewNode(std::move(out));
  std::vector<NodePtr> parents;
  parents.reserve(parts.size());
  for (const Tensor& p : parts) parents.push_back(p.node());
  std::vector<NodePtr> captured = parents;
  return MakeOp(node, std::move(parents), [captured](TensorNode* self) {
    int at = 0;
    for (const NodePtr& p : captured) {
      if (p->requires_grad) {
        Matrix& g = p->EnsureGrad();
        for (int r = 0; r < g.rows(); ++r) {
          for (int c = 0; c < g.cols(); ++c) {
            g.At(r, c) += self->grad.At(at + r, c);
          }
        }
      }
      at += p->value.rows();
    }
  });
}

Tensor SliceCols(const Tensor& a, int start, int len) {
  const Matrix& av = a.value();
  M2G_CHECK(start >= 0 && len >= 0 && start + len <= av.cols());
  Matrix out = Matrix::Uninit(av.rows(), len);
  for (int r = 0; r < av.rows(); ++r) {
    for (int c = 0; c < len; ++c) out.At(r, c) = av.At(r, start + c);
  }
  NodePtr node = NewNode(std::move(out));
  NodePtr an = a.node();
  return MakeOp(node, {an}, [an, start, len](TensorNode* self) {
    if (!an->requires_grad) return;
    Matrix& g = an->EnsureGrad();
    for (int r = 0; r < g.rows(); ++r) {
      for (int c = 0; c < len; ++c) {
        g.At(r, start + c) += self->grad.At(r, c);
      }
    }
  });
}

Tensor SliceRows(const Tensor& a, int start, int len) {
  const Matrix& av = a.value();
  M2G_CHECK(start >= 0 && len >= 0 && start + len <= av.rows());
  Matrix out = Matrix::Uninit(len, av.cols());
  for (int r = 0; r < len; ++r) {
    for (int c = 0; c < av.cols(); ++c) out.At(r, c) = av.At(start + r, c);
  }
  NodePtr node = NewNode(std::move(out));
  NodePtr an = a.node();
  return MakeOp(node, {an}, [an, start, len](TensorNode* self) {
    if (!an->requires_grad) return;
    Matrix& g = an->EnsureGrad();
    for (int r = 0; r < len; ++r) {
      for (int c = 0; c < g.cols(); ++c) {
        g.At(start + r, c) += self->grad.At(r, c);
      }
    }
  });
}

Tensor Row(const Tensor& a, int i) { return SliceRows(a, i, 1); }

Tensor GatherRows(const Tensor& a, const std::vector<int>& indices) {
  const Matrix& av = a.value();
  Matrix out = Matrix::Uninit(static_cast<int>(indices.size()), av.cols());
  for (size_t r = 0; r < indices.size(); ++r) {
    M2G_CHECK(indices[r] >= 0 && indices[r] < av.rows());
    for (int c = 0; c < av.cols(); ++c) {
      out.At(static_cast<int>(r), c) = av.At(indices[r], c);
    }
  }
  NodePtr node = NewNode(std::move(out));
  NodePtr an = a.node();
  return MakeOp(node, {an}, [an, indices](TensorNode* self) {
    if (!an->requires_grad) return;
    Matrix& g = an->EnsureGrad();
    for (size_t r = 0; r < indices.size(); ++r) {
      for (int c = 0; c < g.cols(); ++c) {
        g.At(indices[r], c) += self->grad.At(static_cast<int>(r), c);
      }
    }
  });
}

Tensor Sum(const Tensor& a) {
  Matrix out = Matrix::Uninit(1, 1);
  out[0] = a.value().Sum();
  NodePtr node = NewNode(std::move(out));
  NodePtr an = a.node();
  return MakeOp(node, {an}, [an](TensorNode* self) {
    if (!an->requires_grad) return;
    Matrix& g = an->EnsureGrad();
    const float d = self->grad[0];
    for (size_t i = 0; i < g.size(); ++i) g[i] += d;
  });
}

Tensor Mean(const Tensor& a) {
  const float inv = 1.0f / static_cast<float>(a.value().size());
  return Scale(Sum(a), inv);
}

Tensor SumRows(const Tensor& a) {
  const Matrix& av = a.value();
  Matrix out(1, av.cols());
  for (int r = 0; r < av.rows(); ++r) {
    for (int c = 0; c < av.cols(); ++c) out.At(0, c) += av.At(r, c);
  }
  NodePtr node = NewNode(std::move(out));
  NodePtr an = a.node();
  return MakeOp(node, {an}, [an](TensorNode* self) {
    if (!an->requires_grad) return;
    Matrix& g = an->EnsureGrad();
    for (int r = 0; r < g.rows(); ++r) {
      for (int c = 0; c < g.cols(); ++c) g.At(r, c) += self->grad.At(0, c);
    }
  });
}

Tensor Transpose(const Tensor& a) {
  NodePtr node = NewNode(TransposeRaw(a.value()));
  NodePtr an = a.node();
  return MakeOp(node, {an}, [an](TensorNode* self) {
    if (!an->requires_grad) return;
    an->EnsureGrad().AddInPlace(TransposeRaw(self->grad));
  });
}

Tensor MaskedSoftmaxRow(const Tensor& logits, const std::vector<bool>& mask) {
  const Matrix& lv = logits.value();
  M2G_CHECK_EQ(lv.rows(), 1);
  M2G_CHECK_EQ(static_cast<size_t>(lv.cols()), mask.size());
  float max_v = -std::numeric_limits<float>::infinity();
  bool any = false;
  for (int i = 0; i < lv.cols(); ++i) {
    if (mask[i]) {
      any = true;
      max_v = std::max(max_v, lv[i]);
    }
  }
  M2G_CHECK_MSG(any, "MaskedSoftmaxRow: all positions masked");
  Matrix out = Matrix::Uninit(1, lv.cols());
  double denom = 0;
  for (int i = 0; i < lv.cols(); ++i) {
    if (mask[i]) {
      out[i] = std::exp(lv[i] - max_v);
      denom += out[i];
    }
  }
  for (int i = 0; i < lv.cols(); ++i) {
    out[i] = mask[i] ? static_cast<float>(out[i] / denom) : 0.0f;
  }
  NodePtr node = NewNode(std::move(out));
  NodePtr ln = logits.node();
  return MakeOp(node, {ln}, [ln, mask](TensorNode* self) {
    if (!ln->requires_grad) return;
    // dL/dx_i = y_i * (g_i - sum_j g_j y_j), restricted to the mask.
    Matrix& g = ln->EnsureGrad();
    double dot = 0;
    for (int i = 0; i < g.cols(); ++i) {
      if (mask[i]) dot += self->grad[i] * self->value[i];
    }
    for (int i = 0; i < g.cols(); ++i) {
      if (mask[i]) {
        g[i] += self->value[i] *
                (self->grad[i] - static_cast<float>(dot));
      }
    }
  });
}

Tensor MaskedCrossEntropy(const Tensor& logits, int target,
                          const std::vector<bool>& mask) {
  const Matrix& lv = logits.value();
  M2G_CHECK_EQ(lv.rows(), 1);
  M2G_CHECK_EQ(static_cast<size_t>(lv.cols()), mask.size());
  M2G_CHECK(target >= 0 && target < lv.cols());
  M2G_CHECK_MSG(mask[target], "MaskedCrossEntropy: target is masked out");
  float max_v = -std::numeric_limits<float>::infinity();
  for (int i = 0; i < lv.cols(); ++i) {
    if (mask[i]) max_v = std::max(max_v, lv[i]);
  }
  double denom = 0;
  for (int i = 0; i < lv.cols(); ++i) {
    if (mask[i]) denom += std::exp(lv[i] - max_v);
  }
  const float log_z = max_v + static_cast<float>(std::log(denom));
  Matrix out = Matrix::Uninit(1, 1);
  out[0] = log_z - lv[target];
  NodePtr node = NewNode(std::move(out));
  NodePtr ln = logits.node();
  return MakeOp(node, {ln}, [ln, target, mask, max_v,
                             denom](TensorNode* self) {
    if (!ln->requires_grad) return;
    // dL/dx_i = softmax_i - [i == target], over the mask.
    Matrix& g = ln->EnsureGrad();
    const float d = self->grad[0];
    for (int i = 0; i < g.cols(); ++i) {
      if (!mask[i]) continue;
      const float p =
          static_cast<float>(std::exp(ln->value[i] - max_v) / denom);
      g[i] += d * (p - (i == target ? 1.0f : 0.0f));
    }
  });
}

Tensor L1Loss(const Tensor& pred, float target) {
  M2G_CHECK_EQ(pred.value().size(), 1);
  return Abs(AddScalar(pred, -target));
}

Tensor LayerNormRows(const Tensor& x, const Tensor& gain,
                     const Tensor& bias, float eps) {
  const Matrix& xv = x.value();
  const int n = xv.rows(), d = xv.cols();
  M2G_CHECK_EQ(gain.value().rows(), 1);
  M2G_CHECK_EQ(gain.value().cols(), d);
  M2G_CHECK_EQ(bias.value().rows(), 1);
  M2G_CHECK_EQ(bias.value().cols(), d);

  Matrix out = Matrix::Uninit(n, d);
  Matrix x_hat = Matrix::Uninit(n, d);
  std::vector<float> inv_std(n);
  for (int r = 0; r < n; ++r) {
    double mean = 0;
    for (int c = 0; c < d; ++c) mean += xv.At(r, c);
    mean /= d;
    double var = 0;
    for (int c = 0; c < d; ++c) {
      const double diff = xv.At(r, c) - mean;
      var += diff * diff;
    }
    var /= d;
    inv_std[r] = static_cast<float>(1.0 / std::sqrt(var + eps));
    for (int c = 0; c < d; ++c) {
      x_hat.At(r, c) =
          (xv.At(r, c) - static_cast<float>(mean)) * inv_std[r];
      out.At(r, c) =
          gain.value().At(0, c) * x_hat.At(r, c) + bias.value().At(0, c);
    }
  }
  NodePtr node = NewNode(std::move(out));
  NodePtr xn = x.node(), gn = gain.node(), bn = bias.node();
  return MakeOp(
      node, {xn, gn, bn},
      [xn, gn, bn, x_hat = std::move(x_hat),
       inv_std = std::move(inv_std)](TensorNode* self) {
        const int n = self->value.rows(), d = self->value.cols();
        if (gn->requires_grad) {
          Matrix& gg = gn->EnsureGrad();
          for (int r = 0; r < n; ++r) {
            for (int c = 0; c < d; ++c) {
              gg.At(0, c) += self->grad.At(r, c) * x_hat.At(r, c);
            }
          }
        }
        if (bn->requires_grad) {
          Matrix& bg = bn->EnsureGrad();
          for (int r = 0; r < n; ++r) {
            for (int c = 0; c < d; ++c) {
              bg.At(0, c) += self->grad.At(r, c);
            }
          }
        }
        if (xn->requires_grad) {
          Matrix& xg = xn->EnsureGrad();
          for (int r = 0; r < n; ++r) {
            // g_hat = gain * dy; dx = (g_hat - mean(g_hat)
            //         - x_hat * mean(g_hat * x_hat)) * inv_std.
            double mean_g = 0, mean_gx = 0;
            for (int c = 0; c < d; ++c) {
              const double gh =
                  gn->value.At(0, c) * self->grad.At(r, c);
              mean_g += gh;
              mean_gx += gh * x_hat.At(r, c);
            }
            mean_g /= d;
            mean_gx /= d;
            for (int c = 0; c < d; ++c) {
              const double gh =
                  gn->value.At(0, c) * self->grad.At(r, c);
              xg.At(r, c) += static_cast<float>(
                  (gh - mean_g - x_hat.At(r, c) * mean_gx) *
                  inv_std[r]);
            }
          }
        }
      });
}

int ArgmaxMaskedRow(const Matrix& row, const std::vector<bool>& mask) {
  M2G_CHECK_EQ(row.rows(), 1);
  M2G_CHECK_EQ(static_cast<size_t>(row.cols()), mask.size());
  int best = -1;
  float best_v = -std::numeric_limits<float>::infinity();
  for (int i = 0; i < row.cols(); ++i) {
    if (mask[i] && row[i] > best_v) {
      best_v = row[i];
      best = i;
    }
  }
  M2G_CHECK_MSG(best >= 0, "ArgmaxMaskedRow: all positions masked");
  return best;
}

}  // namespace m2g
