#ifndef M2G_TENSOR_POOL_H_
#define M2G_TENSOR_POOL_H_

#include <cstddef>
#include <cstdint>

namespace m2g {

namespace internal {

/// Allocates a buffer of at least `n` floats from the current thread's
/// size-class pool (or the heap when no arena is active / the pool is
/// globally disabled). `*capacity` receives the size-class capacity the
/// buffer actually has, which must be passed back to PoolFree.
float* PoolAlloc(size_t n, size_t* capacity);

/// Returns a PoolAlloc'd buffer. Inside an arena scope the buffer is
/// retained on the current thread's free list for reuse; otherwise it
/// goes straight back to the heap. Buffers may be freed on a different
/// thread than the one that allocated them.
void PoolFree(float* ptr, size_t capacity);

}  // namespace internal

/// Thread-local size-class free-list pool behind Matrix storage.
///
/// Pooling is scoped: buffers recycle only while an ArenaGuard is active
/// on the thread, so long-lived allocations (parameters, snapshots) never
/// bloat the free lists while hot-path temporaries (per-request inference
/// graphs, per-sample training graphs) are served malloc-free once the
/// pool is warm. Buffers are plain heap blocks of the class size, so a
/// Matrix that escapes its arena scope stays valid and can be destroyed
/// anywhere, on any thread.
class TensorPool {
 public:
  /// Per-thread counters. hits/misses only count allocations made while
  /// an arena was active; unpooled_allocs counts the rest. heap_allocs =
  /// pool_misses + unpooled_allocs. bytes/buffers_retained describe the
  /// thread's current free lists.
  struct Stats {
    uint64_t pool_hits = 0;
    uint64_t pool_misses = 0;
    uint64_t unpooled_allocs = 0;
    uint64_t heap_allocs = 0;
    uint64_t bytes_retained = 0;
    uint64_t buffers_retained = 0;
  };

  static Stats ThreadStats();
  /// Zeroes the current thread's hit/miss/alloc counters (retention
  /// gauges are left alone — they describe live state).
  static void ResetThreadStats();
  /// Frees every buffer retained on the current thread's free lists.
  static void ReleaseRetained();

  /// True while an ArenaGuard is active on the current thread.
  static bool ArenaActive();

  /// Global kill switch (default on). While disabled, ArenaGuard scopes
  /// are inert and every allocation goes to the heap — used to A/B the
  /// pooled and plain storage paths; results are bitwise-identical.
  static void set_enabled(bool enabled);
  static bool enabled();

  /// Process-wide hit/miss totals, flushed whenever an outermost
  /// ArenaGuard exits (monitoring counters for the serving layer).
  struct ArenaCounters {
    uint64_t hits = 0;
    uint64_t misses = 0;
  };
  static ArenaCounters AggregatedArenaCounters();
};

/// RAII scope that turns on pooled recycling for the current thread:
/// every buffer released inside the scope is bulk-retained on the
/// thread's free lists instead of returned to the heap, so the next
/// request/sample graph with the same shape profile allocates without
/// touching malloc. Guards nest; retention persists across scopes (that
/// is what makes steady-state serving malloc-free). Matrices may safely
/// outlive the scope — they own their buffers and fall back to plain
/// heap frees outside any arena.
class ArenaGuard {
 public:
  ArenaGuard();
  ~ArenaGuard();

  ArenaGuard(const ArenaGuard&) = delete;
  ArenaGuard& operator=(const ArenaGuard&) = delete;

  /// Hits/misses/allocs since this guard was entered (this thread only).
  TensorPool::Stats ScopeStats() const;

 private:
  TensorPool::Stats entry_;
};

/// Flat float buffer with deep-copy value semantics, allocated through
/// the pool. The `Storage` behind every Matrix.
class Storage {
 public:
  Storage() = default;
  /// kZeroed memsets the buffer; kUninitialized skips the fill for
  /// kernels that fully overwrite their output.
  enum class Init { kZeroed, kUninitialized };
  Storage(size_t n, Init init);
  ~Storage();

  Storage(const Storage& other);
  Storage& operator=(const Storage& other);
  Storage(Storage&& other) noexcept;
  Storage& operator=(Storage&& other) noexcept;

  float* data() { return data_; }
  const float* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  float* data_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = 0;  // size-class capacity, >= size_
};

}  // namespace m2g

#endif  // M2G_TENSOR_POOL_H_
