#include "tensor/grad_mode.h"

namespace m2g {
namespace {

thread_local bool t_grad_enabled = true;

}  // namespace

bool GradMode::enabled() { return t_grad_enabled; }

void GradMode::set_enabled(bool enabled) { t_grad_enabled = enabled; }

}  // namespace m2g
