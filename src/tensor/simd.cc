#include "tensor/simd.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.h"

#if defined(__x86_64__) || defined(__i386__)
#define M2G_SIMD_X86 1
#include <immintrin.h>
#endif

// This translation unit is compiled with -ffp-contract=off (see
// src/CMakeLists.txt) and none of the target attributes below include
// "fma", so the compiler can neither contract the separate mul/add
// statements of the scalar tier nor emit vfmadd for the intrinsic
// tiers: every tier performs the same two-rounding mul-then-add per
// output element, which is what makes them bit-for-bit interchangeable.

namespace m2g::simd {
namespace {

struct KernelTable {
  Tier tier;
  void (*dense_row)(const float*, int, const float*, int, float*);
  void (*gat_logits)(const float*, const float*, float, float, int, float*);
  void (*add)(float*, const float*, size_t);
  void (*relu)(float*, size_t);
};

// --- Scalar tier: the pre-SIMD kernels, verbatim ---------------------------
// (These are the bitwise reference implementations; matrix.cc carried
// them before the tier split. simd_parity_test compares every other
// tier against this one byte for byte.)

/// Register-blocked dense row product: four b-rows per pass over
/// out_row, one load/store of each accumulator instead of four. The
/// per-column additions stay separate statements in ascending-p order
/// (no reassociation), so per element this is the plain ascending-p
/// accumulation loop, bit for bit.
void DenseRowScalar(const float* x, int k, const float* b, int m,
                    float* out_row) {
  int p = 0;
  for (; p + 4 <= k; p += 4) {
    const float a0 = x[p], a1 = x[p + 1], a2 = x[p + 2], a3 = x[p + 3];
    const float* b0 = b + static_cast<size_t>(p) * m;
    const float* b1 = b0 + m;
    const float* b2 = b1 + m;
    const float* b3 = b2 + m;
    for (int j = 0; j < m; ++j) {
      float acc = out_row[j];
      acc += a0 * b0[j];
      acc += a1 * b1[j];
      acc += a2 * b2[j];
      acc += a3 * b3[j];
      out_row[j] = acc;
    }
  }
  for (; p < k; ++p) {
    const float av = x[p];
    const float* brow = b + static_cast<size_t>(p) * m;
    for (int j = 0; j < m; ++j) out_row[j] += av * brow[j];
  }
}

void GatLogitsScalar(const float* s_dst, const float* s_edge_row,
                     float s_src_i, float slope, int n, float* logits) {
  for (int j = 0; j < n; ++j) {
    // (s_dst[j] + s_e[ij]) first, then + s_src[i]: the Add node ran
    // before the AddScalarTensor node on the legacy path.
    const float t = s_dst[j] + s_edge_row[j];
    const float pre = t + s_src_i;
    logits[j] = pre > 0.0f ? pre : slope * pre;
  }
}

void AddScalar(float* a, const float* b, size_t n) {
  for (size_t i = 0; i < n; ++i) a[i] += b[i];
}

void ReluScalar(float* a, size_t n) {
  for (size_t i = 0; i < n; ++i) a[i] = a[i] > 0.0f ? a[i] : 0.0f;
}

constexpr KernelTable kScalarTable = {Tier::kScalar, &DenseRowScalar,
                                      &GatLogitsScalar, &AddScalar,
                                      &ReluScalar};

#ifdef M2G_SIMD_X86

// --- SSE2 tier (4 lanes) ---------------------------------------------------
// Baseline on x86-64; the explicit target attribute keeps the functions
// well-defined on i386 builds too.

__attribute__((target("sse2"))) void DenseRowSse2(const float* x, int k,
                                                  const float* b, int m,
                                                  float* out_row) {
  int p = 0;
  for (; p + 4 <= k; p += 4) {
    const __m128 a0 = _mm_set1_ps(x[p]);
    const __m128 a1 = _mm_set1_ps(x[p + 1]);
    const __m128 a2 = _mm_set1_ps(x[p + 2]);
    const __m128 a3 = _mm_set1_ps(x[p + 3]);
    const float* b0 = b + static_cast<size_t>(p) * m;
    const float* b1 = b0 + m;
    const float* b2 = b1 + m;
    const float* b3 = b2 + m;
    int j = 0;
    for (; j + 4 <= m; j += 4) {
      __m128 acc = _mm_loadu_ps(out_row + j);
      acc = _mm_add_ps(acc, _mm_mul_ps(a0, _mm_loadu_ps(b0 + j)));
      acc = _mm_add_ps(acc, _mm_mul_ps(a1, _mm_loadu_ps(b1 + j)));
      acc = _mm_add_ps(acc, _mm_mul_ps(a2, _mm_loadu_ps(b2 + j)));
      acc = _mm_add_ps(acc, _mm_mul_ps(a3, _mm_loadu_ps(b3 + j)));
      _mm_storeu_ps(out_row + j, acc);
    }
    for (; j < m; ++j) {
      float acc = out_row[j];
      acc += x[p] * b0[j];
      acc += x[p + 1] * b1[j];
      acc += x[p + 2] * b2[j];
      acc += x[p + 3] * b3[j];
      out_row[j] = acc;
    }
  }
  for (; p < k; ++p) {
    const __m128 av = _mm_set1_ps(x[p]);
    const float* brow = b + static_cast<size_t>(p) * m;
    int j = 0;
    for (; j + 4 <= m; j += 4) {
      _mm_storeu_ps(out_row + j,
                    _mm_add_ps(_mm_loadu_ps(out_row + j),
                               _mm_mul_ps(av, _mm_loadu_ps(brow + j))));
    }
    for (; j < m; ++j) out_row[j] += x[p] * brow[j];
  }
}

__attribute__((target("sse2"))) void GatLogitsSse2(const float* s_dst,
                                                   const float* s_edge_row,
                                                   float s_src_i, float slope,
                                                   int n, float* logits) {
  const __m128 vsrc = _mm_set1_ps(s_src_i);
  const __m128 vslope = _mm_set1_ps(slope);
  const __m128 vzero = _mm_setzero_ps();
  int j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m128 t =
        _mm_add_ps(_mm_loadu_ps(s_dst + j), _mm_loadu_ps(s_edge_row + j));
    const __m128 pre = _mm_add_ps(t, vsrc);
    const __m128 neg = _mm_mul_ps(vslope, pre);
    // pre > 0 ? pre : slope * pre as mask arithmetic (SSE2 has no
    // blendv): NaN lanes compare false and take the slope * pre arm,
    // exactly like the scalar ternary.
    const __m128 gt = _mm_cmpgt_ps(pre, vzero);
    _mm_storeu_ps(logits + j,
                  _mm_or_ps(_mm_and_ps(gt, pre), _mm_andnot_ps(gt, neg)));
  }
  for (; j < n; ++j) {
    const float t = s_dst[j] + s_edge_row[j];
    const float pre = t + s_src_i;
    logits[j] = pre > 0.0f ? pre : slope * pre;
  }
}

__attribute__((target("sse2"))) void AddSse2(float* a, const float* b,
                                             size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(a + i,
                  _mm_add_ps(_mm_loadu_ps(a + i), _mm_loadu_ps(b + i)));
  }
  for (; i < n; ++i) a[i] += b[i];
}

__attribute__((target("sse2"))) void ReluSse2(float* a, size_t n) {
  const __m128 vzero = _mm_setzero_ps();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 v = _mm_loadu_ps(a + i);
    // False lanes (<= 0, -0.0, NaN) become the +0.0 bit pattern — the
    // scalar ternary's 0.0f.
    _mm_storeu_ps(a + i, _mm_and_ps(_mm_cmpgt_ps(v, vzero), v));
  }
  for (; i < n; ++i) a[i] = a[i] > 0.0f ? a[i] : 0.0f;
}

constexpr KernelTable kSse2Table = {Tier::kSse2, &DenseRowSse2,
                                    &GatLogitsSse2, &AddSse2, &ReluSse2};

// --- AVX2 tier (8 lanes) ---------------------------------------------------

__attribute__((target("avx2"))) void DenseRowAvx2(const float* x, int k,
                                                  const float* b, int m,
                                                  float* out_row) {
  int p = 0;
  for (; p + 4 <= k; p += 4) {
    const __m256 a0 = _mm256_set1_ps(x[p]);
    const __m256 a1 = _mm256_set1_ps(x[p + 1]);
    const __m256 a2 = _mm256_set1_ps(x[p + 2]);
    const __m256 a3 = _mm256_set1_ps(x[p + 3]);
    const float* b0 = b + static_cast<size_t>(p) * m;
    const float* b1 = b0 + m;
    const float* b2 = b1 + m;
    const float* b3 = b2 + m;
    int j = 0;
    for (; j + 8 <= m; j += 8) {
      __m256 acc = _mm256_loadu_ps(out_row + j);
      acc = _mm256_add_ps(acc, _mm256_mul_ps(a0, _mm256_loadu_ps(b0 + j)));
      acc = _mm256_add_ps(acc, _mm256_mul_ps(a1, _mm256_loadu_ps(b1 + j)));
      acc = _mm256_add_ps(acc, _mm256_mul_ps(a2, _mm256_loadu_ps(b2 + j)));
      acc = _mm256_add_ps(acc, _mm256_mul_ps(a3, _mm256_loadu_ps(b3 + j)));
      _mm256_storeu_ps(out_row + j, acc);
    }
    for (; j < m; ++j) {
      float acc = out_row[j];
      acc += x[p] * b0[j];
      acc += x[p + 1] * b1[j];
      acc += x[p + 2] * b2[j];
      acc += x[p + 3] * b3[j];
      out_row[j] = acc;
    }
  }
  for (; p < k; ++p) {
    const __m256 av = _mm256_set1_ps(x[p]);
    const float* brow = b + static_cast<size_t>(p) * m;
    int j = 0;
    for (; j + 8 <= m; j += 8) {
      _mm256_storeu_ps(
          out_row + j,
          _mm256_add_ps(_mm256_loadu_ps(out_row + j),
                        _mm256_mul_ps(av, _mm256_loadu_ps(brow + j))));
    }
    for (; j < m; ++j) out_row[j] += x[p] * brow[j];
  }
}

__attribute__((target("avx2"))) void GatLogitsAvx2(const float* s_dst,
                                                   const float* s_edge_row,
                                                   float s_src_i, float slope,
                                                   int n, float* logits) {
  const __m256 vsrc = _mm256_set1_ps(s_src_i);
  const __m256 vslope = _mm256_set1_ps(slope);
  const __m256 vzero = _mm256_setzero_ps();
  int j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 t = _mm256_add_ps(_mm256_loadu_ps(s_dst + j),
                                   _mm256_loadu_ps(s_edge_row + j));
    const __m256 pre = _mm256_add_ps(t, vsrc);
    const __m256 neg = _mm256_mul_ps(vslope, pre);
    // Ordered quiet > : NaN lanes select slope * pre like the scalar
    // ternary's else-branch.
    const __m256 gt = _mm256_cmp_ps(pre, vzero, _CMP_GT_OQ);
    _mm256_storeu_ps(logits + j, _mm256_blendv_ps(neg, pre, gt));
  }
  for (; j < n; ++j) {
    const float t = s_dst[j] + s_edge_row[j];
    const float pre = t + s_src_i;
    logits[j] = pre > 0.0f ? pre : slope * pre;
  }
}

__attribute__((target("avx2"))) void AddAvx2(float* a, const float* b,
                                             size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        a + i, _mm256_add_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) a[i] += b[i];
}

__attribute__((target("avx2"))) void ReluAvx2(float* a, size_t n) {
  const __m256 vzero = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(a + i);
    _mm256_storeu_ps(
        a + i, _mm256_and_ps(_mm256_cmp_ps(v, vzero, _CMP_GT_OQ), v));
  }
  for (; i < n; ++i) a[i] = a[i] > 0.0f ? a[i] : 0.0f;
}

constexpr KernelTable kAvx2Table = {Tier::kAvx2, &DenseRowAvx2,
                                    &GatLogitsAvx2, &AddAvx2, &ReluAvx2};

#endif  // M2G_SIMD_X86

const KernelTable* TableFor(Tier tier) {
#ifdef M2G_SIMD_X86
  switch (tier) {
    case Tier::kAvx2:
      return &kAvx2Table;
    case Tier::kSse2:
      return &kSse2Table;
    case Tier::kScalar:
      return &kScalarTable;
  }
#else
  (void)tier;
#endif
  return &kScalarTable;
}

/// Startup tier: detected hardware, possibly lowered by M2G_SIMD. Read
/// once, lazily, at the first kernel call (so setenv in a test harness
/// that runs before any tensor work still takes effect).
const KernelTable* InitialTable() {
  Tier tier = DetectedTier();
  if (const char* env = std::getenv("M2G_SIMD")) {
    Tier requested;
    if (ParseTierName(env, &requested)) {
      if (requested > tier) {
        std::fprintf(stderr,
                     "[simd] M2G_SIMD=%s not supported by this CPU; "
                     "using %s\n",
                     env, TierName(tier));
      } else {
        tier = requested;
      }
    } else if (std::strcmp(env, "auto") != 0 && env[0] != '\0') {
      std::fprintf(stderr,
                   "[simd] unknown M2G_SIMD value \"%s\" "
                   "(want off|scalar|sse2|avx2|auto); using %s\n",
                   env, TierName(tier));
    }
  }
  return TableFor(tier);
}

std::atomic<const KernelTable*>& ActiveTable() {
  static std::atomic<const KernelTable*> table{InitialTable()};
  return table;
}

const KernelTable* Active() {
  return ActiveTable().load(std::memory_order_acquire);
}

/// Pull-time gauges, same pattern as the pool's arena counters: the
/// value is read from the dispatch state only when a snapshot is taken.
struct SimdMetricsRegistrar {
  SimdMetricsRegistrar() {
    obs::MetricsRegistry::Global().AddCallbackGauge(
        "tensor.simd_tier",
        [] { return static_cast<double>(static_cast<int>(ActiveTier())); });
    obs::MetricsRegistry::Global().AddCallbackGauge(
        "tensor.simd_tier_detected", [] {
          return static_cast<double>(static_cast<int>(DetectedTier()));
        });
  }
};
const SimdMetricsRegistrar g_simd_metrics_registrar;

}  // namespace

Tier DetectedTier() {
#ifdef M2G_SIMD_X86
  static const Tier tier = [] {
    __builtin_cpu_init();
    if (__builtin_cpu_supports("avx2")) return Tier::kAvx2;
    if (__builtin_cpu_supports("sse2")) return Tier::kSse2;
    return Tier::kScalar;
  }();
  return tier;
#else
  return Tier::kScalar;
#endif
}

Tier ActiveTier() { return Active()->tier; }

void SetTier(Tier tier) {
  if (tier > DetectedTier()) tier = DetectedTier();
  ActiveTable().store(TableFor(tier), std::memory_order_release);
  obs::MetricsRegistry::Global().counter("tensor.simd.tier_sets").Increment();
}

bool ParseTierName(const char* name, Tier* out) {
  if (name == nullptr) return false;
  if (std::strcmp(name, "off") == 0 || std::strcmp(name, "scalar") == 0) {
    *out = Tier::kScalar;
    return true;
  }
  if (std::strcmp(name, "sse2") == 0) {
    *out = Tier::kSse2;
    return true;
  }
  if (std::strcmp(name, "avx2") == 0) {
    *out = Tier::kAvx2;
    return true;
  }
  return false;
}

const char* TierName(Tier tier) {
  switch (tier) {
    case Tier::kAvx2:
      return "avx2";
    case Tier::kSse2:
      return "sse2";
    case Tier::kScalar:
      break;
  }
  return "scalar";
}

void DenseRowMatMul(const float* x, int k, const float* b, int m,
                    float* out_row) {
  Active()->dense_row(x, k, b, m, out_row);
}

void GatLogitsRow(const float* s_dst, const float* s_edge_row, float s_src_i,
                  float slope, int n, float* logits) {
  Active()->gat_logits(s_dst, s_edge_row, s_src_i, slope, n, logits);
}

void AddInPlace(float* a, const float* b, size_t n) {
  Active()->add(a, b, n);
}

void ReluInPlace(float* a, size_t n) { Active()->relu(a, n); }

}  // namespace m2g::simd
