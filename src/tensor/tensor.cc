#include "tensor/tensor.h"

#include <algorithm>
#include <atomic>
#include <unordered_set>

#include "tensor/grad_buffer.h"

namespace m2g {

namespace internal {
namespace {
std::atomic<uint64_t> g_next_node_id{1};
}  // namespace

std::shared_ptr<TensorNode> NewNode(Matrix value) {
  auto node = std::make_shared<TensorNode>();
  node->value = std::move(value);
  node->id = g_next_node_id.fetch_add(1, std::memory_order_relaxed);
  return node;
}

Matrix& TensorNode::EnsureGrad() {
  if (IsParameterLeaf()) {
    if (GradBuffer* buffer = ActiveGradBuffer()) return buffer->GradFor(this);
  }
  if (!grad.SameShape(value)) grad = Matrix(value.rows(), value.cols());
  return grad;
}

}  // namespace internal

Tensor Tensor::Constant(Matrix value) {
  return FromNode(internal::NewNode(std::move(value)));
}

Tensor Tensor::Parameter(Matrix value) {
  auto node = internal::NewNode(std::move(value));
  node->requires_grad = true;
  return FromNode(std::move(node));
}

Tensor Tensor::Scalar(float value) {
  Matrix m(1, 1);
  m[0] = value;
  return Constant(std::move(m));
}

Tensor Tensor::FromNode(std::shared_ptr<internal::TensorNode> node) {
  Tensor t;
  t.node_ = std::move(node);
  return t;
}

float Tensor::item() const {
  M2G_CHECK_MSG(defined(),
                "item() called on a null (default-constructed) Tensor");
  M2G_CHECK_EQ(node_->value.size(), 1u);
  return node_->value[0];
}

void Tensor::ZeroGrad() const {
  M2G_CHECK(defined());
  if (node_->grad.SameShape(node_->value)) node_->grad.SetZero();
}

void Tensor::Backward() const {
  M2G_CHECK(defined());
  M2G_CHECK_MSG(node_->value.size() == 1u,
                "Backward() must start from a scalar");

  // Iterative DFS topological sort over the parent DAG.
  std::vector<internal::TensorNode*> topo;
  std::unordered_set<internal::TensorNode*> visited;
  struct Frame {
    internal::TensorNode* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({node_.get(), 0});
  visited.insert(node_.get());
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_parent < f.node->parents.size()) {
      internal::TensorNode* p = f.node->parents[f.next_parent++].get();
      if (visited.insert(p).second) stack.push_back({p, 0});
    } else {
      topo.push_back(f.node);
      stack.pop_back();
    }
  }
  // topo is now parents-before-children; we want reverse order.
  std::reverse(topo.begin(), topo.end());

  node_->EnsureGrad();
  node_->grad[0] += 1.0f;
  for (internal::TensorNode* n : topo) {
    if (!n->requires_grad || !n->backward_fn) continue;
    if (!n->grad.SameShape(n->value)) continue;  // no grad ever reached it
    n->backward_fn(n);
  }
}

}  // namespace m2g
