#include "core/trainer.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/logging.h"

namespace m2g::core {

Trainer::Trainer(M2g4Rtp* model, const TrainConfig& config)
    : model_(model), config_(config) {}

void Trainer::SnapshotParams() {
  best_params_.clear();
  for (const Tensor& p : model_->Parameters()) {
    best_params_.push_back(p.value());
  }
}

void Trainer::RestoreParams() {
  if (best_params_.empty()) return;
  auto params = model_->Parameters();
  M2G_CHECK_EQ(params.size(), best_params_.size());
  for (size_t i = 0; i < params.size(); ++i) {
    params[i].node()->value = best_params_[i];
  }
}

float Trainer::Evaluate(const synth::Dataset& dataset) const {
  if (dataset.samples.empty()) return 0.0f;
  double total = 0;
  for (const synth::Sample& s : dataset.samples) {
    total += model_->ComputeLoss(s).item();
  }
  return static_cast<float>(total / dataset.samples.size());
}

std::vector<EpochStats> Trainer::Fit(const synth::Dataset& train,
                                     const synth::Dataset& val) {
  M2G_CHECK(!train.samples.empty());
  nn::Adam optimizer(model_->Parameters(), config_.learning_rate, 0.9f,
                     0.999f, 1e-8f, config_.weight_decay);
  Rng rng(config_.shuffle_seed);

  std::vector<EpochStats> history;
  float best_val = std::numeric_limits<float>::infinity();
  int stale_epochs = 0;

  std::vector<int> order(train.samples.size());
  std::iota(order.begin(), order.end(), 0);

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    // Anneal the AOI-guidance scheduled sampling: teacher-forced guides
    // early, inference-aligned guides by the final epoch.
    model_->set_guidance_sampling_prob(
        config_.epochs > 1
            ? static_cast<float>(epoch) / (config_.epochs - 1)
            : 1.0f);
    rng.Shuffle(&order);
    int limit = static_cast<int>(order.size());
    if (config_.max_samples_per_epoch > 0) {
      limit = std::min(limit, config_.max_samples_per_epoch);
    }
    double epoch_loss = 0;
    LossBreakdown mean{};
    optimizer.ZeroGrad();
    int in_batch = 0;
    for (int idx = 0; idx < limit; ++idx) {
      LossBreakdown bd;
      Tensor loss = model_->ComputeLoss(train.samples[order[idx]], &bd);
      // Scale so a batch of accumulated gradients averages the samples.
      Scale(loss, 1.0f / static_cast<float>(config_.batch_size)).Backward();
      epoch_loss += bd.total;
      mean.aoi_route += bd.aoi_route;
      mean.location_route += bd.location_route;
      mean.aoi_time += bd.aoi_time;
      mean.location_time += bd.location_time;
      if (++in_batch == config_.batch_size || idx + 1 == limit) {
        optimizer.ClipGradNorm(config_.grad_clip_norm);
        optimizer.Step();
        optimizer.ZeroGrad();
        in_batch = 0;
      }
    }
    EpochStats stats;
    stats.epoch = epoch;
    stats.train_loss = static_cast<float>(epoch_loss / limit);
    mean.aoi_route /= limit;
    mean.location_route /= limit;
    mean.aoi_time /= limit;
    mean.location_time /= limit;
    stats.mean_breakdown = mean;
    stats.val_loss = Evaluate(val);
    history.push_back(stats);
    if (config_.verbose) {
      M2G_LOG(Info) << "epoch " << epoch << " train=" << stats.train_loss
                    << " val=" << stats.val_loss
                    << " (route_l=" << mean.location_route
                    << " time_l=" << mean.location_time << ")";
    }
    const float val_metric =
        val.samples.empty() ? stats.train_loss : stats.val_loss;
    if (val_metric < best_val) {
      best_val = val_metric;
      stale_epochs = 0;
      SnapshotParams();
    } else if (config_.early_stop_patience > 0 &&
               ++stale_epochs >= config_.early_stop_patience) {
      if (config_.verbose) {
        M2G_LOG(Info) << "early stop at epoch " << epoch;
      }
      break;
    }
  }
  RestoreParams();
  return history;
}

}  // namespace m2g::core
