#include "core/trainer.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "obs/trace.h"
#include "tensor/grad_buffer.h"
#include "tensor/grad_mode.h"
#include "tensor/pool.h"

namespace m2g::core {
namespace {

/// splitmix64-style mix for per-sample guidance streams: deterministic in
/// (seed, epoch, sample) and independent of the thread count, so
/// data-parallel runs reproduce bitwise for any fixed --threads=N.
uint64_t MixSeed(uint64_t seed, uint64_t salt, uint64_t index) {
  uint64_t x = seed + 0x9e3779b97f4a7c15ULL * (salt + 1) +
               0xbf58476d1ce4e5b9ULL * (index + 1);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

constexpr uint64_t kEvalSalt = 0xe7a1;

/// Training telemetry. All writes are observe-only (gauge stores and
/// span clocks) — the numeric path, RNG streams and iteration order are
/// untouched, so fixed-seed training stays bitwise identical.
obs::Histogram& ShardStepHistogram() {
  static obs::Histogram& hist =
      obs::StageHistogram("train.shard_step.ms");
  return hist;
}

}  // namespace

/// Everything one shard accumulates while walking its slice of a batch:
/// leaf gradients (redirected via GradBufferScope) and loss statistics,
/// reduced on the main thread in shard order.
struct Trainer::ShardAccum {
  internal::GradBuffer grads;
  double loss_sum = 0;
  double aoi_route = 0;
  double location_route = 0;
  double aoi_time = 0;
  double location_time = 0;
};

Trainer::Trainer(M2g4Rtp* model, const TrainConfig& config)
    : model_(model), config_(config) {}

Trainer::~Trainer() = default;

ThreadPool* Trainer::Pool(int threads) const {
  if (pool_ == nullptr || pool_->num_threads() < threads) {
    pool_ = std::make_unique<ThreadPool>(threads);
  }
  return pool_.get();
}

void Trainer::SnapshotParams() {
  best_params_.clear();
  for (const Tensor& p : model_->Parameters()) {
    best_params_.push_back(p.value());
  }
}

void Trainer::RestoreParams() {
  if (best_params_.empty()) return;
  auto params = model_->Parameters();
  M2G_CHECK_EQ(params.size(), best_params_.size());
  for (size_t i = 0; i < params.size(); ++i) {
    params[i].node()->value = best_params_[i];
  }
}

float Trainer::Evaluate(const synth::Dataset& dataset) const {
  if (dataset.samples.empty()) return 0.0f;
  static obs::Histogram& eval_hist = obs::StageHistogram("train.eval.ms");
  obs::TraceSpan eval_span("train.eval.ms", &eval_hist);
  Stopwatch watch;
  // Evaluation never backpropagates: no-grad forward is bitwise-identical
  // and skips all graph construction.
  NoGradGuard no_grad;
  const int threads = ResolveThreads(config_.threads);
  double total = 0;
  if (threads == 1) {
    for (const synth::Sample& s : dataset.samples) {
      // Per-sample arena: the forward graph's buffers recycle across
      // samples instead of churning the heap.
      ArenaGuard arena;
      total += model_->ComputeLoss(s).item();
    }
  } else {
    const int64_t n = static_cast<int64_t>(dataset.samples.size());
    std::vector<double> shard_totals(threads, 0.0);
    Pool(threads)->ParallelForShards(
        n, threads, [&](int shard, int64_t begin, int64_t end) {
          NoGradGuard worker_no_grad;  // grad mode is thread-local
          double shard_total = 0;
          for (int64_t i = begin; i < end; ++i) {
            ArenaGuard arena;  // pool is thread-local, scope per-sample
            Rng grng(MixSeed(config_.shuffle_seed, kEvalSalt,
                             static_cast<uint64_t>(i)));
            shard_total +=
                model_->ComputeLoss(dataset.samples[i], nullptr, &grng)
                    .item();
          }
          shard_totals[shard] = shard_total;
        });
    for (double t : shard_totals) total += t;
  }
  const float mean =
      static_cast<float>(total / dataset.samples.size());
  obs::MetricsRegistry::Global().gauge("train.eval_loss").Set(mean);
  const double seconds = watch.ElapsedSeconds();
  if (seconds > 0) {
    obs::MetricsRegistry::Global()
        .gauge("train.eval_samples_per_sec")
        .Set(dataset.samples.size() / seconds);
  }
  return mean;
}

void Trainer::RunBatchParallel(const synth::Dataset& train,
                               const std::vector<int>& order,
                               int batch_begin, int batch_end, int epoch,
                               int threads, double* epoch_loss,
                               LossBreakdown* mean) {
  const int count = batch_end - batch_begin;
  std::vector<ShardAccum> accums(threads);
  Pool(threads)->ParallelForShards(
      count, threads, [&](int shard, int64_t begin, int64_t end) {
        obs::TraceSpan step_span("train.shard_step.ms",
                                 &ShardStepHistogram());
        ShardAccum& acc = accums[shard];
        internal::GradBufferScope scope(&acc.grads);
        for (int64_t k = begin; k < end; ++k) {
          // Per-sample-graph arena: forward values, node grads and the
          // backward's kernel scratch all recycle within the shard. The
          // leaf grads escape into `acc` — safe, Matrix storage is
          // deeply owned.
          ArenaGuard arena;
          const int idx = order[batch_begin + k];
          // Per-sample guidance stream: race-free across workers and
          // identical for every thread count.
          Rng grng(MixSeed(config_.shuffle_seed,
                           static_cast<uint64_t>(epoch),
                           static_cast<uint64_t>(idx)));
          LossBreakdown bd;
          Tensor loss = model_->ComputeLoss(train.samples[idx], &bd, &grng);
          Scale(loss, 1.0f / static_cast<float>(config_.batch_size))
              .Backward();
          acc.loss_sum += bd.total;
          acc.aoi_route += bd.aoi_route;
          acc.location_route += bd.location_route;
          acc.aoi_time += bd.aoi_time;
          acc.location_time += bd.location_time;
        }
      });
  // Deterministic reduction: parameter order outer, shard index inner.
  auto params = model_->Parameters();
  for (const Tensor& p : params) {
    internal::TensorNode* node = p.node().get();
    for (int s = 0; s < threads; ++s) {
      if (const Matrix* g = accums[s].grads.Find(node)) {
        node->EnsureGrad().AddInPlace(*g);
      }
    }
  }
  for (int s = 0; s < threads; ++s) {
    *epoch_loss += accums[s].loss_sum;
    mean->aoi_route += static_cast<float>(accums[s].aoi_route);
    mean->location_route += static_cast<float>(accums[s].location_route);
    mean->aoi_time += static_cast<float>(accums[s].aoi_time);
    mean->location_time += static_cast<float>(accums[s].location_time);
  }
}

std::vector<EpochStats> Trainer::Fit(const synth::Dataset& train,
                                     const synth::Dataset& val) {
  M2G_CHECK(!train.samples.empty());
  M2G_CHECK_GT(config_.batch_size, 0);
  const int threads = ResolveThreads(config_.threads);
  nn::Adam optimizer(model_->Parameters(), config_.learning_rate, 0.9f,
                     0.999f, 1e-8f, config_.weight_decay);
  Rng rng(config_.shuffle_seed);

  std::vector<EpochStats> history;
  float best_val = std::numeric_limits<float>::infinity();
  int stale_epochs = 0;

  std::vector<int> order(train.samples.size());
  std::iota(order.begin(), order.end(), 0);

  static obs::Histogram& epoch_hist = obs::StageHistogram("train.epoch.ms");
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    obs::TraceSpan epoch_span("train.epoch.ms", &epoch_hist);
    Stopwatch epoch_watch;
    // Anneal the AOI-guidance scheduled sampling: teacher-forced guides
    // early, inference-aligned guides by the final epoch.
    model_->set_guidance_sampling_prob(
        config_.epochs > 1
            ? static_cast<float>(epoch) / (config_.epochs - 1)
            : 1.0f);
    rng.Shuffle(&order);
    int limit = static_cast<int>(order.size());
    if (config_.max_samples_per_epoch > 0) {
      limit = std::min(limit, config_.max_samples_per_epoch);
    }
    double epoch_loss = 0;
    LossBreakdown mean{};
    optimizer.ZeroGrad();
    for (int batch_begin = 0; batch_begin < limit;
         batch_begin += config_.batch_size) {
      const int batch_end =
          std::min(limit, batch_begin + config_.batch_size);
      if (threads == 1) {
        // The exact pre-refactor serial path: per-sample graphs
        // accumulating straight into the shared parameter grads. The
        // whole batch is one "shard" for the step histogram.
        obs::TraceSpan step_span("train.shard_step.ms",
                                 &ShardStepHistogram());
        for (int idx = batch_begin; idx < batch_end; ++idx) {
          ArenaGuard arena;  // per-sample graph buffers recycle
          LossBreakdown bd;
          Tensor loss = model_->ComputeLoss(train.samples[order[idx]], &bd);
          // Scale so a batch of accumulated gradients averages the
          // samples.
          Scale(loss, 1.0f / static_cast<float>(config_.batch_size))
              .Backward();
          epoch_loss += bd.total;
          mean.aoi_route += bd.aoi_route;
          mean.location_route += bd.location_route;
          mean.aoi_time += bd.aoi_time;
          mean.location_time += bd.location_time;
        }
      } else {
        RunBatchParallel(train, order, batch_begin, batch_end, epoch,
                         threads, &epoch_loss, &mean);
      }
      optimizer.ClipGradNorm(config_.grad_clip_norm);
      optimizer.Step();
      optimizer.ZeroGrad();
    }
    EpochStats stats;
    stats.epoch = epoch;
    stats.train_loss = static_cast<float>(epoch_loss / limit);
    mean.aoi_route /= limit;
    mean.location_route /= limit;
    mean.aoi_time /= limit;
    mean.location_time /= limit;
    stats.mean_breakdown = mean;
    const double train_seconds = epoch_watch.ElapsedSeconds();
    stats.val_loss = Evaluate(val);
    history.push_back(stats);
    // Per-epoch telemetry: last-epoch gauges plus training throughput
    // over the samples this epoch actually visited.
    registry.gauge("train.epoch").Set(epoch);
    registry.gauge("train.epoch_loss").Set(stats.train_loss);
    registry.gauge("train.val_loss").Set(stats.val_loss);
    if (train_seconds > 0) {
      registry.gauge("train.samples_per_sec")
          .Set(limit / train_seconds);
    }
    if (config_.verbose) {
      M2G_LOG(Info) << "epoch " << epoch << " train=" << stats.train_loss
                    << " val=" << stats.val_loss
                    << " (route_l=" << mean.location_route
                    << " time_l=" << mean.location_time << ")";
    }
    const float val_metric =
        val.samples.empty() ? stats.train_loss : stats.val_loss;
    if (val_metric < best_val) {
      best_val = val_metric;
      stale_epochs = 0;
      SnapshotParams();
    } else if (config_.early_stop_patience > 0 &&
               ++stale_epochs >= config_.early_stop_patience) {
      if (config_.verbose) {
        M2G_LOG(Info) << "early stop at epoch " << epoch;
      }
      break;
    }
  }
  RestoreParams();
  return history;
}

}  // namespace m2g::core
