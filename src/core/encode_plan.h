#ifndef M2G_CORE_ENCODE_PLAN_H_
#define M2G_CORE_ENCODE_PLAN_H_

#include "tensor/matrix.h"

namespace m2g::core {

/// Request-scoped scratch for the encode fast path (the encoder analogue
/// of AttentionRouteDecoder::KeyCache): every buffer a fused GAT-e layer
/// needs, sized once per request from the largest level's node count and
/// reused across levels, layers and heads. All buffers draw from the
/// thread-local tensor pool, so a plan built inside a warm ArenaGuard
/// scope allocates without touching malloc — and, like the key cache, a
/// plan must not outlive the request's arena scope.
///
/// Per-head buffers (wh, msg, nw4, nw5) are packed at the head's output
/// width dh (hidden/P on hidden layers, hidden on the last), so a buffer
/// sized (max_nodes, hidden_dim) covers both layer kinds.
struct EncodePlan {
  /// Builds the scratch for graphs of up to `max_nodes` nodes at encoder
  /// width `hidden_dim`. Records the encode.plan_build.ms span and the
  /// encode.plan_builds counter.
  EncodePlan(int max_nodes, int hidden_dim);

  int max_nodes = 0;
  int hidden_dim = 0;

  Matrix wh;        // (max_n, d)    W1-projected nodes (Eq. 20)
  Matrix msg;       // (max_n, d)    W2 messages (Eq. 22)
  Matrix nw4;       // (max_n, d)    nodes * W4, hoisted out of Eq. 23
  Matrix nw5;       // (max_n, d)    nodes * W5, hoisted out of Eq. 23
  Matrix s_src;     // (max_n, 1)    wh * av_src
  Matrix s_dst;     // (max_n, 1)    wh * av_dst
  Matrix s_edge;    // (max_n^2, 1)  edges * ae
  Matrix logits;    // (1, max_n)    one attention row's logits
  Matrix alpha;     // (1, max_n)    one attention row's softmax
  Matrix row;       // (1, d)        per-row head scratch (last layer)
  Matrix node_out;  // (max_n, d)    layer output, pre-residual
  Matrix edge_out;  // (max_n^2, d)  layer output, pre-residual
};

}  // namespace m2g::core

#endif  // M2G_CORE_ENCODE_PLAN_H_
