#ifndef M2G_CORE_ENCODE_PLAN_H_
#define M2G_CORE_ENCODE_PLAN_H_

#include "tensor/matrix.h"

namespace m2g::core {

/// Request-scoped scratch for the encode fast path (the encoder analogue
/// of AttentionRouteDecoder::KeyCache): every buffer a fused GAT-e layer
/// needs, sized once per request from the largest level's node count and
/// reused across levels, layers and heads. All buffers draw from the
/// thread-local tensor pool, so a plan built inside a warm ArenaGuard
/// scope allocates without touching malloc — and, like the key cache, a
/// plan must not outlive the request's arena scope.
///
/// Per-head buffers (wh, msg, nw4, nw5) are packed at the head's output
/// width dh (hidden/P on hidden layers, hidden on the last), so a buffer
/// sized (max_nodes, hidden_dim) covers both layer kinds.
///
/// A plan built with `batch_capacity` B > 1 is one *page set*: every
/// per-request buffer is allocated B times over in one contiguous
/// allocation, and page b (the `*_page(b)` accessors) is the scratch of
/// the b-th request of a micro-batch. Page 0 has exactly the layout of a
/// single-request plan, so the single-request fast path is the B == 1
/// special case of the same code. `logits`, `alpha` and `row` stay
/// single: they are per-attention-row temporaries consumed before the
/// next row, never live across requests.
struct EncodePlan {
  /// Builds the scratch for graphs of up to `max_nodes` nodes at encoder
  /// width `hidden_dim`, with pages for `batch_capacity` concurrent
  /// requests. Records the encode.plan_build.ms span and the
  /// encode.plan_builds counter.
  EncodePlan(int max_nodes, int hidden_dim, int batch_capacity = 1);

  int max_nodes = 0;
  int hidden_dim = 0;
  int batch_capacity = 1;

  Matrix wh;        // (B*max_n, d)    W1-projected nodes (Eq. 20)
  Matrix msg;       // (B*max_n, d)    W2 messages (Eq. 22)
  Matrix nw4;       // (B*max_n, d)    nodes * W4, hoisted out of Eq. 23
  Matrix nw5;       // (B*max_n, d)    nodes * W5, hoisted out of Eq. 23
  Matrix s_src;     // (B*max_n, 1)    wh * av_src
  Matrix s_dst;     // (B*max_n, 1)    wh * av_dst
  Matrix s_edge;    // (B*max_n^2, 1)  edges * ae
  Matrix logits;    // (1, max_n)      one attention row's logits
  Matrix alpha;     // (1, max_n)      one attention row's softmax
  Matrix row;       // (1, d)          per-row head scratch (last layer)
  Matrix node_out;  // (B*max_n, d)    layer output, pre-residual
  Matrix edge_out;  // (B*max_n^2, d)  layer output, pre-residual

  // Page accessors: request b's slice of each buffer (b == 0 is the
  // whole buffer for a single-request plan).
  float* wh_page(int b) { return wh.data() + node_stride() * b; }
  float* msg_page(int b) { return msg.data() + node_stride() * b; }
  float* nw4_page(int b) { return nw4.data() + node_stride() * b; }
  float* nw5_page(int b) { return nw5.data() + node_stride() * b; }
  float* s_src_page(int b) { return s_src.data() + vec_stride() * b; }
  float* s_dst_page(int b) { return s_dst.data() + vec_stride() * b; }
  float* s_edge_page(int b) { return s_edge.data() + edge_vec_stride() * b; }
  float* node_out_page(int b) { return node_out.data() + node_stride() * b; }
  float* edge_out_page(int b) { return edge_out.data() + edge_stride() * b; }

 private:
  size_t node_stride() const {
    return static_cast<size_t>(max_nodes) * hidden_dim;
  }
  size_t vec_stride() const { return static_cast<size_t>(max_nodes); }
  size_t edge_vec_stride() const {
    return static_cast<size_t>(max_nodes) * max_nodes;
  }
  size_t edge_stride() const { return edge_vec_stride() * hidden_dim; }
};

}  // namespace m2g::core

#endif  // M2G_CORE_ENCODE_PLAN_H_
