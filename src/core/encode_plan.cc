#include "core/encode_plan.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace m2g::core {
namespace {

obs::Counter& PlanBuildCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().counter("encode.plan_builds");
  return c;
}

}  // namespace

EncodePlan::EncodePlan(int max_nodes_in, int hidden_dim_in) {
  static obs::Histogram& hist = obs::StageHistogram("encode.plan_build.ms");
  obs::TraceSpan span("encode.plan_build.ms", &hist);
  PlanBuildCounter().Increment();
  M2G_CHECK_GE(max_nodes_in, 1);
  M2G_CHECK_GE(hidden_dim_in, 1);
  max_nodes = max_nodes_in;
  hidden_dim = hidden_dim_in;
  const int n = max_nodes, d = hidden_dim;
  const int nn = n * n;
  wh = Matrix::Uninit(n, d);
  msg = Matrix::Uninit(n, d);
  nw4 = Matrix::Uninit(n, d);
  nw5 = Matrix::Uninit(n, d);
  s_src = Matrix::Uninit(n, 1);
  s_dst = Matrix::Uninit(n, 1);
  s_edge = Matrix::Uninit(nn, 1);
  logits = Matrix::Uninit(1, n);
  alpha = Matrix::Uninit(1, n);
  row = Matrix::Uninit(1, d);
  node_out = Matrix::Uninit(n, d);
  edge_out = Matrix::Uninit(nn, d);
}

}  // namespace m2g::core
