#include "core/encode_plan.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace m2g::core {
namespace {

obs::Counter& PlanBuildCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().counter("encode.plan_builds");
  return c;
}

}  // namespace

EncodePlan::EncodePlan(int max_nodes_in, int hidden_dim_in,
                       int batch_capacity_in) {
  static obs::Histogram& hist = obs::StageHistogram("encode.plan_build.ms");
  obs::TraceSpan span("encode.plan_build.ms", &hist);
  PlanBuildCounter().Increment();
  M2G_CHECK_GE(max_nodes_in, 1);
  M2G_CHECK_GE(hidden_dim_in, 1);
  M2G_CHECK_GE(batch_capacity_in, 1);
  max_nodes = max_nodes_in;
  hidden_dim = hidden_dim_in;
  batch_capacity = batch_capacity_in;
  const int n = max_nodes, d = hidden_dim, b = batch_capacity;
  const int nn = n * n;
  wh = Matrix::Uninit(b * n, d);
  msg = Matrix::Uninit(b * n, d);
  nw4 = Matrix::Uninit(b * n, d);
  nw5 = Matrix::Uninit(b * n, d);
  s_src = Matrix::Uninit(b * n, 1);
  s_dst = Matrix::Uninit(b * n, 1);
  s_edge = Matrix::Uninit(b * nn, 1);
  logits = Matrix::Uninit(1, n);
  alpha = Matrix::Uninit(1, n);
  row = Matrix::Uninit(1, d);
  node_out = Matrix::Uninit(b * n, d);
  edge_out = Matrix::Uninit(b * nn, d);
}

}  // namespace m2g::core
