#ifndef M2G_CORE_ROUTE_DECODER_H_
#define M2G_CORE_ROUTE_DECODER_H_

#include <memory>
#include <vector>

#include "core/config.h"
#include "nn/linear.h"
#include "nn/lstm_cell.h"

namespace m2g::core {

/// Attention-pointer route decoder (Eq. 27-31 at AOI level; Eq. 35 at
/// location level — identical structure with a wider node input). An LSTM
/// aggregates the already-emitted prefix into the current state h_{s-1};
/// the pointer scores every unvisited node j with
///   o_s^j = v^T tanh(W6 x_j + W7 [h_{s-1} || u])
/// and visited nodes are masked to -inf (Eq. 29-30).
class AttentionRouteDecoder : public nn::Module {
 public:
  AttentionRouteDecoder(int node_dim, int courier_dim, int lstm_hidden,
                        Rng* rng);

  /// Training pass: teacher-forced decoding along `label_route`; returns
  /// the mean per-step masked cross-entropy (Eq. 37/38 inner sum).
  Tensor TeacherForcedLoss(const Tensor& nodes, const Tensor& courier,
                           const std::vector<int>& label_route) const;

  /// Inference pass: greedy argmax decoding (Eq. 31). Returns a
  /// permutation of {0..n-1}.
  std::vector<int> DecodeGreedy(const Tensor& nodes,
                                const Tensor& courier) const;

  /// Beam-search decoding (extension beyond the paper's greedy Eq. 31):
  /// keeps the `beam_width` partial routes with the highest total
  /// log-probability. Width 1 is exactly DecodeGreedy.
  std::vector<int> DecodeBeam(const Tensor& nodes, const Tensor& courier,
                              int beam_width) const;

 private:
  /// (1, n) pointer logits for the current state.
  Tensor StepLogits(const Tensor& nodes, const Tensor& courier,
                    const nn::LstmState& state) const;

  int node_dim_;
  std::unique_ptr<nn::LstmCell> lstm_;
  Tensor start_token_;  // learned first LSTM input
  Tensor w6_;           // (node_dim, node_dim)
  Tensor w7_;           // (lstm_hidden + courier_dim, node_dim)
  Tensor v_;            // (node_dim, 1)
};

}  // namespace m2g::core

#endif  // M2G_CORE_ROUTE_DECODER_H_
