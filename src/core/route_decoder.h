#ifndef M2G_CORE_ROUTE_DECODER_H_
#define M2G_CORE_ROUTE_DECODER_H_

#include <memory>
#include <vector>

#include "core/config.h"
#include "nn/linear.h"
#include "nn/lstm_cell.h"

namespace m2g::core {

/// Attention-pointer route decoder (Eq. 27-31 at AOI level; Eq. 35 at
/// location level — identical structure with a wider node input). An LSTM
/// aggregates the already-emitted prefix into the current state h_{s-1};
/// the pointer scores every unvisited node j with
///   o_s^j = v^T tanh(W6 x_j + W7 [h_{s-1} || u])
/// and visited nodes are masked to -inf (Eq. 29-30).
///
/// Decoding runs a raw fast path (plain matrix math, no autograd): the
/// node key projection `keys = nodes W6` — which the naive loop recomputes
/// every step, and beam search once per hypothesis per step — is built
/// once per request into a KeyCache, live beam hypotheses advance through
/// one batched LSTM gate kernel per step, and scores come from a fused
/// tanh(keys + q)·v kernel with no (n, d) temporaries. Routes are
/// bitwise-identical to the per-step-recompute path, which is kept as
/// Decode*Legacy for the parity suite and the A/B bench (see
/// docs/architecture.md, "Decode fast path").
class AttentionRouteDecoder : public nn::Module {
 public:
  AttentionRouteDecoder(int node_dim, int courier_dim, int lstm_hidden,
                        Rng* rng);

  /// Request-scoped decode cache: the step-invariant half of the pointer
  /// score. `keys` and `courier` draw from the active arena and `nodes`
  /// is borrowed, so a cache must not outlive the request's ArenaGuard
  /// scope or the node tensor it was built from.
  struct KeyCache {
    Matrix keys;                    // (n, node_dim) = nodes * W6
    Matrix courier;                 // (1, courier_dim) copy of u
    const Matrix* nodes = nullptr;  // borrowed node embeddings
  };

  KeyCache BuildKeyCache(const Tensor& nodes, const Tensor& courier) const;

  /// (1, n) pointer scores over the cached keys for LSTM output row `h` —
  /// StepLogits(...).value() bit for bit, without the per-step key
  /// recompute (decode_parity_test pins this).
  Matrix StepScores(const KeyCache& cache, const Matrix& h) const;

  /// Training pass: teacher-forced decoding along `label_route`; returns
  /// the mean per-step masked cross-entropy (Eq. 37/38 inner sum). The
  /// step-invariant `MatMul(nodes, w6_)` is hoisted out of the step loop
  /// as a shared forward value (MatMulWithValue); the per-step graph is
  /// unchanged, so values and gradients stay bitwise-identical to
  /// TeacherForcedLossLegacy while the forward drops n-1 key projections.
  Tensor TeacherForcedLoss(const Tensor& nodes, const Tensor& courier,
                           const std::vector<int>& label_route) const;

  /// Reference implementation (per-step recompute) for the parity suite.
  Tensor TeacherForcedLossLegacy(const Tensor& nodes, const Tensor& courier,
                                 const std::vector<int>& label_route) const;

  /// Inference pass: greedy argmax decoding (Eq. 31) on the fast path.
  /// Returns a permutation of {0..n-1}.
  std::vector<int> DecodeGreedy(const Tensor& nodes,
                                const Tensor& courier) const;

  /// Beam-search decoding (extension beyond the paper's greedy Eq. 31):
  /// keeps the `beam_width` partial routes with the highest total
  /// log-probability, advancing all live hypotheses through one batched
  /// LSTM step. Width 1 is exactly DecodeGreedy. Equal-score expansions
  /// break ties by (hypothesis, node) so the kept beam is deterministic
  /// on every platform.
  std::vector<int> DecodeBeam(const Tensor& nodes, const Tensor& courier,
                              int beam_width) const;

  /// Legacy per-step-recompute decoders: reference implementations for
  /// decode_parity_test and the bench_decode_fastpath A/B.
  std::vector<int> DecodeGreedyLegacy(const Tensor& nodes,
                                      const Tensor& courier) const;
  std::vector<int> DecodeBeamLegacy(const Tensor& nodes,
                                    const Tensor& courier,
                                    int beam_width) const;

  /// (1, n) pointer logits for the current state, recomputing the key
  /// projection (the fast path reads StepScores against a KeyCache
  /// instead). Public as the parity-suite reference.
  Tensor StepLogits(const Tensor& nodes, const Tensor& courier,
                    const nn::LstmState& state) const;

 private:
  /// StepLogits with the key projection value supplied by the caller;
  /// builds the same per-step graph via MatMulWithValue.
  Tensor StepLogitsHoisted(const Tensor& nodes, const Tensor& courier,
                           const nn::LstmState& state,
                           const Matrix& keys_value) const;

  /// q = [h_row || u] * W7 written into q_out (node_dim floats).
  void QueryRow(const KeyCache& cache, const float* h_row,
                float* q_out) const;

  int node_dim_;
  int courier_dim_;
  int lstm_hidden_;
  std::unique_ptr<nn::LstmCell> lstm_;
  Tensor start_token_;  // learned first LSTM input
  Tensor w6_;           // (node_dim, node_dim)
  Tensor w7_;           // (lstm_hidden + courier_dim, node_dim)
  Tensor v_;            // (node_dim, 1)
};

}  // namespace m2g::core

#endif  // M2G_CORE_ROUTE_DECODER_H_
