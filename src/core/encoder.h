#ifndef M2G_CORE_ENCODER_H_
#define M2G_CORE_ENCODER_H_

#include <memory>
#include <vector>

#include <optional>

#include "core/feature_embed.h"
#include "core/gat_e.h"
#include "nn/lstm_cell.h"

namespace m2g::core {

struct LevelEncodeCache;  // core/incremental_encode.h

/// Encoder for one graph level: raw features -> embeddings (Eq. 18-19)
/// -> K GAT-e layers (Eq. 20-26) -> node representations x~.
///
/// The global feature vector is concatenated onto every node embedding
/// (§IV-B "Global Feature") and projected back to hidden_dim before the
/// first layer.
///
/// With `use_graph_encoder == false` (the "w/o graph" ablation) the GAT-e
/// stack is replaced by a bidirectional LSTM over the node sequence, as in
/// §V-E.
/// Encoder output: node representations plus (for the GAT-e variant) the
/// final edge representations z (n*n, hidden_dim). `edges` is undefined
/// for the BiLSTM ablation, which has no edge stream.
struct EncodedLevel {
  Tensor nodes;
  Tensor edges;
};

class LevelEncoder : public nn::Module {
 public:
  LevelEncoder(const ModelConfig& config, int continuous_dim, Rng* rng);

  /// Encodes one level. With a non-null `plan`, the GAT-e variant
  /// configured, and gradients disabled on the calling thread, the
  /// fused no-grad fast path (EncodeFast) runs through the plan's
  /// scratch; every other combination dispatches to EncodeLegacy. The
  /// two paths are bitwise-identical (encode_parity_test).
  EncodedLevel Encode(const graph::LevelGraph& level,
                      const Tensor& global_embed,
                      EncodePlan* plan = nullptr) const;

  /// Reference autograd path: the training encode, and the baseline the
  /// parity suite and bench_encode_fastpath A/B against.
  EncodedLevel EncodeLegacy(const graph::LevelGraph& level,
                            const Tensor& global_embed) const;

  /// Fused no-grad fast path: embeddings and the input projection run
  /// through the (constant-folded) ops, then every GAT-e layer through
  /// GatELayer::ForwardFast with in-place residuals on pool-backed
  /// buffers — zero autograd nodes and zero (n^2, d) op temporaries.
  /// Requires GradMode disabled and the GAT-e variant.
  EncodedLevel EncodeFast(const graph::LevelGraph& level,
                          const Tensor& global_embed,
                          EncodePlan* plan) const;

  /// Micro-batched fast path: EncodeFast for every (level, global_embed)
  /// pair through one shared plan page set — each request owns page s,
  /// and the GAT-e layers run in cross-request head-lockstep
  /// (GatELayer::ForwardFastBatch), streaming each weight once per batch.
  /// Result s is bitwise-identical to EncodeFast(levels[s],
  /// *global_embeds[s], plan). Requires GradMode disabled, the GAT-e
  /// variant, and levels.size() <= plan->batch_capacity.
  std::vector<EncodedLevel> EncodeFastBatch(
      const std::vector<const graph::LevelGraph*>& levels,
      const std::vector<const Tensor*>& global_embeds,
      EncodePlan* plan) const;

  /// EncodeFast that also warms an encode-session cache: per-layer node
  /// and edge representations plus the per-head z*W3 / s_edge
  /// intermediates are snapshotted into `cache` (sized/grown here) as
  /// the forward runs. The returned encodings are bitwise-identical to
  /// EncodeFast — the cache writes are pure copies. Defined in
  /// core/incremental_encode.cc.
  EncodedLevel EncodeFastCached(const graph::LevelGraph& level,
                                const Tensor& global_embed,
                                EncodePlan* plan,
                                LevelEncodeCache* cache) const;

  /// Incremental re-encode against a warm cache: `delta` describes how
  /// `level` evolved from `prev` (the graph `cache` encodes), and only
  /// the attention rows / edge pairs whose inputs or masks changed are
  /// recomputed per GAT-e layer. On success the cache is advanced to
  /// `level` and the returned encodings are bitwise-identical to
  /// EncodeFast(level, ...). Returns nullopt — cache contents then
  /// unspecified, caller must full-encode — when the delta is not
  /// single-node-explainable, exceeds the cache capacity, or dirties
  /// more than half the nodes (a delta would cost more than it saves).
  /// Defined in core/incremental_encode.cc.
  std::optional<EncodedLevel> EncodeDelta(const graph::LevelGraph& level,
                                          const graph::LevelGraph& prev,
                                          const graph::LevelGraphDelta& delta,
                                          const Tensor& global_embed,
                                          EncodePlan* plan,
                                          LevelEncodeCache* cache) const;

 private:
  EncodedLevel EncodeWithGat(const Tensor& nodes, const Tensor& edges,
                             const std::vector<bool>& adjacency) const;
  Tensor EncodeWithBiLstm(const Tensor& nodes) const;

  bool use_graph_;
  std::unique_ptr<LevelFeatureEmbed> feature_embed_;
  std::unique_ptr<nn::Linear> input_proj_;  // (hidden+courier) -> hidden
  std::vector<std::unique_ptr<GatELayer>> layers_;
  // BiLSTM fallback.
  std::unique_ptr<nn::LstmCell> fwd_lstm_;
  std::unique_ptr<nn::LstmCell> bwd_lstm_;
  std::unique_ptr<nn::Linear> bilstm_proj_;
};

}  // namespace m2g::core

#endif  // M2G_CORE_ENCODER_H_
