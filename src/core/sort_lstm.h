#ifndef M2G_CORE_SORT_LSTM_H_
#define M2G_CORE_SORT_LSTM_H_

#include <memory>
#include <vector>

#include "core/config.h"
#include "nn/linear.h"
#include "nn/lstm_cell.h"

namespace m2g::core {

/// SortLSTM (§IV-C, Eq. 32-33 and 36): consumes node representations
/// *sorted by the (predicted or teacher) route*, each concatenated with a
/// sinusoidal positional encoding of its route position, and emits one
/// arrival-time scalar per step. Outputs are not forced monotone — the
/// paper keeps that freedom as an error-correction mechanism against wrong
/// route predictions.
class SortLstm : public nn::Module {
 public:
  /// `edge_dim > 0` appends the encoder's representation of the edge
  /// *traversed into* each step's node (z_{prev,cur}) to the step input —
  /// the GAT-e edge stream explicitly encodes pairwise distance and
  /// deadline gaps (Eq. 14), which is exactly the per-leg information an
  /// arrival-time integrator needs. Step 0 uses the node's self-edge.
  SortLstm(int node_dim, int pos_dim, float pos_base, int lstm_hidden,
           Rng* rng, int edge_dim = 0);

  /// `route[s]` = node visited s-th. Returns predictions indexed by NODE
  /// (not by step): out[node] is that node's predicted arrival time, in
  /// the model's scaled units. `edges` is the (n*n, edge_dim) encoder
  /// edge stream; pass an undefined Tensor to feed zeros (e.g. the
  /// BiLSTM ablation, which has no edge representations).
  std::vector<Tensor> Forward(const Tensor& nodes,
                              const std::vector<int>& route,
                              const Tensor& edges = Tensor()) const;

  /// Transformer-style sinusoidal encoding of `pos` (1-based in the
  /// paper; we pass the 0-based step index).
  static Matrix PositionalEncoding(int pos, int dim, float base);

 private:
  int pos_dim_;
  float pos_base_;
  int edge_dim_;
  std::unique_ptr<nn::LstmCell> lstm_;
  std::unique_ptr<nn::Linear> head_;
};

}  // namespace m2g::core

#endif  // M2G_CORE_SORT_LSTM_H_
