#include "core/uncertainty_loss.h"

#include <cmath>

#include "common/string_util.h"

namespace m2g::core {

UncertaintyLoss::UncertaintyLoss() {
  for (int i = 0; i < 4; ++i) {
    s_[i] = AddParameter(StrFormat("log_sigma_sq_%d", i), Matrix(1, 1));
  }
}

Tensor UncertaintyLoss::Combine(const Tensor& aoi_route_loss,
                                const Tensor& location_route_loss,
                                const Tensor& aoi_time_loss,
                                const Tensor& location_time_loss) const {
  const Tensor losses[4] = {aoi_route_loss, location_route_loss,
                            aoi_time_loss, location_time_loss};
  // Route (classification) tasks carry the 1/(2 sigma^2) factor; time
  // (regression with L1) tasks carry 1/sigma^2, matching Eq. 41.
  const float task_scale[4] = {0.5f, 0.5f, 1.0f, 1.0f};
  Tensor total = Tensor::Scalar(0.0f);
  for (int i = 0; i < 4; ++i) {
    if (!losses[i].defined()) continue;
    Tensor weighted = Mul(Scale(Exp(Neg(s_[i])), task_scale[i]), losses[i]);
    total = Add(total, Add(weighted, Scale(s_[i], 0.5f)));
  }
  return total;
}

float UncertaintyLoss::Sigma(int task) const {
  M2G_CHECK(task >= 0 && task < 4);
  return std::exp(0.5f * s_[task].value()[0]);
}

Tensor FixedWeightCombine(const Tensor& aoi_route_loss,
                          const Tensor& location_route_loss,
                          const Tensor& aoi_time_loss,
                          const Tensor& location_time_loss,
                          float route_weight, float time_weight) {
  Tensor total = Tensor::Scalar(0.0f);
  if (aoi_route_loss.defined()) {
    total = Add(total, Scale(aoi_route_loss, route_weight));
  }
  if (location_route_loss.defined()) {
    total = Add(total, Scale(location_route_loss, route_weight));
  }
  if (aoi_time_loss.defined()) {
    total = Add(total, Scale(aoi_time_loss, time_weight));
  }
  if (location_time_loss.defined()) {
    total = Add(total, Scale(location_time_loss, time_weight));
  }
  return total;
}

}  // namespace m2g::core
