#ifndef M2G_CORE_MODEL_H_
#define M2G_CORE_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "core/encoder.h"
#include "core/route_decoder.h"
#include "core/sort_lstm.h"
#include "core/uncertainty_loss.h"
#include "obs/trace_context.h"

namespace m2g::core {

struct IncrementalState;   // core/incremental_encode.h
struct IncrementalResult;  // core/incremental_encode.h

/// Joint route-and-time prediction for one request (Eq. 10): location
/// route & per-location arrival gaps, plus the AOI-level outputs when the
/// model runs multi-level.
struct RtpPrediction {
  std::vector<int> location_route;          // permutation of locations
  std::vector<double> location_times_min;   // indexed by location node
  std::vector<int> aoi_route;               // empty if single-level
  std::vector<double> aoi_times_min;        // indexed by AOI node
};

/// Per-task loss values of one training pass (for logging and the
/// uncertainty tests).
struct LossBreakdown {
  float aoi_route = 0;
  float location_route = 0;
  float aoi_time = 0;
  float location_time = 0;
  float total = 0;
};

/// M2G4RTP (§IV): multi-level GAT-e encoder + multi-task decoders with
/// AOI-guided location decoding and homoscedastic-uncertainty loss
/// weighting. Ablation variants are configured through ModelConfig.
class M2g4Rtp : public nn::Module {
 public:
  explicit M2g4Rtp(const ModelConfig& config);

  /// Teacher-forced multi-task training loss for one sample (Eq. 37-41).
  /// The returned scalar tensor backpropagates into all four task heads
  /// (subject to the ablation switches). `guidance_rng`, when non-null,
  /// supplies the scheduled-sampling draw instead of the model's internal
  /// stream — data-parallel trainers pass a per-sample Rng so concurrent
  /// ComputeLoss calls are race-free and deterministic for any thread
  /// count; the default (nullptr) preserves the serial stream exactly.
  Tensor ComputeLoss(const synth::Sample& sample,
                     LossBreakdown* breakdown = nullptr,
                     Rng* guidance_rng = nullptr) const;

  /// Greedy joint prediction (§IV-D).
  RtpPrediction Predict(const synth::Sample& sample) const;

  /// Predict through a per-courier incremental-encode session: when the
  /// request's level graphs differ from `state`'s cached graphs by at
  /// most one inserted/removed node per level (and the global embedding
  /// is unchanged), only the affected GAT-e attention rows and edge
  /// pairs are re-encoded (LevelEncoder::EncodeDelta); otherwise — cold
  /// state, structural diff, capacity overflow, k-th-update refresh, or
  /// the ModelConfig::incremental_encode kill switch — it performs a
  /// full encode and (when sessions are enabled) rewarms the state.
  /// The prediction is bitwise-identical to Predict(sample) in every
  /// case (incremental_encode_test). Records encode.delta_steps /
  /// encode.full_fallbacks and the encode.delta.ms span. Not
  /// thread-safe per state: callers serialize on the owning session.
  /// Defined in core/incremental_encode.cc.
  RtpPrediction PredictIncremental(const synth::Sample& sample,
                                   IncrementalState* state,
                                   IncrementalResult* result =
                                       nullptr) const;

  /// Micro-batched prediction for the serving layer: result s is
  /// bitwise-identical to Predict(*samples[s]) for every sample
  /// (serve_test parity suite). With the fast encode path active the
  /// batch shares one EncodePlan page set and the GAT-e weight streams
  /// are traversed once per batch (EncodeFastBatch); decode and ETA
  /// heads run per sample, exactly Predict's tail. Under grad mode, the
  /// encode_fast_path kill switch, the BiLSTM ablation, or a
  /// single-sample batch, this is a plain Predict loop.
  ///
  /// `plan_capacity_hint`, when >= samples.size(), pre-sizes the plan's
  /// page count — the batch scheduler passes its max batch size so the
  /// pooled plan buffers keep one size class across variable batch
  /// compositions (deterministic pool reuse at steady state).
  ///
  /// `member_traces`, when given, carries one TraceContext per sample
  /// (the submitting request's trace): the batch-amortized graph/encode
  /// spans are fanned out to each member trace as shared-span references
  /// tagged with the batch size, and each sample's decode/ETA tail runs
  /// under that member's context so the per-request span tree stays
  /// complete through batching. Pure instrumentation — the numeric path
  /// is identical with or without it.
  std::vector<RtpPrediction> PredictBatch(
      const std::vector<const synth::Sample*>& samples,
      int plan_capacity_hint = 0,
      const std::vector<obs::TraceContext>* member_traces = nullptr) const;

  const ModelConfig& config() const { return config_; }
  const UncertaintyLoss& uncertainty() const { return *uncertainty_; }

  /// Scheduled sampling for the AOI->location guidance during training:
  /// with probability `p` the guidance (AOI route positions + times fed
  /// into Eq. 34) comes from the model's own greedy AOI decode — exactly
  /// the inference path — and otherwise from the teacher route. The
  /// Trainer anneals this from 0 (fast early learning) to 1 (no
  /// exposure bias at the end). Default 1.
  void set_guidance_sampling_prob(float p) { guidance_sampling_prob_ = p; }
  float guidance_sampling_prob() const { return guidance_sampling_prob_; }

  Status Save(const std::string& path) const;
  Status Load(const std::string& path);

 private:
  /// Location-decoder inputs x_in (Eq. 34): node representation, plus the
  /// positional encoding of its AOI within `aoi_route` and the (scaled)
  /// AOI arrival prediction, when multi-level.
  Tensor BuildLocationInputs(const Tensor& loc_nodes,
                             const std::vector<int>& loc_to_aoi,
                             const std::vector<int>& aoi_route,
                             const std::vector<Tensor>& aoi_times) const;

  /// Predict's decode + ETA tail, shared with PredictBatch: beam decode
  /// and SortLSTM heads over already-encoded levels, with the
  /// serve.stage.route_decode/eta_head spans.
  RtpPrediction DecodeWithEncodings(const synth::Sample& sample,
                                    const Tensor& u,
                                    const EncodedLevel& loc_enc,
                                    const EncodedLevel& aoi_enc) const;

  ModelConfig config_;
  float guidance_sampling_prob_ = 1.0f;
  mutable Rng guidance_rng_{0x6a1dacef00dULL};
  std::unique_ptr<GlobalFeatureEmbed> global_embed_;
  std::unique_ptr<LevelEncoder> location_encoder_;
  std::unique_ptr<LevelEncoder> aoi_encoder_;            // multi-level only
  std::unique_ptr<AttentionRouteDecoder> aoi_route_decoder_;
  std::unique_ptr<SortLstm> aoi_sort_lstm_;
  std::unique_ptr<AttentionRouteDecoder> location_route_decoder_;
  std::unique_ptr<SortLstm> location_sort_lstm_;
  std::unique_ptr<UncertaintyLoss> uncertainty_;
};

}  // namespace m2g::core

#endif  // M2G_CORE_MODEL_H_
