#include "core/sort_lstm.h"

#include <cmath>

namespace m2g::core {

SortLstm::SortLstm(int node_dim, int pos_dim, float pos_base,
                   int lstm_hidden, Rng* rng, int edge_dim)
    : pos_dim_(pos_dim), pos_base_(pos_base), edge_dim_(edge_dim) {
  lstm_ = std::make_unique<nn::LstmCell>(node_dim + pos_dim + edge_dim,
                                         lstm_hidden, rng);
  head_ = std::make_unique<nn::Linear>(lstm_hidden, 1, rng);
  AddChild("lstm", lstm_.get());
  AddChild("head", head_.get());
}

Matrix SortLstm::PositionalEncoding(int pos, int dim, float base) {
  Matrix p(1, dim);
  for (int k = 0; 2 * k < dim; ++k) {
    const double freq =
        std::pow(static_cast<double>(base),
                 2.0 * k / static_cast<double>(dim));
    p.At(0, 2 * k) = static_cast<float>(std::sin(pos / freq));
    if (2 * k + 1 < dim) {
      p.At(0, 2 * k + 1) = static_cast<float>(std::cos(pos / freq));
    }
  }
  return p;
}

std::vector<Tensor> SortLstm::Forward(const Tensor& nodes,
                                      const std::vector<int>& route,
                                      const Tensor& edges) const {
  const int n = nodes.rows();
  M2G_CHECK_EQ(static_cast<int>(route.size()), n);
  std::vector<Tensor> out(n);
  nn::LstmState state = lstm_->InitialState();
  for (int s = 0; s < n; ++s) {
    Tensor pos = Tensor::Constant(
        PositionalEncoding(s + 1, pos_dim_, pos_base_));
    Tensor input = ConcatCols(Row(nodes, route[s]), pos);  // Eq. 33
    if (edge_dim_ > 0) {
      Tensor leg;
      if (edges.defined()) {
        // Edge traversed into this node; the self-edge for step 0.
        const int prev = s == 0 ? route[s] : route[s - 1];
        leg = Row(edges, prev * n + route[s]);
        M2G_CHECK_EQ(leg.cols(), edge_dim_);
      } else {
        leg = Tensor::Constant(Matrix(1, edge_dim_));
      }
      input = ConcatCols(input, leg);
    }
    state = lstm_->Forward(input, state);
    out[route[s]] = head_->Forward(state.h);  // (1,1)
  }
  return out;
}

}  // namespace m2g::core
