#ifndef M2G_CORE_UNCERTAINTY_LOSS_H_
#define M2G_CORE_UNCERTAINTY_LOSS_H_

#include "nn/module.h"
#include "tensor/ops.h"

namespace m2g::core {

/// Homoscedastic-uncertainty multi-task weighting (Eq. 41, after Kendall &
/// Gal). We learn s_i = log sigma_i^2, so the total loss
///   L = 1/(2 s1^2) L^a_r + 1/(2 s2^2) L^l_r + 1/s3^2 L^a_t + 1/s4^2 L^l_t
///       + sum log sigma_i
/// becomes the unconditionally stable
///   L = 0.5 exp(-s1) L^a_r + 0.5 exp(-s2) L^l_r
///       + exp(-s3) L^a_t + exp(-s4) L^l_t + 0.5 (s1+s2+s3+s4).
class UncertaintyLoss : public nn::Module {
 public:
  UncertaintyLoss();

  /// Combines the four task losses. Any undefined tensor (e.g. the AOI
  /// losses in the "w/o AOI" ablation) contributes nothing and its
  /// uncertainty term is skipped.
  Tensor Combine(const Tensor& aoi_route_loss,
                 const Tensor& location_route_loss,
                 const Tensor& aoi_time_loss,
                 const Tensor& location_time_loss) const;

  /// Current sigma_i = exp(s_i / 2) values, for logging/tests.
  float Sigma(int task) const;

 private:
  Tensor s_[4];  // log sigma^2 per task, init 0 (sigma = 1)
};

/// The "w/o uncertainty" ablation: fixed manual weights, route:time =
/// 100:1 as in §V-E.
Tensor FixedWeightCombine(const Tensor& aoi_route_loss,
                          const Tensor& location_route_loss,
                          const Tensor& aoi_time_loss,
                          const Tensor& location_time_loss,
                          float route_weight = 100.0f,
                          float time_weight = 1.0f);

}  // namespace m2g::core

#endif  // M2G_CORE_UNCERTAINTY_LOSS_H_
