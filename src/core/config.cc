#include "core/config.h"

#include "common/status.h"

namespace m2g::core {

Status ValidateConfig(const ModelConfig& config) {
  if (config.hidden_dim <= 0 || config.num_heads <= 0 ||
      config.num_layers <= 0) {
    return Status::InvalidArgument("encoder dims must be positive");
  }
  if (config.hidden_dim % config.num_heads != 0) {
    return Status::InvalidArgument(
        "hidden_dim must be divisible by num_heads");
  }
  if (config.aoi_id_embed_dim + config.aoi_type_embed_dim >=
      config.hidden_dim) {
    return Status::InvalidArgument(
        "discrete embedding dims must leave room for continuous features");
  }
  if (config.pos_enc_dim % 2 != 0) {
    return Status::InvalidArgument("pos_enc_dim must be even");
  }
  if (config.time_scale_minutes <= 0) {
    return Status::InvalidArgument("time_scale_minutes must be positive");
  }
  if (config.beam_width < 1) {
    return Status::InvalidArgument("beam_width must be >= 1");
  }
  if (config.incremental_refresh_period < 1) {
    return Status::InvalidArgument(
        "incremental_refresh_period must be >= 1");
  }
  return Status::Ok();
}

}  // namespace m2g::core
