#include "core/model.h"

#include <algorithm>
#include <optional>

#include "core/encode_plan.h"
#include "graph/features.h"
#include "nn/serialize.h"
#include "obs/trace.h"
#include "tensor/grad_mode.h"
#include "tensor/simd.h"

namespace m2g::core {
namespace {

/// Mean L1 loss between per-node time predictions and (scaled) labels
/// (Eq. 39/40 inner sum).
Tensor TimeLoss(const std::vector<Tensor>& predictions,
                const std::vector<double>& labels_min, float scale) {
  M2G_CHECK_EQ(predictions.size(), labels_min.size());
  Tensor total = Tensor::Scalar(0.0f);
  for (size_t i = 0; i < predictions.size(); ++i) {
    total = Add(total,
                L1Loss(predictions[i],
                       static_cast<float>(labels_min[i]) / scale));
  }
  return Scale(total, 1.0f / static_cast<float>(predictions.size()));
}

/// Stops gradients: returns a constant copy (used by the two-step
/// ablation so time supervision cannot reach the shared encoder).
Tensor Detach(const Tensor& t) {
  return t.defined() ? Tensor::Constant(t.value()) : Tensor();
}

}  // namespace

M2g4Rtp::M2g4Rtp(const ModelConfig& config) : config_(config) {
  const Status config_status = ValidateConfig(config);
  M2G_CHECK_MSG(config_status.ok(), config_status.ToString().c_str());
  // Process-global kill switch (see the config comment): every kernel
  // tier is bitwise-identical, so this only trades speed for a known-
  // simple instruction stream.
  if (!config.simd_kernels) simd::SetTier(simd::Tier::kScalar);
  Rng rng(config.seed);
  global_embed_ = std::make_unique<GlobalFeatureEmbed>(config, &rng);
  AddChild("global_embed", global_embed_.get());
  location_encoder_ = std::make_unique<LevelEncoder>(
      config, graph::kLocationContinuousDim, &rng);
  AddChild("location_encoder", location_encoder_.get());

  const int d = config.hidden_dim;
  const int loc_in =
      config.use_aoi_level ? d + config.pos_enc_dim + 1 : d;
  if (config.use_aoi_level) {
    aoi_encoder_ = std::make_unique<LevelEncoder>(
        config, graph::kAoiContinuousDim, &rng);
    AddChild("aoi_encoder", aoi_encoder_.get());
    aoi_route_decoder_ = std::make_unique<AttentionRouteDecoder>(
        d, config.courier_dim, config.lstm_hidden_dim, &rng);
    AddChild("aoi_route_decoder", aoi_route_decoder_.get());
    aoi_sort_lstm_ = std::make_unique<SortLstm>(
        d, config.pos_enc_dim, config.pos_enc_base,
        config.lstm_hidden_dim, &rng,
        config.sort_lstm_edge_input ? d : 0);
    AddChild("aoi_sort_lstm", aoi_sort_lstm_.get());
  }
  location_route_decoder_ = std::make_unique<AttentionRouteDecoder>(
      loc_in, config.courier_dim, config.lstm_hidden_dim, &rng);
  AddChild("location_route_decoder", location_route_decoder_.get());
  location_sort_lstm_ = std::make_unique<SortLstm>(
      loc_in, config.pos_enc_dim, config.pos_enc_base,
      config.lstm_hidden_dim, &rng,
      config.sort_lstm_edge_input ? d : 0);
  AddChild("location_sort_lstm", location_sort_lstm_.get());
  uncertainty_ = std::make_unique<UncertaintyLoss>();
  AddChild("uncertainty", uncertainty_.get());
}

Tensor M2g4Rtp::BuildLocationInputs(
    const Tensor& loc_nodes, const std::vector<int>& loc_to_aoi,
    const std::vector<int>& aoi_route,
    const std::vector<Tensor>& aoi_times) const {
  if (!config_.use_aoi_level) return loc_nodes;
  const int n = loc_nodes.rows();
  // Position of each AOI node in the AOI route.
  std::vector<int> aoi_pos(aoi_route.size(), 0);
  for (size_t s = 0; s < aoi_route.size(); ++s) {
    aoi_pos[aoi_route[s]] = static_cast<int>(s);
  }
  std::vector<Tensor> rows;
  rows.reserve(n);
  for (int i = 0; i < n; ++i) {
    const int aoi_node = loc_to_aoi[i];
    Tensor pos = Tensor::Constant(SortLstm::PositionalEncoding(
        aoi_pos[aoi_node] + 1, config_.pos_enc_dim, config_.pos_enc_base));
    // Eq. 34: x_in = [x~ || p_aoi || y_aoi].
    rows.push_back(ConcatCols(ConcatCols(Row(loc_nodes, i), pos),
                              aoi_times[aoi_node]));
  }
  return ConcatRows(rows);
}

Tensor M2g4Rtp::ComputeLoss(const synth::Sample& sample,
                            LossBreakdown* breakdown,
                            Rng* guidance_rng) const {
  const graph::MultiLevelGraph g =
      BuildMultiLevelGraph(sample, config_.graph);
  Tensor u = global_embed_->Embed(sample);
  EncodedLevel loc_enc = location_encoder_->Encode(g.location, u);
  const Tensor& x_l = loc_enc.nodes;

  Tensor aoi_route_loss, aoi_time_loss;
  std::vector<int> guide_route;
  std::vector<Tensor> guide_times;
  if (config_.use_aoi_level) {
    EncodedLevel aoi_enc = aoi_encoder_->Encode(g.aoi, u);
    const Tensor& x_a = aoi_enc.nodes;
    aoi_route_loss = aoi_route_decoder_->TeacherForcedLoss(
        x_a, u, sample.aoi_route_label);
    // SortLSTM trains on the teacher route; at inference it follows the
    // predicted route (§IV-C).
    Tensor x_a_for_time = config_.two_step ? Detach(x_a) : x_a;
    Tensor z_a_for_time =
        config_.two_step ? Detach(aoi_enc.edges) : aoi_enc.edges;
    std::vector<Tensor> aoi_times = aoi_sort_lstm_->Forward(
        x_a_for_time, sample.aoi_route_label, z_a_for_time);
    aoi_time_loss = TimeLoss(aoi_times, sample.aoi_time_label_min,
                             config_.time_scale_minutes);
    // Guidance for the location level (Eq. 34). Scheduled sampling: with
    // probability guidance_sampling_prob_ the guide is the model's own
    // greedy AOI decode — exactly the inference path, so the location
    // decoder sees no train/test mismatch — otherwise the teacher route
    // (faster early optimization). Gradients still flow through the
    // guide times into the shared encoder (unless two-step).
    Rng* grng = guidance_rng != nullptr ? guidance_rng : &guidance_rng_;
    const bool predicted_guide =
        grng->NextDouble() < guidance_sampling_prob_;
    guide_route = predicted_guide
                      ? aoi_route_decoder_->DecodeGreedy(x_a, u)
                      : sample.aoi_route_label;
    guide_times =
        aoi_sort_lstm_->Forward(x_a_for_time, guide_route, z_a_for_time);
    if (config_.two_step) {
      for (Tensor& t : guide_times) t = Detach(t);
    }
  }

  Tensor x_in = BuildLocationInputs(x_l, sample.loc_to_aoi, guide_route,
                                    guide_times);
  Tensor loc_route_loss = location_route_decoder_->TeacherForcedLoss(
      x_in, u, sample.route_label);
  Tensor x_in_for_time = config_.two_step ? Detach(x_in) : x_in;
  Tensor z_l_for_time =
      config_.two_step ? Detach(loc_enc.edges) : loc_enc.edges;
  std::vector<Tensor> loc_times = location_sort_lstm_->Forward(
      x_in_for_time, sample.route_label, z_l_for_time);
  Tensor loc_time_loss = TimeLoss(loc_times, sample.time_label_min,
                                  config_.time_scale_minutes);

  Tensor total =
      config_.use_uncertainty_weighting
          ? uncertainty_->Combine(aoi_route_loss, loc_route_loss,
                                  aoi_time_loss, loc_time_loss)
          : FixedWeightCombine(aoi_route_loss, loc_route_loss,
                               aoi_time_loss, loc_time_loss);
  if (breakdown != nullptr) {
    breakdown->aoi_route =
        aoi_route_loss.defined() ? aoi_route_loss.item() : 0;
    breakdown->location_route = loc_route_loss.item();
    breakdown->aoi_time = aoi_time_loss.defined() ? aoi_time_loss.item() : 0;
    breakdown->location_time = loc_time_loss.item();
    breakdown->total = total.item();
  }
  return total;
}

RtpPrediction M2g4Rtp::Predict(const synth::Sample& sample) const {
  // Per-stage spans cover the Figure 7 serving pipeline after feature
  // extraction. Instrumentation is observe-only: the numeric operations
  // and their order are exactly the uninstrumented path (the AOI encode
  // is hoisted into the encode scope, but it reads and writes nothing
  // the location encode touches). Multi-level requests record two spans
  // each for route_decode and eta_head — one per level.
  static obs::Histogram& graph_hist =
      obs::StageHistogram("serve.stage.graph_build.ms");
  static obs::Histogram& encode_hist =
      obs::StageHistogram("serve.stage.encode.ms");

  graph::MultiLevelGraph g;
  {
    obs::TraceSpan span("serve.stage.graph_build.ms", &graph_hist);
    g = BuildMultiLevelGraph(sample, config_.graph);
  }
  Tensor u;
  EncodedLevel loc_enc;
  EncodedLevel aoi_enc;
  {
    obs::TraceSpan span("serve.stage.encode.ms", &encode_hist);
    // One pool-backed plan serves both levels' fused encodes. Under grad
    // mode, the BiLSTM ablation, or the kill switch, Encode dispatches
    // to the legacy path instead (same bits either way).
    std::optional<EncodePlan> plan;
    if (config_.encode_fast_path && config_.use_graph_encoder &&
        !GradMode::enabled()) {
      const int max_n = config_.use_aoi_level
                            ? std::max(g.location.n, g.aoi.n)
                            : g.location.n;
      plan.emplace(max_n, config_.hidden_dim);
    }
    EncodePlan* plan_ptr = plan.has_value() ? &*plan : nullptr;
    u = global_embed_->Embed(sample);
    loc_enc = location_encoder_->Encode(g.location, u, plan_ptr);
    if (config_.use_aoi_level) {
      aoi_enc = aoi_encoder_->Encode(g.aoi, u, plan_ptr);
    }
  }
  return DecodeWithEncodings(sample, u, loc_enc, aoi_enc);
}

RtpPrediction M2g4Rtp::DecodeWithEncodings(const synth::Sample& sample,
                                           const Tensor& u,
                                           const EncodedLevel& loc_enc,
                                           const EncodedLevel& aoi_enc) const {
  static obs::Histogram& decode_hist =
      obs::StageHistogram("serve.stage.route_decode.ms");
  static obs::Histogram& eta_hist =
      obs::StageHistogram("serve.stage.eta_head.ms");
  const Tensor& x_l = loc_enc.nodes;

  RtpPrediction pred;
  std::vector<Tensor> aoi_times;
  if (config_.use_aoi_level) {
    const Tensor& x_a = aoi_enc.nodes;
    {
      obs::TraceSpan span("serve.stage.route_decode.ms", &decode_hist);
      pred.aoi_route =
          aoi_route_decoder_->DecodeBeam(x_a, u, config_.beam_width);
    }
    obs::TraceSpan span("serve.stage.eta_head.ms", &eta_hist);
    aoi_times =
        aoi_sort_lstm_->Forward(x_a, pred.aoi_route, aoi_enc.edges);
    pred.aoi_times_min.resize(aoi_times.size());
    for (size_t k = 0; k < aoi_times.size(); ++k) {
      pred.aoi_times_min[k] = std::max(
          0.0, static_cast<double>(aoi_times[k].item()) *
                   config_.time_scale_minutes);
    }
  }
  Tensor x_in;
  {
    obs::TraceSpan span("serve.stage.route_decode.ms", &decode_hist);
    x_in = BuildLocationInputs(x_l, sample.loc_to_aoi, pred.aoi_route,
                               aoi_times);
    pred.location_route =
        location_route_decoder_->DecodeBeam(x_in, u, config_.beam_width);
  }
  obs::TraceSpan span("serve.stage.eta_head.ms", &eta_hist);
  std::vector<Tensor> loc_times = location_sort_lstm_->Forward(
      x_in, pred.location_route, loc_enc.edges);
  pred.location_times_min.resize(loc_times.size());
  for (size_t i = 0; i < loc_times.size(); ++i) {
    pred.location_times_min[i] =
        std::max(0.0, static_cast<double>(loc_times[i].item()) *
                          config_.time_scale_minutes);
  }
  return pred;
}

std::vector<RtpPrediction> M2g4Rtp::PredictBatch(
    const std::vector<const synth::Sample*>& samples,
    int plan_capacity_hint,
    const std::vector<obs::TraceContext>* member_traces) const {
  const int count = static_cast<int>(samples.size());
  M2G_CHECK_GE(count, 1);
  auto member_ctx = [&](int s) {
    // No member contexts supplied (direct PredictBatch callers): keep the
    // caller's ambient context so spans attribute exactly as before.
    if (member_traces == nullptr) return obs::CurrentTraceContext();
    return s < static_cast<int>(member_traces->size())
               ? (*member_traces)[s]
               : obs::TraceContext{};
  };
  const bool fast = config_.encode_fast_path && config_.use_graph_encoder &&
                    !GradMode::enabled();
  if (!fast || count == 1) {
    // Kill switch / ablation / trivial batch: the sequential reference.
    // Each member's Predict runs under its own trace context, so its
    // graph/encode/decode spans attribute directly (nothing is shared).
    std::vector<RtpPrediction> out;
    out.reserve(count);
    for (int s = 0; s < count; ++s) {
      obs::TraceContextScope scope(member_ctx(s));
      out.push_back(Predict(*samples[s]));
    }
    return out;
  }

  // Batch-wide stage spans on the same serve.stage.* histograms Predict
  // records: one span covers the whole micro-batch's stage, so per-batch
  // latency lands in the same place dashboards already read. The spans
  // attach to the leader's batch trace; their ids fan out to every
  // member trace below as shared-span references.
  static obs::Histogram& graph_hist =
      obs::StageHistogram("serve.stage.graph_build.ms");
  static obs::Histogram& encode_hist =
      obs::StageHistogram("serve.stage.encode.ms");

  uint64_t graph_span_id = 0;
  double graph_start_ms = obs::UptimeMs();
  double graph_ms = 0;
  std::vector<graph::MultiLevelGraph> graphs(count);
  {
    obs::TraceSpan span("serve.stage.graph_build.ms", &graph_hist);
    span.set_batch_size(count);
    for (int s = 0; s < count; ++s) {
      graphs[s] = BuildMultiLevelGraph(*samples[s], config_.graph);
    }
    graph_ms = span.Stop();
    graph_span_id = span.span_id();
  }
  uint64_t encode_span_id = 0;
  double encode_start_ms = obs::UptimeMs();
  double encode_ms = 0;
  std::vector<Tensor> u(count);
  std::vector<EncodedLevel> loc_enc(count), aoi_enc(count);
  {
    obs::TraceSpan span("serve.stage.encode.ms", &encode_hist);
    span.set_batch_size(count);
    int max_n = 0;
    for (const graph::MultiLevelGraph& g : graphs) {
      max_n = std::max(max_n, config_.use_aoi_level
                                  ? std::max(g.location.n, g.aoi.n)
                                  : g.location.n);
    }
    // One plan page set for the whole batch; the capacity hint keeps the
    // pooled buffers in one size class across batch compositions.
    EncodePlan plan(max_n, config_.hidden_dim,
                    std::max(plan_capacity_hint, count));
    std::vector<const graph::LevelGraph*> levels(count);
    std::vector<const Tensor*> embeds(count);
    for (int s = 0; s < count; ++s) {
      u[s] = global_embed_->Embed(*samples[s]);
      levels[s] = &graphs[s].location;
      embeds[s] = &u[s];
    }
    loc_enc = location_encoder_->EncodeFastBatch(levels, embeds, &plan);
    if (config_.use_aoi_level) {
      for (int s = 0; s < count; ++s) levels[s] = &graphs[s].aoi;
      aoi_enc = aoi_encoder_->EncodeFastBatch(levels, embeds, &plan);
    }
    encode_ms = span.Stop();
    encode_span_id = span.span_id();
  }
  if (member_traces != nullptr && graph_span_id != 0) {
    for (int s = 0; s < count; ++s) {
      const obs::TraceContext ctx = member_ctx(s);
      obs::RecordSharedSpanRef(ctx, "serve.stage.graph_build.ms",
                               graph_span_id, graph_start_ms, graph_ms,
                               count);
      obs::RecordSharedSpanRef(ctx, "serve.stage.encode.ms", encode_span_id,
                               encode_start_ms, encode_ms, count);
    }
  }
  std::vector<RtpPrediction> preds;
  preds.reserve(count);
  for (int s = 0; s < count; ++s) {
    // The decode/ETA tail is per-sample work: run it under the member's
    // context so its spans land in the owning request's tree.
    obs::TraceContextScope scope(member_ctx(s));
    preds.push_back(
        DecodeWithEncodings(*samples[s], u[s], loc_enc[s], aoi_enc[s]));
  }
  return preds;
}

Status M2g4Rtp::Save(const std::string& path) const {
  return nn::SaveModule(*this, path);
}

Status M2g4Rtp::Load(const std::string& path) {
  return nn::LoadModule(this, path);
}

}  // namespace m2g::core
