#ifndef M2G_CORE_TRAINER_H_
#define M2G_CORE_TRAINER_H_

#include <vector>

#include "core/model.h"
#include "nn/optimizer.h"

namespace m2g::core {

struct TrainConfig {
  int epochs = 8;
  float learning_rate = 2e-3f;
  /// Gradients accumulate over this many samples before a step.
  int batch_size = 8;
  float grad_clip_norm = 5.0f;
  /// Decoupled AdamW weight decay (0 = plain Adam).
  float weight_decay = 0.0f;
  /// Stop after this many epochs without val improvement (0 = never).
  int early_stop_patience = 3;
  uint64_t shuffle_seed = 7;
  bool verbose = false;
  /// Optional cap on train samples per epoch (0 = all), for quick runs.
  int max_samples_per_epoch = 0;
};

struct EpochStats {
  int epoch = 0;
  float train_loss = 0;
  float val_loss = 0;
  LossBreakdown mean_breakdown;
};

/// Trains any nn::Module-backed RTP model that exposes a ComputeLoss over
/// samples. Snapshots the best-validation parameters and restores them at
/// the end (early stopping).
class Trainer {
 public:
  Trainer(M2g4Rtp* model, const TrainConfig& config);

  /// Runs the full loop; returns per-epoch stats.
  std::vector<EpochStats> Fit(const synth::Dataset& train,
                              const synth::Dataset& val);

  /// Mean total loss over a dataset (no gradient updates).
  float Evaluate(const synth::Dataset& dataset) const;

 private:
  void SnapshotParams();
  void RestoreParams();

  M2g4Rtp* model_;
  TrainConfig config_;
  std::vector<Matrix> best_params_;
};

}  // namespace m2g::core

#endif  // M2G_CORE_TRAINER_H_
