#ifndef M2G_CORE_TRAINER_H_
#define M2G_CORE_TRAINER_H_

#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "core/model.h"
#include "nn/optimizer.h"

namespace m2g::core {

struct TrainConfig {
  int epochs = 8;
  float learning_rate = 2e-3f;
  /// Gradients accumulate over this many samples before a step.
  int batch_size = 8;
  float grad_clip_norm = 5.0f;
  /// Decoupled AdamW weight decay (0 = plain Adam).
  float weight_decay = 0.0f;
  /// Stop after this many epochs without val improvement (0 = never).
  int early_stop_patience = 3;
  uint64_t shuffle_seed = 7;
  bool verbose = false;
  /// Optional cap on train samples per epoch (0 = all), for quick runs.
  int max_samples_per_epoch = 0;
  /// Data-parallel workers per accumulation batch. 1 (default) is the
  /// exact serial trainer — bitwise-reproducible legacy behavior. N > 1
  /// shards each batch over N workers with per-thread gradient buffers,
  /// reduced deterministically (parameter order, then shard index), so
  /// results are reproducible for a fixed N and match the serial run
  /// within float tolerance. 0 resolves to DefaultThreads()
  /// (M2G_THREADS env or hardware concurrency).
  int threads = 1;
};

struct EpochStats {
  int epoch = 0;
  float train_loss = 0;
  float val_loss = 0;
  LossBreakdown mean_breakdown;
};

/// Trains any nn::Module-backed RTP model that exposes a ComputeLoss over
/// samples. Snapshots the best-validation parameters and restores them at
/// the end (early stopping).
class Trainer {
 public:
  Trainer(M2g4Rtp* model, const TrainConfig& config);
  ~Trainer();

  /// Runs the full loop; returns per-epoch stats.
  std::vector<EpochStats> Fit(const synth::Dataset& train,
                              const synth::Dataset& val);

  /// Mean total loss over a dataset (no gradient updates; runs the
  /// forward passes under NoGradGuard, in parallel when threads > 1).
  float Evaluate(const synth::Dataset& dataset) const;

 private:
  void SnapshotParams();
  void RestoreParams();

  /// Per-shard accumulation state of one data-parallel batch.
  struct ShardAccum;

  /// Data-parallel replacement for the serial per-sample loop of one
  /// accumulation batch: shards [batch_begin, batch_end) of `order` over
  /// `threads` workers, backpropagating into per-thread gradient buffers,
  /// then reduces buffers into the shared parameter grads in
  /// (parameter-order, shard-index) order.
  void RunBatchParallel(const synth::Dataset& train,
                        const std::vector<int>& order, int batch_begin,
                        int batch_end, int epoch, int threads,
                        double* epoch_loss, LossBreakdown* mean);

  /// The pool backing Fit/Evaluate when threads > 1 (lazily built).
  ThreadPool* Pool(int threads) const;

  M2g4Rtp* model_;
  TrainConfig config_;
  std::vector<Matrix> best_params_;
  mutable std::unique_ptr<ThreadPool> pool_;
};

}  // namespace m2g::core

#endif  // M2G_CORE_TRAINER_H_
