#include "core/feature_embed.h"

#include "graph/features.h"

namespace m2g::core {

LevelFeatureEmbed::LevelFeatureEmbed(const ModelConfig& config,
                                     int continuous_dim, Rng* rng)
    : aoi_id_vocab_(config.aoi_id_vocab) {
  const int cont_out = config.hidden_dim - config.aoi_id_embed_dim -
                       config.aoi_type_embed_dim;
  M2G_CHECK_MSG(cont_out > 0,
                "discrete embeddings leave no room for continuous features");
  continuous_proj_ =
      std::make_unique<nn::Linear>(continuous_dim, cont_out, rng);
  aoi_id_embed_ = std::make_unique<nn::Embedding>(
      config.aoi_id_vocab, config.aoi_id_embed_dim, rng);
  aoi_type_embed_ = std::make_unique<nn::Embedding>(
      synth::kNumAoiTypes, config.aoi_type_embed_dim, rng);
  edge_proj_ = std::make_unique<nn::Linear>(graph::kEdgeDim,
                                            config.hidden_dim, rng);
  AddChild("continuous_proj", continuous_proj_.get());
  AddChild("aoi_id_embed", aoi_id_embed_.get());
  AddChild("aoi_type_embed", aoi_type_embed_.get());
  AddChild("edge_proj", edge_proj_.get());
}

Tensor LevelFeatureEmbed::EmbedNodes(const graph::LevelGraph& level) const {
  Tensor cont = continuous_proj_->Forward(
      Tensor::Constant(level.node_continuous));
  std::vector<int> ids(level.node_aoi_id.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    ids[i] = level.node_aoi_id[i] % aoi_id_vocab_;
  }
  Tensor id_emb = aoi_id_embed_->Forward(ids);
  Tensor type_emb = aoi_type_embed_->Forward(level.node_aoi_type);
  return ConcatCols(ConcatCols(cont, id_emb), type_emb);
}

Tensor LevelFeatureEmbed::EmbedEdges(const graph::LevelGraph& level) const {
  return edge_proj_->Forward(Tensor::Constant(level.edge_features));
}

GlobalFeatureEmbed::GlobalFeatureEmbed(const ModelConfig& config, Rng* rng)
    : courier_id_vocab_(config.courier_id_vocab) {
  const int cont_out = 8;
  const int weather_dim = 4;
  const int weekday_dim = 4;
  continuous_proj_ = std::make_unique<nn::Linear>(
      graph::kGlobalContinuousDim, cont_out, rng);
  weather_embed_ = std::make_unique<nn::Embedding>(synth::kNumWeatherCodes,
                                                   weather_dim, rng);
  weekday_embed_ = std::make_unique<nn::Embedding>(7, weekday_dim, rng);
  courier_embed_ = std::make_unique<nn::Embedding>(
      config.courier_id_vocab, config.courier_id_embed_dim, rng);
  out_proj_ = std::make_unique<nn::Linear>(
      cont_out + weather_dim + weekday_dim + config.courier_id_embed_dim,
      config.courier_dim, rng);
  AddChild("continuous_proj", continuous_proj_.get());
  AddChild("weather_embed", weather_embed_.get());
  AddChild("weekday_embed", weekday_embed_.get());
  AddChild("courier_embed", courier_embed_.get());
  AddChild("out_proj", out_proj_.get());
}

Tensor GlobalFeatureEmbed::Embed(const synth::Sample& sample) const {
  Tensor cont = continuous_proj_->Forward(
      Tensor::Constant(graph::GlobalContinuousFeatures(sample)));
  Tensor weather = weather_embed_->ForwardOne(sample.weather);
  Tensor weekday = weekday_embed_->ForwardOne(sample.weekday);
  Tensor courier =
      courier_embed_->ForwardOne(sample.courier_id % courier_id_vocab_);
  return out_proj_->Forward(ConcatCols(
      ConcatCols(ConcatCols(cont, weather), weekday), courier));
}

}  // namespace m2g::core
