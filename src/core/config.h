#ifndef M2G_CORE_CONFIG_H_
#define M2G_CORE_CONFIG_H_

#include <cstdint>

#include "common/status.h"
#include "graph/multi_level_graph.h"

namespace m2g::core {

/// Hyper-parameters and ablation switches of M2G4RTP. Defaults are sized
/// for single-core CPU training on the synthetic dataset; the architecture
/// follows §IV of the paper exactly.
struct ModelConfig {
  uint64_t seed = 42;

  // --- Encoder (Eq. 18-26) ---
  int hidden_dim = 48;       // d_l == d_a
  int num_heads = 4;         // P
  int num_layers = 2;        // K
  int aoi_id_embed_dim = 12; // d_disc for the AOI id
  int aoi_type_embed_dim = 4;
  int aoi_id_vocab = 512;    // ids are clamped into this vocab
  float leaky_slope = 0.2f;

  // --- Decoders (Eq. 27-36) ---
  int lstm_hidden_dim = 48;
  int courier_dim = 24;  // d_u (global/courier embedding)
  /// Vocabulary of the courier-identity embedding (§IV-C: "we
  /// concatenate the courier's embedding and his profile features").
  /// Ids are clamped into the vocab.
  int courier_id_vocab = 1024;
  int courier_id_embed_dim = 12;
  int pos_enc_dim = 8;   // positional encoding width (Eq. 32)
  float pos_enc_base = 10000.0f;  // r
  /// Route decoding beam width at inference. 1 reproduces the paper's
  /// greedy argmax (Eq. 31); >1 is an extension of this library.
  int beam_width = 1;
  /// Feed the GAT-e edge representation of each traversed leg into
  /// SortLSTM alongside Eq. 33's inputs. The edge stream explicitly
  /// encodes pairwise distance / deadline gap (Eq. 14), the per-leg
  /// information an arrival-time integrator needs; see DESIGN.md §4b.
  bool sort_lstm_edge_input = true;

  // --- Training ---
  /// Arrival-time targets are divided by this (minutes -> hours) so the
  /// regression head trains at O(1) scale.
  float time_scale_minutes = 60.0f;

  // --- Ablation switches (§V-E) ---
  /// "two-step": stop gradients from the time heads into the shared
  /// encoder/route parts and train the time heads separately.
  bool two_step = false;
  /// "w/o AOI": single-level model, no AOI decoders, no guidance.
  bool use_aoi_level = true;
  /// "w/o graph": replace GAT-e with a bidirectional LSTM encoder.
  bool use_graph_encoder = true;
  /// "w/o uncertainty": fixed 100:1 route:time loss weights.
  bool use_uncertainty_weighting = true;

  // --- Serving ---
  /// Route no-grad Predict() encodes through the fused fast path (an
  /// EncodePlan per request). Outputs are bitwise-identical either way;
  /// this is the A/B kill switch for bench_encode_fastpath and the
  /// parity suite.
  bool encode_fast_path = true;
  /// Kill switch for the delta-aware encode sessions: with it off,
  /// PredictIncremental always re-encodes from scratch (bitwise-identical
  /// either way — the delta path is an arithmetic shortcut, not a model
  /// change). Requires encode_fast_path and the GAT-e encoder to engage.
  bool incremental_encode = true;
  /// Staleness policy: every k-th prediction through a session performs
  /// a full re-encode even when a delta would apply, bounding how long
  /// any cached representation chain can grow. 1 disables deltas
  /// entirely; large values trust the bitwise-parity guarantee.
  int incremental_refresh_period = 64;
  /// Kill switch for the runtime-dispatched SIMD kernel tier
  /// (tensor/simd.h). With it off, constructing the model forces the
  /// process-global dispatch to the scalar tier — note "process-global":
  /// this is an operational A/B switch, not a per-model setting. Outputs
  /// are bitwise-identical across tiers either way (simd_parity_test);
  /// the M2G_SIMD environment variable offers the same control without a
  /// rebuild or config change.
  bool simd_kernels = true;

  graph::GraphConfig graph;
};

/// Rejects configurations the architecture cannot realize (e.g. hidden_dim
/// not divisible by the head count).
Status ValidateConfig(const ModelConfig& config);

}  // namespace m2g::core

#endif  // M2G_CORE_CONFIG_H_
