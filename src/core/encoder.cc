#include "core/encoder.h"

#include "common/string_util.h"
#include "tensor/grad_mode.h"

namespace m2g::core {

LevelEncoder::LevelEncoder(const ModelConfig& config, int continuous_dim,
                           Rng* rng)
    : use_graph_(config.use_graph_encoder) {
  feature_embed_ =
      std::make_unique<LevelFeatureEmbed>(config, continuous_dim, rng);
  AddChild("feature_embed", feature_embed_.get());
  input_proj_ = std::make_unique<nn::Linear>(
      config.hidden_dim + config.courier_dim, config.hidden_dim, rng);
  AddChild("input_proj", input_proj_.get());
  if (use_graph_) {
    for (int k = 0; k < config.num_layers; ++k) {
      const bool is_last = (k == config.num_layers - 1);
      layers_.push_back(std::make_unique<GatELayer>(config, is_last, rng));
      AddChild(StrFormat("gat%d", k), layers_.back().get());
    }
  } else {
    fwd_lstm_ = std::make_unique<nn::LstmCell>(config.hidden_dim,
                                               config.hidden_dim, rng);
    bwd_lstm_ = std::make_unique<nn::LstmCell>(config.hidden_dim,
                                               config.hidden_dim, rng);
    bilstm_proj_ = std::make_unique<nn::Linear>(2 * config.hidden_dim,
                                                config.hidden_dim, rng);
    AddChild("fwd_lstm", fwd_lstm_.get());
    AddChild("bwd_lstm", bwd_lstm_.get());
    AddChild("bilstm_proj", bilstm_proj_.get());
  }
}

EncodedLevel LevelEncoder::Encode(const graph::LevelGraph& level,
                                  const Tensor& global_embed,
                                  EncodePlan* plan) const {
  if (plan != nullptr && use_graph_ && !GradMode::enabled()) {
    return EncodeFast(level, global_embed, plan);
  }
  return EncodeLegacy(level, global_embed);
}

EncodedLevel LevelEncoder::EncodeLegacy(const graph::LevelGraph& level,
                                        const Tensor& global_embed) const {
  Tensor nodes = feature_embed_->EmbedNodes(level);
  // Concatenate the global/courier vector onto every node (§IV-B).
  nodes = input_proj_->Forward(
      ConcatCols(nodes, BroadcastRows(global_embed, level.n)));
  if (use_graph_) {
    Tensor edges = feature_embed_->EmbedEdges(level);
    return EncodeWithGat(nodes, edges, level.adjacency);
  }
  return {EncodeWithBiLstm(nodes), Tensor()};
}

EncodedLevel LevelEncoder::EncodeFast(const graph::LevelGraph& level,
                                      const Tensor& global_embed,
                                      EncodePlan* plan) const {
  std::vector<EncodedLevel> out =
      EncodeFastBatch({&level}, {&global_embed}, plan);
  return std::move(out.front());
}

std::vector<EncodedLevel> LevelEncoder::EncodeFastBatch(
    const std::vector<const graph::LevelGraph*>& levels,
    const std::vector<const Tensor*>& global_embeds,
    EncodePlan* plan) const {
  M2G_CHECK(use_graph_);
  M2G_CHECK(!GradMode::enabled());
  M2G_CHECK(!levels.empty());
  M2G_CHECK_EQ(levels.size(), global_embeds.size());
  M2G_CHECK_LE(static_cast<int>(levels.size()), plan->batch_capacity);
  const int count = static_cast<int>(levels.size());
  // Embeddings and the input projection stay on the op layer: under
  // no-grad they already fold to constants, and they are O(n d^2) —
  // fusing them would not move the n^2 d^2 needle the GAT stack does.
  // Running representations, mutated in place across layers; the copies
  // draw from the pool and become the returned tensors' storage.
  std::vector<Matrix> h(count), z(count);
  for (int s = 0; s < count; ++s) {
    const graph::LevelGraph& level = *levels[s];
    M2G_CHECK_GE(plan->max_nodes, level.n);
    Tensor nodes = feature_embed_->EmbedNodes(level);
    nodes = input_proj_->Forward(
        ConcatCols(nodes, BroadcastRows(*global_embeds[s], level.n)));
    Tensor edges = feature_embed_->EmbedEdges(level);
    h[s] = nodes.value();
    z[s] = edges.value();
  }
  std::vector<GatEFastItem> items(count);
  for (const auto& layer : layers_) {
    for (int s = 0; s < count; ++s) {
      items[s] = {&h[s], &z[s], &levels[s]->adjacency, s};
    }
    layer->ForwardFastBatch(items, plan);
    // Residuals in place: the same elementwise ascending order as the
    // legacy Add's copy + AddInPlace, minus the copies.
    for (int s = 0; s < count; ++s) {
      float* hd = h[s].data();
      const float* no = plan->node_out_page(s);
      for (size_t t = 0, nd = h[s].size(); t < nd; ++t) hd[t] += no[t];
      float* zd = z[s].data();
      const float* eo = plan->edge_out_page(s);
      for (size_t t = 0, nnd = z[s].size(); t < nnd; ++t) zd[t] += eo[t];
    }
  }
  std::vector<EncodedLevel> out;
  out.reserve(count);
  for (int s = 0; s < count; ++s) {
    out.push_back({Tensor::Constant(std::move(h[s])),
                   Tensor::Constant(std::move(z[s]))});
  }
  return out;
}

EncodedLevel LevelEncoder::EncodeWithGat(
    const Tensor& nodes, const Tensor& edges,
    const std::vector<bool>& adjacency) const {
  Tensor h = nodes;
  Tensor z = edges;
  for (const auto& layer : layers_) {
    GatEOutput out = layer->Forward(h, z, adjacency);
    // Residual connections (all layers keep width hidden_dim): attention
    // aggregation alone washes out node identity on these tiny dense
    // graphs, and the pointer decoder needs distinguishable nodes.
    h = Add(h, out.nodes);
    z = Add(z, out.edges);
  }
  return {h, z};
}

Tensor LevelEncoder::EncodeWithBiLstm(const Tensor& nodes) const {
  const int n = nodes.rows();
  std::vector<Tensor> fwd(n), bwd(n);
  nn::LstmState state = fwd_lstm_->InitialState();
  for (int i = 0; i < n; ++i) {
    state = fwd_lstm_->Forward(Row(nodes, i), state);
    fwd[i] = state.h;
  }
  state = bwd_lstm_->InitialState();
  for (int i = n - 1; i >= 0; --i) {
    state = bwd_lstm_->Forward(Row(nodes, i), state);
    bwd[i] = state.h;
  }
  std::vector<Tensor> rows;
  rows.reserve(n);
  for (int i = 0; i < n; ++i) {
    rows.push_back(ConcatCols(fwd[i], bwd[i]));
  }
  return bilstm_proj_->Forward(ConcatRows(rows));
}

}  // namespace m2g::core
