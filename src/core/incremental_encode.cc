// Incremental re-encode on order arrival: the delta side of the encode
// fast path. A warm LevelEncodeCache holds every per-layer value a GAT-e
// forward produced for a courier's last graph; when the next request's
// graph differs by a single inserted/removed node (or pure feature drift
// on an aligned node set), EncodeDelta recomputes only the attention
// rows and edge pairs whose inputs or softmax masks changed and reuses
// everything else byte for byte.
//
// Why bitwise reuse is sound: every kernel on this path (MatMulInto /
// AccumulateRowMatMul / GatLogitsRow / MaskedSoftmaxRowRaw) is
// deterministic and row-local, so a cached output row is exactly what
// recomputation would produce whenever its inputs are bitwise-unchanged.
// The one cross-n subtlety is an attention row whose mask did not change
// across an insertion: the new column is masked out, MaskedSoftmaxRowRaw
// computes its max and denominator over unmasked entries only and writes
// exact 0.0f to masked ones, and AccumulateRowMatMul skips zero
// coefficients — so the aggregation adds the same terms in the same
// order as before and the cached row stands. Dirtiness is tracked by
// memcmp (stricter than float equality), and anything not explainable as
// a single-node delta falls back to a full encode.

#include "core/incremental_encode.h"

#include <algorithm>
#include <cstring>
#include <optional>
#include <utility>

#include "core/encode_plan.h"
#include "core/encoder.h"
#include "core/model.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/grad_mode.h"

namespace m2g::core {
namespace {

/// Minimum padded capacity: avoids re-warming every arrival on tiny
/// graphs.
constexpr int kMinCapacity = 16;

/// Geometric headroom (doubling) so an arrival stream re-warms O(log n)
/// times, not every k arrivals: capacity-change fallbacks are full
/// encodes and eat directly into the amortized speedup. The byte cost of
/// the slack is bounded by the session store's LRU budget.
int GrownCapacity(int n) { return std::max(kMinCapacity, 2 * n); }

size_t MatrixBytes(const Matrix& m) { return m.size() * sizeof(float); }

/// Copies a dense (n*n, d) edge matrix into the cache's padded layout
/// (pair (i, j) at row i*cap + j).
void PackEdges(const Matrix& dense, int n, int cap, Matrix* padded) {
  const int d = dense.cols();
  for (int i = 0; i < n; ++i) {
    std::memcpy(padded->data() + static_cast<size_t>(i) * cap * d,
                dense.data() + static_cast<size_t>(i) * n * d,
                sizeof(float) * static_cast<size_t>(n) * d);
  }
}

/// Shifts cached node rows for an insertion at `pos` (descending, in
/// place; row `pos` is left stale — the caller marks it fresh).
void ShiftNodeRowsForInsert(Matrix* m, int old_n, int pos) {
  const int w = m->cols();
  float* data = m->data();
  for (int i = old_n; i > pos; --i) {
    std::memcpy(data + static_cast<size_t>(i) * w,
                data + static_cast<size_t>(i - 1) * w, sizeof(float) * w);
  }
}

void ShiftNodeRowsForRemove(Matrix* m, int old_n, int pos) {
  const int w = m->cols();
  float* data = m->data();
  for (int i = pos; i < old_n - 1; ++i) {
    std::memcpy(data + static_cast<size_t>(i) * w,
                data + static_cast<size_t>(i + 1) * w, sizeof(float) * w);
  }
}

/// Shifts cached pair rows (padded stride `cap`) for an insertion at
/// `pos`. Descending order: every source row index is <= its destination,
/// so the move is safe in place. Rows touching the inserted index stay
/// stale — the delta marks all fresh-incident pairs dirty.
void ShiftPairRowsForInsert(Matrix* m, int cap, int old_n, int pos) {
  const int w = m->cols();
  const int n = old_n + 1;
  float* data = m->data();
  for (int i = n - 1; i >= 0; --i) {
    if (i == pos) continue;
    const int oi = i < pos ? i : i - 1;
    for (int j = n - 1; j >= 0; --j) {
      if (j == pos) continue;
      const int oj = j < pos ? j : j - 1;
      const size_t dst = (static_cast<size_t>(i) * cap + j) * w;
      const size_t src = (static_cast<size_t>(oi) * cap + oj) * w;
      if (src == dst) continue;
      std::memcpy(data + dst, data + src, sizeof(float) * w);
    }
  }
}

/// Ascending counterpart for a removal at before-index `pos` (sources
/// are >= destinations).
void ShiftPairRowsForRemove(Matrix* m, int cap, int old_n, int pos) {
  const int w = m->cols();
  const int n = old_n - 1;
  float* data = m->data();
  for (int i = 0; i < n; ++i) {
    const int oi = i < pos ? i : i + 1;
    for (int j = 0; j < n; ++j) {
      const int oj = j < pos ? j : j + 1;
      const size_t dst = (static_cast<size_t>(i) * cap + j) * w;
      const size_t src = (static_cast<size_t>(oi) * cap + oj) * w;
      if (src == dst) continue;
      std::memcpy(data + dst, data + src, sizeof(float) * w);
    }
  }
}

/// Re-indexes every cached buffer after a mid-sequence insert/remove so
/// cached values line up with the new graph's node numbering. Appends
/// and end-removals skip this entirely (fixed padded strides keep every
/// index stable).
void RemapCache(LevelEncodeCache* cache, const graph::LevelGraphDelta& delta,
                int old_n) {
  const bool insert = delta.kind == graph::LevelDeltaKind::kInsert;
  for (Matrix& m : cache->h) {
    insert ? ShiftNodeRowsForInsert(&m, old_n, delta.pos)
           : ShiftNodeRowsForRemove(&m, old_n, delta.pos);
  }
  auto shift_pairs = [&](Matrix& m) {
    insert ? ShiftPairRowsForInsert(&m, cache->cap, old_n, delta.pos)
           : ShiftPairRowsForRemove(&m, cache->cap, old_n, delta.pos);
  };
  for (Matrix& m : cache->z) shift_pairs(m);
  for (Matrix& m : cache->ew3) shift_pairs(m);
  for (Matrix& m : cache->se) shift_pairs(m);
}

/// Dense (n, d) / (n*n, d) copies of the cached final-layer
/// representations — the encoder's output contract.
EncodedLevel MaterializeOutputs(const LevelEncodeCache& cache, int n) {
  const int d = cache.hidden;
  const int cap = cache.cap;
  Matrix nodes = Matrix::Uninit(n, d);
  std::memcpy(nodes.data(), cache.h[cache.layers].data(),
              sizeof(float) * static_cast<size_t>(n) * d);
  Matrix edges = Matrix::Uninit(n * n, d);
  for (int i = 0; i < n; ++i) {
    std::memcpy(edges.data() + static_cast<size_t>(i) * n * d,
                cache.z[cache.layers].data() + static_cast<size_t>(i) * cap * d,
                sizeof(float) * static_cast<size_t>(n) * d);
  }
  return {Tensor::Constant(std::move(nodes)),
          Tensor::Constant(std::move(edges))};
}

obs::Counter& DeltaStepsCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().counter("encode.delta_steps");
  return c;
}

obs::Counter& FullFallbacksCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().counter("encode.full_fallbacks");
  return c;
}

}  // namespace

size_t LevelEncodeCache::bytes() const {
  size_t total = 0;
  for (const Matrix& m : h) total += MatrixBytes(m);
  for (const Matrix& m : z) total += MatrixBytes(m);
  for (const Matrix& m : ew3) total += MatrixBytes(m);
  for (const Matrix& m : se) total += MatrixBytes(m);
  return total;
}

void IncrementalState::Reset() { *this = IncrementalState(); }

size_t IncrementalState::bytes() const {
  size_t total = location.bytes() + aoi.bytes() + MatrixBytes(u);
  const auto level_bytes = [](const graph::LevelGraph& g) {
    return MatrixBytes(g.node_continuous) + MatrixBytes(g.edge_features) +
           g.adjacency.size() / 8 +
           (g.node_aoi_id.size() + g.node_aoi_type.size()) * sizeof(int);
  };
  return total + level_bytes(graph.location) + level_bytes(graph.aoi) +
         graph.loc_to_aoi.size() * sizeof(int);
}

EncodedLevel LevelEncoder::EncodeFastCached(const graph::LevelGraph& level,
                                            const Tensor& global_embed,
                                            EncodePlan* plan,
                                            LevelEncodeCache* cache) const {
  M2G_CHECK(use_graph_);
  M2G_CHECK(!GradMode::enabled());
  const int n = level.n;
  const int d = plan->hidden_dim;
  const int num_layers = static_cast<int>(layers_.size());
  const int heads = layers_.front()->num_heads();
  M2G_CHECK_GE(plan->max_nodes, n);

  // (Re)size the cache: zero-initialized buffers so no code path can
  // ever observe uninitialized floats, and bytes() is exact from the
  // start. Grown geometrically — see GrownCapacity.
  if (cache->cap < n || cache->hidden != d || cache->layers != num_layers ||
      cache->heads != heads) {
    const int cap = GrownCapacity(n);
    cache->Reset();
    cache->cap = cap;
    cache->hidden = d;
    cache->layers = num_layers;
    cache->heads = heads;
    const size_t pairs = static_cast<size_t>(cap) * cap;
    cache->h.reserve(num_layers + 1);
    cache->z.reserve(num_layers + 1);
    for (int l = 0; l <= num_layers; ++l) {
      cache->h.emplace_back(cap, d);
      cache->z.emplace_back(static_cast<int>(pairs), d);
    }
    cache->ew3.reserve(static_cast<size_t>(num_layers) * heads);
    cache->se.reserve(static_cast<size_t>(num_layers) * heads);
    for (int l = 0; l < num_layers; ++l) {
      const int dh = layers_[l]->head_dim();
      for (int p = 0; p < heads; ++p) {
        cache->ew3.emplace_back(static_cast<int>(pairs), dh);
        cache->se.emplace_back(static_cast<int>(pairs), 1);
      }
    }
  }

  // The EncodeFast sequence, with the cache fed as the forward runs.
  Tensor nodes = feature_embed_->EmbedNodes(level);
  nodes = input_proj_->Forward(
      ConcatCols(nodes, BroadcastRows(global_embed, n)));
  Tensor edges = feature_embed_->EmbedEdges(level);
  Matrix h = nodes.value();
  Matrix z = edges.value();
  std::memcpy(cache->h[0].data(), h.data(),
              sizeof(float) * static_cast<size_t>(n) * d);
  PackEdges(z, n, cache->cap, &cache->z[0]);
  for (int l = 0; l < num_layers; ++l) {
    GatECapture capture;
    capture.block = cache->cap;
    capture.ew3.reserve(heads);
    capture.se.reserve(heads);
    for (int p = 0; p < heads; ++p) {
      capture.ew3.push_back(cache->ew3[static_cast<size_t>(l) * heads + p]
                                .data());
      capture.se.push_back(cache->se[static_cast<size_t>(l) * heads + p]
                               .data());
    }
    std::vector<GatECapture*> captures{&capture};
    layers_[l]->ForwardFastBatch({{&h, &z, &level.adjacency, 0}}, plan,
                                 &captures);
    // In-place residuals, exactly EncodeFastBatch's loop.
    float* hd = h.data();
    const float* no = plan->node_out_page(0);
    for (size_t t = 0, nd = h.size(); t < nd; ++t) hd[t] += no[t];
    float* zd = z.data();
    const float* eo = plan->edge_out_page(0);
    for (size_t t = 0, nnd = z.size(); t < nnd; ++t) zd[t] += eo[t];
    std::memcpy(cache->h[l + 1].data(), h.data(),
                sizeof(float) * static_cast<size_t>(n) * d);
    PackEdges(z, n, cache->cap, &cache->z[l + 1]);
  }
  cache->n = n;
  return {Tensor::Constant(std::move(h)), Tensor::Constant(std::move(z))};
}

std::optional<EncodedLevel> LevelEncoder::EncodeDelta(
    const graph::LevelGraph& level, const graph::LevelGraph& prev,
    const graph::LevelGraphDelta& delta, const Tensor& global_embed,
    EncodePlan* plan, LevelEncodeCache* cache) const {
  using graph::LevelDeltaKind;
  M2G_CHECK(use_graph_);
  M2G_CHECK(!GradMode::enabled());
  const int n = level.n;
  if (!cache->warm() || n <= 0 || n > cache->cap || n > plan->max_nodes ||
      delta.kind == LevelDeltaKind::kStructural) {
    return std::nullopt;
  }
  M2G_CHECK_EQ(cache->n, prev.n);
  M2G_CHECK_EQ(cache->hidden, plan->hidden_dim);

  if (delta.kind == LevelDeltaKind::kIdentical) {
    return MaterializeOutputs(*cache, n);
  }

  const int d = cache->hidden;
  const int heads = cache->heads;
  const int pn = prev.n;

  // 1. Line cached rows up with the new numbering. Appends and
  // end-removals are index-stable under the padded stride and skip this.
  if (delta.kind == LevelDeltaKind::kInsert && delta.pos != pn) {
    RemapCache(cache, delta, pn);
  } else if (delta.kind == LevelDeltaKind::kRemove && delta.pos != pn - 1) {
    RemapCache(cache, delta, pn);
  }

  // 2. Dirty seeds from the raw graphs (cheap, before any float work).
  std::vector<unsigned char> fresh(n, 0);
  if (delta.kind == LevelDeltaKind::kInsert) fresh[delta.pos] = 1;

  // Mask-membership change per attention row, under the index mapping.
  // A fresh column that is masked out does NOT change a row (the reuse
  // case the padded softmax semantics make exact).
  std::vector<unsigned char> row_changed(n, 0);
  for (int i = 0; i < n; ++i) {
    if (fresh[i]) {
      row_changed[i] = 1;
      continue;
    }
    const int oi = delta.OldIndex(i);
    bool changed = false;
    for (int j = 0; j < n && !changed; ++j) {
      const int oj = delta.OldIndex(j);
      const bool now = level.adjacency[static_cast<size_t>(i) * n + j];
      if (oj < 0) {
        changed = now;
      } else {
        changed =
            now != prev.adjacency[static_cast<size_t>(oi) * pn + oj];
      }
    }
    if (!changed && delta.kind == LevelDeltaKind::kRemove) {
      // The removed column leaves the mask only if it was ever in it.
      changed = prev.adjacency[static_cast<size_t>(oi) * pn + delta.pos];
    }
    row_changed[i] = changed ? 1 : 0;
  }

  // Raw edge-feature (and adjacency-bit) drift per pair seeds the z_0
  // dirty set; fresh-incident pairs have no history and are always
  // dirty.
  const int de = level.edge_features.cols();
  std::vector<unsigned char> pair_dirty(static_cast<size_t>(n) * n, 0);
  for (int i = 0; i < n; ++i) {
    const int oi = delta.OldIndex(i);
    for (int j = 0; j < n; ++j) {
      const size_t r = static_cast<size_t>(i) * n + j;
      const int oj = delta.OldIndex(j);
      if (oi < 0 || oj < 0) {
        pair_dirty[r] = 1;
        continue;
      }
      const size_t ro = static_cast<size_t>(oi) * pn + oj;
      pair_dirty[r] =
          (level.adjacency[r] != prev.adjacency[ro] ||
           std::memcmp(level.edge_features.data() + r * de,
                       prev.edge_features.data() + ro * de,
                       sizeof(float) * de) != 0)
              ? 1
              : 0;
    }
  }

  // 3. Node embeddings + input projection recomputed in full (O(n d^2),
  // noise) and diffed row-by-row against the cached h_0.
  Tensor nodes = feature_embed_->EmbedNodes(level);
  nodes = input_proj_->Forward(
      ConcatCols(nodes, BroadcastRows(global_embed, n)));
  const Matrix& h0 = nodes.value();
  std::vector<unsigned char> node_dirty(n, 0);
  int dirty_count = 0;
  for (int i = 0; i < n; ++i) {
    const bool dirty =
        fresh[i] ||
        std::memcmp(h0.data() + static_cast<size_t>(i) * d,
                    cache->h[0].data() + static_cast<size_t>(i) * d,
                    sizeof(float) * d) != 0;
    node_dirty[i] = dirty ? 1 : 0;
    dirty_count += dirty ? 1 : 0;
  }
  // Cost guard: past half the nodes, a delta step approaches full-encode
  // flops while paying extra bookkeeping — bail before mutating values.
  if (2 * dirty_count > n) return std::nullopt;

  for (int i = 0; i < n; ++i) {
    if (!node_dirty[i]) continue;
    std::memcpy(cache->h[0].data() + static_cast<size_t>(i) * d,
                h0.data() + static_cast<size_t>(i) * d, sizeof(float) * d);
  }

  // 4. Edge embeddings: dense recompute (O(n^2 d_e d), ~1% of a full
  // encode), dirty pair rows refreshed in the cache.
  Tensor edges = feature_embed_->EmbedEdges(level);
  const Matrix& z0 = edges.value();
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const size_t r = static_cast<size_t>(i) * n + j;
      if (!pair_dirty[r]) continue;
      std::memcpy(
          cache->z[0].data() +
              (static_cast<size_t>(i) * cache->cap + j) * d,
          z0.data() + r * d, sizeof(float) * d);
    }
  }

  // 5. Layer-by-layer delta forward; each layer reports what actually
  // changed so the dirty frontier stays tight.
  std::vector<unsigned char> out_node(n, 0);
  std::vector<unsigned char> out_pair(static_cast<size_t>(n) * n, 0);
  for (size_t l = 0; l < layers_.size(); ++l) {
    GatEDeltaItem item;
    item.n = n;
    item.adjacency = &level.adjacency;
    item.h_in = cache->h[l].data();
    item.z_in = cache->z[l].data();
    item.h_out = cache->h[l + 1].data();
    item.z_out = cache->z[l + 1].data();
    item.block = cache->cap;
    item.ew3.reserve(heads);
    item.se.reserve(heads);
    for (int p = 0; p < heads; ++p) {
      item.ew3.push_back(cache->ew3[l * heads + p].data());
      item.se.push_back(cache->se[l * heads + p].data());
    }
    item.node_dirty = node_dirty.data();
    item.pair_dirty = pair_dirty.data();
    item.row_changed = row_changed.data();
    item.fresh = fresh.data();
    item.out_node_dirty = out_node.data();
    item.out_pair_dirty = out_pair.data();
    layers_[l]->ForwardFastDelta(&item, plan);
    node_dirty.swap(out_node);
    pair_dirty.swap(out_pair);
  }
  cache->n = n;
  return MaterializeOutputs(*cache, n);
}

RtpPrediction M2g4Rtp::PredictIncremental(const synth::Sample& sample,
                                          IncrementalState* state,
                                          IncrementalResult* result) const {
  static obs::Histogram& graph_hist =
      obs::StageHistogram("serve.stage.graph_build.ms");
  static obs::Histogram& encode_hist =
      obs::StageHistogram("serve.stage.encode.ms");
  static obs::Histogram& delta_hist = obs::StageHistogram("encode.delta.ms");
  M2G_CHECK(state != nullptr);
  IncrementalResult local;
  IncrementalResult* res = result != nullptr ? result : &local;
  *res = IncrementalResult();

  graph::MultiLevelGraph g;
  {
    obs::TraceSpan span("serve.stage.graph_build.ms", &graph_hist);
    g = BuildMultiLevelGraph(sample, config_.graph);
  }
  Tensor u;
  EncodedLevel loc_enc;
  EncodedLevel aoi_enc;
  {
    obs::TraceSpan span("serve.stage.encode.ms", &encode_hist);
    const bool fast = config_.encode_fast_path &&
                      config_.use_graph_encoder && !GradMode::enabled();
    const bool sessions = fast && config_.incremental_encode;
    std::optional<EncodePlan> plan;
    if (fast) {
      const int max_n = config_.use_aoi_level
                            ? std::max(g.location.n, g.aoi.n)
                            : g.location.n;
      plan.emplace(max_n, config_.hidden_dim);
    }
    EncodePlan* plan_ptr = plan.has_value() ? &*plan : nullptr;
    u = global_embed_->Embed(sample);

    IncrementalFallback why = IncrementalFallback::kNone;
    graph::LevelGraphDelta loc_delta, aoi_delta;
    if (!sessions) {
      why = IncrementalFallback::kDisabled;
    } else if (!state->warm) {
      why = IncrementalFallback::kCold;
    } else if (state->u.size() != u.value().size() ||
               std::memcmp(state->u.data(), u.value().data(),
                           sizeof(float) * state->u.size()) != 0) {
      why = IncrementalFallback::kGlobalChanged;
    } else if (state->deltas_since_full + 1 >=
               static_cast<uint64_t>(config_.incremental_refresh_period)) {
      why = IncrementalFallback::kRefresh;
    } else {
      loc_delta = graph::DiffLevelGraph(state->graph.location, g.location);
      if (loc_delta.kind == graph::LevelDeltaKind::kStructural) {
        why = IncrementalFallback::kStructural;
      } else if (g.location.n > state->location.cap) {
        why = IncrementalFallback::kCapacity;
      }
      if (why == IncrementalFallback::kNone && config_.use_aoi_level) {
        aoi_delta = graph::DiffLevelGraph(state->graph.aoi, g.aoi);
        if (aoi_delta.kind == graph::LevelDeltaKind::kStructural) {
          why = IncrementalFallback::kStructural;
        } else if (g.aoi.n > state->aoi.cap) {
          why = IncrementalFallback::kCapacity;
        }
      }
    }
    if (why == IncrementalFallback::kNone) {
      obs::TraceSpan delta_span("encode.delta.ms", &delta_hist);
      std::optional<EncodedLevel> le = location_encoder_->EncodeDelta(
          g.location, state->graph.location, loc_delta, u, plan_ptr,
          &state->location);
      std::optional<EncodedLevel> ae;
      bool ok = le.has_value();
      if (ok && config_.use_aoi_level) {
        ae = aoi_encoder_->EncodeDelta(g.aoi, state->graph.aoi, aoi_delta,
                                       u, plan_ptr, &state->aoi);
        ok = ae.has_value();
      }
      if (ok) {
        loc_enc = std::move(*le);
        if (config_.use_aoi_level) aoi_enc = std::move(*ae);
        state->graph = std::move(g);
        ++state->deltas_since_full;
        DeltaStepsCounter().Increment();
        res->delta = true;
      } else {
        why = IncrementalFallback::kDirtySpread;
      }
    }
    if (!res->delta) {
      res->fallback = why;
      if (why != IncrementalFallback::kDisabled &&
          why != IncrementalFallback::kCold) {
        FullFallbacksCounter().Increment();
      }
      if (sessions) {
        loc_enc = location_encoder_->EncodeFastCached(g.location, u,
                                                      plan_ptr,
                                                      &state->location);
        if (config_.use_aoi_level) {
          aoi_enc = aoi_encoder_->EncodeFastCached(g.aoi, u, plan_ptr,
                                                   &state->aoi);
        }
        state->u = u.value();
        state->graph = std::move(g);
        state->deltas_since_full = 0;
        state->warm = true;
      } else {
        // Sessions inert (kill switch / grad mode / BiLSTM): exactly
        // Predict's encode, state untouched.
        loc_enc = location_encoder_->Encode(g.location, u, plan_ptr);
        if (config_.use_aoi_level) {
          aoi_enc = aoi_encoder_->Encode(g.aoi, u, plan_ptr);
        }
      }
    }
  }
  return DecodeWithEncodings(sample, u, loc_enc, aoi_enc);
}

}  // namespace m2g::core
