#include "core/gat_e.h"

#include <algorithm>
#include <cstring>

#include "common/string_util.h"
#include "nn/init.h"
#include "obs/metrics.h"
#include "tensor/grad_mode.h"

namespace m2g::core {
namespace {

obs::Counter& FastLayerCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().counter("encode.fast_layers");
  return c;
}

obs::Counter& LegacyLayerCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().counter("encode.legacy_layers");
  return c;
}

}  // namespace

GatELayer::GatELayer(const ModelConfig& config, bool is_last, Rng* rng)
    : hidden_dim_(config.hidden_dim),
      num_heads_(config.num_heads),
      // Hidden layers concatenate P heads back to d; the last layer
      // averages full-width heads (Eq. 26).
      head_dim_(is_last ? config.hidden_dim
                        : config.hidden_dim / config.num_heads),
      is_last_(is_last),
      leaky_slope_(config.leaky_slope) {
  const int d = hidden_dim_;
  const int dh = head_dim_;
  heads_.reserve(num_heads_);
  for (int p = 0; p < num_heads_; ++p) {
    Head h;
    const std::string prefix = StrFormat("head%d_", p);
    h.w1 = AddParameter(prefix + "w1", nn::XavierUniform(d, dh, rng));
    h.av_src = AddParameter(prefix + "av_src",
                            nn::XavierUniform(dh, 1, rng));
    h.av_dst = AddParameter(prefix + "av_dst",
                            nn::XavierUniform(dh, 1, rng));
    h.ae = AddParameter(prefix + "ae", nn::XavierUniform(d, 1, rng));
    h.w2 = AddParameter(prefix + "w2", nn::XavierUniform(d, dh, rng));
    h.w3 = AddParameter(prefix + "w3", nn::XavierUniform(d, dh, rng));
    h.w4 = AddParameter(prefix + "w4", nn::XavierUniform(d, dh, rng));
    h.w5 = AddParameter(prefix + "w5", nn::XavierUniform(d, dh, rng));
    heads_.push_back(std::move(h));
  }
}

GatEOutput GatELayer::Forward(const Tensor& nodes, const Tensor& edges,
                              const std::vector<bool>& adjacency) const {
  const int n = nodes.rows();
  M2G_CHECK_EQ(nodes.cols(), hidden_dim_);
  M2G_CHECK_EQ(edges.rows(), n * n);
  M2G_CHECK_EQ(adjacency.size(), static_cast<size_t>(n) * n);
  LegacyLayerCounter().Increment();

  // Pair index vectors for the edge update (Eq. 23): row i*n+j pairs
  // node i with node j.
  std::vector<int> src_idx(static_cast<size_t>(n) * n);
  std::vector<int> dst_idx(static_cast<size_t>(n) * n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      src_idx[i * n + j] = i;
      dst_idx[i * n + j] = j;
    }
  }

  std::vector<Tensor> node_heads;
  std::vector<Tensor> edge_heads;
  node_heads.reserve(heads_.size());
  edge_heads.reserve(heads_.size());

  for (const Head& head : heads_) {
    // Eq. 20 decomposed: c_ij = LeakyReLU(s_src[i] + s_dst[j] + s_e[ij]).
    Tensor wh = MatMul(nodes, head.w1);            // (n, dh)
    Tensor s_src = MatMul(wh, head.av_src);        // (n, 1)
    Tensor s_dst_row = Transpose(MatMul(wh, head.av_dst));  // (1, n)
    Tensor s_edge = MatMul(edges, head.ae);        // (n*n, 1)
    // Messages. (Eq. 22 as printed applies W2 to h_i; aggregating the
    // *neighbour* representation h_j is the standard GAT formulation and
    // the only reading under which attention weights matter, so we use
    // h_j.)
    Tensor messages = MatMul(nodes, head.w2);      // (n, dh)

    std::vector<Tensor> out_rows;
    out_rows.reserve(n);
    for (int i = 0; i < n; ++i) {
      // Attention logits over node i's neighbourhood.
      Tensor s_e_row = Transpose(SliceRows(s_edge, i * n, n));  // (1, n)
      Tensor logits = LeakyRelu(
          AddScalarTensor(Add(s_dst_row, s_e_row), Row(s_src, i)),
          leaky_slope_);
      std::vector<bool> mask(adjacency.begin() + i * n,
                             adjacency.begin() + (i + 1) * n);
      Tensor alpha = MaskedSoftmaxRow(logits, mask);  // Eq. 21
      out_rows.push_back(MatMul(alpha, messages));    // (1, dh)
    }
    Tensor head_nodes = ConcatRows(out_rows);
    if (!is_last_) head_nodes = Relu(head_nodes);  // Eq. 24 vs Eq. 26
    node_heads.push_back(head_nodes);

    // Eq. 23 / 25: z'_ij = ReLU(W3 z_ij + W4 h_i + W5 h_j).
    Tensor edge_update =
        Add(MatMul(edges, head.w3),
            Add(MatMul(GatherRows(nodes, src_idx), head.w4),
                MatMul(GatherRows(nodes, dst_idx), head.w5)));
    edge_heads.push_back(Relu(edge_update));
  }

  GatEOutput out;
  if (is_last_) {
    // Average the full-width heads, then the delayed activation (Eq. 26).
    Tensor acc = node_heads[0];
    for (size_t p = 1; p < node_heads.size(); ++p) {
      acc = Add(acc, node_heads[p]);
    }
    out.nodes = Relu(Scale(acc, 1.0f / static_cast<float>(num_heads_)));
    Tensor eacc = edge_heads[0];
    for (size_t p = 1; p < edge_heads.size(); ++p) {
      eacc = Add(eacc, edge_heads[p]);
    }
    out.edges = Scale(eacc, 1.0f / static_cast<float>(num_heads_));
  } else {
    Tensor nodes_cat = node_heads[0];
    Tensor edges_cat = edge_heads[0];
    for (size_t p = 1; p < node_heads.size(); ++p) {
      nodes_cat = ConcatCols(nodes_cat, node_heads[p]);
      edges_cat = ConcatCols(edges_cat, edge_heads[p]);
    }
    out.nodes = nodes_cat;
    out.edges = edges_cat;
  }
  return out;
}

void GatELayer::ForwardFast(const Matrix& nodes, const Matrix& edges,
                            const std::vector<bool>& adjacency,
                            EncodePlan* plan) const {
  ForwardFastBatch({{&nodes, &edges, &adjacency, 0}}, plan);
}

void GatELayer::ForwardFastBatch(
    const std::vector<GatEFastItem>& items, EncodePlan* plan,
    const std::vector<GatECapture*>* captures) const {
  const int d = hidden_dim_;
  const int dh = head_dim_;
  M2G_CHECK(!GradMode::enabled());
  M2G_CHECK(!items.empty());
  M2G_CHECK_EQ(plan->hidden_dim, d);
  if (captures != nullptr) {
    M2G_CHECK_EQ(captures->size(), items.size());
  }
  for (const GatEFastItem& item : items) {
    const int n = item.nodes->rows();
    M2G_CHECK_EQ(item.nodes->cols(), d);
    M2G_CHECK_EQ(item.edges->rows(), n * n);
    M2G_CHECK_EQ(item.edges->cols(), d);
    M2G_CHECK_EQ(item.adjacency->size(), static_cast<size_t>(n) * n);
    M2G_CHECK_GE(plan->max_nodes, n);
    M2G_CHECK_LT(item.page, plan->batch_capacity);
    FastLayerCounter().Increment();
  }

  // Scratch for the batched projections: one MatMulManySlice per item,
  // rebuilt per weight (the slice list is tiny; the products dominate).
  // All the matmul/logit kernels below dispatch through the runtime
  // SIMD tier (tensor/simd.h) — bitwise-identical on every tier, so
  // nothing here depends on which one the host selected.
  std::vector<MatMulManySlice> slices(items.size());

  for (int p = 0; p < num_heads_; ++p) {
    const Head& head = heads_[p];
    // Eq. 20/22/23 projections, head-lockstep across the batch: each
    // weight streams once per batch (MatMulManyInto), every item's
    // product lands in its own plan page with MatMulInto's exact bits.
    // The (1,)-wide products take AccumulateRowMatMul's branchy path —
    // the same path MatMulRaw picked for them on the legacy graph.
    for (size_t s = 0; s < items.size(); ++s) {
      slices[s] = {items[s].nodes->data(), items[s].nodes->rows(),
                   plan->wh_page(items[s].page)};
    }
    MatMulManyInto(slices.data(), static_cast<int>(slices.size()), d,
                   head.w1.value().data(), dh);
    for (size_t s = 0; s < items.size(); ++s) {
      slices[s] = {plan->wh_page(items[s].page), items[s].nodes->rows(),
                   plan->s_src_page(items[s].page)};
    }
    MatMulManyInto(slices.data(), static_cast<int>(slices.size()), dh,
                   head.av_src.value().data(), 1);
    for (size_t s = 0; s < items.size(); ++s) {
      slices[s] = {plan->wh_page(items[s].page), items[s].nodes->rows(),
                   plan->s_dst_page(items[s].page)};
    }
    MatMulManyInto(slices.data(), static_cast<int>(slices.size()), dh,
                   head.av_dst.value().data(), 1);
    for (size_t s = 0; s < items.size(); ++s) {
      const int n = items[s].nodes->rows();
      slices[s] = {items[s].edges->data(), n * n,
                   plan->s_edge_page(items[s].page)};
    }
    MatMulManyInto(slices.data(), static_cast<int>(slices.size()), d,
                   head.ae.value().data(), 1);
    if (captures != nullptr) {
      // Donate this head's s_edge column to the session cache, re-laid
      // from dense (i*n + j) rows to padded (i*block + j) rows.
      for (size_t s = 0; s < items.size(); ++s) {
        GatECapture* cap = (*captures)[s];
        if (cap == nullptr) continue;
        const int n = items[s].nodes->rows();
        const float* src = plan->s_edge_page(items[s].page);
        float* out = cap->se[p];
        for (int i = 0; i < n; ++i) {
          std::copy(src + static_cast<size_t>(i) * n,
                    src + static_cast<size_t>(i) * n + n,
                    out + static_cast<size_t>(i) * cap->block);
        }
      }
    }
    for (size_t s = 0; s < items.size(); ++s) {
      slices[s] = {items[s].nodes->data(), items[s].nodes->rows(),
                   plan->msg_page(items[s].page)};
    }
    MatMulManyInto(slices.data(), static_cast<int>(slices.size()), d,
                   head.w2.value().data(), dh);
    // Eq. 23 node terms, hoisted out of the n^2 edge loop: the legacy
    // MatMul(GatherRows(nodes, idx), W) accumulates every gathered row
    // from zero, so its row (i, j) is bit-identical to row i of
    // nodes * W — two (n, dh) products replace two (n^2, dh) ones.
    for (size_t s = 0; s < items.size(); ++s) {
      slices[s] = {items[s].nodes->data(), items[s].nodes->rows(),
                   plan->nw4_page(items[s].page)};
    }
    MatMulManyInto(slices.data(), static_cast<int>(slices.size()), d,
                   head.w4.value().data(), dh);
    for (size_t s = 0; s < items.size(); ++s) {
      slices[s] = {items[s].nodes->data(), items[s].nodes->rows(),
                   plan->nw5_page(items[s].page)};
    }
    MatMulManyInto(slices.data(), static_cast<int>(slices.size()), d,
                   head.w5.value().data(), dh);

    const bool last = is_last_;
    // Hidden layers write head p's columns of the concat epilogue
    // (Eq. 24/25) in place; the last layer averages full-width heads, so
    // head 0 seeds the accumulator and later heads add row by row — the
    // sequential elementwise adds of the legacy epilogue (Eq. 26).
    const int col0 = last ? 0 : p * dh;

    for (size_t s = 0; s < items.size(); ++s) {
      const GatEFastItem& item = items[s];
      GatECapture* capture =
          captures != nullptr ? (*captures)[s] : nullptr;
      const int n = item.nodes->rows();
      const std::vector<bool>& adjacency = *item.adjacency;
      float* node_out = plan->node_out_page(item.page);
      float* edge_out = plan->edge_out_page(item.page);
      const float* s_src = plan->s_src_page(item.page);
      const float* s_dst = plan->s_dst_page(item.page);
      const float* s_edge = plan->s_edge_page(item.page);
      const float* msg = plan->msg_page(item.page);
      const float* nw4 = plan->nw4_page(item.page);
      const float* nw5 = plan->nw5_page(item.page);

      // Attention rows: logits -> masked softmax -> aggregation, fused
      // (Eq. 20-22), no (1, n) or (1, dh) temporaries.
      for (int i = 0; i < n; ++i) {
        const size_t base = static_cast<size_t>(i) * n;
        GatLogitsRow(s_dst, s_edge + base, s_src[i], leaky_slope_, n,
                     plan->logits.data());
        MaskedSoftmaxRowRaw(plan->logits.data(), adjacency, base, n,
                            plan->alpha.data());
        float* dst = (last && p > 0)
                         ? plan->row.data()
                         : node_out + static_cast<size_t>(i) * d + col0;
        std::fill(dst, dst + dh, 0.0f);
        AccumulateRowMatMul(plan->alpha.data(), n, msg, dh, dst);
        if (!last) {
          for (int c = 0; c < dh; ++c) {
            dst[c] = dst[c] > 0.0f ? dst[c] : 0.0f;
          }
        } else if (p > 0) {
          float* acc = node_out + static_cast<size_t>(i) * d;
          for (int c = 0; c < dh; ++c) acc[c] += dst[c];
        }
      }

      // Edge updates (Eq. 23/25): z' = ReLU(z W3 + (nw4_i + nw5_j)),
      // keeping the legacy association order ew3 + (w4-term + w5-term).
      for (int i = 0; i < n; ++i) {
        const float* nw4_row = nw4 + static_cast<size_t>(i) * dh;
        for (int j = 0; j < n; ++j) {
          const size_t r = static_cast<size_t>(i) * n + j;
          const float* nw5_row = nw5 + static_cast<size_t>(j) * dh;
          float* dst = (last && p > 0) ? plan->row.data()
                                       : edge_out + r * d + col0;
          std::fill(dst, dst + dh, 0.0f);
          AccumulateRowMatMul(item.edges->data() + r * d, d,
                              head.w3.value().data(), dh, dst);
          if (capture != nullptr) {
            // dst holds exactly z_ij * W3 here (pre-epilogue): the value
            // the delta path caches per (layer, head, pair).
            std::copy(dst, dst + dh,
                      capture->ew3[p] +
                          (static_cast<size_t>(i) * capture->block + j) * dh);
          }
          for (int c = 0; c < dh; ++c) {
            const float t = nw4_row[c] + nw5_row[c];
            const float v = dst[c] + t;
            dst[c] = v > 0.0f ? v : 0.0f;
          }
          if (last && p > 0) {
            float* acc = edge_out + r * d;
            for (int c = 0; c < dh; ++c) acc[c] += dst[c];
          }
        }
      }
    }
  }

  if (is_last_) {
    // Eq. 26 epilogue: scale the head sums by 1/P, then the delayed node
    // ReLU (edges average without an extra activation).
    const float inv = 1.0f / static_cast<float>(num_heads_);
    for (const GatEFastItem& item : items) {
      const int n = item.nodes->rows();
      float* node_out = plan->node_out_page(item.page);
      float* edge_out = plan->edge_out_page(item.page);
      for (size_t t = 0, end = static_cast<size_t>(n) * d; t < end; ++t) {
        const float v = node_out[t] * inv;
        node_out[t] = v > 0.0f ? v : 0.0f;
      }
      const size_t nnd = static_cast<size_t>(n) * n * d;
      for (size_t t = 0; t < nnd; ++t) edge_out[t] *= inv;
    }
  }
}

void GatELayer::ForwardFastDelta(GatEDeltaItem* item,
                                 EncodePlan* plan) const {
  const int d = hidden_dim_;
  const int dh = head_dim_;
  const int n = item->n;
  const int block = item->block;
  M2G_CHECK(!GradMode::enabled());
  M2G_CHECK_EQ(plan->hidden_dim, d);
  M2G_CHECK_GE(plan->max_nodes, n);
  M2G_CHECK_GE(block, n);
  M2G_CHECK_EQ(item->adjacency->size(), static_cast<size_t>(n) * n);
  const std::vector<bool>& adjacency = *item->adjacency;

  // Which attention rows must rerun: a row's alpha depends on its mask
  // membership, its own projections (s_src[i], and msg rows it
  // aggregates), s_dst / msg of every unmasked neighbour, and the s_edge
  // entries of its unmasked columns (which follow the pair's z). Rows
  // where none of those changed keep their cached aggregate bit for bit
  // — including across an insertion whose new column is masked out,
  // because MaskedSoftmaxRowRaw writes exact zeros for masked entries
  // and AccumulateRowMatMul skips zero coefficients.
  std::vector<unsigned char> row_rec(n, 0);
  for (int i = 0; i < n; ++i) {
    if (item->row_changed[i] || item->node_dirty[i]) {
      row_rec[i] = 1;
      continue;
    }
    const size_t base = static_cast<size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      if (adjacency[base + j] &&
          (item->node_dirty[j] || item->pair_dirty[base + j])) {
        row_rec[i] = 1;
        break;
      }
    }
  }
  // Which edge pairs must rerun: Eq. 23 reads z_ij, h_i and h_j (no
  // mask), so a pair reruns iff any of the three changed.
  std::vector<unsigned char> pair_rec(static_cast<size_t>(n) * n, 0);
  for (int i = 0; i < n; ++i) {
    const size_t base = static_cast<size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      pair_rec[base + j] = (item->pair_dirty[base + j] ||
                            item->node_dirty[i] || item->node_dirty[j])
                               ? 1
                               : 0;
    }
  }

  const bool last = is_last_;
  float* node_out = plan->node_out_page(0);
  float* edge_out = plan->edge_out_page(0);
  for (int p = 0; p < num_heads_; ++p) {
    const Head& head = heads_[p];
    // Per-node projections are recomputed in full: they are O(n d dh) —
    // noise next to the n^2 terms — and a full MatMulInto reproduces the
    // warm forward's bits for clean rows for free.
    MatMulInto(item->h_in, n, d, head.w1.value().data(), dh,
               plan->wh_page(0));
    MatMulInto(plan->wh_page(0), n, dh, head.av_src.value().data(), 1,
               plan->s_src_page(0));
    MatMulInto(plan->wh_page(0), n, dh, head.av_dst.value().data(), 1,
               plan->s_dst_page(0));
    MatMulInto(item->h_in, n, d, head.w2.value().data(), dh,
               plan->msg_page(0));
    MatMulInto(item->h_in, n, d, head.w4.value().data(), dh,
               plan->nw4_page(0));
    MatMulInto(item->h_in, n, d, head.w5.value().data(), dh,
               plan->nw5_page(0));
    const float* s_src = plan->s_src_page(0);
    const float* s_dst = plan->s_dst_page(0);
    const float* msg = plan->msg_page(0);
    const float* nw4 = plan->nw4_page(0);
    const float* nw5 = plan->nw5_page(0);

    // s_edge updates for pairs whose z_l changed (one row of the batch
    // kernel: zeroed accumulator + AccumulateRowMatMul — MatMulInto's
    // exact bits for that row).
    float* se = item->se[p];
    for (int i = 0; i < n; ++i) {
      const size_t base = static_cast<size_t>(i) * n;
      const size_t pbase = static_cast<size_t>(i) * block;
      for (int j = 0; j < n; ++j) {
        if (!item->pair_dirty[base + j]) continue;
        float* dst = se + pbase + j;
        *dst = 0.0f;
        AccumulateRowMatMul(item->z_in + (pbase + j) * d, d,
                            head.ae.value().data(), 1, dst);
      }
    }

    const int col0 = last ? 0 : p * dh;
    // Attention rows (Eq. 20-22), only the recompute set; cached rows of
    // h_out are left untouched.
    for (int i = 0; i < n; ++i) {
      if (!row_rec[i]) continue;
      const size_t base = static_cast<size_t>(i) * n;
      GatLogitsRow(s_dst, se + static_cast<size_t>(i) * block, s_src[i],
                   leaky_slope_, n, plan->logits.data());
      MaskedSoftmaxRowRaw(plan->logits.data(), adjacency, base, n,
                          plan->alpha.data());
      float* dst = (last && p > 0)
                       ? plan->row.data()
                       : node_out + static_cast<size_t>(i) * d + col0;
      std::fill(dst, dst + dh, 0.0f);
      AccumulateRowMatMul(plan->alpha.data(), n, msg, dh, dst);
      if (!last) {
        for (int c = 0; c < dh; ++c) {
          dst[c] = dst[c] > 0.0f ? dst[c] : 0.0f;
        }
      } else if (p > 0) {
        float* acc = node_out + static_cast<size_t>(i) * d;
        for (int c = 0; c < dh; ++c) acc[c] += dst[c];
      }
    }

    // Edge updates (Eq. 23/25), only the recompute set. Pairs with a
    // clean z but a dirty endpoint reuse the cached z*W3 product and pay
    // only the dh-wide epilogue.
    for (int i = 0; i < n; ++i) {
      const float* nw4_row = nw4 + static_cast<size_t>(i) * dh;
      const size_t base = static_cast<size_t>(i) * n;
      const size_t pbase = static_cast<size_t>(i) * block;
      for (int j = 0; j < n; ++j) {
        if (!pair_rec[base + j]) continue;
        const size_t r = base + j;
        float* e3 = item->ew3[p] + (pbase + j) * dh;
        if (item->pair_dirty[r]) {
          std::fill(e3, e3 + dh, 0.0f);
          AccumulateRowMatMul(item->z_in + (pbase + j) * d, d,
                              head.w3.value().data(), dh, e3);
        }
        const float* nw5_row = nw5 + static_cast<size_t>(j) * dh;
        float* dst =
            (last && p > 0) ? plan->row.data() : edge_out + r * d + col0;
        for (int c = 0; c < dh; ++c) {
          const float t = nw4_row[c] + nw5_row[c];
          const float v = e3[c] + t;
          dst[c] = v > 0.0f ? v : 0.0f;
        }
        if (last && p > 0) {
          float* acc = edge_out + r * d;
          for (int c = 0; c < dh; ++c) acc[c] += dst[c];
        }
      }
    }
  }

  if (last) {
    // Eq. 26 epilogue over the recomputed rows/pairs only.
    const float inv = 1.0f / static_cast<float>(num_heads_);
    for (int i = 0; i < n; ++i) {
      if (!row_rec[i]) continue;
      float* row = node_out + static_cast<size_t>(i) * d;
      for (int c = 0; c < d; ++c) {
        const float v = row[c] * inv;
        row[c] = v > 0.0f ? v : 0.0f;
      }
    }
    for (size_t r = 0, nn = static_cast<size_t>(n) * n; r < nn; ++r) {
      if (!pair_rec[r]) continue;
      float* row = edge_out + r * d;
      for (int c = 0; c < d; ++c) row[c] *= inv;
    }
  }

  // Residual + write-back: h_{l+1}[i] = h_l[i] + node_out[i] (the same
  // per-element addition order as the full path's in-place residual).
  // Each recomputed row is compared against its cached successor before
  // overwrite so the next layer's dirty set stays tight; rows with no
  // history (fresh nodes) are dirty by definition.
  float* scratch = plan->row.data();  // (1, d); free after the head loop
  for (int i = 0; i < n; ++i) {
    if (!row_rec[i]) {
      item->out_node_dirty[i] = 0;
      continue;
    }
    const float* hi = item->h_in + static_cast<size_t>(i) * d;
    const float* no = node_out + static_cast<size_t>(i) * d;
    for (int c = 0; c < d; ++c) scratch[c] = hi[c] + no[c];
    float* cached = item->h_out + static_cast<size_t>(i) * d;
    const bool dirty =
        item->fresh[i] ||
        std::memcmp(scratch, cached, sizeof(float) * d) != 0;
    item->out_node_dirty[i] = dirty ? 1 : 0;
    if (dirty) std::copy(scratch, scratch + d, cached);
  }
  for (int i = 0; i < n; ++i) {
    const size_t base = static_cast<size_t>(i) * n;
    const size_t pbase = static_cast<size_t>(i) * block;
    for (int j = 0; j < n; ++j) {
      const size_t r = base + j;
      if (!pair_rec[r]) {
        item->out_pair_dirty[r] = 0;
        continue;
      }
      const float* zi = item->z_in + (pbase + j) * d;
      const float* eo = edge_out + r * d;
      for (int c = 0; c < d; ++c) scratch[c] = zi[c] + eo[c];
      float* cached = item->z_out + (pbase + j) * d;
      const bool dirty =
          item->fresh[i] || item->fresh[j] ||
          std::memcmp(scratch, cached, sizeof(float) * d) != 0;
      item->out_pair_dirty[r] = dirty ? 1 : 0;
      if (dirty) std::copy(scratch, scratch + d, cached);
    }
  }
}

}  // namespace m2g::core
