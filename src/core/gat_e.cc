#include "core/gat_e.h"

#include "common/string_util.h"
#include "nn/init.h"

namespace m2g::core {

GatELayer::GatELayer(const ModelConfig& config, bool is_last, Rng* rng)
    : hidden_dim_(config.hidden_dim),
      num_heads_(config.num_heads),
      // Hidden layers concatenate P heads back to d; the last layer
      // averages full-width heads (Eq. 26).
      head_dim_(is_last ? config.hidden_dim
                        : config.hidden_dim / config.num_heads),
      is_last_(is_last),
      leaky_slope_(config.leaky_slope) {
  const int d = hidden_dim_;
  const int dh = head_dim_;
  heads_.reserve(num_heads_);
  for (int p = 0; p < num_heads_; ++p) {
    Head h;
    const std::string prefix = StrFormat("head%d_", p);
    h.w1 = AddParameter(prefix + "w1", nn::XavierUniform(d, dh, rng));
    h.av_src = AddParameter(prefix + "av_src",
                            nn::XavierUniform(dh, 1, rng));
    h.av_dst = AddParameter(prefix + "av_dst",
                            nn::XavierUniform(dh, 1, rng));
    h.ae = AddParameter(prefix + "ae", nn::XavierUniform(d, 1, rng));
    h.w2 = AddParameter(prefix + "w2", nn::XavierUniform(d, dh, rng));
    h.w3 = AddParameter(prefix + "w3", nn::XavierUniform(d, dh, rng));
    h.w4 = AddParameter(prefix + "w4", nn::XavierUniform(d, dh, rng));
    h.w5 = AddParameter(prefix + "w5", nn::XavierUniform(d, dh, rng));
    heads_.push_back(std::move(h));
  }
}

GatEOutput GatELayer::Forward(const Tensor& nodes, const Tensor& edges,
                              const std::vector<bool>& adjacency) const {
  const int n = nodes.rows();
  M2G_CHECK_EQ(nodes.cols(), hidden_dim_);
  M2G_CHECK_EQ(edges.rows(), n * n);
  M2G_CHECK_EQ(adjacency.size(), static_cast<size_t>(n) * n);

  // Pair index vectors for the edge update (Eq. 23): row i*n+j pairs
  // node i with node j.
  std::vector<int> src_idx(static_cast<size_t>(n) * n);
  std::vector<int> dst_idx(static_cast<size_t>(n) * n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      src_idx[i * n + j] = i;
      dst_idx[i * n + j] = j;
    }
  }

  std::vector<Tensor> node_heads;
  std::vector<Tensor> edge_heads;
  node_heads.reserve(heads_.size());
  edge_heads.reserve(heads_.size());

  for (const Head& head : heads_) {
    // Eq. 20 decomposed: c_ij = LeakyReLU(s_src[i] + s_dst[j] + s_e[ij]).
    Tensor wh = MatMul(nodes, head.w1);            // (n, dh)
    Tensor s_src = MatMul(wh, head.av_src);        // (n, 1)
    Tensor s_dst_row = Transpose(MatMul(wh, head.av_dst));  // (1, n)
    Tensor s_edge = MatMul(edges, head.ae);        // (n*n, 1)
    // Messages. (Eq. 22 as printed applies W2 to h_i; aggregating the
    // *neighbour* representation h_j is the standard GAT formulation and
    // the only reading under which attention weights matter, so we use
    // h_j.)
    Tensor messages = MatMul(nodes, head.w2);      // (n, dh)

    std::vector<Tensor> out_rows;
    out_rows.reserve(n);
    for (int i = 0; i < n; ++i) {
      // Attention logits over node i's neighbourhood.
      Tensor s_e_row = Transpose(SliceRows(s_edge, i * n, n));  // (1, n)
      Tensor logits = LeakyRelu(
          AddScalarTensor(Add(s_dst_row, s_e_row), Row(s_src, i)),
          leaky_slope_);
      std::vector<bool> mask(adjacency.begin() + i * n,
                             adjacency.begin() + (i + 1) * n);
      Tensor alpha = MaskedSoftmaxRow(logits, mask);  // Eq. 21
      out_rows.push_back(MatMul(alpha, messages));    // (1, dh)
    }
    Tensor head_nodes = ConcatRows(out_rows);
    if (!is_last_) head_nodes = Relu(head_nodes);  // Eq. 24 vs Eq. 26
    node_heads.push_back(head_nodes);

    // Eq. 23 / 25: z'_ij = ReLU(W3 z_ij + W4 h_i + W5 h_j).
    Tensor edge_update =
        Add(MatMul(edges, head.w3),
            Add(MatMul(GatherRows(nodes, src_idx), head.w4),
                MatMul(GatherRows(nodes, dst_idx), head.w5)));
    edge_heads.push_back(Relu(edge_update));
  }

  GatEOutput out;
  if (is_last_) {
    // Average the full-width heads, then the delayed activation (Eq. 26).
    Tensor acc = node_heads[0];
    for (size_t p = 1; p < node_heads.size(); ++p) {
      acc = Add(acc, node_heads[p]);
    }
    out.nodes = Relu(Scale(acc, 1.0f / static_cast<float>(num_heads_)));
    Tensor eacc = edge_heads[0];
    for (size_t p = 1; p < edge_heads.size(); ++p) {
      eacc = Add(eacc, edge_heads[p]);
    }
    out.edges = Scale(eacc, 1.0f / static_cast<float>(num_heads_));
  } else {
    Tensor nodes_cat = node_heads[0];
    Tensor edges_cat = edge_heads[0];
    for (size_t p = 1; p < node_heads.size(); ++p) {
      nodes_cat = ConcatCols(nodes_cat, node_heads[p]);
      edges_cat = ConcatCols(edges_cat, edge_heads[p]);
    }
    out.nodes = nodes_cat;
    out.edges = edges_cat;
  }
  return out;
}

}  // namespace m2g::core
