#include "core/route_decoder.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "nn/init.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/pool.h"

namespace m2g::core {
namespace {

obs::Counter& CacheBuildCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().counter("decode.cache_builds");
  return c;
}

obs::Counter& FastStepCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().counter("decode.fast_steps");
  return c;
}

obs::Counter& LegacyStepCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().counter("decode.legacy_steps");
  return c;
}

/// One candidate (hypothesis, next node) pair of a beam step.
struct Expansion {
  int hyp = 0;
  int node = 0;
  double logp = 0;
};

/// Shared beam ordering: by score, then hypothesis index, then node id.
/// The secondary keys make equal-score selections deterministic across
/// platforms and across the fast/legacy paths (std::partial_sort is
/// unstable, so score-only comparison could keep either candidate).
bool ExpansionBefore(const Expansion& a, const Expansion& b) {
  if (a.logp != b.logp) return a.logp > b.logp;
  if (a.hyp != b.hyp) return a.hyp < b.hyp;
  return a.node < b.node;
}

}  // namespace

AttentionRouteDecoder::AttentionRouteDecoder(int node_dim, int courier_dim,
                                             int lstm_hidden, Rng* rng)
    : node_dim_(node_dim),
      courier_dim_(courier_dim),
      lstm_hidden_(lstm_hidden) {
  lstm_ = std::make_unique<nn::LstmCell>(node_dim, lstm_hidden, rng);
  AddChild("lstm", lstm_.get());
  start_token_ =
      AddParameter("start_token", nn::XavierUniform(1, node_dim, rng));
  w6_ = AddParameter("w6", nn::XavierUniform(node_dim, node_dim, rng));
  w7_ = AddParameter(
      "w7", nn::XavierUniform(lstm_hidden + courier_dim, node_dim, rng));
  v_ = AddParameter("v", nn::XavierUniform(node_dim, 1, rng));
}

Tensor AttentionRouteDecoder::StepLogits(const Tensor& nodes,
                                         const Tensor& courier,
                                         const nn::LstmState& state) const {
  // q = W7 [h_{s-1} || u]; scores_j = v^T tanh(W6 x_j + q).
  Tensor q = MatMul(ConcatCols(state.h, courier), w7_);  // (1, node_dim)
  Tensor keys = AddRowBroadcast(MatMul(nodes, w6_), q);  // (n, node_dim)
  return Transpose(MatMul(Tanh(keys), v_));              // (1, n)
}

Tensor AttentionRouteDecoder::StepLogitsHoisted(
    const Tensor& nodes, const Tensor& courier, const nn::LstmState& state,
    const Matrix& keys_value) const {
  // Same statement order as StepLogits, so the graph nodes are created in
  // the same sequence and the deterministic backward order is unchanged.
  Tensor q = MatMul(ConcatCols(state.h, courier), w7_);
  Tensor keys = AddRowBroadcast(MatMulWithValue(nodes, w6_, keys_value), q);
  return Transpose(MatMul(Tanh(keys), v_));
}

AttentionRouteDecoder::KeyCache AttentionRouteDecoder::BuildKeyCache(
    const Tensor& nodes, const Tensor& courier) const {
  static obs::Histogram& hist = obs::StageHistogram("decode.cache_build.ms");
  obs::TraceSpan span("decode.cache_build.ms", &hist);
  CacheBuildCounter().Increment();
  M2G_CHECK_EQ(nodes.cols(), node_dim_);
  M2G_CHECK_EQ(courier.cols(), courier_dim_);
  KeyCache cache;
  cache.keys = MatMulRaw(nodes.value(), w6_.value());
  cache.courier = courier.value();
  cache.nodes = &nodes.value();
  return cache;
}

void AttentionRouteDecoder::QueryRow(const KeyCache& cache,
                                     const float* h_row,
                                     float* q_out) const {
  // q = [h || u] * W7 without the ConcatCols copy: h's terms accumulate
  // first (W7 rows [0, lstm_hidden_)), then the courier's (the remaining
  // rows) — exactly MatMulRaw's ascending-p order on the concatenated
  // row. Replaying the courier terms per step, instead of pre-summing
  // them into the cache, is what keeps that order intact; they cost
  // O(courier_dim * node_dim) against the O(n * node_dim) scoring pass.
  std::fill(q_out, q_out + node_dim_, 0.0f);
  const Matrix& w7 = w7_.value();
  AccumulateRowMatMul(h_row, lstm_hidden_, w7.data(), node_dim_, q_out);
  AccumulateRowMatMul(
      cache.courier.data(), courier_dim_,
      w7.data() + static_cast<size_t>(lstm_hidden_) * node_dim_, node_dim_,
      q_out);
}

Matrix AttentionRouteDecoder::StepScores(const KeyCache& cache,
                                         const Matrix& h) const {
  M2G_CHECK_EQ(h.rows(), 1);
  M2G_CHECK_EQ(h.cols(), lstm_hidden_);
  Matrix q = Matrix::Uninit(1, node_dim_);
  QueryRow(cache, h.data(), q.data());
  const int n = cache.keys.rows();
  Matrix scores = Matrix::Uninit(1, n);
  const std::vector<bool> all(n, true);
  PointerScoresMasked(cache.keys, q.data(), v_.value().data(), all,
                      scores.data());
  return scores;
}

Tensor AttentionRouteDecoder::TeacherForcedLoss(
    const Tensor& nodes, const Tensor& courier,
    const std::vector<int>& label_route) const {
  const int n = nodes.rows();
  M2G_CHECK_EQ(static_cast<int>(label_route.size()), n);
  // Hoist the step-invariant key projection: every step's MatMul(nodes,
  // w6_) has the same value, so run the kernel once and rebuild the
  // per-step node around the shared value. The forward drops n-1 of the
  // O(n d^2) products; the graph per step is unchanged.
  const Matrix keys_value = MatMulRaw(nodes.value(), w6_.value());
  nn::LstmState state = lstm_->InitialState();
  Tensor input = start_token_;
  std::vector<bool> unvisited(n, true);
  Tensor total = Tensor::Scalar(0.0f);
  for (int s = 0; s < n; ++s) {
    state = lstm_->Forward(input, state);
    Tensor logits = StepLogitsHoisted(nodes, courier, state, keys_value);
    total = Add(total,
                MaskedCrossEntropy(logits, label_route[s], unvisited));
    unvisited[label_route[s]] = false;
    input = Row(nodes, label_route[s]);
  }
  return Scale(total, 1.0f / static_cast<float>(n));
}

Tensor AttentionRouteDecoder::TeacherForcedLossLegacy(
    const Tensor& nodes, const Tensor& courier,
    const std::vector<int>& label_route) const {
  const int n = nodes.rows();
  M2G_CHECK_EQ(static_cast<int>(label_route.size()), n);
  nn::LstmState state = lstm_->InitialState();
  Tensor input = start_token_;
  std::vector<bool> unvisited(n, true);
  Tensor total = Tensor::Scalar(0.0f);
  for (int s = 0; s < n; ++s) {
    state = lstm_->Forward(input, state);
    Tensor logits = StepLogits(nodes, courier, state);
    total = Add(total,
                MaskedCrossEntropy(logits, label_route[s], unvisited));
    unvisited[label_route[s]] = false;
    input = Row(nodes, label_route[s]);
  }
  return Scale(total, 1.0f / static_cast<float>(n));
}

std::vector<int> AttentionRouteDecoder::DecodeGreedy(
    const Tensor& nodes, const Tensor& courier) const {
  const int n = nodes.rows();
  // Raw fast path: plain matrix math whatever the thread's grad mode (the
  // result is an int permutation, nothing differentiates through it). The
  // arena keeps per-step temporaries recycling even when the caller has
  // no scope of its own; guards nest, so a serving-layer arena still owns
  // the retained buffers.
  ArenaGuard arena;
  const KeyCache cache = BuildKeyCache(nodes, courier);
  const int H = lstm_hidden_;
  Matrix h(1, H), c(1, H);  // == InitialState(): all zeros
  Matrix h_next = Matrix::Uninit(1, H);
  Matrix c_next = Matrix::Uninit(1, H);
  Matrix q = Matrix::Uninit(1, node_dim_);
  const float* v = v_.value().data();
  const float* input = start_token_.value().data();
  std::vector<bool> unvisited(n, true);
  std::vector<int> route;
  route.reserve(n);
  for (int s = 0; s < n; ++s) {
    const float* x_rows[1] = {input};
    lstm_->StepRawBatch(x_rows, 1, h, c, &h_next, &c_next);
    std::swap(h, h_next);
    std::swap(c, c_next);
    QueryRow(cache, h.data(), q.data());
    // Fused score + masked argmax, ArgmaxMaskedRow semantics: strict >,
    // first unmasked maximum wins ties.
    int pick = -1;
    float best = -std::numeric_limits<float>::infinity();
    for (int i = 0; i < n; ++i) {
      if (!unvisited[i]) continue;
      const float sc = PointerScoreRow(
          cache.keys.data() + static_cast<size_t>(i) * node_dim_, q.data(),
          v, node_dim_);
      if (sc > best) {
        best = sc;
        pick = i;
      }
    }
    route.push_back(pick);
    unvisited[pick] = false;
    input = cache.nodes->data() + static_cast<size_t>(pick) * node_dim_;
  }
  FastStepCounter().Increment(static_cast<uint64_t>(n));
  return route;
}

std::vector<int> AttentionRouteDecoder::DecodeBeam(const Tensor& nodes,
                                                   const Tensor& courier,
                                                   int beam_width) const {
  M2G_CHECK_GE(beam_width, 1);
  if (beam_width == 1) return DecodeGreedy(nodes, courier);
  const int n = nodes.rows();
  ArenaGuard arena;
  const KeyCache cache = BuildKeyCache(nodes, courier);
  const int H = lstm_hidden_;
  const float* v = v_.value().data();

  // Live hypotheses, stored batched: row b of h/c is hypothesis b's LSTM
  // state, inputs[b] points at its last emitted node row (the start token
  // before the first step); route/mask/logp bookkeeping stays per-b.
  Matrix h(1, H), c(1, H);
  std::vector<const float*> inputs = {start_token_.value().data()};
  std::vector<std::vector<bool>> unvisited = {std::vector<bool>(n, true)};
  std::vector<std::vector<int>> routes = {{}};
  std::vector<double> logps = {0.0};
  uint64_t steps = 0;

  Matrix q = Matrix::Uninit(1, node_dim_);
  std::vector<Expansion> expansions;
  for (int s = 0; s < n; ++s) {
    const int batch = static_cast<int>(inputs.size());
    steps += static_cast<uint64_t>(batch);
    // One batched gate kernel advances every live hypothesis; one fused
    // scoring pass per row replaces its StepLogits recompute.
    Matrix h_next = Matrix::Uninit(batch, H);
    Matrix c_next = Matrix::Uninit(batch, H);
    lstm_->StepRawBatch(inputs.data(), batch, h, c, &h_next, &c_next);
    Matrix scores = Matrix::Uninit(batch, n);
    expansions.clear();
    for (int b = 0; b < batch; ++b) {
      QueryRow(cache, h_next.data() + static_cast<size_t>(b) * H, q.data());
      float* srow = scores.data() + static_cast<size_t>(b) * n;
      PointerScoresMasked(cache.keys, q.data(), v, unvisited[b], srow);
      // Masked log-softmax over the hypothesis's unvisited set, in
      // double (masked entries of srow are never read).
      double max_v = -1e30;
      for (int j = 0; j < n; ++j) {
        if (unvisited[b][j]) {
          max_v = std::max(max_v, static_cast<double>(srow[j]));
        }
      }
      double denom = 0;
      for (int j = 0; j < n; ++j) {
        if (unvisited[b][j]) denom += std::exp(srow[j] - max_v);
      }
      const double log_z = max_v + std::log(denom);
      for (int j = 0; j < n; ++j) {
        if (!unvisited[b][j]) continue;
        expansions.push_back({b, j, logps[b] + srow[j] - log_z});
      }
    }
    const size_t keep = std::min<size_t>(
        static_cast<size_t>(beam_width), expansions.size());
    std::partial_sort(expansions.begin(), expansions.begin() + keep,
                      expansions.end(), ExpansionBefore);
    // Gather the survivors into the next batch.
    Matrix h_keep = Matrix::Uninit(static_cast<int>(keep), H);
    Matrix c_keep = Matrix::Uninit(static_cast<int>(keep), H);
    std::vector<const float*> next_inputs(keep);
    std::vector<std::vector<bool>> next_unvisited(keep);
    std::vector<std::vector<int>> next_routes(keep);
    std::vector<double> next_logps(keep);
    for (size_t e = 0; e < keep; ++e) {
      const Expansion& ex = expansions[e];
      std::memcpy(h_keep.data() + e * static_cast<size_t>(H),
                  h_next.data() + static_cast<size_t>(ex.hyp) * H,
                  static_cast<size_t>(H) * sizeof(float));
      std::memcpy(c_keep.data() + e * static_cast<size_t>(H),
                  c_next.data() + static_cast<size_t>(ex.hyp) * H,
                  static_cast<size_t>(H) * sizeof(float));
      next_inputs[e] =
          cache.nodes->data() + static_cast<size_t>(ex.node) * node_dim_;
      next_unvisited[e] = unvisited[ex.hyp];
      next_unvisited[e][ex.node] = false;
      next_routes[e] = routes[ex.hyp];
      next_routes[e].push_back(ex.node);
      next_logps[e] = ex.logp;
    }
    h = std::move(h_keep);
    c = std::move(c_keep);
    inputs = std::move(next_inputs);
    unvisited = std::move(next_unvisited);
    routes = std::move(next_routes);
    logps = std::move(next_logps);
  }
  FastStepCounter().Increment(steps);
  return routes.front();
}

std::vector<int> AttentionRouteDecoder::DecodeBeamLegacy(
    const Tensor& nodes, const Tensor& courier, int beam_width) const {
  M2G_CHECK_GE(beam_width, 1);
  if (beam_width == 1) return DecodeGreedyLegacy(nodes, courier);
  const int n = nodes.rows();

  struct Hypothesis {
    nn::LstmState state;
    Tensor input;
    std::vector<bool> unvisited;
    std::vector<int> route;
    double logp = 0;
  };
  Hypothesis seed;
  seed.state = lstm_->InitialState();
  seed.input = start_token_;
  seed.unvisited.assign(n, true);
  std::vector<Hypothesis> beam = {std::move(seed)};
  uint64_t steps = 0;

  for (int s = 0; s < n; ++s) {
    std::vector<Expansion> expansions;
    std::vector<nn::LstmState> advanced(beam.size());
    steps += beam.size();
    for (size_t h = 0; h < beam.size(); ++h) {
      advanced[h] = lstm_->Forward(beam[h].input, beam[h].state);
      Tensor logits = StepLogits(nodes, courier, advanced[h]);
      // Masked log-softmax over the hypothesis's unvisited set.
      const Matrix& lv = logits.value();
      double max_v = -1e30;
      for (int j = 0; j < n; ++j) {
        if (beam[h].unvisited[j]) {
          max_v = std::max(max_v, static_cast<double>(lv[j]));
        }
      }
      double denom = 0;
      for (int j = 0; j < n; ++j) {
        if (beam[h].unvisited[j]) denom += std::exp(lv[j] - max_v);
      }
      const double log_z = max_v + std::log(denom);
      for (int j = 0; j < n; ++j) {
        if (!beam[h].unvisited[j]) continue;
        expansions.push_back(
            {static_cast<int>(h), j, beam[h].logp + lv[j] - log_z});
      }
    }
    const size_t keep =
        std::min<size_t>(static_cast<size_t>(beam_width),
                         expansions.size());
    std::partial_sort(expansions.begin(), expansions.begin() + keep,
                      expansions.end(), ExpansionBefore);
    std::vector<Hypothesis> next;
    next.reserve(keep);
    for (size_t e = 0; e < keep; ++e) {
      const Expansion& ex = expansions[e];
      Hypothesis hyp;
      hyp.state = advanced[ex.hyp];
      hyp.input = Row(nodes, ex.node);
      hyp.unvisited = beam[ex.hyp].unvisited;
      hyp.unvisited[ex.node] = false;
      hyp.route = beam[ex.hyp].route;
      hyp.route.push_back(ex.node);
      hyp.logp = ex.logp;
      next.push_back(std::move(hyp));
    }
    beam = std::move(next);
  }
  LegacyStepCounter().Increment(steps);
  return beam.front().route;
}

std::vector<int> AttentionRouteDecoder::DecodeGreedyLegacy(
    const Tensor& nodes, const Tensor& courier) const {
  const int n = nodes.rows();
  nn::LstmState state = lstm_->InitialState();
  Tensor input = start_token_;
  std::vector<bool> unvisited(n, true);
  std::vector<int> route;
  route.reserve(n);
  for (int s = 0; s < n; ++s) {
    state = lstm_->Forward(input, state);
    Tensor logits = StepLogits(nodes, courier, state);
    const int pick = ArgmaxMaskedRow(logits.value(), unvisited);
    route.push_back(pick);
    unvisited[pick] = false;
    input = Row(nodes, pick);
  }
  LegacyStepCounter().Increment(static_cast<uint64_t>(n));
  return route;
}

}  // namespace m2g::core
