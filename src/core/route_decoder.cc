#include "core/route_decoder.h"

#include <algorithm>
#include <cmath>

#include "nn/init.h"

namespace m2g::core {

AttentionRouteDecoder::AttentionRouteDecoder(int node_dim, int courier_dim,
                                             int lstm_hidden, Rng* rng)
    : node_dim_(node_dim) {
  lstm_ = std::make_unique<nn::LstmCell>(node_dim, lstm_hidden, rng);
  AddChild("lstm", lstm_.get());
  start_token_ =
      AddParameter("start_token", nn::XavierUniform(1, node_dim, rng));
  w6_ = AddParameter("w6", nn::XavierUniform(node_dim, node_dim, rng));
  w7_ = AddParameter(
      "w7", nn::XavierUniform(lstm_hidden + courier_dim, node_dim, rng));
  v_ = AddParameter("v", nn::XavierUniform(node_dim, 1, rng));
}

Tensor AttentionRouteDecoder::StepLogits(const Tensor& nodes,
                                         const Tensor& courier,
                                         const nn::LstmState& state) const {
  // q = W7 [h_{s-1} || u]; scores_j = v^T tanh(W6 x_j + q).
  Tensor q = MatMul(ConcatCols(state.h, courier), w7_);  // (1, node_dim)
  Tensor keys = AddRowBroadcast(MatMul(nodes, w6_), q);  // (n, node_dim)
  return Transpose(MatMul(Tanh(keys), v_));              // (1, n)
}

Tensor AttentionRouteDecoder::TeacherForcedLoss(
    const Tensor& nodes, const Tensor& courier,
    const std::vector<int>& label_route) const {
  const int n = nodes.rows();
  M2G_CHECK_EQ(static_cast<int>(label_route.size()), n);
  nn::LstmState state = lstm_->InitialState();
  Tensor input = start_token_;
  std::vector<bool> unvisited(n, true);
  Tensor total = Tensor::Scalar(0.0f);
  for (int s = 0; s < n; ++s) {
    state = lstm_->Forward(input, state);
    Tensor logits = StepLogits(nodes, courier, state);
    total = Add(total,
                MaskedCrossEntropy(logits, label_route[s], unvisited));
    unvisited[label_route[s]] = false;
    input = Row(nodes, label_route[s]);
  }
  return Scale(total, 1.0f / static_cast<float>(n));
}

std::vector<int> AttentionRouteDecoder::DecodeBeam(const Tensor& nodes,
                                                   const Tensor& courier,
                                                   int beam_width) const {
  M2G_CHECK_GE(beam_width, 1);
  if (beam_width == 1) return DecodeGreedy(nodes, courier);
  const int n = nodes.rows();

  struct Hypothesis {
    nn::LstmState state;
    Tensor input;
    std::vector<bool> unvisited;
    std::vector<int> route;
    double logp = 0;
  };
  Hypothesis seed;
  seed.state = lstm_->InitialState();
  seed.input = start_token_;
  seed.unvisited.assign(n, true);
  std::vector<Hypothesis> beam = {std::move(seed)};

  for (int s = 0; s < n; ++s) {
    struct Expansion {
      int hyp = 0;
      int node = 0;
      double logp = 0;
      // Filled lazily after selection.
    };
    std::vector<Expansion> expansions;
    std::vector<nn::LstmState> advanced(beam.size());
    for (size_t h = 0; h < beam.size(); ++h) {
      advanced[h] = lstm_->Forward(beam[h].input, beam[h].state);
      Tensor logits = StepLogits(nodes, courier, advanced[h]);
      // Masked log-softmax over the hypothesis's unvisited set.
      const Matrix& lv = logits.value();
      double max_v = -1e30;
      for (int j = 0; j < n; ++j) {
        if (beam[h].unvisited[j]) {
          max_v = std::max(max_v, static_cast<double>(lv[j]));
        }
      }
      double denom = 0;
      for (int j = 0; j < n; ++j) {
        if (beam[h].unvisited[j]) denom += std::exp(lv[j] - max_v);
      }
      const double log_z = max_v + std::log(denom);
      for (int j = 0; j < n; ++j) {
        if (!beam[h].unvisited[j]) continue;
        expansions.push_back(
            {static_cast<int>(h), j, beam[h].logp + lv[j] - log_z});
      }
    }
    const size_t keep =
        std::min<size_t>(static_cast<size_t>(beam_width),
                         expansions.size());
    std::partial_sort(expansions.begin(), expansions.begin() + keep,
                      expansions.end(),
                      [](const Expansion& a, const Expansion& b) {
                        if (a.logp != b.logp) return a.logp > b.logp;
                        return a.node < b.node;  // deterministic ties
                      });
    std::vector<Hypothesis> next;
    next.reserve(keep);
    for (size_t e = 0; e < keep; ++e) {
      const Expansion& ex = expansions[e];
      Hypothesis hyp;
      hyp.state = advanced[ex.hyp];
      hyp.input = Row(nodes, ex.node);
      hyp.unvisited = beam[ex.hyp].unvisited;
      hyp.unvisited[ex.node] = false;
      hyp.route = beam[ex.hyp].route;
      hyp.route.push_back(ex.node);
      hyp.logp = ex.logp;
      next.push_back(std::move(hyp));
    }
    beam = std::move(next);
  }
  return beam.front().route;
}

std::vector<int> AttentionRouteDecoder::DecodeGreedy(
    const Tensor& nodes, const Tensor& courier) const {
  const int n = nodes.rows();
  nn::LstmState state = lstm_->InitialState();
  Tensor input = start_token_;
  std::vector<bool> unvisited(n, true);
  std::vector<int> route;
  route.reserve(n);
  for (int s = 0; s < n; ++s) {
    state = lstm_->Forward(input, state);
    Tensor logits = StepLogits(nodes, courier, state);
    const int pick = ArgmaxMaskedRow(logits.value(), unvisited);
    route.push_back(pick);
    unvisited[pick] = false;
    input = Row(nodes, pick);
  }
  return route;
}

}  // namespace m2g::core
